// E7: predictable interconnects compared.
//
// Same application on: round-robin bus (work-conserving, contention-
// sensitive), TDMA bus (composable, contention-independent but never
// better than the full wheel), and the iNoC-style mesh with WRR QoS
// guarantees (Sec. III-B, IV-C).
#include "common.h"

int main() {
  using namespace argo;
  bench::printHeader(
      "E7 — bus (RR) vs bus (TDMA) vs iNoC-style mesh",
      "the interconnect's guarantees shape both the bound and the actual "
      "behaviour (Sec. III-B/IV-C)");

  struct PlatformCase {
    const char* name;
    adl::Platform platform;
  };
  std::vector<PlatformCase> platforms;
  platforms.push_back({"bus_round_robin",
                       adl::makeRecoreXentiumBus(8, adl::Arbitration::RoundRobin)});
  platforms.push_back({"bus_tdma",
                       adl::makeRecoreXentiumBus(8, adl::Arbitration::Tdma)});
  platforms.push_back({"inoc_mesh_2x4", adl::makeKitLeon3Inoc(2, 4)});

  std::printf("%-8s %-18s %14s %14s %7s\n", "app", "interconnect", "bound",
              "obsWorst", "ratio");
  for (bench::AppCase& app : bench::allApps()) {
    for (PlatformCase& p : platforms) {
      const core::Toolchain toolchain(p.platform, core::ToolchainOptions{});
      const core::ToolchainResult result = toolchain.run(app.diagram);
      // Pooled independent trials (bit-identical to threads = 1).
      const adl::Cycles observed = bench::observedWorst(
          result, p.platform, app.name, /*trials=*/10, /*threads=*/0);
      std::printf("%-8s %-18s %14s %14s %6.2fx\n", app.name.c_str(), p.name,
                  support::formatCycles(result.system.makespan).c_str(),
                  support::formatCycles(observed).c_str(),
                  static_cast<double>(result.system.makespan) /
                      static_cast<double>(observed));
    }
    std::printf("\n");
  }
  std::printf("expected shape: TDMA's bound is contention-independent but "
              "pays the wheel on every access (worst bound, tightest "
              "ratio); RR benefits most from MHP refinement; the NoC "
              "scales best when traffic is spread.\n");
  return 0;
}
