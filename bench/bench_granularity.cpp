// E6: task decomposition granularity and the exact/heuristic trade.
//
// Part A: chunks-per-loop sweep — very fine decomposition first helps
// (more parallelism) and then hurts (communication/sync/interference),
// the trade-off Sec. III-C motivates.
// Part B: scheduling policy comparison on a small instance where the
// exact branch-and-bound is feasible ("combination of exact techniques
// and advanced heuristics").
#include <chrono>

#include "common.h"

#include "model/blocks.h"
#include "syswcet/system_wcet.h"

int main() {
  using namespace argo;
  bench::printHeader(
      "E6 — granularity & exact-vs-heuristic scheduling",
      "fine-grain decomposition is a subtle trade-off; the NP-hard mapping "
      "needs exact + heuristic methods (Sec. III-C)");

  const adl::Platform platform = adl::makeRecoreXentiumBus(8);

  std::printf("--- part A: chunks-per-loop sweep (polka) ---\n");
  std::printf("%7s %6s %6s %14s\n", "chunks", "tasks", "events", "parWCET");
  for (int chunks : {1, 2, 4, 8, 16, 32}) {
    core::ToolchainOptions options;
    options.chunkCandidates = {chunks};
    const core::Toolchain toolchain(platform, options);
    const core::ToolchainResult result =
        toolchain.run(apps::buildPolkaDiagram(bench::polkaConfig()));
    std::printf("%7d %6zu %6zu %14s\n", chunks, result.graph->tasks.size(),
                result.program.events.size(),
                support::formatCycles(result.system.makespan).c_str());
  }

  std::printf("\n--- part B: policy quality/runtime (8-task diamond) ---\n");
  std::printf("%-30s %14s %10s\n", "policy", "parWCET", "time_ms");
  // Small synthetic diagram so the exact branch-and-bound is feasible.
  model::Diagram diamond("diamond");
  const ir::Type vec = ir::Type::array(ir::ScalarKind::Float64, {32});
  const auto in = diamond.add<model::InputBlock>("u", vec);
  const auto pre = diamond.add<model::MathBlock>("pre", ir::UnOpKind::Abs);
  diamond.connect(in, pre);
  std::vector<model::BlockId> stages;
  for (int k = 0; k < 4; ++k) {
    const auto stage = diamond.add<model::MathBlock>(
        "stage" + std::to_string(k),
        k % 2 == 0 ? ir::UnOpKind::Sin : ir::UnOpKind::Sqrt);
    diamond.connect(pre, stage);
    stages.push_back(stage);
  }
  const auto join = diamond.add<model::SumBlock>(
      "join", std::vector<int>{1, 1, 1, 1});
  for (int k = 0; k < 4; ++k) diamond.connect(stages[static_cast<std::size_t>(k)], 0, join, k);
  const auto peak = diamond.add<model::ReduceBlock>(
      "peak", model::ReduceBlock::Op::Max);
  diamond.connect(join, peak);
  const auto out = diamond.add<model::OutputBlock>("y");
  diamond.connect(peak, out);

  for (const std::string policy :
       {"heft", "branch_and_bound", "annealed", "contention_oblivious"}) {
    core::ToolchainOptions options;
    options.chunkCandidates = {1};  // 8 nodes: exact search feasible
    options.sched.policy = policy;
    options.sched.interferenceAware =
        policy != "contention_oblivious";
    const core::Toolchain toolchain(platform, options);
    const auto begin = std::chrono::steady_clock::now();
    const core::ToolchainResult result = toolchain.run(diamond);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - begin)
                          .count();
    std::printf("%-30s %14s %10.2f\n", result.schedule.policy.c_str(),
                support::formatCycles(result.system.makespan).c_str(), ms);
  }
  std::printf("\nexpected shape: WCET falls then flattens/rises with chunks; "
              "BnB <= HEFT on makespan at much higher solve time.\n");
  return 0;
}
