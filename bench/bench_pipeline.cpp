// E1 (Figure 1): the end-to-end ARGO workflow on every use case and both
// target platforms — model -> IR -> transforms -> HTG -> schedule ->
// explicit parallel program -> code+system WCET -> feedback.
#include "common.h"

int main() {
  using namespace argo;
  bench::printHeader("E1 / Fig.1 — end-to-end tool-chain",
                     "the ARGO design workflow produces analyzable parallel "
                     "programs from dataflow models (Sec. II)");

  const std::vector<adl::Platform> platforms = {
      adl::makeRecoreXentiumBus(8), adl::makeKitLeon3Inoc(4, 4)};

  std::printf("%-8s %-18s %6s %7s %14s %14s %8s\n", "app", "platform", "tasks",
              "tiles", "seqWCET", "parWCET", "speedup");
  for (const adl::Platform& platform : platforms) {
    for (bench::AppCase& app : bench::allApps()) {
      const core::Toolchain toolchain(platform, core::ToolchainOptions{});
      const core::ToolchainResult result = toolchain.run(app.diagram);
      std::printf("%-8s %-18s %6zu %7d %14s %14s %7.2fx\n", app.name.c_str(),
                  platform.name().c_str(), result.graph->tasks.size(),
                  result.schedule.tilesUsed,
                  support::formatCycles(result.sequentialWcet).c_str(),
                  support::formatCycles(result.system.makespan).c_str(),
                  result.wcetSpeedup());
    }
  }

  // One detailed stage report (the cross-layer interface of Sec. II-E).
  std::printf("\n--- detailed report: polka on recore_xentium_bus ---\n");
  const adl::Platform platform = adl::makeRecoreXentiumBus(8);
  const core::Toolchain toolchain(platform, core::ToolchainOptions{});
  const core::ToolchainResult result =
      toolchain.run(apps::buildPolkaDiagram(bench::polkaConfig()));
  std::printf("%s\n", result.reportText().c_str());
  return 0;
}
