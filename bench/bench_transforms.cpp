// E9: transformations viable for WCET that barely help the average case.
//
// Sec. III-C: optimizations involving complex control restructuring
// (index set splitting [10]) "may happen to be perfectly viable and
// relevant in a predictable performance context" even when average-case
// benefits are small. We build a guarded loop whose branch arms are very
// asymmetric: the WCET engine must charge max(arms) every iteration until
// index-set splitting resolves the guard statically; the *average*
// (simulated) time barely moves because the expensive arm is rare anyway.
#include "common.h"

#include "htg/htg.h"
#include "ir/builder.h"
#include "par/parallel_program.h"
#include "sched/scheduler.h"
#include "syswcet/system_wcet.h"
#include "transform/const_fold.h"
#include "transform/loop_transforms.h"
#include "wcet/analyzer.h"

namespace {

using namespace argo;

/// for i in [0,128): if (i < 8) heavy(i) else light(i)
std::unique_ptr<ir::Function> makeGuardedFn() {
  auto fn = std::make_unique<ir::Function>("guarded");
  fn->declare("u", ir::Type::array(ir::ScalarKind::Float64, {128}),
              ir::VarRole::Input);
  fn->declare("y", ir::Type::array(ir::ScalarKind::Float64, {128}),
              ir::VarRole::Output);
  auto heavy = ir::block();
  heavy->append(ir::assign(
      ir::ref("y", ir::exprVec(ir::var("i"))),
      ir::un(ir::UnOpKind::Sin,
             ir::un(ir::UnOpKind::Exp,
                    ir::ref("u", ir::exprVec(ir::var("i")))))));
  auto light = ir::block();
  light->append(ir::assign(ir::ref("y", ir::exprVec(ir::var("i"))),
                           ir::mul(ir::ref("u", ir::exprVec(ir::var("i"))),
                                   ir::flt(2.0))));
  auto body = ir::block();
  body->append(ir::ifStmt(ir::lt(ir::var("i"), ir::lit(8)), std::move(heavy),
                          std::move(light)));
  fn->body().append(ir::forLoop("i", 0, 128, std::move(body)));
  return fn;
}

struct Numbers {
  adl::Cycles wcetBound;
  adl::Cycles simulated;
};

Numbers measure(const ir::Function& fn, const adl::Platform& platform) {
  const htg::TaskGraph graph =
      htg::expand(htg::buildHtg(fn), htg::ExpandOptions{1});
  sched::Scheduler scheduler(graph, platform);
  const sched::Schedule schedule = scheduler.run(sched::SchedOptions{});
  const par::ParallelProgram program =
      par::buildParallelProgram(graph, schedule, platform);
  const syswcet::SystemWcet bound =
      syswcet::analyzeSystem(program, platform, scheduler.timings());

  sim::Simulator simulator(program, platform);
  ir::Environment env = ir::makeZeroEnvironment(fn);
  support::Rng rng(4242);
  ir::Value& u = env.at("u");
  for (std::int64_t k = 0; k < u.size(); ++k) {
    u.setFloat(k, rng.uniformDouble());
  }
  const sim::StepResult observed = simulator.step(env);
  return Numbers{bound.makespan, observed.makespan};
}

}  // namespace

int main() {
  bench::printHeader(
      "E9 — WCET-oriented transformations vs average case",
      "index-set splitting pays off for the worst case even when the "
      "average case barely changes (Sec. III-C, refs [9][10])");

  const adl::Platform platform = adl::makeRecoreXentiumBus(1);

  const auto original = makeGuardedFn();
  auto transformed = original->clone();
  transform::IndexSetSplitting split;
  transform::ConstantFolding fold;
  fold.run(*transformed);
  split.run(*transformed);

  const Numbers before = measure(*original, platform);
  const Numbers after = measure(*transformed, platform);

  std::printf("%-24s %14s %14s\n", "variant", "WCET bound", "simulated");
  std::printf("%-24s %14s %14s\n", "guarded loop",
              argo::support::formatCycles(before.wcetBound).c_str(),
              argo::support::formatCycles(before.simulated).c_str());
  std::printf("%-24s %14s %14s\n", "index-set split",
              argo::support::formatCycles(after.wcetBound).c_str(),
              argo::support::formatCycles(after.simulated).c_str());
  std::printf("\nWCET bound improvement:  %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(after.wcetBound) /
                                 static_cast<double>(before.wcetBound)));
  std::printf("average-case improvement: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(after.simulated) /
                                 static_cast<double>(before.simulated)));
  std::printf("\nexpected shape: large bound improvement (the per-iteration "
              "max(arms) disappears), small simulated improvement (only "
              "branch overhead goes away).\n");
  return 0;
}
