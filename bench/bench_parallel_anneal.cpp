// Infrastructure bench: sequential vs. pooled simulated-annealing restarts
// (sched::SchedOptions::saRestarts / parallelThreads). Prints per-app
// wall-clock for both paths, the speedup, and verifies the selected
// schedule is bit-identical — the ladder-order reduction over the chain
// slots makes the outcome independent of how chains interleave.
#include <chrono>
#include <thread>

#include "common.h"
#include "htg/htg.h"
#include "sched/scheduler.h"

namespace {

using argo::bench::AppCase;
using Clock = std::chrono::steady_clock;

}  // namespace

int main() {
  argo::bench::printHeader(
      "bench_parallel_anneal: pooled simulated-annealing restarts",
      "independent chains from the HEFT seed run concurrently, "
      "bit-identical best schedule");

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const argo::adl::Platform platform = argo::adl::makeRecoreXentiumBus(8);

  argo::sched::SchedOptions options;
  options.policy = argo::sched::Policy::Annealed;
  options.saIterations = 600;
  options.saRestarts = 8;

  std::printf("hardware threads: %u (speedup needs >= 4)\n", hw);
  std::printf("restarts: %d, iterations/chain: %d\n", options.saRestarts,
              options.saIterations);
  std::printf("%-8s %6s %12s %12s %9s  %s\n", "app", "tasks", "seq(ms)",
              "pooled(ms)", "speedup", "identical?");

  double totalSeq = 0.0;
  double totalPooled = 0.0;
  bool allIdentical = true;
  for (AppCase& app : argo::bench::allApps()) {
    const argo::model::CompiledModel model = app.diagram.compile();
    const argo::htg::TaskGraph graph = argo::htg::expand(
        argo::htg::buildHtg(*model.fn), argo::htg::ExpandOptions{4});
    const argo::sched::Scheduler scheduler(graph, platform);

    options.parallelThreads = 1;
    auto begin = Clock::now();
    const argo::sched::Schedule sequential = scheduler.run(options);
    const double seqMs =
        std::chrono::duration<double, std::milli>(Clock::now() - begin)
            .count();

    options.parallelThreads = 0;  // one chain executor per hardware thread
    begin = Clock::now();
    const argo::sched::Schedule pooled = scheduler.run(options);
    const double pooledMs =
        std::chrono::duration<double, std::milli>(Clock::now() - begin)
            .count();

    // Field-complete comparison via Schedule::operator==.
    const bool identical = sequential == pooled;
    allIdentical = allIdentical && identical;
    totalSeq += seqMs;
    totalPooled += pooledMs;
    std::printf("%-8s %6zu %12.2f %12.2f %8.2fx  %s\n", app.name.c_str(),
                graph.tasks.size(), seqMs, pooledMs,
                pooledMs > 0.0 ? seqMs / pooledMs : 0.0,
                identical ? "yes" : "NO (BUG)");
  }

  std::printf("%-8s %6s %12.2f %12.2f %8.2fx  %s\n", "total", "-", totalSeq,
              totalPooled, totalPooled > 0.0 ? totalSeq / totalPooled : 0.0,
              allIdentical ? "yes" : "NO (BUG)");
  if (!allIdentical) return 1;
  return 0;
}
