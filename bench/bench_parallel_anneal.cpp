// Infrastructure bench: sequential vs. pooled simulated-annealing restarts
// (sched::SchedOptions::saRestarts / parallelThreads). Prints per-app
// wall-clock for both paths, the speedup, and verifies the selected
// schedule is bit-identical — the ladder-order reduction over the chain
// slots makes the outcome independent of how chains interleave.
// `--json` emits the same rows as one machine-readable JSON document.
#include <chrono>
#include <thread>

#include "common.h"
#include "htg/htg.h"
#include "sched/scheduler.h"

namespace {

using argo::bench::AppCase;
using Clock = std::chrono::steady_clock;

}  // namespace

int main(int argc, char** argv) {
  const bool json = argo::bench::jsonRequested(argc, argv);
  argo::bench::ParallelBenchReport report("bench_parallel_anneal", "tasks",
                                          json);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const argo::adl::Platform platform = argo::adl::makeRecoreXentiumBus(8);

  argo::sched::SchedOptions options;
  options.policy = "annealed";
  options.saIterations = 600;
  options.saRestarts = 8;

  if (!json) {
    argo::bench::printHeader(
        "bench_parallel_anneal: pooled simulated-annealing restarts",
        "independent chains from the HEFT seed run concurrently, "
        "bit-identical best schedule");
    std::printf("hardware threads: %u (speedup needs >= 4)\n", hw);
    std::printf("restarts: %d, iterations/chain: %d\n", options.saRestarts,
                options.saIterations);
  }

  for (AppCase& app : argo::bench::allApps()) {
    const argo::model::CompiledModel model = app.diagram.compile();
    const argo::htg::TaskGraph graph = argo::htg::expand(
        argo::htg::buildHtg(*model.fn), argo::htg::ExpandOptions{4});
    const argo::sched::Scheduler scheduler(graph, platform);

    options.parallelThreads = 1;
    auto begin = Clock::now();
    const argo::sched::Schedule sequential = scheduler.run(options);
    const double seqMs =
        std::chrono::duration<double, std::milli>(Clock::now() - begin)
            .count();

    options.parallelThreads = 0;  // one chain executor per hardware thread
    begin = Clock::now();
    const argo::sched::Schedule pooled = scheduler.run(options);
    const double pooledMs =
        std::chrono::duration<double, std::milli>(Clock::now() - begin)
            .count();

    // Field-complete comparison via Schedule::operator==.
    report.addRow({app.name, "", graph.tasks.size(), seqMs, pooledMs,
                   sequential == pooled});
  }
  return report.finish();
}
