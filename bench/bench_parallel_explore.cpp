// Infrastructure bench: sequential vs. pooled cross-layer feedback
// exploration (the schedule_and_system_wcet stage of core::Toolchain).
// Prints per-app wall-clock for both paths, the speedup, and verifies the
// chosen candidate and deterministic report are bit-identical.
#include <algorithm>
#include <thread>

#include "common.h"

namespace {

using argo::bench::AppCase;

double explorationMs(const argo::core::ToolchainResult& result) {
  for (const argo::core::StageTiming& s : result.stages) {
    if (s.stage == "schedule_and_system_wcet") return s.milliseconds;
  }
  return 0.0;
}

}  // namespace

int main() {
  argo::bench::printHeader(
      "bench_parallel_explore: pooled feedback exploration",
      "candidate ladder evaluated concurrently, bit-identical results");

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const argo::adl::Platform platform = argo::adl::makeRecoreXentiumBus(8);
  // A wide ladder so there is enough independent work to distribute.
  const std::vector<int> ladder = {1, 2, 3, 4, 6, 8, 12, 16};

  std::printf("hardware threads: %u (speedup needs >= 4)\n", hw);
  std::printf("%-8s %8s %12s %12s %9s  %s\n", "app", "points", "seq(ms)",
              "pooled(ms)", "speedup", "identical?");

  double totalSeq = 0.0;
  double totalPooled = 0.0;
  bool allIdentical = true;
  for (AppCase& app : argo::bench::allApps()) {
    const argo::model::CompiledModel model = app.diagram.compile();

    argo::core::ToolchainOptions seqOptions;
    seqOptions.chunkCandidates = ladder;
    seqOptions.explorationThreads = 1;
    const argo::core::ToolchainResult seq =
        argo::core::Toolchain(platform, seqOptions).run(model);

    argo::core::ToolchainOptions poolOptions = seqOptions;
    // One worker per hardware thread, but never fewer than 4 so the pool
    // path (not the sequential fast path) is exercised even on small hosts.
    poolOptions.explorationThreads = static_cast<int>(std::max(hw, 4u));
    const argo::core::ToolchainResult pooled =
        argo::core::Toolchain(platform, poolOptions).run(model);

    const double seqMs = explorationMs(seq);
    const double pooledMs = explorationMs(pooled);
    const bool identical =
        seq.chosenChunks == pooled.chosenChunks &&
        seq.reportText(false) == pooled.reportText(false);
    allIdentical = allIdentical && identical;
    totalSeq += seqMs;
    totalPooled += pooledMs;

    std::printf("%-8s %8zu %12.2f %12.2f %8.2fx  %s\n", app.name.c_str(),
                seq.feedback.size(), seqMs, pooledMs,
                pooledMs > 0.0 ? seqMs / pooledMs : 0.0,
                identical ? "yes" : "NO (BUG)");
  }

  std::printf("%-8s %8s %12.2f %12.2f %8.2fx  %s\n", "total", "-", totalSeq,
              totalPooled, totalPooled > 0.0 ? totalSeq / totalPooled : 0.0,
              allIdentical ? "yes" : "NO (BUG)");
  if (!allIdentical) return 1;
  return 0;
}
