// Infrastructure bench: sequential vs. pooled cross-layer feedback
// exploration (the schedule_and_system_wcet stage of core::Toolchain).
// Prints per-app wall-clock for both paths, the speedup, and verifies the
// chosen candidate and deterministic report are bit-identical.
// `--json` emits the same rows as one machine-readable JSON document.
#include <algorithm>
#include <thread>

#include "common.h"

namespace {

using argo::bench::AppCase;

double explorationMs(const argo::core::ToolchainResult& result) {
  for (const argo::core::StageTiming& s : result.stages) {
    if (s.stage == "schedule_and_system_wcet") return s.milliseconds;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argo::bench::jsonRequested(argc, argv);
  argo::bench::ParallelBenchReport report("bench_parallel_explore", "points",
                                          json);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const argo::adl::Platform platform = argo::adl::makeRecoreXentiumBus(8);
  // A wide ladder so there is enough independent work to distribute.
  const std::vector<int> ladder = {1, 2, 3, 4, 6, 8, 12, 16};

  if (!json) {
    argo::bench::printHeader(
        "bench_parallel_explore: pooled feedback exploration",
        "candidate ladder evaluated concurrently, bit-identical results");
    std::printf("hardware threads: %u (speedup needs >= 4)\n", hw);
  }

  for (AppCase& app : argo::bench::allApps()) {
    const argo::model::CompiledModel model = app.diagram.compile();

    argo::core::ToolchainOptions seqOptions;
    seqOptions.chunkCandidates = ladder;
    seqOptions.explorationThreads = 1;
    const argo::core::ToolchainResult seq =
        argo::core::Toolchain(platform, seqOptions).run(model);

    argo::core::ToolchainOptions poolOptions = seqOptions;
    // One worker per hardware thread, but never fewer than 4 so the pool
    // path (not the sequential fast path) is exercised even on small hosts.
    poolOptions.explorationThreads = static_cast<int>(std::max(hw, 4u));
    const argo::core::ToolchainResult pooled =
        argo::core::Toolchain(platform, poolOptions).run(model);

    const bool identical =
        seq.chosenChunks == pooled.chosenChunks &&
        seq.reportText(false) == pooled.reportText(false);
    report.addRow({app.name, "", seq.feedback.size(), explorationMs(seq),
                   explorationMs(pooled), identical});
  }
  return report.finish();
}
