// E10: tool-chain stage runtimes (productivity claim, Sec. III-A) — wall
// clock of each pipeline stage on the POLKA use case, in the in-repo
// harness style of the other benches (no external benchmark dependency).
// Each stage is repeated until it has run for a minimum window and the
// per-iteration average is reported.
#include <chrono>
#include <functional>

#include "common.h"
#include "htg/htg.h"
#include "par/parallel_program.h"
#include "sched/scheduler.h"
#include "syswcet/system_wcet.h"
#include "transform/const_fold.h"

namespace {

using namespace argo;
using Clock = std::chrono::steady_clock;

const apps::PolkaConfig& config() {
  static const apps::PolkaConfig cfg;
  return cfg;
}

const model::CompiledModel& compiledPolka() {
  static const model::CompiledModel model =
      apps::buildPolkaDiagram(config()).compile();
  return model;
}

/// Repeats `fn` until `minWindowMs` of wall clock has elapsed (at least
/// `minIters` times) and prints the per-iteration average.
void report(const char* stage, const std::function<void()>& fn,
            double minWindowMs = 200.0, int minIters = 3) {
  // One untimed warm-up run (first-touch allocations, lazy statics).
  fn();
  int iters = 0;
  const auto begin = Clock::now();
  double elapsed = 0.0;
  while (iters < minIters || elapsed < minWindowMs) {
    fn();
    ++iters;
    elapsed =
        std::chrono::duration<double, std::milli>(Clock::now() - begin).count();
  }
  std::printf("%-28s %10.3f ms/iter  (%d iters)\n", stage, elapsed / iters,
              iters);
}

}  // namespace

int main() {
  bench::printHeader(
      "bench_toolchain_speed (E10): pipeline stage runtimes on POLKA",
      "the tool-chain turns a model into a bounded parallel program in "
      "seconds, not hours");

  const adl::Platform platform = adl::makeRecoreXentiumBus(8);

  {
    // Diagram built once outside the timed loop (as the original harness
    // did): the stage measures compile() alone.
    const model::Diagram diagram = apps::buildPolkaDiagram(config());
    report("model_compile", [&] { (void)diagram.compile(); });
  }

  report("transforms(const_fold)", [] {
    auto fn = compiledPolka().fn->clone();
    transform::ConstantFolding fold;
    (void)fold.run(*fn);
  });

  report("htg_extraction", [] { (void)htg::buildHtg(*compiledPolka().fn); });

  const htg::Htg htg = htg::buildHtg(*compiledPolka().fn);
  for (int chunks : {1, 4, 16}) {
    std::string stage = "expand+schedule(chunks=" + std::to_string(chunks) +
                        ")";
    report(stage.c_str(), [&] {
      const htg::TaskGraph graph =
          htg::expand(htg, htg::ExpandOptions{chunks});
      sched::Scheduler scheduler(graph, platform);
      (void)scheduler.run(sched::SchedOptions{});
    });
  }

  {
    const htg::TaskGraph graph = htg::expand(htg, htg::ExpandOptions{8});
    const sched::Scheduler scheduler(graph, platform);
    const sched::Schedule schedule = scheduler.run(sched::SchedOptions{});
    const par::ParallelProgram program =
        par::buildParallelProgram(graph, schedule, platform);
    report("system_wcet", [&] {
      (void)syswcet::analyzeSystem(program, platform, scheduler.timings());
    });
  }

  {
    // Model and driver built once outside the timed loop (as the original
    // harness did): the stage measures toolchain.run alone.
    const model::Diagram diagram = apps::buildPolkaDiagram(config());
    const core::Toolchain toolchain(platform, core::ToolchainOptions{});
    report("full_pipeline", [&] { (void)toolchain.run(diagram); });
  }

  return 0;
}
