// E10: tool-chain stage runtimes (productivity claim, Sec. III-A) —
// google-benchmark timings of each pipeline stage on the POLKA use case.
#include <benchmark/benchmark.h>

#include "apps/polka.h"
#include "core/toolchain.h"
#include "htg/htg.h"
#include "par/parallel_program.h"
#include "sched/scheduler.h"
#include "syswcet/system_wcet.h"
#include "transform/const_fold.h"

namespace {

using namespace argo;

const apps::PolkaConfig& config() {
  static const apps::PolkaConfig cfg;
  return cfg;
}

const model::CompiledModel& compiledPolka() {
  static const model::CompiledModel model =
      apps::buildPolkaDiagram(config()).compile();
  return model;
}

void BM_ModelCompile(benchmark::State& state) {
  const model::Diagram diagram = apps::buildPolkaDiagram(config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(diagram.compile());
  }
}
BENCHMARK(BM_ModelCompile);

void BM_Transforms(benchmark::State& state) {
  for (auto _ : state) {
    auto fn = compiledPolka().fn->clone();
    transform::ConstantFolding fold;
    benchmark::DoNotOptimize(fold.run(*fn));
  }
}
BENCHMARK(BM_Transforms);

void BM_HtgExtraction(benchmark::State& state) {
  const auto& model = compiledPolka();
  for (auto _ : state) {
    benchmark::DoNotOptimize(htg::buildHtg(*model.fn));
  }
}
BENCHMARK(BM_HtgExtraction);

void BM_ExpandAndSchedule(benchmark::State& state) {
  const auto& model = compiledPolka();
  const htg::Htg htg = htg::buildHtg(*model.fn);
  const adl::Platform platform = adl::makeRecoreXentiumBus(8);
  const int chunks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const htg::TaskGraph graph = htg::expand(htg, htg::ExpandOptions{chunks});
    sched::Scheduler scheduler(graph, platform);
    benchmark::DoNotOptimize(scheduler.run(sched::SchedOptions{}));
  }
}
BENCHMARK(BM_ExpandAndSchedule)->Arg(1)->Arg(4)->Arg(16);

void BM_SystemWcet(benchmark::State& state) {
  const auto& model = compiledPolka();
  const adl::Platform platform = adl::makeRecoreXentiumBus(8);
  const htg::TaskGraph graph =
      htg::expand(htg::buildHtg(*model.fn), htg::ExpandOptions{8});
  sched::Scheduler scheduler(graph, platform);
  const sched::Schedule schedule = scheduler.run(sched::SchedOptions{});
  const par::ParallelProgram program =
      par::buildParallelProgram(graph, schedule, platform);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        syswcet::analyzeSystem(program, platform, scheduler.timings()));
  }
}
BENCHMARK(BM_SystemWcet);

void BM_FullPipeline(benchmark::State& state) {
  const adl::Platform platform = adl::makeRecoreXentiumBus(8);
  const model::Diagram diagram = apps::buildPolkaDiagram(config());
  const core::Toolchain toolchain(platform, core::ToolchainOptions{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(toolchain.run(diagram));
  }
}
BENCHMARK(BM_FullPipeline);

}  // namespace

BENCHMARK_MAIN();
