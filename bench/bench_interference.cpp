// E3: knowing the parallel structure vs not.
//
// The paper's Sec. III-C argument (built on the parMERASA experience): a
// WCET tool that cannot see the parallelization scheme must assume every
// core interferes with every access ("all-contenders"); ARGO's co-designed
// flow exposes the explicit parallel program, so the MHP analysis counts
// only the tiles that can actually contend.
//
// Paired comparison at FIXED granularity on a 16-core platform (schedules
// typically occupy fewer tiles than exist, which is precisely where the
// refinement pays): {interference-aware, contention-oblivious} scheduling
// x {mhp-refined, all-contenders} analysis.
#include "common.h"

#include "syswcet/system_wcet.h"

int main() {
  using namespace argo;
  bench::printHeader(
      "E3 — MHP-refined vs all-contenders interference accounting",
      "contenders known & reduced during parallelization -> tighter bounds "
      "than analyzing an opaque parallel program (Sec. II, III-C)");

  const adl::Platform platform = adl::makeRecoreXentiumBus(16);
  const int chunks = 8;  // fixed granularity: fair pairing

  std::printf("(platform: 16-core RR bus, chunks/loop fixed at %d)\n\n",
              chunks);
  std::printf("%-8s %-22s %6s %16s %16s %7s\n", "app", "scheduler", "tiles",
              "mhp-refined", "all-contenders", "gap");
  for (bench::AppCase& app : bench::allApps()) {
    for (const bool aware : {true, false}) {
      core::ToolchainOptions options;
      options.chunkCandidates = {chunks};
      options.sched.policy =
          aware ? "heft" : "contention_oblivious";
      options.sched.interferenceAware = aware;
      const core::Toolchain toolchain(platform, options);
      const core::ToolchainResult result = toolchain.run(app.diagram);
      const syswcet::SystemWcet refined = syswcet::analyzeSystem(
          result.program, platform, result.timings,
          syswcet::InterferenceMethod::MhpRefined);
      const syswcet::SystemWcet pessimistic = syswcet::analyzeSystem(
          result.program, platform, result.timings,
          syswcet::InterferenceMethod::AllContenders);
      std::printf("%-8s %-22s %6d %16s %16s %6.1f%%\n", app.name.c_str(),
                  aware ? "interference-aware" : "contention-oblivious",
                  result.schedule.tilesUsed,
                  support::formatCycles(refined.makespan).c_str(),
                  support::formatCycles(pessimistic.makespan).c_str(),
                  100.0 * (static_cast<double>(pessimistic.makespan) /
                               static_cast<double>(refined.makespan) -
                           1.0));
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: all-contenders inflates the bound by the idle-tile\n"
      "count (the gap column); the MHP-refined bound only charges tiles\n"
      "that can actually run concurrently. The scheduler dimension is\n"
      "secondary: once every task chunk contends, placement estimates\n"
      "cannot reduce the contender count further (honest finding recorded\n"
      "in EXPERIMENTS.md).\n");
  return 0;
}
