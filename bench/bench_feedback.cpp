// E8: the cross-layer feedback loop (Sec. II-E).
//
// WCET results are fed back to the parallelization stage; the granularity
// chosen blind (first candidate) vs the one chosen by feedback quantifies
// the value of closing the loop.
#include "common.h"

int main() {
  using namespace argo;
  bench::printHeader(
      "E8 — cross-layer feedback",
      "system-level WCET fed back to parallelization solves the phase "
      "ordering problem (Sec. II-E)");

  const adl::Platform platform = adl::makeRecoreXentiumBus(8);
  for (bench::AppCase& app : bench::allApps()) {
    const core::Toolchain toolchain(platform, core::ToolchainOptions{});
    const core::ToolchainResult result = toolchain.run(app.diagram);
    std::printf("--- %s ---\n", app.name.c_str());
    std::printf("%7s %6s %14s\n", "chunks", "tasks", "parWCET");
    adl::Cycles first = 0;
    adl::Cycles worst = 0;
    for (const core::FeedbackPoint& p : result.feedback) {
      if (p.coreLimit == 0) {
        if (first == 0) first = p.systemWcet;
        worst = std::max(worst, p.systemWcet);
      }
      std::printf("%7d %6d %14s%s%s\n", p.chunksPerLoop, p.tasks,
                  support::formatCycles(p.systemWcet).c_str(),
                  p.coreLimit == 1 ? "  (1 core)" : "",
                  p.systemWcet == result.system.makespan ? "  <== chosen"
                                                         : "");
    }
    std::printf("no-feedback (first candidate): %s;  feedback gain over "
                "first: %.1f%%;  over worst candidate: %.1f%%\n\n",
                support::formatCycles(first).c_str(),
                100.0 * (1.0 - static_cast<double>(result.system.makespan) /
                                   static_cast<double>(first)),
                100.0 * (1.0 - static_cast<double>(result.system.makespan) /
                                   static_cast<double>(worst)));
  }
  std::printf("expected shape: the chosen candidate is never the first "
              "tried; feedback recovers double-digit percentages.\n");
  return 0;
}
