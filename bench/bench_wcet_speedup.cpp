// E2: guaranteed (WCET) speedup vs core count, per use case, on the
// Recore-style bus platform and the KIT-style NoC platform.
#include "common.h"

int main() {
  using namespace argo;
  bench::printHeader(
      "E2 — WCET speedup vs cores",
      "parallelization improves the *guaranteed* WCET; gains grow with "
      "cores until shared-resource contention saturates (Sec. I/II)");

  std::printf("%-8s %-18s %5s %6s %14s %14s %8s\n", "app", "platform",
              "cores", "tasks", "seqWCET", "parWCET", "speedup");
  for (bench::AppCase& app : bench::allApps()) {
    for (int cores : {1, 2, 4, 8, 16}) {
      const adl::Platform platform = adl::makeRecoreXentiumBus(cores);
      const core::Toolchain toolchain(platform, core::ToolchainOptions{});
      const core::ToolchainResult result = toolchain.run(app.diagram);
      std::printf("%-8s %-18s %5d %6zu %14s %14s %7.2fx\n", app.name.c_str(),
                  "xentium_bus", cores, result.graph->tasks.size(),
                  support::formatCycles(result.sequentialWcet).c_str(),
                  support::formatCycles(result.system.makespan).c_str(),
                  result.wcetSpeedup());
    }
    for (std::pair<int, int> mesh : {std::pair{1, 2}, {2, 2}, {2, 4}, {4, 4}}) {
      const adl::Platform platform =
          adl::makeKitLeon3Inoc(mesh.first, mesh.second);
      const core::Toolchain toolchain(platform, core::ToolchainOptions{});
      const core::ToolchainResult result = toolchain.run(app.diagram);
      std::printf("%-8s %-18s %5d %6zu %14s %14s %7.2fx\n", app.name.c_str(),
                  "leon3_inoc", platform.coreCount(),
                  result.graph->tasks.size(),
                  support::formatCycles(result.sequentialWcet).c_str(),
                  support::formatCycles(result.system.makespan).c_str(),
                  result.wcetSpeedup());
    }
  }
  return 0;
}
