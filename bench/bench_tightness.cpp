// E4: safety and tightness of the bound.
//
// The static system-level WCET must dominate every simulated execution
// (safety) and should not be absurdly far above the observed worst case
// (tightness) — Sec. I: "to be useful they have to be as close as possible
// to the actual WCET".
#include "common.h"

int main() {
  using namespace argo;
  bench::printHeader(
      "E4 — bound safety & tightness",
      "WCET estimates are higher than any possible execution time, and "
      "close to it (Sec. I)");

  std::printf("%-8s %-18s %14s %14s %7s %6s\n", "app", "platform", "bound",
              "obsWorst", "ratio", "safe");
  for (const adl::Platform& platform :
       {adl::makeRecoreXentiumBus(8), adl::makeKitLeon3Inoc(4, 4)}) {
    for (bench::AppCase& app : bench::allApps()) {
      const core::Toolchain toolchain(platform, core::ToolchainOptions{});
      const core::ToolchainResult result = toolchain.run(app.diagram);
      // Pooled independent trials (bit-identical to threads = 1).
      const adl::Cycles observed = bench::observedWorst(
          result, platform, app.name, /*trials=*/25, /*threads=*/0);
      std::printf("%-8s %-18s %14s %14s %6.2fx %6s\n", app.name.c_str(),
                  platform.name().c_str(),
                  support::formatCycles(result.system.makespan).c_str(),
                  support::formatCycles(observed).c_str(),
                  static_cast<double>(result.system.makespan) /
                      static_cast<double>(observed),
                  observed <= result.system.makespan ? "yes" : "NO!");
    }
  }
  std::printf("\nexpected shape: safe everywhere; ratio typically 1.2-2.5x "
              "(path + interference pessimism), never below 1.\n");
  return 0;
}
