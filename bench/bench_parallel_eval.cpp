// Infrastructure bench: sequential vs. pooled scenario batch evaluation
// (scenarios::runEval, the engine behind tools/argo_eval). Times both
// paths over a small scenario x policy matrix and verifies the rendered
// JSON report is byte-identical — the per-unit slots plus ladder-order
// assembly make the batch independent of how units interleave.
// `--json` emits the same rows as one machine-readable JSON document.
#include <chrono>
#include <thread>

#include "common.h"
#include "sched/policy.h"
#include "scenarios/eval.h"

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

int main(int argc, char** argv) {
  const bool json = argo::bench::jsonRequested(argc, argv);
  argo::bench::ParallelBenchReport report("bench_parallel_eval", "units",
                                          json);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  argo::scenarios::EvalOptions options;
  options.generator.seed = 7;
  options.scenarioCount = 8;
  options.simTrials = 1;

  if (!json) {
    argo::bench::printHeader(
        "bench_parallel_eval: pooled scenario batch evaluation",
        "independent (scenario x policy) units run concurrently, "
        "byte-identical JSON report");
    std::printf("hardware threads: %u (speedup needs >= 4)\n", hw);
  }

  const std::size_t units =
      static_cast<std::size_t>(options.scenarioCount) *
      argo::sched::registeredPolicyNames().size();

  options.threads = 1;
  auto begin = Clock::now();
  const std::string sequential =
      argo::scenarios::runEval(options).toJson();
  const double seqMs =
      std::chrono::duration<double, std::milli>(Clock::now() - begin).count();

  options.threads = 0;  // one worker per hardware thread
  begin = Clock::now();
  const std::string pooled = argo::scenarios::runEval(options).toJson();
  const double pooledMs =
      std::chrono::duration<double, std::milli>(Clock::now() - begin).count();

  report.addRow(argo::bench::ParallelBenchRow{
      "matrix", "eval", units, seqMs, pooledMs, sequential == pooled});
  return report.finish();
}
