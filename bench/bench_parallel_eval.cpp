// Infrastructure bench: sequential vs. pooled scenario batch evaluation
// (scenarios::runEval, the engine behind tools/argo_eval), under both
// execution engines. The matrix8 rows time sequential vs. pooled for the
// barrier executor (one flat parallelFor over fused units) and for the
// TaskGraph executor (per-stage nodes, stages overlap across scenarios);
// the matrix50 row races the two pooled engines head to head on the CI
// 50-scenario matrix — its "speedup" column is barrier-over-graph wall
// clock. The cross6 rows run the full scenario x platform cross product
// (--sweep-mode cross) and put the stage cache (core/cache.h) head to
// head against uncached evaluation: "cold" is a fresh cache amortized
// within one batch, "warm" is an incremental re-sweep against an already
// populated cache — the argod content-addressed-service pattern, and the
// headline speedup of the caching layer — and "disk_warm" re-runs with a
// fresh in-memory cache filled entirely from an on-disk cache directory
// (support/disk_cache.h), the cross-process warm start. The
// trace_overhead row re-runs the uncached cross sweep with the span
// recorder (support/trace.h) off vs. on-and-exported — the cost of
// leaving the observability instruments enabled. Every row also verifies the
// rendered JSON reports are byte-identical across engines, thread counts,
// and cache settings — the per-unit slots plus ladder-order assembly make
// the batch independent of how units interleave, and the barrier and
// uncached paths double as the differential oracles for the graph and
// cached paths. `--json` emits the same rows as one machine-readable JSON
// document.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>

#include "common.h"
#include "sched/policy.h"
#include "scenarios/eval.h"
#include "support/trace.h"

namespace {

using Clock = std::chrono::steady_clock;

/// One timed runEval: renders the report and adds the wall time to *ms.
std::string timedEval(const argo::scenarios::EvalOptions& options,
                      double& ms) {
  const auto begin = Clock::now();
  const std::string json = argo::scenarios::runEval(options).toJson();
  ms = std::chrono::duration<double, std::milli>(Clock::now() - begin)
           .count();
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argo::bench::jsonRequested(argc, argv);
  argo::bench::ParallelBenchReport report("bench_parallel_eval", "units",
                                          json);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  argo::scenarios::EvalOptions options;
  options.generator.seed = 7;
  options.scenarioCount = 8;
  options.simTrials = 1;

  if (!json) {
    argo::bench::printHeader(
        "bench_parallel_eval: pooled scenario batch evaluation",
        "independent (scenario x policy) units run concurrently, "
        "byte-identical JSON report under both executors");
    std::printf("hardware threads: %u (speedup needs >= 4)\n", hw);
    std::printf("matrix50/b_vs_g: seq(ms) = barrier pooled, pooled(ms) = "
                "graph pooled\n");
  }

  const std::size_t policyCount =
      argo::sched::registeredPolicyNames().size();
  const std::size_t units8 =
      static_cast<std::size_t>(options.scenarioCount) * policyCount;

  // matrix8/barrier: the classic sequential-vs-pooled row.
  options.executor = argo::scenarios::EvalExecutor::Barrier;
  options.threads = 1;
  double barrierSeqMs = 0.0;
  const std::string barrierSeq = timedEval(options, barrierSeqMs);
  options.threads = 0;  // one worker per hardware thread
  double barrierPooledMs = 0.0;
  const std::string barrierPooled = timedEval(options, barrierPooledMs);
  report.addRow(argo::bench::ParallelBenchRow{
      "matrix8", "barrier", units8, barrierSeqMs, barrierPooledMs,
      barrierSeq == barrierPooled});

  // matrix8/graph: same matrix on the TaskGraph engine; "identical" here
  // means identical to the *barrier* reference, not merely self-consistent.
  options.executor = argo::scenarios::EvalExecutor::Graph;
  options.threads = 1;
  double graphSeqMs = 0.0;
  const std::string graphSeq = timedEval(options, graphSeqMs);
  options.threads = 0;
  double graphPooledMs = 0.0;
  const std::string graphPooled = timedEval(options, graphPooledMs);
  report.addRow(argo::bench::ParallelBenchRow{
      "matrix8", "graph", units8, graphSeqMs, graphPooledMs,
      graphSeq == barrierSeq && graphPooled == barrierSeq});

  // matrix50/b_vs_g: the two pooled engines head to head on the same
  // 50-scenario matrix CI evaluates (seed 7). seq_ms carries the barrier
  // time and pooled_ms the graph time, so "speedup" reads as
  // barrier-over-graph — the executor's headline number.
  options.scenarioCount = 50;
  options.executor = argo::scenarios::EvalExecutor::Barrier;
  double wideBarrierMs = 0.0;
  const std::string wideBarrier = timedEval(options, wideBarrierMs);
  options.executor = argo::scenarios::EvalExecutor::Graph;
  double wideGraphMs = 0.0;
  const std::string wideGraph = timedEval(options, wideGraphMs);
  report.addRow(argo::bench::ParallelBenchRow{
      "matrix50", "b_vs_g", 50 * policyCount, wideBarrierMs, wideGraphMs,
      wideBarrier == wideGraph});

  // cross6: the full scenario x platform cross product (every sweep case,
  // default 9, for every scenario) on the graph engine, pooled. seq_ms
  // always carries the uncached run.
  argo::scenarios::EvalOptions cross;
  cross.generator.seed = 7;
  cross.scenarioCount = 6;
  cross.simTrials = 1;
  cross.sweepMode = argo::scenarios::SweepMode::Cross;
  cross.threads = 0;
  const std::size_t crossUnits =
      static_cast<std::size_t>(cross.scenarioCount) *
      argo::scenarios::buildPlatformSweep(cross.sweep).size() * policyCount;

  cross.cacheEnabled = false;
  double crossUncachedMs = 0.0;
  const std::string crossUncached = timedEval(cross, crossUncachedMs);

  // cross6/cache_cold: fresh cache, amortized within the single batch —
  // cross-policy and cross-cell prefix reuse plus identical-schedule hits.
  cross.cacheEnabled = true;
  auto shared = std::make_shared<argo::core::ToolchainCache>();
  cross.cache = shared;
  double crossColdMs = 0.0;
  const std::string crossCold = timedEval(cross, crossColdMs);
  report.addRow(argo::bench::ParallelBenchRow{
      "cross6", "cache_cold", crossUnits, crossUncachedMs, crossColdMs,
      crossCold == crossUncached});

  // cross6/cache_warm: the same sweep again against the now-populated
  // cache — only the simulator probes and report assembly recompute. This
  // is the incremental re-sweep / resident-service row and the headline
  // speedup of the caching layer (acceptance: >= 3x).
  double crossWarmMs = 0.0;
  const std::string crossWarm = timedEval(cross, crossWarmMs);
  report.addRow(argo::bench::ParallelBenchRow{
      "cross6", "cache_warm", crossUnits, crossUncachedMs, crossWarmMs,
      crossWarm == crossUncached});

  // cross6/disk_warm: the cross-process warm start. A first batch
  // populates a disk cache directory (support/disk_cache.h); the timed
  // run then starts with a FRESH in-memory cache — as a new process
  // would — and fills it entirely from disk. The gap between this row
  // and cache_warm is the cost of deserializing records instead of
  // sharing live memory.
  std::string cacheDir =
      (std::filesystem::temp_directory_path() / "argo_bench_disk_XXXXXX")
          .string();
  if (mkdtemp(cacheDir.data()) == nullptr) {
    throw std::runtime_error("mkdtemp failed for " + cacheDir);
  }
  cross.cache.reset();
  cross.cacheDir = cacheDir;
  double diskColdMs = 0.0;
  (void)timedEval(cross, diskColdMs);  // populate only
  double diskWarmMs = 0.0;
  const std::string diskWarm = timedEval(cross, diskWarmMs);
  report.addRow(argo::bench::ParallelBenchRow{
      "cross6", "disk_warm", crossUnits, crossUncachedMs, diskWarmMs,
      diskWarm == crossUncached});
  std::filesystem::remove_all(cacheDir);

  // cross6/trace_overhead: the same uncached cross sweep with the span
  // recorder off (seq_ms) vs. recording and exporting a full trace to
  // /dev/null (pooled_ms). "speedup" reads as off-over-on, so values
  // near 1.0 mean the instruments are cheap enough to leave in release
  // builds; "identical" checks the traced report against the untraced
  // reference — tracing must stay strictly off the report path.
  cross.cache.reset();
  cross.cacheDir.clear();
  cross.cacheEnabled = false;
  double untracedMs = 0.0;
  (void)timedEval(cross, untracedMs);  // warm-up parity with the traced run
  (void)timedEval(cross, untracedMs);
  argo::support::TraceRecorder::global().enable();
  double tracedMs = 0.0;
  const std::string traced = timedEval(cross, tracedMs);
  if (!argo::support::TraceRecorder::global().writeFile("/dev/null")) {
    throw std::runtime_error("trace export to /dev/null failed");
  }
  argo::support::TraceRecorder::global().reset();
  report.addRow(argo::bench::ParallelBenchRow{
      "cross6", "trace_overhead", crossUnits, untracedMs, tracedMs,
      traced == crossUncached});

  return report.finish();
}
