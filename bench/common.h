// Shared helpers for the experiment harness. Each bench binary regenerates
// one experiment of the paper-derived index (E1..E10) and prints a small
// table with the expected shape stated inline.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/egpws.h"
#include "apps/polka.h"
#include "apps/weaa.h"
#include "core/toolchain.h"
#include "sim/simulator.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/strings.h"

namespace argo::bench {

inline apps::EgpwsConfig egpwsConfig() {
  apps::EgpwsConfig config;
  return config;
}

inline apps::WeaaConfig weaaConfig() {
  apps::WeaaConfig config;
  return config;
}

inline apps::PolkaConfig polkaConfig() {
  apps::PolkaConfig config;
  return config;
}

struct AppCase {
  std::string name;
  model::Diagram diagram;
};

inline std::vector<AppCase> allApps() {
  std::vector<AppCase> apps;
  apps.push_back({"egpws", apps::buildEgpwsDiagram(egpwsConfig())});
  apps.push_back({"weaa", apps::buildWeaaDiagram(weaaConfig())});
  apps.push_back({"polka", apps::buildPolkaDiagram(polkaConfig())});
  return apps;
}

/// Seeds the environment of a compiled app with representative inputs.
inline void setInputs(const std::string& app, ir::Environment& env,
                      std::uint64_t seed) {
  support::Rng rng(seed);
  if (app == "egpws") {
    apps::EgpwsInputs in;
    in.x = 2.0 + rng.uniformDouble() * 28.0;
    in.y = 2.0 + rng.uniformDouble() * 28.0;
    in.altitude = 200.0 + rng.uniformDouble() * 1500.0;
    in.heading = rng.uniformDouble() * 6.28;
    in.verticalSpeed = rng.uniformDouble() * 30.0 - 20.0;
    apps::setEgpwsInputs(env, in);
  } else if (app == "weaa") {
    apps::WeaaInputs in;
    in.oy = -60.0 + rng.uniformDouble() * 120.0;
    in.lx = rng.uniformDouble() * 200.0;
    in.gamma0 = 150.0 + rng.uniformDouble() * 400.0;
    apps::setWeaaInputs(env, in);
  } else {
    apps::setPolkaInputs(env, polkaConfig(),
                         apps::makePolkaFrame(polkaConfig(), seed));
  }
}

/// Runs the simulator `trials` times with random inputs, returns the
/// maximum observed makespan (the "high watermark" execution). Trials are
/// independent probes: each starts from the same zero environment and only
/// the input seed differs. (Consecutive-step trajectories — block state
/// carried from one step into the next — are deliberately *not* covered
/// here; probe the bound with i.i.d. inputs, use sim::Simulator directly
/// for stateful runs.) Independence is what lets trials run through the
/// shared support::parallelFor layer when `threads != 1`
/// (support::parallelFor convention: 0 = hardware threads). Every trial
/// writes its own slot and the maximum is reduced in trial order, so the
/// result is bit-identical for any thread count.
inline adl::Cycles observedWorst(const core::ToolchainResult& result,
                                 const adl::Platform& platform,
                                 const std::string& app, int trials,
                                 int threads = 1) {
  const sim::Simulator simulator(result.program, platform);
  ir::Environment base = ir::makeZeroEnvironment(*result.fn);
  for (const auto& [name, value] : result.constants) base[name] = value;
  std::vector<adl::Cycles> makespans(static_cast<std::size_t>(trials), 0);
  support::parallelFor(
      makespans.size(), threads, [&](std::size_t t) {
        ir::Environment env = base;
        setInputs(app, env, 1000 + static_cast<std::uint64_t>(t));
        makespans[t] = simulator.step(env).makespan;
      });
  adl::Cycles worst = 0;
  for (adl::Cycles m : makespans) worst = std::max(worst, m);
  return worst;
}

inline void printHeader(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

/// True when the bench was invoked with `--json`: emit one machine-readable
/// JSON document on stdout instead of the human table, so CI can record the
/// perf trajectory per PR. Any other argument is rejected loudly — a typo
/// silently falling back to table output would corrupt the recorded series.
inline bool jsonRequested(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json]\n", argv[0]);
      std::exit(2);
    }
  }
  return json;
}

/// One sequential-vs-pooled comparison of a parallel-infrastructure bench.
struct ParallelBenchRow {
  std::string app;
  std::string phase;      ///< optional sub-row label ("" = none)
  std::size_t items = 0;  ///< tasks / feedback points under comparison
  double seqMs = 0.0;
  double pooledMs = 0.0;
  bool identical = false;
  [[nodiscard]] double speedup() const {
    return pooledMs > 0.0 ? seqMs / pooledMs : 0.0;
  }
};

/// Collects the rows of a `bench_parallel_*` run and renders them either
/// as the classic streaming table or, with --json, as a single JSON
/// document (emitted by finish()). The exit-code policy is shared too:
/// finish() returns 0 iff every row was bit-identical, so CI treats any
/// determinism mismatch as a failure in both output modes.
class ParallelBenchReport {
 public:
  ParallelBenchReport(std::string bench, std::string itemsHeader, bool json)
      : bench_(std::move(bench)),
        itemsHeader_(std::move(itemsHeader)),
        json_(json) {}

  [[nodiscard]] bool json() const noexcept { return json_; }

  void addRow(ParallelBenchRow row) {
    if (!json_) {
      if (rows_.empty()) {
        std::printf("%-8s %8s %-8s %12s %12s %9s  %s\n", "app",
                    itemsHeader_.c_str(), "phase", "seq(ms)", "pooled(ms)",
                    "speedup", "identical?");
      }
      std::printf("%-8s %8zu %-8s %12.2f %12.2f %8.2fx  %s\n",
                  row.app.c_str(), row.items,
                  row.phase.empty() ? "-" : row.phase.c_str(), row.seqMs,
                  row.pooledMs, row.speedup(),
                  row.identical ? "yes" : "NO (BUG)");
    }
    rows_.push_back(std::move(row));
  }

  /// Totals line (table) or the whole document (json); returns the
  /// process exit code.
  [[nodiscard]] int finish() const {
    double totalSeq = 0.0;
    double totalPooled = 0.0;
    bool allIdentical = true;
    for (const ParallelBenchRow& row : rows_) {
      totalSeq += row.seqMs;
      totalPooled += row.pooledMs;
      allIdentical = allIdentical && row.identical;
    }
    if (json_) {
      std::printf("{\"bench\":\"%s\",\"rows\":[", bench_.c_str());
      for (std::size_t i = 0; i < rows_.size(); ++i) {
        const ParallelBenchRow& row = rows_[i];
        std::printf(
            "%s{\"app\":\"%s\",%s\"%s\":%zu,\"seq_ms\":%.3f,"
            "\"pooled_ms\":%.3f,\"speedup\":%.3f,\"identical\":%s}",
            i == 0 ? "" : ",", row.app.c_str(),
            row.phase.empty()
                ? ""
                : ("\"phase\":\"" + row.phase + "\",").c_str(),
            itemsHeader_.c_str(), row.items, row.seqMs, row.pooledMs,
            row.speedup(), row.identical ? "true" : "false");
      }
      std::printf(
          "],\"total\":{\"seq_ms\":%.3f,\"pooled_ms\":%.3f,"
          "\"speedup\":%.3f},\"all_identical\":%s}\n",
          totalSeq, totalPooled,
          totalPooled > 0.0 ? totalSeq / totalPooled : 0.0,
          allIdentical ? "true" : "false");
    } else {
      std::printf("%-8s %8s %-8s %12.2f %12.2f %8.2fx  %s\n", "total", "-",
                  "-", totalSeq, totalPooled,
                  totalPooled > 0.0 ? totalSeq / totalPooled : 0.0,
                  allIdentical ? "yes" : "NO (BUG)");
    }
    return allIdentical ? 0 : 1;
  }

 private:
  std::string bench_;
  std::string itemsHeader_;
  bool json_;
  std::vector<ParallelBenchRow> rows_;
};

}  // namespace argo::bench
