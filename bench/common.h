// Shared helpers for the experiment harness. Each bench binary regenerates
// one experiment of the paper-derived index (E1..E10) and prints a small
// table with the expected shape stated inline.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/egpws.h"
#include "apps/polka.h"
#include "apps/weaa.h"
#include "core/toolchain.h"
#include "sim/simulator.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/strings.h"

namespace argo::bench {

inline apps::EgpwsConfig egpwsConfig() {
  apps::EgpwsConfig config;
  return config;
}

inline apps::WeaaConfig weaaConfig() {
  apps::WeaaConfig config;
  return config;
}

inline apps::PolkaConfig polkaConfig() {
  apps::PolkaConfig config;
  return config;
}

struct AppCase {
  std::string name;
  model::Diagram diagram;
};

inline std::vector<AppCase> allApps() {
  std::vector<AppCase> apps;
  apps.push_back({"egpws", apps::buildEgpwsDiagram(egpwsConfig())});
  apps.push_back({"weaa", apps::buildWeaaDiagram(weaaConfig())});
  apps.push_back({"polka", apps::buildPolkaDiagram(polkaConfig())});
  return apps;
}

/// Seeds the environment of a compiled app with representative inputs.
inline void setInputs(const std::string& app, ir::Environment& env,
                      std::uint64_t seed) {
  support::Rng rng(seed);
  if (app == "egpws") {
    apps::EgpwsInputs in;
    in.x = 2.0 + rng.uniformDouble() * 28.0;
    in.y = 2.0 + rng.uniformDouble() * 28.0;
    in.altitude = 200.0 + rng.uniformDouble() * 1500.0;
    in.heading = rng.uniformDouble() * 6.28;
    in.verticalSpeed = rng.uniformDouble() * 30.0 - 20.0;
    apps::setEgpwsInputs(env, in);
  } else if (app == "weaa") {
    apps::WeaaInputs in;
    in.oy = -60.0 + rng.uniformDouble() * 120.0;
    in.lx = rng.uniformDouble() * 200.0;
    in.gamma0 = 150.0 + rng.uniformDouble() * 400.0;
    apps::setWeaaInputs(env, in);
  } else {
    apps::setPolkaInputs(env, polkaConfig(),
                         apps::makePolkaFrame(polkaConfig(), seed));
  }
}

/// Runs the simulator `trials` times with random inputs, returns the
/// maximum observed makespan (the "high watermark" execution). Trials are
/// independent probes: each starts from the same zero environment and only
/// the input seed differs. (Consecutive-step trajectories — block state
/// carried from one step into the next — are deliberately *not* covered
/// here; probe the bound with i.i.d. inputs, use sim::Simulator directly
/// for stateful runs.) Independence is what lets trials run through the
/// shared support::parallelFor layer when `threads != 1`
/// (support::parallelFor convention: 0 = hardware threads). Every trial
/// writes its own slot and the maximum is reduced in trial order, so the
/// result is bit-identical for any thread count.
inline adl::Cycles observedWorst(const core::ToolchainResult& result,
                                 const adl::Platform& platform,
                                 const std::string& app, int trials,
                                 int threads = 1) {
  const sim::Simulator simulator(result.program, platform);
  ir::Environment base = ir::makeZeroEnvironment(*result.fn);
  for (const auto& [name, value] : result.constants) base[name] = value;
  std::vector<adl::Cycles> makespans(static_cast<std::size_t>(trials), 0);
  support::parallelFor(
      makespans.size(), threads, [&](std::size_t t) {
        ir::Environment env = base;
        setInputs(app, env, 1000 + static_cast<std::uint64_t>(t));
        makespans[t] = simulator.step(env).makespan;
      });
  adl::Cycles worst = 0;
  for (adl::Cycles m : makespans) worst = std::max(worst, m);
  return worst;
}

inline void printHeader(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

}  // namespace argo::bench
