// E5: WCET-directed scratchpad management.
//
// SPM allocation on/off per app, plus an SPM-capacity sweep on EGPWS (its
// terrain table is the classic hot read-only candidate). Sec. III-B:
// "Scratchpad memories are preferred to caches because they enable more
// precise WCET estimation"; Sec. III-C cites WCET-directed SPM management.
#include "common.h"

int main() {
  using namespace argo;
  bench::printHeader(
      "E5 — scratchpad allocation",
      "WCET-directed SPM management reduces both sequential and parallel "
      "WCET (Sec. III-B/C)");

  const adl::Platform platform = adl::makeRecoreXentiumBus(8);

  std::printf("%-8s %-6s %14s %14s\n", "app", "spm", "seqWCET", "parWCET");
  for (bench::AppCase& app : bench::allApps()) {
    for (const bool spm : {false, true}) {
      core::ToolchainOptions options;
      options.spmAllocation = spm;
      const core::Toolchain toolchain(platform, options);
      const core::ToolchainResult result = toolchain.run(app.diagram);
      std::printf("%-8s %-6s %14s %14s\n", app.name.c_str(),
                  spm ? "on" : "off",
                  support::formatCycles(result.sequentialWcet).c_str(),
                  support::formatCycles(result.system.makespan).c_str());
    }
  }

  // Capacity sweep: shrink the SPM and watch the benefit fade. Implemented
  // by scaling the core model's spmBytes.
  std::printf("\n--- EGPWS, SPM capacity sweep (bytes -> seqWCET) ---\n");
  for (const std::int64_t capacity :
       {std::int64_t{0}, std::int64_t{512}, std::int64_t{2048},
        std::int64_t{8192}, std::int64_t{32768}}) {
    std::vector<adl::Tile> tiles;
    for (int i = 0; i < 8; ++i) {
      adl::Tile tile{i, adl::CoreModel::xentiumDsp()};
      tile.core.spmBytes = capacity;
      tiles.push_back(tile);
    }
    adl::BusModel bus;
    const adl::Platform sized("sized_bus", std::move(tiles), bus,
                              8 * 1024 * 1024);
    core::ToolchainOptions options;
    options.spmAllocation = capacity > 0;
    const core::Toolchain toolchain(sized, options);
    const core::ToolchainResult result =
        toolchain.run(apps::buildEgpwsDiagram(bench::egpwsConfig()));
    std::printf("  spm=%6lld B  seqWCET=%14s  parWCET=%14s\n",
                static_cast<long long>(capacity),
                support::formatCycles(result.sequentialWcet).c_str(),
                support::formatCycles(result.system.makespan).c_str());
  }
  std::printf("\nexpected shape: WCET drops once the hot tables fit; "
              "saturates when everything eligible is resident.\n");
  return 0;
}
