// Infrastructure bench: sequential vs. pooled branch-and-bound search
// (sched::SchedOptions::bnbFrontierDepth / parallelThreads). The exact
// search splits at the frontier depth into independent subtrees pruned
// against a shared monotone incumbent (support::SharedIncumbent); this
// bench times both paths on a graph near the default bnbTaskLimit — where
// the exact search is at its most expensive but still budget-clean — and
// verifies the pooled schedule is bit-identical to the classic monolithic
// DFS (bnbFrontierDepth = 0, one thread), as sched/bnb.cpp proves it must
// be. `--json` emits the same rows as one machine-readable JSON document.
#include <chrono>
#include <thread>

#include "../tests/diamond_fixture.h"
#include "common.h"
#include "htg/htg.h"
#include "sched/bnb.h"
#include "sched/scheduler.h"

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

int main(int argc, char** argv) {
  const bool json = argo::bench::jsonRequested(argc, argv);
  argo::bench::ParallelBenchReport report("bench_parallel_bnb", "tasks",
                                          json);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // The shared diamond fixture expanded at 3 chunks/loop: 12 tasks — near
  // the default bnbTaskLimit of 14 — whose full exact search on a 3-core
  // platform expands a few hundred thousand nodes: enough work to
  // distribute, small enough to finish inside the default node budget (a
  // budget-exhausted search would void the bit-identity check below).
  const argo::adl::Platform platform = argo::adl::makeRecoreXentiumBus(3);
  const auto fn = argo::test::makeDiamondFn(/*width=*/24);
  const argo::htg::TaskGraph graph = argo::htg::expand(
      argo::htg::buildHtg(*fn), argo::htg::ExpandOptions{3});

  argo::sched::SchedOptions options;
  options.policy = "branch_and_bound";
  options.interferenceAware = false;  // pure-makespan search space

  if (!json) {
    argo::bench::printHeader(
        "bench_parallel_bnb: pooled branch-and-bound subtree search",
        "independent frontier subtrees pruned against a shared monotone "
        "incumbent, bit-identical optimum");
    std::printf("hardware threads: %u (speedup needs >= 4)\n", hw);
    std::printf("tasks: %zu (bnbTaskLimit %d), cores: %d, node budget: %lld\n",
                graph.tasks.size(), options.bnbTaskLimit,
                platform.coreCount(),
                static_cast<long long>(options.bnbNodeBudget));
  }

  const argo::sched::Scheduler scheduler(graph, platform);

  // Classic monolithic DFS: the reference both for time and for bits.
  options.bnbFrontierDepth = 0;
  options.parallelThreads = 1;
  auto begin = Clock::now();
  const argo::sched::Schedule classic = scheduler.run(options);
  const double classicMs =
      std::chrono::duration<double, std::milli>(Clock::now() - begin).count();

  for (const int depth : {1, 2, 3}) {
    options.bnbFrontierDepth = depth;
    // One subtree executor per hardware thread, but never fewer than 4 so
    // the pool path (not the inline fast path) is exercised even on small
    // hosts.
    options.parallelThreads = static_cast<int>(std::max(hw, 4u));
    begin = Clock::now();
    const argo::sched::Schedule pooled = scheduler.run(options);
    const double pooledMs =
        std::chrono::duration<double, std::milli>(Clock::now() - begin)
            .count();

    // Field-complete comparison via Schedule::operator==; a budget-
    // exhausted run ("branch_and_bound(budget)") also fails this against
    // the clean classic label, which is exactly the alarm we want.
    report.addRow({"diamond", "depth" + std::to_string(depth),
                   graph.tasks.size(), classicMs, pooledMs,
                   classic == pooled});
  }
  return report.finish();
}
