// Infrastructure bench: sequential vs. pooled per-task timing analysis
// (sched::computeTaskTimings) and MHP-based system analysis
// (syswcet::analyzeSystem). Prints per-app wall-clock for both paths, the
// speedup, and verifies the pooled tables and bounds are bit-identical.
#include <chrono>
#include <thread>

#include "common.h"
#include "htg/htg.h"
#include "par/parallel_program.h"
#include "sched/scheduler.h"
#include "syswcet/system_wcet.h"

namespace {

using argo::bench::AppCase;
using Clock = std::chrono::steady_clock;

constexpr int kRepeats = 5;

double msSince(Clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(Clock::now() - begin)
      .count();
}

}  // namespace

int main() {
  argo::bench::printHeader(
      "bench_parallel_wcet: pooled per-task timing + system analysis",
      "per-task WCET tables and MHP rows computed concurrently, "
      "bit-identical results");

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const argo::adl::Platform platform = argo::adl::makeRecoreXentiumBus(8);
  // A fine granularity so there are many independent tasks to distribute.
  const int chunks = 16;

  std::printf("hardware threads: %u (speedup needs >= 4)\n", hw);
  std::printf("%-8s %6s  %-7s %10s %10s %8s  %s\n", "app", "tasks", "phase",
              "seq(ms)", "pooled(ms)", "speedup", "identical?");

  bool allIdentical = true;
  for (AppCase& app : argo::bench::allApps()) {
    const argo::model::CompiledModel model = app.diagram.compile();
    const argo::htg::TaskGraph graph = argo::htg::expand(
        argo::htg::buildHtg(*model.fn), argo::htg::ExpandOptions{chunks});

    // --- Per-task code-level timing analysis. ---
    std::vector<argo::sched::TaskTiming> seqTimings;
    auto begin = Clock::now();
    for (int r = 0; r < kRepeats; ++r) {
      seqTimings = argo::sched::computeTaskTimings(graph, platform, 1);
    }
    const double seqTimingMs = msSince(begin);

    std::vector<argo::sched::TaskTiming> pooledTimings;
    begin = Clock::now();
    for (int r = 0; r < kRepeats; ++r) {
      pooledTimings = argo::sched::computeTaskTimings(graph, platform, 0);
    }
    const double pooledTimingMs = msSince(begin);

    const bool timingsIdentical = seqTimings == pooledTimings;
    allIdentical = allIdentical && timingsIdentical;
    std::printf("%-8s %6zu  %-7s %10.2f %10.2f %7.2fx  %s\n", app.name.c_str(),
                graph.tasks.size(), "timings", seqTimingMs, pooledTimingMs,
                pooledTimingMs > 0.0 ? seqTimingMs / pooledTimingMs : 0.0,
                timingsIdentical ? "yes" : "NO (BUG)");

    // --- System-level analysis on the scheduled program. ---
    const argo::sched::Scheduler scheduler(graph, platform);
    const argo::sched::Schedule schedule =
        scheduler.run(argo::sched::SchedOptions{});
    const argo::par::ParallelProgram program =
        argo::par::buildParallelProgram(graph, schedule, platform);

    argo::syswcet::SystemWcet seqSystem;
    begin = Clock::now();
    for (int r = 0; r < kRepeats; ++r) {
      seqSystem = argo::syswcet::analyzeSystem(
          program, platform, scheduler.timings(),
          argo::syswcet::InterferenceMethod::MhpRefined, 1);
    }
    const double seqSystemMs = msSince(begin);

    argo::syswcet::SystemWcet pooledSystem;
    begin = Clock::now();
    for (int r = 0; r < kRepeats; ++r) {
      pooledSystem = argo::syswcet::analyzeSystem(
          program, platform, scheduler.timings(),
          argo::syswcet::InterferenceMethod::MhpRefined, 0);
    }
    const double pooledSystemMs = msSince(begin);

    const bool systemIdentical = seqSystem == pooledSystem;
    allIdentical = allIdentical && systemIdentical;
    std::printf("%-8s %6zu  %-7s %10.2f %10.2f %7.2fx  %s\n", app.name.c_str(),
                graph.tasks.size(), "system", seqSystemMs, pooledSystemMs,
                pooledSystemMs > 0.0 ? seqSystemMs / pooledSystemMs : 0.0,
                systemIdentical ? "yes" : "NO (BUG)");
  }

  if (!allIdentical) return 1;
  return 0;
}
