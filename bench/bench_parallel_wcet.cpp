// Infrastructure bench: sequential vs. pooled per-task timing analysis
// (sched::computeTaskTimings) and MHP-based system analysis
// (syswcet::analyzeSystem). Prints per-app wall-clock for both paths, the
// speedup, and verifies the pooled tables and bounds are bit-identical.
// `--json` emits the same rows as one machine-readable JSON document.
#include <chrono>
#include <thread>

#include "common.h"
#include "htg/htg.h"
#include "par/parallel_program.h"
#include "sched/scheduler.h"
#include "syswcet/system_wcet.h"

namespace {

using argo::bench::AppCase;
using Clock = std::chrono::steady_clock;

constexpr int kRepeats = 5;

double msSince(Clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(Clock::now() - begin)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argo::bench::jsonRequested(argc, argv);
  argo::bench::ParallelBenchReport report("bench_parallel_wcet", "tasks",
                                          json);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const argo::adl::Platform platform = argo::adl::makeRecoreXentiumBus(8);
  // A fine granularity so there are many independent tasks to distribute.
  const int chunks = 16;

  if (!json) {
    argo::bench::printHeader(
        "bench_parallel_wcet: pooled per-task timing + system analysis",
        "per-task WCET tables and MHP rows computed concurrently, "
        "bit-identical results");
    std::printf("hardware threads: %u (speedup needs >= 4)\n", hw);
  }

  for (AppCase& app : argo::bench::allApps()) {
    const argo::model::CompiledModel model = app.diagram.compile();
    const argo::htg::TaskGraph graph = argo::htg::expand(
        argo::htg::buildHtg(*model.fn), argo::htg::ExpandOptions{chunks});

    // --- Per-task code-level timing analysis. ---
    std::vector<argo::sched::TaskTiming> seqTimings;
    auto begin = Clock::now();
    for (int r = 0; r < kRepeats; ++r) {
      seqTimings = argo::sched::computeTaskTimings(graph, platform, 1);
    }
    const double seqTimingMs = msSince(begin);

    std::vector<argo::sched::TaskTiming> pooledTimings;
    begin = Clock::now();
    for (int r = 0; r < kRepeats; ++r) {
      pooledTimings = argo::sched::computeTaskTimings(graph, platform, 0);
    }
    const double pooledTimingMs = msSince(begin);

    report.addRow({app.name, "timings", graph.tasks.size(), seqTimingMs,
                   pooledTimingMs, seqTimings == pooledTimings});

    // --- System-level analysis on the scheduled program. ---
    const argo::sched::Scheduler scheduler(graph, platform);
    const argo::sched::Schedule schedule =
        scheduler.run(argo::sched::SchedOptions{});
    const argo::par::ParallelProgram program =
        argo::par::buildParallelProgram(graph, schedule, platform);

    argo::syswcet::SystemWcet seqSystem;
    begin = Clock::now();
    for (int r = 0; r < kRepeats; ++r) {
      seqSystem = argo::syswcet::analyzeSystem(
          program, platform, scheduler.timings(),
          argo::syswcet::InterferenceMethod::MhpRefined, 1);
    }
    const double seqSystemMs = msSince(begin);

    argo::syswcet::SystemWcet pooledSystem;
    begin = Clock::now();
    for (int r = 0; r < kRepeats; ++r) {
      pooledSystem = argo::syswcet::analyzeSystem(
          program, platform, scheduler.timings(),
          argo::syswcet::InterferenceMethod::MhpRefined, 0);
    }
    const double pooledSystemMs = msSince(begin);

    report.addRow({app.name, "system", graph.tasks.size(), seqSystemMs,
                   pooledSystemMs, seqSystem == pooledSystem});
  }
  return report.finish();
}
