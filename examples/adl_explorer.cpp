// Architecture exploration with the textual ADL: describe a custom
// platform as text (as an end user would), parse it, and compare it
// against the built-in platforms on one application — the design-space
// exploration loop the ARGO ADL enables.
#include <cstdio>

#include "adl/parser.h"
#include "apps/polka.h"
#include "core/toolchain.h"

int main() {
  using namespace argo;

  // A hypothetical 6-core platform with a fast TDMA bus, written in the
  // ADL text format.
  const char* customAdl = R"(
# custom exploration target: 6 fast DSPs on a short-slot TDMA bus
platform custom_tdma6
shared_memory 8388608
interconnect bus tdma base_access 6 slot 8 word_bytes 8
core fastdsp int_alu 1 int_mul 1 int_div 8 float_add 1 float_mul 1 float_div 8 math_func 24 compare 1 select 1 branch 1 loop_step 1 local_access 1 spm_access 1 spm_bytes 65536
tile 0 fastdsp
tile 1 fastdsp
tile 2 fastdsp
tile 3 fastdsp
tile 4 fastdsp
tile 5 fastdsp
)";

  std::vector<adl::Platform> platforms;
  platforms.push_back(adl::parseAdl(customAdl));
  platforms.push_back(adl::makeRecoreXentiumBus(6));
  platforms.push_back(adl::makeKitLeon3Inoc(2, 3));

  std::printf("platform exploration for the POLKA pipeline\n\n");
  std::printf("%-20s %6s %14s %14s %8s\n", "platform", "cores", "seqWCET",
              "parWCET", "speedup");
  const model::Diagram diagram =
      apps::buildPolkaDiagram(apps::PolkaConfig{});
  for (const adl::Platform& platform : platforms) {
    const core::Toolchain toolchain(platform, core::ToolchainOptions{});
    const core::ToolchainResult result = toolchain.run(diagram);
    std::printf("%-20s %6d %14lld %14lld %7.2fx\n", platform.name().c_str(),
                platform.coreCount(),
                static_cast<long long>(result.sequentialWcet),
                static_cast<long long>(result.system.makespan),
                result.wcetSpeedup());
  }

  // Round-trip demonstration: the built-in platform serialized back to ADL.
  std::printf("\n--- recore_xentium_bus, serialized to ADL ---\n%s",
              adl::toAdlText(adl::makeRecoreXentiumBus(2)).c_str());
  return 0;
}
