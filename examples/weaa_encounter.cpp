// WEAA use case (aerospace): wake-vortex conflict detection and evasion
// advisory. Sweeps a line of approach geometries, prints the advisory the
// parallel implementation computes, and reports the guaranteed reaction
// time (the WCET bound) that certification would build on.
#include <cstdio>

#include "apps/weaa.h"
#include "core/toolchain.h"
#include "sim/simulator.h"

int main() {
  using namespace argo;

  const apps::WeaaConfig config;
  const adl::Platform platform = adl::makeRecoreXentiumBus(8);
  const core::Toolchain toolchain(platform, core::ToolchainOptions{});
  const core::ToolchainResult result =
      toolchain.run(apps::buildWeaaDiagram(config));

  std::printf("WEAA advisory on %s\n", platform.name().c_str());
  std::printf("  guaranteed advisory latency: %lld cycles "
              "(%.2fx faster than single core, proven)\n\n",
              static_cast<long long>(result.system.makespan),
              result.wcetSpeedup());

  sim::Simulator simulator(result.program, platform);
  ir::Environment env = ir::makeZeroEnvironment(*result.fn);
  for (const auto& [name, value] : result.constants) env[name] = value;

  std::printf("%10s %10s %10s %9s %12s %12s\n", "lateral(m)", "maxSev",
              "conflict", "bestSev", "advisory", "cycles");
  for (double lateral = -80.0; lateral <= 80.0; lateral += 20.0) {
    apps::WeaaInputs inputs;
    inputs.oy = lateral;
    apps::setWeaaInputs(env, inputs);
    const sim::StepResult observed = simulator.step(env);
    const double conflict = env.at("conflict_out").getFloat();
    // Recover the advised offset: the candidate whose score equals best.
    double advised = 0.0;
    const double best = env.at("best_score_out").getFloat();
    for (int m = 1; m <= config.candidates; ++m) {
      if (env.at("scores_out").getFloat(m - 1) == best) {
        advised = apps::weaaCandidateOffset(m, config);
        break;
      }
    }
    std::printf("%10.0f %10.3f %10s %9.3f %11.0fm %12lld\n", lateral,
                env.at("max_severity_out").getFloat(),
                conflict > 0.0 ? "CONFLICT" : "clear", best,
                conflict > 0.0 ? advised : 0.0,
                static_cast<long long>(observed.makespan));
    if (observed.makespan > result.system.makespan) {
      std::printf("  !! bound violated\n");
      return 1;
    }
  }
  std::printf("\nevery advisory computed within the static bound.\n");
  return 0;
}
