// Quickstart: the complete ARGO flow (the paper's Figure 1) on a small
// signal-processing diagram.
//
//   1. describe the application as an Xcos-style dataflow model,
//   2. compile it to the C-subset IR,
//   3. run the tool-chain: transformations, HTG extraction, WCET-aware
//      scheduling, explicit parallel program, code- and system-level WCET,
//      cross-layer feedback,
//   4. validate the bound against the timing simulator.
#include <cstdio>

#include "adl/platform.h"
#include "apps/egpws.h"
#include "core/report.h"
#include "core/toolchain.h"
#include "model/blocks.h"
#include "model/scilab.h"
#include "sim/simulator.h"

int main() {
  using namespace argo;

  // --- 1. Model: moving-average + envelope detector over a sample block.
  model::Diagram diagram("quickstart");
  const ir::Type vec = ir::Type::array(ir::ScalarKind::Float64, {64});
  const auto in = diagram.add<model::InputBlock>("samples", vec);
  const auto gain = diagram.add<model::GainBlock>("preamp", 2.5);
  diagram.connect(in, gain);
  const auto square = diagram.add<model::ProductBlock>("square", 2);
  diagram.connect(gain, 0, square, 0);
  diagram.connect(gain, 0, square, 1);
  const auto smooth = diagram.add<model::ScilabBlock>(
      "smooth",
      "for i = 2:63\n"
      "  y(i) = 0.25*u(i-1) + 0.5*u(i) + 0.25*u(i+1)\n"
      "end\n"
      "y(1) = u(1)\n"
      "y(64) = u(64)\n",
      std::vector<model::scilab::PortSpec>{{"u", vec}},
      std::vector<model::scilab::PortSpec>{{"y", vec}});
  diagram.connect(square, 0, smooth, 0);
  const auto peak = diagram.add<model::ReduceBlock>(
      "peak", model::ReduceBlock::Op::Max);
  diagram.connect(smooth, 0, peak, 0);
  const auto out = diagram.add<model::OutputBlock>("peak_out");
  diagram.connect(peak, 0, out, 0);

  // --- 2./3. Tool-chain on the Recore-style bus platform.
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);
  core::ToolchainOptions options;
  const core::Toolchain toolchain(platform, options);
  const core::ToolchainResult result = toolchain.run(diagram);
  std::printf("%s\n", result.reportText().c_str());

  // --- 4. Simulate one step and compare with the bound.
  sim::Simulator simulator(result.program, platform);
  ir::Environment env = ir::makeZeroEnvironment(*result.fn);
  for (const auto& [name, value] : result.constants) env[name] = value;
  ir::Value samples = ir::Value::zeros(vec);
  for (int i = 0; i < 64; ++i) {
    samples.setFloat(i, 0.1 * i - 2.0);
  }
  env["samples"] = samples;
  const sim::StepResult observed = simulator.step(env);

  std::printf("observed makespan:  %lld cycles\n",
              static_cast<long long>(observed.makespan));
  std::printf("static WCET bound:  %lld cycles\n",
              static_cast<long long>(result.system.makespan));
  std::printf("bound holds:        %s\n",
              observed.makespan <= result.system.makespan ? "yes" : "NO!");
  std::printf("peak output:        %f\n", env.at("peak_out").getFloat());

  // Cross-layer interface views (Sec. II-E): schedule Gantt + bottlenecks.
  std::printf("\n%s\n%s\n", core::renderGantt(result).c_str(),
              core::renderBottlenecks(result, 6).c_str());

  // Per-core generated code for one core, to show the explicit model.
  std::printf("\n--- generated code, core 0 ---\n%s\n",
              par::emitCoreSource(result.program, 0).c_str());
  return observed.makespan <= result.system.makespan ? 0 : 1;
}
