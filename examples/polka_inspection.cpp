// POLKA use case (industrial image processing): in-line glass-stress
// inspection on the KIT-style NoC platform. Demonstrates the hard-real-time
// framing: the line speed dictates a per-frame cycle budget, and the
// tool-chain's WCET bound proves whether the deployment is feasible —
// before running anything.
#include <cstdio>

#include "apps/polka.h"
#include "core/toolchain.h"
#include "par/parallel_program.h"
#include "sim/simulator.h"

int main() {
  using namespace argo;

  const apps::PolkaConfig config;
  const adl::Platform platform = adl::makeKitLeon3Inoc(4, 4);
  const core::Toolchain toolchain(platform, core::ToolchainOptions{});
  const core::ToolchainResult result =
      toolchain.run(apps::buildPolkaDiagram(config));

  // Feasibility check against an in-line inspection budget.
  const adl::Cycles budget = 800'000;  // cycles per container
  std::printf("POLKA glass inspection on %s\n", platform.name().c_str());
  std::printf("  WCET bound per frame: %lld cycles\n",
              static_cast<long long>(result.system.makespan));
  std::printf("  line budget:          %lld cycles\n",
              static_cast<long long>(budget));
  std::printf("  deployment feasible:  %s (proven statically)\n\n",
              result.system.makespan <= budget ? "yes" : "NO");

  sim::Simulator simulator(result.program, platform);
  ir::Environment env = ir::makeZeroEnvironment(*result.fn);
  for (const auto& [name, value] : result.constants) env[name] = value;

  std::printf("%7s %9s %9s %10s %8s\n", "frame", "defects", "maxDoLP",
              "cycles", "verdict");
  for (std::uint64_t frame = 1; frame <= 6; ++frame) {
    // Even frames image pristine containers (uniform intensity).
    std::vector<double> image;
    if (frame % 2 == 0) {
      image.assign(static_cast<std::size_t>(config.mosaicH * config.mosaicW),
                   0.55);
    } else {
      image = apps::makePolkaFrame(config, frame);
    }
    apps::setPolkaInputs(env, config, image);
    const sim::StepResult observed = simulator.step(env);
    const double defects = env.at("defect_count_out").getFloat();
    std::printf("%7llu %9.0f %9.3f %10lld %8s\n",
                static_cast<unsigned long long>(frame), defects,
                env.at("max_dolp_out").getFloat(),
                static_cast<long long>(observed.makespan),
                defects > 0 ? "REJECT" : "pass");
  }

  std::printf("\n--- generated code for tile 1 (excerpt) ---\n");
  const std::string source = par::emitCoreSource(result.program, 1);
  std::printf("%.1200s%s\n", source.c_str(),
              source.size() > 1200 ? "\n  ..." : "");
  return 0;
}
