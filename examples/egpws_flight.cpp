// EGPWS use case (aerospace): compile the terrain-warning model, obtain a
// parallel implementation with a guaranteed WCET on the Recore-style
// platform, then fly a descending approach through the synthetic terrain
// and watch alerts fire — every step simulated on the multi-core timing
// model and checked against the static bound.
#include <cmath>
#include <cstdio>

#include "apps/egpws.h"
#include "core/toolchain.h"
#include "sim/simulator.h"

int main() {
  using namespace argo;

  const apps::EgpwsConfig config;
  const adl::Platform platform = adl::makeRecoreXentiumBus(8);
  const core::Toolchain toolchain(platform, core::ToolchainOptions{});
  const core::ToolchainResult result =
      toolchain.run(apps::buildEgpwsDiagram(config));

  std::printf("EGPWS on %s: WCET bound %lld cycles (guaranteed speedup "
              "%.2fx over 1 core)\n\n",
              platform.name().c_str(),
              static_cast<long long>(result.system.makespan),
              result.wcetSpeedup());

  sim::Simulator simulator(result.program, platform);
  ir::Environment env = ir::makeZeroEnvironment(*result.fn);
  for (const auto& [name, value] : result.constants) env[name] = value;

  // A descending approach across the ridge.
  apps::EgpwsInputs state;
  state.x = 4.0;
  state.y = 4.0;
  state.altitude = 1400.0;
  state.groundSpeed = 140.0;
  state.verticalSpeed = -14.0;
  state.heading = 0.8;

  std::printf("%5s %8s %8s %9s %12s %7s %10s %7s\n", "step", "x", "y", "alt",
              "clearance", "alert", "cycles", "bound?");
  bool allSafe = true;
  for (int step = 0; step < 12; ++step) {
    apps::setEgpwsInputs(env, state);
    const sim::StepResult observed = simulator.step(env);
    const double clearance = env.at("min_clearance_out").getFloat();
    const double alert = env.at("alert_out").getFloat();
    const bool safe = observed.makespan <= result.system.makespan;
    allSafe = allSafe && safe;
    std::printf("%5d %8.2f %8.2f %9.1f %12.1f %7s %10lld %7s\n", step,
                state.x, state.y, state.altitude, clearance,
                alert >= 2.0   ? "PULL-UP"
                : alert >= 1.0 ? "caution"
                               : "-",
                static_cast<long long>(observed.makespan),
                safe ? "ok" : "VIOLATED");
    // Advance the aircraft one second; the crew levels off on a warning.
    const double cellPerSec = state.groundSpeed / config.cellSize;
    state.x += cellPerSec * std::cos(state.heading);
    state.y += cellPerSec * std::sin(state.heading);
    state.altitude += state.verticalSpeed;
    if (alert >= 2.0) state.verticalSpeed = 8.0;  // climb!
  }
  std::printf("\nall steps within the static WCET bound: %s\n",
              allSafe ? "yes" : "NO");
  return allSafe ? 0 : 1;
}
