// Shared test helpers: a deterministic random structured-program generator
// used by the property-based suites (transform equivalence, analyzer
// agreement, simulator safety).
#pragma once

#include <string>
#include <vector>

#include "ir/builder.h"
#include "ir/evaluator.h"
#include "ir/function.h"
#include "support/rng.h"

namespace argo::test {

/// Shape of generated programs.
struct GenOptions {
  int arrayCount = 3;
  int arrayLength = 12;
  int scalarCount = 3;
  int maxTopStatements = 6;
  int maxDepth = 2;
  int maxLoopTrip = 6;
};

/// Generates a deterministic random function: declared float arrays
/// a0..aN (Inputs and Temps), scalars s0..sM, body mixing elementwise
/// loops, conditionals, selects and scalar math. Programs are total
/// (indices clamped by construction) and division-free.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed, GenOptions options = {})
      : rng_(seed), options_(options) {}

  std::unique_ptr<ir::Function> generate(const std::string& name) {
    auto fn = std::make_unique<ir::Function>(name);
    const ir::Type arrayType = ir::Type::array(
        ir::ScalarKind::Float64, {options_.arrayLength});
    for (int i = 0; i < options_.arrayCount; ++i) {
      // First array is a read-only input, the rest are read-write temps.
      fn->declare("a" + std::to_string(i), arrayType,
                  i == 0 ? ir::VarRole::Input : ir::VarRole::Temp);
    }
    for (int i = 0; i < options_.scalarCount; ++i) {
      fn->declare("s" + std::to_string(i), ir::Type::float64(),
                  ir::VarRole::Temp);
    }
    fn->declare("result", ir::Type::float64(), ir::VarRole::Output);
    // Seed scalars so later reads are defined.
    for (int i = 0; i < options_.scalarCount; ++i) {
      fn->body().append(ir::assign(ir::ref("s" + std::to_string(i)),
                                   ir::flt(0.25 * (i + 1))));
    }
    const int statements =
        1 + static_cast<int>(rng_.uniformInt(1, options_.maxTopStatements));
    for (int s = 0; s < statements; ++s) {
      fn->body().append(genStmt(0, /*loopVars=*/{}));
    }
    fn->body().append(ir::assign(ir::ref("result"), genScalarExpr({}, 0)));
    return fn;
  }

  /// Random input environment for a generated function.
  ir::Environment makeInputs(const ir::Function& fn) {
    ir::Environment env;
    for (const ir::VarDecl& d : fn.decls()) {
      ir::Value v = ir::Value::zeros(d.type);
      for (std::int64_t k = 0; k < v.size(); ++k) {
        v.setFloat(k, rng_.uniformDouble() * 4.0 - 2.0);
      }
      env.emplace(d.name, std::move(v));
    }
    return env;
  }

 private:
  std::string randomArray() {
    return "a" + std::to_string(rng_.uniformInt(0, options_.arrayCount - 1));
  }
  std::string randomWritableArray() {
    if (options_.arrayCount <= 1) return "a0";
    return "a" + std::to_string(rng_.uniformInt(1, options_.arrayCount - 1));
  }
  std::string randomScalar() {
    return "s" + std::to_string(rng_.uniformInt(0, options_.scalarCount - 1));
  }

  /// Index expression valid for any loop variable set: either a literal in
  /// range, or loopvar (+/- small offset wrapped by min/max clamps).
  ir::ExprPtr genIndex(const std::vector<std::string>& loopVars) {
    if (loopVars.empty() || rng_.chance(0.3)) {
      return ir::lit(rng_.uniformInt(0, options_.arrayLength - 1));
    }
    const std::string& v =
        loopVars[static_cast<std::size_t>(rng_.uniformInt(
            0, static_cast<int>(loopVars.size()) - 1))];
    const std::int64_t offset = rng_.uniformInt(-2, 2);
    if (offset == 0) return ir::var(v);
    // Clamp into range: min(max(v + off, 0), len-1).
    return ir::bin(
        ir::BinOpKind::Min, ir::lit(options_.arrayLength - 1),
        ir::bin(ir::BinOpKind::Max, ir::lit(0),
                ir::add(ir::var(v), ir::lit(offset))));
  }

  ir::ExprPtr genScalarExpr(const std::vector<std::string>& loopVars,
                            int depth) {
    const int choice = static_cast<int>(rng_.uniformInt(0, 9));
    if (depth >= 3 || choice <= 1) {
      return ir::flt(rng_.uniformDouble() * 2.0 - 1.0);
    }
    if (choice == 2) return ir::var(randomScalar());
    if (choice == 3) {
      return ir::ref(randomArray(), ir::exprVec(genIndex(loopVars)));
    }
    if (choice == 4) {
      return ir::un(ir::UnOpKind::Abs, genScalarExpr(loopVars, depth + 1));
    }
    if (choice == 5) {
      return ir::un(ir::UnOpKind::Sin, genScalarExpr(loopVars, depth + 1));
    }
    if (choice == 6) {
      return ir::select(
          ir::lt(genScalarExpr(loopVars, depth + 1), ir::flt(0.0)),
          genScalarExpr(loopVars, depth + 1),
          genScalarExpr(loopVars, depth + 1));
    }
    const ir::BinOpKind ops[] = {ir::BinOpKind::Add, ir::BinOpKind::Sub,
                                 ir::BinOpKind::Mul, ir::BinOpKind::Min,
                                 ir::BinOpKind::Max};
    return ir::bin(ops[rng_.uniformInt(0, 4)],
                   genScalarExpr(loopVars, depth + 1),
                   genScalarExpr(loopVars, depth + 1));
  }

  ir::StmtPtr genStmt(int depth, std::vector<std::string> loopVars) {
    const int choice = static_cast<int>(rng_.uniformInt(0, 9));
    if (depth >= options_.maxDepth || choice <= 3) {
      // Assignment: scalar or array element.
      if (rng_.chance(0.5)) {
        return ir::assign(ir::ref(randomScalar()),
                          genScalarExpr(loopVars, 0));
      }
      return ir::assign(
          ir::ref(randomWritableArray(), ir::exprVec(genIndex(loopVars))),
          genScalarExpr(loopVars, 0));
    }
    if (choice <= 6) {
      // Counted loop with a fresh variable name.
      const std::string loopVar = "i" + std::to_string(counter_++);
      const std::int64_t lo = rng_.uniformInt(0, 2);
      const std::int64_t hi =
          lo + rng_.uniformInt(1, options_.maxLoopTrip);
      loopVars.push_back(loopVar);
      auto body = ir::block();
      const int n = static_cast<int>(rng_.uniformInt(1, 3));
      for (int s = 0; s < n; ++s) {
        body->append(genStmt(depth + 1, loopVars));
      }
      loopVars.pop_back();
      return ir::forLoop(loopVar, lo,
                         std::min<std::int64_t>(hi, options_.arrayLength),
                         std::move(body));
    }
    // Conditional.
    auto thenB = ir::block();
    thenB->append(genStmt(depth + 1, loopVars));
    auto elseB = ir::block();
    if (rng_.chance(0.6)) elseB->append(genStmt(depth + 1, loopVars));
    return ir::ifStmt(
        ir::lt(genScalarExpr(loopVars, 1), genScalarExpr(loopVars, 1)),
        std::move(thenB), std::move(elseB));
  }

  support::Rng rng_;
  GenOptions options_;
  int counter_ = 0;
};

/// Deep-compares two environments on the given function's Output and Temp
/// variables.
inline bool outputsMatch(const ir::Function& fn, const ir::Environment& a,
                         const ir::Environment& b, double tol = 1e-9) {
  for (const ir::VarDecl& d : fn.decls()) {
    if (d.role != ir::VarRole::Output && d.role != ir::VarRole::Temp) continue;
    const auto ia = a.find(d.name);
    const auto ib = b.find(d.name);
    if (ia == a.end() || ib == b.end()) return false;
    if (!ia->second.approxEquals(ib->second, tol)) return false;
  }
  return true;
}

}  // namespace argo::test
