// Unit tests for the dominator analysis and the SESE discipline check.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/dominators.h"
#include "testutil.h"

namespace argo::ir {
namespace {

TEST(Dominators, EntryDominatesEverything) {
  auto b = block();
  b->append(assign(ref("x"), lit(1)));
  auto thenB = block();
  thenB->append(assign(ref("x"), lit(2)));
  b->append(ifStmt(boolean(true), std::move(thenB)));
  b->append(assign(ref("y"), lit(3)));
  const auto cfg = Cfg::build(*b);
  const DominatorTree dom(*cfg);
  for (std::size_t id = 0; id < cfg->nodes().size(); ++id) {
    EXPECT_TRUE(dom.dominates(cfg->entry(), static_cast<int>(id)));
  }
}

TEST(Dominators, EntryHasNoIdom) {
  const auto cfg = Cfg::build(*block());
  const DominatorTree dom(*cfg);
  EXPECT_EQ(dom.idom(cfg->entry()), -1);
  EXPECT_EQ(dom.depth(cfg->entry()), 0);
}

TEST(Dominators, StraightLineIsAChain) {
  auto b = block();
  b->append(assign(ref("x"), lit(1)));
  const auto cfg = Cfg::build(*b);
  const DominatorTree dom(*cfg);
  // entry -> basic -> exit: depths 0, 1, 2.
  EXPECT_EQ(dom.depth(cfg->exit()), 2);
  EXPECT_TRUE(dom.dominates(cfg->entry(), cfg->exit()));
  EXPECT_FALSE(dom.dominates(cfg->exit(), cfg->entry()));
}

TEST(Dominators, BranchArmsDoNotDominateJoin) {
  auto thenB = block();
  thenB->append(assign(ref("x"), lit(1)));
  auto elseB = block();
  elseB->append(assign(ref("x"), lit(2)));
  auto b = block();
  b->append(ifStmt(boolean(true), std::move(thenB), std::move(elseB)));
  const auto cfg = Cfg::build(*b);
  const DominatorTree dom(*cfg);

  int branchId = -1;
  int joinId = -1;
  std::vector<int> arms;
  for (std::size_t id = 0; id < cfg->nodes().size(); ++id) {
    switch (cfg->nodes()[id].kind) {
      case CfgNodeKind::Branch: branchId = static_cast<int>(id); break;
      case CfgNodeKind::Join: joinId = static_cast<int>(id); break;
      case CfgNodeKind::Basic: arms.push_back(static_cast<int>(id)); break;
      default: break;
    }
  }
  ASSERT_NE(branchId, -1);
  ASSERT_NE(joinId, -1);
  ASSERT_EQ(arms.size(), 2u);
  // The branch dominates the join; neither arm does.
  EXPECT_TRUE(dom.dominates(branchId, joinId));
  EXPECT_EQ(dom.idom(joinId), branchId);
  for (int arm : arms) {
    EXPECT_FALSE(dom.dominates(arm, joinId));
    EXPECT_EQ(dom.idom(arm), branchId);
  }
}

TEST(Dominators, ReflexiveDominance) {
  auto b = block();
  b->append(assign(ref("x"), lit(1)));
  const auto cfg = Cfg::build(*b);
  const DominatorTree dom(*cfg);
  for (std::size_t id = 0; id < cfg->nodes().size(); ++id) {
    EXPECT_TRUE(dom.dominates(static_cast<int>(id), static_cast<int>(id)));
  }
}

TEST(SeseCheck, AcceptsStructuredPrograms) {
  auto thenB = block();
  thenB->append(assign(ref("x"), lit(1)));
  auto body = block();
  body->append(ifStmt(boolean(false), std::move(thenB)));
  auto b = block();
  b->append(forLoop("i", 0, 4, std::move(body)));
  b->append(assign(ref("y"), lit(2)));
  const auto cfg = Cfg::build(*b);
  EXPECT_TRUE(checkSeseDiscipline(*cfg).empty());
}

TEST(SeseCheck, CoversNestedLoopBodies) {
  auto inner = block();
  inner->append(assign(ref("a", exprVec(var("j"))), var("j")));
  auto outerBody = block();
  outerBody->append(forLoop("j", 0, 2, std::move(inner)));
  auto b = block();
  b->append(forLoop("i", 0, 2, std::move(outerBody)));
  const auto cfg = Cfg::build(*b);
  EXPECT_TRUE(checkSeseDiscipline(*cfg).empty());
}

TEST(SeseCheck, HoldsOnRandomPrograms) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    test::ProgramGenerator gen(seed * 37);
    const auto fn = gen.generate("p");
    const auto cfg = Cfg::build(fn->body());
    EXPECT_TRUE(checkSeseDiscipline(*cfg).empty()) << "seed " << seed;
  }
}

TEST(SeseCheck, HoldsOnCompiledUseCases) {
  // Regression net: the diagram compiler and the Scilab front end must
  // only ever emit SESE-disciplined control flow.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    test::ProgramGenerator gen(seed);
    const auto fn = gen.generate("p");
    EXPECT_TRUE(checkSeseDiscipline(*Cfg::build(fn->body())).empty());
  }
}

}  // namespace
}  // namespace argo::ir
