// support::ThreadPool: ordering, exception propagation, reuse across runs,
// and a ProgramGenerator-driven stress test (pooled evaluation of random
// programs must match sequential evaluation bit for bit).
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "ir/evaluator.h"
#include "support/diagnostics.h"
#include "testutil.h"

namespace argo::support {
namespace {

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4u);
}

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(3);
  auto a = pool.submit([] { return 7; });
  auto b = pool.submit([] { return std::string("argo"); });
  EXPECT_EQ(a.get(), 7);
  EXPECT_EQ(b.get(), "argo");
}

TEST(ThreadPool, SingleThreadPoolRunsSubmissionsInFifoOrder) {
  // With one worker every submitted task lands in the same deque and is
  // popped from the front, so completion order equals submission order.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i, &order] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(32);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsANoOp) {
  ThreadPool pool(2);
  pool.parallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, SubmitExceptionSurfacesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  // Several indices throw; the pool must deterministically surface the
  // lowest one no matter which worker hit its failure first.
  for (int run = 0; run < 10; ++run) {
    try {
      pool.parallelFor(64, [&](std::size_t i) {
        if (i % 7 == 3) {  // lowest failing index is 3
          throw ToolchainError("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected ToolchainError";
    } catch (const ToolchainError& e) {
      EXPECT_STREQ(e.what(), "boom at 3");
    }
  }
}

TEST(ThreadPool, ParallelForFailureStillRunsAllIndices) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallelFor(100,
                                [&](std::size_t i) {
                                  executed.fetch_add(1);
                                  if (i == 0) throw std::runtime_error("x");
                                }),
               std::runtime_error);
  EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPool, PoolReuseAcrossManyRuns) {
  ThreadPool pool(4);
  for (int run = 0; run < 50; ++run) {
    std::atomic<long> sum{0};
    pool.parallelFor(128, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 128L * 127L / 2L) << "run " << run;
  }
}

// ------------------------------------------------- Oversubscription
// The pool's contracts must hold when workers far outnumber hardware
// cores (threads ≫ cores forces constant preemption — the interleavings
// a right-sized pool rarely produces). Repeat-until loops shake out
// scheduling orders; counts and propagated exceptions must never vary.

TEST(ThreadPoolOversubscribed, CoverageAndReductionStayExactAcrossRuns) {
  ThreadPool pool(64);
  EXPECT_EQ(pool.size(), 64u);
  for (int run = 0; run < 20; ++run) {
    std::vector<std::atomic<int>> hits(512);
    std::atomic<long> sum{0};
    pool.parallelFor(512, [&](std::size_t i) {
      hits[i].fetch_add(1);
      sum.fetch_add(static_cast<long>(i));
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "run " << run << " index " << i;
    }
    EXPECT_EQ(sum.load(), 512L * 511L / 2L) << "run " << run;
  }
}

TEST(ThreadPoolOversubscribed, LowestFailingIndexStillWins) {
  ThreadPool pool(32);
  for (int run = 0; run < 10; ++run) {
    try {
      pool.parallelFor(256, [](std::size_t i) {
        if (i % 9 == 2) {  // lowest failing index is 2
          throw ToolchainError("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected ToolchainError";
    } catch (const ToolchainError& e) {
      EXPECT_STREQ(e.what(), "boom at 2") << "run " << run;
    }
  }
}

TEST(ThreadPoolOversubscribed, BackToBackPoolsConstructAndDrainCleanly) {
  // Construction/teardown churn: every iteration spins up a fresh
  // oversubscribed pool, runs one batch, and joins all 48 workers.
  for (int run = 0; run < 8; ++run) {
    ThreadPool pool(48);
    std::atomic<int> count{0};
    pool.parallelFor(100, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 100) << "run " << run;
  }
}

TEST(ThreadPool, StressRandomProgramsPooledMatchesSequential) {
  // Evaluate 24 generated programs sequentially and on the pool; each
  // evaluation is independent, so the pooled outputs must be identical.
  constexpr std::uint64_t kSeeds = 24;
  std::vector<std::unique_ptr<ir::Function>> fns;
  std::vector<ir::Environment> inputs;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    test::ProgramGenerator gen(1000 + seed);
    fns.push_back(gen.generate("stress" + std::to_string(seed)));
    inputs.push_back(gen.makeInputs(*fns.back()));
  }

  std::vector<ir::Environment> sequential(kSeeds);
  for (std::uint64_t i = 0; i < kSeeds; ++i) {
    ir::Environment env = inputs[i];
    ir::Evaluator(*fns[i]).run(env);
    sequential[i] = std::move(env);
  }

  ThreadPool pool(4);
  std::vector<ir::Environment> pooled(kSeeds);
  pool.parallelFor(kSeeds, [&](std::size_t i) {
    ir::Environment env = inputs[i];
    ir::Evaluator(*fns[i]).run(env);
    pooled[i] = std::move(env);
  });

  for (std::uint64_t i = 0; i < kSeeds; ++i) {
    EXPECT_TRUE(test::outputsMatch(*fns[i], sequential[i], pooled[i], 0.0))
        << "seed " << i;
  }
}

}  // namespace
}  // namespace argo::support
