// Determinism regression for the parallel cross-layer feedback
// exploration: evaluating the candidate ladder on the work-stealing pool
// must be observationally identical to the sequential path — same chosen
// candidate, same FeedbackPoint sequence, same report text.
#include <gtest/gtest.h>

#include "apps/egpws.h"
#include "apps/polka.h"
#include "apps/weaa.h"
#include "core/toolchain.h"

namespace argo::core {
namespace {

model::Diagram buildApp(const std::string& app) {
  if (app == "egpws") {
    apps::EgpwsConfig config;
    config.gridH = 16;
    config.gridW = 16;
    config.samples = 16;
    return apps::buildEgpwsDiagram(config);
  }
  if (app == "weaa") {
    apps::WeaaConfig config;
    config.horizon = 24;
    config.candidates = 4;
    return apps::buildWeaaDiagram(config);
  }
  apps::PolkaConfig config;
  config.mosaicH = 16;
  config.mosaicW = 16;
  return apps::buildPolkaDiagram(config);
}

class ParallelExploreDeterminism
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelExploreDeterminism, PooledMatchesSequentialBitForBit) {
  const model::Diagram diagram = buildApp(GetParam());
  const model::CompiledModel model = diagram.compile();
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);

  ToolchainOptions sequentialOptions;
  sequentialOptions.explorationThreads = 1;
  const ToolchainResult sequential =
      Toolchain(platform, sequentialOptions).run(model);

  ToolchainOptions pooledOptions;
  pooledOptions.explorationThreads = 4;
  const ToolchainResult pooled =
      Toolchain(platform, pooledOptions).run(model);

  EXPECT_EQ(sequential.chosenChunks, pooled.chosenChunks);
  EXPECT_EQ(sequential.system.makespan, pooled.system.makespan);
  EXPECT_EQ(sequential.sequentialWcet, pooled.sequentialWcet);

  ASSERT_EQ(sequential.feedback.size(), pooled.feedback.size());
  for (std::size_t i = 0; i < sequential.feedback.size(); ++i) {
    const FeedbackPoint& s = sequential.feedback[i];
    const FeedbackPoint& p = pooled.feedback[i];
    EXPECT_EQ(s.chunksPerLoop, p.chunksPerLoop) << "point " << i;
    EXPECT_EQ(s.coreLimit, p.coreLimit) << "point " << i;
    EXPECT_EQ(s.systemWcet, p.systemWcet) << "point " << i;
    EXPECT_EQ(s.tasks, p.tasks) << "point " << i;
  }

  // The full report (minus wall-clock stage timings) is bit-identical.
  EXPECT_EQ(sequential.reportText(/*includeStageTimings=*/false),
            pooled.reportText(/*includeStageTimings=*/false));
}

TEST_P(ParallelExploreDeterminism, OversubscribedPoolStillDeterministic) {
  // More workers than candidates (and repeated runs) must not change the
  // outcome either.
  const model::Diagram diagram = buildApp(GetParam());
  const model::CompiledModel model = diagram.compile();
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);

  ToolchainOptions options;
  options.explorationThreads = 16;
  const Toolchain toolchain(platform, options);
  const ToolchainResult first = toolchain.run(model);
  const ToolchainResult second = toolchain.run(model);
  EXPECT_EQ(first.chosenChunks, second.chosenChunks);
  EXPECT_EQ(first.reportText(false), second.reportText(false));
}

INSTANTIATE_TEST_SUITE_P(Apps, ParallelExploreDeterminism,
                         ::testing::Values("egpws", "weaa", "polka"));

}  // namespace
}  // namespace argo::core
