// Targeted runtime tests for the threaded execution mode's primitives,
// compiled against the verbatim emitted runtime header
// (codegen::runtimeHeader()) with the host C compiler:
//
//   - event channels: signal-before-wait never blocks, wait blocks until
//     the signal and observes the payload the producer published;
//   - the counted generation barrier survives reuse across many steps;
//   - the watchdog turns an unposted wait (a corrupted dispatch table)
//     into a loud exit 3, never a silent hang or reorder;
//   - the runtime deadline asserts (--runtime-asserts) pass under the
//     generous defaults and fire (exit 4) when the bounds are made
//     impossibly tight via the environment;
//   - a deliberately corrupted multi-tile emission (a signal count zeroed
//     in a tile's slot table) deadlocks loudly via the watchdog, while
//     the uncorrupted control build matches the IR evaluator.
//
// When the repo is built with ARGO_SANITIZE=thread (or ARGO_DIFF_TSAN is
// set) every threaded binary here also runs under -fsanitize=thread.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/registry.h"
#include "codegen/codegen.h"
#include "core/toolchain.h"

#ifndef ARGO_HOST_CC
#define ARGO_HOST_CC "cc"
#endif

namespace argo {
namespace {

namespace fs = std::filesystem;

constexpr const char* kCcFlags =
    "-std=c11 -O1 -fno-strict-aliasing -Wall -Wextra -Werror";

bool emittedTsan() {
#ifdef ARGO_EMITTED_TSAN
  return true;
#else
  return std::getenv("ARGO_DIFF_TSAN") != nullptr;
#endif
}

fs::path makeTempDir(const std::string& tag) {
  std::string templ =
      (fs::temp_directory_path() / ("argo_rt_" + tag + "_XXXXXX")).string();
  if (mkdtemp(templ.data()) == nullptr) {
    throw std::runtime_error("mkdtemp failed for " + templ);
  }
  return fs::path(templ);
}

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void writeFile(const fs::path& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out << contents;
}

struct RunResult {
  int exitCode = -1;
  std::string stdoutText;
  std::string stderrText;
};

/// Runs `cmd` (already cd'ed into `dir` by the caller-provided prefix),
/// capturing stdout via popen and stderr via a redirect file.
RunResult runInDir(const fs::path& dir, const std::string& cmd) {
  RunResult result;
  const std::string full =
      "cd '" + dir.string() + "' && { " + cmd + " ; } 2>stderr.log";
  FILE* pipe = popen(full.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.stdoutText.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  result.stderrText = readFile(dir / "stderr.log");
  return result;
}

/// Compiles the runtime header plus `driver` (a C main) in a fresh dir;
/// returns the dir. `threaded` adds -pthread (+ TSan when configured).
fs::path compileDriver(const std::string& tag, const std::string& driver,
                       bool threaded) {
  const fs::path dir = makeTempDir(tag);
  writeFile(dir / "argo_rt.h", codegen::runtimeHeader());
  writeFile(dir / "driver.c", driver);
  std::string cc = std::string(ARGO_HOST_CC) + " " + kCcFlags;
  if (threaded) {
    cc += " -pthread";
    if (emittedTsan()) cc += " -fsanitize=thread";
  }
  const RunResult build = runInDir(dir, cc + " -o prog driver.c -lm");
  EXPECT_EQ(build.exitCode, 0) << tag << ": compile failed\n"
                               << build.stderrText;
  return dir;
}

/// The boilerplate every threaded driver must define (main.c normally
/// provides these).
constexpr const char* kThreadedPrelude = R"C(
#define ARGO_EXEC_THREADS 1
#include "argo_rt.h"

unsigned char argo_events[4];
pthread_mutex_t argo_ev_mu = PTHREAD_MUTEX_INITIALIZER;
pthread_cond_t argo_ev_cv = PTHREAD_COND_INITIALIZER;
long long argo_watchdog_ns = 10000000000ll;
)C";

TEST(RuntimeChannels, SignalBeforeWaitNeverBlocks) {
  const std::string driver = std::string(kThreadedPrelude) + R"C(
int main(void) {
  argo_rt_init();
  argo_signal(2);
  argo_wait(2);  /* already posted: must return immediately */
  return 0;
}
)C";
  const fs::path dir = compileDriver("signal_first", driver, true);
  const RunResult run = runInDir(dir, "./prog");
  EXPECT_EQ(run.exitCode, 0) << run.stderrText;
  fs::remove_all(dir);
}

TEST(RuntimeChannels, WaitBlocksUntilSignalAndSeesPayload) {
  // The consumer must observe the payload the producer wrote before
  // signalling — the happens-before edge the emitted channels rely on
  // (and the access pattern TSan checks when enabled).
  const std::string driver = std::string(kThreadedPrelude) + R"C(
static long long payload;

static void *consumer(void *opaque) {
  (void)opaque;
  argo_wait(0);
  if (payload != 42) exit(9);
  return NULL;
}

int main(void) {
  pthread_t t;
  struct timespec pause = {0, 100 * 1000 * 1000};
  argo_rt_init();
  if (pthread_create(&t, NULL, consumer, NULL) != 0) return 8;
  nanosleep(&pause, NULL);  /* let the consumer reach the wait */
  payload = 42;
  argo_signal(0);
  pthread_join(t, NULL);
  return 0;
}
)C";
  const fs::path dir = compileDriver("wait_blocks", driver, true);
  const RunResult run = runInDir(dir, "./prog");
  EXPECT_EQ(run.exitCode, 0) << run.stderrText;
  fs::remove_all(dir);
}

TEST(RuntimeBarrier, SurvivesReuseAcrossManySteps) {
  // Two workers + the coordinator cycle the same two barriers for 200
  // steps — the exact protocol of the emitted threaded main.c. Each
  // worker's per-step writes must be visible to the coordinator after
  // the done barrier of every step.
  const std::string driver = std::string(kThreadedPrelude) + R"C(
enum { STEPS = 200 };

static argo_barrier start_b = ARGO_BARRIER_INIT(3);
static argo_barrier done_b = ARGO_BARRIER_INIT(3);
static long long cells[2];

static void *worker(void *opaque) {
  const int id = (int)(long)opaque;
  int step;
  for (step = 0; step < STEPS; ++step) {
    argo_barrier_wait(&start_b);
    cells[id] += id + 1;
    argo_barrier_wait(&done_b);
  }
  return NULL;
}

int main(void) {
  pthread_t t0, t1;
  int step;
  argo_rt_init();
  if (pthread_create(&t0, NULL, worker, (void *)0l) != 0) return 8;
  if (pthread_create(&t1, NULL, worker, (void *)1l) != 0) return 8;
  for (step = 0; step < STEPS; ++step) {
    argo_barrier_wait(&start_b);
    argo_barrier_wait(&done_b);
    if (cells[0] != step + 1 || cells[1] != 2 * (step + 1)) exit(9);
  }
  pthread_join(t0, NULL);
  pthread_join(t1, NULL);
  return 0;
}
)C";
  const fs::path dir = compileDriver("barrier_reuse", driver, true);
  const RunResult run = runInDir(dir, "./prog");
  EXPECT_EQ(run.exitCode, 0) << run.stderrText;
  fs::remove_all(dir);
}

TEST(RuntimeWatchdog, UnpostedWaitTrapsLoudly) {
  const std::string driver = std::string(kThreadedPrelude) + R"C(
int main(void) {
  argo_rt_init();
  argo_wait(1);  /* never signalled: the watchdog must trap */
  return 0;
}
)C";
  const fs::path dir = compileDriver("watchdog", driver, true);
  const RunResult run = runInDir(dir, "ARGO_WATCHDOG_NS=200000000 ./prog");
  EXPECT_EQ(run.exitCode, 3) << run.stderrText;
  EXPECT_NE(run.stderrText.find("watchdog"), std::string::npos)
      << run.stderrText;
  EXPECT_NE(run.stderrText.find("dispatch-table deadlock"), std::string::npos)
      << run.stderrText;
  fs::remove_all(dir);
}

TEST(RuntimeSequential, UnpostedWaitTrapsImmediately) {
  // The sequential harness has no watchdog: a wait the static order has
  // not satisfied is a schedule violation and traps at once.
  const std::string driver = R"C(
#include "argo_rt.h"
unsigned char argo_events[2];
int main(void) {
  argo_wait(0);
  return 0;
}
)C";
  const fs::path dir = compileDriver("seq_unposted", driver, false);
  const RunResult run = runInDir(dir, "./prog");
  EXPECT_EQ(run.exitCode, 3) << run.stderrText;
  EXPECT_NE(run.stderrText.find("schedule violation"), std::string::npos)
      << run.stderrText;
  fs::remove_all(dir);
}

TEST(RuntimeAsserts, PassUnderDefaultsAndFireWhenTight) {
  const std::string driver = R"C(
#define ARGO_RUNTIME_ASSERTS 1
#include "argo_rt.h"

unsigned char argo_events[1];
long long argo_ns_per_cycle;
long long argo_assert_slack_ns;
long long argo_step_base_ns;

static void work(void) {
  struct timespec pause = {0, 50 * 1000 * 1000};
  nanosleep(&pause, NULL);
}

static const argo_slot slot = {0ll, 1ll, 7, work, NULL, 0, NULL, 0};

int main(void) {
  argo_ns_per_cycle = argo_env_ns("ARGO_NS_PER_CYCLE", 10000ll);
  argo_assert_slack_ns = argo_env_ns("ARGO_ASSERT_SLACK_NS", 2000000000ll);
  argo_step_base_ns = argo_now_ns();
  argo_run_slot(&slot);
  return 0;
}
)C";
  const fs::path dir = compileDriver("asserts", driver, false);
  const RunResult pass = runInDir(dir, "./prog");
  EXPECT_EQ(pass.exitCode, 0) << pass.stderrText;
  // 1 ns per cycle, zero slack: a 50 ms slot cannot meet a 1-cycle
  // deadline — the assert must exit 4 with the pinned message.
  const RunResult fail =
      runInDir(dir, "ARGO_NS_PER_CYCLE=1 ARGO_ASSERT_SLACK_NS=0 ./prog");
  EXPECT_EQ(fail.exitCode, 4) << fail.stderrText;
  EXPECT_NE(fail.stderrText.find("runtime assert"), std::string::npos)
      << fail.stderrText;
  fs::remove_all(dir);
}

// ------------------------------------------- Whole-program corruption

/// Emits egpws on the 8-tile bus in threaded mode, returning the emission
/// plus the evaluator's reference output for the recorded trace.
struct EmittedApp {
  codegen::Emission emission;
  std::string reference;
};

EmittedApp emitThreadedEgpws() {
  const adl::Platform platform = adl::makeRecoreXentiumBus(8);
  const core::Toolchain toolchain(platform, core::ToolchainOptions{});
  const core::ToolchainResult result =
      toolchain.run(apps::buildAppDiagram("egpws"));
  codegen::InputTrace trace;
  ir::Environment env = ir::makeZeroEnvironment(*result.fn);
  apps::setAppStepInputs("egpws", env, 0);
  trace.steps.push_back(std::move(env));
  codegen::EmitOptions options;
  options.mode = codegen::ExecMode::Threads;
  EmittedApp app;
  app.reference =
      codegen::referenceOutputs(*result.fn, result.constants, trace);
  app.emission = toolchain.emitC(result, trace, options);
  return app;
}

/// Zeroes the signal count of the first signalling slot in `tile` — the
/// "dispatch-table corruption" fault: the producer runs but never posts,
/// so every consumer's wait can only end via the watchdog.
std::string corruptFirstSignalCount(const std::string& tile) {
  const std::size_t name = tile.find(", argo_s_");
  EXPECT_NE(name, std::string::npos) << "no signalling slot to corrupt";
  if (name == std::string::npos) return tile;
  const std::size_t comma = tile.find(',', name + 2);
  const std::size_t brace = tile.find('}', comma);
  std::string corrupted = tile;
  corrupted.replace(comma + 1, brace - comma - 1, " 0");
  return corrupted;
}

TEST(RuntimeWatchdog, CorruptedDispatchTableDeadlocksLoudly) {
  const EmittedApp app = emitThreadedEgpws();

  // Control: the uncorrupted threaded build matches the evaluator.
  const fs::path dir = makeTempDir("corrupt");
  codegen::writeSources(dir.string(), app.emission);
  std::string cc = std::string(ARGO_HOST_CC) + " " + kCcFlags + " -pthread";
  if (emittedTsan()) cc += " -fsanitize=thread";
  std::string units;
  for (const std::string& unit : app.emission.cUnits) units += " " + unit;
  const RunResult build = runInDir(dir, cc + " -o prog" + units + " -lm");
  ASSERT_EQ(build.exitCode, 0) << build.stderrText;
  const RunResult control = runInDir(dir, "./prog");
  EXPECT_EQ(control.exitCode, 0) << control.stderrText;
  EXPECT_EQ(control.stdoutText, app.reference);

  // Fault injection: zero one signal count, rebuild, run with a short
  // watchdog. The run must end in exit 3 with the deadlock diagnostic —
  // never exit 0, never a silent reorder of the schedule.
  writeFile(dir / "tile0.c",
            corruptFirstSignalCount(app.emission.file("tile0.c").contents));
  const RunResult rebuild =
      runInDir(dir, cc + " -o prog_bad" + units + " -lm");
  ASSERT_EQ(rebuild.exitCode, 0) << rebuild.stderrText;
  const RunResult corrupted =
      runInDir(dir, "ARGO_WATCHDOG_NS=300000000 ./prog_bad");
  EXPECT_EQ(corrupted.exitCode, 3) << corrupted.stderrText;
  EXPECT_NE(corrupted.stderrText.find("watchdog"), std::string::npos)
      << corrupted.stderrText;
  fs::remove_all(dir);
}

}  // namespace
}  // namespace argo
