// Differential test of the C code-generation backend: emit the scheduled
// program as C, compile it with the host C compiler (-Wall -Wextra
// -Werror, so emission must be warning-clean), run it, and require the
// printed outputs to match ir::Evaluator byte-for-byte on the same inputs
// (codegen::referenceOutputs). Covered: the three avionics apps and a
// 25-scenario slice of the generated scenario matrix.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/registry.h"
#include "codegen/codegen.h"
#include "core/toolchain.h"
#include "scenarios/eval.h"
#include "scenarios/generator.h"
#include "support/rng.h"

#ifndef ARGO_HOST_CC
#define ARGO_HOST_CC "cc"
#endif

namespace argo {
namespace {

namespace fs = std::filesystem;

/// The canonical build line of docs/CODEGEN.md.
constexpr const char* kCcFlags =
    "-std=c11 -O1 -fno-strict-aliasing -Wall -Wextra -Werror";

fs::path makeTempDir(const std::string& tag) {
  std::string templ =
      (fs::temp_directory_path() / ("argo_codegen_" + tag + "_XXXXXX"))
          .string();
  if (mkdtemp(templ.data()) == nullptr) {
    throw std::runtime_error("mkdtemp failed for " + templ);
  }
  return fs::path(templ);
}

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Writes, compiles and runs an emission; returns the program's stdout.
/// Fails the current test (with the compiler log) when compilation or the
/// run does not exit 0.
std::string compileAndRun(const codegen::Emission& emission,
                          const std::string& tag) {
  const fs::path dir = makeTempDir(tag);
  codegen::writeSources(dir.string(), emission);

  std::string cmd = "cd '" + dir.string() + "' && " + ARGO_HOST_CC + " " +
                    kCcFlags + " -o prog";
  for (const std::string& unit : emission.cUnits) cmd += " " + unit;
  cmd += " -lm 2>cc.log && ./prog";

  std::string output;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for " << tag;
  if (pipe != nullptr) {
    std::array<char, 4096> buf{};
    std::size_t n = 0;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
      output.append(buf.data(), n);
    }
    const int status = pclose(pipe);
    EXPECT_EQ(status, 0) << tag << ": compile/run failed\n"
                         << readFile(dir / "cc.log");
  }
  fs::remove_all(dir);
  return output;
}

/// Uniform [-1, 1) inputs for every Input variable, one stream per step
/// (the scenario convention of scenarios/eval.cpp).
codegen::InputTrace randomTrace(const ir::Function& fn, std::uint64_t seed,
                                int steps) {
  codegen::InputTrace trace;
  for (int step = 0; step < steps; ++step) {
    support::Rng rng(seed + static_cast<std::uint64_t>(step));
    ir::Environment env;
    for (const ir::VarDecl& decl : fn.decls()) {
      if (decl.role != ir::VarRole::Input) continue;
      ir::Value value = ir::Value::zeros(decl.type);
      for (std::int64_t k = 0; k < value.size(); ++k) {
        value.setFloat(k, rng.uniformDouble() * 2.0 - 1.0);
      }
      env.emplace(decl.name, std::move(value));
    }
    trace.steps.push_back(std::move(env));
  }
  return trace;
}

void expectDifferentialMatch(const core::Toolchain& toolchain,
                             const core::ToolchainResult& result,
                             const codegen::InputTrace& trace,
                             const std::string& tag) {
  const codegen::Emission emission = toolchain.emitC(result, trace);
  const std::string observed = compileAndRun(emission, tag);
  const std::string expected =
      codegen::referenceOutputs(*result.fn, result.constants, trace);
  EXPECT_FALSE(expected.empty()) << tag;
  EXPECT_EQ(observed, expected) << tag;
}

class CodegenDiffApps : public ::testing::TestWithParam<const char*> {};

TEST_P(CodegenDiffApps, EmittedCMatchesEvaluator) {
  const std::string app = GetParam();
  const adl::Platform platform = adl::makeRecoreXentiumBus(8);
  const core::Toolchain toolchain(platform, core::ToolchainOptions{});
  const core::ToolchainResult result =
      toolchain.run(apps::buildAppDiagram(app));

  // The same per-step recipe argo_cc --emit-c records (apps/registry.h),
  // so this suite validates exactly the trace the CLI emits.
  codegen::InputTrace trace;
  for (int step = 0; step < 3; ++step) {
    ir::Environment env = ir::makeZeroEnvironment(*result.fn);
    apps::setAppStepInputs(app, env, static_cast<std::uint64_t>(step));
    trace.steps.push_back(std::move(env));
  }
  expectDifferentialMatch(toolchain, result, trace, app);
}

INSTANTIATE_TEST_SUITE_P(Apps, CodegenDiffApps,
                         ::testing::Values("egpws", "weaa", "polka"));

TEST(CodegenDiffScenarios, TwentyFiveScenarioSlice) {
  // The same trimmed tool-chain configuration the batch evaluator uses,
  // over the default generator family (seed 1) — a 25-scenario slice of
  // the argo_eval matrix, each with fresh random inputs.
  const scenarios::GeneratorOptions generator;
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);
  const core::Toolchain toolchain(platform,
                                  scenarios::defaultEvalToolchainOptions());
  for (int index = 0; index < 25; ++index) {
    const scenarios::Scenario scenario =
        scenarios::generateScenario(generator, index);
    const core::ToolchainResult result = toolchain.run(scenario.model);
    const codegen::InputTrace trace =
        randomTrace(*result.fn, scenario.seed, 2);
    expectDifferentialMatch(toolchain, result, trace, scenario.name);
  }
}

}  // namespace
}  // namespace argo
