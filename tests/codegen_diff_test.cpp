// Differential test of the C code-generation backend: emit the scheduled
// program as C in BOTH execution modes, compile each with the host C
// compiler (-Wall -Wextra -Werror, so emission must be warning-clean),
// run them, and require the printed outputs to match ir::Evaluator
// byte-for-byte on the same inputs (codegen::referenceOutputs). The
// threaded build runs with --runtime-asserts enabled (so no slot may
// violate its scheduled deadline) and is executed ARGO_DIFF_REPEAT times
// (default 2) to shake out interleavings; when the repo is built with
// ARGO_SANITIZE=thread (or ARGO_DIFF_TSAN is set in the environment) the
// threaded harness is additionally compiled with -fsanitize=thread, so a
// data race in the emitted synchronization fails the suite. Covered: the
// three avionics apps and a 25-scenario slice of the generated scenario
// matrix.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/registry.h"
#include "codegen/codegen.h"
#include "core/toolchain.h"
#include "scenarios/eval.h"
#include "scenarios/generator.h"
#include "support/rng.h"

#ifndef ARGO_HOST_CC
#define ARGO_HOST_CC "cc"
#endif

namespace argo {
namespace {

namespace fs = std::filesystem;

/// The canonical build line of docs/CODEGEN.md.
constexpr const char* kCcFlags =
    "-std=c11 -O1 -fno-strict-aliasing -Wall -Wextra -Werror";

/// How many times each threaded build is executed (every run must match
/// the oracle byte-for-byte). The TSan CI job raises this via env to
/// explore more interleavings than the default matrix.
int diffRepeat() {
  const char* env = std::getenv("ARGO_DIFF_REPEAT");
  if (env != nullptr && *env != '\0') {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 2;
}

/// Whether the threaded harness is compiled with -fsanitize=thread:
/// either the repo itself was configured with ARGO_SANITIZE=thread
/// (CMake defines ARGO_EMITTED_TSAN) or ARGO_DIFF_TSAN is set at runtime.
bool emittedTsan() {
#ifdef ARGO_EMITTED_TSAN
  return true;
#else
  return std::getenv("ARGO_DIFF_TSAN") != nullptr;
#endif
}

fs::path makeTempDir(const std::string& tag) {
  std::string templ =
      (fs::temp_directory_path() / ("argo_codegen_" + tag + "_XXXXXX"))
          .string();
  if (mkdtemp(templ.data()) == nullptr) {
    throw std::runtime_error("mkdtemp failed for " + templ);
  }
  return fs::path(templ);
}

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Runs `cmd` through popen and returns its stdout; EXPECTs exit 0 with
/// `log` (compiler output) attached to the failure message.
std::string runCommand(const std::string& cmd, const std::string& tag,
                       const fs::path& logPath) {
  std::string output;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for " << tag;
  if (pipe != nullptr) {
    std::array<char, 4096> buf{};
    std::size_t n = 0;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
      output.append(buf.data(), n);
    }
    const int status = pclose(pipe);
    EXPECT_EQ(status, 0) << tag << ": command failed\n" << readFile(logPath);
  }
  return output;
}

/// Writes and compiles an emission into a fresh temp dir; returns the dir
/// (./prog inside it). `threaded` adds -pthread and, per emittedTsan(),
/// -fsanitize=thread.
fs::path compileEmission(const codegen::Emission& emission,
                         const std::string& tag, bool threaded) {
  const fs::path dir = makeTempDir(tag);
  codegen::writeSources(dir.string(), emission);

  std::string cmd = "cd '" + dir.string() + "' && " + ARGO_HOST_CC + " " +
                    kCcFlags;
  if (threaded) {
    cmd += " -pthread";
    if (emittedTsan()) cmd += " -fsanitize=thread";
  }
  cmd += " -o prog";
  for (const std::string& unit : emission.cUnits) cmd += " " + unit;
  cmd += " -lm 2>cc.log";
  runCommand(cmd, tag + ":compile", dir / "cc.log");
  return dir;
}

/// Runs the compiled program of `dir` once and returns its stdout.
std::string runProgram(const fs::path& dir, const std::string& tag) {
  const std::string cmd =
      "cd '" + dir.string() + "' && ./prog 2>run.log";
  return runCommand(cmd, tag + ":run", dir / "run.log");
}

/// Uniform [-1, 1) inputs for every Input variable, one stream per step
/// (the scenario convention of scenarios/eval.cpp).
codegen::InputTrace randomTrace(const ir::Function& fn, std::uint64_t seed,
                                int steps) {
  codegen::InputTrace trace;
  for (int step = 0; step < steps; ++step) {
    support::Rng rng(seed + static_cast<std::uint64_t>(step));
    ir::Environment env;
    for (const ir::VarDecl& decl : fn.decls()) {
      if (decl.role != ir::VarRole::Input) continue;
      ir::Value value = ir::Value::zeros(decl.type);
      for (std::int64_t k = 0; k < value.size(); ++k) {
        value.setFloat(k, rng.uniformDouble() * 2.0 - 1.0);
      }
      env.emplace(decl.name, std::move(value));
    }
    trace.steps.push_back(std::move(env));
  }
  return trace;
}

/// The dual-mode oracle: both the sequential and the threaded emission
/// must print the evaluator's bytes; the threaded build carries runtime
/// deadline asserts and is run diffRepeat() times. The per-tile
/// translation units must be byte-identical across the two modes (only
/// program.h and main.c differ).
void expectDifferentialMatch(const core::Toolchain& toolchain,
                             const core::ToolchainResult& result,
                             const codegen::InputTrace& trace,
                             const std::string& tag) {
  const std::string expected =
      codegen::referenceOutputs(*result.fn, result.constants, trace);
  EXPECT_FALSE(expected.empty()) << tag;

  const codegen::Emission sequential = toolchain.emitC(result, trace);
  codegen::EmitOptions threadedOptions;
  threadedOptions.mode = codegen::ExecMode::Threads;
  threadedOptions.runtimeAsserts = true;
  const codegen::Emission threaded =
      toolchain.emitC(result, trace, threadedOptions);

  for (const codegen::SourceFile& file : sequential.files) {
    if (file.name.rfind("tile", 0) != 0) continue;
    EXPECT_EQ(file.contents, threaded.file(file.name).contents)
        << tag << ": " << file.name << " must not depend on the exec mode";
  }

  const fs::path seqDir = compileEmission(sequential, tag + "_seq", false);
  EXPECT_EQ(runProgram(seqDir, tag + "_seq"), expected) << tag;
  fs::remove_all(seqDir);

  const fs::path thrDir = compileEmission(threaded, tag + "_thr", true);
  const int repeats = diffRepeat();
  for (int run = 0; run < repeats; ++run) {
    EXPECT_EQ(runProgram(thrDir, tag + "_thr"), expected)
        << tag << ": threaded run " << run << " of " << repeats;
  }
  fs::remove_all(thrDir);
}

class CodegenDiffApps : public ::testing::TestWithParam<const char*> {};

TEST_P(CodegenDiffApps, EmittedCMatchesEvaluator) {
  const std::string app = GetParam();
  const adl::Platform platform = adl::makeRecoreXentiumBus(8);
  const core::Toolchain toolchain(platform, core::ToolchainOptions{});
  const core::ToolchainResult result =
      toolchain.run(apps::buildAppDiagram(app));

  // The same per-step recipe argo_cc --emit-c records (apps/registry.h),
  // so this suite validates exactly the trace the CLI emits.
  codegen::InputTrace trace;
  for (int step = 0; step < 3; ++step) {
    ir::Environment env = ir::makeZeroEnvironment(*result.fn);
    apps::setAppStepInputs(app, env, static_cast<std::uint64_t>(step));
    trace.steps.push_back(std::move(env));
  }
  expectDifferentialMatch(toolchain, result, trace, app);
}

INSTANTIATE_TEST_SUITE_P(Apps, CodegenDiffApps,
                         ::testing::Values("egpws", "weaa", "polka"));

TEST(CodegenDiffScenarios, TwentyFiveScenarioSlice) {
  // The same trimmed tool-chain configuration the batch evaluator uses,
  // over the default generator family (seed 1) — a 25-scenario slice of
  // the argo_eval matrix, each with fresh random inputs, each proven in
  // both execution modes.
  const scenarios::GeneratorOptions generator;
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);
  const core::Toolchain toolchain(platform,
                                  scenarios::defaultEvalToolchainOptions());
  for (int index = 0; index < 25; ++index) {
    const scenarios::Scenario scenario =
        scenarios::generateScenario(generator, index);
    const core::ToolchainResult result = toolchain.run(scenario.model);
    const codegen::InputTrace trace =
        randomTrace(*result.fn, scenario.seed, 2);
    expectDifferentialMatch(toolchain, result, trace, scenario.name);
  }
}

}  // namespace
}  // namespace argo
