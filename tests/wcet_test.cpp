// Unit tests for the code-level WCET analyzers: timing schema, CFG/IPET
// engine, their agreement, and the soundness relation against the metered
// interpreter.
#include <gtest/gtest.h>

#include "adl/platform.h"
#include "ir/builder.h"
#include "ir/evaluator.h"
#include "support/rng.h"
#include "wcet/analyzer.h"

namespace argo::wcet {
namespace {

using ir::ScalarKind;
using ir::Storage;
using ir::Type;
using ir::VarRole;

TimingModel xentiumModel() {
  const adl::Platform p = adl::makeRecoreXentiumBus(2);
  return TimingModel::forTile(p, 0);
}

/// Prices a metered run the way the simulator does, INCLUDING shared
/// accesses at their uncontended cost (matching the schema's pricing).
Cycles meteredCost(const ir::CountingMeter& meter, const TimingModel& model) {
  Cycles total = 0;
  for (int c = 0; c < ir::kOpClassCount; ++c) {
    const auto op = static_cast<ir::OpClass>(c);
    total += meter.ops()[op] * model.opCost(op);
  }
  for (Storage s : {Storage::Local, Storage::Scratchpad, Storage::Shared}) {
    total += (meter.reads(s) + meter.writes(s)) * model.accessCost(s);
  }
  return total;
}

TEST(TimingModel, AccessCostsOrdered) {
  const TimingModel model = xentiumModel();
  EXPECT_LE(model.accessCost(Storage::Local),
            model.accessCost(Storage::Scratchpad));
  EXPECT_LT(model.accessCost(Storage::Scratchpad),
            model.accessCost(Storage::Shared));
}

TEST(Schema, StraightLineIsSumOfCosts) {
  ir::Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output, Storage::Shared);
  fn.body().append(ir::assign(ir::ref("y"), ir::flt(1.0)));
  const TimingModel model = xentiumModel();
  const WcetResult r = SchemaAnalyzer(fn, model).analyzeFunction();
  // One shared write, no ops.
  EXPECT_EQ(r.cycles, model.accessCost(Storage::Shared));
  EXPECT_EQ(r.accesses.writes_of(Storage::Shared), 1);
  EXPECT_EQ(r.memoryCycles, r.cycles);
  EXPECT_EQ(r.computeCycles, 0);
}

TEST(Schema, LoopMultipliesBody) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {10}), VarRole::Output,
             Storage::Scratchpad);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                          ir::flt(0.0)));
  fn.body().append(ir::forLoop("i", 0, 10, std::move(body)));
  const TimingModel model = xentiumModel();
  const WcetResult r = SchemaAnalyzer(fn, model).analyzeFunction();
  EXPECT_EQ(r.accesses.writes_of(Storage::Scratchpad), 10);
  const Cycles perIter = model.accessCost(Storage::Scratchpad) +
                         model.opCost(ir::OpClass::LoopStep);
  EXPECT_EQ(r.cycles, 10 * perIter + model.opCost(ir::OpClass::Branch));
}

TEST(Schema, EmptyRangeLoopCostsOneBranch) {
  ir::Function fn("f");
  auto body = ir::block();
  fn.body().append(ir::forLoop("i", 5, 5, std::move(body)));
  const TimingModel model = xentiumModel();
  EXPECT_EQ(SchemaAnalyzer(fn, model).analyzeFunction().cycles,
            model.opCost(ir::OpClass::Branch));
}

TEST(Schema, IfTakesMaxArm) {
  ir::Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output, Storage::Local);
  // then: one sqrt; else: empty. WCET must include the sqrt.
  auto thenB = ir::block();
  thenB->append(ir::assign(ir::ref("y"), ir::sqrtE(ir::flt(2.0))));
  fn.body().append(ir::ifStmt(ir::boolean(false), std::move(thenB)));
  const TimingModel model = xentiumModel();
  const WcetResult r = SchemaAnalyzer(fn, model).analyzeFunction();
  EXPECT_GE(r.cycles, model.opCost(ir::OpClass::FloatDiv));  // sqrt class
}

TEST(Schema, SelectChargesMaxArm) {
  ir::Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output, Storage::Local);
  fn.body().append(ir::assign(
      ir::ref("y"), ir::select(ir::boolean(true), ir::flt(1.0),
                               ir::sqrtE(ir::flt(2.0)))));
  const TimingModel model = xentiumModel();
  const WcetResult r = SchemaAnalyzer(fn, model).analyzeFunction();
  EXPECT_GE(r.cycles, model.opCost(ir::OpClass::FloatDiv) +
                          model.opCost(ir::OpClass::Select));
}

TEST(Schema, IndexArithmeticMatchesInterpreterMetering) {
  // 2-D access: the analyzer must charge the same flattening ops the
  // interpreter meters.
  ir::Function fn("f");
  fn.declare("m", Type::array(ScalarKind::Float64, {4, 4}), VarRole::Output,
             Storage::Local);
  auto inner = ir::block();
  inner->append(ir::assign(
      ir::ref("m", ir::exprVec(ir::var("r"), ir::var("c"))), ir::flt(1.0)));
  auto outer = ir::block();
  outer->append(ir::forLoop("c", 0, 4, std::move(inner)));
  fn.body().append(ir::forLoop("r", 0, 4, std::move(outer)));

  const TimingModel model = xentiumModel();
  const WcetResult bound = SchemaAnalyzer(fn, model).analyzeFunction();

  ir::CountingMeter meter;
  ir::Environment env = ir::makeZeroEnvironment(fn);
  ir::Evaluator(fn).run(env, &meter);
  // Straight-line loop nest: bound is exact here.
  EXPECT_EQ(bound.cycles, meteredCost(meter, model));
}

TEST(Soundness, BoundDominatesMeteredExecution) {
  // Program with data-dependent branches: bound must be >= any metered run.
  ir::Function fn("f");
  fn.declare("x", Type::array(ScalarKind::Float64, {16}), VarRole::Input,
             Storage::Shared);
  fn.declare("y", Type::float64(), VarRole::Output, Storage::Shared);
  fn.declare("t", Type::float64(), VarRole::Temp, Storage::Local);
  fn.body().append(ir::assign(ir::ref("t"), ir::flt(0.0)));
  auto thenB = ir::block();
  thenB->append(ir::assign(
      ir::ref("t"), ir::add(ir::var("t"),
                            ir::sqrtE(ir::ref("x", ir::exprVec(ir::var("i")))))));
  auto elseB = ir::block();
  elseB->append(ir::assign(ir::ref("t"), ir::add(ir::var("t"), ir::flt(1.0))));
  auto body = ir::block();
  body->append(ir::ifStmt(
      ir::ge(ir::ref("x", ir::exprVec(ir::var("i"))), ir::flt(0.5)),
      std::move(thenB), std::move(elseB)));
  fn.body().append(ir::forLoop("i", 0, 16, std::move(body)));
  fn.body().append(ir::assign(ir::ref("y"), ir::var("t")));

  const TimingModel model = xentiumModel();
  const Cycles bound = SchemaAnalyzer(fn, model).analyzeFunction().cycles;

  support::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    ir::Environment env;
    ir::Value x = ir::Value::zeros(Type::array(ScalarKind::Float64, {16}));
    for (int i = 0; i < 16; ++i) x.setFloat(i, rng.uniformDouble());
    env["x"] = x;
    ir::CountingMeter meter;
    ir::Evaluator(fn).run(env, &meter);
    EXPECT_LE(meteredCost(meter, model), bound) << "trial " << trial;
  }
}

TEST(CfgEngine, AgreesWithSchemaOnStraightLine) {
  ir::Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output, Storage::Shared);
  fn.body().append(ir::assign(ir::ref("y"), ir::mul(ir::flt(2.0), ir::flt(3.0))));
  fn.body().append(ir::assign(ir::ref("y"), ir::add(ir::var("y"), ir::flt(1.0))));
  const TimingModel model = xentiumModel();
  EXPECT_EQ(CfgAnalyzer(fn, model).analyzeFunction(),
            SchemaAnalyzer(fn, model).analyzeFunction().cycles);
}

TEST(CfgEngine, AgreesWithSchemaOnBranches) {
  ir::Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output, Storage::Local);
  auto thenB = ir::block();
  thenB->append(ir::assign(ir::ref("y"), ir::sqrtE(ir::flt(2.0))));
  auto elseB = ir::block();
  elseB->append(ir::assign(ir::ref("y"), ir::flt(0.0)));
  elseB->append(ir::assign(ir::ref("y"), ir::add(ir::var("y"), ir::flt(1.0))));
  fn.body().append(
      ir::ifStmt(ir::boolean(true), std::move(thenB), std::move(elseB)));
  const TimingModel model = xentiumModel();
  EXPECT_EQ(CfgAnalyzer(fn, model).analyzeFunction(),
            SchemaAnalyzer(fn, model).analyzeFunction().cycles);
}

TEST(CfgEngine, AgreesWithSchemaOnLoopNests) {
  ir::Function fn("f");
  fn.declare("m", Type::array(ScalarKind::Float64, {6, 5}), VarRole::Output,
             Storage::Shared);
  auto inner = ir::block();
  inner->append(ir::assign(
      ir::ref("m", ir::exprVec(ir::var("r"), ir::var("c"))),
      ir::mul(ir::var("r"), ir::var("c"))));
  auto outer = ir::block();
  outer->append(ir::forLoop("c", 0, 5, std::move(inner)));
  fn.body().append(ir::forLoop("r", 0, 6, std::move(outer)));
  const TimingModel model = xentiumModel();
  EXPECT_EQ(CfgAnalyzer(fn, model).analyzeFunction(),
            SchemaAnalyzer(fn, model).analyzeFunction().cycles);
}

TEST(WcetResult, MaxMergesCounters) {
  WcetResult a;
  a.cycles = 10;
  a.accesses.reads[2] = 5;
  WcetResult b;
  b.cycles = 8;
  b.accesses.reads[2] = 9;
  const WcetResult m = WcetResult::max(a, b);
  EXPECT_EQ(m.cycles, 10);
  EXPECT_EQ(m.accesses.reads[2], 9);  // per-counter max
}

TEST(LoopBounds, ReportsNestedTripCounts) {
  ir::Function fn("f");
  auto inner = ir::block();
  auto outer = ir::block();
  outer->append(ir::forLoop("j", 0, 3, std::move(inner)));
  fn.body().append(ir::forLoop("i", 0, 7, std::move(outer)));
  const auto bounds = collectLoopBounds(fn.body());
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_EQ(bounds[0].var, "i");
  EXPECT_EQ(bounds[0].tripCount, 7);
  EXPECT_EQ(bounds[0].depth, 0);
  EXPECT_EQ(bounds[1].var, "j");
  EXPECT_EQ(bounds[1].depth, 1);
}

TEST(Heterogeneity, AcceleratorLowersMathHeavyWcet) {
  ir::Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output, Storage::Local);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("y"), ir::un(ir::UnOpKind::Sin,
                                               ir::var("y"))));
  fn.body().append(ir::forLoop("i", 0, 64, std::move(body)));
  const adl::Platform p = adl::makeKitLeon3Inoc(2, 2, /*accel=*/true);
  const Cycles onLeon =
      SchemaAnalyzer(fn, TimingModel::forTile(p, 0)).analyzeFunction().cycles;
  const Cycles onAccel =
      SchemaAnalyzer(fn, TimingModel::forTile(p, 3)).analyzeFunction().cycles;
  EXPECT_LT(onAccel, onLeon);
}

}  // namespace
}  // namespace argo::wcet
