// support::TaskGraph under stress: seeded randomized DAGs (wide, deep and
// skewed shapes) executed with 64-thread oversubscription, with repeat-run
// determinism checks — the graph analogue of the PR 6 oversubscription
// suites for ThreadPool / parallelFor. The suite runs under ASan+UBSan and
// TSan in CI (the tsan job's ctest filter matches the TaskGraph prefix).
#include "support/graph.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.h"
#include "support/rng.h"

namespace argo::support {
namespace {

/// One randomized DAG: nodes 0..n-1 with every edge pointing from a lower
/// to a higher id (acyclic by construction). Each node hashes its
/// predecessors' slots into its own, so a missed edge, a stale read, or a
/// double execution changes the assembled ladder. Heap-allocated because
/// the node closures capture `this`.
struct RandomDag {
  TaskGraph graph;
  std::vector<std::vector<TaskGraph::NodeId>> predecessors;
  std::vector<std::uint64_t> slots;

  RandomDag(const RandomDag&) = delete;
  RandomDag& operator=(const RandomDag&) = delete;

  explicit RandomDag(std::size_t n) : predecessors(n), slots(n, 0) {
    for (TaskGraph::NodeId id = 0; id < n; ++id) {
      graph.addNode("n" + std::to_string(id), [this, id] {
        std::uint64_t value = 0x9e3779b97f4a7c15ull * (id + 1);
        for (TaskGraph::NodeId p : predecessors[id]) {
          value = (value ^ slots[p]) * 0xbf58476d1ce4e5b9ull;
          value ^= value >> 27;
        }
        slots[id] = value;
      });
    }
  }

  void addEdge(TaskGraph::NodeId from, TaskGraph::NodeId to) {
    graph.addEdge(from, to);
    predecessors[to].push_back(from);
  }
};

/// Uniform index in [0, n). Requires n >= 1.
std::size_t pick(Rng& rng, std::size_t n) {
  return static_cast<std::size_t>(
      rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
}

/// Wide: a handful of roots fanning out over a flat field — maximum ready
/// width, minimum depth.
std::unique_ptr<RandomDag> buildWide(std::uint64_t seed, std::size_t n) {
  auto dag = std::make_unique<RandomDag>(n);
  Rng rng(seed);
  constexpr std::size_t kRoots = 3;
  for (TaskGraph::NodeId id = kRoots; id < n; ++id) {
    // Most nodes hang off one root; some are free-standing.
    if (rng.uniformDouble() < 0.7) {
      dag->addEdge(pick(rng, kRoots), id);
    }
  }
  return dag;
}

/// Deep: parallel chains with occasional forward cross-links — minimum
/// ready width, maximum depth (the ready queue is nearly starved).
std::unique_ptr<RandomDag> buildDeep(std::uint64_t seed, std::size_t chains,
                                     std::size_t length) {
  auto dag = std::make_unique<RandomDag>(chains * length);
  Rng rng(seed);
  for (std::size_t c = 0; c < chains; ++c) {
    for (std::size_t k = 1; k < length; ++k) {
      const TaskGraph::NodeId at = c * length + k;
      dag->addEdge(at - 1, at);
      if (rng.uniformDouble() < 0.1) {
        // Forward cross-link from an earlier node of a random chain.
        const std::size_t victim = pick(rng, chains);
        const TaskGraph::NodeId from = victim * length + pick(rng, k);
        if (from != at) dag->addEdge(from, at);
      }
    }
  }
  return dag;
}

/// Skewed: random layer widths between 1 and 20 — alternating wide
/// fan-outs and single-node bottlenecks, each node with 1..3 predecessors
/// drawn from anywhere earlier.
std::unique_ptr<RandomDag> buildSkewed(std::uint64_t seed, std::size_t n) {
  auto dag = std::make_unique<RandomDag>(n);
  Rng rng(seed);
  std::size_t layerStart = 0;
  std::size_t layerWidth = 1 + pick(rng, 20);
  for (TaskGraph::NodeId id = layerWidth; id < n; ++id) {
    if (id >= layerStart + layerWidth) {
      layerStart = id;
      layerWidth = 1 + pick(rng, 20);
    }
    const int fanIn = 1 + static_cast<int>(pick(rng, 3));
    for (int f = 0; f < fanIn; ++f) {
      const TaskGraph::NodeId from = pick(rng, layerStart);
      if (from != id) dag->addEdge(from, id);
    }
  }
  return dag;
}

constexpr int kOversubscribed = 64;  // threads >> cores on any CI host
constexpr int kRepeats = 8;

void expectDeterministicLadder(RandomDag& dag, RandomDag& reference,
                               const char* shape) {
  reference.graph.run(1);
  const std::vector<std::uint64_t> expected = reference.slots;
  for (int run = 0; run < kRepeats; ++run) {
    dag.slots.assign(dag.slots.size(), 0);
    dag.graph.run(kOversubscribed);  // run() is repeatable
    ASSERT_EQ(dag.slots, expected) << shape << " run " << run;
  }
}

TEST(TaskGraphStress, WideDagIsDeterministicOversubscribed) {
  auto dag = buildWide(11, 300);
  auto reference = buildWide(11, 300);
  expectDeterministicLadder(*dag, *reference, "wide");
}

TEST(TaskGraphStress, DeepChainsAreDeterministicOversubscribed) {
  auto dag = buildDeep(12, 8, 40);
  auto reference = buildDeep(12, 8, 40);
  expectDeterministicLadder(*dag, *reference, "deep");
}

TEST(TaskGraphStress, SkewedLayersAreDeterministicOversubscribed) {
  auto dag = buildSkewed(13, 250);
  auto reference = buildSkewed(13, 250);
  expectDeterministicLadder(*dag, *reference, "skewed");
}

TEST(TaskGraphStress, ManySeedsManyShapesOneLadderEach) {
  // A broader sweep at a smaller size: every seed builds all three shapes
  // and each must reproduce its own sequential ladder when oversubscribed.
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    for (int shape = 0; shape < 3; ++shape) {
      auto build = [&](std::uint64_t s) {
        switch (shape) {
          case 0: return buildWide(s, 120);
          case 1: return buildDeep(s, 4, 30);
          default: return buildSkewed(s, 120);
        }
      };
      auto reference = build(seed);
      reference->graph.run(1);
      auto dag = build(seed);
      dag->graph.run(kOversubscribed);
      ASSERT_EQ(dag->slots, reference->slots)
          << "seed " << seed << " shape " << shape;
    }
  }
}

TEST(TaskGraphStress, FailurePatternIsDeterministicUnderContention) {
  // Random ~8% of nodes throw over a random forward DAG. Which exception
  // propagates and which nodes execute vs. skip must be identical across
  // oversubscribed repeats — and identical to the sequential run.
  constexpr std::size_t kN = 200;
  const auto build = [](std::vector<std::atomic<int>>& ran) {
    Rng marks(22);
    std::vector<char> fails(kN, 0);
    for (std::size_t id = 0; id < kN; ++id) {
      fails[id] = marks.uniformDouble() < 0.08;
    }
    auto graph = std::make_unique<TaskGraph>();
    for (TaskGraph::NodeId id = 0; id < kN; ++id) {
      graph->addNode("n" + std::to_string(id),
                     [&ran, id, doFail = fails[id] != 0] {
                       ran[id].fetch_add(1);
                       if (doFail) {
                         throw ToolchainError("boom at " +
                                              std::to_string(id));
                       }
                     });
    }
    Rng edges(21);
    for (TaskGraph::NodeId id = 1; id < kN; ++id) {
      const int fanIn = static_cast<int>(pick(edges, 3));
      for (int f = 0; f < fanIn; ++f) {
        const TaskGraph::NodeId from = pick(edges, id);
        graph->addEdge(from, id);
      }
    }
    return graph;
  };

  std::vector<std::atomic<int>> referenceRan(kN);
  auto reference = build(referenceRan);
  std::string expectedError;
  try {
    reference->run(1);
  } catch (const ToolchainError& error) {
    expectedError = error.what();
  }
  ASSERT_FALSE(expectedError.empty()) << "seed produced no failing node";
  std::vector<int> expectedRan(kN);
  for (std::size_t id = 0; id < kN; ++id) {
    expectedRan[id] = referenceRan[id].load();
  }

  for (int run = 0; run < kRepeats; ++run) {
    std::vector<std::atomic<int>> ran(kN);
    auto graph = build(ran);
    try {
      graph->run(kOversubscribed);
      FAIL() << "expected ToolchainError, run " << run;
    } catch (const ToolchainError& error) {
      EXPECT_EQ(std::string(error.what()), expectedError) << "run " << run;
    }
    for (std::size_t id = 0; id < kN; ++id) {
      ASSERT_EQ(ran[id].load(), expectedRan[id])
          << "run " << run << " node " << id;
    }
  }
}

}  // namespace
}  // namespace argo::support
