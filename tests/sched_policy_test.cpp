// Tests for the pluggable scheduling-policy framework (sched/policy.h):
// registry round-trips, unknown-name diagnostics, dispatch through the
// Scheduler facade, and open registration of user-defined policies.
#include <gtest/gtest.h>

#include <algorithm>

#include "diamond_fixture.h"
#include "htg/htg.h"
#include "sched/bnb.h"
#include "sched/policy.h"
#include "sched/scheduler.h"
#include "support/diagnostics.h"

namespace argo::sched {
namespace {

struct Fixture {
  std::unique_ptr<ir::Function> fn;
  htg::TaskGraph graph;
  adl::Platform platform;

  explicit Fixture(int chunks = 2, int cores = 4)
      : fn(test::makeDiamondFn()),
        graph(htg::expand(htg::buildHtg(*fn), htg::ExpandOptions{chunks})),
        platform(adl::makeRecoreXentiumBus(cores)) {}
};

TEST(PolicyRegistry, BuiltInsAreRegistered) {
  const auto names = registeredPolicyNames();
  for (const char* builtin :
       {"heft", "branch_and_bound", "annealed", "contention_oblivious"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end())
        << builtin;
  }
}

TEST(PolicyRegistry, NamesRoundTripThroughLookup) {
  for (const std::string& name : registeredPolicyNames()) {
    const SchedulingPolicy* policy = findPolicy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
    EXPECT_EQ(&policyOrThrow(name), policy);
  }
}

TEST(PolicyRegistry, NamesAreSortedAndUnique) {
  const auto names = registeredPolicyNames();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(PolicyRegistry, UnknownNameIsNullFromFindAndDiagnosticFromThrow) {
  EXPECT_EQ(findPolicy("no_such_policy"), nullptr);
  try {
    (void)policyOrThrow("no_such_policy");
    FAIL() << "expected ToolchainError";
  } catch (const support::ToolchainError& error) {
    const std::string what = error.what();
    // The diagnostic must name the offender and list the alternatives.
    EXPECT_NE(what.find("no_such_policy"), std::string::npos) << what;
    EXPECT_NE(what.find("heft"), std::string::npos) << what;
    EXPECT_NE(what.find("branch_and_bound"), std::string::npos) << what;
  }
}

TEST(PolicyRegistry, SchedulerSurfacesUnknownPolicyDiagnostic) {
  Fixture fx;
  const Scheduler scheduler(fx.graph, fx.platform);
  SchedOptions options;
  options.policy = "no_such_policy";
  EXPECT_THROW((void)scheduler.run(options), support::ToolchainError);
}

TEST(PolicyRegistry, EveryBuiltInProducesAValidScheduleViaDispatch) {
  Fixture fx;
  const Scheduler scheduler(fx.graph, fx.platform);
  for (const std::string& name : registeredPolicyNames()) {
    SchedOptions options;
    options.policy = name;
    options.saIterations = 100;  // keep the annealed run cheap
    const Schedule schedule = scheduler.run(options);
    EXPECT_GT(schedule.makespan, 0) << name;
    EXPECT_TRUE(validateSchedule(schedule, fx.graph, fx.platform,
                                 scheduler.timings())
                    .empty())
        << name;
    // Labels derive from the registry name (BnB may annotate fallbacks).
    EXPECT_EQ(schedule.policy.find(name), 0u) << schedule.policy;
  }
}

/// A user-defined policy: schedules everything on tile 0 in task order.
/// Exists to prove the registry is open — selection by name reaches code
/// the sched/ module has never heard of.
class EverythingOnTileZero final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "everything_on_tile_zero";
  }
  [[nodiscard]] Schedule run(const SchedContext& ctx,
                             const SchedOptions&) const override {
    Schedule s;
    s.placements.resize(ctx.graph.tasks.size());
    s.tileOrder.assign(static_cast<std::size_t>(ctx.platform.coreCount()),
                       {});
    Cycles clock = 0;
    for (std::size_t i = 0; i < ctx.graph.tasks.size(); ++i) {
      Placement& p = s.placements[i];
      p.task = static_cast<int>(i);
      p.tile = 0;
      p.start = clock;
      p.finish = clock + ctx.timings[i].wcetByTile[0];
      clock = p.finish;
      s.tileOrder[0].push_back(static_cast<int>(i));
    }
    s.makespan = clock;
    s.tilesUsed = 1;
    s.policy = std::string(name());
    return s;
  }
};

TEST(PolicyRegistry, UserPoliciesRegisterAndDispatchAndRejectDuplicates) {
  if (findPolicy("everything_on_tile_zero") == nullptr) {
    registerPolicy(std::make_unique<EverythingOnTileZero>());
  }
  // A second registration under the same name must be rejected.
  EXPECT_THROW(registerPolicy(std::make_unique<EverythingOnTileZero>()),
               support::ToolchainError);

  Fixture fx;
  const Scheduler scheduler(fx.graph, fx.platform);
  SchedOptions options;
  options.policy = "everything_on_tile_zero";
  const Schedule schedule = scheduler.run(options);
  EXPECT_EQ(schedule.policy, "everything_on_tile_zero");
  EXPECT_EQ(schedule.tilesUsed, 1);
  // Sequential task order on one tile is trivially valid: no overlaps, no
  // cross-tile communication, every dependence in task order.
  EXPECT_TRUE(validateSchedule(schedule, fx.graph, fx.platform,
                               scheduler.timings())
                  .empty());
}

TEST(PolicyRegistry, BnbFeasibilityQueryOwnsTheBitmaskWidth) {
  SchedOptions options;  // default bnbTaskLimit = 14
  EXPECT_TRUE(bnbExactSearchFeasible(14, options));
  EXPECT_FALSE(bnbExactSearchFeasible(15, options));
  // A permissive task limit is still capped by the mask width.
  options.bnbTaskLimit = 1000;
  EXPECT_EQ(bnbEffectiveTaskLimit(options), kBnbMaxTasks);
  EXPECT_TRUE(bnbExactSearchFeasible(static_cast<std::size_t>(kBnbMaxTasks),
                                     options));
  EXPECT_FALSE(bnbExactSearchFeasible(
      static_cast<std::size_t>(kBnbMaxTasks) + 1, options));
}

}  // namespace
}  // namespace argo::sched
