// support::parallelFor: the shared deterministic-parallelism layer. Covers
// the knob resolution, empty/single ranges, the failure contract (every
// index runs; the lowest failing index's exception propagates, on both the
// inline and the pooled path) and the no-nested-pools rule.
#include "support/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/diagnostics.h"

namespace argo::support {
namespace {

TEST(EffectiveParallelism, ResolvesKnobAndClampsToRange) {
  EXPECT_EQ(effectiveParallelism(4, 100), 4u);
  EXPECT_EQ(effectiveParallelism(4, 2), 2u);   // never more than n
  EXPECT_EQ(effectiveParallelism(1, 100), 1u);
  EXPECT_GE(effectiveParallelism(0, 100), 1u);  // 0 = hardware threads
  EXPECT_EQ(effectiveParallelism(-3, 1), 1u);
  EXPECT_EQ(effectiveParallelism(8, 0), 1u);   // empty range still >= 1
}

TEST(ParallelFor, EmptyRangeIsANoOpOnBothPaths) {
  for (int threads : {1, 4}) {
    parallelFor(0, threads,
                [](std::size_t) { FAIL() << "must not be called"; });
  }
}

TEST(ParallelFor, SingleElementRunsExactlyOnce) {
  for (int threads : {1, 8}) {
    int calls = 0;
    std::size_t seen = 99;
    parallelFor(1, threads, [&](std::size_t i) {
      ++calls;
      seen = i;
    });
    EXPECT_EQ(calls, 1) << "threads " << threads;
    EXPECT_EQ(seen, 0u);
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 500;
  for (int threads : {1, 4}) {
    std::vector<std::atomic<int>> hits(kN);
    parallelFor(kN, threads, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "threads " << threads << " index " << i;
    }
  }
}

TEST(ParallelFor, LowestFailingIndexWinsOnBothPaths) {
  for (int threads : {1, 4}) {
    for (int run = 0; run < 5; ++run) {
      try {
        parallelFor(64, threads, [](std::size_t i) {
          if (i % 7 == 5) {  // lowest failing index is 5
            throw ToolchainError("boom at " + std::to_string(i));
          }
        });
        FAIL() << "expected ToolchainError";
      } catch (const ToolchainError& e) {
        EXPECT_STREQ(e.what(), "boom at 5") << "threads " << threads;
      }
    }
  }
}

TEST(ParallelFor, FailureStillRunsEveryIndexOnBothPaths) {
  for (int threads : {1, 4}) {
    std::atomic<int> executed{0};
    EXPECT_THROW(parallelFor(100, threads,
                             [&](std::size_t i) {
                               executed.fetch_add(1);
                               if (i == 0) throw std::runtime_error("x");
                             }),
                 std::runtime_error);
    EXPECT_EQ(executed.load(), 100) << "threads " << threads;
  }
}

TEST(ParallelFor, NestedPooledUseIsRejected) {
  // A pooled inner loop inside any parallelFor task must throw — on a pool
  // worker and on the helping caller thread alike. Every index fails the
  // same way, and the lowest index's ToolchainError surfaces.
  for (int outerThreads : {1, 4}) {
    EXPECT_THROW(
        parallelFor(8, outerThreads,
                    [](std::size_t) {
                      parallelFor(4, 2, [](std::size_t) {});
                    }),
        ToolchainError)
        << "outer threads " << outerThreads;
  }
}

TEST(ParallelFor, NestedInlineUseIsAllowed) {
  // threads = 1 inner loops are plain loops; pooled outer phases rely on
  // this to run their per-candidate sub-phases sequentially.
  std::atomic<int> total{0};
  parallelFor(8, 4, [&](std::size_t) {
    parallelFor(16, 1, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ParallelFor, GuardSurvivesANestedInlineLoop) {
  // Regression: the inner inline loop's task scopes must restore — not
  // clear — the task flag, so a pooled request later in the same outer
  // task body is still rejected and inParallelTask() stays true.
  std::atomic<int> guardFired{0};
  std::atomic<bool> flagHeld{true};
  for (int outerThreads : {1, 4}) {
    try {
      parallelFor(4, outerThreads, [&](std::size_t) {
        parallelFor(2, 1, [](std::size_t) {});
        if (!inParallelTask()) flagHeld = false;
        parallelFor(2, 2, [](std::size_t) {});  // must throw
      });
    } catch (const ToolchainError&) {
      guardFired.fetch_add(1);
    }
  }
  EXPECT_EQ(guardFired.load(), 2);
  EXPECT_TRUE(flagHeld.load());
}

TEST(ParallelFor, InParallelTaskFlagScopesToTaskBodies) {
  EXPECT_FALSE(inParallelTask());
  std::atomic<bool> sawFlag{true};
  parallelFor(32, 4, [&](std::size_t) {
    if (!inParallelTask()) sawFlag = false;
  });
  EXPECT_TRUE(sawFlag.load());
  EXPECT_FALSE(inParallelTask());
}

TEST(ParallelFor, PooledUseFromAPlainThreadIsAllowedAfterATask) {
  // The rejection flag must clear once a task body returns, so back-to-back
  // phases on the same thread keep working.
  parallelFor(4, 2, [](std::size_t) {});
  std::atomic<int> count{0};
  parallelFor(4, 2, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

// ------------------------------------------------- Oversubscription
// The determinism contract with threads ≫ hardware cores: per-index
// results, the propagated exception, and the nested-pool rejection must
// all be independent of how the OS schedules the oversubscribed workers.
// Repeat-until loops explore many interleavings per test.

TEST(ParallelForOversubscribed, PerIndexResultsAreIdenticalAcrossRuns) {
  constexpr std::size_t kN = 300;
  std::vector<long> expected(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    expected[i] = static_cast<long>(i * i);
  }
  for (int run = 0; run < 15; ++run) {
    std::vector<long> out(kN, -1);
    parallelFor(kN, 64, [&](std::size_t i) {
      out[i] = static_cast<long>(i * i);
    });
    EXPECT_EQ(out, expected) << "run " << run;
  }
}

TEST(ParallelForOversubscribed, LowestFailingIndexWinsUnderContention) {
  for (int run = 0; run < 10; ++run) {
    try {
      parallelFor(200, 64, [](std::size_t i) {
        if (i >= 100) {  // half the range fails; 100 is the lowest
          throw ToolchainError("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected ToolchainError";
    } catch (const ToolchainError& e) {
      EXPECT_STREQ(e.what(), "boom at 100") << "run " << run;
    }
  }
}

TEST(ParallelForOversubscribed, NestedPoolRejectionHoldsOnEveryWorker) {
  // All 64 task bodies attempt a pooled inner loop; each must be
  // rejected — contention must not let one slip through the guard.
  std::atomic<int> rejected{0};
  EXPECT_THROW(parallelFor(64, 64,
                           [&](std::size_t) {
                             try {
                               parallelFor(2, 2, [](std::size_t) {});
                             } catch (const ToolchainError&) {
                               rejected.fetch_add(1);
                               throw;
                             }
                           }),
               ToolchainError);
  EXPECT_EQ(rejected.load(), 64);
}

}  // namespace
}  // namespace argo::support
