// Codegen suite: lowering semantics (the evaluator-mirroring type rules),
// canonical output formatting, emission determinism across runs and
// thread counts, and the golden emitted source for the diamond fixture.
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "codegen/lower.h"
#include "core/toolchain.h"
#include "diamond_fixture.h"
#include "ir/builder.h"
#include "sched/policy.h"
#include "support/diagnostics.h"

namespace argo {
namespace {

// ---------------------------------------------------------------- Lowering

std::unique_ptr<ir::Function> typedFn() {
  auto fn = std::make_unique<ir::Function>("typed");
  fn->declare("f", ir::Type::float64(), ir::VarRole::Input);
  fn->declare("n", ir::Type::int32(), ir::VarRole::Input);
  fn->declare("b", ir::Type::boolean(), ir::VarRole::Temp);
  fn->declare("a", ir::Type::array(ir::ScalarKind::Float64, {4, 2}),
              ir::VarRole::Temp);
  return fn;
}

TEST(CodegenLowering, LiteralsAndVarTypes) {
  auto fn = typedFn();
  codegen::Lowerer lowerer(*fn);
  const auto i = lowerer.lowerExpr(*ir::lit(7));
  EXPECT_EQ(i.text, "((int64_t)7)");
  EXPECT_FALSE(i.isFloat);
  // Hexfloat literals round-trip the exact double.
  const auto f = lowerer.lowerExpr(*ir::flt(1.5));
  EXPECT_EQ(f.text, "0x1.8p+0");
  EXPECT_TRUE(f.isFloat);
  // Int32/Bool loads widen to the evaluator's int64 immediately.
  const auto n = lowerer.lowerExpr(*ir::var("n"));
  EXPECT_EQ(n.text, "(int64_t)A_n[0]");
  EXPECT_FALSE(n.isFloat);
  EXPECT_TRUE(lowerer.lowerExpr(*ir::var("f")).isFloat);
}

TEST(CodegenLowering, MixedArithmeticPromotesLikeEvaluator) {
  auto fn = typedFn();
  codegen::Lowerer lowerer(*fn);
  // int + float -> float op on asFloat views.
  const auto mixed = lowerer.lowerExpr(*ir::add(ir::var("n"), ir::var("f")));
  EXPECT_TRUE(mixed.isFloat);
  EXPECT_EQ(mixed.text, "((double)(int64_t)A_n[0] + A_f[0])");
  // int / int routes through the trap-checked helper.
  const auto division = lowerer.lowerExpr(*ir::div(ir::var("n"), ir::lit(2)));
  EXPECT_FALSE(division.isFloat);
  EXPECT_EQ(division.text, "argo_idiv((int64_t)A_n[0], ((int64_t)2))");
  // Comparisons always compare as double (Scalar::asFloat), yielding int.
  const auto cmp = lowerer.lowerExpr(*ir::lt(ir::var("n"), ir::lit(3)));
  EXPECT_FALSE(cmp.isFloat);
  EXPECT_EQ(cmp.text,
            "((int64_t)((double)(int64_t)A_n[0] < (double)((int64_t)3)))");
}

TEST(CodegenLowering, SelectMixedArmsPromoteToDouble) {
  auto fn = typedFn();
  codegen::Lowerer lowerer(*fn);
  const auto sel = lowerer.lowerExpr(
      *ir::select(ir::var("b"), ir::var("f"), ir::lit(0)));
  EXPECT_TRUE(sel.isFloat);
  EXPECT_EQ(sel.text,
            "(((int64_t)A_b[0] != 0) ? A_f[0] : (double)((int64_t)0))");
  // Same-typed arms keep their type.
  const auto intSel = lowerer.lowerExpr(
      *ir::select(ir::var("b"), ir::lit(1), ir::lit(2)));
  EXPECT_FALSE(intSel.isFloat);
}

TEST(CodegenLowering, StoresNarrowToDeclaredWidth) {
  auto fn = typedFn();
  codegen::Lowerer lowerer(*fn);
  const std::string toInt =
      lowerer.lowerStmt(*ir::assign(ir::ref("n"), ir::var("f")), 0);
  EXPECT_EQ(toInt, "A_n[0] = (int32_t)(int64_t)A_f[0];\n");
  const std::string toBool =
      lowerer.lowerStmt(*ir::assign(ir::ref("b"), ir::lit(1)), 0);
  EXPECT_EQ(toBool, "A_b[0] = (signed char)((int64_t)1);\n");
}

TEST(CodegenLowering, MultiDimFlattensRowMajor) {
  auto fn = typedFn();
  codegen::Lowerer lowerer(*fn);
  const auto elem = lowerer.lowerExpr(
      *ir::ref("a", ir::exprVec(ir::lit(1), ir::lit(0))));
  EXPECT_EQ(elem.text, "A_a[(((int64_t)1) * 2 + ((int64_t)0))]");
}

TEST(CodegenLowering, LoopVarsBecomeLocalInt64) {
  auto fn = typedFn();
  codegen::Lowerer lowerer(*fn);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"), ir::lit(0))),
                          ir::var("i")));
  const std::string text =
      lowerer.lowerStmt(*ir::forLoop("i", 0, 4, std::move(body)), 0);
  // The float-array store widens the int loop variable (Scalar::asFloat).
  EXPECT_EQ(text,
            "for (int64_t L_i = 0; L_i < 4; L_i += 1) {\n"
            "  A_a[(L_i * 2 + ((int64_t)0))] = (double)L_i;\n"
            "}\n");
}

TEST(CodegenLowering, UnknownIntrinsicThrows) {
  auto fn = typedFn();
  codegen::Lowerer lowerer(*fn);
  EXPECT_THROW((void)lowerer.lowerExpr(*ir::call(
                   "mystery", ir::exprVec(ir::var("f"), ir::var("f")))),
               support::ToolchainError);
}

// ------------------------------------------------------- Canonical output

TEST(CodegenCanonicalOutput, FormatsOutputsOnly) {
  ir::Function fn("out");
  fn.declare("x", ir::Type::float64(), ir::VarRole::Input);
  fn.declare("y", ir::Type::array(ir::ScalarKind::Float64, {2}),
             ir::VarRole::Output);
  fn.declare("k", ir::Type::int32(), ir::VarRole::Output);
  ir::Environment env = ir::makeZeroEnvironment(fn);
  env["y"].setFloat(0, 1.5);
  env["y"].setFloat(1, -0.25);
  env["k"].setInt(0, -3);
  env["x"].setFloat(0, 9.0);  // inputs never print
  EXPECT_EQ(codegen::canonicalOutputs(fn, env, 2),
            "-- step 2\n"
            "y[0] = 0x1.8p+0\n"
            "y[1] = -0x1p-2\n"
            "k = -3\n");
}

TEST(CodegenCanonicalOutput, ReferenceCarriesStateAcrossSteps) {
  // y = s + x; s = y  — a running sum, so per-step outputs must differ
  // when the evaluator keeps State between trace steps.
  ir::Function fn("acc");
  fn.declare("x", ir::Type::float64(), ir::VarRole::Input);
  fn.declare("s", ir::Type::float64(), ir::VarRole::State);
  fn.declare("y", ir::Type::float64(), ir::VarRole::Output);
  fn.body().append(ir::assign(ir::ref("y"), ir::add(ir::var("s"),
                                                    ir::var("x"))));
  fn.body().append(ir::assign(ir::ref("s"), ir::var("y")));

  codegen::InputTrace trace;
  for (int step = 0; step < 2; ++step) {
    ir::Environment env;
    env.emplace("x", ir::Value::scalarFloat(1.0));
    trace.steps.push_back(std::move(env));
  }
  EXPECT_EQ(codegen::referenceOutputs(fn, {}, trace),
            "-- step 0\n"
            "y = 0x1p+0\n"
            "-- step 1\n"
            "y = 0x1p+1\n");
}

// ------------------------------------------------ Determinism and golden

/// Diamond fixture through a fixed scheduling pipeline (no feedback
/// heuristics): HEFT on a 2-tile bus at chunksPerLoop 1.
struct DiamondProgram {
  std::unique_ptr<ir::Function> fn;
  adl::Platform platform = adl::makeRecoreXentiumBus(2);
  htg::TaskGraph graph;
  par::ParallelProgram program;
};

DiamondProgram makeDiamondProgram() {
  DiamondProgram d;
  d.fn = test::makeDiamondFn(8);
  const htg::Htg htg = htg::buildHtg(*d.fn);
  htg::ExpandOptions expand;
  expand.chunksPerLoop = 1;
  d.graph = htg::expand(htg, expand);
  const auto timings = sched::computeTaskTimings(d.graph, d.platform);
  const auto succ = d.graph.successors();
  const auto pred = d.graph.predecessors();
  const sched::SchedContext ctx{d.graph,  d.platform, timings,
                                succ,     pred,       d.platform.coreCount()};
  const sched::Schedule schedule =
      sched::policyOrThrow("heft").run(ctx, sched::SchedOptions{});
  d.program = par::buildParallelProgram(d.graph, schedule, d.platform);
  return d;
}

codegen::InputTrace diamondTrace(const ir::Function& fn) {
  codegen::InputTrace trace;
  ir::Environment env = ir::makeZeroEnvironment(fn);
  for (std::int64_t k = 0; k < env.at("u").size(); ++k) {
    env["u"].setFloat(k, 0.5 * static_cast<double>(k));
  }
  trace.steps.push_back(std::move(env));
  return trace;
}

TEST(CodegenDeterminism, EmissionIsBytePure) {
  const DiamondProgram d = makeDiamondProgram();
  const codegen::InputTrace trace = diamondTrace(*d.fn);
  const codegen::Emission a =
      codegen::emitProgram(d.program, d.platform, {}, trace);
  const codegen::Emission b =
      codegen::emitProgram(d.program, d.platform, {}, trace);
  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t k = 0; k < a.files.size(); ++k) {
    EXPECT_EQ(a.files[k].name, b.files[k].name);
    EXPECT_EQ(a.files[k].contents, b.files[k].contents) << a.files[k].name;
  }
  EXPECT_EQ(a.cUnits, b.cUnits);
}

TEST(CodegenDeterminism, ByteIdenticalAcrossToolchainThreadCounts) {
  // The emit step is downstream of the whole deterministic pipeline: a
  // --threads 1 and a --threads 8 toolchain run must emit identical bytes.
  auto runAndEmit = [](int threads) {
    core::ToolchainOptions options;
    options.explorationThreads = threads;
    const core::Toolchain toolchain(adl::makeRecoreXentiumBus(4), options);
    model::CompiledModel model;
    model.fn = test::makeDiamondFn(16);
    const core::ToolchainResult result = toolchain.run(model);
    return toolchain.emitC(result, diamondTrace(*result.fn));
  };
  const codegen::Emission seq = runAndEmit(1);
  const codegen::Emission pooled = runAndEmit(8);
  ASSERT_EQ(seq.files.size(), pooled.files.size());
  for (std::size_t k = 0; k < seq.files.size(); ++k) {
    EXPECT_EQ(seq.files[k].contents, pooled.files[k].contents)
        << seq.files[k].name;
  }
}

// Golden anchor: byte-for-byte what the diamond fixture emits for tile 0
// (HEFT, 2-tile bus, chunksPerLoop 1). Like the scenario generator's
// kGoldenIr, a diff here is a breaking change to the emitted-source
// contract, not churn.
constexpr const char* kGoldenTile0 =
    R"C(// Generated by the ARGO tool-chain - do not edit.
// Tile 0 (xentium): 4 scheduled tasks, static order.
#include "program.h"

// task 0 'loop_i0_0' [start 0, finish 186]
void argo_task_0(void) {
  for (int64_t L_i0 = 0; L_i0 < 8; L_i0 += 1) {
    A_a[L_i0] = (A_u[L_i0] * 0x1p+1);
  }
}

// task 1 'loop_i1_1' [start 186, finish 372]
void argo_task_1(void) {
  for (int64_t L_i1 = 0; L_i1 < 8; L_i1 += 1) {
    A_l[L_i1] = (A_a[L_i1] * 0x1.8p+1);
  }
}

// task 2 'loop_i2_2' [start 372, finish 558]
void argo_task_2(void) {
  for (int64_t L_i2 = 0; L_i2 < 8; L_i2 += 1) {
    A_r[L_i2] = (A_a[L_i2] * 0x1.4p+2);
  }
}

// task 3 'loop_i3_3' [start 558, finish 824]
void argo_task_3(void) {
  for (int64_t L_i3 = 0; L_i3 < 8; L_i3 += 1) {
    A_y[L_i3] = (A_l[L_i3] + A_r[L_i3]);
  }
}


const argo_slot argo_tile0_slots[4] = {
    {0ll, 186ll, 0, argo_task_0, NULL, 0, NULL, 0},
    {186ll, 372ll, 1, argo_task_1, NULL, 0, NULL, 0},
    {372ll, 558ll, 2, argo_task_2, NULL, 0, NULL, 0},
    {558ll, 824ll, 3, argo_task_3, NULL, 0, NULL, 0},
};
)C";

TEST(CodegenGolden, DiamondTileSource) {
  const DiamondProgram d = makeDiamondProgram();
  const codegen::Emission emission =
      codegen::emitProgram(d.program, d.platform, {}, diamondTrace(*d.fn));
  // Golden anchor: the full translation unit of tile 0. A diff here means
  // the emitted-source contract changed — review docs/CODEGEN.md and the
  // recorded differential baselines before accepting it.
  EXPECT_EQ(emission.file("tile0.c").contents, kGoldenTile0);
}

// ------------------------------------------------- Execution modes

TEST(CodegenExecModes, ThreadedEmissionIsBytePure) {
  const DiamondProgram d = makeDiamondProgram();
  const codegen::InputTrace trace = diamondTrace(*d.fn);
  codegen::EmitOptions options;
  options.mode = codegen::ExecMode::Threads;
  options.runtimeAsserts = true;
  const codegen::Emission a =
      codegen::emitProgram(d.program, d.platform, {}, trace, options);
  const codegen::Emission b =
      codegen::emitProgram(d.program, d.platform, {}, trace, options);
  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t k = 0; k < a.files.size(); ++k) {
    EXPECT_EQ(a.files[k].contents, b.files[k].contents) << a.files[k].name;
  }
}

TEST(CodegenExecModes, TileUnitsDoNotDependOnMode) {
  // Only program.h (the ARGO_EXEC_THREADS / ARGO_RUNTIME_ASSERTS defines)
  // and main.c (the harness) may differ between modes — the per-tile
  // translation units carry the same bytes, so WCET analysis of the task
  // code is mode-independent.
  const DiamondProgram d = makeDiamondProgram();
  const codegen::InputTrace trace = diamondTrace(*d.fn);
  codegen::EmitOptions threads;
  threads.mode = codegen::ExecMode::Threads;
  const codegen::Emission seq =
      codegen::emitProgram(d.program, d.platform, {}, trace);
  const codegen::Emission thr =
      codegen::emitProgram(d.program, d.platform, {}, trace, threads);
  EXPECT_EQ(seq.file("tile0.c").contents, thr.file("tile0.c").contents);
  EXPECT_NE(seq.file("program.h").contents, thr.file("program.h").contents);
  EXPECT_NE(seq.file("main.c").contents, thr.file("main.c").contents);
  EXPECT_NE(thr.file("main.c").contents.find("pthread_create"),
            std::string::npos);
  EXPECT_EQ(seq.file("main.c").contents.find("pthread_create"),
            std::string::npos);
}

// ------------------------------------------------- Negative paths

/// Pinned-diagnostic helper: the emission must throw a ToolchainError
/// whose message contains `needle` — a diagnostic, not malformed C.
template <typename Fn>
void expectDiagnostic(Fn&& fn, const std::string& needle) {
  try {
    (void)fn();
    FAIL() << "expected ToolchainError containing \"" << needle << "\"";
  } catch (const support::ToolchainError& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "actual message: " << error.what();
  }
}

TEST(CodegenNegative, EmptyTraceIsAPinnedDiagnostic) {
  const DiamondProgram d = makeDiamondProgram();
  expectDiagnostic(
      [&] {
        return codegen::emitProgram(d.program, d.platform, {},
                                    codegen::InputTrace{});
      },
      "input trace is empty");
}

/// A one-task pipeline over int32 variables, for the width diagnostics:
/// y = k + c with k an Input and c a Const.
struct IntProgram {
  std::unique_ptr<ir::Function> fn;
  adl::Platform platform = adl::makeRecoreXentiumBus(2);
  htg::TaskGraph graph;
  par::ParallelProgram program;
};

IntProgram makeIntProgram() {
  IntProgram d;
  d.fn = std::make_unique<ir::Function>("intflow");
  d.fn->declare("k", ir::Type::int32(), ir::VarRole::Input);
  d.fn->declare("c", ir::Type::int32(), ir::VarRole::Const);
  d.fn->declare("y", ir::Type::int32(), ir::VarRole::Output);
  d.fn->body().append(
      ir::assign(ir::ref("y"), ir::add(ir::var("k"), ir::var("c"))));
  const htg::Htg htg = htg::buildHtg(*d.fn);
  htg::ExpandOptions expand;
  expand.chunksPerLoop = 1;
  d.graph = htg::expand(htg, expand);
  const auto timings = sched::computeTaskTimings(d.graph, d.platform);
  const auto succ = d.graph.successors();
  const auto pred = d.graph.predecessors();
  const sched::SchedContext ctx{d.graph,  d.platform, timings,
                                succ,     pred,       d.platform.coreCount()};
  const sched::Schedule schedule =
      sched::policyOrThrow("heft").run(ctx, sched::SchedOptions{});
  d.program = par::buildParallelProgram(d.graph, schedule, d.platform);
  return d;
}

ir::Value int32Value(std::int64_t v) {
  ir::Value value = ir::Value::zeros(ir::Type::int32());
  value.setInt(0, v);
  return value;
}

TEST(CodegenNegative, TraceValueExceedingDeclaredWidthIsADiagnostic) {
  const IntProgram d = makeIntProgram();
  codegen::InputTrace trace;
  ir::Environment env;
  env.emplace("k", int32Value(3000000000ll));  // > INT32_MAX
  trace.steps.push_back(std::move(env));
  expectDiagnostic(
      [&] { return codegen::emitProgram(d.program, d.platform, {}, trace); },
      "exceeds the declared int32 width");
}

TEST(CodegenNegative, ConstantExceedingDeclaredWidthIsADiagnostic) {
  const IntProgram d = makeIntProgram();
  codegen::InputTrace trace;
  ir::Environment env;
  env.emplace("k", int32Value(1));
  trace.steps.push_back(std::move(env));
  ir::Environment constants;
  constants.emplace("c", int32Value(-3000000000ll));  // < INT32_MIN
  expectDiagnostic(
      [&] {
        return codegen::emitProgram(d.program, d.platform, constants, trace);
      },
      "exceeds the declared int32 width");
}

TEST(CodegenNegative, LiteralStoreExceedingDeclaredWidthIsADiagnostic) {
  auto fn = typedFn();
  codegen::Lowerer lowerer(*fn);
  expectDiagnostic(
      [&] {
        return lowerer.lowerStmt(
            *ir::assign(ir::ref("n"), ir::lit(3000000000ll)), 0);
      },
      "exceeds the declared int32 width");
  expectDiagnostic(
      [&] {
        return lowerer.lowerStmt(*ir::assign(ir::ref("b"), ir::lit(200)), 0);
      },
      "exceeds the declared bool width");
}

TEST(CodegenNegative, SingleTileProgramEmitsNoChannels) {
  // All four diamond tasks land on tile 0 under HEFT on the 2-tile bus —
  // the single-tile case: the emission is pinned to carry exactly one
  // tile unit, zero inter-tile channels, and a threaded build that still
  // compiles (one worker thread, no condvar waits in any dispatch table).
  const DiamondProgram d = makeDiamondProgram();
  const codegen::InputTrace trace = diamondTrace(*d.fn);
  codegen::EmitOptions threads;
  threads.mode = codegen::ExecMode::Threads;
  const codegen::Emission emission =
      codegen::emitProgram(d.program, d.platform, {}, trace, threads);
  EXPECT_EQ(emission.cUnits,
            (std::vector<std::string>{"tile0.c", "main.c"}));
  EXPECT_NE(
      emission.file("program.h").contents.find("#define ARGO_EVENT_COUNT 0"),
      std::string::npos);
  EXPECT_EQ(emission.file("main.c").contents.find("argo_channels"),
            std::string::npos);
  EXPECT_EQ(emission.file("tile0.c").contents.find("argo_w_"),
            std::string::npos);
}

}  // namespace
}  // namespace argo
