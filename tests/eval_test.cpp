// Batch-evaluator suite: thread-count determinism of the argo_eval
// report, the graph-vs-barrier executor differential (the TaskGraph path
// must reproduce the barrier path byte for byte), the cache differential
// (a --cache off run must reproduce the cached default byte for byte),
// the cross-product sweep mode, the policy-matrix smoke check (every
// registered policy schedules every generated scenario, no unexpected
// fallbacks), and the JSON shape.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "sched/bnb.h"
#include "sched/policy.h"
#include "scenarios/eval.h"
#include "support/diagnostics.h"

namespace argo {
namespace {

namespace fs = std::filesystem;

/// RAII cache directory for the disk-tier differentials.
struct TempCacheDir {
  explicit TempCacheDir(const std::string& tag) {
    std::string templ =
        (fs::temp_directory_path() / ("argo_eval_" + tag + "_XXXXXX"))
            .string();
    if (mkdtemp(templ.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed for " + templ);
    }
    path = templ;
  }
  ~TempCacheDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

/// A batch small enough for test time but wide enough to cross several
/// platform cases and both fallback paths.
scenarios::EvalOptions smallBatch() {
  scenarios::EvalOptions options;
  options.generator.seed = 7;
  options.scenarioCount = 5;
  options.simTrials = 1;
  return options;
}

TEST(EvalDeterminism, ReportIsByteIdenticalAcrossThreadCounts) {
  scenarios::EvalOptions options = smallBatch();
  options.threads = 1;
  const std::string sequential = scenarios::runEval(options).toJson();
  for (int threads : {3, 8}) {
    options.threads = threads;
    EXPECT_EQ(scenarios::runEval(options).toJson(), sequential)
        << "threads=" << threads;
  }
}

TEST(EvalDeterminism, GraphExecutorMatchesBarrierByteForByte) {
  // The executor differential: the TaskGraph pipeline (stages overlap
  // across scenarios) must reproduce the pre-existing barrier report byte
  // for byte, at every thread count. A wider slice than smallBatch() so
  // the graph crosses every platform case several times and both
  // executors hit the fallback paths.
  scenarios::EvalOptions barrier = smallBatch();
  barrier.scenarioCount = 25;
  barrier.executor = scenarios::EvalExecutor::Barrier;
  barrier.threads = 8;
  const std::string reference = scenarios::runEval(barrier).toJson();

  scenarios::EvalOptions graph = barrier;
  graph.executor = scenarios::EvalExecutor::Graph;
  for (int threads : {1, 3, 8}) {
    graph.threads = threads;
    EXPECT_EQ(scenarios::runEval(graph).toJson(), reference)
        << "graph threads=" << threads;
  }
}

TEST(EvalCacheDifferential, CacheOffMatchesCachedDefaultByteForByte) {
  // The cache differential over the same 25-scenario slice the executor
  // differential uses: an uncached run (every unit computed from scratch)
  // is the oracle, and the cached default must reproduce it byte for
  // byte at every thread count — hits return bit-identical values or
  // this diff catches them.
  scenarios::EvalOptions uncached = smallBatch();
  uncached.scenarioCount = 25;
  uncached.cacheEnabled = false;
  uncached.threads = 1;
  const std::string reference = scenarios::runEval(uncached).toJson();

  scenarios::EvalOptions cached = uncached;
  cached.cacheEnabled = true;
  for (int threads : {1, 3, 8}) {
    cached.threads = threads;
    EXPECT_EQ(scenarios::runEval(cached).toJson(), reference)
        << "cached threads=" << threads;
  }
}

TEST(EvalCacheDifferential, CrossModeMatchesAcrossExecutorsAndCache) {
  // The full differential matrix in cross mode: {cache on, off} x
  // {barrier, graph} x {1, 8 threads} against one uncached sequential
  // barrier reference.
  scenarios::EvalOptions reference = smallBatch();
  reference.scenarioCount = 4;
  reference.sweepMode = scenarios::SweepMode::Cross;
  reference.cacheEnabled = false;
  reference.executor = scenarios::EvalExecutor::Barrier;
  reference.threads = 1;
  const std::string oracle = scenarios::runEval(reference).toJson();

  for (const bool cacheEnabled : {false, true}) {
    for (const scenarios::EvalExecutor executor :
         {scenarios::EvalExecutor::Barrier, scenarios::EvalExecutor::Graph}) {
      for (const int threads : {1, 8}) {
        scenarios::EvalOptions options = reference;
        options.cacheEnabled = cacheEnabled;
        options.executor = executor;
        options.threads = threads;
        EXPECT_EQ(scenarios::runEval(options).toJson(), oracle)
            << "cache=" << cacheEnabled << " executor="
            << (executor == scenarios::EvalExecutor::Barrier ? "barrier"
                                                             : "graph")
            << " threads=" << threads;
      }
    }
  }
}

TEST(EvalCacheDifferential, SharedCacheRerunIsByteIdenticalAndAllHits) {
  // The incremental re-sweep pattern: a second batch against an already
  // populated external cache recomputes no schedules and still renders
  // the identical report.
  scenarios::EvalOptions options = smallBatch();
  options.scenarioCount = 4;
  options.threads = 8;
  options.cache = std::make_shared<core::ToolchainCache>();
  const std::string first = scenarios::runEval(options).toJson();
  const core::ToolchainCacheStats cold = options.cache->stats();
  const std::string second = scenarios::runEval(options).toJson();
  const core::ToolchainCacheStats warm = options.cache->stats();
  EXPECT_EQ(first, second);
  EXPECT_EQ(cold.schedules.misses, warm.schedules.misses);
  EXPECT_EQ(cold.transforms.misses, warm.transforms.misses);
  EXPECT_GT(warm.schedules.hits, cold.schedules.hits);
}

TEST(EvalDiskCacheDifferential, DiskWarmRerunMatchesCacheOffByteForByte) {
  // The cross-process disk-tier oracle, in-process: every runEval call
  // with a fresh (default) cache over the same --cache-dir models a
  // fresh process — only the directory is shared. Cold populate, then
  // warm reruns across both executors and thread counts, all compared
  // byte for byte against an uncached reference.
  scenarios::EvalOptions reference = smallBatch();
  reference.scenarioCount = 3;
  reference.sweepMode = scenarios::SweepMode::Cross;
  reference.cacheEnabled = false;
  reference.executor = scenarios::EvalExecutor::Barrier;
  reference.threads = 1;
  const std::string oracle = scenarios::runEval(reference).toJson();

  TempCacheDir dir("diskwarm");
  scenarios::EvalOptions cold = reference;
  cold.cacheEnabled = true;
  cold.cacheDir = dir.path;
  cold.executor = scenarios::EvalExecutor::Graph;
  cold.threads = 8;
  const scenarios::EvalReport coldReport = scenarios::runEval(cold);
  EXPECT_EQ(coldReport.toJson(), oracle);
  ASSERT_TRUE(coldReport.cacheStats.has_value());
  ASSERT_TRUE(coldReport.cacheStats->disk.has_value());
  EXPECT_GT(coldReport.cacheStats->disk->stores, 0u);
  EXPECT_EQ(coldReport.cacheStats->disk->rejects, 0u);

  for (const scenarios::EvalExecutor executor :
       {scenarios::EvalExecutor::Barrier, scenarios::EvalExecutor::Graph}) {
    for (const int threads : {1, 8}) {
      scenarios::EvalOptions warm = cold;
      warm.executor = executor;
      warm.threads = threads;
      const scenarios::EvalReport report = scenarios::runEval(warm);
      EXPECT_EQ(report.toJson(), oracle)
          << "warm executor="
          << (executor == scenarios::EvalExecutor::Barrier ? "barrier"
                                                           : "graph")
          << " threads=" << threads;
      ASSERT_TRUE(report.cacheStats->disk.has_value());
      EXPECT_GT(report.cacheStats->disk->hits, 0u);
      EXPECT_EQ(report.cacheStats->disk->rejects, 0u);
    }
  }
}

TEST(EvalDiskCacheDifferential, ConcurrentWritersSharingOneDirectoryAgree) {
  // Two cold batches racing into ONE cache directory (the two-evals-one-
  // dir scenario of support/disk_cache.h): rename publication means both
  // must still render the uncached reference byte for byte, with zero
  // rejects — a torn record would show up as either.
  scenarios::EvalOptions reference = smallBatch();
  reference.scenarioCount = 4;
  reference.cacheEnabled = false;
  reference.threads = 1;
  const std::string oracle = scenarios::runEval(reference).toJson();

  TempCacheDir dir("diskrace");
  scenarios::EvalOptions racing = reference;
  racing.cacheEnabled = true;
  racing.cacheDir = dir.path;
  racing.threads = 4;

  scenarios::EvalReport reportA, reportB;
  std::thread ta([&] { reportA = scenarios::runEval(racing); });
  std::thread tb([&] { reportB = scenarios::runEval(racing); });
  ta.join();
  tb.join();
  EXPECT_EQ(reportA.toJson(), oracle);
  EXPECT_EQ(reportB.toJson(), oracle);
  ASSERT_TRUE(reportA.cacheStats->disk.has_value());
  ASSERT_TRUE(reportB.cacheStats->disk.has_value());
  EXPECT_EQ(reportA.cacheStats->disk->rejects, 0u);
  EXPECT_EQ(reportB.cacheStats->disk->rejects, 0u);
}

TEST(EvalCrossMode, FullMatrixScenarioMajorAndModuloDefault) {
  scenarios::EvalOptions options = smallBatch();
  options.scenarioCount = 3;
  options.policies = {"heft"};
  const std::size_t cases =
      scenarios::buildPlatformSweep(options.sweep).size();

  // Modulo (the default): one cell per scenario, case i % caseCount.
  const scenarios::EvalReport modulo = scenarios::runEval(options);
  EXPECT_EQ(modulo.sweepMode, scenarios::SweepMode::Modulo);
  EXPECT_EQ(modulo.scenarioCount, 3u);
  EXPECT_EQ(modulo.platformCases, cases);
  ASSERT_EQ(modulo.scenarios.size(), 3u);

  // Cross: every scenario on every case, rows scenario-major.
  options.sweepMode = scenarios::SweepMode::Cross;
  const scenarios::EvalReport cross = scenarios::runEval(options);
  EXPECT_EQ(cross.sweepMode, scenarios::SweepMode::Cross);
  ASSERT_EQ(cross.scenarios.size(), 3u * cases);
  const std::vector<scenarios::PlatformCase> sweep =
      scenarios::buildPlatformSweep(options.sweep);
  for (std::size_t cell = 0; cell < cross.scenarios.size(); ++cell) {
    const scenarios::ScenarioResult& row = cross.scenarios[cell];
    EXPECT_EQ(row.scenario, modulo.scenarios[cell / cases].scenario);
    EXPECT_EQ(row.platformCase, sweep[cell % cases].name);
  }
  // Each modulo cell appears verbatim inside the cross matrix at
  // (scenario, moduloSweepCase(scenario)).
  for (std::size_t s = 0; s < 3u; ++s) {
    const std::size_t at =
        s * cases + scenarios::moduloSweepCase(s, cases);
    EXPECT_EQ(cross.scenarios[at].platformCase,
              modulo.scenarios[s].platformCase);
    ASSERT_FALSE(cross.scenarios[at].outcomes.empty());
    EXPECT_EQ(cross.scenarios[at].outcomes.front().bound,
              modulo.scenarios[s].outcomes.front().bound);
  }
}

TEST(EvalCacheStats, RenderedOnlyWithTimingsAndWhenEnabled) {
  scenarios::EvalOptions options = smallBatch();
  options.scenarioCount = 2;
  options.policies = {"heft"};
  const scenarios::EvalReport cached = scenarios::runEval(options);
  ASSERT_TRUE(cached.cacheStats.has_value());
  // The counters exist but stay out of the canonical report: the
  // hit/wait split depends on thread timing.
  EXPECT_EQ(cached.toJson(false).find("cache_stats"), std::string::npos);
  EXPECT_NE(cached.toJson(true).find("cache_stats"), std::string::npos);

  options.cacheEnabled = false;
  const scenarios::EvalReport uncached = scenarios::runEval(options);
  EXPECT_FALSE(uncached.cacheStats.has_value());
  EXPECT_EQ(uncached.toJson(true).find("cache_stats"), std::string::npos);
}

TEST(EvalPolicyMatrix, EveryRegisteredPolicySchedulesEveryScenario) {
  // The smoke check runs under both executors: the invariants are
  // executor-independent, and a structural bug in either path (a dropped
  // unit, a missed stage) would surface here before the byte diff does.
  for (const scenarios::EvalExecutor executor :
       {scenarios::EvalExecutor::Barrier, scenarios::EvalExecutor::Graph}) {
    scenarios::EvalOptions options = smallBatch();
    options.scenarioCount = 6;
    options.executor = executor;
    const char* label =
        executor == scenarios::EvalExecutor::Barrier ? "barrier" : "graph";
    const scenarios::EvalReport report = scenarios::runEval(options);

    // All registered policies took part.
    EXPECT_EQ(report.policies, sched::registeredPolicyNames());
    ASSERT_EQ(report.scenarios.size(), 6u);
    for (const scenarios::ScenarioResult& row : report.scenarios) {
      ASSERT_EQ(row.outcomes.size(), report.policies.size());
      adl::Cycles bestBound = 0;
      std::string bestPolicy;
      for (const scenarios::PolicyOutcome& outcome : row.outcomes) {
        // Scheduled for real: tasks placed, a positive bound, and the
        // simulator stayed within it.
        EXPECT_GT(outcome.tasks, 0)
            << label << " " << row.scenario << "/" << outcome.policy;
        EXPECT_GT(outcome.bound, 0)
            << label << " " << row.scenario << "/" << outcome.policy;
        EXPECT_TRUE(outcome.simSafe)
            << label << " " << row.scenario << "/" << outcome.policy;
        // The schedule label must belong to the requested policy...
        EXPECT_EQ(outcome.scheduleLabel.rfind(outcome.policy, 0), 0u)
            << label << " " << row.scenario << ": asked for "
            << outcome.policy << ", got " << outcome.scheduleLabel;
        // ...and the HEFT fallback may fire only where it is *expected*:
        // graphs beyond the exact search's task cap.
        if (outcome.scheduleLabel.find("fallback") != std::string::npos) {
          EXPECT_FALSE(sched::bnbExactSearchFeasible(
              static_cast<std::size_t>(outcome.tasks),
              options.toolchain.sched))
              << label << " " << row.scenario << ": fell back at "
              << outcome.tasks << " tasks, within the exact-search cap";
        }
        if (bestPolicy.empty() || outcome.bound < bestBound) {
          bestPolicy = outcome.policy;
          bestBound = outcome.bound;
        }
      }
      EXPECT_EQ(row.winner, bestPolicy) << label << " " << row.scenario;
    }
    EXPECT_TRUE(report.allSimSafe) << label;
  }
}

TEST(EvalReportJson, ShapeAndTimingsFlag) {
  scenarios::EvalOptions options = smallBatch();
  options.scenarioCount = 2;
  options.policies = {"heft", "annealed"};
  const scenarios::EvalReport report = scenarios::runEval(options);

  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"bench\":\"argo_eval\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":7"), std::string::npos);
  // One row per (scenario, policy) unit.
  std::size_t rows = 0;
  for (std::size_t at = json.find("{\"scenario\":");
       at != std::string::npos; at = json.find("{\"scenario\":", at + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 4u);
  // Wall-clock fields only appear on request — they are the one part of
  // the report that legitimately varies run to run.
  EXPECT_EQ(json.find("wall_ms"), std::string::npos);
  EXPECT_NE(report.toJson(true).find("wall_ms"), std::string::npos);
  // Exactly one winner per scenario.
  std::size_t winners = 0;
  for (std::size_t at = json.find("\"winner\":true"); at != std::string::npos;
       at = json.find("\"winner\":true", at + 1)) {
    ++winners;
  }
  EXPECT_EQ(winners, 2u);
}

TEST(EvalOptionsValidation, UnknownPolicyAndBadCountsThrow) {
  scenarios::EvalOptions unknown = smallBatch();
  unknown.policies = {"does_not_exist"};
  try {
    (void)scenarios::runEval(unknown);
    FAIL() << "expected ToolchainError";
  } catch (const support::ToolchainError& error) {
    // The error names the registered policies, like the CLI requires.
    EXPECT_NE(std::string(error.what()).find("heft"), std::string::npos);
  }

  scenarios::EvalOptions empty = smallBatch();
  empty.scenarioCount = 0;
  EXPECT_THROW((void)scenarios::runEval(empty), support::ToolchainError);
  scenarios::EvalOptions negativeTrials = smallBatch();
  negativeTrials.simTrials = -1;
  EXPECT_THROW((void)scenarios::runEval(negativeTrials),
               support::ToolchainError);
}

TEST(EvalSimTrials, ZeroSkipsTheSimulatorCheck) {
  scenarios::EvalOptions options = smallBatch();
  options.scenarioCount = 1;
  options.simTrials = 0;
  options.policies = {"heft"};
  const scenarios::EvalReport report = scenarios::runEval(options);
  const scenarios::PolicyOutcome& outcome =
      report.scenarios.front().outcomes.front();
  EXPECT_EQ(outcome.observed, 0);
  EXPECT_EQ(outcome.tightness(), 0.0);
  EXPECT_TRUE(outcome.simSafe);
  EXPECT_TRUE(report.allSimSafe);
}

}  // namespace
}  // namespace argo
