// Unit tests for the Scilab-subset front end: lexing, parsing, semantics,
// 1-based indexing, precedence, and error reporting.
#include <gtest/gtest.h>

#include <cmath>

#include "model/blocks.h"
#include "model/diagram.h"
#include "model/scilab.h"
#include "support/diagnostics.h"

namespace argo::model {
namespace {

using ir::ScalarKind;
using ir::Type;
using scilab::PortSpec;
using support::ToolchainError;

/// Compiles a one-in/one-out Scilab block and evaluates it.
double runScalarScript(const std::string& source, double input) {
  Diagram d("t");
  const BlockId in = d.add<InputBlock>("u", Type::float64());
  const BlockId blk = d.add<ScilabBlock>(
      "s", source, std::vector<PortSpec>{{"u", Type::float64()}},
      std::vector<PortSpec>{{"y", Type::float64()}});
  const BlockId out = d.add<OutputBlock>("yout");
  d.connect(in, blk);
  d.connect(blk, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  env["u"] = ir::Value::scalarFloat(input);
  ir::Evaluator(*model.fn).run(env);
  return env.at("yout").getFloat();
}

TEST(Scilab, SimpleAssignment) {
  EXPECT_DOUBLE_EQ(runScalarScript("y = u * 2.0 + 1.0\n", 3.0), 7.0);
}

TEST(Scilab, SemicolonSeparators) {
  EXPECT_DOUBLE_EQ(runScalarScript("t = u + 1.0; y = t * t\n", 2.0), 9.0);
}

TEST(Scilab, CommentsIgnored) {
  EXPECT_DOUBLE_EQ(
      runScalarScript("// doubles the input\ny = u * 2.0 // done\n", 2.0),
      4.0);
}

TEST(Scilab, OperatorPrecedence) {
  EXPECT_DOUBLE_EQ(runScalarScript("y = 2.0 + 3.0 * 4.0\n", 0.0), 14.0);
  EXPECT_DOUBLE_EQ(runScalarScript("y = (2.0 + 3.0) * 4.0\n", 0.0), 20.0);
  EXPECT_DOUBLE_EQ(runScalarScript("y = 10.0 - 4.0 - 3.0\n", 0.0), 3.0);
}

TEST(Scilab, PowerBindsTighterThanUnaryMinus) {
  // Scilab semantics: -x^2 == -(x^2).
  EXPECT_DOUBLE_EQ(runScalarScript("y = -u^2\n", 3.0), -9.0);
  EXPECT_DOUBLE_EQ(runScalarScript("y = exp(-u^2)\n", 2.0), std::exp(-4.0));
}

TEST(Scilab, PowerRightAssociativeAndGeneral) {
  EXPECT_DOUBLE_EQ(runScalarScript("y = 2.0^3.0\n", 0.0), 8.0);
  EXPECT_NEAR(runScalarScript("y = u^0.5\n", 16.0), 4.0, 1e-12);
}

TEST(Scilab, ComparisonAndLogic) {
  EXPECT_DOUBLE_EQ(
      runScalarScript("y = 0.0\nif u > 1.0 & u < 3.0 then y = 1.0 end\n", 2.0),
      1.0);
  EXPECT_DOUBLE_EQ(
      runScalarScript("y = 0.0\nif u < 1.0 | u > 3.0 then y = 1.0 end\n", 2.0),
      0.0);
  EXPECT_DOUBLE_EQ(
      runScalarScript("y = 0.0\nif ~(u == 2.0) then y = 1.0 end\n", 2.0), 0.0);
  EXPECT_DOUBLE_EQ(
      runScalarScript("y = 0.0\nif u ~= 2.0 then y = 1.0 end\n", 5.0), 1.0);
}

TEST(Scilab, IfElse) {
  const std::string src =
      "if u >= 0.0 then\n  y = 1.0\nelse\n  y = -1.0\nend\n";
  EXPECT_DOUBLE_EQ(runScalarScript(src, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(runScalarScript(src, -5.0), -1.0);
}

TEST(Scilab, ForLoopInclusiveRange) {
  // sum of 1..10 = 55.
  EXPECT_DOUBLE_EQ(
      runScalarScript("y = 0.0\nfor i = 1:10\n  y = y + float(i)\nend\n", 0.0),
      55.0);
}

TEST(Scilab, ForLoopConstantExprBounds) {
  EXPECT_DOUBLE_EQ(
      runScalarScript("y = 0.0\nfor i = 1:2*3\n  y = y + 1.0\nend\n", 0.0),
      6.0);
}

TEST(Scilab, NonConstantLoopBoundRejected) {
  EXPECT_THROW(runScalarScript("for i = 1:u\n  y = 1.0\nend\n", 3.0),
               ToolchainError);
}

TEST(Scilab, LocalArraysAndOneBasedIndexing) {
  const std::string src =
      "local buf(4)\n"
      "for i = 1:4\n  buf(i) = float(i) * 10.0\nend\n"
      "y = buf(1) + buf(4)\n";
  EXPECT_DOUBLE_EQ(runScalarScript(src, 0.0), 50.0);
}

TEST(Scilab, TwoDimensionalLocals) {
  const std::string src =
      "local m(2,3)\n"
      "for r = 1:2\n  for c = 1:3\n    m(r,c) = float(r*10 + c)\n  end\nend\n"
      "y = m(2,3)\n";
  EXPECT_DOUBLE_EQ(runScalarScript(src, 0.0), 23.0);
}

TEST(Scilab, ImplicitScalarLocals) {
  EXPECT_DOUBLE_EQ(runScalarScript("t = u + 1.0\ny = t * 2.0\n", 2.0), 6.0);
}

TEST(Scilab, MathIntrinsics) {
  EXPECT_NEAR(runScalarScript("y = sin(u)\n", 0.5), std::sin(0.5), 1e-12);
  EXPECT_NEAR(runScalarScript("y = atan2(u, 2.0)\n", 1.0),
              std::atan2(1.0, 2.0), 1e-12);
  EXPECT_NEAR(runScalarScript("y = hypot(u, 4.0)\n", 3.0), 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(runScalarScript("y = min(u, 2.0)\n", 5.0), 2.0);
  EXPECT_DOUBLE_EQ(runScalarScript("y = max(u, 2.0)\n", 5.0), 5.0);
  EXPECT_DOUBLE_EQ(runScalarScript("y = abs(u)\n", -3.0), 3.0);
  EXPECT_DOUBLE_EQ(runScalarScript("y = floor(u)\n", 2.9), 2.0);
  EXPECT_NEAR(runScalarScript("y = modulo(u, 3.0)\n", 7.0), 1.0, 1e-12);
}

TEST(Scilab, PiConstant) {
  EXPECT_NEAR(runScalarScript("y = cos(pi)\n", 0.0), -1.0, 1e-12);
}

TEST(Scilab, ScientificNotation) {
  EXPECT_DOUBLE_EQ(runScalarScript("y = 1.5e2 + u\n", 0.0), 150.0);
  EXPECT_DOUBLE_EQ(runScalarScript("y = 2E-2\n", 0.0), 0.02);
}

TEST(Scilab, ErrorsCarryLineNumbers) {
  try {
    (void)scilab::parseScript("y = 1.0\nz = $bad\n",
                              {{"y", Type::float64()}});
    FAIL() << "expected ToolchainError";
  } catch (const ToolchainError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Scilab, UnknownVariableRejected) {
  EXPECT_THROW(
      (void)scilab::parseScript("y = nope\n", {{"y", Type::float64()}}),
      ToolchainError);
}

TEST(Scilab, IndexedWriteToUndeclaredRejected) {
  EXPECT_THROW(
      (void)scilab::parseScript("arr(3) = 1.0\n", {{"y", Type::float64()}}),
      ToolchainError);
}

TEST(Scilab, DuplicateLocalRejected) {
  EXPECT_THROW((void)scilab::parseScript("local t\nlocal t\n",
                                         {{"y", Type::float64()}}),
               ToolchainError);
}

TEST(Scilab, LocalShadowingPortRejected) {
  EXPECT_THROW(
      (void)scilab::parseScript("local y\n", {{"y", Type::float64()}}),
      ToolchainError);
}

TEST(Scilab, WrongIntrinsicArityRejected) {
  EXPECT_THROW(
      (void)scilab::parseScript("y = sin(1.0, 2.0)\n",
                                {{"y", Type::float64()}}),
      ToolchainError);
  EXPECT_THROW(
      (void)scilab::parseScript("y = atan2(1.0)\n", {{"y", Type::float64()}}),
      ToolchainError);
}

TEST(Scilab, MissingEndRejected) {
  EXPECT_THROW(
      (void)scilab::parseScript("for i = 1:3\n  y = 1.0\n",
                                {{"y", Type::float64()}}),
      ToolchainError);
}

TEST(ScilabBlock, ArrayPorts) {
  Diagram d("t");
  const Type vecT = Type::array(ScalarKind::Float64, {4});
  const BlockId in = d.add<InputBlock>("u", vecT);
  const BlockId blk = d.add<ScilabBlock>(
      "rev",
      "for i = 1:4\n  y(i) = u(5 - i)\nend\n",
      std::vector<PortSpec>{{"u", vecT}},
      std::vector<PortSpec>{{"y", vecT}});
  const BlockId out = d.add<OutputBlock>("yout");
  d.connect(in, blk);
  d.connect(blk, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  env["u"] = ir::Value::floats(vecT, {1.0, 2.0, 3.0, 4.0});
  ir::Evaluator(*model.fn).run(env);
  EXPECT_DOUBLE_EQ(env.at("yout").getFloat(0), 4.0);
  EXPECT_DOUBLE_EQ(env.at("yout").getFloat(3), 1.0);
}

TEST(ScilabBlock, PortTypeMismatchRejected) {
  Diagram d("t");
  const BlockId in =
      d.add<InputBlock>("u", Type::array(ScalarKind::Float64, {3}));
  const BlockId blk = d.add<ScilabBlock>(
      "s", "y = u\n",
      std::vector<PortSpec>{{"u", Type::float64()}},  // expects scalar
      std::vector<PortSpec>{{"y", Type::float64()}});
  const BlockId out = d.add<OutputBlock>("yout");
  d.connect(in, blk);
  d.connect(blk, out);
  EXPECT_THROW((void)d.compile(), ToolchainError);
}

TEST(ScilabBlock, TwoInstancesDoNotCollide) {
  // The same script instantiated twice must get independent locals.
  Diagram d("t");
  const BlockId in = d.add<InputBlock>("u", Type::float64());
  const std::string src = "t = u + 1.0\ny = t * 2.0\n";
  const std::vector<PortSpec> ins = {{"u", Type::float64()}};
  const std::vector<PortSpec> outs = {{"y", Type::float64()}};
  const BlockId b1 = d.add<ScilabBlock>("stage", src, ins, outs);
  const BlockId b2 = d.add<ScilabBlock>("stage", src, ins, outs);
  const BlockId out = d.add<OutputBlock>("yout");
  d.connect(in, b1);
  d.connect(b1, b2);
  d.connect(b2, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  env["u"] = ir::Value::scalarFloat(1.0);
  ir::Evaluator(*model.fn).run(env);
  // stage(stage(1)) = ((1+1)*2 + 1) * 2 = 10.
  EXPECT_DOUBLE_EQ(env.at("yout").getFloat(), 10.0);
}

TEST(ScilabBlock, ParseFailureAtConstruction) {
  EXPECT_THROW(ScilabBlock("bad", "y = (",
                           std::vector<PortSpec>{},
                           std::vector<PortSpec>{{"y", Type::float64()}}),
               ToolchainError);
}

}  // namespace
}  // namespace argo::model
