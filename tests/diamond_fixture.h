// The shared "diamond" scheduling fixture: source -> {left, right} -> sink
// over shared arrays. Enough structure for distinct per-tile timings, real
// dependences and a non-trivial search tree, and — expanded at different
// chunks/loop — graph sizes from 4 tasks to beyond the branch-and-bound
// mask width. Used by the sched/ test suites and by bench_parallel_bnb, so
// the graph the benches time is pinned to the one the determinism tests
// prove things about.
#pragma once

#include <memory>

#include "ir/builder.h"
#include "ir/function.h"

namespace argo::test {

inline std::unique_ptr<ir::Function> makeDiamondFn(int width = 16) {
  using ir::ScalarKind;
  using ir::Type;
  using ir::VarRole;
  auto fn = std::make_unique<ir::Function>("diamond");
  fn->declare("u", Type::array(ScalarKind::Float64, {width}), VarRole::Input);
  fn->declare("a", Type::array(ScalarKind::Float64, {width}), VarRole::Temp);
  fn->declare("l", Type::array(ScalarKind::Float64, {width}), VarRole::Temp);
  fn->declare("r", Type::array(ScalarKind::Float64, {width}), VarRole::Temp);
  fn->declare("y", Type::array(ScalarKind::Float64, {width}), VarRole::Output);
  auto loop = [&](const char* out, const char* in, double k, const char* var) {
    auto body = ir::block();
    body->append(
        ir::assign(ir::ref(out, ir::exprVec(ir::var(var))),
                   ir::mul(ir::ref(in, ir::exprVec(ir::var(var))), ir::flt(k))));
    return ir::forLoop(var, 0, width, std::move(body));
  };
  fn->body().append(loop("a", "u", 2.0, "i0"));
  fn->body().append(loop("l", "a", 3.0, "i1"));
  fn->body().append(loop("r", "a", 5.0, "i2"));
  auto body = ir::block();
  body->append(ir::assign(
      ir::ref("y", ir::exprVec(ir::var("i3"))),
      ir::add(ir::ref("l", ir::exprVec(ir::var("i3"))),
              ir::ref("r", ir::exprVec(ir::var("i3"))))));
  fn->body().append(ir::forLoop("i3", 0, width, std::move(body)));
  return fn;
}

}  // namespace argo::test
