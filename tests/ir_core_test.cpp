// Unit tests for IR types, expressions, statements, functions, printer.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/function.h"
#include "ir/printer.h"
#include "support/diagnostics.h"

namespace argo::ir {
namespace {

TEST(Type, ScalarBasics) {
  const Type t = Type::float64();
  EXPECT_TRUE(t.isScalar());
  EXPECT_EQ(t.rank(), 0);
  EXPECT_EQ(t.elementCount(), 1);
  EXPECT_EQ(t.byteSize(), 8);
  EXPECT_EQ(t.str(), "f64");
}

TEST(Type, ArrayBasics) {
  const Type t = Type::array(ScalarKind::Int32, {4, 8});
  EXPECT_FALSE(t.isScalar());
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.elementCount(), 32);
  EXPECT_EQ(t.byteSize(), 128);
  EXPECT_EQ(t.str(), "i32[4][8]");
}

TEST(Type, Equality) {
  EXPECT_EQ(Type::float64(), Type::float64());
  EXPECT_NE(Type::float64(), Type::int32());
  EXPECT_NE(Type::array(ScalarKind::Float64, {4}),
            Type::array(ScalarKind::Float64, {5}));
}

TEST(Type, ScalarByteSizes) {
  EXPECT_EQ(scalarByteSize(ScalarKind::Bool), 1);
  EXPECT_EQ(scalarByteSize(ScalarKind::Int32), 4);
  EXPECT_EQ(scalarByteSize(ScalarKind::Float64), 8);
}

TEST(Expr, LiteralValues) {
  EXPECT_EQ(cast<IntLit>(*lit(42)).value(), 42);
  EXPECT_DOUBLE_EQ(cast<FloatLit>(*flt(2.5)).value(), 2.5);
  EXPECT_TRUE(cast<BoolLit>(*boolean(true)).value());
}

TEST(Expr, IsaDynCast) {
  const ExprPtr e = lit(1);
  EXPECT_TRUE(isa<IntLit>(*e));
  EXPECT_FALSE(isa<FloatLit>(*e));
  EXPECT_NE(dynCast<IntLit>(*e), nullptr);
  EXPECT_EQ(dynCast<FloatLit>(*e), nullptr);
}

TEST(Expr, CloneIsDeep) {
  const ExprPtr original =
      add(mul(var("a"), flt(2.0)), ref("b", exprVec(var("i"))));
  const ExprPtr copy = original->clone();
  EXPECT_NE(original.get(), copy.get());
  EXPECT_EQ(toString(*original), toString(*copy));
}

TEST(Expr, BinOpNames) {
  EXPECT_STREQ(binOpName(BinOpKind::Add), "+");
  EXPECT_STREQ(binOpName(BinOpKind::Le), "<=");
  EXPECT_STREQ(binOpName(BinOpKind::Min), "min");
}

TEST(Expr, Classification) {
  EXPECT_TRUE(isComparison(BinOpKind::Lt));
  EXPECT_FALSE(isComparison(BinOpKind::Add));
  EXPECT_TRUE(isLogical(BinOpKind::And));
  EXPECT_FALSE(isLogical(BinOpKind::Eq));
}

TEST(Stmt, ForTripCount) {
  const StmtPtr s = forLoop("i", 0, 10, block());
  EXPECT_EQ(cast<For>(*s).tripCount(), 10);
  const StmtPtr strided = forLoop("i", 0, 10, block(), 3);
  EXPECT_EQ(cast<For>(*strided).tripCount(), 4);  // 0,3,6,9
  const StmtPtr empty = forLoop("i", 5, 5, block());
  EXPECT_EQ(cast<For>(*empty).tripCount(), 0);
}

TEST(Stmt, CloneKeepsLabel) {
  StmtPtr s = assign(ref("x"), lit(1));
  s->label = "taskA";
  const StmtPtr copy = s->clone();
  EXPECT_EQ(copy->label, "taskA");
}

TEST(Stmt, CloneLoopIsDeep) {
  auto body = block();
  body->append(assign(ref("a", exprVec(var("i"))), var("i")));
  StmtPtr loop = forLoop("i", 0, 4, std::move(body));
  const StmtPtr copy = loop->clone();
  // Mutating the copy's bounds must not affect the original.
  cast<For>(*copy).setBounds(0, 2);
  EXPECT_EQ(cast<For>(*loop).tripCount(), 4);
  EXPECT_EQ(cast<For>(*copy).tripCount(), 2);
}

TEST(Function, DeclareAndLookup) {
  Function fn("f");
  fn.declare("x", Type::float64(), VarRole::Input);
  fn.declare("y", Type::float64(), VarRole::Output);
  EXPECT_NE(fn.find("x"), nullptr);
  EXPECT_EQ(fn.find("z"), nullptr);
  EXPECT_EQ(fn.lookup("y").role, VarRole::Output);
  EXPECT_THROW((void)fn.lookup("z"), support::ToolchainError);
}

TEST(Function, DuplicateDeclarationThrows) {
  Function fn("f");
  fn.declare("x", Type::float64());
  EXPECT_THROW(fn.declare("x", Type::int32()), support::ToolchainError);
}

TEST(Function, StorageBytes) {
  Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {10}), VarRole::Temp,
             Storage::Shared);
  fn.declare("b", Type::float64(), VarRole::Temp, Storage::Scratchpad);
  EXPECT_EQ(fn.storageBytes(Storage::Shared), 80);
  EXPECT_EQ(fn.storageBytes(Storage::Scratchpad), 8);
  EXPECT_EQ(fn.storageBytes(Storage::Local), 0);
}

TEST(Function, CloneIsIndependent) {
  Function fn("f");
  fn.declare("x", Type::float64(), VarRole::Output);
  fn.body().append(assign(ref("x"), flt(1.0)));
  const auto copy = fn.clone();
  EXPECT_EQ(copy->name(), "f");
  EXPECT_EQ(copy->body().size(), 1u);
  fn.body().append(assign(ref("x"), flt(2.0)));
  EXPECT_EQ(copy->body().size(), 1u);
}

TEST(Validate, AcceptsWellFormed) {
  Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Input);
  fn.declare("y", Type::float64(), VarRole::Output);
  auto body = block();
  body->append(assign(ref("y"), lit(0)));
  body->append(assign(ref("y"), add(var("y"), ref("a", exprVec(var("i"))))));
  fn.body().append(forLoop("i", 0, 8, std::move(body)));
  // The first assign is outside the loop in well-formed code; rebuild:
  Function ok("ok");
  ok.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Input);
  ok.declare("y", Type::float64(), VarRole::Output);
  ok.body().append(assign(ref("y"), lit(0)));
  auto loopBody = block();
  loopBody->append(
      assign(ref("y"), add(var("y"), ref("a", exprVec(var("i"))))));
  ok.body().append(forLoop("i", 0, 8, std::move(loopBody)));
  EXPECT_TRUE(validate(ok).empty());
}

TEST(Validate, RejectsUndeclared) {
  Function fn("f");
  fn.body().append(assign(ref("nope"), lit(1)));
  const auto problems = validate(fn);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("undeclared"), std::string::npos);
}

TEST(Validate, RejectsRankMismatch) {
  Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {4, 4}), VarRole::Temp);
  fn.body().append(assign(ref("a", exprVec(lit(0))), lit(1)));
  EXPECT_FALSE(validate(fn).empty());
}

TEST(Validate, RejectsWholeArrayRef) {
  Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {4}), VarRole::Temp);
  fn.declare("y", Type::float64(), VarRole::Temp);
  fn.body().append(assign(ref("y"), var("a")));
  EXPECT_FALSE(validate(fn).empty());
}

TEST(Validate, RejectsWriteToInputAndConst) {
  Function fn("f");
  fn.declare("in", Type::float64(), VarRole::Input);
  fn.declare("k", Type::float64(), VarRole::Const);
  fn.body().append(assign(ref("in"), lit(1)));
  fn.body().append(assign(ref("k"), lit(1)));
  EXPECT_EQ(validate(fn).size(), 2u);
}

TEST(Validate, RejectsLoopVarShadowing) {
  Function fn("f");
  fn.declare("i", Type::int32(), VarRole::Temp);
  fn.body().append(forLoop("i", 0, 3, block()));
  EXPECT_FALSE(validate(fn).empty());
}

TEST(Validate, RejectsNestedLoopVarReuse) {
  Function fn("f");
  auto inner = block();
  inner->append(forLoop("i", 0, 2, block()));
  fn.body().append(forLoop("i", 0, 3, std::move(inner)));
  EXPECT_FALSE(validate(fn).empty());
}

TEST(Validate, RejectsAssignToLoopVar) {
  Function fn("f");
  auto body = block();
  body->append(assign(ref("i"), lit(0)));
  fn.body().append(forLoop("i", 0, 3, std::move(body)));
  EXPECT_FALSE(validate(fn).empty());
}

TEST(Printer, RendersExpressionS) {
  EXPECT_EQ(toString(*add(var("a"), lit(1))), "(a + 1)");
  EXPECT_EQ(toString(*bin(BinOpKind::Min, var("a"), var("b"))), "min(a, b)");
  EXPECT_EQ(toString(*select(lt(var("a"), lit(0)), flt(1.0), flt(2.0))),
            "((a < 0) ? 1 : 2)");
  EXPECT_EQ(toString(*ref("m", exprVec(var("i"), lit(3)))), "m[i][3]");
}

TEST(Printer, RendersLoopAndIf) {
  auto body = block();
  body->append(assign(ref("a", exprVec(var("i"))), var("i")));
  const StmtPtr loop = forLoop("i", 0, 4, std::move(body));
  const std::string text = toString(*loop);
  EXPECT_NE(text.find("for (i = 0; i < 4; i++)"), std::string::npos);
  EXPECT_NE(text.find("a[i] = i;"), std::string::npos);
}

TEST(Printer, RendersFunctionHeader) {
  Function fn("demo");
  fn.declare("x", Type::float64(), VarRole::Input);
  const std::string text = toString(fn);
  EXPECT_NE(text.find("function demo"), std::string::npos);
  EXPECT_NE(text.find("in f64 x"), std::string::npos);
}

TEST(Program, AddAndFind) {
  Program program;
  program.add(std::make_unique<Function>("a"));
  program.add(std::make_unique<Function>("b"));
  EXPECT_NE(program.find("a"), nullptr);
  EXPECT_EQ(program.find("c"), nullptr);
  EXPECT_EQ(program.functions().size(), 2u);
}

}  // namespace
}  // namespace argo::ir
