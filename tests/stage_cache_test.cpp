// The content-hash caching layer: support::Hasher / support::StageCache
// (framing, counters, single-flight under oversubscription) and the
// core:: stage-key derivations (every knob a stage observes flips its
// key; knobs outside a stage's inputs — display names, thread counts —
// do not). The end-to-end suite proves a shared ToolchainCache reuses
// work across runs while staying byte-identical to the uncached path.
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adl/platform.h"
#include "core/cache.h"
#include "core/toolchain.h"
#include "diamond_fixture.h"
#include "ir/printer.h"
#include "scenarios/generator.h"
#include "support/hash.h"
#include "support/stage_cache.h"

namespace {

using namespace argo;
using support::Hasher;
using support::StageCache;
using support::StageKey;

TEST(StageCacheHasher, DeterministicAndSensitive) {
  const StageKey a = Hasher().str("alpha").i32(7).boolean(true).finish();
  const StageKey b = Hasher().str("alpha").i32(7).boolean(true).finish();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Hasher().str("alpha").i32(8).boolean(true).finish());
  EXPECT_NE(a, Hasher().str("alpha").i32(7).boolean(false).finish());
  EXPECT_NE(a, Hasher().str("alphb").i32(7).boolean(true).finish());
}

TEST(StageCacheHasher, FramingPreventsAliasing) {
  // Length-prefixed strings: "ab"+"c" must not hash like "a"+"bc".
  EXPECT_NE(Hasher().str("ab").str("c").finish(),
            Hasher().str("a").str("bc").finish());
  // Type tags: the same payload fed as different types hashes apart.
  EXPECT_NE(Hasher().u64(1).finish(), Hasher().i64(1).finish());
  EXPECT_NE(Hasher().i32(0).finish(), Hasher().boolean(false).finish());
}

TEST(StageCacheHasher, ChainedKeysAndText) {
  const StageKey up1 = Hasher().str("up1").finish();
  const StageKey up2 = Hasher().str("up2").finish();
  EXPECT_NE(Hasher().key(up1).finish(), Hasher().key(up2).finish());
  EXPECT_EQ(up1.text().size(), 32u);
  EXPECT_NE(up1.text(), up2.text());
}

TEST(StageCache, HitAndMissCounters) {
  StageCache<int> cache;
  const StageKey k = Hasher().str("k").finish();
  int computes = 0;
  const auto first = cache.getOrCompute(k, [&] { ++computes; return 41; });
  const auto second = cache.getOrCompute(k, [&] { ++computes; return 99; });
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(*first, 41);
  EXPECT_EQ(first.get(), second.get());  // the shared once-computed slot
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.inflightWaits, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(StageCache, FailedComputeIsRetriable) {
  StageCache<int> cache;
  const StageKey k = Hasher().str("boom").finish();
  EXPECT_THROW(
      (void)cache.getOrCompute(
          k, []() -> int { throw std::runtime_error("compute failed"); }),
      std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);  // the failed slot was erased
  const auto value = cache.getOrCompute(k, [] { return 5; });
  EXPECT_EQ(*value, 5);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(StageCache, ClearDropsSlotsButNotHandedOutValues) {
  StageCache<int> cache;
  const StageKey k = Hasher().str("k").finish();
  const auto value = cache.getOrCompute(k, [] { return 7; });
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(*value, 7);  // still alive through our shared_ptr
  const auto again = cache.getOrCompute(k, [] { return 7; });
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_NE(value.get(), again.get());
}

TEST(StageCacheSingleFlight, OversubscribedMissComputesOnce) {
  // 64 threads race one key on whatever cores the machine has; exactly
  // one may run the compute closure, everyone sees the same slot.
  constexpr int kThreads = 64;
  StageCache<int> cache;
  const StageKey k = Hasher().str("popular").finish();
  std::atomic<int> computes{0};
  std::vector<std::shared_ptr<const int>> seen(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        seen[t] = cache.getOrCompute(k, [&] {
          computes.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          return 123;
        });
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(computes.load(), 1);
  for (const auto& value : seen) {
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(value.get(), seen[0].get());
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.inflightWaits,
            static_cast<std::uint64_t>(kThreads - 1));
}

TEST(StageCacheSingleFlight, OversubscribedManyKeysStress) {
  constexpr int kThreads = 64;
  constexpr int kKeys = 16;
  constexpr int kIterations = 100;
  StageCache<std::uint64_t> cache;
  std::vector<StageKey> keys;
  std::array<std::atomic<int>, kKeys> computes{};
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back(Hasher().str("key").i32(i).finish());
  }
  std::atomic<int> wrongValues{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int it = 0; it < kIterations; ++it) {
          const int i = (t + it) % kKeys;
          const auto value = cache.getOrCompute(keys[i], [&] {
            computes[i].fetch_add(1);
            return static_cast<std::uint64_t>(1000 + i);
          });
          if (*value != static_cast<std::uint64_t>(1000 + i)) {
            wrongValues.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(wrongValues.load(), 0);
  for (int i = 0; i < kKeys; ++i) EXPECT_EQ(computes[i].load(), 1) << i;
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(stats.lookups(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
}

// ---- Key sensitivity: each knob a stage observes flips its key; knobs
// outside a stage's inputs do not. ----

adl::Platform renamed(const adl::Platform& p, const std::string& name) {
  if (p.isBus()) {
    return adl::Platform(name, p.tiles(), p.bus(), p.sharedMemBytes());
  }
  return adl::Platform(name, p.tiles(), p.noc(), p.sharedMemBytes());
}

TEST(CacheKeys, TransformsKeyObservesItsInputs) {
  const adl::Platform bus = adl::makeRecoreXentiumBus(4);
  const StageKey base = core::transformsKey("ir-a", bus, true, true);
  EXPECT_NE(base, core::transformsKey("ir-b", bus, true, true));
  EXPECT_NE(base, core::transformsKey("ir-a", bus, false, true));
  EXPECT_NE(base, core::transformsKey("ir-a", bus, true, false));
  // The SPM slice feeds the ScratchpadAllocation pass.
  EXPECT_NE(base,
            core::transformsKey("ir-a", bus.withSpmBytes(4096), true, true));
  // A different interconnect changes the uncontended shared access cost.
  EXPECT_NE(base, core::transformsKey("ir-a", adl::makeKitLeon3Inoc(2, 2),
                                      true, true));
}

TEST(CacheKeys, TransformsKeyIgnoresNamesAndUnobservedTiles) {
  const adl::Platform bus = adl::makeRecoreXentiumBus(4);
  const StageKey base = core::transformsKey("ir-a", bus, true, true);
  EXPECT_EQ(base, core::transformsKey("ir-a", renamed(bus, "other"), true,
                                      true));
  // Round-robin bus: tile 0's uncontended slice is identical on a 2-core
  // sibling, so the transforms stage must not distinguish them.
  EXPECT_EQ(base,
            core::transformsKey("ir-a", adl::makeRecoreXentiumBus(2), true,
                                true));
}

TEST(CacheKeys, SequentialWcetKeyObservesTileZeroTimingOnly) {
  const adl::Platform bus = adl::makeRecoreXentiumBus(4);
  const StageKey ir = Hasher().str("ir-a").finish();
  const StageKey base = core::sequentialWcetKey(ir, bus);
  EXPECT_NE(base, core::sequentialWcetKey(Hasher().str("ir-b").finish(), bus));
  // Different core model on tile 0 (Leon3 vs Xentium) flips the key.
  EXPECT_NE(base, core::sequentialWcetKey(ir, adl::makeKitLeon3Inoc(2, 2)));
  // Name and extra round-robin tiles are invisible to tile 0's analysis.
  EXPECT_EQ(base, core::sequentialWcetKey(ir, renamed(bus, "other")));
  EXPECT_EQ(base, core::sequentialWcetKey(ir, adl::makeRecoreXentiumBus(2)));
}

TEST(CacheKeys, ExpansionKeyObservesGranularityKnobs) {
  const StageKey ir = Hasher().str("ir-a").finish();
  const StageKey base = core::expansionKey(ir, 4, true);
  EXPECT_NE(base, core::expansionKey(ir, 2, true));
  EXPECT_NE(base, core::expansionKey(ir, 4, false));
  EXPECT_NE(base, core::expansionKey(Hasher().str("ir-b").finish(), 4, true));
}

TEST(CacheKeys, TimingsKeyObservesEveryTile) {
  const adl::Platform bus = adl::makeRecoreXentiumBus(4);
  const StageKey exp = Hasher().str("expansion").finish();
  const StageKey base = core::timingsKey(exp, bus);
  // Per-task WCETs span all tiles, so the core count matters here even
  // though it did not for the transforms stage.
  EXPECT_NE(base, core::timingsKey(exp, adl::makeRecoreXentiumBus(2)));
  // SPM *capacity* feeds only the ScratchpadAllocation transform; the
  // timing analysis prices access cycles, so capacity must not split it.
  EXPECT_EQ(base, core::timingsKey(exp, bus.withSpmBytes(1 << 20)));
  EXPECT_NE(base,
            core::timingsKey(exp,
                             adl::makeRecoreXentiumBus(4,
                                                       adl::Arbitration::Tdma)));
  EXPECT_EQ(base, core::timingsKey(exp, renamed(bus, "other")));
}

TEST(CacheKeys, ScheduleKeyObservesEveryOptionKnob) {
  const adl::Platform bus = adl::makeRecoreXentiumBus(4);
  const StageKey tim = Hasher().str("timings").finish();
  const sched::SchedOptions base;
  const auto key = [&](const sched::SchedOptions& options,
                       syswcet::InterferenceMethod method =
                           syswcet::InterferenceMethod::MhpRefined) {
    return core::scheduleKey(tim, bus, options, method);
  };
  const StageKey reference = key(base);
  sched::SchedOptions o;

  o = base; o.policy = "annealed";
  EXPECT_NE(reference, key(o));
  o = base; o.interferenceAware = false;
  EXPECT_NE(reference, key(o));
  o = base; o.coreLimit = 1;
  EXPECT_NE(reference, key(o));
  o = base; o.bnbTaskLimit = 10;
  EXPECT_NE(reference, key(o));
  o = base; o.bnbNodeBudget = 1234;
  EXPECT_NE(reference, key(o));
  o = base; o.bnbFrontierDepth = 3;
  EXPECT_NE(reference, key(o));
  o = base; o.saIterations = 99;
  EXPECT_NE(reference, key(o));
  o = base; o.saInitialTemp = 0.5;
  EXPECT_NE(reference, key(o));
  o = base; o.seed = 42;
  EXPECT_NE(reference, key(o));
  o = base; o.saRestarts = 4;
  EXPECT_NE(reference, key(o));
  EXPECT_NE(reference,
            key(base, syswcet::InterferenceMethod::AllContenders));
  EXPECT_NE(reference, core::scheduleKey(tim, adl::makeRecoreXentiumBus(2),
                                         base,
                                         syswcet::InterferenceMethod::MhpRefined));
}

TEST(CacheKeys, ScheduleKeyIgnoresExecutionKnobsAndNames) {
  const adl::Platform bus = adl::makeRecoreXentiumBus(4);
  const StageKey tim = Hasher().str("timings").finish();
  sched::SchedOptions a;
  a.parallelThreads = 1;
  sched::SchedOptions b;
  b.parallelThreads = 8;
  // parallelThreads selects how the bit-identical result is computed, not
  // what it is — it must never split the cache.
  EXPECT_EQ(core::scheduleKey(tim, bus, a,
                              syswcet::InterferenceMethod::MhpRefined),
            core::scheduleKey(tim, bus, b,
                              syswcet::InterferenceMethod::MhpRefined));
  EXPECT_EQ(core::scheduleKey(tim, bus, a,
                              syswcet::InterferenceMethod::MhpRefined),
            core::scheduleKey(tim, renamed(bus, "other"), a,
                              syswcet::InterferenceMethod::MhpRefined));
}

// ---- End to end: a shared cache reuses work and never changes bytes. ----

core::ToolchainOptions fastToolchainOptions() {
  core::ToolchainOptions options;
  options.chunkCandidates = {1, 2};
  options.sched.saIterations = 200;
  options.sched.bnbNodeBudget = 10'000;
  options.explorationThreads = 1;
  return options;
}

TEST(StageCacheToolchain, CachedRunMatchesUncachedByteForByte) {
  const scenarios::GeneratorOptions generator;
  const scenarios::Scenario scenario = scenarios::generateScenario(generator, 2);
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);

  core::ToolchainOptions options = fastToolchainOptions();
  const core::ToolchainResult uncached =
      core::Toolchain(platform, options).run(scenario.model);

  options.cache = std::make_shared<core::ToolchainCache>();
  const core::ToolchainResult cold =
      core::Toolchain(platform, options).run(scenario.model);
  const core::ToolchainResult warm =
      core::Toolchain(platform, options).run(scenario.model);

  EXPECT_EQ(uncached.reportText(false), cold.reportText(false));
  EXPECT_EQ(uncached.reportText(false), warm.reportText(false));
}

TEST(StageCacheToolchain, WarmRerunHitsEveryStage) {
  const scenarios::GeneratorOptions generator;
  const scenarios::Scenario scenario = scenarios::generateScenario(generator, 3);
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);

  core::ToolchainOptions options = fastToolchainOptions();
  options.cache = std::make_shared<core::ToolchainCache>();
  const core::Toolchain toolchain(platform, options);

  (void)toolchain.run(scenario.model);
  const core::ToolchainCacheStats afterFirst = options.cache->stats();
  (void)toolchain.run(scenario.model);
  const core::ToolchainCacheStats afterSecond = options.cache->stats();

  // The second run computes nothing new in any stage.
  EXPECT_EQ(afterFirst.transforms.misses, afterSecond.transforms.misses);
  EXPECT_EQ(afterFirst.sequentialWcet.misses,
            afterSecond.sequentialWcet.misses);
  EXPECT_EQ(afterFirst.expansion.misses, afterSecond.expansion.misses);
  EXPECT_EQ(afterFirst.timings.misses, afterSecond.timings.misses);
  EXPECT_EQ(afterFirst.schedules.misses, afterSecond.schedules.misses);
  EXPECT_GT(afterSecond.schedules.hits, afterFirst.schedules.hits);
}

// ---- Cross-process key stability ----------------------------------------
// The on-disk cache tier (support/disk_cache.h) shares records between
// processes, machines and CI runs under these keys, so they must never
// drift. These goldens pin the full derivation chain — the IR printer, the
// hasher framing, the platform canonical text, every key function — for
// the diamond fixture on the 4-core bus. An intentional change to any link
// requires re-pinning AND bumping support::kDiskCacheFormatVersion (a
// silent change would poison every shared cache directory).
TEST(CacheKeys, DiamondFixtureKeysArePinnedAcrossProcesses) {
  const std::unique_ptr<ir::Function> fn = test::makeDiamondFn();
  const adl::Platform bus = adl::makeRecoreXentiumBus(4);

  const StageKey transforms =
      core::transformsKey(ir::toString(*fn), bus, true, true);
  const StageKey expansion = core::expansionKey(transforms, 4, true);
  const StageKey timings = core::timingsKey(expansion, bus);
  const StageKey schedule =
      core::scheduleKey(timings, bus, sched::SchedOptions{},
                        syswcet::InterferenceMethod::MhpRefined);

  EXPECT_EQ(transforms.text(), "b470cb8ff2a568bb321234bcd7fce99f");
  EXPECT_EQ(expansion.text(), "2895e54d3f09391e4497aaa043b92dda");
  EXPECT_EQ(timings.text(), "8b5263d026f0e20fec945e56d0f2bafd");
  EXPECT_EQ(schedule.text(), "685867fb9e9e5b51a0dfb8b36ad7b50f");
}

TEST(StageCacheToolchain, WarmSharedStagesPrewarmsThePrefix) {
  const scenarios::GeneratorOptions generator;
  const scenarios::Scenario scenario = scenarios::generateScenario(generator, 4);
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);

  core::ToolchainOptions options = fastToolchainOptions();
  options.cache = std::make_shared<core::ToolchainCache>();
  const core::Toolchain toolchain(platform, options);

  toolchain.warmSharedStages(scenario.model);
  const core::ToolchainCacheStats warmed = options.cache->stats();
  EXPECT_GT(warmed.transforms.misses, 0u);
  EXPECT_GT(warmed.expansion.misses, 0u);
  EXPECT_GT(warmed.timings.misses, 0u);
  EXPECT_EQ(warmed.schedules.lookups(), 0u);  // scheduling is per policy

  (void)toolchain.run(scenario.model);
  const core::ToolchainCacheStats after = options.cache->stats();
  // The run reused the warmed prefix: no new prefix-stage misses.
  EXPECT_EQ(after.transforms.misses, warmed.transforms.misses);
  EXPECT_EQ(after.sequentialWcet.misses, warmed.sequentialWcet.misses);
  EXPECT_EQ(after.expansion.misses, warmed.expansion.misses);
  EXPECT_EQ(after.timings.misses, warmed.timings.misses);
}

}  // namespace
