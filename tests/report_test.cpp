// Unit tests for the cross-layer interface renderings.
#include <gtest/gtest.h>

#include "apps/polka.h"
#include "core/report.h"

namespace argo::core {
namespace {

const ToolchainResult& polkaResult() {
  static const ToolchainResult result = [] {
    apps::PolkaConfig config;
    config.mosaicH = 16;
    config.mosaicW = 16;
    const adl::Platform platform = adl::makeRecoreXentiumBus(4);
    return Toolchain(platform, ToolchainOptions{})
        .run(apps::buildPolkaDiagram(config));
  }();
  return result;
}

TEST(Report, GanttCoversUsedTiles) {
  const std::string gantt = renderGantt(polkaResult());
  for (std::size_t tile = 0;
       tile < polkaResult().schedule.tileOrder.size(); ++tile) {
    const bool used = !polkaResult().schedule.tileOrder[tile].empty();
    const std::string label = "tile " + std::to_string(tile);
    EXPECT_EQ(gantt.find(label) != std::string::npos, used) << label;
  }
  EXPECT_NE(gantt.find('#'), std::string::npos);
}

TEST(Report, GanttRespectsColumnBudget) {
  const std::string gantt = renderGantt(polkaResult(), 40);
  std::istringstream lines(gantt);
  std::string line;
  std::getline(lines, line);  // header
  while (std::getline(lines, line)) {
    const std::size_t open = line.find('|');
    const std::size_t close = line.rfind('|');
    ASSERT_NE(open, std::string::npos);
    EXPECT_EQ(close - open - 1, 40u);
  }
}

TEST(Report, MhpMatrixIsSymmetricallyRendered) {
  const std::string matrix = renderMhpMatrix(polkaResult());
  // One row per task plus two header lines.
  const std::size_t taskCount = polkaResult().graph->tasks.size();
  std::size_t rows = 0;
  std::istringstream lines(matrix);
  std::string line;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, taskCount + 2);
  // Task names appear.
  EXPECT_NE(matrix.find(polkaResult().graph->tasks[0].name),
            std::string::npos);
}

TEST(Report, BottlenecksListInterferenceAndContenders) {
  const std::string table = renderBottlenecks(polkaResult(), 5);
  EXPECT_NE(table.find("bottlenecks"), std::string::npos);
  EXPECT_NE(table.find("x"), std::string::npos);  // contender marker
  EXPECT_NE(table.find("total interference share"), std::string::npos);
}

TEST(Report, BottleneckTopNHonored) {
  const std::string table = renderBottlenecks(polkaResult(), 3);
  EXPECT_NE(table.find("top 3"), std::string::npos);
}

}  // namespace
}  // namespace argo::core
