// Unit tests for the discrete-event timing simulator.
#include <gtest/gtest.h>

#include "htg/htg.h"
#include "ir/builder.h"
#include "par/parallel_program.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "syswcet/system_wcet.h"

namespace argo::sim {
namespace {

using ir::ScalarKind;
using ir::Type;
using ir::VarRole;

std::unique_ptr<ir::Function> makeWorkFn(int width = 16) {
  auto fn = std::make_unique<ir::Function>("work");
  fn->declare("u", Type::array(ScalarKind::Float64, {width}), VarRole::Input);
  fn->declare("a", Type::array(ScalarKind::Float64, {width}), VarRole::Temp);
  fn->declare("y", Type::array(ScalarKind::Float64, {width}),
              VarRole::Output);
  auto body1 = ir::block();
  body1->append(ir::assign(
      ir::ref("a", ir::exprVec(ir::var("i"))),
      ir::sqrtE(ir::un(ir::UnOpKind::Abs,
                       ir::ref("u", ir::exprVec(ir::var("i")))))));
  fn->body().append(ir::forLoop("i", 0, width, std::move(body1)));
  auto body2 = ir::block();
  body2->append(ir::assign(ir::ref("y", ir::exprVec(ir::var("j"))),
                           ir::add(ir::ref("a", ir::exprVec(ir::var("j"))),
                                   ir::flt(1.0))));
  fn->body().append(ir::forLoop("j", 0, width, std::move(body2)));
  return fn;
}

struct Built {
  std::unique_ptr<ir::Function> fn;
  htg::TaskGraph graph;
  adl::Platform platform;
  std::vector<sched::TaskTiming> timings;
  par::ParallelProgram program;

  Built(const adl::Platform& plat, int chunks)
      : fn(makeWorkFn()),
        graph(htg::expand(htg::buildHtg(*fn), htg::ExpandOptions{chunks})),
        platform(plat) {
    sched::Scheduler scheduler(graph, platform);
    const sched::Schedule schedule = scheduler.run(sched::SchedOptions{});
    timings = scheduler.timings();
    program = par::buildParallelProgram(graph, schedule, platform);
  }
};

ir::Environment makeInputs(const ir::Function& fn, std::uint64_t seed) {
  support::Rng rng(seed);
  ir::Environment env = ir::makeZeroEnvironment(fn);
  ir::Value& u = env.at("u");
  for (std::int64_t k = 0; k < u.size(); ++k) {
    u.setFloat(k, rng.uniformDouble() * 10.0 - 5.0);
  }
  return env;
}

TEST(Simulator, ProducesCorrectValues) {
  const Built built(adl::makeRecoreXentiumBus(4), /*chunks=*/4);
  ir::Environment simEnv = makeInputs(*built.fn, 1);
  ir::Environment refEnv = simEnv;
  Simulator simulator(built.program, built.platform);
  (void)simulator.step(simEnv);
  ir::Evaluator(*built.fn).run(refEnv);
  EXPECT_TRUE(refEnv.at("y").approxEquals(simEnv.at("y")));
}

TEST(Simulator, DeterministicForSameInputs) {
  const Built built(adl::makeRecoreXentiumBus(4), /*chunks=*/4);
  Simulator simulator(built.program, built.platform);
  ir::Environment envA = makeInputs(*built.fn, 2);
  ir::Environment envB = makeInputs(*built.fn, 2);
  const StepResult a = simulator.step(envA);
  const StepResult b = simulator.step(envB);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.totalSharedAccesses, b.totalSharedAccesses);
}

TEST(Simulator, TaskTracesAreOrderedAndCounted) {
  const Built built(adl::makeRecoreXentiumBus(4), /*chunks=*/2);
  Simulator simulator(built.program, built.platform);
  ir::Environment env = makeInputs(*built.fn, 3);
  const StepResult result = simulator.step(env);
  for (const TaskTrace& t : result.tasks) {
    EXPECT_LE(t.start, t.finish);
    EXPECT_GE(t.sharedAccesses, 0);
  }
  EXPECT_GT(result.totalSharedAccesses, 0);
  EXPECT_GT(result.makespan, 0);
}

TEST(Simulator, RespectsHappensBefore) {
  const Built built(adl::makeRecoreXentiumBus(4), /*chunks=*/4);
  Simulator simulator(built.program, built.platform);
  ir::Environment env = makeInputs(*built.fn, 4);
  const StepResult result = simulator.step(env);
  for (const htg::Dep& dep : built.graph.deps) {
    EXPECT_LE(result.tasks[static_cast<std::size_t>(dep.from)].finish,
              result.tasks[static_cast<std::size_t>(dep.to)].start + 1)
        << dep.from << "->" << dep.to;
  }
}

/// The central safety property: observed <= static bound, across
/// platforms, granularities and inputs.
class SafetySweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(SafetySweep, ObservedNeverExceedsBound) {
  const int platformKind = std::get<0>(GetParam());
  const int chunks = std::get<1>(GetParam());
  const std::uint64_t seed = std::get<2>(GetParam());
  const adl::Platform platform =
      platformKind == 0   ? adl::makeRecoreXentiumBus(4)
      : platformKind == 1 ? adl::makeRecoreXentiumBus(4,
                                                      adl::Arbitration::Tdma)
                          : adl::makeKitLeon3Inoc(2, 2);
  const Built built(platform, chunks);
  const syswcet::SystemWcet bound = syswcet::analyzeSystem(
      built.program, built.platform, built.timings);
  Simulator simulator(built.program, built.platform);
  ir::Environment env = makeInputs(*built.fn, seed);
  const StepResult observed = simulator.step(env);
  EXPECT_LE(observed.makespan, bound.makespan);
  // Per-task windows are bounded too.
  for (std::size_t i = 0; i < observed.tasks.size(); ++i) {
    EXPECT_LE(observed.tasks[i].finish - observed.tasks[i].start,
              bound.tasks[i].inflated)
        << "task " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PlatformsChunksSeeds, SafetySweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(11u, 22u, 33u)));

TEST(Simulator, TdmaSlowerThanRoundRobinUncontended) {
  // With little contention, TDMA's wheel wait dominates; round-robin is
  // work-conserving.
  const Built rr(adl::makeRecoreXentiumBus(4), /*chunks=*/1);
  const Built tdma(adl::makeRecoreXentiumBus(4, adl::Arbitration::Tdma),
                   /*chunks=*/1);
  Simulator simRr(rr.program, rr.platform);
  Simulator simTdma(tdma.program, tdma.platform);
  ir::Environment envA = makeInputs(*rr.fn, 5);
  ir::Environment envB = makeInputs(*tdma.fn, 5);
  EXPECT_LT(simRr.step(envA).makespan, simTdma.step(envB).makespan);
}

TEST(Simulator, StallsAppearUnderContention) {
  const Built built(adl::makeRecoreXentiumBus(4), /*chunks=*/4);
  Simulator simulator(built.program, built.platform);
  ir::Environment env = makeInputs(*built.fn, 6);
  const StepResult result = simulator.step(env);
  if (built.program.schedule.tilesUsed > 1) {
    EXPECT_GT(result.totalStall, 0);
  }
}

TEST(Simulator, StatePersistsBetweenSteps) {
  // Repeated steps accumulate state exactly like the plain interpreter.
  const Built built(adl::makeRecoreXentiumBus(4), /*chunks=*/2);
  Simulator simulator(built.program, built.platform);
  ir::Environment simEnv = makeInputs(*built.fn, 7);
  ir::Environment refEnv = simEnv;
  for (int step = 0; step < 3; ++step) {
    (void)simulator.step(simEnv);
    ir::Evaluator(*built.fn).run(refEnv);
  }
  EXPECT_TRUE(refEnv.at("y").approxEquals(simEnv.at("y")));
}

TEST(NonSharedCost, PricesMeterAgainstCore) {
  ir::CountingMeter meter;
  meter.onOp(ir::OpClass::FloatMul);
  meter.onOp(ir::OpClass::FloatMul);
  meter.onAccess(ir::Storage::Local, false);
  meter.onAccess(ir::Storage::Scratchpad, true);
  meter.onAccess(ir::Storage::Shared, true);  // excluded
  const adl::CoreModel core = adl::CoreModel::leon3();
  const Cycles expected = 2 * core.cyclesFor(ir::OpClass::FloatMul) +
                          core.localAccessCycles + core.spmAccessCycles;
  EXPECT_EQ(nonSharedCost(meter, core), expected);
}

}  // namespace
}  // namespace argo::sim
