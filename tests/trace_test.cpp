// Unit tests for the observability layer: support/trace.h span recording
// (nesting, thread attribution, args, JSON shape, reset isolation) and
// support/metrics.h counters/gauges (monotonicity, reference stability),
// plus an oversubscribed concurrent-recording stress with a live export
// racing the writers. All suites carry "Trace" in the name so the TSan CI
// job's ctest regex picks them up.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/metrics.h"
#include "support/trace.h"

namespace {

using namespace argo::support;

class TraceRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { TraceRecorder::global().reset(); }
  void TearDown() override { TraceRecorder::global().reset(); }
};

TEST_F(TraceRecorderTest, DisabledRecordsNothingAndSpansAreInactive) {
  ASSERT_FALSE(TraceRecorder::enabled());
  {
    TraceSpan span("test", "noop");
    EXPECT_FALSE(span.active());
    span.arg("key", "value");  // must be a no-op, not a crash
  }
  EXPECT_EQ(TraceRecorder::global().eventCount(), 0u);
}

TEST_F(TraceRecorderTest, NestedSpansAreContainedAndOrdered) {
  TraceRecorder::global().enable();
  {
    TraceSpan outer("test", "outer");
    ASSERT_TRUE(outer.active());
    TraceSpan inner("test", "inner");
    ASSERT_TRUE(inner.active());
  }
  TraceRecorder::global().disable();

  const std::vector<TraceEventView> events =
      TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at destruction, so the inner one lands first.
  const TraceEventView& inner = events[0];
  const TraceEventView& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.category, "test");
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.startNs, outer.startNs);
  EXPECT_LE(inner.startNs + inner.durNs, outer.startNs + outer.durNs);
}

TEST_F(TraceRecorderTest, ThreadsGetDistinctIds) {
  TraceRecorder::global().enable();
  { TraceSpan span("test", "main-thread"); }
  std::thread worker([] { TraceSpan span("test", "worker-thread"); });
  worker.join();
  TraceRecorder::global().disable();

  const std::vector<TraceEventView> events =
      TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(TraceRecorderTest, ArgsAreAttachedToTheirSpan) {
  TraceRecorder::global().enable();
  {
    TraceSpan span("cache", "transforms");
    ASSERT_TRUE(span.active());
    span.arg("cache", "hit");
  }
  TraceRecorder::global().disable();

  const std::vector<TraceEventView> events =
      TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "cache");
  EXPECT_EQ(events[0].args[0].value, "hit");
}

TEST_F(TraceRecorderTest, InstantEventsHaveNoDuration) {
  TraceRecorder::global().enable();
  TraceRecorder::global().recordInstant("disk", "reject",
                                        {TraceArg{"stage", "timings"}});
  TraceRecorder::global().disable();

  const std::vector<TraceEventView> events =
      TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].durNs, 0u);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].value, "timings");
}

TEST_F(TraceRecorderTest, JsonHasChromeTraceShapeAndEscapes) {
  TraceRecorder::global().enable();
  { TraceSpan span("test", std::string("quote\"backslash\\")); }
  TraceRecorder::global().recordInstant("test", "mark");
  TraceRecorder::global().disable();

  const std::string json = TraceRecorder::global().toJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("quote\\\"backslash\\\\"), std::string::npos);
  // ts/dur are microseconds with exactly three decimals.
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceRecorderTest, ResetDropsEventsAndReArms) {
  TraceRecorder::global().enable();
  { TraceSpan span("test", "before-reset"); }
  EXPECT_EQ(TraceRecorder::global().eventCount(), 1u);

  TraceRecorder::global().reset();
  EXPECT_FALSE(TraceRecorder::enabled());
  EXPECT_EQ(TraceRecorder::global().eventCount(), 0u);

  // The same threads must be able to record again in the new epoch.
  TraceRecorder::global().enable();
  { TraceSpan span("test", "after-reset"); }
  TraceRecorder::global().disable();
  const std::vector<TraceEventView> events =
      TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "after-reset");
}

TEST_F(TraceRecorderTest, WriteFileProducesParseableOutput) {
  TraceRecorder::global().enable();
  { TraceSpan span("test", "filed"); }
  TraceRecorder::global().disable();

  const std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(TraceRecorder::global().writeFile(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"filed\""), std::string::npos);

  EXPECT_FALSE(TraceRecorder::global().writeFile(
      ::testing::TempDir() + "/no-such-dir/trace.json"));
}

TEST(TraceMetricsTest, CountersAreMonotonicWithStableReferences) {
  MetricCounter& counter =
      MetricsRegistry::global().counter("trace_test.counter");
  const std::uint64_t before = counter.value();
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), before + 42);
  // Same name -> same object, forever.
  EXPECT_EQ(&counter, &MetricsRegistry::global().counter("trace_test.counter"));
}

TEST(TraceMetricsTest, GaugeTracksHighWatermark) {
  MetricGauge& gauge = MetricsRegistry::global().gauge("trace_test.gauge");
  gauge.set(0);
  gauge.noteMax(7);
  gauge.noteMax(3);  // below the watermark: must not lower it
  EXPECT_EQ(gauge.value(), 7u);
  gauge.set(2);  // set() is last-value, allowed to lower
  EXPECT_EQ(gauge.value(), 2u);
}

TEST(TraceMetricsTest, SnapshotIsSortedAndCoversBothKinds) {
  MetricsRegistry::global().counter("trace_test.snap_b").add(5);
  MetricsRegistry::global().counter("trace_test.snap_a").add(1);
  MetricsRegistry::global().gauge("trace_test.snap_g").set(9);

  const std::vector<MetricSample> samples =
      MetricsRegistry::global().snapshot();
  ASSERT_TRUE(std::is_sorted(
      samples.begin(), samples.end(),
      [](const MetricSample& a, const MetricSample& b) {
        return a.name < b.name;
      }));
  bool sawGauge = false;
  for (const MetricSample& sample : samples) {
    if (sample.name == "trace_test.snap_g") {
      sawGauge = true;
      EXPECT_TRUE(sample.isGauge);
      EXPECT_EQ(sample.value, 9u);
    }
  }
  EXPECT_TRUE(sawGauge);
}

class TraceConcurrencyTest : public TraceRecorderTest {};

TEST_F(TraceConcurrencyTest, OversubscribedRecordingWithLiveExport) {
  // Far more writer threads than cores, each recording spans with args
  // and bumping a shared counter, while a reader repeatedly exports the
  // (growing) buffer set. TSan-sensitive by design.
  constexpr int kThreads = 64;
  constexpr int kSpansPerThread = 50;
  TraceRecorder::global().enable();
  MetricCounter& counter =
      MetricsRegistry::global().counter("trace_test.concurrent");
  const std::uint64_t before = counter.value();

  std::atomic<bool> stopReader{false};
  std::thread reader([&] {
    while (!stopReader.load(std::memory_order_relaxed)) {
      (void)TraceRecorder::global().toJson();
      (void)TraceRecorder::global().eventCount();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t, &counter] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("stress", "w" + std::to_string(t));
        if (span.active()) span.arg("i", std::to_string(i));
        counter.add();
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stopReader.store(true, std::memory_order_relaxed);
  reader.join();
  TraceRecorder::global().disable();

  EXPECT_EQ(counter.value(), before + kThreads * kSpansPerThread);
  EXPECT_EQ(TraceRecorder::global().eventCount(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);

  // Every writer thread must own a distinct tid and all its spans.
  const std::vector<TraceEventView> events =
      TraceRecorder::global().snapshot();
  std::map<int, int> perTid;
  for (const TraceEventView& ev : events) perTid[ev.tid] += 1;
  EXPECT_EQ(perTid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, count] : perTid) {
    (void)tid;
    EXPECT_EQ(count, kSpansPerThread);
  }
}

}  // namespace
