// Unit tests for scalar-chain task merging in the HTG expansion.
#include <gtest/gtest.h>

#include "htg/htg.h"
#include "ir/builder.h"
#include "ir/evaluator.h"

namespace argo::htg {
namespace {

using ir::ScalarKind;
using ir::Type;
using ir::VarRole;

/// loop; s1; s2; s3; loop — the three scalar statements form a chain.
std::unique_ptr<ir::Function> makeChainedFn() {
  auto fn = std::make_unique<ir::Function>("chain");
  fn->declare("u", Type::array(ScalarKind::Float64, {8}), VarRole::Input);
  fn->declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Temp);
  fn->declare("t1", Type::float64(), VarRole::Temp);
  fn->declare("t2", Type::float64(), VarRole::Temp);
  fn->declare("y", Type::array(ScalarKind::Float64, {8}), VarRole::Output);

  auto body1 = ir::block();
  body1->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                           ir::mul(ir::ref("u", ir::exprVec(ir::var("i"))),
                                   ir::flt(2.0))));
  fn->body().append(ir::forLoop("i", 0, 8, std::move(body1)));

  fn->body().append(ir::assign(ir::ref("t1"),
                               ir::ref("a", ir::exprVec(ir::lit(0)))));
  fn->body().append(ir::assign(ir::ref("t2"), ir::mul(ir::var("t1"),
                                                      ir::flt(3.0))));
  fn->body().append(ir::assign(ir::ref("t1"), ir::add(ir::var("t2"),
                                                      ir::flt(1.0))));

  auto body2 = ir::block();
  body2->append(ir::assign(ir::ref("y", ir::exprVec(ir::var("j"))),
                           ir::add(ir::ref("a", ir::exprVec(ir::var("j"))),
                                   ir::var("t1"))));
  fn->body().append(ir::forLoop("j", 0, 8, std::move(body2)));
  return fn;
}

TEST(MergeScalarChains, ReducesTaskCount) {
  const auto fn = makeChainedFn();
  const Htg htg = buildHtg(*fn);
  ExpandOptions plain;
  plain.chunksPerLoop = 1;
  ExpandOptions merged = plain;
  merged.mergeScalarChains = true;
  const TaskGraph a = expand(htg, plain);
  const TaskGraph b = expand(htg, merged);
  EXPECT_EQ(a.tasks.size(), 5u);  // loop, s1, s2, s3, loop
  EXPECT_EQ(b.tasks.size(), 3u);  // loop, merged chain, loop
}

TEST(MergeScalarChains, MergedTaskHoldsAllStatements) {
  const auto fn = makeChainedFn();
  const Htg htg = buildHtg(*fn);
  ExpandOptions options;
  options.chunksPerLoop = 1;
  options.mergeScalarChains = true;
  const TaskGraph graph = expand(htg, options);
  bool foundChain = false;
  for (const Task& task : graph.tasks) {
    if (task.stmts.size() == 3) {
      foundChain = true;
      EXPECT_TRUE(task.usage.writes.contains("t1"));
      EXPECT_TRUE(task.usage.writes.contains("t2"));
    }
  }
  EXPECT_TRUE(foundChain);
}

TEST(MergeScalarChains, NoSelfOrDuplicateEdges) {
  const auto fn = makeChainedFn();
  const Htg htg = buildHtg(*fn);
  ExpandOptions options;
  options.chunksPerLoop = 2;
  options.mergeScalarChains = true;
  const TaskGraph graph = expand(htg, options);
  std::set<std::pair<int, int>> seen;
  for (const Dep& d : graph.deps) {
    EXPECT_NE(d.from, d.to);
    EXPECT_TRUE(seen.emplace(d.from, d.to).second)
        << "duplicate edge " << d.from << "->" << d.to;
  }
}

TEST(MergeScalarChains, PreservesSemantics) {
  const auto fn = makeChainedFn();
  const Htg htg = buildHtg(*fn);
  ExpandOptions options;
  options.chunksPerLoop = 2;
  options.mergeScalarChains = true;
  const TaskGraph graph = expand(htg, options);

  ir::Environment ref;
  ir::Value u = ir::Value::zeros(Type::array(ScalarKind::Float64, {8}));
  for (int i = 0; i < 8; ++i) u.setFloat(i, 0.5 * i - 1.0);
  ref["u"] = u;
  ir::Evaluator(*fn).run(ref);

  ir::Environment merged;
  merged["u"] = u;
  const ir::Evaluator evaluator(*fn);
  for (const Task& task : graph.tasks) {
    for (const ir::StmtPtr& s : task.stmts) evaluator.runStmt(*s, merged);
  }
  EXPECT_TRUE(ref.at("y").approxEquals(merged.at("y")));
}

TEST(MergeScalarChains, ChainsBrokenByLoops) {
  // s; loop; s — the two scalars must NOT merge across the loop.
  auto fn = std::make_unique<ir::Function>("broken");
  fn->declare("a", Type::array(ScalarKind::Float64, {4}), VarRole::Temp);
  fn->declare("t", Type::float64(), VarRole::Temp);
  fn->declare("y", Type::float64(), VarRole::Output);
  fn->body().append(ir::assign(ir::ref("t"), ir::flt(1.0)));
  auto body = ir::block();
  body->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                          ir::var("t")));
  fn->body().append(ir::forLoop("i", 0, 4, std::move(body)));
  fn->body().append(ir::assign(ir::ref("y"),
                               ir::ref("a", ir::exprVec(ir::lit(0)))));
  const Htg htg = buildHtg(*fn);
  ExpandOptions options;
  options.chunksPerLoop = 1;
  options.mergeScalarChains = true;
  const TaskGraph graph = expand(htg, options);
  EXPECT_EQ(graph.tasks.size(), 3u);
}

TEST(MergeScalarChains, DefaultOff) {
  const auto fn = makeChainedFn();
  const Htg htg = buildHtg(*fn);
  const TaskGraph graph = expand(htg, ExpandOptions{1});
  EXPECT_EQ(graph.tasks.size(), 5u);
}

}  // namespace
}  // namespace argo::htg
