// Unit tests for the scheduling/mapping policies.
#include <gtest/gtest.h>

#include "diamond_fixture.h"
#include "htg/htg.h"
#include "ir/builder.h"
#include "sched/scheduler.h"
#include "support/diagnostics.h"

namespace argo::sched {
namespace {

using ir::ScalarKind;
using ir::Type;
using ir::VarRole;
using test::makeDiamondFn;

struct Fixture {
  std::unique_ptr<ir::Function> fn;
  htg::TaskGraph graph;
  adl::Platform platform;

  explicit Fixture(int chunks = 1, int cores = 4)
      : fn(makeDiamondFn()),
        graph(htg::expand(htg::buildHtg(*fn), htg::ExpandOptions{chunks})),
        platform(adl::makeRecoreXentiumBus(cores)) {}
};

TEST(Timings, PositiveAndTileIndexed) {
  Fixture fx;
  const auto timings = computeTaskTimings(fx.graph, fx.platform);
  ASSERT_EQ(timings.size(), fx.graph.tasks.size());
  for (const TaskTiming& t : timings) {
    ASSERT_EQ(t.wcetByTile.size(), 4u);
    for (Cycles c : t.wcetByTile) EXPECT_GT(c, 0);
    EXPECT_GT(t.sharedAccesses, 0);  // everything lives in shared memory
  }
}

TEST(Timings, HeterogeneousTilesDiffer) {
  Fixture fx;
  const adl::Platform hetero = adl::makeKitLeon3Inoc(2, 2, /*accel=*/true);
  // Build a math-heavy graph to see the difference.
  auto fn = std::make_unique<ir::Function>("mathy");
  fn->declare("y", Type::float64(), VarRole::Output, ir::Storage::Local);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("y"), ir::un(ir::UnOpKind::Sin,
                                               ir::var("y"))));
  fn->body().append(ir::forLoop("i", 0, 32, std::move(body)));
  const htg::TaskGraph graph =
      htg::expand(htg::buildHtg(*fn), htg::ExpandOptions{1});
  const auto timings = computeTaskTimings(graph, hetero);
  EXPECT_LT(timings[0].wcetByTile[3], timings[0].wcetByTile[0]);
}

TEST(Heft, ProducesValidSchedule) {
  for (int chunks : {1, 2, 4}) {
    Fixture fx(chunks);
    Scheduler scheduler(fx.graph, fx.platform);
    SchedOptions options;
    const Schedule schedule = scheduler.run(options);
    const auto problems = validateSchedule(schedule, fx.graph, fx.platform,
                                           scheduler.timings());
    EXPECT_TRUE(problems.empty())
        << "chunks " << chunks << ": " << problems.front();
    EXPECT_GT(schedule.makespan, 0);
  }
}

TEST(Heft, UsesMultipleTilesWhenParallelismExists) {
  Fixture fx(/*chunks=*/4);
  Scheduler scheduler(fx.graph, fx.platform);
  const Schedule schedule = scheduler.run(SchedOptions{});
  EXPECT_GT(schedule.tilesUsed, 1);
}

TEST(Heft, CoreLimitRestrictsTiles) {
  Fixture fx(/*chunks=*/4, /*cores=*/8);
  Scheduler scheduler(fx.graph, fx.platform);
  SchedOptions options;
  options.coreLimit = 2;
  const Schedule schedule = scheduler.run(options);
  for (const Placement& p : schedule.placements) EXPECT_LT(p.tile, 2);
}

TEST(Heft, MoreCoresNeverWorseEstimate) {
  Cycles prev = std::numeric_limits<Cycles>::max();
  for (int cores : {1, 2, 4}) {
    Fixture fx(/*chunks=*/4, cores);
    Scheduler scheduler(fx.graph, fx.platform);
    SchedOptions options;
    options.interferenceAware = false;  // pure makespan comparison
    const Schedule schedule = scheduler.run(options);
    EXPECT_LE(schedule.makespan, prev) << cores << " cores";
    prev = schedule.makespan;
  }
}

TEST(ContentionOblivious, IgnoresInterference) {
  Fixture fx(/*chunks=*/4);
  Scheduler scheduler(fx.graph, fx.platform);
  SchedOptions aware;
  aware.policy = "heft";
  SchedOptions oblivious;
  oblivious.policy = "contention_oblivious";
  const Schedule a = scheduler.run(aware);
  const Schedule b = scheduler.run(oblivious);
  EXPECT_EQ(b.policy, "contention_oblivious");
  // Both are structurally valid.
  EXPECT_TRUE(validateSchedule(a, fx.graph, fx.platform,
                               scheduler.timings()).empty());
  EXPECT_TRUE(validateSchedule(b, fx.graph, fx.platform,
                               scheduler.timings()).empty());
}

TEST(BnB, OptimalOnSmallGraphs) {
  Fixture fx(/*chunks=*/2);  // 8 tasks
  ASSERT_LE(fx.graph.tasks.size(), 14u);
  Scheduler scheduler(fx.graph, fx.platform);
  SchedOptions heftOpt;
  heftOpt.interferenceAware = false;
  const Schedule heft = scheduler.run(heftOpt);
  SchedOptions bnbOpt;
  bnbOpt.policy = "branch_and_bound";
  bnbOpt.interferenceAware = false;
  const Schedule bnb = scheduler.run(bnbOpt);
  EXPECT_TRUE(validateSchedule(bnb, fx.graph, fx.platform,
                               scheduler.timings()).empty());
  // Exact search can never be worse than the heuristic.
  EXPECT_LE(bnb.makespan, heft.makespan);
}

TEST(BnB, FallsBackOnLargeGraphs) {
  Fixture fx(/*chunks=*/8);  // > bnbTaskLimit tasks
  Scheduler scheduler(fx.graph, fx.platform);
  SchedOptions options;
  options.policy = "branch_and_bound";
  options.bnbTaskLimit = 10;
  const Schedule schedule = scheduler.run(options);
  EXPECT_NE(schedule.policy.find("fallback"), std::string::npos);
  EXPECT_TRUE(validateSchedule(schedule, fx.graph, fx.platform,
                               scheduler.timings()).empty());
}

TEST(Annealed, NeverWorseThanSeedAndValid) {
  Fixture fx(/*chunks=*/4);
  Scheduler scheduler(fx.graph, fx.platform);
  SchedOptions heftOpt;
  const Schedule heft = scheduler.run(heftOpt);
  SchedOptions saOpt;
  saOpt.policy = "annealed";
  saOpt.saIterations = 300;
  const Schedule sa = scheduler.run(saOpt);
  EXPECT_LE(sa.makespan, heft.makespan);
  EXPECT_TRUE(validateSchedule(sa, fx.graph, fx.platform,
                               scheduler.timings()).empty());
}

TEST(Annealed, DeterministicForSeed) {
  Fixture fx(/*chunks=*/4);
  Scheduler scheduler(fx.graph, fx.platform);
  SchedOptions options;
  options.policy = "annealed";
  options.saIterations = 200;
  options.seed = 42;
  const Schedule a = scheduler.run(options);
  const Schedule b = scheduler.run(options);
  EXPECT_EQ(a.makespan, b.makespan);
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].tile, b.placements[i].tile);
  }
}

TEST(Validate, DetectsOverlap) {
  Fixture fx;
  Scheduler scheduler(fx.graph, fx.platform);
  Schedule schedule = scheduler.run(SchedOptions{});
  // Force two tasks onto the same tile at the same time.
  if (schedule.placements.size() >= 2) {
    schedule.placements[1].tile = schedule.placements[0].tile;
    schedule.placements[1].start = schedule.placements[0].start;
    schedule.placements[1].finish = schedule.placements[0].finish;
    EXPECT_FALSE(validateSchedule(schedule, fx.graph, fx.platform,
                                  scheduler.timings()).empty());
  }
}

TEST(Validate, DetectsDependenceViolation) {
  Fixture fx;
  Scheduler scheduler(fx.graph, fx.platform);
  Schedule schedule = scheduler.run(SchedOptions{});
  // Move a consumer before its producer.
  ASSERT_FALSE(fx.graph.deps.empty());
  const htg::Dep& dep = fx.graph.deps.front();
  schedule.placements[static_cast<std::size_t>(dep.to)].start = 0;
  schedule.placements[static_cast<std::size_t>(dep.to)].finish = 1;
  EXPECT_FALSE(validateSchedule(schedule, fx.graph, fx.platform,
                                scheduler.timings()).empty());
}

TEST(Validate, DetectsTooShortTask) {
  Fixture fx;
  Scheduler scheduler(fx.graph, fx.platform);
  Schedule schedule = scheduler.run(SchedOptions{});
  schedule.placements[0].finish = schedule.placements[0].start;  // 0 length
  EXPECT_FALSE(validateSchedule(schedule, fx.graph, fx.platform,
                                scheduler.timings()).empty());
}

TEST(CommCost, ZeroWhenColocated) {
  Fixture fx;
  htg::Dep dep;
  dep.bytes = 128;
  EXPECT_EQ(commCost(fx.platform, dep, 1, 1), 0);
  EXPECT_GT(commCost(fx.platform, dep, 0, 1), 0);
}

TEST(Scheduler, ThrowsOnEmptyGraph) {
  Fixture fx;
  htg::TaskGraph empty;
  empty.fn = fx.fn.get();
  Scheduler scheduler(empty, fx.platform);
  EXPECT_THROW((void)scheduler.run(SchedOptions{}), support::ToolchainError);
}

}  // namespace
}  // namespace argo::sched
