// Integration tests: the full tool-chain (Fig. 1) end to end, across use
// cases, platforms and scheduling policies, with the simulator as the
// ground truth for the safety property.
#include <gtest/gtest.h>

#include "apps/egpws.h"
#include "apps/polka.h"
#include "apps/weaa.h"
#include "core/toolchain.h"
#include "sim/simulator.h"
#include "support/diagnostics.h"

namespace argo::core {
namespace {

enum class App { Egpws, Weaa, Polka };

model::Diagram buildApp(App app) {
  switch (app) {
    case App::Egpws: {
      apps::EgpwsConfig config;
      config.gridH = 16;
      config.gridW = 16;
      config.samples = 16;
      return apps::buildEgpwsDiagram(config);
    }
    case App::Weaa: {
      apps::WeaaConfig config;
      config.horizon = 24;
      config.candidates = 4;
      return apps::buildWeaaDiagram(config);
    }
    case App::Polka: {
      apps::PolkaConfig config;
      config.mosaicH = 16;
      config.mosaicW = 16;
      return apps::buildPolkaDiagram(config);
    }
  }
  throw support::ToolchainError("unknown app");
}

void setAppInputs(App app, ir::Environment& env) {
  switch (app) {
    case App::Egpws:
      apps::setEgpwsInputs(env, apps::EgpwsInputs{});
      break;
    case App::Weaa:
      apps::setWeaaInputs(env, apps::WeaaInputs{});
      break;
    case App::Polka: {
      apps::PolkaConfig config;
      config.mosaicH = 16;
      config.mosaicW = 16;
      apps::setPolkaInputs(env, config, apps::makePolkaFrame(config, 3));
      break;
    }
  }
}

/// Sweep: app x platform kind. The safety property and structural checks
/// hold everywhere.
class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PipelineSweep, EndToEndSafetyAndStructure) {
  const App app = static_cast<App>(std::get<0>(GetParam()));
  const int platformKind = std::get<1>(GetParam());
  const adl::Platform platform =
      platformKind == 0   ? adl::makeRecoreXentiumBus(4)
      : platformKind == 1 ? adl::makeRecoreXentiumBus(4,
                                                      adl::Arbitration::Tdma)
                          : adl::makeKitLeon3Inoc(2, 2);

  ToolchainOptions options;
  const Toolchain toolchain(platform, options);
  const ToolchainResult result = toolchain.run(buildApp(app));

  // Structure: a validated schedule over a non-trivial task graph.
  EXPECT_GT(result.graph->tasks.size(), 1u);
  EXPECT_TRUE(sched::validateSchedule(result.schedule, *result.graph,
                                      platform, result.timings)
                  .empty());
  EXPECT_GT(result.system.makespan, 0);
  EXPECT_GT(result.sequentialWcet, 0);

  // Safety: simulate and compare against the bound.
  sim::Simulator simulator(result.program, platform);
  ir::Environment env = ir::makeZeroEnvironment(*result.fn);
  for (const auto& [name, value] : result.constants) env[name] = value;
  setAppInputs(app, env);
  const sim::StepResult observed = simulator.step(env);
  EXPECT_LE(observed.makespan, result.system.makespan);

  // Multi-step safety (state evolves; the bound is per-step).
  for (int step = 0; step < 3; ++step) {
    const sim::StepResult again = simulator.step(env);
    EXPECT_LE(again.makespan, result.system.makespan) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(AppsPlatforms, PipelineSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(0, 1, 2)));

TEST(Toolchain, ParallelWcetBeatsSequentialOnRealApps) {
  // The headline claim (E2): the guaranteed (bound) speedup > 1 on the
  // compute-heavy use cases with 8 cores.
  const adl::Platform platform = adl::makeRecoreXentiumBus(8);
  const Toolchain toolchain(platform, ToolchainOptions{});
  for (const App app : {App::Weaa, App::Polka}) {
    const ToolchainResult result = toolchain.run(buildApp(app));
    EXPECT_GT(result.wcetSpeedup(), 1.0)
        << "app " << static_cast<int>(app);
  }
}

TEST(Toolchain, FeedbackPicksBestCandidate) {
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);
  const Toolchain toolchain(platform, ToolchainOptions{});
  const ToolchainResult result = toolchain.run(buildApp(App::Polka));
  ASSERT_FALSE(result.feedback.empty());
  Cycles best = std::numeric_limits<Cycles>::max();
  for (const FeedbackPoint& p : result.feedback) {
    best = std::min(best, p.systemWcet);
  }
  EXPECT_EQ(result.system.makespan, best);
  bool chosenSeen = false;
  for (const FeedbackPoint& p : result.feedback) {
    if (p.chunksPerLoop == result.chosenChunks) {
      chosenSeen = true;
      EXPECT_EQ(p.systemWcet, best);
    }
  }
  EXPECT_TRUE(chosenSeen);
}

TEST(Toolchain, InterferenceAwareBeatsPessimisticAnalysis) {
  // E3: analyzing the same program with the parMERASA-style
  // all-contenders assumption yields a strictly worse bound whenever
  // multiple tiles are used on a contention-sensitive interconnect.
  const adl::Platform platform = adl::makeRecoreXentiumBus(8);
  const Toolchain toolchain(platform, ToolchainOptions{});
  const ToolchainResult result = toolchain.run(buildApp(App::Polka));
  const syswcet::SystemWcet pessimistic = syswcet::analyzeSystem(
      result.program, platform, result.timings,
      syswcet::InterferenceMethod::AllContenders);
  EXPECT_LE(result.system.makespan, pessimistic.makespan);
  if (result.schedule.tilesUsed > 1 &&
      result.schedule.tilesUsed < platform.coreCount()) {
    EXPECT_LT(result.system.makespan, pessimistic.makespan);
  }
}

TEST(Toolchain, CustomChunkCandidatesHonored) {
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);
  ToolchainOptions options;
  options.chunkCandidates = {3};
  const Toolchain toolchain(platform, options);
  const ToolchainResult result = toolchain.run(buildApp(App::Polka));
  EXPECT_EQ(result.chosenChunks, 3);
  // The requested candidate plus the always-present sequential mapping.
  EXPECT_EQ(result.feedback.size(), 2u);
  EXPECT_EQ(result.feedback[0].coreLimit, 1);
  EXPECT_EQ(result.feedback[1].chunksPerLoop, 3);
}

TEST(Toolchain, TransformsCanBeDisabled) {
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);
  ToolchainOptions off;
  off.runTransforms = false;
  off.spmAllocation = false;
  const Toolchain toolchain(platform, off);
  const ToolchainResult result = toolchain.run(buildApp(App::Egpws));
  EXPECT_TRUE(result.passesRun.empty());
}

TEST(Toolchain, SpmAllocationTightensEgpwsBound) {
  // E5 shape: the terrain table fits the Xentium SPM; demoting it must
  // reduce both the sequential and the parallel WCET.
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);
  ToolchainOptions with;
  ToolchainOptions without;
  without.spmAllocation = false;
  const ToolchainResult a =
      Toolchain(platform, with).run(buildApp(App::Egpws));
  const ToolchainResult b =
      Toolchain(platform, without).run(buildApp(App::Egpws));
  EXPECT_LT(a.sequentialWcet, b.sequentialWcet);
  EXPECT_LT(a.system.makespan, b.system.makespan);
}

TEST(Toolchain, ReportContainsKeyFacts) {
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);
  const Toolchain toolchain(platform, ToolchainOptions{});
  const ToolchainResult result = toolchain.run(buildApp(App::Egpws));
  const std::string report = result.reportText();
  EXPECT_NE(report.find("sequential WCET"), std::string::npos);
  EXPECT_NE(report.find("parallel WCET bound"), std::string::npos);
  EXPECT_NE(report.find("feedback points"), std::string::npos);
  EXPECT_NE(report.find("<== chosen"), std::string::npos);
}

TEST(Toolchain, StageTimingsRecorded) {
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);
  const Toolchain toolchain(platform, ToolchainOptions{});
  const ToolchainResult result = toolchain.run(buildApp(App::Egpws));
  ASSERT_GE(result.stages.size(), 4u);
  for (const StageTiming& s : result.stages) {
    EXPECT_GE(s.milliseconds, 0.0);
    EXPECT_FALSE(s.stage.empty());
  }
}

TEST(Toolchain, MoreCoresNeverHurtTheBound) {
  // E2 shape: the chosen bound is non-increasing in core count.
  const Toolchain tc2(adl::makeRecoreXentiumBus(2), ToolchainOptions{});
  const Toolchain tc4(adl::makeRecoreXentiumBus(4), ToolchainOptions{});
  const Toolchain tc8(adl::makeRecoreXentiumBus(8), ToolchainOptions{});
  const Cycles w2 = tc2.run(buildApp(App::Polka)).system.makespan;
  const Cycles w4 = tc4.run(buildApp(App::Polka)).system.makespan;
  const Cycles w8 = tc8.run(buildApp(App::Polka)).system.makespan;
  // Allow small non-monotonicity from heuristic scheduling (1%).
  EXPECT_LE(w4, w2 + w2 / 100);
  EXPECT_LE(w8, w4 + w4 / 100);
}

TEST(Toolchain, GeneratedCodeAvailablePerCore) {
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);
  const Toolchain toolchain(platform, ToolchainOptions{});
  const ToolchainResult result = toolchain.run(buildApp(App::Egpws));
  for (int tile = 0; tile < platform.coreCount(); ++tile) {
    const std::string source = par::emitCoreSource(result.program, tile);
    EXPECT_NE(source.find("core" + std::to_string(tile) + "_step"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace argo::core
