// Unit tests for HTG extraction and expansion into flat task graphs.
#include <gtest/gtest.h>

#include "htg/htg.h"
#include "ir/builder.h"
#include "ir/evaluator.h"
#include "support/diagnostics.h"

namespace argo::htg {
namespace {

using ir::ScalarKind;
using ir::Type;
using ir::VarRole;

/// in -> loopA(parallel) -> loopB(parallel reads A) -> scalar finish
std::unique_ptr<ir::Function> makePipelineFn() {
  auto fn = std::make_unique<ir::Function>("pipe");
  fn->declare("u", Type::array(ScalarKind::Float64, {16}), VarRole::Input);
  fn->declare("a", Type::array(ScalarKind::Float64, {16}), VarRole::Temp);
  fn->declare("b", Type::array(ScalarKind::Float64, {16}), VarRole::Temp);
  fn->declare("y", Type::float64(), VarRole::Output);

  auto bodyA = ir::block();
  bodyA->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                           ir::mul(ir::ref("u", ir::exprVec(ir::var("i"))),
                                   ir::flt(2.0))));
  ir::StmtPtr loopA = ir::forLoop("i", 0, 16, std::move(bodyA));
  loopA->label = "scale";
  fn->body().append(std::move(loopA));

  auto bodyB = ir::block();
  bodyB->append(ir::assign(ir::ref("b", ir::exprVec(ir::var("j"))),
                           ir::add(ir::ref("a", ir::exprVec(ir::var("j"))),
                                   ir::flt(1.0))));
  ir::StmtPtr loopB = ir::forLoop("j", 0, 16, std::move(bodyB));
  loopB->label = "offset";
  fn->body().append(std::move(loopB));

  fn->body().append(ir::assign(ir::ref("y"),
                               ir::ref("b", ir::exprVec(ir::lit(0)))));
  return fn;
}

TEST(Htg, OneNodePerTopLevelStatement) {
  const auto fn = makePipelineFn();
  const Htg htg = buildHtg(*fn);
  EXPECT_EQ(htg.nodes().size(), 3u);
  EXPECT_EQ(htg.nodes()[0].name, "scale");
  EXPECT_EQ(htg.nodes()[1].name, "offset");
}

TEST(Htg, MarksParallelLoops) {
  const auto fn = makePipelineFn();
  const Htg htg = buildHtg(*fn);
  EXPECT_TRUE(htg.nodes()[0].parallelizable);
  EXPECT_TRUE(htg.nodes()[1].parallelizable);
  EXPECT_FALSE(htg.nodes()[2].parallelizable);  // not a loop
  EXPECT_EQ(htg.parallelizableLoopCount(), 2);
}

TEST(Htg, BuildsFlowDependences) {
  const auto fn = makePipelineFn();
  const Htg htg = buildHtg(*fn);
  // scale -> offset (a), offset -> finish (b).
  bool scaleToOffset = false;
  bool offsetToFinish = false;
  for (const Dep& d : htg.deps()) {
    if (d.from == 0 && d.to == 1) {
      scaleToOffset = true;
      EXPECT_TRUE(d.vars.contains("a"));
      EXPECT_EQ(d.bytes, 16 * 8);
    }
    if (d.from == 1 && d.to == 2) offsetToFinish = true;
  }
  EXPECT_TRUE(scaleToOffset);
  EXPECT_TRUE(offsetToFinish);
}

TEST(Htg, SequentialRecurrenceNotParallel) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {16}), VarRole::Temp);
  auto body = ir::block();
  body->append(ir::assign(
      ir::ref("a", ir::exprVec(ir::var("i"))),
      ir::ref("a", ir::exprVec(ir::sub(ir::var("i"), ir::lit(1))))));
  fn.body().append(ir::forLoop("i", 1, 16, std::move(body)));
  const Htg htg = buildHtg(fn);
  EXPECT_FALSE(htg.nodes()[0].parallelizable);
}

TEST(Htg, EscapedPrivatizedScalarBlocksParallelization) {
  // Loop writes scalar t (privatizable inside), but a later node reads t:
  // chunking would deliver the wrong "last" value.
  ir::Function fn("f");
  fn.declare("u", Type::array(ScalarKind::Float64, {8}), VarRole::Input);
  fn.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Temp);
  fn.declare("t", Type::float64(), VarRole::Temp);
  fn.declare("y", Type::float64(), VarRole::Output);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("t"),
                          ir::ref("u", ir::exprVec(ir::var("i")))));
  body->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                          ir::var("t")));
  fn.body().append(ir::forLoop("i", 0, 8, std::move(body)));
  fn.body().append(ir::assign(ir::ref("y"), ir::var("t")));  // escapes!
  const Htg htg = buildHtg(fn);
  EXPECT_FALSE(htg.nodes()[0].parallelizable);
}

TEST(Expand, SingleChunkKeepsStructure) {
  const auto fn = makePipelineFn();
  const Htg htg = buildHtg(*fn);
  const TaskGraph graph = expand(htg, ExpandOptions{1});
  EXPECT_EQ(graph.tasks.size(), 3u);
  EXPECT_EQ(graph.deps.size(), htg.deps().size());
}

TEST(Expand, ChunksCoverIterationSpaceExactly) {
  const auto fn = makePipelineFn();
  const Htg htg = buildHtg(*fn);
  for (int chunks : {2, 3, 4, 5, 7, 16}) {
    const TaskGraph graph = expand(htg, ExpandOptions{chunks});
    // Collect the chunk ranges of node 0 ("scale").
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
    for (const Task& t : graph.tasks) {
      if (t.htgNode != 0) continue;
      ASSERT_EQ(t.stmts.size(), 1u);
      const auto& loop = ir::cast<ir::For>(*t.stmts[0]);
      ranges.emplace_back(loop.lower(), loop.upper());
    }
    ASSERT_EQ(ranges.size(), static_cast<std::size_t>(chunks))
        << "chunks " << chunks;
    std::sort(ranges.begin(), ranges.end());
    EXPECT_EQ(ranges.front().first, 0);
    EXPECT_EQ(ranges.back().second, 16);
    std::int64_t total = 0;
    for (std::size_t k = 0; k < ranges.size(); ++k) {
      EXPECT_LT(ranges[k].first, ranges[k].second);  // non-empty
      if (k > 0) {
        EXPECT_EQ(ranges[k].first, ranges[k - 1].second);
      }
      total += ranges[k].second - ranges[k].first;
    }
    EXPECT_EQ(total, 16);
  }
}

TEST(Expand, ChunkCountClampedToTripCount) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {3}), VarRole::Temp);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                          ir::flt(0.0)));
  fn.body().append(ir::forLoop("i", 0, 3, std::move(body)));
  const Htg htg = buildHtg(fn);
  const TaskGraph graph = expand(htg, ExpandOptions{16});
  EXPECT_EQ(graph.tasks.size(), 3u);  // at most trip-count chunks
}

TEST(Expand, ChunkedExecutionMatchesSequential) {
  const auto fn = makePipelineFn();
  const Htg htg = buildHtg(*fn);
  const TaskGraph graph = expand(htg, ExpandOptions{4});

  // Sequential reference.
  ir::Environment ref;
  ir::Value u = ir::Value::zeros(Type::array(ScalarKind::Float64, {16}));
  for (int i = 0; i < 16; ++i) u.setFloat(i, 0.5 * i);
  ref["u"] = u;
  ir::Evaluator(*fn).run(ref);

  // Execute tasks in id order (a valid topological order by construction).
  ir::Environment chunked;
  chunked["u"] = u;
  const ir::Evaluator evaluator(*fn);
  for (const Task& task : graph.tasks) {
    for (const ir::StmtPtr& s : task.stmts) {
      evaluator.runStmt(*s, chunked);
    }
  }
  EXPECT_TRUE(ref.at("y").approxEquals(chunked.at("y")));
  EXPECT_TRUE(ref.at("b").approxEquals(chunked.at("b")));
}

TEST(Expand, DependencesConnectAllChunkPairs) {
  const auto fn = makePipelineFn();
  const Htg htg = buildHtg(*fn);
  const TaskGraph graph = expand(htg, ExpandOptions{2});
  // scale#0, scale#1, offset#0, offset#1, finish = 5 tasks.
  ASSERT_EQ(graph.tasks.size(), 5u);
  // Each scale chunk feeds each offset chunk: 4 edges; each offset chunk
  // feeds finish: 2 edges.
  int scaleToOffset = 0;
  int offsetToFinish = 0;
  for (const Dep& d : graph.deps) {
    const Task& from = graph.tasks[static_cast<std::size_t>(d.from)];
    const Task& to = graph.tasks[static_cast<std::size_t>(d.to)];
    if (from.htgNode == 0 && to.htgNode == 1) ++scaleToOffset;
    if (from.htgNode == 1 && to.htgNode == 2) ++offsetToFinish;
  }
  EXPECT_EQ(scaleToOffset, 4);
  EXPECT_EQ(offsetToFinish, 2);
}

TEST(Expand, NoIntraNodeEdges) {
  const auto fn = makePipelineFn();
  const Htg htg = buildHtg(*fn);
  const TaskGraph graph = expand(htg, ExpandOptions{4});
  for (const Dep& d : graph.deps) {
    EXPECT_NE(graph.tasks[static_cast<std::size_t>(d.from)].htgNode,
              graph.tasks[static_cast<std::size_t>(d.to)].htgNode);
  }
}

TEST(Expand, RejectsZeroChunks) {
  const auto fn = makePipelineFn();
  const Htg htg = buildHtg(*fn);
  EXPECT_THROW((void)expand(htg, ExpandOptions{0}), support::ToolchainError);
}

TEST(TaskGraph, SuccessorPredecessorConsistency) {
  const auto fn = makePipelineFn();
  const Htg htg = buildHtg(*fn);
  const TaskGraph graph = expand(htg, ExpandOptions{3});
  const auto succ = graph.successors();
  const auto pred = graph.predecessors();
  int succEdges = 0;
  int predEdges = 0;
  for (const auto& list : succ) succEdges += static_cast<int>(list.size());
  for (const auto& list : pred) predEdges += static_cast<int>(list.size());
  EXPECT_EQ(succEdges, predEdges);
  EXPECT_EQ(succEdges, static_cast<int>(graph.deps.size()));
}

}  // namespace
}  // namespace argo::htg
