// Unit tests for affine analysis, dependence tests, privatization and
// loop-parallelism legality.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/dependence.h"

namespace argo::ir {
namespace {

const std::map<std::string, int> kLoopIJ = {{"i", 0}, {"j", 1}};

TEST(Affine, ConstantForm) {
  const AffineForm f = analyzeAffine(*lit(7), kLoopIJ);
  EXPECT_TRUE(f.affine);
  EXPECT_TRUE(f.isConstant());
  EXPECT_EQ(f.constant, 7);
}

TEST(Affine, LoopVarForm) {
  const AffineForm f = analyzeAffine(*var("i"), kLoopIJ);
  EXPECT_TRUE(f.affine);
  EXPECT_EQ(f.coeff("i"), 1);
  EXPECT_EQ(f.constant, 0);
}

TEST(Affine, LinearCombination) {
  // 2*i + 3*j - 5
  const ExprPtr e = sub(add(mul(lit(2), var("i")), mul(var("j"), lit(3))),
                        lit(5));
  const AffineForm f = analyzeAffine(*e, kLoopIJ);
  EXPECT_TRUE(f.affine);
  EXPECT_EQ(f.coeff("i"), 2);
  EXPECT_EQ(f.coeff("j"), 3);
  EXPECT_EQ(f.constant, -5);
}

TEST(Affine, NegationAndCancellation) {
  // (i - i) folds to constant 0 coefficients.
  const ExprPtr e = sub(var("i"), var("i"));
  const AffineForm f = analyzeAffine(*e, kLoopIJ);
  EXPECT_TRUE(f.affine);
  EXPECT_TRUE(f.isConstant());
}

TEST(Affine, NonLoopVariableIsNotAffine) {
  EXPECT_FALSE(analyzeAffine(*var("n"), kLoopIJ).affine);
}

TEST(Affine, ProductOfVarsIsNotAffine) {
  EXPECT_FALSE(analyzeAffine(*mul(var("i"), var("j")), kLoopIJ).affine);
}

TEST(Affine, DivisionIsNotAffine) {
  EXPECT_FALSE(analyzeAffine(*div(var("i"), lit(2)), kLoopIJ).affine);
}

TEST(Usage, CollectsReadsAndWrites) {
  // a[i] = b[i] + c
  const StmtPtr s = assign(ref("a", exprVec(var("i"))),
                           add(ref("b", exprVec(var("i"))), var("c")));
  auto body = block();
  body->append(s->clone());
  const StmtPtr loop = forLoop("i", 0, 4, std::move(body));
  const VarUsage usage = collectUsage(*loop);
  EXPECT_TRUE(usage.writes.contains("a"));
  EXPECT_TRUE(usage.reads.contains("b"));
  EXPECT_TRUE(usage.reads.contains("c"));
  EXPECT_FALSE(usage.reads.contains("i"));  // loop var is private
}

TEST(Usage, ConflictDetection) {
  VarUsage a;
  a.writes = {"x"};
  VarUsage b;
  b.reads = {"x"};
  EXPECT_TRUE(a.conflictsWith(b));   // flow
  EXPECT_TRUE(b.conflictsWith(a));   // anti
  VarUsage c;
  c.reads = {"y"};
  EXPECT_FALSE(a.conflictsWith(c));
}

TEST(Usage, OutputDependence) {
  VarUsage a;
  a.writes = {"x"};
  VarUsage b;
  b.writes = {"x"};
  EXPECT_TRUE(a.conflictsWith(b));
}

ArrayAccess makeAccess(const std::string& array, bool isWrite,
                       std::int64_t coeffI, std::int64_t constant) {
  ArrayAccess access;
  access.array = array;
  access.isWrite = isWrite;
  AffineForm f;
  f.affine = true;
  if (coeffI != 0) f.coeffs["i"] = coeffI;
  f.constant = constant;
  access.subscripts.push_back(f);
  return access;
}

TEST(Dependence, StrongSivDistanceZeroIsIndependent) {
  // a[i] write vs a[i] read: same-iteration only, not loop-carried.
  const auto w = makeAccess("a", true, 1, 0);
  const auto r = makeAccess("a", false, 1, 0);
  EXPECT_EQ(testLoopCarried(w, r, "i", 16), DependenceAnswer::Independent);
}

TEST(Dependence, StrongSivSmallDistanceIsDependent) {
  // a[i] write vs a[i-1] read: distance 1 carried dependence.
  const auto w = makeAccess("a", true, 1, 0);
  const auto r = makeAccess("a", false, 1, -1);
  EXPECT_EQ(testLoopCarried(w, r, "i", 16), DependenceAnswer::Dependent);
}

TEST(Dependence, StrongSivDistanceBeyondTripIsIndependent) {
  const auto w = makeAccess("a", true, 1, 0);
  const auto r = makeAccess("a", false, 1, -20);
  EXPECT_EQ(testLoopCarried(w, r, "i", 16), DependenceAnswer::Independent);
}

TEST(Dependence, StrongSivNonDivisibleIsIndependent) {
  // a[2i] vs a[2i+1]: never equal.
  const auto w = makeAccess("a", true, 2, 0);
  const auto r = makeAccess("a", false, 2, 1);
  EXPECT_EQ(testLoopCarried(w, r, "i", 16), DependenceAnswer::Independent);
}

TEST(Dependence, ZivDifferentConstantsIndependent) {
  const auto w = makeAccess("a", true, 0, 3);
  const auto r = makeAccess("a", false, 0, 4);
  EXPECT_EQ(testLoopCarried(w, r, "i", 16), DependenceAnswer::Independent);
}

TEST(Dependence, ZivSameConstantDependent) {
  const auto w = makeAccess("a", true, 0, 3);
  const auto r = makeAccess("a", false, 0, 3);
  EXPECT_EQ(testLoopCarried(w, r, "i", 16), DependenceAnswer::Dependent);
}

TEST(Dependence, GcdTestProvesIndependence) {
  // 2i vs 4i' + 1: gcd(2,4)=2 does not divide 1.
  const auto w = makeAccess("a", true, 2, 0);
  const auto r = makeAccess("a", false, 4, 1);
  EXPECT_EQ(testLoopCarried(w, r, "i", 16), DependenceAnswer::Independent);
}

TEST(Dependence, ReadsNeverConflict) {
  const auto r1 = makeAccess("a", false, 1, 0);
  const auto r2 = makeAccess("a", false, 1, -1);
  EXPECT_EQ(testLoopCarried(r1, r2, "i", 16), DependenceAnswer::Independent);
}

TEST(Dependence, DifferentArraysIndependent) {
  const auto w = makeAccess("a", true, 1, 0);
  const auto r = makeAccess("b", false, 1, 0);
  EXPECT_EQ(testLoopCarried(w, r, "i", 16), DependenceAnswer::Independent);
}

TEST(Dependence, NonAffineIsDependent) {
  auto w = makeAccess("a", true, 1, 0);
  ArrayAccess r;
  r.array = "a";
  r.isWrite = false;
  r.subscripts.push_back(AffineForm::nonAffine());
  EXPECT_EQ(testLoopCarried(w, r, "i", 16), DependenceAnswer::Dependent);
}

TEST(Dependence, MultiDimOneProvingDimSuffices) {
  // a[i][0] vs a[i][1]: second dim proves independence.
  ArrayAccess w = makeAccess("a", true, 1, 0);
  w.subscripts.push_back(AffineForm::constantForm(0));
  ArrayAccess r = makeAccess("a", false, 1, 0);
  r.subscripts.push_back(AffineForm::constantForm(1));
  EXPECT_EQ(testLoopCarried(w, r, "i", 16), DependenceAnswer::Independent);
}

// ---- Privatization ----

std::unique_ptr<Block> parseLikeBody(std::vector<StmtPtr> stmts) {
  return block(std::move(stmts));
}

TEST(Privatization, WriteBeforeReadIsPrivate) {
  // t = a[i]; b[i] = t * 2
  std::vector<StmtPtr> stmts;
  stmts.push_back(assign(ref("t"), ref("a", exprVec(var("i")))));
  stmts.push_back(
      assign(ref("b", exprVec(var("i"))), mul(var("t"), lit(2))));
  EXPECT_TRUE(isScalarPrivatizable(*parseLikeBody(std::move(stmts)), "t"));
}

TEST(Privatization, ReadBeforeWriteIsNotPrivate) {
  // b[i] = t; t = a[i]
  std::vector<StmtPtr> stmts;
  stmts.push_back(assign(ref("b", exprVec(var("i"))), var("t")));
  stmts.push_back(assign(ref("t"), ref("a", exprVec(var("i")))));
  EXPECT_FALSE(isScalarPrivatizable(*parseLikeBody(std::move(stmts)), "t"));
}

TEST(Privatization, ReadModifyWriteIsNotPrivate) {
  std::vector<StmtPtr> stmts;
  stmts.push_back(assign(ref("t"), add(var("t"), lit(1))));
  EXPECT_FALSE(isScalarPrivatizable(*parseLikeBody(std::move(stmts)), "t"));
}

TEST(Privatization, InnerLoopWriteFirstIsPrivate) {
  // for k { t = ...; use t } — t is private at the outer level too.
  std::vector<StmtPtr> inner;
  inner.push_back(assign(ref("t"), var("k")));
  inner.push_back(assign(ref("b", exprVec(var("k"))), var("t")));
  std::vector<StmtPtr> outer;
  outer.push_back(forLoop("k", 0, 4, block(std::move(inner))));
  EXPECT_TRUE(isScalarPrivatizable(*parseLikeBody(std::move(outer)), "t"));
}

TEST(Privatization, KilledBeforeInnerAccumulationIsPrivate) {
  // t = 0; for k { t = t + 1 } — t IS private at the enclosing level
  // (killed before the loop), the accumulation is fine.
  std::vector<StmtPtr> inner;
  inner.push_back(assign(ref("t"), add(var("t"), lit(1))));
  std::vector<StmtPtr> outer;
  outer.push_back(assign(ref("t"), lit(0)));
  outer.push_back(forLoop("k", 0, 4, block(std::move(inner))));
  EXPECT_TRUE(isScalarPrivatizable(*parseLikeBody(std::move(outer)), "t"));
}

TEST(Privatization, InnerAccumulatorWithoutKillIsNotPrivate) {
  // for k { t = t + 1 } with no preceding kill: reads a stale value.
  std::vector<StmtPtr> inner;
  inner.push_back(assign(ref("t"), add(var("t"), lit(1))));
  std::vector<StmtPtr> outer;
  outer.push_back(forLoop("k", 0, 4, block(std::move(inner))));
  EXPECT_FALSE(isScalarPrivatizable(*parseLikeBody(std::move(outer)), "t"));
}

TEST(Privatization, ConditionReadIsNotPrivate) {
  // if (t > 0) { t = 1 }: the condition reads the stale value.
  std::vector<StmtPtr> thenStmts;
  thenStmts.push_back(assign(ref("t"), lit(1)));
  std::vector<StmtPtr> outer;
  outer.push_back(ifStmt(bin(BinOpKind::Gt, var("t"), lit(0)),
                         block(std::move(thenStmts))));
  EXPECT_FALSE(isScalarPrivatizable(*parseLikeBody(std::move(outer)), "t"));
}

TEST(Privatization, BothBranchesKillIsKill) {
  // if (c) { t = 1 } else { t = 2 }; y = t — private.
  std::vector<StmtPtr> thenStmts;
  thenStmts.push_back(assign(ref("t"), lit(1)));
  std::vector<StmtPtr> elseStmts;
  elseStmts.push_back(assign(ref("t"), lit(2)));
  std::vector<StmtPtr> outer;
  outer.push_back(ifStmt(bin(BinOpKind::Gt, var("c"), lit(0)),
                         block(std::move(thenStmts)),
                         block(std::move(elseStmts))));
  outer.push_back(assign(ref("y"), var("t")));
  EXPECT_TRUE(isScalarPrivatizable(*parseLikeBody(std::move(outer)), "t"));
}

TEST(Privatization, OneBranchKillThenReadIsNotPrivate) {
  // if (c) { t = 1 }; y = t — else path reads stale t.
  std::vector<StmtPtr> thenStmts;
  thenStmts.push_back(assign(ref("t"), lit(1)));
  std::vector<StmtPtr> outer;
  outer.push_back(ifStmt(bin(BinOpKind::Gt, var("c"), lit(0)),
                         block(std::move(thenStmts))));
  outer.push_back(assign(ref("y"), var("t")));
  EXPECT_FALSE(isScalarPrivatizable(*parseLikeBody(std::move(outer)), "t"));
}

// ---- isLoopParallel ----

Function makeFnWithArrays() {
  Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {16}), VarRole::Temp);
  fn.declare("b", Type::array(ScalarKind::Float64, {16}), VarRole::Temp);
  fn.declare("t", Type::float64(), VarRole::Temp);
  fn.declare("out", Type::float64(), VarRole::Output);
  return fn;
}

TEST(LoopParallel, ElementwiseMapIsParallel) {
  Function fn = makeFnWithArrays();
  auto body = block();
  body->append(assign(ref("a", exprVec(var("i"))),
                      mul(ref("b", exprVec(var("i"))), lit(2))));
  const StmtPtr loop = forLoop("i", 0, 16, std::move(body));
  EXPECT_TRUE(isLoopParallel(cast<For>(*loop), fn));
}

TEST(LoopParallel, RecurrenceIsNotParallel) {
  Function fn = makeFnWithArrays();
  auto body = block();
  body->append(assign(ref("a", exprVec(var("i"))),
                      ref("a", exprVec(sub(var("i"), lit(1))))));
  const StmtPtr loop = forLoop("i", 1, 16, std::move(body));
  EXPECT_FALSE(isLoopParallel(cast<For>(*loop), fn));
}

TEST(LoopParallel, ScalarReductionIsNotParallel) {
  Function fn = makeFnWithArrays();
  auto body = block();
  body->append(assign(ref("t"), add(var("t"), ref("a", exprVec(var("i"))))));
  const StmtPtr loop = forLoop("i", 0, 16, std::move(body));
  EXPECT_FALSE(isLoopParallel(cast<For>(*loop), fn));
}

TEST(LoopParallel, PrivatizableScalarIsParallel) {
  Function fn = makeFnWithArrays();
  auto body = block();
  body->append(assign(ref("t"), ref("b", exprVec(var("i")))));
  body->append(assign(ref("a", exprVec(var("i"))), mul(var("t"), var("t"))));
  const StmtPtr loop = forLoop("i", 0, 16, std::move(body));
  EXPECT_TRUE(isLoopParallel(cast<For>(*loop), fn));
}

TEST(LoopParallel, OutputScalarWriteIsNotParallel) {
  Function fn = makeFnWithArrays();
  auto body = block();
  body->append(assign(ref("out"), ref("b", exprVec(var("i")))));
  const StmtPtr loop = forLoop("i", 0, 16, std::move(body));
  // `out` has VarRole::Output: never treated as private.
  EXPECT_FALSE(isLoopParallel(cast<For>(*loop), fn));
}

TEST(LoopParallel, StridedDisjointWritesAreParallel) {
  Function fn = makeFnWithArrays();
  // a[2i] = b[2i+1]: writes/reads provably disjoint.
  auto body = block();
  body->append(assign(ref("a", exprVec(mul(lit(2), var("i")))),
                      ref("a", exprVec(add(mul(lit(2), var("i")), lit(1))))));
  const StmtPtr loop = forLoop("i", 0, 8, std::move(body));
  EXPECT_TRUE(isLoopParallel(cast<For>(*loop), fn));
}

TEST(LoopParallel, SingleIterationAlwaysParallel) {
  Function fn = makeFnWithArrays();
  auto body = block();
  body->append(assign(ref("a", exprVec(lit(0))),
                      ref("a", exprVec(lit(0)))));
  const StmtPtr loop = forLoop("i", 0, 1, std::move(body));
  EXPECT_TRUE(isLoopParallel(cast<For>(*loop), fn));
}

TEST(CollectAccesses, FindsAllArrayAccesses) {
  auto body = block();
  body->append(assign(ref("a", exprVec(var("i"))),
                      add(ref("b", exprVec(var("i"))), var("t"))));
  std::map<std::string, int> loopVars = {{"i", 0}};
  const auto accesses = collectArrayAccesses(*body, loopVars);
  // a (write), b (read), t (scalar read).
  ASSERT_EQ(accesses.size(), 3u);
  int writes = 0;
  for (const auto& access : accesses) writes += access.isWrite ? 1 : 0;
  EXPECT_EQ(writes, 1);
}

}  // namespace
}  // namespace argo::ir
