// Golden-model tests: the compiled use-case diagrams must reproduce the
// hand-written C++ references bit-for-bit (up to float tolerance).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/egpws.h"
#include "apps/polka.h"
#include "apps/weaa.h"
#include "support/rng.h"

namespace argo::apps {
namespace {

TEST(Egpws, TerrainIsDeterministicAndSane) {
  const EgpwsConfig config;
  const auto t1 = makeTerrain(config);
  const auto t2 = makeTerrain(config);
  ASSERT_EQ(t1.size(), static_cast<std::size_t>(config.gridH * config.gridW));
  EXPECT_EQ(t1, t2);
  for (double e : t1) {
    EXPECT_GE(e, 0.0);
    EXPECT_LT(e, 2000.0);
  }
}

TEST(Egpws, DiagramMatchesReference) {
  const EgpwsConfig config;
  const auto terrain = makeTerrain(config);
  model::CompiledModel model = buildEgpwsDiagram(config).compile();
  const ir::Evaluator evaluator(*model.fn);

  support::Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    EgpwsInputs inputs;
    inputs.x = 2.0 + rng.uniformDouble() * 28.0;
    inputs.y = 2.0 + rng.uniformDouble() * 28.0;
    inputs.altitude = 200.0 + rng.uniformDouble() * 1500.0;
    inputs.groundSpeed = rng.uniformDouble() * 400.0;  // may saturate
    inputs.verticalSpeed = rng.uniformDouble() * 30.0 - 15.0;
    inputs.heading = rng.uniformDouble() * 6.28;

    ir::Environment env = model.makeEnvironment();
    setEgpwsInputs(env, inputs);
    evaluator.run(env);
    const EgpwsOutputs expected = egpwsReference(config, terrain, inputs);
    EXPECT_NEAR(env.at("min_clearance_out").getFloat(),
                expected.minClearance, 1e-6)
        << "trial " << trial;
    EXPECT_DOUBLE_EQ(env.at("alert_out").getFloat(), expected.alert)
        << "trial " << trial;
  }
}

TEST(Egpws, AlertLevelsClassifyCorrectly) {
  const EgpwsConfig config;
  const auto terrain = makeTerrain(config);
  // Very high: no alert. Mid: caution. Descending into terrain: warning.
  EgpwsInputs high;
  high.altitude = 5000.0;
  high.verticalSpeed = 0.0;
  EXPECT_DOUBLE_EQ(egpwsReference(config, terrain, high).alert, 0.0);

  EgpwsInputs low;
  low.altitude = 500.0;
  low.verticalSpeed = -30.0;
  const EgpwsOutputs out = egpwsReference(config, terrain, low);
  EXPECT_GT(out.alert, 0.0);
}

TEST(Egpws, FirSmoothingAffectsSecondStep) {
  // The FIR has memory: feeding two different vs values must produce a
  // different second-step result than a constant feed.
  const EgpwsConfig config;
  model::CompiledModel model = buildEgpwsDiagram(config).compile();
  const ir::Evaluator evaluator(*model.fn);
  ir::Environment env = model.makeEnvironment();
  EgpwsInputs inputs;
  setEgpwsInputs(env, inputs);
  evaluator.run(env);
  const double first = env.at("min_clearance_out").getFloat();
  evaluator.run(env);  // same inputs, FIR state now nonzero
  const double second = env.at("min_clearance_out").getFloat();
  EXPECT_NE(first, second);
}

TEST(Weaa, DiagramMatchesReference) {
  const WeaaConfig config;
  model::CompiledModel model = buildWeaaDiagram(config).compile();
  const ir::Evaluator evaluator(*model.fn);

  support::Rng rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    WeaaInputs inputs;
    inputs.oy = -60.0 + rng.uniformDouble() * 120.0;
    inputs.oz = -10.0 + rng.uniformDouble() * 20.0;
    inputs.lx = rng.uniformDouble() * 300.0;
    inputs.lz = rng.uniformDouble() * 20.0;
    inputs.gamma0 = 150.0 + rng.uniformDouble() * 400.0;

    ir::Environment env = model.makeEnvironment();
    setWeaaInputs(env, inputs);
    evaluator.run(env);
    const WeaaOutputs expected = weaaReference(config, inputs);
    EXPECT_NEAR(env.at("max_severity_out").getFloat(), expected.maxSeverity,
                1e-9)
        << "trial " << trial;
    EXPECT_DOUBLE_EQ(env.at("conflict_out").getFloat(), expected.conflict);
    EXPECT_NEAR(env.at("best_score_out").getFloat(), expected.bestScore,
                1e-9);
    for (int m = 0; m < config.candidates; ++m) {
      EXPECT_NEAR(env.at("scores_out").getFloat(m),
                  expected.scores[static_cast<std::size_t>(m)], 1e-9)
          << "candidate " << m;
    }
  }
}

TEST(Weaa, DefaultScenarioIsAConflict) {
  const WeaaConfig config;
  const WeaaOutputs out = weaaReference(config, WeaaInputs{});
  EXPECT_EQ(out.conflict, 1.0);
  // The advisory must find something strictly better than staying put.
  EXPECT_LT(out.bestScore, out.maxSeverity);
}

TEST(Weaa, SeverityDecaysWithDistance) {
  const WeaaConfig config;
  WeaaInputs near;
  WeaaInputs far = near;
  far.oy = -500.0;
  EXPECT_GT(weaaReference(config, near).maxSeverity,
            weaaReference(config, far).maxSeverity);
}

TEST(Polka, FrameIsDeterministic) {
  const PolkaConfig config;
  EXPECT_EQ(makePolkaFrame(config, 9), makePolkaFrame(config, 9));
  EXPECT_NE(makePolkaFrame(config, 9), makePolkaFrame(config, 10));
}

TEST(Polka, DiagramMatchesReference) {
  const PolkaConfig config;
  model::CompiledModel model = buildPolkaDiagram(config).compile();
  const ir::Evaluator evaluator(*model.fn);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto frame = makePolkaFrame(config, seed);
    ir::Environment env = model.makeEnvironment();
    setPolkaInputs(env, config, frame);
    evaluator.run(env);
    const PolkaOutputs expected = polkaReference(config, frame);
    EXPECT_NEAR(env.at("defect_count_out").getFloat(), expected.defectCount,
                1e-9)
        << "seed " << seed;
    EXPECT_NEAR(env.at("max_dolp_out").getFloat(), expected.maxDolp, 1e-9)
        << "seed " << seed;
  }
}

TEST(Polka, StressedFrameHasDefectsUnstressedDoesNot) {
  const PolkaConfig config;
  const auto frame = makePolkaFrame(config, 5);
  const PolkaOutputs stressed = polkaReference(config, frame);
  EXPECT_GT(stressed.defectCount, 0.0);
  EXPECT_GT(stressed.maxDolp, config.dolpThreshold);

  // A uniform (unpolarized) frame must be defect-free.
  std::vector<double> flat(frame.size(), 0.5);
  const PolkaOutputs clean = polkaReference(config, flat);
  EXPECT_DOUBLE_EQ(clean.defectCount, 0.0);
}

TEST(Polka, DefectCountScalesWithStressRegion) {
  PolkaConfig small;
  small.mosaicH = 32;
  small.mosaicW = 32;
  PolkaConfig large = small;
  large.mosaicH = 64;
  large.mosaicW = 64;
  const PolkaOutputs a = polkaReference(small, makePolkaFrame(small, 1));
  const PolkaOutputs b = polkaReference(large, makePolkaFrame(large, 1));
  // Same relative ellipse on 4x the pixels: more defect pixels.
  EXPECT_GT(b.defectCount, a.defectCount);
}

TEST(Apps, AllDiagramsCompileAndValidate) {
  EXPECT_TRUE(ir::validate(*buildEgpwsDiagram(EgpwsConfig{}).compile().fn)
                  .empty());
  EXPECT_TRUE(ir::validate(*buildWeaaDiagram(WeaaConfig{}).compile().fn)
                  .empty());
  EXPECT_TRUE(ir::validate(*buildPolkaDiagram(PolkaConfig{}).compile().fn)
                  .empty());
}

TEST(Apps, ConfigurableSizesCompile) {
  EgpwsConfig egpws;
  egpws.gridH = 16;
  egpws.gridW = 24;
  egpws.samples = 12;
  EXPECT_NO_THROW((void)buildEgpwsDiagram(egpws).compile());

  WeaaConfig weaa;
  weaa.horizon = 16;
  weaa.candidates = 4;
  EXPECT_NO_THROW((void)buildWeaaDiagram(weaa).compile());

  PolkaConfig polka;
  polka.mosaicH = 16;
  polka.mosaicW = 16;
  EXPECT_NO_THROW((void)buildPolkaDiagram(polka).compile());
}

}  // namespace
}  // namespace argo::apps
