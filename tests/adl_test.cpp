// Unit tests for the ADL platform models and the textual ADL parser.
#include <gtest/gtest.h>

#include "adl/parser.h"
#include "adl/platform.h"
#include "support/diagnostics.h"

namespace argo::adl {
namespace {

TEST(CoreModel, BuiltinsHavePositiveCosts) {
  for (const CoreModel& core :
       {CoreModel::xentiumDsp(), CoreModel::leon3(),
        CoreModel::mathAccelerator()}) {
    for (int i = 0; i < ir::kOpClassCount; ++i) {
      EXPECT_GT(core.cyclesFor(static_cast<ir::OpClass>(i)), 0)
          << core.name << " op " << i;
    }
    EXPECT_GT(core.localAccessCycles, 0);
    EXPECT_GT(core.spmAccessCycles, 0);
    EXPECT_GT(core.spmBytes, 0);
  }
}

TEST(CoreModel, AcceleratorIsFasterAtMath) {
  const CoreModel leon = CoreModel::leon3();
  const CoreModel accel = CoreModel::mathAccelerator();
  EXPECT_LT(accel.cyclesFor(ir::OpClass::MathFunc),
            leon.cyclesFor(ir::OpClass::MathFunc));
}

TEST(Bus, RoundRobinScalesWithContenders) {
  BusModel bus;
  bus.arbitration = Arbitration::RoundRobin;
  bus.baseAccessCycles = 10;
  const Cycles alone = bus.worstCaseAccessCycles(1, 8);
  const Cycles two = bus.worstCaseAccessCycles(2, 8);
  const Cycles eight = bus.worstCaseAccessCycles(8, 8);
  EXPECT_EQ(alone, 10);
  EXPECT_EQ(two, 20);
  EXPECT_EQ(eight, 80);
}

TEST(Bus, RoundRobinClampsContenders) {
  BusModel bus;
  bus.baseAccessCycles = 10;
  EXPECT_EQ(bus.worstCaseAccessCycles(0, 8), 10);    // clamped to 1
  EXPECT_EQ(bus.worstCaseAccessCycles(99, 8),
            bus.worstCaseAccessCycles(8, 8));        // clamped to cores
}

TEST(Bus, TdmaIsContenderIndependent) {
  BusModel bus;
  bus.arbitration = Arbitration::Tdma;
  bus.baseAccessCycles = 10;
  bus.slotCycles = 12;
  EXPECT_EQ(bus.worstCaseAccessCycles(1, 8), bus.worstCaseAccessCycles(8, 8));
  EXPECT_EQ(bus.worstCaseAccessCycles(1, 8), 8 * 12 + 10);
}

TEST(Bus, TdmaWorseThanUncontendedRoundRobin) {
  BusModel rr;
  rr.baseAccessCycles = 10;
  BusModel tdma = rr;
  tdma.arbitration = Arbitration::Tdma;
  tdma.slotCycles = 12;
  EXPECT_GT(tdma.worstCaseAccessCycles(1, 8), rr.worstCaseAccessCycles(1, 8));
}

TEST(Bus, TransferScalesWithBytes) {
  BusModel bus;
  bus.baseAccessCycles = 10;
  bus.wordBytes = 4;
  EXPECT_EQ(bus.worstCaseTransferCycles(0, 1, 8), 0);
  EXPECT_EQ(bus.worstCaseTransferCycles(4, 1, 8), 10);
  EXPECT_EQ(bus.worstCaseTransferCycles(5, 1, 8), 20);  // 2 beats
  EXPECT_EQ(bus.worstCaseTransferCycles(16, 1, 8), 40);
}

TEST(Noc, HopDistanceIsManhattan) {
  NocModel noc;
  noc.meshWidth = 4;
  noc.meshHeight = 4;
  EXPECT_EQ(noc.hopDistance(0, 0), 0);
  EXPECT_EQ(noc.hopDistance(0, 3), 3);
  EXPECT_EQ(noc.hopDistance(0, 15), 6);
  EXPECT_EQ(noc.hopDistance(5, 10), 2);
}

TEST(Noc, AccessGrowsWithDistanceAndContenders) {
  NocModel noc;
  noc.meshWidth = 4;
  noc.meshHeight = 4;
  noc.memTile = 0;
  const Cycles near1 = noc.worstCaseAccessCycles(1, 1);
  const Cycles far1 = noc.worstCaseAccessCycles(15, 1);
  const Cycles near4 = noc.worstCaseAccessCycles(1, 4);
  EXPECT_GT(far1, near1);
  EXPECT_GT(near4, near1);
}

TEST(Noc, TransferWormholePipelines) {
  NocModel noc;
  // Moving twice the bytes should NOT cost twice the head latency.
  const Cycles small = noc.worstCaseTransferCycles(64, 0, 15, 1);
  const Cycles large = noc.worstCaseTransferCycles(128, 0, 15, 1);
  EXPECT_LT(large, 2 * small);
  EXPECT_GT(large, small);
}

TEST(Platform, BuiltinsAreWellFormed) {
  const Platform bus = makeRecoreXentiumBus(8);
  EXPECT_EQ(bus.coreCount(), 8);
  EXPECT_TRUE(bus.isBus());
  EXPECT_FALSE(bus.isNoc());
  EXPECT_GT(bus.sharedMemBytes(), 0);

  const Platform noc = makeKitLeon3Inoc(4, 4);
  EXPECT_EQ(noc.coreCount(), 16);
  EXPECT_TRUE(noc.isNoc());
}

TEST(Platform, AcceleratorVariantDiffersOnLastTile) {
  const Platform plain = makeKitLeon3Inoc(2, 2, false);
  const Platform accel = makeKitLeon3Inoc(2, 2, true);
  EXPECT_EQ(plain.tile(3).core.name, "leon3");
  EXPECT_EQ(accel.tile(3).core.name, "math_accel");
}

TEST(Platform, SharedAccessMonotoneInContenders) {
  for (const Platform& p :
       {makeRecoreXentiumBus(8), makeKitLeon3Inoc(4, 4)}) {
    Cycles prev = 0;
    for (int contenders = 1; contenders <= p.coreCount(); ++contenders) {
      const Cycles c = p.sharedAccessWorstCase(p.coreCount() - 1, contenders);
      EXPECT_GE(c, prev);
      prev = c;
    }
  }
}

TEST(Platform, WithCoreCountRestricts) {
  const Platform p = makeRecoreXentiumBus(8).withCoreCount(3);
  EXPECT_EQ(p.coreCount(), 3);
  EXPECT_THROW(p.withCoreCount(0), support::ToolchainError);
  EXPECT_THROW(p.withCoreCount(4), support::ToolchainError);
}

TEST(Platform, EmptyTilesRejected) {
  EXPECT_THROW(Platform("x", {}, BusModel{}, 1024), support::ToolchainError);
}

TEST(Platform, TooManyNocTilesRejected) {
  NocModel noc;
  noc.meshWidth = 1;
  noc.meshHeight = 1;
  std::vector<Tile> tiles = {Tile{0, CoreModel::leon3()},
                             Tile{1, CoreModel::leon3()}};
  EXPECT_THROW(Platform("x", std::move(tiles), noc, 1024),
               support::ToolchainError);
}

// ---- ADL text format ----

TEST(AdlParser, RoundTripsBusPlatform) {
  const Platform original = makeRecoreXentiumBus(4, Arbitration::Tdma);
  const std::string text = toAdlText(original);
  const Platform parsed = parseAdl(text);
  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_EQ(parsed.coreCount(), original.coreCount());
  EXPECT_TRUE(parsed.isBus());
  EXPECT_EQ(parsed.bus().arbitration, Arbitration::Tdma);
  EXPECT_EQ(parsed.bus().baseAccessCycles, original.bus().baseAccessCycles);
  EXPECT_EQ(parsed.tile(2).core.name, original.tile(2).core.name);
  EXPECT_EQ(parsed.sharedMemBytes(), original.sharedMemBytes());
  // Second round trip is textual fixpoint.
  EXPECT_EQ(toAdlText(parsed), text);
}

TEST(AdlParser, RoundTripsNocPlatform) {
  const Platform original = makeKitLeon3Inoc(4, 4, true);
  const Platform parsed = parseAdl(toAdlText(original));
  EXPECT_TRUE(parsed.isNoc());
  EXPECT_EQ(parsed.noc().meshWidth, 4);
  EXPECT_EQ(parsed.coreCount(), 16);
  EXPECT_EQ(parsed.tile(15).core.name, "math_accel");
  // Timing queries agree after the round trip.
  EXPECT_EQ(parsed.sharedAccessWorstCase(15, 3),
            original.sharedAccessWorstCase(15, 3));
}

TEST(AdlParser, AcceptsCommentsAndBlanks) {
  const Platform p = parseAdl(
      "# a demo platform\n"
      "platform demo\n"
      "\n"
      "shared_memory 1048576  # one MiB\n"
      "interconnect bus round_robin base_access 8 slot 10 word_bytes 4\n"
      "core tiny int_alu 1 int_mul 1 int_div 1 float_add 1 float_mul 1 "
      "float_div 1 math_func 1 compare 1 select 1 branch 1 loop_step 1 "
      "local_access 1 spm_access 1 spm_bytes 1024\n"
      "tile 0 tiny\n");
  EXPECT_EQ(p.name(), "demo");
  EXPECT_EQ(p.coreCount(), 1);
  EXPECT_EQ(p.tile(0).core.spmBytes, 1024);
}

TEST(AdlParser, ErrorsCarryLineNumbers) {
  try {
    (void)parseAdl("platform demo\nbogus_directive 3\n");
    FAIL() << "expected ToolchainError";
  } catch (const support::ToolchainError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(AdlParser, RejectsMissingSections) {
  EXPECT_THROW(parseAdl("platform p\n"), support::ToolchainError);
  EXPECT_THROW(parseAdl("shared_memory 10\n"), support::ToolchainError);
}

TEST(AdlParser, RejectsUnknownCoreReference) {
  EXPECT_THROW(
      parseAdl("platform p\nshared_memory 10\n"
               "interconnect bus round_robin base_access 8 slot 10 "
               "word_bytes 4\n"
               "tile 0 missing_core\n"),
      support::ToolchainError);
}

TEST(AdlParser, RejectsDuplicateTile) {
  const std::string core =
      "core c int_alu 1 int_mul 1 int_div 1 float_add 1 float_mul 1 "
      "float_div 1 math_func 1 compare 1 select 1 branch 1 loop_step 1 "
      "local_access 1 spm_access 1 spm_bytes 64\n";
  EXPECT_THROW(
      parseAdl("platform p\nshared_memory 10\n"
               "interconnect bus round_robin base_access 8 slot 10 "
               "word_bytes 4\n" +
               core + "tile 0 c\ntile 0 c\n"),
      support::ToolchainError);
}

TEST(AdlParser, RejectsBadArbitration) {
  EXPECT_THROW(
      parseAdl("platform p\nshared_memory 10\n"
               "interconnect bus lottery base_access 8 slot 10 word_bytes 4\n"),
      support::ToolchainError);
}

TEST(AdlParser, RejectsNonContiguousTiles) {
  const std::string core =
      "core c int_alu 1 int_mul 1 int_div 1 float_add 1 float_mul 1 "
      "float_div 1 math_func 1 compare 1 select 1 branch 1 loop_step 1 "
      "local_access 1 spm_access 1 spm_bytes 64\n";
  EXPECT_THROW(
      parseAdl("platform p\nshared_memory 10\n"
               "interconnect bus round_robin base_access 8 slot 10 "
               "word_bytes 4\n" +
               core + "tile 5 c\n"),
      support::ToolchainError);
}

}  // namespace
}  // namespace argo::adl
