// Unit tests for the system-level WCET analysis: MHP and interference.
#include <gtest/gtest.h>

#include "htg/htg.h"
#include "ir/builder.h"
#include "par/parallel_program.h"
#include "sched/scheduler.h"
#include "syswcet/system_wcet.h"

namespace argo::syswcet {
namespace {

using ir::ScalarKind;
using ir::Type;
using ir::VarRole;

/// Two independent parallel loops (no cross dependence) + a joining sum.
std::unique_ptr<ir::Function> makeForkJoinFn() {
  auto fn = std::make_unique<ir::Function>("forkjoin");
  fn->declare("u", Type::array(ScalarKind::Float64, {16}), VarRole::Input);
  fn->declare("a", Type::array(ScalarKind::Float64, {16}), VarRole::Temp);
  fn->declare("b", Type::array(ScalarKind::Float64, {16}), VarRole::Temp);
  fn->declare("y", Type::array(ScalarKind::Float64, {16}), VarRole::Output);
  auto loop = [&](const char* out, double k, const char* v) {
    auto body = ir::block();
    body->append(ir::assign(
        ir::ref(out, ir::exprVec(ir::var(v))),
        ir::mul(ir::ref("u", ir::exprVec(ir::var(v))), ir::flt(k))));
    return ir::forLoop(v, 0, 16, std::move(body));
  };
  fn->body().append(loop("a", 2.0, "i0"));
  fn->body().append(loop("b", 3.0, "i1"));
  auto body = ir::block();
  body->append(ir::assign(
      ir::ref("y", ir::exprVec(ir::var("i2"))),
      ir::add(ir::ref("a", ir::exprVec(ir::var("i2"))),
              ir::ref("b", ir::exprVec(ir::var("i2"))))));
  fn->body().append(ir::forLoop("i2", 0, 16, std::move(body)));
  return fn;
}

struct Built {
  std::unique_ptr<ir::Function> fn;
  htg::TaskGraph graph;
  adl::Platform platform;
  std::vector<sched::TaskTiming> timings;
  par::ParallelProgram program;

  explicit Built(int chunks = 1, int cores = 4)
      : fn(makeForkJoinFn()),
        graph(htg::expand(htg::buildHtg(*fn), htg::ExpandOptions{chunks})),
        platform(adl::makeRecoreXentiumBus(cores)) {
    sched::Scheduler scheduler(graph, platform);
    const sched::Schedule schedule = scheduler.run(sched::SchedOptions{});
    timings = scheduler.timings();
    program = par::buildParallelProgram(graph, schedule, platform);
  }
};

TEST(Mhp, OrderedTasksAreNotMhp) {
  Built built;
  const auto mhp = mayHappenInParallel(built.program);
  // Task 2 (join) depends on 0 and 1: never MHP with them.
  EXPECT_FALSE(mhp[0][2]);
  EXPECT_FALSE(mhp[2][0]);
  EXPECT_FALSE(mhp[1][2]);
}

TEST(Mhp, IndependentTasksOnDifferentTilesAreMhp) {
  Built built;
  const auto mhp = mayHappenInParallel(built.program);
  const int tile0 = built.program.schedule.placements[0].tile;
  const int tile1 = built.program.schedule.placements[1].tile;
  if (tile0 != tile1) {
    EXPECT_TRUE(mhp[0][1]);
    EXPECT_TRUE(mhp[1][0]);  // symmetric
  } else {
    // Same core: program order serializes them.
    EXPECT_FALSE(mhp[0][1]);
  }
}

TEST(Mhp, NoSelfMhp) {
  Built built;
  const auto mhp = mayHappenInParallel(built.program);
  for (std::size_t i = 0; i < mhp.size(); ++i) EXPECT_FALSE(mhp[i][i]);
}

TEST(SystemWcet, BoundsAreOrdered) {
  // uncontended (impossible) <= MHP-refined <= all-contenders.
  Built built(/*chunks=*/4);
  const SystemWcet refined = analyzeSystem(
      built.program, built.platform, built.timings,
      InterferenceMethod::MhpRefined);
  const SystemWcet pessimistic = analyzeSystem(
      built.program, built.platform, built.timings,
      InterferenceMethod::AllContenders);
  EXPECT_LE(refined.makespan, pessimistic.makespan);
  EXPECT_GT(refined.makespan, 0);
}

TEST(SystemWcet, TaskWindowsRespectHappensBefore) {
  Built built(/*chunks=*/2);
  const SystemWcet result = analyzeSystem(built.program, built.platform,
                                          built.timings);
  for (const htg::Dep& dep : built.graph.deps) {
    const TaskBound& from = result.tasks[static_cast<std::size_t>(dep.from)];
    const TaskBound& to = result.tasks[static_cast<std::size_t>(dep.to)];
    EXPECT_LE(from.finish, to.start)
        << "dep " << dep.from << "->" << dep.to;
  }
}

TEST(SystemWcet, InflationIncludesInterferenceAndSync) {
  Built built(/*chunks=*/4);
  const SystemWcet result = analyzeSystem(built.program, built.platform,
                                          built.timings);
  for (std::size_t i = 0; i < result.tasks.size(); ++i) {
    const Cycles codeLevel =
        built.timings[i].wcetByTile[static_cast<std::size_t>(
            built.program.schedule.placements[i].tile)];
    EXPECT_GE(result.tasks[i].inflated, codeLevel);
    EXPECT_GE(result.tasks[i].interference, 0);
  }
}

TEST(SystemWcet, SingleCoreHasNoInterference) {
  Built built(/*chunks=*/1, /*cores=*/1);
  const SystemWcet result = analyzeSystem(built.program, built.platform,
                                          built.timings);
  for (const TaskBound& t : result.tasks) {
    EXPECT_EQ(t.contenders, 1);
    EXPECT_EQ(t.interference, 0);
  }
}

TEST(SystemWcet, ContendersBoundedByCoreCount) {
  Built built(/*chunks=*/8, /*cores=*/4);
  const SystemWcet result = analyzeSystem(built.program, built.platform,
                                          built.timings);
  for (const TaskBound& t : result.tasks) {
    EXPECT_LE(t.contenders, 4);
    EXPECT_GE(t.contenders, 1);
  }
}

TEST(SystemWcet, MakespanIsMaxFinish) {
  Built built(/*chunks=*/2);
  const SystemWcet result = analyzeSystem(built.program, built.platform,
                                          built.timings);
  Cycles maxFinish = 0;
  for (const TaskBound& t : result.tasks) {
    maxFinish = std::max(maxFinish, t.finish);
  }
  EXPECT_EQ(result.makespan, maxFinish);
}

TEST(SystemWcet, TdmaBoundIndependentOfMhp) {
  // On a TDMA bus the two methods price accesses identically (the wheel
  // does not care about live contenders), so the bounds coincide.
  auto fn = makeForkJoinFn();
  const adl::Platform tdma =
      adl::makeRecoreXentiumBus(4, adl::Arbitration::Tdma);
  const htg::TaskGraph graph =
      htg::expand(htg::buildHtg(*fn), htg::ExpandOptions{4});
  sched::Scheduler scheduler(graph, tdma);
  const sched::Schedule schedule = scheduler.run(sched::SchedOptions{});
  const par::ParallelProgram program =
      par::buildParallelProgram(graph, schedule, tdma);
  const SystemWcet refined = analyzeSystem(program, tdma,
                                           scheduler.timings(),
                                           InterferenceMethod::MhpRefined);
  const SystemWcet pessimistic = analyzeSystem(
      program, tdma, scheduler.timings(), InterferenceMethod::AllContenders);
  EXPECT_EQ(refined.makespan, pessimistic.makespan);
}

}  // namespace
}  // namespace argo::syswcet
