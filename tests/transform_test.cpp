// Unit tests for the transformation passes: behaviour, legality guards,
// and semantics preservation.
#include <gtest/gtest.h>

#include "ir/evaluator.h"
#include "ir/printer.h"
#include "testutil.h"
#include "transform/const_fold.h"
#include "transform/loop_transforms.h"
#include "adl/platform.h"
#include "transform/spm_alloc.h"
#include "wcet/analyzer.h"

namespace argo::transform {
namespace {

using ir::ScalarKind;
using ir::Storage;
using ir::Type;
using ir::VarRole;

int countTopLevelLoops(const ir::Function& fn) {
  int count = 0;
  for (const ir::StmtPtr& s : fn.body().stmts()) {
    if (ir::isa<ir::For>(*s)) ++count;
  }
  return count;
}

TEST(ConstFold, FoldsLiteralArithmetic) {
  ir::Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output);
  fn.body().append(ir::assign(
      ir::ref("y"), ir::add(ir::mul(ir::lit(2), ir::lit(3)), ir::lit(4))));
  ConstantFolding pass;
  EXPECT_TRUE(pass.run(fn));
  EXPECT_EQ(ir::toString(*fn.body().stmts()[0]), "y = 10;\n");
}

TEST(ConstFold, FoldsIdentities) {
  ir::Function fn("f");
  fn.declare("x", Type::float64(), VarRole::Input);
  fn.declare("y", Type::float64(), VarRole::Output);
  // y = (x + 0) * 1
  fn.body().append(ir::assign(
      ir::ref("y"), ir::mul(ir::add(ir::var("x"), ir::lit(0)), ir::lit(1))));
  ConstantFolding pass;
  EXPECT_TRUE(pass.run(fn));
  EXPECT_EQ(ir::toString(*fn.body().stmts()[0]), "y = x;\n");
}

TEST(ConstFold, FoldsScilabIndexAdjustment) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Output);
  // a[(i + 1) - 1] = 0 — the classic 1-based adjustment residue.
  auto body = ir::block();
  body->append(ir::assign(
      ir::ref("a", ir::exprVec(ir::sub(ir::add(ir::var("i"), ir::lit(1)),
                                       ir::lit(1)))),
      ir::flt(0.0)));
  fn.body().append(ir::forLoop("i", 0, 8, std::move(body)));
  ConstantFolding pass;
  EXPECT_TRUE(pass.run(fn));
  const std::string text = ir::toString(fn);
  EXPECT_NE(text.find("a[i] = 0;"), std::string::npos);
}

TEST(ConstFold, KeepsDivisionByZeroForRuntime) {
  ir::Function fn("f");
  fn.declare("y", Type::int32(), VarRole::Output);
  fn.body().append(ir::assign(ir::ref("y"), ir::div(ir::lit(1), ir::lit(0))));
  ConstantFolding pass;
  EXPECT_FALSE(pass.run(fn));  // untouched
}

TEST(ConstFold, FoldsSelectOnLiteralCondition) {
  ir::Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output);
  fn.body().append(ir::assign(
      ir::ref("y"), ir::select(ir::boolean(true), ir::flt(1.0),
                               ir::flt(2.0))));
  ConstantFolding pass;
  EXPECT_TRUE(pass.run(fn));
  EXPECT_EQ(ir::toString(*fn.body().stmts()[0]), "y = 1;\n");
}

TEST(Unroll, FullyUnrollsShortLoop) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {4}), VarRole::Output);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                          ir::var("i")));
  fn.body().append(ir::forLoop("i", 0, 3, std::move(body)));
  LoopUnroll pass(4);
  EXPECT_TRUE(pass.run(fn));
  EXPECT_EQ(countTopLevelLoops(fn), 0);
  EXPECT_EQ(fn.body().size(), 3u);
  EXPECT_TRUE(ir::validate(fn).empty());
}

TEST(Unroll, LeavesLongLoopsAlone) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {64}), VarRole::Output);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                          ir::var("i")));
  fn.body().append(ir::forLoop("i", 0, 64, std::move(body)));
  LoopUnroll pass(4);
  EXPECT_FALSE(pass.run(fn));
  EXPECT_EQ(countTopLevelLoops(fn), 1);
}

TEST(Unroll, PreservesSemantics) {
  test::ProgramGenerator gen(1234);
  for (int trial = 0; trial < 10; ++trial) {
    auto original = gen.generate("p" + std::to_string(trial));
    auto transformed = original->clone();
    LoopUnroll pass(8);
    pass.run(*transformed);
    ASSERT_TRUE(ir::validate(*transformed).empty());
    ir::Environment envA = gen.makeInputs(*original);
    ir::Environment envB = envA;
    ir::Evaluator(*original).run(envA);
    ir::Evaluator(*transformed).run(envB);
    EXPECT_TRUE(test::outputsMatch(*original, envA, envB)) << "trial " << trial;
  }
}

TEST(Fission, SplitsIndependentStatements) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Temp);
  fn.declare("b", Type::array(ScalarKind::Float64, {8}), VarRole::Temp);
  fn.declare("u", Type::array(ScalarKind::Float64, {8}), VarRole::Input);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                          ir::ref("u", ir::exprVec(ir::var("i")))));
  body->append(ir::assign(ir::ref("b", ir::exprVec(ir::var("i"))),
                          ir::ref("u", ir::exprVec(ir::var("i")))));
  fn.body().append(ir::forLoop("i", 0, 8, std::move(body)));
  LoopFission pass;
  EXPECT_TRUE(pass.run(fn));
  EXPECT_EQ(countTopLevelLoops(fn), 2);
  EXPECT_TRUE(ir::validate(fn).empty());
}

TEST(Fission, RefusesValueFlowBetweenStatements) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Temp);
  fn.declare("t", Type::float64(), VarRole::Temp);
  fn.declare("u", Type::array(ScalarKind::Float64, {8}), VarRole::Input);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("t"),
                          ir::ref("u", ir::exprVec(ir::var("i")))));
  body->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                          ir::mul(ir::var("t"), ir::var("t"))));
  fn.body().append(ir::forLoop("i", 0, 8, std::move(body)));
  LoopFission pass;
  EXPECT_FALSE(pass.run(fn));  // t flows between the statements
  EXPECT_EQ(countTopLevelLoops(fn), 1);
}

TEST(Fusion, MergesAdjacentIndependentLoops) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Temp);
  fn.declare("b", Type::array(ScalarKind::Float64, {8}), VarRole::Temp);
  auto body1 = ir::block();
  body1->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                           ir::flt(1.0)));
  fn.body().append(ir::forLoop("i", 0, 8, std::move(body1)));
  auto body2 = ir::block();
  body2->append(ir::assign(ir::ref("b", ir::exprVec(ir::var("j"))),
                           ir::flt(2.0)));
  fn.body().append(ir::forLoop("j", 0, 8, std::move(body2)));
  LoopFusion pass;
  EXPECT_TRUE(pass.run(fn));
  EXPECT_EQ(countTopLevelLoops(fn), 1);
  EXPECT_TRUE(ir::validate(fn).empty());
  // Fused body executes both statements.
  ir::Environment env = ir::makeZeroEnvironment(fn);
  ir::Evaluator(fn).run(env);
  EXPECT_DOUBLE_EQ(env.at("a").getFloat(7), 1.0);
  EXPECT_DOUBLE_EQ(env.at("b").getFloat(7), 2.0);
}

TEST(Fusion, RefusesConflictingBodies) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Temp);
  auto body1 = ir::block();
  body1->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                           ir::flt(1.0)));
  fn.body().append(ir::forLoop("i", 0, 8, std::move(body1)));
  auto body2 = ir::block();
  // Reads a shifted: interleaving would observe partial writes.
  body2->append(ir::assign(
      ir::ref("a", ir::exprVec(ir::var("j"))),
      ir::add(ir::ref("a", ir::exprVec(ir::var("j"))), ir::flt(1.0))));
  fn.body().append(ir::forLoop("j", 0, 8, std::move(body2)));
  LoopFusion pass;
  EXPECT_FALSE(pass.run(fn));
  EXPECT_EQ(countTopLevelLoops(fn), 2);
}

TEST(Fusion, RefusesDifferentRanges) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Temp);
  fn.declare("b", Type::array(ScalarKind::Float64, {8}), VarRole::Temp);
  auto body1 = ir::block();
  body1->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))), ir::flt(1.0)));
  fn.body().append(ir::forLoop("i", 0, 8, std::move(body1)));
  auto body2 = ir::block();
  body2->append(ir::assign(ir::ref("b", ir::exprVec(ir::var("j"))), ir::flt(2.0)));
  fn.body().append(ir::forLoop("j", 0, 4, std::move(body2)));
  LoopFusion pass;
  EXPECT_FALSE(pass.run(fn));
}

TEST(IndexSplit, SplitsGuardedLoop) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Output);
  auto thenB = ir::block();
  thenB->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))), ir::flt(1.0)));
  auto elseB = ir::block();
  elseB->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))), ir::flt(2.0)));
  auto body = ir::block();
  body->append(ir::ifStmt(ir::lt(ir::var("i"), ir::lit(3)), std::move(thenB),
                          std::move(elseB)));
  fn.body().append(ir::forLoop("i", 0, 8, std::move(body)));
  IndexSetSplitting pass;
  EXPECT_TRUE(pass.run(fn));
  EXPECT_EQ(countTopLevelLoops(fn), 2);
  EXPECT_TRUE(ir::validate(fn).empty());
  ir::Environment env = ir::makeZeroEnvironment(fn);
  ir::Evaluator(fn).run(env);
  EXPECT_DOUBLE_EQ(env.at("a").getFloat(2), 1.0);
  EXPECT_DOUBLE_EQ(env.at("a").getFloat(3), 2.0);
}

TEST(IndexSplit, HandlesGeAndClampsSplitPoint) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Output);
  auto thenB = ir::block();
  thenB->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))), ir::flt(1.0)));
  auto body = ir::block();
  body->append(
      ir::ifStmt(ir::ge(ir::var("i"), ir::lit(100)), std::move(thenB)));
  fn.body().append(ir::forLoop("i", 0, 8, std::move(body)));
  IndexSetSplitting pass;
  EXPECT_TRUE(pass.run(fn));
  // Condition never true in range: the then-loop vanishes, the else part
  // is empty, so nothing is left (or a single empty-body low loop).
  ir::Environment env = ir::makeZeroEnvironment(fn);
  ir::Evaluator(fn).run(env);
  EXPECT_DOUBLE_EQ(env.at("a").getFloat(5), 0.0);
}

TEST(IndexSplit, IgnoresDataDependentConditions) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Output);
  fn.declare("x", Type::float64(), VarRole::Input);
  auto thenB = ir::block();
  thenB->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))), ir::flt(1.0)));
  auto body = ir::block();
  body->append(ir::ifStmt(ir::lt(ir::var("x"), ir::flt(3.0)), std::move(thenB)));
  fn.body().append(ir::forLoop("i", 0, 8, std::move(body)));
  IndexSetSplitting pass;
  EXPECT_FALSE(pass.run(fn));
}

TEST(IndexSplit, PreservesSemanticsOnRandomSplitPoints) {
  for (std::int64_t split = -2; split <= 10; ++split) {
    ir::Function fn("f");
    fn.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Output);
    auto thenB = ir::block();
    thenB->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                             ir::flt(1.0)));
    auto elseB = ir::block();
    elseB->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                             ir::flt(2.0)));
    auto body = ir::block();
    body->append(ir::ifStmt(ir::bin(ir::BinOpKind::Le, ir::var("i"),
                                    ir::lit(split)),
                            std::move(thenB), std::move(elseB)));
    fn.body().append(ir::forLoop("i", 0, 8, std::move(body)));

    auto reference = fn.clone();
    IndexSetSplitting pass;
    pass.run(fn);
    ASSERT_TRUE(ir::validate(fn).empty()) << "split " << split;
    ir::Environment envA = ir::makeZeroEnvironment(*reference);
    ir::Environment envB = envA;
    ir::Evaluator(*reference).run(envA);
    ir::Evaluator(fn).run(envB);
    EXPECT_TRUE(envA.at("a").approxEquals(envB.at("a"))) << "split " << split;
  }
}

TEST(SpmAlloc, CountsWorstCaseAccesses) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Temp);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                          ir::flt(0.0)));
  fn.body().append(ir::forLoop("i", 0, 8, std::move(body)));
  const auto counts = worstCaseAccessCounts(fn);
  EXPECT_EQ(counts.at("a"), 8);
}

TEST(SpmAlloc, CountsConditionalOnBothArms) {
  ir::Function fn("f");
  fn.declare("a", Type::float64(), VarRole::Temp);
  auto thenB = ir::block();
  thenB->append(ir::assign(ir::ref("a"), ir::flt(1.0)));
  auto elseB = ir::block();
  elseB->append(ir::assign(ir::ref("a"), ir::flt(2.0)));
  fn.body().append(
      ir::ifStmt(ir::boolean(true), std::move(thenB), std::move(elseB)));
  // Worst case counts both arms (sound upper bound).
  EXPECT_EQ(worstCaseAccessCounts(fn).at("a"), 2);
}

TEST(SpmAlloc, DemotesHotReadOnlyData) {
  ir::Function fn("f");
  fn.declare("table", Type::array(ScalarKind::Float64, {16}), VarRole::Const);
  fn.declare("y", Type::float64(), VarRole::Output);
  fn.body().append(ir::assign(ir::ref("y"), ir::flt(0.0)));
  auto body = ir::block();
  body->append(ir::assign(
      ir::ref("y"),
      ir::add(ir::var("y"), ir::ref("table", ir::exprVec(ir::var("i"))))));
  fn.body().append(ir::forLoop("i", 0, 16, std::move(body)));
  ScratchpadAllocation pass(/*capacity=*/1024, /*shared=*/10, /*spm=*/1);
  EXPECT_TRUE(pass.run(fn));
  EXPECT_EQ(fn.lookup("table").storage, Storage::Scratchpad);
  EXPECT_EQ(fn.lookup("y").storage, Storage::Shared);  // Output stays shared
  EXPECT_EQ(pass.report().demoted.size(), 1u);
  EXPECT_GT(pass.report().estimatedSaving, 0);
}

TEST(SpmAlloc, RespectsCapacity) {
  ir::Function fn("f");
  fn.declare("big", Type::array(ScalarKind::Float64, {1024}), VarRole::Const);
  fn.declare("small", Type::array(ScalarKind::Float64, {4}), VarRole::Const);
  fn.declare("y", Type::float64(), VarRole::Output);
  fn.body().append(ir::assign(ir::ref("y"), ir::flt(0.0)));
  auto body = ir::block();
  body->append(ir::assign(
      ir::ref("y"),
      ir::add(ir::add(ir::var("y"),
                      ir::ref("big", ir::exprVec(ir::var("i")))),
              ir::ref("small", ir::exprVec(ir::bin(ir::BinOpKind::Mod,
                                                   ir::var("i"), ir::lit(4)))))));
  fn.body().append(ir::forLoop("i", 0, 1024, std::move(body)));
  ScratchpadAllocation pass(/*capacity=*/64, /*shared=*/10, /*spm=*/1);
  EXPECT_TRUE(pass.run(fn));
  EXPECT_EQ(fn.lookup("big").storage, Storage::Shared);  // does not fit
  EXPECT_EQ(fn.lookup("small").storage, Storage::Scratchpad);
}

TEST(SpmAlloc, SkipsMultiNodeWrittenVariables) {
  ir::Function fn("f");
  fn.declare("shared_tmp", Type::array(ScalarKind::Float64, {8}),
             VarRole::Temp);
  // Written by one top-level loop, read by another: must stay shared.
  auto body1 = ir::block();
  body1->append(ir::assign(ir::ref("shared_tmp", ir::exprVec(ir::var("i"))),
                           ir::flt(1.0)));
  fn.body().append(ir::forLoop("i", 0, 8, std::move(body1)));
  fn.declare("y", Type::float64(), VarRole::Output);
  fn.body().append(ir::assign(ir::ref("y"), ir::flt(0.0)));
  auto body2 = ir::block();
  body2->append(ir::assign(
      ir::ref("y"), ir::add(ir::var("y"),
                            ir::ref("shared_tmp", ir::exprVec(ir::var("j"))))));
  fn.body().append(ir::forLoop("j", 0, 8, std::move(body2)));
  ScratchpadAllocation pass(/*capacity=*/4096, /*shared=*/10, /*spm=*/1);
  pass.run(fn);
  EXPECT_EQ(fn.lookup("shared_tmp").storage, Storage::Shared);
}

TEST(SpmAlloc, NoGainNoChange) {
  ir::Function fn("f");
  fn.declare("t", Type::array(ScalarKind::Float64, {4}), VarRole::Const);
  ScratchpadAllocation pass(/*capacity=*/4096, /*shared=*/1, /*spm=*/1);
  EXPECT_FALSE(pass.run(fn));
}


TEST(PartialUnroll, ReplicatesBodyAndKeepsTail) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {22}), VarRole::Output);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                          ir::var("i")));
  fn.body().append(ir::forLoop("i", 0, 22, std::move(body)));
  PartialUnroll pass(/*factor=*/4, /*minTrip=*/8);
  EXPECT_TRUE(pass.run(fn));
  ASSERT_EQ(fn.body().size(), 2u);  // main + remainder
  const auto& main = ir::cast<ir::For>(*fn.body().stmts()[0]);
  const auto& tail = ir::cast<ir::For>(*fn.body().stmts()[1]);
  EXPECT_EQ(main.step(), 4);
  EXPECT_EQ(main.lower(), 0);
  EXPECT_EQ(main.upper(), 20);
  EXPECT_EQ(main.body().size(), 4u);
  EXPECT_EQ(tail.lower(), 20);
  EXPECT_EQ(tail.upper(), 22);
  EXPECT_TRUE(ir::validate(fn).empty());
  // Values intact.
  ir::Environment env = ir::makeZeroEnvironment(fn);
  ir::Evaluator(fn).run(env);
  for (int k = 0; k < 22; ++k) {
    EXPECT_DOUBLE_EQ(env.at("a").getFloat(k), static_cast<double>(k));
  }
}

TEST(PartialUnroll, ExactMultipleHasNoTail) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {16}), VarRole::Output);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                          ir::flt(1.0)));
  fn.body().append(ir::forLoop("i", 0, 16, std::move(body)));
  PartialUnroll pass(4, 8);
  EXPECT_TRUE(pass.run(fn));
  EXPECT_EQ(fn.body().size(), 1u);
}

TEST(PartialUnroll, SkipsShortAndStridedLoops) {
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {32}), VarRole::Output);
  auto body1 = ir::block();
  body1->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                           ir::flt(1.0)));
  fn.body().append(ir::forLoop("i", 0, 6, std::move(body1)));  // short
  auto body2 = ir::block();
  body2->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("j"))),
                           ir::flt(2.0)));
  fn.body().append(ir::forLoop("j", 0, 32, std::move(body2), 2));  // strided
  PartialUnroll pass(4, 8);
  EXPECT_FALSE(pass.run(fn));
}

TEST(PartialUnroll, ReducesWcetWhenBackEdgesAreExpensive) {
  // Unrolling trades one LoopStep per iteration for offset arithmetic in
  // the replicated bodies; it pays exactly on cores whose back-edges cost
  // more than an add (deep fetch pipelines without branch prediction —
  // the architecture class Sec. III-B mandates).
  ir::Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {64}), VarRole::Output,
             ir::Storage::Local);
  auto body = ir::block();
  body->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                          ir::var("i")));
  fn.body().append(ir::forLoop("i", 0, 64, std::move(body)));
  auto unrolled = fn.clone();
  PartialUnroll pass(8, 16);
  ASSERT_TRUE(pass.run(*unrolled));

  adl::CoreModel slowBranch = adl::CoreModel::xentiumDsp();
  slowBranch.opCycles[static_cast<std::size_t>(ir::OpClass::LoopStep)] = 8;
  const wcet::TimingModel model(slowBranch, /*sharedAccessCycles=*/10);
  const adl::Cycles before =
      wcet::SchemaAnalyzer(fn, model).analyzeFunction().cycles;
  const adl::Cycles after =
      wcet::SchemaAnalyzer(*unrolled, model).analyzeFunction().cycles;
  EXPECT_LT(after, before);

  // On a single-cycle-back-edge core the trade reverses: the pass is a
  // tuning knob, not a universal win (the feedback loop decides).
  const wcet::TimingModel cheap(adl::CoreModel::xentiumDsp(), 10);
  EXPECT_GT(wcet::SchemaAnalyzer(*unrolled, cheap).analyzeFunction().cycles,
            wcet::SchemaAnalyzer(fn, cheap).analyzeFunction().cycles);
}

TEST(PartialUnroll, PreservesSemanticsOnRandomPrograms) {
  for (std::uint64_t seed = 40; seed < 48; ++seed) {
    test::ProgramGenerator gen(seed);
    auto original = gen.generate("p");
    auto transformed = original->clone();
    PartialUnroll pass(3, 4);
    pass.run(*transformed);
    ASSERT_TRUE(ir::validate(*transformed).empty()) << "seed " << seed;
    ir::Environment envA = gen.makeInputs(*original);
    ir::Environment envB = envA;
    ir::Evaluator(*original).run(envA);
    ir::Evaluator(*transformed).run(envB);
    EXPECT_TRUE(test::outputsMatch(*original, envA, envB)) << "seed " << seed;
  }
}

TEST(AllPasses, PreserveSemanticsOnRandomPrograms) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    test::ProgramGenerator gen(seed * 7919);
    auto original = gen.generate("p");
    auto transformed = original->clone();

    ConstantFolding fold;
    LoopUnroll unroll(4);
    LoopFission fission;
    LoopFusion fusion;
    IndexSetSplitting split;
    fold.run(*transformed);
    split.run(*transformed);
    fission.run(*transformed);
    fusion.run(*transformed);
    unroll.run(*transformed);
    fold.run(*transformed);
    ASSERT_TRUE(ir::validate(*transformed).empty()) << "seed " << seed;

    ir::Environment envA = gen.makeInputs(*original);
    ir::Environment envB = envA;
    ir::Evaluator(*original).run(envA);
    ir::Evaluator(*transformed).run(envB);
    EXPECT_TRUE(test::outputsMatch(*original, envA, envB)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace argo::transform
