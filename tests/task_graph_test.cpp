// support::TaskGraph: the dependency-graph job executor. Covers topology
// semantics (diamond, fan-out/fan-in, disconnected components, single
// node), cycle detection with the pinned diagnostic, the failure contract
// (lowest node id wins, downstream skipped, independent nodes still run),
// the no-nested-pools rule shared with parallelFor, and byte-identity of
// ladder-order slot assembly across thread counts and repeated runs.
#include "support/graph.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "support/diagnostics.h"
#include "support/parallel.h"

namespace argo::support {
namespace {

TEST(TaskGraphTopology, EmptyGraphRunIsANoOp) {
  TaskGraph graph;
  EXPECT_EQ(graph.nodeCount(), 0u);
  for (int threads : {1, 4}) graph.run(threads);
}

TEST(TaskGraphTopology, SingleNodeRunsExactlyOncePerRun) {
  for (int threads : {1, 8}) {
    TaskGraph graph;
    int calls = 0;
    const auto id = graph.addNode("only", [&] { ++calls; });
    EXPECT_EQ(id, 0u);
    EXPECT_EQ(graph.nodeName(id), "only");
    graph.run(threads);
    EXPECT_EQ(calls, 1) << "threads " << threads;
  }
}

TEST(TaskGraphTopology, DiamondRespectsEveryEdge) {
  // a -> {b, c} -> d: when b or c runs, a must be done; when d runs, both
  // arms must be done — for any thread count and interleaving.
  for (int threads : {1, 8}) {
    for (int run = 0; run < 5; ++run) {
      TaskGraph graph;
      std::atomic<bool> aDone{false}, bDone{false}, cDone{false};
      std::atomic<bool> ordered{true};
      const auto a = graph.addNode("a", [&] { aDone = true; });
      const auto b = graph.addNode("b", [&] {
        if (!aDone.load()) ordered = false;
        bDone = true;
      });
      const auto c = graph.addNode("c", [&] {
        if (!aDone.load()) ordered = false;
        cDone = true;
      });
      const auto d = graph.addNode("d", [&] {
        if (!bDone.load() || !cDone.load()) ordered = false;
      });
      graph.addEdge(a, b);
      graph.addEdge(a, c);
      graph.addEdge(b, d);
      graph.addEdge(c, d);
      graph.run(threads);
      EXPECT_TRUE(ordered.load()) << "threads " << threads << " run " << run;
    }
  }
}

TEST(TaskGraphTopology, FanOutFanInJoinsAllBranches) {
  constexpr std::size_t kWidth = 16;
  for (int threads : {1, 8}) {
    TaskGraph graph;
    std::atomic<int> middlesDone{0};
    int atSink = -1;
    const auto root = graph.addNode("root", [] {});
    const auto sink = graph.addNode("sink", [&] {
      atSink = middlesDone.load();
    });
    for (std::size_t m = 0; m < kWidth; ++m) {
      const auto middle = graph.addNode("middle/" + std::to_string(m),
                                        [&] { middlesDone.fetch_add(1); });
      graph.addEdge(root, middle);
      graph.addEdge(middle, sink);
    }
    graph.run(threads);
    EXPECT_EQ(atSink, static_cast<int>(kWidth)) << "threads " << threads;
  }
}

TEST(TaskGraphTopology, DisconnectedComponentsAllExecute) {
  for (int threads : {1, 8}) {
    TaskGraph graph;
    std::atomic<int> executed{0};
    // Two independent chains plus two isolated nodes.
    const auto a0 = graph.addNode("a0", [&] { executed.fetch_add(1); });
    const auto a1 = graph.addNode("a1", [&] { executed.fetch_add(1); });
    const auto b0 = graph.addNode("b0", [&] { executed.fetch_add(1); });
    const auto b1 = graph.addNode("b1", [&] { executed.fetch_add(1); });
    graph.addNode("lone0", [&] { executed.fetch_add(1); });
    graph.addNode("lone1", [&] { executed.fetch_add(1); });
    graph.addEdge(a0, a1);
    graph.addEdge(b0, b1);
    graph.run(threads);
    EXPECT_EQ(executed.load(), 6) << "threads " << threads;
  }
}

TEST(TaskGraphTopology, DuplicateEdgesAreDeduplicated) {
  for (int threads : {1, 4}) {
    TaskGraph graph;
    int downstream = 0;
    const auto a = graph.addNode("a", [] {});
    const auto b = graph.addNode("b", [&] { ++downstream; });
    graph.addEdge(a, b);
    graph.addEdge(a, b);  // harmless: indegree must stay 1
    graph.addEdge(a, b);
    graph.run(threads);  // would deadlock/underflow if indegree were 3
    EXPECT_EQ(downstream, 1) << "threads " << threads;
  }
}

TEST(TaskGraphTopology, InlineRunUsesLadderTopologicalOrder) {
  // The threads = 1 path executes the lowest ready node id first — a fixed
  // reference order that makes sequential runs exactly reproducible. With
  // the edge 3 -> 1, ids 0..4 run as 0, 2, 3, 1, 4.
  TaskGraph graph;
  std::vector<TaskGraph::NodeId> order;
  for (TaskGraph::NodeId id = 0; id < 5; ++id) {
    graph.addNode("n" + std::to_string(id), [&order, id] {
      order.push_back(id);
    });
  }
  graph.addEdge(3, 1);
  graph.run(1);
  EXPECT_EQ(order, (std::vector<TaskGraph::NodeId>{0, 2, 3, 1, 4}));
}

TEST(TaskGraphValidation, CycleDiagnosticNamesTheOffendingNodes) {
  // b -> c -> d -> b is the cycle; 'a' is clean and 'e' hangs off the
  // cycle (unrunnable, but not itself cyclic) — the diagnostic must name
  // exactly the cycle members, in node-id order.
  TaskGraph graph;
  const auto a = graph.addNode("a", [] {});
  const auto b = graph.addNode("b", [] {});
  const auto c = graph.addNode("c", [] {});
  const auto d = graph.addNode("d", [] {});
  const auto e = graph.addNode("e", [] {});
  graph.addEdge(a, b);
  graph.addEdge(b, c);
  graph.addEdge(c, d);
  graph.addEdge(d, b);
  graph.addEdge(c, e);
  for (int threads : {1, 4}) {
    try {
      graph.run(threads);
      FAIL() << "expected ToolchainError";
    } catch (const ToolchainError& error) {
      EXPECT_STREQ(error.what(),
                   "support::TaskGraph::run: dependency cycle among nodes: "
                   "'b', 'c', 'd'");
    }
  }
}

TEST(TaskGraphValidation, SelfEdgesUnknownIdsAndEmptyBodiesThrow) {
  TaskGraph graph;
  const auto a = graph.addNode("a", [] {});
  EXPECT_THROW(graph.addEdge(a, a), ToolchainError);
  EXPECT_THROW(graph.addEdge(a, 7), ToolchainError);
  EXPECT_THROW(graph.addEdge(7, a), ToolchainError);
  EXPECT_THROW((void)graph.nodeName(7), ToolchainError);
  EXPECT_THROW((void)graph.addNode("empty", std::function<void()>{}),
               ToolchainError);
}

TEST(TaskGraphFailure, LowestNodeIdExceptionWinsOnBothPaths) {
  // Nodes 2 and 6 both fail (independently); node 2's exception must
  // surface for any thread count, repeatedly.
  for (int threads : {1, 8}) {
    for (int run = 0; run < 5; ++run) {
      TaskGraph graph;
      for (TaskGraph::NodeId id = 0; id < 8; ++id) {
        graph.addNode("n" + std::to_string(id), [id] {
          if (id == 2 || id == 6) {
            throw ToolchainError("boom at " + std::to_string(id));
          }
        });
      }
      try {
        graph.run(threads);
        FAIL() << "expected ToolchainError";
      } catch (const ToolchainError& error) {
        EXPECT_STREQ(error.what(), "boom at 2")
            << "threads " << threads << " run " << run;
      }
    }
  }
}

TEST(TaskGraphFailure, LowestIdWinsEvenWhenItExecutesLast) {
  // Edges may point from a high id to a low one, so topological order is
  // not id order: node 0 depends on clean node 4 and runs near the end,
  // while node 5 fails early. Node 0's exception must still be the one
  // rethrown — "lowest node id", not "first to fail".
  for (int threads : {1, 4}) {
    TaskGraph graph;
    graph.addNode("late", [] { throw ToolchainError("boom at 0"); });
    for (TaskGraph::NodeId id = 1; id < 5; ++id) {
      graph.addNode("n" + std::to_string(id), [] {});
    }
    graph.addNode("early", [] { throw ToolchainError("boom at 5"); });
    graph.addEdge(4, 0);
    try {
      graph.run(threads);
      FAIL() << "expected ToolchainError";
    } catch (const ToolchainError& error) {
      EXPECT_STREQ(error.what(), "boom at 0") << "threads " << threads;
    }
  }
}

TEST(TaskGraphFailure, DownstreamIsSkippedIndependentNodesStillRun) {
  for (int threads : {1, 8}) {
    TaskGraph graph;
    std::atomic<int> executed{0};
    std::atomic<bool> skippedRan{false};
    const auto failing = graph.addNode("failing", [&] {
      executed.fetch_add(1);
      throw ToolchainError("boom");
    });
    const auto child = graph.addNode("child", [&] { skippedRan = true; });
    const auto grandchild =
        graph.addNode("grandchild", [&] { skippedRan = true; });
    const auto bystander =
        graph.addNode("bystander", [&] { executed.fetch_add(1); });
    const auto bystanderChild =
        graph.addNode("bystander/child", [&] { executed.fetch_add(1); });
    graph.addEdge(failing, child);
    graph.addEdge(child, grandchild);
    graph.addEdge(bystander, bystanderChild);
    EXPECT_THROW(graph.run(threads), ToolchainError);
    EXPECT_EQ(executed.load(), 3) << "threads " << threads;
    EXPECT_FALSE(skippedRan.load()) << "threads " << threads;
  }
}

TEST(TaskGraphFailure, FanInWithOneFailedArmIsSkipped) {
  // A sink whose inputs are half missing must not run — even though its
  // other predecessor succeeded.
  for (int threads : {1, 4}) {
    TaskGraph graph;
    std::atomic<bool> sinkRan{false};
    const auto ok = graph.addNode("ok", [] {});
    const auto bad =
        graph.addNode("bad", [] { throw ToolchainError("boom"); });
    const auto sink = graph.addNode("sink", [&] { sinkRan = true; });
    graph.addEdge(ok, sink);
    graph.addEdge(bad, sink);
    EXPECT_THROW(graph.run(threads), ToolchainError);
    EXPECT_FALSE(sinkRan.load()) << "threads " << threads;
  }
}

TEST(TaskGraphNesting, PooledRunInsideAParallelTaskIsRejected) {
  // TaskGraph::run is a pool owner like parallelFor: requesting a pooled
  // run from inside a parallelFor task (or another graph's node) throws;
  // threads = 1 runs inline and is always allowed.
  // The inner graphs carry two nodes each: parallelism is clamped to the
  // node count, so a single-node graph would resolve to an (allowed)
  // inline run no matter the knob.
  std::atomic<int> inlineRuns{0};
  EXPECT_THROW(parallelFor(4, 2,
                           [&](std::size_t) {
                             TaskGraph inner;
                             inner.addNode("n0", [&] {
                               inlineRuns.fetch_add(1);
                             });
                             inner.addNode("n1", [&] {
                               inlineRuns.fetch_add(1);
                             });
                             inner.run(1);  // inline: allowed
                             inner.run(4);  // pooled: must throw
                           }),
               ToolchainError);
  EXPECT_EQ(inlineRuns.load(), 8);

  TaskGraph outer;
  outer.addNode("node", [] {
    TaskGraph inner;
    inner.addNode("n0", [] {});
    inner.addNode("n1", [] {});
    inner.run(8);
  });
  outer.addNode("peer", [] {});  // keeps the outer run pooled (n >= 2)
  EXPECT_THROW(outer.run(2), ToolchainError);
}

TEST(TaskGraphNesting, NodeBodiesMayRunInlinePhasesButNotPooledOnes) {
  for (int threads : {1, 4}) {
    TaskGraph graph;
    std::atomic<int> innerIterations{0};
    graph.addNode("inline", [&] {
      parallelFor(8, 1, [&](std::size_t) { innerIterations.fetch_add(1); });
    });
    graph.addNode("pooled", [] {
      parallelFor(8, 2, [](std::size_t) {});  // must throw in-node
    });
    EXPECT_THROW(graph.run(threads), ToolchainError) << "threads " << threads;
    EXPECT_EQ(innerIterations.load(), 8) << "threads " << threads;
    innerIterations = 0;
  }
}

/// Layered value graph for the determinism checks: every node derives its
/// slot from its predecessors' slots, so any missed edge or stale read
/// changes the assembled ladder.
struct ValueGraph {
  TaskGraph graph;
  std::vector<std::uint64_t> slots;

  explicit ValueGraph(std::size_t layers, std::size_t width) {
    slots.assign(layers * width, 0);
    for (std::size_t layer = 0; layer < layers; ++layer) {
      for (std::size_t w = 0; w < width; ++w) {
        const std::size_t at = layer * width + w;
        const auto id = graph.addNode(
            "n" + std::to_string(at), [this, at, layer, width, w] {
              std::uint64_t value = 0x9e3779b97f4a7c15ull * (at + 1);
              if (layer > 0) {
                for (std::size_t p = 0; p < width; ++p) {
                  value ^= slots[(layer - 1) * width + p] * (p + 3);
                }
              }
              slots[at] = value ^ (value >> 31) ^ w;
            });
        if (layer > 0) {
          for (std::size_t p = 0; p < width; ++p) {
            graph.addEdge((layer - 1) * width + p, id);
          }
        }
      }
    }
  }

  /// Ladder-order assembly of the per-node slots.
  [[nodiscard]] std::vector<std::uint64_t> assemble() const { return slots; }
};

TEST(TaskGraphDeterminism, SlotAssemblyIsIdenticalAcrossThreadsAndRuns) {
  ValueGraph reference(6, 8);
  reference.graph.run(1);
  const std::vector<std::uint64_t> expected = reference.assemble();

  for (int threads : {1, 3, 8}) {
    ValueGraph subject(6, 8);
    for (int run = 0; run < 3; ++run) {  // run() is repeatable
      subject.graph.run(threads);
      EXPECT_EQ(subject.assemble(), expected)
          << "threads " << threads << " run " << run;
    }
  }
}

}  // namespace
}  // namespace argo::support
