// Unit tests for the explicit parallel program model.
#include <gtest/gtest.h>

#include "htg/htg.h"
#include "ir/builder.h"
#include "par/parallel_program.h"
#include "sched/scheduler.h"
#include "support/diagnostics.h"

namespace argo::par {
namespace {

using ir::ScalarKind;
using ir::Type;
using ir::VarRole;

std::unique_ptr<ir::Function> makeChainFn() {
  auto fn = std::make_unique<ir::Function>("chain");
  fn->declare("u", Type::array(ScalarKind::Float64, {8}), VarRole::Input);
  fn->declare("a", Type::array(ScalarKind::Float64, {8}), VarRole::Temp);
  fn->declare("y", Type::array(ScalarKind::Float64, {8}), VarRole::Output);
  auto body1 = ir::block();
  body1->append(ir::assign(ir::ref("a", ir::exprVec(ir::var("i"))),
                           ir::mul(ir::ref("u", ir::exprVec(ir::var("i"))),
                                   ir::flt(2.0))));
  fn->body().append(ir::forLoop("i", 0, 8, std::move(body1)));
  auto body2 = ir::block();
  body2->append(ir::assign(ir::ref("y", ir::exprVec(ir::var("j"))),
                           ir::add(ir::ref("a", ir::exprVec(ir::var("j"))),
                                   ir::flt(1.0))));
  fn->body().append(ir::forLoop("j", 0, 8, std::move(body2)));
  return fn;
}

struct Built {
  std::unique_ptr<ir::Function> fn;
  htg::TaskGraph graph;
  adl::Platform platform;
  sched::Schedule schedule;
  std::vector<sched::TaskTiming> timings;
  ParallelProgram program;

  explicit Built(int chunks = 2, int cores = 4)
      : fn(makeChainFn()),
        graph(htg::expand(htg::buildHtg(*fn), htg::ExpandOptions{chunks})),
        platform(adl::makeRecoreXentiumBus(cores)) {
    sched::Scheduler scheduler(graph, platform);
    schedule = scheduler.run(sched::SchedOptions{});
    timings = scheduler.timings();
    program = buildParallelProgram(graph, schedule, platform);
  }
};

TEST(ParallelProgram, EveryTaskExecutedExactlyOnce) {
  Built built;
  std::vector<int> executions(built.graph.tasks.size(), 0);
  for (const CoreProgram& core : built.program.cores) {
    for (const ParOp& op : core.ops) {
      if (op.kind == OpKind::Execute) {
        executions[static_cast<std::size_t>(op.task)] += 1;
        // And on the scheduled tile.
        EXPECT_EQ(core.tile,
                  built.schedule.placements[static_cast<std::size_t>(op.task)]
                      .tile);
      }
    }
  }
  for (int count : executions) EXPECT_EQ(count, 1);
}

TEST(ParallelProgram, EventsOnlyForCrossTileDeps) {
  Built built;
  for (const Event& e : built.program.events) {
    EXPECT_NE(e.producerTile, e.consumerTile);
    EXPECT_GT(e.bytes, 0);
  }
  // Each cross-tile dependence has exactly one event.
  std::size_t crossDeps = 0;
  for (const htg::Dep& d : built.graph.deps) {
    const int fromTile =
        built.schedule.placements[static_cast<std::size_t>(d.from)].tile;
    const int toTile =
        built.schedule.placements[static_cast<std::size_t>(d.to)].tile;
    if (fromTile != toTile) ++crossDeps;
  }
  EXPECT_EQ(built.program.events.size(), crossDeps);
}

TEST(ParallelProgram, WaitsPrecedeExecuteSignalsFollow) {
  Built built;
  for (const CoreProgram& core : built.program.cores) {
    for (std::size_t k = 0; k < core.ops.size(); ++k) {
      const ParOp& op = core.ops[k];
      if (op.kind == OpKind::Wait) {
        // The next non-wait op must be the consumer's Execute.
        std::size_t j = k;
        while (j < core.ops.size() && core.ops[j].kind == OpKind::Wait) ++j;
        ASSERT_LT(j, core.ops.size());
        EXPECT_EQ(core.ops[j].kind, OpKind::Execute);
        EXPECT_EQ(core.ops[j].task,
                  built.program.event(op.event).consumerTask);
      }
      if (op.kind == OpKind::Signal) {
        // Some earlier op on this core is the producer's Execute.
        bool found = false;
        for (std::size_t j = 0; j < k; ++j) {
          if (core.ops[j].kind == OpKind::Execute &&
              core.ops[j].task ==
                  built.program.event(op.event).producerTask) {
            found = true;
          }
        }
        EXPECT_TRUE(found);
      }
    }
  }
}

TEST(AddressMap, CoversAllVariables) {
  Built built;
  for (const ir::VarDecl& d : built.fn->decls()) {
    ASSERT_TRUE(built.program.addresses.contains(d.name)) << d.name;
    const AddressEntry& entry = built.program.addresses.at(d.name);
    EXPECT_EQ(entry.bytes, d.type.byteSize());
    EXPECT_EQ(entry.storage, d.storage);
  }
}

TEST(AddressMap, SharedEntriesAlignedAndDisjoint) {
  Built built;
  std::vector<const AddressEntry*> shared;
  for (const auto& [name, entry] : built.program.addresses) {
    if (entry.storage == ir::Storage::Shared) shared.push_back(&entry);
  }
  std::sort(shared.begin(), shared.end(),
            [](const AddressEntry* a, const AddressEntry* b) {
              return a->address < b->address;
            });
  for (std::size_t k = 0; k < shared.size(); ++k) {
    EXPECT_EQ(shared[k]->address % 8, 0);
    if (k > 0) {
      EXPECT_GE(shared[k]->address,
                shared[k - 1]->address + shared[k - 1]->bytes);
    }
  }
}

TEST(AddressMap, SharedOverflowRejected) {
  auto fn = makeChainFn();
  // A platform with absurdly small shared memory.
  std::vector<adl::Tile> tiles = {adl::Tile{0, adl::CoreModel::xentiumDsp()}};
  adl::BusModel bus;
  const adl::Platform tiny("tiny", std::move(tiles), bus, /*sharedMem=*/64);
  const htg::TaskGraph graph =
      htg::expand(htg::buildHtg(*fn), htg::ExpandOptions{1});
  sched::Scheduler scheduler(graph, tiny);
  const sched::Schedule schedule = scheduler.run(sched::SchedOptions{});
  EXPECT_THROW((void)buildParallelProgram(graph, schedule, tiny),
               support::ToolchainError);
}

TEST(CodeGen, EmitsWaitSignalAndTaskCode) {
  Built built;
  bool sawWait = false;
  bool sawSignal = false;
  bool sawLoop = false;
  for (int tile = 0; tile < built.platform.coreCount(); ++tile) {
    const std::string source = emitCoreSource(built.program, tile);
    if (source.find("argo_wait(") != std::string::npos) sawWait = true;
    if (source.find("argo_signal(") != std::string::npos) sawSignal = true;
    if (source.find("for (") != std::string::npos) sawLoop = true;
  }
  EXPECT_EQ(sawWait, !built.program.events.empty());
  EXPECT_EQ(sawSignal, !built.program.events.empty());
  EXPECT_TRUE(sawLoop);
}

TEST(ParallelProgram, SyncOverheadPositive) {
  Built built;
  EXPECT_GT(built.program.syncOverhead, 0);
}

TEST(ParallelProgram, MismatchedScheduleRejected) {
  Built built;
  sched::Schedule broken = built.schedule;
  broken.placements.pop_back();
  EXPECT_THROW(
      (void)buildParallelProgram(built.graph, broken, built.platform),
      support::ToolchainError);
}

}  // namespace
}  // namespace argo::par
