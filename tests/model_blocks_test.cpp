// Unit tests for the block library: each block compiled in a minimal
// diagram and checked against hand-computed values via the interpreter.
#include <gtest/gtest.h>

#include <cmath>

#include "model/blocks.h"
#include "model/diagram.h"
#include "support/diagnostics.h"
#include "support/rng.h"

namespace argo::model {
namespace {

using ir::ScalarKind;
using ir::Type;

/// Compiles a single-input single-output chain: in -> block -> out, runs it
/// on `input`, returns the output value.
ir::Value runUnary(std::unique_ptr<Block> blockPtr, const Type& inType,
                   const ir::Value& input) {
  Diagram d("t");
  const BlockId in = d.add<InputBlock>("u", inType);
  const BlockId mid = d.add(std::move(blockPtr));
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, mid);
  d.connect(mid, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  env["u"] = input;
  ir::Evaluator(*model.fn).run(env);
  return env.at("y");
}

ir::Value vec(std::vector<double> values) {
  const Type t = Type::array(ScalarKind::Float64,
                             {static_cast<int>(values.size())});
  return ir::Value::floats(t, std::move(values));
}

TEST(Blocks, GainScalesVector) {
  const ir::Value out = runUnary(std::make_unique<GainBlock>("g", 2.5),
                                 Type::array(ScalarKind::Float64, {3}),
                                 vec({1.0, -2.0, 4.0}));
  EXPECT_DOUBLE_EQ(out.getFloat(0), 2.5);
  EXPECT_DOUBLE_EQ(out.getFloat(1), -5.0);
  EXPECT_DOUBLE_EQ(out.getFloat(2), 10.0);
}

TEST(Blocks, GainOnScalar) {
  const ir::Value out = runUnary(std::make_unique<GainBlock>("g", -3.0),
                                 Type::float64(),
                                 ir::Value::scalarFloat(2.0));
  EXPECT_DOUBLE_EQ(out.getFloat(), -6.0);
}

TEST(Blocks, SaturateClamps) {
  const ir::Value out =
      runUnary(std::make_unique<SaturateBlock>("s", -1.0, 1.0),
               Type::array(ScalarKind::Float64, {3}),
               vec({-5.0, 0.5, 9.0}));
  EXPECT_DOUBLE_EQ(out.getFloat(0), -1.0);
  EXPECT_DOUBLE_EQ(out.getFloat(1), 0.5);
  EXPECT_DOUBLE_EQ(out.getFloat(2), 1.0);
}

TEST(Blocks, SaturateRejectsInvertedRange) {
  Diagram d("t");
  const BlockId in = d.add<InputBlock>("u", Type::float64());
  const BlockId sat = d.add<SaturateBlock>("s", 2.0, -2.0);
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, sat);
  d.connect(sat, out);
  EXPECT_THROW((void)d.compile(), support::ToolchainError);
}

TEST(Blocks, MathSqrt) {
  const ir::Value out =
      runUnary(std::make_unique<MathBlock>("m", ir::UnOpKind::Sqrt),
               Type::float64(), ir::Value::scalarFloat(9.0));
  EXPECT_DOUBLE_EQ(out.getFloat(), 3.0);
}

TEST(Blocks, SumWithSigns) {
  Diagram d("t");
  const Type t = Type::array(ScalarKind::Float64, {2});
  const BlockId a = d.add<InputBlock>("a", t);
  const BlockId b = d.add<InputBlock>("b", t);
  const BlockId c = d.add<InputBlock>("c", t);
  const BlockId sum = d.add<SumBlock>("sum", std::vector<int>{1, -1, 1});
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(a, 0, sum, 0);
  d.connect(b, 0, sum, 1);
  d.connect(c, 0, sum, 2);
  d.connect(sum, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  env["a"] = vec({1.0, 2.0});
  env["b"] = vec({10.0, 20.0});
  env["c"] = vec({100.0, 200.0});
  ir::Evaluator(*model.fn).run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(0), 91.0);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(1), 182.0);
}

TEST(Blocks, SumRejectsShapeMismatch) {
  Diagram d("t");
  const BlockId a = d.add<InputBlock>("a", Type::array(ScalarKind::Float64, {2}));
  const BlockId b = d.add<InputBlock>("b", Type::array(ScalarKind::Float64, {3}));
  const BlockId sum = d.add<SumBlock>("sum", std::vector<int>{1, 1});
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(a, 0, sum, 0);
  d.connect(b, 0, sum, 1);
  d.connect(sum, out);
  EXPECT_THROW((void)d.compile(), support::ToolchainError);
}

TEST(Blocks, ProductMultiplies) {
  Diagram d("t");
  const BlockId a = d.add<InputBlock>("a", Type::float64());
  const BlockId prod = d.add<ProductBlock>("p", 2);
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(a, 0, prod, 0);
  d.connect(a, 0, prod, 1);  // fan-out: square
  d.connect(prod, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  env["a"] = ir::Value::scalarFloat(-3.0);
  ir::Evaluator(*model.fn).run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(), 9.0);
}

TEST(Blocks, ConstScalarAndArray) {
  Diagram d("t");
  const BlockId scalarConst = d.add<ConstBlock>("k", Type::float64(),
                                                std::vector<double>{2.5});
  const BlockId arrayConst = d.add<ConstBlock>(
      "table", Type::array(ScalarKind::Float64, {3}),
      std::vector<double>{7.0, 8.0, 9.0});
  const BlockId g = d.add<GainBlock>("g", 1.0);
  d.connect(arrayConst, g);
  const BlockId out1 = d.add<OutputBlock>("y1");
  const BlockId out2 = d.add<OutputBlock>("y2");
  d.connect(scalarConst, out1);
  d.connect(g, out2);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  ir::Evaluator(*model.fn).run(env);
  EXPECT_DOUBLE_EQ(env.at("y1").getFloat(), 2.5);
  EXPECT_DOUBLE_EQ(env.at("y2").getFloat(2), 9.0);
  // The array constant lives in the constant table, not in per-step code.
  EXPECT_FALSE(model.constants.empty());
}

TEST(Blocks, ConstRejectsSizeMismatch) {
  EXPECT_THROW(ConstBlock("k", Type::array(ScalarKind::Float64, {4}),
                          std::vector<double>{1.0}),
               support::ToolchainError);
}

TEST(Blocks, DelayIsOneStep) {
  Diagram d("t");
  const BlockId in = d.add<InputBlock>("u", Type::float64());
  const BlockId delay = d.add<DelayBlock>("z");
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, delay);
  d.connect(delay, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  ir::Evaluator ev(*model.fn);
  env["u"] = ir::Value::scalarFloat(5.0);
  ev.run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(), 0.0);  // initial state
  env["u"] = ir::Value::scalarFloat(7.0);
  ev.run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(), 5.0);
  ev.run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(), 7.0);
}

TEST(Blocks, RelationalProducesIndicator) {
  Diagram d("t");
  const Type t = Type::array(ScalarKind::Float64, {3});
  const BlockId a = d.add<InputBlock>("a", t);
  const BlockId b = d.add<InputBlock>("b", t);
  const BlockId rel = d.add<RelationalBlock>("lt", ir::BinOpKind::Lt);
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(a, 0, rel, 0);
  d.connect(b, 0, rel, 1);
  d.connect(rel, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  env["a"] = vec({1.0, 5.0, 3.0});
  env["b"] = vec({2.0, 4.0, 3.0});
  ir::Evaluator(*model.fn).run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(0), 1.0);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(1), 0.0);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(2), 0.0);
}

TEST(Blocks, SwitchSelectsByScalarControl) {
  Diagram d("t");
  const Type t = Type::array(ScalarKind::Float64, {2});
  const BlockId ctl = d.add<InputBlock>("ctl", Type::float64());
  const BlockId a = d.add<InputBlock>("a", t);
  const BlockId b = d.add<InputBlock>("b", t);
  const BlockId sw = d.add<SwitchBlock>("sw", 0.5);
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(ctl, 0, sw, 0);
  d.connect(a, 0, sw, 1);
  d.connect(b, 0, sw, 2);
  d.connect(sw, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  env["a"] = vec({1.0, 2.0});
  env["b"] = vec({-1.0, -2.0});
  env["ctl"] = ir::Value::scalarFloat(1.0);
  ir::Evaluator ev(*model.fn);
  ev.run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(1), 2.0);
  env["ctl"] = ir::Value::scalarFloat(0.0);
  ev.run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(1), -2.0);
}

TEST(Blocks, ReduceSumMinMax) {
  const ir::Value in = vec({3.0, -1.0, 4.0, 1.0});
  const Type t = Type::array(ScalarKind::Float64, {4});
  EXPECT_DOUBLE_EQ(
      runUnary(std::make_unique<ReduceBlock>("r", ReduceBlock::Op::Sum), t, in)
          .getFloat(),
      7.0);
  EXPECT_DOUBLE_EQ(
      runUnary(std::make_unique<ReduceBlock>("r", ReduceBlock::Op::Min), t, in)
          .getFloat(),
      -1.0);
  EXPECT_DOUBLE_EQ(
      runUnary(std::make_unique<ReduceBlock>("r", ReduceBlock::Op::Max), t, in)
          .getFloat(),
      4.0);
}

TEST(Blocks, FirComputesConvolution) {
  Diagram d("t");
  const BlockId in = d.add<InputBlock>("u", Type::float64());
  const BlockId fir =
      d.add<FirBlock>("fir", std::vector<double>{0.5, 0.25, 0.25});
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, fir);
  d.connect(fir, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  ir::Evaluator ev(*model.fn);
  const double inputs[] = {1.0, 2.0, 3.0, 4.0};
  const double expected[] = {0.5, 1.25, 2.25, 3.25};
  for (int n = 0; n < 4; ++n) {
    env["u"] = ir::Value::scalarFloat(inputs[n]);
    ev.run(env);
    EXPECT_NEAR(env.at("y").getFloat(), expected[n], 1e-12) << "step " << n;
  }
}

TEST(Blocks, BiquadMatchesDirectForm) {
  // y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
  const double b0 = 0.2, b1 = 0.3, b2 = 0.1, a1 = -0.5, a2 = 0.2;
  Diagram d("t");
  const BlockId in = d.add<InputBlock>("u", Type::float64());
  const BlockId bq = d.add<BiquadBlock>("bq", b0, b1, b2, a1, a2);
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, bq);
  d.connect(bq, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  ir::Evaluator ev(*model.fn);
  double x1 = 0, x2 = 0, y1 = 0, y2 = 0;
  support::Rng rng(5);
  for (int n = 0; n < 16; ++n) {
    const double x = rng.uniformDouble() * 2.0 - 1.0;
    env["u"] = ir::Value::scalarFloat(x);
    ev.run(env);
    const double expected = b0 * x + b1 * x1 + b2 * x2 - a1 * y1 - a2 * y2;
    EXPECT_NEAR(env.at("y").getFloat(), expected, 1e-9) << "step " << n;
    x2 = x1;
    x1 = x;
    y2 = y1;
    y1 = expected;
  }
}

TEST(Blocks, MatVecMultiplies) {
  Diagram d("t");
  const BlockId in =
      d.add<InputBlock>("u", Type::array(ScalarKind::Float64, {3}));
  const BlockId mv = d.add<MatVecBlock>(
      "A", 2, 3, std::vector<double>{1, 0, 2,
                                     0, 3, 0});
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, mv);
  d.connect(mv, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  env["u"] = vec({1.0, 2.0, 3.0});
  ir::Evaluator(*model.fn).run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(0), 7.0);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(1), 6.0);
}

TEST(Blocks, Conv2dIdentityKernel) {
  Diagram d("t");
  const Type img = Type::array(ScalarKind::Float64, {3, 3});
  const BlockId in = d.add<InputBlock>("u", img);
  const BlockId conv = d.add<Conv2dBlock>(
      "c", 3, 3, std::vector<double>{0, 0, 0, 0, 1, 0, 0, 0, 0});
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, conv);
  d.connect(conv, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  ir::Value image = ir::Value::zeros(img);
  for (int k = 0; k < 9; ++k) image.setFloat(k, k + 1.0);
  env["u"] = image;
  ir::Evaluator(*model.fn).run(env);
  for (int k = 0; k < 9; ++k) {
    EXPECT_DOUBLE_EQ(env.at("y").getFloat(k), k + 1.0);
  }
}

TEST(Blocks, Conv2dZeroPadsBorders) {
  Diagram d("t");
  const Type img = Type::array(ScalarKind::Float64, {2, 2});
  const BlockId in = d.add<InputBlock>("u", img);
  // Averaging kernel: border output sums only in-image taps.
  const BlockId conv = d.add<Conv2dBlock>(
      "c", 3, 3, std::vector<double>(9, 1.0));
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, conv);
  d.connect(conv, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  ir::Value image = ir::Value::zeros(img);
  image.setFloat(0, 1.0);
  image.setFloat(1, 2.0);
  image.setFloat(2, 3.0);
  image.setFloat(3, 4.0);
  env["u"] = image;
  ir::Evaluator(*model.fn).run(env);
  // Every output is the sum of the whole 2x2 image (kernel covers it all).
  for (int k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(env.at("y").getFloat(k), 10.0);
  }
}

TEST(Blocks, Lookup1dInterpolatesAndClamps) {
  Diagram d("t");
  const BlockId in = d.add<InputBlock>("u", Type::float64());
  // Table over x0=0, dx=1: f(0)=0, f(1)=10, f(2)=20.
  const BlockId lut = d.add<Lookup1dBlock>(
      "lut", 0.0, 1.0, std::vector<double>{0.0, 10.0, 20.0});
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, lut);
  d.connect(lut, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  ir::Evaluator ev(*model.fn);
  const double cases[][2] = {
      {0.5, 5.0}, {1.0, 10.0}, {1.75, 17.5},
      {-3.0, 0.0},   // clamped low
      {9.0, 20.0}};  // clamped high
  for (const auto& c : cases) {
    env["u"] = ir::Value::scalarFloat(c[0]);
    ev.run(env);
    EXPECT_NEAR(env.at("y").getFloat(), c[1], 1e-9) << "x=" << c[0];
  }
}

TEST(Blocks, Atan2Elementwise) {
  Diagram d("t");
  const BlockId a = d.add<InputBlock>("a", Type::float64());
  const BlockId b = d.add<InputBlock>("b", Type::float64());
  const BlockId at2 = d.add<Atan2Block>("at2");
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(a, 0, at2, 0);
  d.connect(b, 0, at2, 1);
  d.connect(at2, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  env["a"] = ir::Value::scalarFloat(1.0);
  env["b"] = ir::Value::scalarFloat(2.0);
  ir::Evaluator(*model.fn).run(env);
  EXPECT_NEAR(env.at("y").getFloat(), std::atan2(1.0, 2.0), 1e-12);
}

}  // namespace
}  // namespace argo::model
