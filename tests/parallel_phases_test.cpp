// Determinism regressions for the phases migrated onto support::parallelFor
// in addition to the feedback exploration (see toolchain_parallel_test.cpp):
// per-task timing analysis, MHP reachability, simulated-annealing restarts,
// and repeated simulator trials. Every pooled run must be bit-identical to
// its sequential counterpart — same tables, same schedules, same makespans.
#include <gtest/gtest.h>

#include <algorithm>

#include "../bench/common.h"  // bench::observedWorst (pooled trials)
#include "apps/polka.h"
#include "core/toolchain.h"
#include "diamond_fixture.h"
#include "htg/htg.h"
#include "ir/builder.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "support/parallel.h"
#include "syswcet/system_wcet.h"

namespace argo {
namespace {

using test::makeDiamondFn;

struct Fixture {
  std::unique_ptr<ir::Function> fn;
  htg::TaskGraph graph;
  adl::Platform platform;

  explicit Fixture(int chunks = 4, int cores = 4)
      : fn(makeDiamondFn()),
        graph(htg::expand(htg::buildHtg(*fn), htg::ExpandOptions{chunks})),
        platform(adl::makeRecoreXentiumBus(cores)) {}
};

void expectSameSchedule(const sched::Schedule& a, const sched::Schedule& b) {
  // Per-field checks give readable diagnostics on failure ...
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.tilesUsed, b.tilesUsed);
  EXPECT_EQ(a.policy, b.policy);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].task, b.placements[i].task) << "task " << i;
    EXPECT_EQ(a.placements[i].tile, b.placements[i].tile) << "task " << i;
    EXPECT_EQ(a.placements[i].start, b.placements[i].start) << "task " << i;
    EXPECT_EQ(a.placements[i].finish, b.placements[i].finish) << "task " << i;
  }
  EXPECT_EQ(a.tileOrder, b.tileOrder);
  // ... and the defaulted operator== guarantees full field coverage even
  // when Schedule grows new members.
  EXPECT_TRUE(a == b);
}

TEST(ParallelTimings, PooledTableMatchesSequentialBitForBit) {
  Fixture fx;
  const auto sequential = sched::computeTaskTimings(fx.graph, fx.platform, 1);
  for (int threads : {0, 2, 4, 16}) {
    const auto pooled =
        sched::computeTaskTimings(fx.graph, fx.platform, threads);
    ASSERT_EQ(pooled.size(), sequential.size()) << "threads " << threads;
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(pooled[i].wcetByTile, sequential[i].wcetByTile)
          << "threads " << threads << " task " << i;
      EXPECT_EQ(pooled[i].sharedAccesses, sequential[i].sharedAccesses)
          << "threads " << threads << " task " << i;
    }
  }
}

TEST(ParallelTimings, SchedulerTimingThreadsDoNotChangeSchedules) {
  // Timing parallelism comes from the same SchedOptions::parallelThreads
  // knob as every other scheduler phase (there is no separate ctor knob).
  Fixture fx;
  sched::SchedOptions seqKnobs;
  seqKnobs.parallelThreads = 1;
  sched::SchedOptions pooledKnobs;
  pooledKnobs.parallelThreads = 4;
  const sched::Scheduler sequential(fx.graph, fx.platform, seqKnobs);
  const sched::Scheduler pooled(fx.graph, fx.platform, pooledKnobs);
  sched::SchedOptions options;
  expectSameSchedule(sequential.run(options), pooled.run(options));
}

TEST(ParallelAnneal, PooledRestartsMatchSequentialBitForBit) {
  Fixture fx;
  const sched::Scheduler scheduler(fx.graph, fx.platform);
  sched::SchedOptions options;
  options.policy = "annealed";
  options.saIterations = 400;
  options.saRestarts = 4;

  options.parallelThreads = 1;
  const sched::Schedule sequential = scheduler.run(options);
  for (int threads : {0, 2, 4, 16}) {
    options.parallelThreads = threads;
    expectSameSchedule(scheduler.run(options), sequential);
  }
}

TEST(ParallelAnneal, SingleRestartReproducesTheClassicChain) {
  // saRestarts = 1 with any thread count must equal the one-chain result:
  // chain 0 is seeded with `seed + 0`, i.e. exactly the configured seed.
  Fixture fx;
  const sched::Scheduler scheduler(fx.graph, fx.platform);
  sched::SchedOptions options;
  options.policy = "annealed";
  options.saIterations = 400;

  options.saRestarts = 1;
  options.parallelThreads = 1;
  const sched::Schedule classic = scheduler.run(options);
  options.parallelThreads = 4;
  expectSameSchedule(scheduler.run(options), classic);
}

TEST(ParallelAnneal, MoreRestartsNeverWorsenTheSchedule) {
  Fixture fx;
  const sched::Scheduler scheduler(fx.graph, fx.platform);
  sched::SchedOptions options;
  options.policy = "annealed";
  options.saIterations = 400;

  options.saRestarts = 1;
  const adl::Cycles one = scheduler.run(options).makespan;
  options.saRestarts = 6;
  options.parallelThreads = 0;
  EXPECT_LE(scheduler.run(options).makespan, one);
}

class PolkaPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    apps::PolkaConfig config;
    config.mosaicH = 16;
    config.mosaicW = 16;
    adl::Platform platform = adl::makeRecoreXentiumBus(4);
    core::ToolchainOptions options;
    options.explorationThreads = 1;
    result_ = new core::ToolchainResult(
        core::Toolchain(platform, options).run(apps::buildPolkaDiagram(config)));
    platform_ = new adl::Platform(std::move(platform));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete platform_;
    result_ = nullptr;
    platform_ = nullptr;
  }

  static core::ToolchainResult* result_;
  static adl::Platform* platform_;
};

core::ToolchainResult* PolkaPipeline::result_ = nullptr;
adl::Platform* PolkaPipeline::platform_ = nullptr;

TEST_F(PolkaPipeline, PooledMhpRowsMatchSequentialBitForBit) {
  const auto sequential = syswcet::mayHappenInParallel(result_->program, 1);
  for (int threads : {0, 2, 4}) {
    EXPECT_EQ(syswcet::mayHappenInParallel(result_->program, threads),
              sequential)
        << "threads " << threads;
  }
}

TEST_F(PolkaPipeline, PooledSystemAnalysisMatchesSequentialBitForBit) {
  const syswcet::SystemWcet sequential =
      syswcet::analyzeSystem(result_->program, *platform_, result_->timings,
                             syswcet::InterferenceMethod::MhpRefined, 1);
  const syswcet::SystemWcet pooled =
      syswcet::analyzeSystem(result_->program, *platform_, result_->timings,
                             syswcet::InterferenceMethod::MhpRefined, 4);
  EXPECT_EQ(pooled.makespan, sequential.makespan);
  ASSERT_EQ(pooled.tasks.size(), sequential.tasks.size());
  for (std::size_t i = 0; i < sequential.tasks.size(); ++i) {
    EXPECT_EQ(pooled.tasks[i].start, sequential.tasks[i].start) << i;
    EXPECT_EQ(pooled.tasks[i].finish, sequential.tasks[i].finish) << i;
    EXPECT_EQ(pooled.tasks[i].inflated, sequential.tasks[i].inflated) << i;
    EXPECT_EQ(pooled.tasks[i].interference, sequential.tasks[i].interference)
        << i;
    EXPECT_EQ(pooled.tasks[i].contenders, sequential.tasks[i].contenders) << i;
  }
  EXPECT_TRUE(pooled == sequential);  // full field coverage
}

TEST_F(PolkaPipeline, PooledSimulatorTrialsMatchSequentialBitForBit) {
  // Mirrors bench::observedWorst: independent trials from the same zero
  // environment, differing only in the input seed. Per-trial makespans —
  // not just the maximum — must agree between the plain loop and the pool.
  apps::PolkaConfig config;
  config.mosaicH = 16;
  config.mosaicW = 16;
  const sim::Simulator simulator(result_->program, *platform_);
  ir::Environment base = ir::makeZeroEnvironment(*result_->fn);
  for (const auto& [name, value] : result_->constants) base[name] = value;

  constexpr std::size_t kTrials = 8;
  const auto trial = [&](std::size_t t) {
    ir::Environment env = base;
    apps::setPolkaInputs(env, config,
                         apps::makePolkaFrame(config, 1000 + t));
    return simulator.step(env).makespan;
  };

  std::vector<adl::Cycles> sequential(kTrials);
  support::parallelFor(kTrials, 1,
                       [&](std::size_t t) { sequential[t] = trial(t); });
  std::vector<adl::Cycles> pooled(kTrials);
  support::parallelFor(kTrials, 4,
                       [&](std::size_t t) { pooled[t] = trial(t); });
  EXPECT_EQ(pooled, sequential);
}

TEST_F(PolkaPipeline, ObservedWorstHelperIsThreadCountInvariant) {
  // The shipped helper itself (not a mirror of it): the pooled high
  // watermark must equal the sequential one for any thread count.
  const adl::Cycles sequential =
      bench::observedWorst(*result_, *platform_, "polka", /*trials=*/6,
                           /*threads=*/1);
  for (int threads : {0, 2, 4}) {
    EXPECT_EQ(bench::observedWorst(*result_, *platform_, "polka", 6, threads),
              sequential)
        << "threads " << threads;
  }
}

}  // namespace
}  // namespace argo
