// Scenario-generator suite: the fixed-seed golden graph, determinism,
// knob semantics, platform sweeps, and one end-to-end pipeline run.
#include <gtest/gtest.h>

#include "core/toolchain.h"
#include "ir/printer.h"
#include "scenarios/generator.h"
#include "scenarios/sweep.h"
#include "sim/simulator.h"
#include "support/diagnostics.h"
#include "wcet/analyzer.h"

namespace argo {
namespace {

scenarios::GeneratorOptions goldenOptions() {
  scenarios::GeneratorOptions options;
  options.seed = 42;
  options.minLayers = 2;
  options.maxLayers = 2;
  options.minWidth = 2;
  options.maxWidth = 2;
  options.minArrayLen = 8;
  options.maxArrayLen = 8;
  options.wcetSpread = 2.0;
  return options;
}

// The golden graph: byte-for-byte what (goldenOptions, index 0) generates.
// This is the determinism anchor of the whole subsystem — if this test
// moves, every recorded BENCH_eval series breaks comparability, so treat a
// diff here as a breaking change, not churn.
constexpr const char* kGoldenIr = R"(function scn000 {
  in f64[8] u0  // shared
  in f64[8] u1  // shared
  tmp f64[8] t1_0  // shared
  tmp f64[8] t1_1  // shared
  tmp f64 s2_0  // shared
  tmp f64[8] t2_1  // shared
  out f64[8] y  // shared

  for (i1_0 = 0; i1_0 < 8; i1_0++) {
    t1_0[i1_0] = (((((((u0[i1_0] * 1.14155) + -0.444317) * 1.23722) + -0.282439) * 1.11673) + -0.470594) * 1.30009);
  }
  for (i1_1 = 0; i1_1 < 8; i1_1++) {
    t1_1[i1_1] = ((((((u0[i1_1] * 0.675768) + 0.246766) * 0.946468) + -0.155211) * 1.16485) + -0.0883011);
  }
  s2_0 = 0;
  for (i2_0 = 0; i2_0 < 8; i2_0++) {
    s2_0 = (s2_0 + ((t1_0[i2_0] + (u1[i2_0] * 0.901602)) + (u0[i2_0] * 1.3102)));
  }
  for (i2_1 = 0; i2_1 < 8; i2_1++) {
    t2_1[i2_1] = (((((t1_1[i2_1] * 1.0167) + -0.47576) * 0.675762) + -0.152952) * 1.3291);
  }
  for (iy = 0; iy < 8; iy++) {
    y[iy] = (s2_0 + t2_1[iy]);
  }
}
)";

TEST(ScenarioGenerator, GoldenGraphFixedSeed) {
  const scenarios::Scenario scenario =
      scenarios::generateScenario(goldenOptions(), 0);
  EXPECT_EQ(scenario.name, "scn000");
  EXPECT_EQ(scenario.seed, 2949826092126892291ULL);
  EXPECT_EQ(scenario.layers, 2);
  EXPECT_EQ(scenario.nodes, 5);  // 4 hidden nodes + sink
  EXPECT_EQ(scenario.arrayLen, 8);
  EXPECT_EQ(ir::toString(*scenario.model.fn), kGoldenIr);
}

TEST(ScenarioGenerator, GenerationIsDeterministic) {
  const scenarios::GeneratorOptions options;  // defaults, seed 1
  for (int index : {0, 3, 17}) {
    const scenarios::Scenario a = scenarios::generateScenario(options, index);
    const scenarios::Scenario b = scenarios::generateScenario(options, index);
    EXPECT_EQ(ir::toString(*a.model.fn), ir::toString(*b.model.fn));
    EXPECT_EQ(a.seed, b.seed);
  }
  // The batch helper is literally the per-index generator in a loop.
  const auto batch = scenarios::generateScenarios(options, 3);
  ASSERT_EQ(batch.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ir::toString(*batch[static_cast<std::size_t>(i)].model.fn),
              ir::toString(
                  *scenarios::generateScenario(options, i).model.fn));
  }
}

TEST(ScenarioGenerator, DistinctIndicesAndSeedsDiffer) {
  scenarios::GeneratorOptions options;
  const std::string base =
      ir::toString(*scenarios::generateScenario(options, 0).model.fn);
  EXPECT_NE(ir::toString(*scenarios::generateScenario(options, 1).model.fn),
            base);
  options.seed = 2;
  EXPECT_NE(ir::toString(*scenarios::generateScenario(options, 0).model.fn),
            base);
}

TEST(ScenarioGenerator, GeneratedFunctionsValidate) {
  const scenarios::GeneratorOptions options;
  for (int index = 0; index < 12; ++index) {
    const scenarios::Scenario scenario =
        scenarios::generateScenario(options, index);
    EXPECT_TRUE(ir::validate(*scenario.model.fn).empty())
        << scenario.name << ": "
        << ir::validate(*scenario.model.fn).front();
    EXPECT_GE(scenario.layers, options.minLayers);
    EXPECT_LE(scenario.layers, options.maxLayers);
    EXPECT_GE(scenario.arrayLen, options.minArrayLen);
    EXPECT_LE(scenario.arrayLen, options.maxArrayLen);
  }
}

TEST(ScenarioGenerator, CcrKnobScalesComputation) {
  // Same seed: identical graph shape, but lower CCR (compute-bound) must
  // produce strictly more work per element, hence a larger sequential
  // WCET on the same platform.
  scenarios::GeneratorOptions computeBound = goldenOptions();
  computeBound.ccr = 0.25;
  scenarios::GeneratorOptions commBound = goldenOptions();
  commBound.ccr = 4.0;
  const scenarios::Scenario heavy =
      scenarios::generateScenario(computeBound, 0);
  const scenarios::Scenario light = scenarios::generateScenario(commBound, 0);
  EXPECT_EQ(heavy.layers, light.layers);
  EXPECT_EQ(heavy.nodes, light.nodes);
  EXPECT_EQ(heavy.arrayLen, light.arrayLen);

  const adl::Platform platform = adl::makeRecoreXentiumBus(2);
  const wcet::TimingModel model = wcet::TimingModel::forTile(platform, 0);
  const adl::Cycles heavyWcet =
      wcet::SchemaAnalyzer(*heavy.model.fn, model).analyzeFunction().cycles;
  const adl::Cycles lightWcet =
      wcet::SchemaAnalyzer(*light.model.fn, model).analyzeFunction().cycles;
  EXPECT_GT(heavyWcet, lightWcet);
}

scenarios::GeneratorOptions goldenStencilOptions() {
  scenarios::GeneratorOptions options = goldenOptions();
  options.shape = scenarios::Shape::StencilChain;
  options.stencilRadius = 1;
  return options;
}

// The stencil-chain golden graph: byte-for-byte what (goldenStencilOptions,
// index 0) generates. Same anchor role as kGoldenIr — a diff here breaks
// the comparability of every recorded stencil-family series.
constexpr const char* kGoldenStencilIr = R"(function scn000 {
  in f64[8] u0  // shared
  tmp f64[8] t1_0  // shared
  tmp f64[8] t2_0  // shared
  tmp f64 s0  // shared
  in f64[8] u1  // shared
  tmp f64[8] t1_1  // shared
  tmp f64[8] t2_1  // shared
  out f64[8] y  // shared

  for (i1_0 = 0; i1_0 < 8; i1_0++) {
    t1_0[i1_0] = ((((u0[i1_0] + (u0[max((i1_0 - 1), 0)] * 1.06643)) + (u0[min((i1_0 + 1), 7)] * 0.902756)) * 1.22117) + -0.102539);
  }
  for (i2_0 = 0; i2_0 < 8; i2_0++) {
    t2_0[i2_0] = ((((t1_0[i2_0] + (t1_0[max((i2_0 - 1), 0)] * 0.644547)) + (t1_0[min((i2_0 + 1), 7)] * 1.23722)) * 0.774049) + 0.145913);
  }
  s0 = 0;
  for (ia_0 = 0; ia_0 < 8; ia_0++) {
    s0 = (s0 + (t2_0[ia_0] * 1.30009));
  }
  for (i1_1 = 0; i1_1 < 8; i1_1++) {
    t1_1[i1_1] = ((((u1[i1_1] + (u1[max((i1_1 - 1), 0)] * 1.04266)) + (u1[min((i1_1 + 1), 7)] * 1.13794)) * 1.11776) + 0.241278);
  }
  for (i2_1 = 0; i2_1 < 8; i2_1++) {
    t2_1[i2_1] = ((t1_1[i2_1] + (t1_1[max((i2_1 - 1), 0)] * 1.19741)) + (t1_1[min((i2_1 + 1), 7)] * 0.946468));
  }
  for (iy = 0; iy < 8; iy++) {
    y[iy] = (s0 + t2_1[iy]);
  }
}
)";

TEST(StencilChainGenerator, GoldenGraphFixedSeed) {
  const scenarios::Scenario scenario =
      scenarios::generateScenario(goldenStencilOptions(), 0);
  EXPECT_EQ(scenario.name, "scn000");
  EXPECT_EQ(scenario.layers, 2);
  // 2 chains x 2 stages + 1 reduction-terminated chain + sink.
  EXPECT_EQ(scenario.nodes, 6);
  EXPECT_EQ(scenario.arrayLen, 8);
  EXPECT_TRUE(ir::validate(*scenario.model.fn).empty());
  EXPECT_EQ(ir::toString(*scenario.model.fn), kGoldenStencilIr);
}

TEST(StencilChainGenerator, IsDeterministicAndDistinctFromLayeredDag) {
  const scenarios::GeneratorOptions options = goldenStencilOptions();
  for (int index : {0, 2, 9}) {
    EXPECT_EQ(
        ir::toString(*scenarios::generateScenario(options, index).model.fn),
        ir::toString(*scenarios::generateScenario(options, index).model.fn));
  }
  EXPECT_NE(ir::toString(*scenarios::generateScenario(options, 0).model.fn),
            ir::toString(
                *scenarios::generateScenario(goldenOptions(), 0).model.fn));
}

TEST(StencilChainGenerator, RadiusKnobShapesTheWindow) {
  // Radius 0 degenerates to point-wise stages: no clamped window reads.
  scenarios::GeneratorOptions options = goldenStencilOptions();
  options.stencilRadius = 0;
  const std::string pointwise =
      ir::toString(*scenarios::generateScenario(options, 0).model.fn);
  EXPECT_EQ(pointwise.find("min("), std::string::npos);
  EXPECT_EQ(pointwise.find("max("), std::string::npos);

  // Radius 2 reads two clamped neighbours per side in every stage.
  options.stencilRadius = 2;
  const std::string wide =
      ir::toString(*scenarios::generateScenario(options, 0).model.fn);
  EXPECT_NE(wide.find("+ 2), 7)"), std::string::npos);
  EXPECT_NE(wide.find("- 2), 0)"), std::string::npos);

  options.stencilRadius = -1;
  EXPECT_THROW((void)scenarios::generateScenario(options, 0),
               support::ToolchainError);
}

TEST(StencilChainGenerator, WidthAndAccumulatorKnobs) {
  // accumulatorFraction 0: every chain feeds the sink as an array, so the
  // loop count is chains * layers + sink and no scalar is declared.
  scenarios::GeneratorOptions options = goldenStencilOptions();
  options.accumulatorFraction = 0.0;
  options.minWidth = options.maxWidth = 3;
  const scenarios::Scenario plain =
      scenarios::generateScenario(options, 0);
  EXPECT_EQ(plain.nodes, 3 * plain.layers + 1);
  EXPECT_EQ(ir::toString(*plain.model.fn).find("s0"), std::string::npos);

  // accumulatorFraction 1: every chain is reduction-terminated.
  options.accumulatorFraction = 1.0;
  const scenarios::Scenario reduced =
      scenarios::generateScenario(options, 0);
  EXPECT_EQ(reduced.nodes, 3 * (reduced.layers + 1) + 1);
  for (int c = 0; c < 3; ++c) {
    EXPECT_NE(reduced.model.fn->find("s" + std::to_string(c)), nullptr);
  }
}

TEST(StencilChainGenerator, CcrKnobScalesComputation) {
  scenarios::GeneratorOptions computeBound = goldenStencilOptions();
  computeBound.ccr = 0.25;
  scenarios::GeneratorOptions commBound = goldenStencilOptions();
  commBound.ccr = 4.0;
  const scenarios::Scenario heavy =
      scenarios::generateScenario(computeBound, 0);
  const scenarios::Scenario light = scenarios::generateScenario(commBound, 0);
  EXPECT_EQ(heavy.nodes, light.nodes);
  const adl::Platform platform = adl::makeRecoreXentiumBus(2);
  const wcet::TimingModel model = wcet::TimingModel::forTile(platform, 0);
  EXPECT_GT(
      wcet::SchemaAnalyzer(*heavy.model.fn, model).analyzeFunction().cycles,
      wcet::SchemaAnalyzer(*light.model.fn, model).analyzeFunction().cycles);
}

TEST(StencilChainGenerator, ShapeNamesRoundTrip) {
  EXPECT_STREQ(scenarios::shapeName(scenarios::Shape::LayeredDag),
               "layered_dag");
  EXPECT_STREQ(scenarios::shapeName(scenarios::Shape::StencilChain),
               "stencil_chain");
  EXPECT_EQ(scenarios::shapeFromName("stencil_chain"),
            scenarios::Shape::StencilChain);
  EXPECT_EQ(scenarios::shapeFromName("layered_dag"),
            scenarios::Shape::LayeredDag);
  EXPECT_THROW((void)scenarios::shapeFromName("banded"),
               support::ToolchainError);
}

TEST(StencilChainGenerator, RunsEndToEndWithinBound) {
  const scenarios::Scenario scenario =
      scenarios::generateScenario(goldenStencilOptions(), 1);
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);
  core::ToolchainOptions options;
  options.chunkCandidates = {1, 2};
  const core::Toolchain toolchain(platform, options);
  const core::ToolchainResult result = toolchain.run(scenario.model);
  EXPECT_GT(result.system.makespan, 0);
  const sim::Simulator simulator(result.program, platform);
  ir::Environment env = ir::makeZeroEnvironment(*result.fn);
  EXPECT_LE(simulator.step(env).makespan, result.system.makespan);
}

TEST(ScenarioGenerator, RejectsInvalidKnobs) {
  scenarios::GeneratorOptions options;
  options.ccr = 0.0;
  EXPECT_THROW((void)scenarios::generateScenario(options, 0),
               support::ToolchainError);
  options = {};
  options.wcetSpread = 0.5;
  EXPECT_THROW((void)scenarios::generateScenario(options, 0),
               support::ToolchainError);
  options = {};
  options.minLayers = 3;
  options.maxLayers = 2;
  EXPECT_THROW((void)scenarios::generateScenario(options, 0),
               support::ToolchainError);
  EXPECT_THROW((void)scenarios::generateScenario({}, -1),
               support::ToolchainError);
}

TEST(PlatformSweep, BuildsTheDocumentedCaseGrid) {
  const std::vector<scenarios::PlatformCase> cases =
      scenarios::buildPlatformSweep({});
  ASSERT_EQ(cases.size(), 9u);  // {2,4,8} x {bus_rr, bus_tdma, noc}
  EXPECT_EQ(cases[0].name, "bus_rr_c2");
  EXPECT_EQ(cases[1].name, "bus_tdma_c2");
  EXPECT_EQ(cases[2].name, "noc_c2");
  EXPECT_TRUE(cases[0].platform.isBus());
  EXPECT_EQ(cases[0].platform.bus().arbitration, adl::Arbitration::RoundRobin);
  EXPECT_EQ(cases[1].platform.bus().arbitration, adl::Arbitration::Tdma);
  EXPECT_TRUE(cases[2].platform.isNoc());
  EXPECT_EQ(cases[0].platform.coreCount(), 2);
  // NoC rounds up to the smallest mesh holding the requested count.
  EXPECT_EQ(cases[8].name, "noc_c8");
  EXPECT_EQ(cases[8].platform.coreCount(), 9);  // 3x3
}

TEST(PlatformSweep, SpmSweepOverridesEveryTile) {
  scenarios::SweepOptions options;
  options.coreCounts = {2};
  options.busTdma = false;
  options.noc = false;
  options.spmBytes = {4096, 16384};
  const std::vector<scenarios::PlatformCase> cases =
      scenarios::buildPlatformSweep(options);
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_EQ(cases[0].name, "bus_rr_c2_spm4096");
  EXPECT_EQ(cases[1].name, "bus_rr_c2_spm16384");
  for (const adl::Tile& tile : cases[0].platform.tiles()) {
    EXPECT_EQ(tile.core.spmBytes, 4096);
  }
}

TEST(PlatformSweep, RejectsEmptyOrInvalidSweeps) {
  scenarios::SweepOptions none;
  none.busRoundRobin = none.busTdma = none.noc = false;
  EXPECT_THROW((void)scenarios::buildPlatformSweep(none),
               support::ToolchainError);
  scenarios::SweepOptions badCores;
  badCores.coreCounts = {0};
  EXPECT_THROW((void)scenarios::buildPlatformSweep(badCores),
               support::ToolchainError);
  scenarios::SweepOptions badSpm;
  badSpm.spmBytes = {-1};
  EXPECT_THROW((void)scenarios::buildPlatformSweep(badSpm),
               support::ToolchainError);
}

TEST(ScenarioPipeline, GeneratedScenarioRunsEndToEnd) {
  // One generated workload through the full tool-chain, then the safety
  // check the paper's claim rests on: observed makespan <= static bound.
  const scenarios::Scenario scenario =
      scenarios::generateScenario(goldenOptions(), 1);
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);
  core::ToolchainOptions options;
  options.chunkCandidates = {1, 2};
  const core::Toolchain toolchain(platform, options);
  const core::ToolchainResult result = toolchain.run(scenario.model);
  EXPECT_GT(result.system.makespan, 0);
  EXPECT_FALSE(result.graph->tasks.empty());

  const sim::Simulator simulator(result.program, platform);
  ir::Environment env = ir::makeZeroEnvironment(*result.fn);
  const sim::StepResult observed = simulator.step(env);
  EXPECT_LE(observed.makespan, result.system.makespan);
}

}  // namespace
}  // namespace argo
