// Unit tests for the support utilities.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/diagnostics.h"
#include "support/interval.h"
#include "support/rng.h"
#include "support/shared_incumbent.h"
#include "support/strings.h"

namespace argo::support {
namespace {

TEST(Diagnostics, StartsEmpty) {
  DiagnosticEngine diag;
  EXPECT_FALSE(diag.hasErrors());
  EXPECT_EQ(diag.errorCount(), 0);
  EXPECT_TRUE(diag.all().empty());
}

TEST(Diagnostics, CountsOnlyErrors) {
  DiagnosticEngine diag;
  diag.note("fyi");
  diag.warning("careful");
  EXPECT_FALSE(diag.hasErrors());
  diag.error("broken", "stage x");
  EXPECT_TRUE(diag.hasErrors());
  EXPECT_EQ(diag.errorCount(), 1);
  EXPECT_EQ(diag.all().size(), 3u);
}

TEST(Diagnostics, RendersContext) {
  DiagnosticEngine diag;
  diag.error("bad wire", "diagram 'egpws'");
  const std::string text = diag.str();
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("diagram 'egpws'"), std::string::npos);
  EXPECT_NE(text.find("bad wire"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine diag;
  diag.error("x");
  diag.clear();
  EXPECT_FALSE(diag.hasErrors());
  EXPECT_TRUE(diag.all().empty());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Interval, EmptyAndLength) {
  EXPECT_TRUE((Interval{5, 5}).empty());
  EXPECT_TRUE((Interval{6, 5}).empty());
  EXPECT_EQ((Interval{2, 7}).length(), 5);
  EXPECT_EQ((Interval{7, 2}).length(), 0);
}

TEST(Interval, Contains) {
  const Interval iv{10, 20};
  EXPECT_TRUE(iv.contains(10));
  EXPECT_TRUE(iv.contains(19));
  EXPECT_FALSE(iv.contains(20));
  EXPECT_FALSE(iv.contains(9));
}

TEST(Interval, OverlapsIsSymmetricAndHalfOpen) {
  const Interval a{0, 10};
  const Interval b{10, 20};
  const Interval c{5, 15};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_FALSE(b.overlaps(a));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
}

TEST(Interval, Intersect) {
  const Interval a{0, 10};
  const Interval b{5, 15};
  EXPECT_EQ(a.intersect(b), (Interval{5, 10}));
  EXPECT_TRUE(a.intersect(Interval{20, 30}).empty());
}

TEST(IntervalSet, InsertMergesOverlapping) {
  IntervalSet set;
  set.insert({0, 10});
  set.insert({20, 30});
  set.insert({5, 25});  // bridges both
  ASSERT_EQ(set.intervals().size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 30}));
}

TEST(IntervalSet, InsertMergesTouching) {
  IntervalSet set;
  set.insert({0, 10});
  set.insert({10, 20});
  ASSERT_EQ(set.intervals().size(), 1u);
  EXPECT_EQ(set.coveredLength(), 20);
}

TEST(IntervalSet, DisjointStaysSorted) {
  IntervalSet set;
  set.insert({30, 40});
  set.insert({0, 5});
  set.insert({10, 20});
  ASSERT_EQ(set.intervals().size(), 3u);
  EXPECT_EQ(set.intervals()[0].lo, 0);
  EXPECT_EQ(set.intervals()[1].lo, 10);
  EXPECT_EQ(set.intervals()[2].lo, 30);
  EXPECT_EQ(set.coveredLength(), 25);
}

TEST(IntervalSet, EmptyInsertIgnored) {
  IntervalSet set;
  set.insert({5, 5});
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, OverlapQueries) {
  IntervalSet set;
  set.insert({0, 10});
  set.insert({20, 30});
  EXPECT_TRUE(set.overlaps({5, 6}));
  EXPECT_FALSE(set.overlaps({10, 20}));
  EXPECT_EQ(set.overlapLength({5, 25}), 10);
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitSingle) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(startsWith("platform x", "platform"));
  EXPECT_FALSE(startsWith("plat", "platform"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(Strings, FormatCycles) {
  EXPECT_EQ(formatCycles(0), "0");
  EXPECT_EQ(formatCycles(999), "999");
  EXPECT_EQ(formatCycles(1234), "1_234");
  EXPECT_EQ(formatCycles(1234567), "1_234_567");
  EXPECT_EQ(formatCycles(-1234), "-1_234");
}

TEST(SharedIncumbent, StartsAtInitialAndOnlyEverLowers) {
  SharedIncumbent bound(100);
  EXPECT_EQ(bound.get(), 100);
  EXPECT_FALSE(bound.offer(100));  // equal is not an improvement
  EXPECT_FALSE(bound.offer(150));  // raising is rejected outright
  EXPECT_EQ(bound.get(), 100);
  EXPECT_TRUE(bound.offer(40));
  EXPECT_EQ(bound.get(), 40);
  EXPECT_FALSE(bound.offer(60));  // stale (worse) offer after a lowering
  EXPECT_EQ(bound.get(), 40);
}

TEST(SharedIncumbent, ConcurrentOffersConvergeToTheMinimum) {
  // The value is racy while threads run, but monotone: after the join it
  // must be exactly the minimum ever offered, whatever the interleaving.
  SharedIncumbent bound(1'000'000);
  constexpr int kThreads = 8;
  constexpr int kOffersPerThread = 2'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&bound, t] {
      for (int i = 0; i < kOffersPerThread; ++i) {
        // Distinct per-thread sequences; global minimum is 7 (t = 0,
        // i = kOffersPerThread - 1).
        bound.offer(7 + t * 13 + (kOffersPerThread - 1 - i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(bound.get(), 7);
}

}  // namespace
}  // namespace argo::support
