// Property-based suites over randomly generated structured programs:
//   P1. The two WCET engines (schema, CFG/IPET) agree exactly.
//   P2. The static bound dominates every metered interpretation.
//   P3. The whole pipeline (HTG -> schedule -> parallel program -> system
//       WCET) is safe against the simulator, and chunked parallel
//       execution computes the same values as sequential execution.
#include <gtest/gtest.h>

#include "htg/htg.h"
#include "par/parallel_program.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "syswcet/system_wcet.h"
#include "testutil.h"
#include "wcet/analyzer.h"

namespace argo {
namespace {

class RandomProgram : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgram, SchemaAndCfgEnginesAgree) {
  test::ProgramGenerator gen(GetParam());
  const auto fn = gen.generate("p");
  ASSERT_TRUE(ir::validate(*fn).empty());
  const adl::Platform platform = adl::makeRecoreXentiumBus(2);
  const wcet::TimingModel model = wcet::TimingModel::forTile(platform, 0);
  const adl::Cycles schema =
      wcet::SchemaAnalyzer(*fn, model).analyzeFunction().cycles;
  const adl::Cycles cfg = wcet::CfgAnalyzer(*fn, model).analyzeFunction();
  EXPECT_EQ(schema, cfg);
}

TEST_P(RandomProgram, BoundDominatesExecution) {
  test::ProgramGenerator gen(GetParam() * 31 + 7);
  const auto fn = gen.generate("p");
  const adl::Platform platform = adl::makeRecoreXentiumBus(2);
  const wcet::TimingModel model = wcet::TimingModel::forTile(platform, 0);
  const adl::Cycles bound =
      wcet::SchemaAnalyzer(*fn, model).analyzeFunction().cycles;

  for (int trial = 0; trial < 5; ++trial) {
    ir::Environment env = gen.makeInputs(*fn);
    ir::CountingMeter meter;
    ir::Evaluator(*fn).run(env, &meter);
    adl::Cycles metered = 0;
    for (int c = 0; c < ir::kOpClassCount; ++c) {
      const auto op = static_cast<ir::OpClass>(c);
      metered += meter.ops()[op] * model.opCost(op);
    }
    for (ir::Storage s : {ir::Storage::Local, ir::Storage::Scratchpad,
                          ir::Storage::Shared}) {
      metered += (meter.reads(s) + meter.writes(s)) * model.accessCost(s);
    }
    EXPECT_LE(metered, bound) << "trial " << trial;
  }
}

TEST_P(RandomProgram, PipelineSafeAndValuePreserving) {
  test::ProgramGenerator gen(GetParam() * 101 + 13);
  const auto fn = gen.generate("p");
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);

  const htg::Htg htg = htg::buildHtg(*fn);
  for (int chunks : {1, 3}) {
    const htg::TaskGraph graph = htg::expand(htg, htg::ExpandOptions{chunks});
    sched::Scheduler scheduler(graph, platform);
    const sched::Schedule schedule = scheduler.run(sched::SchedOptions{});
    ASSERT_TRUE(sched::validateSchedule(schedule, graph, platform,
                                        scheduler.timings())
                    .empty());
    const par::ParallelProgram program =
        par::buildParallelProgram(graph, schedule, platform);
    const syswcet::SystemWcet bound =
        syswcet::analyzeSystem(program, platform, scheduler.timings());

    sim::Simulator simulator(program, platform);
    ir::Environment simEnv = gen.makeInputs(*fn);
    ir::Environment refEnv = simEnv;
    const sim::StepResult observed = simulator.step(simEnv);
    EXPECT_LE(observed.makespan, bound.makespan)
        << "chunks " << chunks;

    ir::Evaluator(*fn).run(refEnv);
    EXPECT_TRUE(test::outputsMatch(*fn, refEnv, simEnv))
        << "chunks " << chunks;
  }
}

TEST_P(RandomProgram, MhpConsistentWithSchedule) {
  // Tasks placed on the same tile are never MHP; MHP is symmetric and
  // irreflexive.
  test::ProgramGenerator gen(GetParam() * 997 + 3);
  const auto fn = gen.generate("p");
  const adl::Platform platform = adl::makeRecoreXentiumBus(3);
  const htg::TaskGraph graph =
      htg::expand(htg::buildHtg(*fn), htg::ExpandOptions{2});
  sched::Scheduler scheduler(graph, platform);
  const sched::Schedule schedule = scheduler.run(sched::SchedOptions{});
  const par::ParallelProgram program =
      par::buildParallelProgram(graph, schedule, platform);
  const auto mhp = syswcet::mayHappenInParallel(program);
  const std::size_t n = graph.tasks.size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FALSE(mhp[i][i]);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(mhp[i][j], mhp[j][i]);
      if (schedule.placements[i].tile == schedule.placements[j].tile) {
        EXPECT_FALSE(mhp[i][j]) << i << "," << j << " share a tile";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace argo
