// Unit tests for the hierarchical CFG and the rewriting utilities.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/cfg.h"
#include "ir/printer.h"
#include "ir/rewrite.h"

namespace argo::ir {
namespace {

TEST(Cfg, EmptyBlockIsEntryExit) {
  const auto cfg = Cfg::build(*block());
  ASSERT_EQ(cfg->nodes().size(), 2u);
  EXPECT_EQ(cfg->node(cfg->entry()).kind, CfgNodeKind::Entry);
  EXPECT_EQ(cfg->node(cfg->exit()).kind, CfgNodeKind::Exit);
}

TEST(Cfg, ConsecutiveAssignsShareBasicBlock) {
  auto b = block();
  b->append(assign(ref("x"), lit(1)));
  b->append(assign(ref("y"), lit(2)));
  b->append(assign(ref("z"), lit(3)));
  const auto cfg = Cfg::build(*b);
  int basics = 0;
  for (const CfgNode& n : cfg->nodes()) {
    if (n.kind == CfgNodeKind::Basic) {
      ++basics;
      EXPECT_EQ(n.assigns.size(), 3u);
    }
  }
  EXPECT_EQ(basics, 1);
}

TEST(Cfg, IfCreatesBranchAndJoin) {
  auto thenB = block();
  thenB->append(assign(ref("x"), lit(1)));
  auto elseB = block();
  elseB->append(assign(ref("x"), lit(2)));
  auto b = block();
  b->append(ifStmt(boolean(true), std::move(thenB), std::move(elseB)));
  const auto cfg = Cfg::build(*b);
  int branches = 0;
  int joins = 0;
  for (const CfgNode& n : cfg->nodes()) {
    if (n.kind == CfgNodeKind::Branch) {
      ++branches;
      EXPECT_EQ(n.succs.size(), 2u);
    }
    if (n.kind == CfgNodeKind::Join) ++joins;
  }
  EXPECT_EQ(branches, 1);
  EXPECT_EQ(joins, 1);
}

TEST(Cfg, EmptyElseStillJoins) {
  auto thenB = block();
  thenB->append(assign(ref("x"), lit(1)));
  auto b = block();
  b->append(ifStmt(boolean(false), std::move(thenB)));
  const auto cfg = Cfg::build(*b);
  // Must reach the exit regardless of branch direction.
  EXPECT_NO_THROW((void)cfg->topoOrder());
  for (const CfgNode& n : cfg->nodes()) {
    if (n.kind == CfgNodeKind::Branch) {
      EXPECT_EQ(n.succs.size(), 2u);
    }
  }
}

TEST(Cfg, LoopBecomesHierarchicalNode) {
  auto body = block();
  body->append(assign(ref("a", exprVec(var("i"))), var("i")));
  auto b = block();
  b->append(forLoop("i", 0, 8, std::move(body)));
  const auto cfg = Cfg::build(*b);
  int loops = 0;
  for (const CfgNode& n : cfg->nodes()) {
    if (n.kind == CfgNodeKind::Loop) {
      ++loops;
      ASSERT_NE(n.loop, nullptr);
      EXPECT_EQ(n.loop->tripCount(), 8);
      ASSERT_NE(n.body, nullptr);
      EXPECT_GE(n.body->nodes().size(), 3u);  // entry + basic + exit
    }
  }
  EXPECT_EQ(loops, 1);
}

TEST(Cfg, TopoOrderCoversAllNodes) {
  auto thenB = block();
  thenB->append(assign(ref("x"), lit(1)));
  auto b = block();
  b->append(assign(ref("y"), lit(0)));
  b->append(ifStmt(boolean(true), std::move(thenB)));
  b->append(assign(ref("z"), lit(2)));
  const auto cfg = Cfg::build(*b);
  const auto order = cfg->topoOrder();
  EXPECT_EQ(order.size(), cfg->nodes().size());
  EXPECT_EQ(order.front(), cfg->entry());
}

TEST(Cfg, TotalNodeCountIncludesNesting) {
  auto inner = block();
  inner->append(assign(ref("a", exprVec(var("j"))), var("j")));
  auto outerBody = block();
  outerBody->append(forLoop("j", 0, 2, std::move(inner)));
  auto b = block();
  b->append(forLoop("i", 0, 2, std::move(outerBody)));
  const auto cfg = Cfg::build(*b);
  EXPECT_GT(cfg->totalNodeCount(), cfg->nodes().size());
}

TEST(Rewrite, RenameVariablesEverywhere) {
  StmtPtr s = assign(ref("a", exprVec(var("i"))),
                     add(var("x"), ref("x", exprVec())));
  renameVars(*s, {{"a", "A"}, {"x", "X"}});
  EXPECT_EQ(toString(*s), "A[i] = (X + X);\n");
}

TEST(Rewrite, RenameLoopVariable) {
  auto body = block();
  body->append(assign(ref("a", exprVec(var("i"))), var("i")));
  StmtPtr loop = forLoop("i", 0, 4, std::move(body));
  renameVars(*loop, {{"i", "k"}});
  const std::string text = toString(*loop);
  EXPECT_NE(text.find("for (k = 0"), std::string::npos);
  EXPECT_NE(text.find("a[k] = k;"), std::string::npos);
}

TEST(Rewrite, RenameLeavesOthersAlone) {
  StmtPtr s = assign(ref("y"), var("x"));
  renameVars(*s, {{"z", "Z"}});
  EXPECT_EQ(toString(*s), "y = x;\n");
}

TEST(Rewrite, SubstituteScalarEverywhere) {
  StmtPtr s = assign(ref("a", exprVec(add(var("i"), lit(1)))),
                     mul(var("i"), var("i")));
  const IntLit three(3);
  substituteVar(*s, "i", three);
  EXPECT_EQ(toString(*s), "a[(3 + 1)] = (3 * 3);\n");
}

TEST(Rewrite, SubstituteRespectsShadowing) {
  // Substituting i must not touch a nested loop that redefines i.
  auto inner = block();
  inner->append(assign(ref("a", exprVec(var("i"))), var("i")));
  auto outer = block();
  outer->append(forLoop("i", 0, 2, std::move(inner)));
  outer->append(assign(ref("y"), var("i")));
  StmtPtr wrapper = std::make_unique<Block>(std::move(outer->stmts()));
  const IntLit seven(7);
  substituteVar(*wrapper, "i", seven);
  const std::string text = toString(*wrapper);
  EXPECT_NE(text.find("a[i] = i;"), std::string::npos);  // untouched
  EXPECT_NE(text.find("y = 7;"), std::string::npos);     // substituted
}

TEST(Rewrite, SubstituteInIfCondition) {
  auto thenB = block();
  thenB->append(assign(ref("y"), lit(1)));
  StmtPtr s = ifStmt(lt(var("i"), lit(4)), std::move(thenB));
  const IntLit two(2);
  substituteVar(*s, "i", two);
  EXPECT_NE(toString(*s).find("if ((2 < 4))"), std::string::npos);
}

TEST(Rewrite, SubstituteWholeExpression) {
  ExprPtr e = add(var("i"), mul(var("i"), lit(2)));
  const ExprPtr replacement = add(var("base"), lit(5));
  e = substituteVar(std::move(e), "i", *replacement);
  EXPECT_EQ(toString(*e), "((base + 5) + ((base + 5) * 2))");
}

}  // namespace
}  // namespace argo::ir
