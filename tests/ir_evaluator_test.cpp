// Unit tests for the reference interpreter and its execution metering.
#include <gtest/gtest.h>

#include <cmath>

#include "ir/builder.h"
#include "ir/evaluator.h"
#include "support/diagnostics.h"

namespace argo::ir {
namespace {

/// Builds a function, runs it on an empty environment, returns env.
Environment runFn(Function& fn, Environment env = {},
                  ExecutionMeter* meter = nullptr) {
  Evaluator evaluator(fn);
  evaluator.run(env, meter);
  return env;
}

TEST(Value, ZerosAndAccess) {
  Value v = Value::zeros(Type::array(ScalarKind::Float64, {3}));
  EXPECT_EQ(v.size(), 3);
  EXPECT_DOUBLE_EQ(v.getFloat(2), 0.0);
  v.setFloat(1, 2.5);
  EXPECT_DOUBLE_EQ(v.getFloat(1), 2.5);
}

TEST(Value, IntValueConversions) {
  Value v = Value::scalarInt(7);
  EXPECT_EQ(v.getInt(), 7);
  EXPECT_DOUBLE_EQ(v.getFloat(), 7.0);
}

TEST(Value, ApproxEquals) {
  EXPECT_TRUE(Value::scalarFloat(1.0).approxEquals(
      Value::scalarFloat(1.0 + 1e-12)));
  EXPECT_FALSE(Value::scalarFloat(1.0).approxEquals(Value::scalarFloat(1.1)));
  EXPECT_FALSE(Value::scalarFloat(1.0).approxEquals(
      Value::zeros(Type::array(ScalarKind::Float64, {2}))));
}

TEST(Value, FloatsFactoryChecksSize) {
  EXPECT_THROW(
      Value::floats(Type::array(ScalarKind::Float64, {3}), {1.0}),
      support::ToolchainError);
}

TEST(Evaluator, FloatArithmetic) {
  Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output);
  fn.body().append(
      assign(ref("y"), add(mul(flt(2.0), flt(3.0)), div(flt(9.0), flt(2.0)))));
  const Environment env = runFn(fn);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(), 10.5);
}

TEST(Evaluator, IntegerDivisionTruncates) {
  Function fn("f");
  fn.declare("y", Type::int32(), VarRole::Output);
  fn.body().append(assign(ref("y"), div(lit(7), lit(2))));
  EXPECT_EQ(runFn(fn).at("y").getInt(), 3);
}

TEST(Evaluator, IntegerDivisionByZeroThrows) {
  Function fn("f");
  fn.declare("y", Type::int32(), VarRole::Output);
  fn.body().append(assign(ref("y"), div(lit(7), lit(0))));
  EXPECT_THROW(runFn(fn), support::ToolchainError);
}

TEST(Evaluator, MixedPromotesToFloat) {
  Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output);
  fn.body().append(assign(ref("y"), div(lit(7), flt(2.0))));
  EXPECT_DOUBLE_EQ(runFn(fn).at("y").getFloat(), 3.5);
}

TEST(Evaluator, MinMaxModulo) {
  Function fn("f");
  fn.declare("a", Type::int32(), VarRole::Output);
  fn.declare("b", Type::float64(), VarRole::Output);
  fn.declare("c", Type::int32(), VarRole::Output);
  fn.body().append(assign(ref("a"), bin(BinOpKind::Min, lit(3), lit(-2))));
  fn.body().append(assign(ref("b"), bin(BinOpKind::Max, flt(3.5), flt(7.25))));
  fn.body().append(assign(ref("c"), bin(BinOpKind::Mod, lit(10), lit(4))));
  const Environment env = runFn(fn);
  EXPECT_EQ(env.at("a").getInt(), -2);
  EXPECT_DOUBLE_EQ(env.at("b").getFloat(), 7.25);
  EXPECT_EQ(env.at("c").getInt(), 2);
}

TEST(Evaluator, ComparisonsAndLogic) {
  Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output);
  // y = (3 < 4 && !(2 >= 5)) ? 1 : 0
  fn.body().append(assign(
      ref("y"), select(bin(BinOpKind::And, lt(lit(3), lit(4)),
                           un(UnOpKind::Not, ge(lit(2), lit(5)))),
                       flt(1.0), flt(0.0))));
  EXPECT_DOUBLE_EQ(runFn(fn).at("y").getFloat(), 1.0);
}

TEST(Evaluator, ShortCircuitAvoidsDivByZero) {
  Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output);
  // false && (1/0 > 0) must not evaluate the division.
  fn.body().append(assign(
      ref("y"), select(bin(BinOpKind::And, boolean(false),
                           bin(BinOpKind::Gt, div(lit(1), lit(0)), lit(0))),
                       flt(1.0), flt(0.0))));
  EXPECT_DOUBLE_EQ(runFn(fn).at("y").getFloat(), 0.0);
}

TEST(Evaluator, MathIntrinsics) {
  Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output);
  fn.body().append(assign(
      ref("y"), call("atan2", exprVec(flt(1.0), flt(1.0)))));
  EXPECT_NEAR(runFn(fn).at("y").getFloat(), std::atan2(1.0, 1.0), 1e-12);
}

TEST(Evaluator, UnknownIntrinsicThrows) {
  Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output);
  fn.body().append(assign(ref("y"), call("frobnicate", exprVec(flt(1.0)))));
  EXPECT_THROW(runFn(fn), support::ToolchainError);
}

TEST(Evaluator, UnaryOps) {
  Function fn("f");
  fn.declare("a", Type::float64(), VarRole::Output);
  fn.declare("b", Type::float64(), VarRole::Output);
  fn.declare("c", Type::int32(), VarRole::Output);
  fn.body().append(assign(ref("a"), sqrtE(flt(16.0))));
  fn.body().append(assign(ref("b"), un(UnOpKind::Floor, flt(2.9))));
  fn.body().append(assign(ref("c"), un(UnOpKind::ToInt, flt(2.9))));
  const Environment env = runFn(fn);
  EXPECT_DOUBLE_EQ(env.at("a").getFloat(), 4.0);
  EXPECT_DOUBLE_EQ(env.at("b").getFloat(), 2.0);
  EXPECT_EQ(env.at("c").getInt(), 2);
}

TEST(Evaluator, LoopAccumulates) {
  Function fn("f");
  fn.declare("y", Type::int32(), VarRole::Output);
  fn.body().append(assign(ref("y"), lit(0)));
  auto body = block();
  body->append(assign(ref("y"), add(var("y"), var("i"))));
  fn.body().append(forLoop("i", 0, 5, std::move(body)));
  EXPECT_EQ(runFn(fn).at("y").getInt(), 10);
}

TEST(Evaluator, StridedLoop) {
  Function fn("f");
  fn.declare("y", Type::int32(), VarRole::Output);
  fn.body().append(assign(ref("y"), lit(0)));
  auto body = block();
  body->append(assign(ref("y"), add(var("y"), lit(1))));
  fn.body().append(forLoop("i", 0, 10, std::move(body), 3));
  EXPECT_EQ(runFn(fn).at("y").getInt(), 4);
}

TEST(Evaluator, TwoDimensionalIndexing) {
  Function fn("f");
  fn.declare("m", Type::array(ScalarKind::Float64, {2, 3}), VarRole::Output);
  auto inner = block();
  inner->append(assign(ref("m", exprVec(var("r"), var("c"))),
                       add(mul(var("r"), lit(10)), var("c"))));
  auto outer = block();
  outer->append(forLoop("c", 0, 3, std::move(inner)));
  fn.body().append(forLoop("r", 0, 2, std::move(outer)));
  const Environment env = runFn(fn);
  EXPECT_DOUBLE_EQ(env.at("m").getFloat(0 * 3 + 0), 0.0);
  EXPECT_DOUBLE_EQ(env.at("m").getFloat(1 * 3 + 2), 12.0);
}

TEST(Evaluator, OutOfBoundsThrows) {
  Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {3}), VarRole::Output);
  fn.body().append(assign(ref("a", exprVec(lit(3))), flt(1.0)));
  EXPECT_THROW(runFn(fn), support::ToolchainError);
}

TEST(Evaluator, NegativeIndexThrows) {
  Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {3}), VarRole::Output);
  fn.body().append(assign(ref("a", exprVec(lit(-1))), flt(1.0)));
  EXPECT_THROW(runFn(fn), support::ToolchainError);
}

TEST(Evaluator, MissingInputThrows) {
  Function fn("f");
  fn.declare("x", Type::float64(), VarRole::Input);
  fn.declare("y", Type::float64(), VarRole::Output);
  fn.body().append(assign(ref("y"), var("x")));
  Evaluator evaluator(fn);
  Environment env;
  EXPECT_THROW(evaluator.run(env), support::ToolchainError);
}

TEST(Evaluator, IfTakesCorrectBranch) {
  Function fn("f");
  fn.declare("x", Type::float64(), VarRole::Input);
  fn.declare("y", Type::float64(), VarRole::Output);
  auto thenB = block();
  thenB->append(assign(ref("y"), flt(1.0)));
  auto elseB = block();
  elseB->append(assign(ref("y"), flt(-1.0)));
  fn.body().append(ifStmt(ge(var("x"), flt(0.0)), std::move(thenB),
                          std::move(elseB)));
  Environment env;
  env["x"] = Value::scalarFloat(5.0);
  Evaluator evaluator(fn);
  evaluator.run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(), 1.0);
  env["x"] = Value::scalarFloat(-5.0);
  evaluator.run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(), -1.0);
}

TEST(Evaluator, StatePersistsAcrossRuns) {
  Function fn("f");
  fn.declare("s", Type::float64(), VarRole::State);
  fn.declare("y", Type::float64(), VarRole::Output);
  fn.body().append(assign(ref("y"), var("s")));
  fn.body().append(assign(ref("s"), add(var("s"), flt(1.0))));
  Evaluator evaluator(fn);
  Environment env;
  evaluator.run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(), 0.0);
  evaluator.run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(), 1.0);
  evaluator.run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(), 2.0);
}

TEST(Meter, CountsOpsAndAccesses) {
  Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {4}), VarRole::Input,
             Storage::Shared);
  fn.declare("y", Type::float64(), VarRole::Output, Storage::Local);
  fn.body().append(assign(ref("y"), flt(0.0)));
  auto body = block();
  body->append(assign(ref("y"), add(var("y"), ref("a", exprVec(var("i"))))));
  fn.body().append(forLoop("i", 0, 4, std::move(body)));

  CountingMeter meter;
  Environment env;
  env["a"] = Value::zeros(Type::array(ScalarKind::Float64, {4}));
  Evaluator(fn).run(env, &meter);
  EXPECT_EQ(meter.reads(Storage::Shared), 4);
  EXPECT_EQ(meter.reads(Storage::Local), 4);   // y read per iteration
  EXPECT_EQ(meter.writes(Storage::Local), 5);  // init + 4 updates
  EXPECT_EQ(meter.ops()[OpClass::LoopStep], 4);
  EXPECT_EQ(meter.ops()[OpClass::Branch], 1);  // loop exit
  EXPECT_EQ(meter.ops()[OpClass::FloatAdd], 4);
}

TEST(Meter, SelectMetersOnlyTakenArm) {
  Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output, Storage::Local);
  fn.body().append(assign(
      ref("y"), select(boolean(true), sqrtE(flt(4.0)), sqrtE(flt(9.0)))));
  CountingMeter meter;
  Environment env;
  Evaluator(fn).run(env, &meter);
  EXPECT_EQ(meter.ops()[OpClass::FloatDiv], 1);  // one sqrt, not two
  EXPECT_EQ(meter.ops()[OpClass::Select], 1);
}

TEST(Evaluator, MakeZeroEnvironmentCoversDecls) {
  Function fn("f");
  fn.declare("a", Type::array(ScalarKind::Float64, {4}), VarRole::Input);
  fn.declare("y", Type::float64(), VarRole::Output);
  const Environment env = makeZeroEnvironment(fn);
  EXPECT_EQ(env.size(), 2u);
  EXPECT_EQ(env.at("a").size(), 4);
}

TEST(Evaluator, RunStmtSingleStatement) {
  Function fn("f");
  fn.declare("y", Type::float64(), VarRole::Output);
  const StmtPtr stmt = assign(ref("y"), flt(3.5));
  Environment env;
  Evaluator(fn).runStmt(*stmt, env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(), 3.5);
}

}  // namespace
}  // namespace argo::ir
