// Fault-injection suite for the on-disk stage-cache tier
// (support/disk_cache.h + the core/cache.h stage codecs).
//
// The disk tier's contract is: a cache directory in ANY state — valid,
// truncated, bit-flipped, version-skewed, cross-copied between key slots,
// or full of stale tmp files — can cost recomputes, never correctness.
// Every adversarial corpus below must therefore load as a counted reject
// (or a plain miss) and fall through to recompute; a crash or a
// wrong-value load is a failure of the whole design.
//
// Suite names contain "DiskCache" on purpose: the CI TSan job selects
// concurrency-relevant suites by that regex.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/cache.h"
#include "diamond_fixture.h"
#include "htg/htg.h"
#include "ir/printer.h"
#include "support/disk_cache.h"
#include "support/hash.h"

namespace fs = std::filesystem;

namespace argo {
namespace {

fs::path makeTempDir(const std::string& tag) {
  std::string templ =
      (fs::temp_directory_path() / ("argo_disk_" + tag + "_XXXXXX")).string();
  if (mkdtemp(templ.data()) == nullptr) {
    throw std::runtime_error("mkdtemp failed for " + templ);
  }
  return fs::path(templ);
}

/// RAII temp dir so every test leaves /tmp clean even on failure.
struct TempDir {
  explicit TempDir(const std::string& tag) : path(makeTempDir(tag)) {}
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

std::string readFileBytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << p;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const fs::path& p, std::string_view bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << p;
}

support::StageKey keyOf(std::uint64_t hi, std::uint64_t lo) {
  support::StageKey k;
  k.hi = hi;
  k.lo = lo;
  return k;
}

// A payload with embedded NUL and high bytes — the codec must be 8-bit
// clean, records are binary.
const std::string kPayload = std::string("pay\0load\xff\x01", 10);

// ---- ByteWriter / ByteReader ---------------------------------------------

TEST(DiskCacheByteCodec, RoundTripsEveryFieldType) {
  support::ByteWriter w;
  w.u64(0xdeadbeefcafe1234ull)
      .i64(-42)
      .i32(-7)
      .f64(3.5)
      .boolean(true)
      .boolean(false)
      .str(kPayload)
      .key(keyOf(0x1111, 0x2222));
  const std::string bytes = w.take();

  support::ByteReader r(bytes);
  EXPECT_EQ(r.u64(), 0xdeadbeefcafe1234ull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.i32(), -7);
  EXPECT_EQ(r.f64(), 3.5);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), kPayload);
  EXPECT_EQ(r.stageKey(), keyOf(0x1111, 0x2222));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.atEnd());
}

TEST(DiskCacheByteCodec, TruncationAtEveryBoundaryIsStickyFailure) {
  support::ByteWriter w;
  w.u64(1).str("abc").boolean(true).key(keyOf(9, 9)).i32(5);
  const std::string bytes = w.take();

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    support::ByteReader r(std::string_view(bytes).substr(0, len));
    // The full read sequence must never crash, and the one end-of-payload
    // check must flag every truncation point.
    (void)r.u64();
    (void)r.str();
    (void)r.boolean();
    (void)r.stageKey();
    (void)r.i32();
    EXPECT_FALSE(r.ok() && r.atEnd()) << "prefix length " << len;
    // Sticky: once failed, later reads yield zero values, not garbage.
    if (!r.ok()) {
      EXPECT_EQ(r.u64(), 0u) << "prefix length " << len;
      EXPECT_EQ(r.str(), "") << "prefix length " << len;
    }
  }
}

TEST(DiskCacheByteCodec, WrongTagFailsTheStream) {
  support::ByteWriter w;
  w.u64(7);
  support::ByteReader r(w.bytes());
  EXPECT_EQ(r.i64(), 0);  // 'I' expected, 'U' present.
  EXPECT_FALSE(r.ok());
}

TEST(DiskCacheByteCodec, I32RangeIsChecked) {
  support::ByteWriter w;
  w.i64(static_cast<std::int64_t>(INT32_MAX) + 1);
  std::string bytes = w.take();
  bytes[0] = 'W';  // Reframe the out-of-range wide value as an i32 field.
  support::ByteReader r(bytes);
  EXPECT_EQ(r.i32(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(DiskCacheByteCodec, BooleanRejectsNonCanonicalByte) {
  const std::string bytes = "B\x02";
  support::ByteReader r(bytes);
  EXPECT_FALSE(r.boolean());
  EXPECT_FALSE(r.ok());
}

TEST(DiskCacheByteCodec, StringLengthBeyondBufferFails) {
  support::ByteWriter w;
  w.str("abc");
  std::string bytes = w.take();
  bytes[8] = '\x7f';  // Top length byte: claims an absurd string size.
  support::ByteReader r(bytes);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(DiskCacheByteCodec, CountGuardsAbsurdSequenceLengths) {
  support::ByteWriter w;
  w.u64(std::uint64_t{1} << 60);
  support::ByteReader r(w.bytes());
  EXPECT_EQ(r.count(), 0u);  // Cannot possibly fit the remaining 0 bytes.
  EXPECT_FALSE(r.ok());
}

TEST(DiskCacheByteCodec, InvalidateSupportsSemanticRejection) {
  support::ByteWriter w;
  w.u64(99);  // Structurally fine; pretend 99 is an out-of-range enum.
  support::ByteReader r(w.bytes());
  EXPECT_EQ(r.u64(), 99u);
  EXPECT_TRUE(r.ok());
  r.invalidate();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.atEnd());
}

// ---- DiskCache store/load ------------------------------------------------

TEST(DiskCacheStore, StoreThenLoadRoundTripsBinaryPayloads) {
  TempDir dir("roundtrip");
  support::DiskCache cache(dir.path.string());
  const support::StageKey key = keyOf(0xabc, 0xdef);

  cache.store("timings", key, kPayload);
  const std::optional<std::string> loaded = cache.load("timings", key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, kPayload);

  const support::DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.rejects, 0u);
  EXPECT_EQ(stats.storeFailures, 0u);
}

TEST(DiskCacheStore, LoadOnEmptyDirectoryIsAMiss) {
  TempDir dir("miss");
  support::DiskCache cache(dir.path.string());
  EXPECT_FALSE(cache.load("timings", keyOf(1, 2)).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().rejects, 0u);
}

TEST(DiskCacheStore, RecordPathFollowsTheDocumentedLayout) {
  TempDir dir("layout");
  support::DiskCache cache(dir.path.string());
  const support::StageKey key = keyOf(0x0123456789abcdefull, 0xfedcba9876543210ull);
  const std::string expected =
      (dir.path / "schedule" / (key.text() + ".rec")).string();
  EXPECT_EQ(cache.recordPath("schedule", key), expected);
  cache.store("schedule", key, "x");
  EXPECT_TRUE(fs::exists(expected));
}

TEST(DiskCacheStore, StoreLeavesNoTmpFilesBehind) {
  TempDir dir("tmpclean");
  support::DiskCache cache(dir.path.string());
  cache.store("expand", keyOf(3, 4), kPayload);
  for (const auto& entry : fs::recursive_directory_iterator(dir.path)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

TEST(DiskCacheStore, LastStoreWins) {
  TempDir dir("overwrite");
  support::DiskCache cache(dir.path.string());
  const support::StageKey key = keyOf(5, 6);
  cache.store("timings", key, "first");
  cache.store("timings", key, "second");
  const std::optional<std::string> loaded = cache.load("timings", key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "second");
}

TEST(DiskCacheStore, UnwritableDirectoryOnlyBumpsStoreFailures) {
  TempDir dir("unwritable");
  // Use a regular FILE as the cache root: create_directories must fail.
  const fs::path fileAsDir = dir.path / "not_a_dir";
  writeFileBytes(fileAsDir, "occupied");
  support::DiskCache cache(fileAsDir.string());
  cache.store("timings", keyOf(7, 8), kPayload);  // Must not throw.
  EXPECT_EQ(cache.stats().storeFailures, 1u);
  EXPECT_EQ(cache.stats().stores, 0u);
  EXPECT_FALSE(cache.load("timings", keyOf(7, 8)).has_value());
}

// ---- Adversarial record corpus -------------------------------------------

struct FaultFixture {
  TempDir dir{"fault"};
  support::DiskCache cache{dir.path.string()};
  support::StageKey key = keyOf(0x1122334455667788ull, 0x99aabbccddeeff00ull);
  std::string record;  ///< The valid on-disk bytes, harvested after store.

  FaultFixture() {
    cache.store("timings", key, kPayload);
    record = readFileBytes(cache.recordPath("timings", key));
  }
  void plant(std::string_view bytes) {
    writeFileBytes(cache.recordPath("timings", key), bytes);
  }
};

TEST(DiskCacheFaults, TruncationAtEveryByteIsACountedReject) {
  FaultFixture f;
  ASSERT_GT(f.record.size(), 8u);
  std::uint64_t expectedRejects = 0;
  for (std::size_t len = 0; len < f.record.size(); ++len) {
    f.plant(std::string_view(f.record).substr(0, len));
    EXPECT_FALSE(f.cache.load("timings", f.key).has_value())
        << "truncated to " << len << " bytes";
    ++expectedRejects;
    EXPECT_EQ(f.cache.stats().rejects, expectedRejects);
  }
  EXPECT_EQ(f.cache.stats().hits, 0u);
}

TEST(DiskCacheFaults, FlippingAnySingleByteIsACountedReject) {
  FaultFixture f;
  for (std::size_t i = 0; i < f.record.size(); ++i) {
    std::string bad = f.record;
    bad[i] = static_cast<char>(static_cast<unsigned char>(bad[i]) ^ 0xff);
    f.plant(bad);
    EXPECT_FALSE(f.cache.load("timings", f.key).has_value())
        << "byte " << i << " flipped";
  }
  EXPECT_EQ(f.cache.stats().rejects, f.record.size());
  // The pristine record still loads — the harness itself is sound.
  f.plant(f.record);
  EXPECT_EQ(f.cache.load("timings", f.key), kPayload);
}

TEST(DiskCacheFaults, WrongFormatVersionIsRejectedBeforeParsing) {
  FaultFixture f;
  // Hand-build a structurally perfect record of a FUTURE format version;
  // the version gate must reject it before the checksum is even checked.
  support::ByteWriter w;
  w.u64(support::kDiskCacheFormatVersion + 1)
      .str("timings")
      .key(f.key)
      .str(kPayload)
      .key(keyOf(0, 0));
  f.plant("ARGOCACH" + w.take());
  EXPECT_FALSE(f.cache.load("timings", f.key).has_value());
  EXPECT_EQ(f.cache.stats().rejects, 1u);
}

TEST(DiskCacheFaults, RecordCopiedBetweenKeySlotsIsRejected) {
  FaultFixture f;
  const support::StageKey other = keyOf(0xdead, 0xbeef);
  // A valid record renamed into another key's slot: self-description must
  // catch it (the embedded key disagrees with the requested one).
  writeFileBytes(f.cache.recordPath("timings", other), f.record);
  EXPECT_FALSE(f.cache.load("timings", other).has_value());
  EXPECT_EQ(f.cache.stats().rejects, 1u);
}

TEST(DiskCacheFaults, RecordCopiedBetweenStagesIsRejected) {
  FaultFixture f;
  fs::create_directories(f.dir.path / "schedule");
  writeFileBytes(f.cache.recordPath("schedule", f.key), f.record);
  EXPECT_FALSE(f.cache.load("schedule", f.key).has_value());
  EXPECT_EQ(f.cache.stats().rejects, 1u);
}

TEST(DiskCacheFaults, ZeroLengthRecordIsRejected) {
  FaultFixture f;
  f.plant("");
  EXPECT_FALSE(f.cache.load("timings", f.key).has_value());
  EXPECT_EQ(f.cache.stats().rejects, 1u);
}

TEST(DiskCacheFaults, TrailingGarbageIsRejected) {
  FaultFixture f;
  f.plant(f.record + "junk");
  EXPECT_FALSE(f.cache.load("timings", f.key).has_value());
  EXPECT_EQ(f.cache.stats().rejects, 1u);
}

TEST(DiskCacheFaults, StaleTmpFilesAreInert) {
  FaultFixture f;
  // A crashed writer's leftovers: loads must ignore them entirely (they
  // are not .rec paths), and stores must keep working around them.
  const fs::path stage = f.dir.path / "timings";
  writeFileBytes(stage / (f.key.text() + ".rec.12345.7.tmp"), "partial");
  writeFileBytes(stage / "garbage.tmp", "junk");
  EXPECT_EQ(f.cache.load("timings", f.key), kPayload);
  const support::StageKey fresh = keyOf(0xf00, 0xba7);
  f.cache.store("timings", fresh, "new");
  EXPECT_EQ(f.cache.load("timings", fresh), "new");
  EXPECT_EQ(f.cache.stats().rejects, 0u);
}

TEST(DiskCacheFaults, DamagedRecordIsRepairedByTheNextStore) {
  FaultFixture f;
  f.plant("ARGOCACH short");
  EXPECT_FALSE(f.cache.load("timings", f.key).has_value());
  f.cache.store("timings", f.key, kPayload);
  EXPECT_EQ(f.cache.load("timings", f.key), kPayload);
  EXPECT_EQ(f.cache.stats().rejects, 1u);
}

// ---- Stage payload codecs ------------------------------------------------

core::TransformsStage makeDiamondTransformsValue() {
  core::TransformsStage stage;
  std::unique_ptr<ir::Function> fn = test::makeDiamondFn();
  stage.irText = ir::toString(*fn);
  support::Hasher h;
  h.str(stage.irText);
  stage.irKey = h.finish();
  stage.passesRun = {"normalize", "scratchpad_allocation"};
  stage.fn = std::move(fn);
  return stage;
}

std::shared_ptr<const core::TransformsStage> makeDiamondTransforms() {
  return std::make_shared<const core::TransformsStage>(
      makeDiamondTransformsValue());
}

TEST(DiskCacheStageCodecs, TransformsStageRoundTrips) {
  const std::shared_ptr<const core::TransformsStage> original =
      makeDiamondTransforms();
  const std::string payload = core::encodeTransformsStage(*original);

  const std::optional<core::TransformsStage> decoded =
      core::decodeTransformsStage(payload);
  ASSERT_TRUE(decoded.has_value());
  // irText/irKey are recomputed from the decoded tree, so equality here
  // proves the tree itself survived byte-for-byte (the printer is
  // canonical).
  EXPECT_EQ(decoded->irText, original->irText);
  EXPECT_EQ(decoded->irKey, original->irKey);
  EXPECT_EQ(decoded->passesRun, original->passesRun);
  EXPECT_EQ(ir::toString(*decoded->fn), original->irText);
  // Canonical stability: re-encoding the decoded value is byte-identical.
  EXPECT_EQ(core::encodeTransformsStage(*decoded), payload);
}

TEST(DiskCacheStageCodecs, CyclesRoundTrip) {
  for (const adl::Cycles value : {adl::Cycles{0}, adl::Cycles{123456789},
                                  adl::Cycles{-17}}) {
    const std::optional<adl::Cycles> decoded =
        core::decodeCycles(core::encodeCycles(value));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, value);
  }
}

TEST(DiskCacheStageCodecs, ExpandStageRoundTrips) {
  const std::shared_ptr<const core::TransformsStage> source =
      makeDiamondTransforms();
  htg::ExpandOptions options;
  options.chunksPerLoop = 4;
  options.mergeScalarChains = true;
  core::ExpandStage original;
  original.source = source;
  original.graph = std::make_unique<const htg::TaskGraph>(
      htg::expand(htg::buildHtg(*source->fn), options));
  ASSERT_GT(original.graph->tasks.size(), 1u);
  ASSERT_FALSE(original.graph->deps.empty());

  const std::string payload = core::encodeExpandStage(original);
  const std::optional<core::ExpandStage> decoded =
      core::decodeExpandStage(payload, source);
  ASSERT_TRUE(decoded.has_value());
  // The decoded graph must point at the SOURCE function, like a fresh
  // expansion would.
  EXPECT_EQ(decoded->graph->fn, source->fn.get());
  EXPECT_EQ(decoded->source.get(), source.get());
  ASSERT_EQ(decoded->graph->tasks.size(), original.graph->tasks.size());
  for (std::size_t i = 0; i < original.graph->tasks.size(); ++i) {
    const htg::Task& a = original.graph->tasks[i];
    const htg::Task& b = decoded->graph->tasks[i];
    EXPECT_EQ(b.id, a.id);
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.htgNode, a.htgNode);
    EXPECT_EQ(b.chunkIndex, a.chunkIndex);
    EXPECT_EQ(b.chunkCount, a.chunkCount);
    EXPECT_EQ(b.usage.reads, a.usage.reads);
    EXPECT_EQ(b.usage.writes, a.usage.writes);
    EXPECT_EQ(b.stmts.size(), a.stmts.size());
  }
  ASSERT_EQ(decoded->graph->deps.size(), original.graph->deps.size());
  for (std::size_t i = 0; i < original.graph->deps.size(); ++i) {
    EXPECT_EQ(decoded->graph->deps[i].from, original.graph->deps[i].from);
    EXPECT_EQ(decoded->graph->deps[i].to, original.graph->deps[i].to);
    EXPECT_EQ(decoded->graph->deps[i].vars, original.graph->deps[i].vars);
    EXPECT_EQ(decoded->graph->deps[i].bytes, original.graph->deps[i].bytes);
  }
  // Statement-level equality via canonical re-encoding: the cloned task
  // bodies must serialize to the exact same bytes.
  EXPECT_EQ(core::encodeExpandStage(*decoded), payload);
}

TEST(DiskCacheStageCodecs, TimingsRoundTrip) {
  std::vector<sched::TaskTiming> original(3);
  original[0].wcetByTile = {10, 20, 30};
  original[0].sharedAccesses = 5;
  original[1].wcetByTile = {7};
  original[1].sharedAccesses = 0;
  original[2].wcetByTile = {1, 2, 3, 4, 5, 6, 7, 8};
  original[2].sharedAccesses = 1234567;

  const std::optional<std::vector<sched::TaskTiming>> decoded =
      core::decodeTimings(core::encodeTimings(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST(DiskCacheStageCodecs, ScheduleStageRoundTrips) {
  core::ScheduleStage original;
  original.schedule.placements = {{0, 1, 0, 100}, {1, 0, 50, 220}};
  original.schedule.tileOrder = {{1}, {0}, {}};
  original.schedule.makespan = 220;
  original.schedule.tilesUsed = 2;
  original.schedule.policy = "heft";
  original.system.makespan = 240;
  original.system.tasks = {{0, 110, 110, 10, 2}, {55, 240, 185, 15, 2}};
  original.system.fixpointIterations = 3;

  const std::optional<core::ScheduleStage> decoded =
      core::decodeScheduleStage(core::encodeScheduleStage(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->schedule, original.schedule);
  EXPECT_EQ(decoded->system, original.system);
}

TEST(DiskCacheStageCodecs, EveryTruncatedPayloadDecodesToNullopt) {
  // The decoders are total: every strict prefix of every stage payload
  // must come back nullopt — never a crash, never a partial value.
  const std::shared_ptr<const core::TransformsStage> source =
      makeDiamondTransforms();
  htg::ExpandOptions options;
  core::ExpandStage expand;
  expand.source = source;
  expand.graph = std::make_unique<const htg::TaskGraph>(
      htg::expand(htg::buildHtg(*source->fn), options));
  std::vector<sched::TaskTiming> timings(2);
  timings[0].wcetByTile = {10, 20};
  timings[1].wcetByTile = {30};
  core::ScheduleStage sched;
  sched.schedule.placements = {{0, 0, 0, 10}};
  sched.schedule.tileOrder = {{0}};
  sched.schedule.policy = "heft";
  sched.system.tasks = {{0, 10, 10, 0, 1}};

  const std::string transformsPayload = core::encodeTransformsStage(*source);
  for (std::size_t len = 0; len < transformsPayload.size(); ++len) {
    EXPECT_FALSE(core::decodeTransformsStage(
                     std::string_view(transformsPayload).substr(0, len))
                     .has_value())
        << "transforms prefix " << len;
  }
  const std::string expandPayload = core::encodeExpandStage(expand);
  for (std::size_t len = 0; len < expandPayload.size(); ++len) {
    EXPECT_FALSE(core::decodeExpandStage(
                     std::string_view(expandPayload).substr(0, len), source)
                     .has_value())
        << "expand prefix " << len;
  }
  const std::string timingsPayload = core::encodeTimings(timings);
  for (std::size_t len = 0; len < timingsPayload.size(); ++len) {
    EXPECT_FALSE(
        core::decodeTimings(std::string_view(timingsPayload).substr(0, len))
            .has_value())
        << "timings prefix " << len;
  }
  const std::string schedPayload = core::encodeScheduleStage(sched);
  for (std::size_t len = 0; len < schedPayload.size(); ++len) {
    EXPECT_FALSE(core::decodeScheduleStage(
                     std::string_view(schedPayload).substr(0, len))
                     .has_value())
        << "schedule prefix " << len;
  }
  const std::string cyclesPayload = core::encodeCycles(42);
  for (std::size_t len = 0; len < cyclesPayload.size(); ++len) {
    EXPECT_FALSE(
        core::decodeCycles(std::string_view(cyclesPayload).substr(0, len))
            .has_value())
        << "cycles prefix " << len;
  }
}

TEST(DiskCacheStageCodecs, GarbagePayloadsDecodeToNullopt) {
  const std::string garbage = "not a payload \x01\x02\xff";
  EXPECT_FALSE(core::decodeTransformsStage(garbage).has_value());
  EXPECT_FALSE(core::decodeCycles(garbage).has_value());
  EXPECT_FALSE(
      core::decodeExpandStage(garbage, makeDiamondTransforms()).has_value());
  EXPECT_FALSE(core::decodeTimings(garbage).has_value());
  EXPECT_FALSE(core::decodeScheduleStage(garbage).has_value());
}

// ---- ToolchainCache tiered integration -----------------------------------

TEST(DiskCacheTiered, SecondCacheInstanceLoadsFromDiskWithoutComputing) {
  TempDir dir("tiered");
  const support::StageKey key = keyOf(0x42, 0x43);
  std::vector<sched::TaskTiming> value(1);
  value[0].wcetByTile = {11, 22};
  value[0].sharedAccesses = 3;

  core::ToolchainCache first;
  first.attachDisk(dir.path.string());
  const auto stored = first.getTimings(key, [&] { return value; });
  EXPECT_EQ(*stored, value);
  EXPECT_EQ(first.stats().disk->stores, 1u);
  EXPECT_EQ(first.stats().disk->misses, 1u);

  // A fresh cache over the same directory models a fresh process: the
  // value must come off disk, the compute closure must never run.
  core::ToolchainCache second;
  second.attachDisk(dir.path.string());
  bool computed = false;
  const auto loaded = second.getTimings(key, [&] {
    computed = true;
    return std::vector<sched::TaskTiming>{};
  });
  EXPECT_FALSE(computed);
  EXPECT_EQ(*loaded, value);
  EXPECT_EQ(second.stats().disk->hits, 1u);
  EXPECT_EQ(second.stats().disk->rejects, 0u);
}

TEST(DiskCacheTiered, TransformsStageSurvivesTheDiskHop) {
  TempDir dir("tiered_tf");
  const support::StageKey key = keyOf(0x77, 0x78);

  core::ToolchainCache first;
  first.attachDisk(dir.path.string());
  const auto stored = first.getTransforms(key, [] {
    return makeDiamondTransformsValue();
  });

  core::ToolchainCache second;
  second.attachDisk(dir.path.string());
  bool computed = false;
  const auto loaded = second.getTransforms(key, [&] {
    computed = true;
    return core::TransformsStage{};
  });
  EXPECT_FALSE(computed);
  EXPECT_EQ(loaded->irText, stored->irText);
  EXPECT_EQ(loaded->irKey, stored->irKey);
  EXPECT_EQ(ir::toString(*loaded->fn), stored->irText);
}

TEST(DiskCacheTiered, UndecodablePayloadFallsThroughToComputeAndRepairs) {
  TempDir dir("tiered_reject");
  const support::StageKey key = keyOf(0x99, 0x9a);
  std::vector<sched::TaskTiming> value(1);
  value[0].wcetByTile = {5};

  // Plant a record whose ENVELOPE is valid but whose payload the timings
  // decoder refuses — the payload-level reject path (noteReject).
  {
    support::DiskCache raw(dir.path.string());
    raw.store(std::string(core::kDiskStageTimings), key, "garbage payload");
  }

  core::ToolchainCache cache;
  cache.attachDisk(dir.path.string());
  bool computed = false;
  const auto got = cache.getTimings(key, [&] {
    computed = true;
    return value;
  });
  EXPECT_TRUE(computed);
  EXPECT_EQ(*got, value);
  ASSERT_TRUE(cache.stats().disk.has_value());
  EXPECT_EQ(cache.stats().disk->rejects, 1u);

  // The compute's store repaired the slot: a third instance now loads it.
  core::ToolchainCache repaired;
  repaired.attachDisk(dir.path.string());
  bool recomputed = false;
  const auto again = repaired.getTimings(key, [&] {
    recomputed = true;
    return std::vector<sched::TaskTiming>{};
  });
  EXPECT_FALSE(recomputed);
  EXPECT_EQ(*again, value);
  EXPECT_EQ(repaired.stats().disk->rejects, 0u);
}

TEST(DiskCacheTiered, NoDiskTierMeansPureMemoryBehavior) {
  core::ToolchainCache cache;
  EXPECT_EQ(cache.disk(), nullptr);
  EXPECT_FALSE(cache.stats().disk.has_value());
  int computes = 0;
  const support::StageKey key = keyOf(1, 1);
  (void)cache.getSequentialWcet(key, [&] { ++computes; return adl::Cycles{9}; });
  const auto second = cache.getSequentialWcet(key, [&] {
    ++computes;
    return adl::Cycles{0};
  });
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(*second, 9);
}

// ---- Concurrency (exercised under TSan by the CI sanitizer job) ----------

TEST(DiskCacheConcurrency, ConcurrentWritersAndReadersNeverSeeTornRecords) {
  TempDir dir("concurrent");
  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  constexpr int kKeys = 4;

  // Two independent DiskCache instances over ONE directory model two
  // processes racing; each thread alternates between them. Every key has
  // exactly one valid payload (stage values are pure functions of keys),
  // so any load must return either nullopt or exactly that payload.
  support::DiskCache a(dir.path.string());
  support::DiskCache b(dir.path.string());
  auto payloadFor = [](int k) {
    return std::string("payload-") + std::to_string(k) +
           std::string(static_cast<std::size_t>(k + 1) * 64, '\xab');
  };

  std::atomic<int> wrongValues{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      support::DiskCache& mine = (t % 2 == 0) ? a : b;
      support::DiskCache& other = (t % 2 == 0) ? b : a;
      for (int i = 0; i < kIters; ++i) {
        const int k = (t + i) % kKeys;
        const support::StageKey key = keyOf(0x5000, static_cast<std::uint64_t>(k));
        mine.store("timings", key, payloadFor(k));
        const std::optional<std::string> seen = other.load("timings", key);
        if (seen.has_value() && *seen != payloadFor(k)) {
          wrongValues.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrongValues.load(), 0);
  // Rejects would mean a reader saw a torn record — rename publication
  // must make that impossible.
  EXPECT_EQ(a.stats().rejects, 0u);
  EXPECT_EQ(b.stats().rejects, 0u);
}

TEST(DiskCacheConcurrency, TwoTieredCachesSharingOneDirectoryAgree) {
  TempDir dir("concurrent_tiered");
  constexpr int kKeys = 6;
  auto valueFor = [](int k) {
    std::vector<sched::TaskTiming> v(static_cast<std::size_t>(k % 3) + 1);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i].wcetByTile = {static_cast<adl::Cycles>(k * 100 + 1),
                         static_cast<adl::Cycles>(k * 100 + 2)};
      v[i].sharedAccesses = k;
    }
    return v;
  };

  core::ToolchainCache a;
  core::ToolchainCache b;
  a.attachDisk(dir.path.string());
  b.attachDisk(dir.path.string());

  std::atomic<int> mismatches{0};
  auto worker = [&](core::ToolchainCache& cache) {
    for (int round = 0; round < 10; ++round) {
      for (int k = 0; k < kKeys; ++k) {
        const support::StageKey key =
            keyOf(0x6000, static_cast<std::uint64_t>(k));
        const auto got = cache.getTimings(key, [&] { return valueFor(k); });
        if (*got != valueFor(k)) mismatches.fetch_add(1);
      }
    }
  };
  std::thread ta(worker, std::ref(a));
  std::thread tb(worker, std::ref(b));
  ta.join();
  tb.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(a.stats().disk->rejects, 0u);
  EXPECT_EQ(b.stats().disk->rejects, 0u);
}

}  // namespace
}  // namespace argo
