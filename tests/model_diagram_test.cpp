// Unit tests for diagram wiring, type inference, cycle handling and
// compilation structure.
#include <gtest/gtest.h>

#include "model/blocks.h"
#include "model/diagram.h"
#include "ir/printer.h"
#include "support/diagnostics.h"

namespace argo::model {
namespace {

using ir::ScalarKind;
using ir::Type;
using support::ToolchainError;

TEST(Diagram, RejectsEmpty) {
  Diagram d("empty");
  EXPECT_THROW((void)d.compile(), ToolchainError);
}

TEST(Diagram, RejectsUnconnectedInput) {
  Diagram d("t");
  (void)d.add<GainBlock>("g", 2.0);  // input port 0 never driven
  EXPECT_THROW((void)d.compile(), ToolchainError);
}

TEST(Diagram, RejectsDoubleDrivenInput) {
  Diagram d("t");
  const BlockId a = d.add<InputBlock>("a", Type::float64());
  const BlockId b = d.add<InputBlock>("b", Type::float64());
  const BlockId g = d.add<GainBlock>("g", 2.0);
  d.connect(a, g);
  EXPECT_THROW(d.connect(b, g), ToolchainError);
}

TEST(Diagram, RejectsBadPortNumbers) {
  Diagram d("t");
  const BlockId a = d.add<InputBlock>("a", Type::float64());
  const BlockId g = d.add<GainBlock>("g", 2.0);
  EXPECT_THROW(d.connect(a, 1, g, 0), ToolchainError);  // a has 1 output
  EXPECT_THROW(d.connect(a, 0, g, 3), ToolchainError);  // g has 1 input
}

TEST(Diagram, RejectsAlgebraicLoop) {
  Diagram d("t");
  const BlockId g1 = d.add<GainBlock>("g1", 2.0);
  const BlockId g2 = d.add<GainBlock>("g2", 0.5);
  d.connect(g1, g2);
  d.connect(g2, g1);
  EXPECT_THROW((void)d.compile(), ToolchainError);
}

TEST(Diagram, FeedbackThroughTypedDelayCompiles) {
  // Accumulator: y = delay(y + u); needs the declared-type Delay.
  Diagram d("acc");
  const BlockId in = d.add<InputBlock>("u", Type::float64());
  const BlockId sum = d.add<SumBlock>("sum", std::vector<int>{1, 1});
  const BlockId delay = d.add<DelayBlock>("z", Type::float64());
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, 0, sum, 0);
  d.connect(delay, 0, sum, 1);
  d.connect(sum, 0, delay, 0);
  d.connect(sum, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  ir::Evaluator ev(*model.fn);
  double expected = 0.0;
  for (int n = 1; n <= 5; ++n) {
    env["u"] = ir::Value::scalarFloat(1.0);
    ev.run(env);
    expected += 1.0;
    EXPECT_DOUBLE_EQ(env.at("y").getFloat(), expected) << "step " << n;
  }
}

TEST(Diagram, FeedbackWithoutTypedDelayFailsTypeInference) {
  Diagram d("bad");
  const BlockId in = d.add<InputBlock>("u", Type::float64());
  const BlockId sum = d.add<SumBlock>("sum", std::vector<int>{1, 1});
  const BlockId delay = d.add<DelayBlock>("z");  // no declared type
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, 0, sum, 0);
  d.connect(delay, 0, sum, 1);
  d.connect(sum, 0, delay, 0);
  d.connect(sum, out);
  EXPECT_THROW((void)d.compile(), ToolchainError);
}

TEST(Diagram, DelayDeclaredTypeMismatchRejected) {
  Diagram d("bad");
  const BlockId in =
      d.add<InputBlock>("u", Type::array(ScalarKind::Float64, {4}));
  const BlockId delay = d.add<DelayBlock>("z", Type::float64());
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, delay);
  d.connect(delay, out);
  EXPECT_THROW((void)d.compile(), ToolchainError);
}

TEST(Diagram, FanOutIsAllowed) {
  Diagram d("t");
  const BlockId in = d.add<InputBlock>("u", Type::float64());
  const BlockId g1 = d.add<GainBlock>("g1", 2.0);
  const BlockId g2 = d.add<GainBlock>("g2", 3.0);
  const BlockId o1 = d.add<OutputBlock>("y1");
  const BlockId o2 = d.add<OutputBlock>("y2");
  d.connect(in, g1);
  d.connect(in, g2);
  d.connect(g1, o1);
  d.connect(g2, o2);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  env["u"] = ir::Value::scalarFloat(1.0);
  ir::Evaluator(*model.fn).run(env);
  EXPECT_DOUBLE_EQ(env.at("y1").getFloat(), 2.0);
  EXPECT_DOUBLE_EQ(env.at("y2").getFloat(), 3.0);
}

TEST(Diagram, DuplicateBlockNamesGetUniqueVariables) {
  Diagram d("t");
  const BlockId in = d.add<InputBlock>("u", Type::float64());
  const BlockId g1 = d.add<GainBlock>("stage", 2.0);
  const BlockId g2 = d.add<GainBlock>("stage", 3.0);
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, g1);
  d.connect(g1, g2);
  d.connect(g2, out);
  CompiledModel model = d.compile();
  ir::Environment env = model.makeEnvironment();
  env["u"] = ir::Value::scalarFloat(1.0);
  ir::Evaluator(*model.fn).run(env);
  EXPECT_DOUBLE_EQ(env.at("y").getFloat(), 6.0);
}

TEST(Diagram, CompiledFunctionValidates) {
  Diagram d("t");
  const BlockId in = d.add<InputBlock>("u", Type::array(ScalarKind::Float64, {8}));
  const BlockId g = d.add<GainBlock>("g", 2.0);
  const BlockId r = d.add<ReduceBlock>("r", ReduceBlock::Op::Sum);
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, g);
  d.connect(g, r);
  d.connect(r, out);
  CompiledModel model = d.compile();
  EXPECT_TRUE(ir::validate(*model.fn).empty());
  EXPECT_EQ(model.fn->name(), "t");
}

TEST(Diagram, StatementsCarryBlockLabels) {
  Diagram d("t");
  const BlockId in = d.add<InputBlock>("u", Type::float64());
  const BlockId g = d.add<GainBlock>("preamp", 2.0);
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, g);
  d.connect(g, out);
  CompiledModel model = d.compile();
  bool sawLabel = false;
  for (const ir::StmtPtr& s : model.fn->body().stmts()) {
    if (s->label == "preamp") sawLabel = true;
  }
  EXPECT_TRUE(sawLabel);
}

TEST(Diagram, StateUpdatesRunAfterAllUses) {
  // u -> delay -> y1 and u -> g -> y2: the delay state update must not
  // clobber anything the rest of the step still reads. Structure check:
  // the epilogue statements are last.
  Diagram d("t");
  const BlockId in = d.add<InputBlock>("u", Type::float64());
  const BlockId delay = d.add<DelayBlock>("z");
  const BlockId out = d.add<OutputBlock>("y");
  d.connect(in, delay);
  d.connect(delay, out);
  CompiledModel model = d.compile();
  const auto& stmts = model.fn->body().stmts();
  ASSERT_GE(stmts.size(), 2u);
  EXPECT_NE(stmts.back()->label.find("_update"), std::string::npos);
}

TEST(Diagram, SanitizesHostileNames) {
  Diagram d("9 weird name!");
  const BlockId in = d.add<InputBlock>("in put", Type::float64());
  const BlockId out = d.add<OutputBlock>("out-put");
  d.connect(in, out);
  CompiledModel model = d.compile();
  EXPECT_TRUE(ir::validate(*model.fn).empty());
  // Input variable name must be a sanitized identifier present in decls.
  bool foundInput = false;
  for (const auto& decl : model.fn->decls()) {
    if (decl.role == ir::VarRole::Input) {
      foundInput = true;
      for (char c : decl.name) {
        EXPECT_TRUE((std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_');
      }
    }
  }
  EXPECT_TRUE(foundInput);
}

}  // namespace
}  // namespace argo::model
