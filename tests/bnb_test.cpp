// Determinism and budget-accounting suite for the parallel branch-and-bound
// policy (sched/bnb.h). The contract under test: for any frontier depth and
// any thread count, the pooled search returns a schedule bit-identical to
// the classic monolithic DFS (bnbFrontierDepth = 0, parallelThreads = 1),
// as long as the node budget is not exhausted; per-subtree budgets always
// sum to the configured bnbNodeBudget; and oversized graphs fall back to
// HEFT instead of throwing. (Lower-case suite names keep `ctest -R bnb`
// selecting exactly this file.)
#include <gtest/gtest.h>

#include <numeric>

#include "diamond_fixture.h"
#include "htg/htg.h"
#include "ir/builder.h"
#include "sched/bnb.h"
#include "sched/scheduler.h"

namespace argo::sched {
namespace {

using ir::ScalarKind;
using ir::Type;
using ir::VarRole;

/// A single wide loop expanded into many chunks: the cheapest way to a
/// graph with more tasks than the search bitmask can represent.
std::unique_ptr<ir::Function> makeWideLoopFn(int width = 80) {
  auto fn = std::make_unique<ir::Function>("wide");
  fn->declare("u", Type::array(ScalarKind::Float64, {width}), VarRole::Input);
  fn->declare("y", Type::array(ScalarKind::Float64, {width}), VarRole::Output);
  auto body = ir::block();
  body->append(
      ir::assign(ir::ref("y", ir::exprVec(ir::var("i"))),
                 ir::mul(ir::ref("u", ir::exprVec(ir::var("i"))),
                         ir::flt(2.0))));
  fn->body().append(ir::forLoop("i", 0, width, std::move(body)));
  return fn;
}

/// chunks = 2 on 4 cores (8 tasks) searches in milliseconds; chunks = 3 on
/// 3 cores (12 tasks) is a real search tree that still completes well
/// inside the default node budget.
struct Fixture {
  std::unique_ptr<ir::Function> fn;
  htg::TaskGraph graph;
  adl::Platform platform;

  explicit Fixture(int chunks = 2, int cores = 4)
      : fn(test::makeDiamondFn(/*width=*/24)),
        graph(htg::expand(htg::buildHtg(*fn), htg::ExpandOptions{chunks})),
        platform(adl::makeRecoreXentiumBus(cores)) {}
};

void expectSameSchedule(const Schedule& a, const Schedule& b,
                        const std::string& what) {
  // Per-field checks give readable diagnostics on failure ...
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.tilesUsed, b.tilesUsed) << what;
  EXPECT_EQ(a.policy, b.policy) << what;
  ASSERT_EQ(a.placements.size(), b.placements.size()) << what;
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].tile, b.placements[i].tile)
        << what << " task " << i;
    EXPECT_EQ(a.placements[i].start, b.placements[i].start)
        << what << " task " << i;
    EXPECT_EQ(a.placements[i].finish, b.placements[i].finish)
        << what << " task " << i;
  }
  EXPECT_EQ(a.tileOrder, b.tileOrder) << what;
  // ... and the defaulted operator== guarantees full field coverage even
  // when Schedule grows new members.
  EXPECT_TRUE(a == b) << what;
}

SchedOptions bnbOptions() {
  SchedOptions options;
  options.policy = "branch_and_bound";
  options.interferenceAware = false;  // pure-makespan search space
  return options;
}

TEST(bnb_determinism, PooledSearchMatchesClassicForAllDepthsAndThreadCounts) {
  Fixture fx;
  ASSERT_LE(fx.graph.tasks.size(),
            static_cast<std::size_t>(kBnbMaxTasks));
  const Scheduler scheduler(fx.graph, fx.platform);

  SchedOptions classicOpt = bnbOptions();
  classicOpt.bnbFrontierDepth = 0;  // classic monolithic DFS
  classicOpt.parallelThreads = 1;
  const Schedule classic = scheduler.run(classicOpt);
  // The whole search must fit the budget: exhaustion voids the
  // bit-identity guarantee, so the contract check requires a clean run.
  ASSERT_EQ(classic.policy, "branch_and_bound");
  EXPECT_TRUE(validateSchedule(classic, fx.graph, fx.platform,
                               scheduler.timings())
                  .empty());

  for (const int depth : {0, 1, 2, 3}) {
    for (const int threads : {1, 2, 0}) {
      SchedOptions options = bnbOptions();
      options.bnbFrontierDepth = depth;
      options.parallelThreads = threads;
      expectSameSchedule(scheduler.run(options), classic,
                         "depth " + std::to_string(depth) + " threads " +
                             std::to_string(threads));
    }
  }
}

TEST(bnb_determinism, HoldsOnADeepTwelveTaskSearchTree) {
  // A search with hundreds of thousands of expanded nodes (the bench
  // graph): the pooled subtrees overlap heavily in time here, so a racy
  // pruning bug that the 8-task sweep is too quick to expose would
  // surface. One depth/thread sample each keeps the suite affordable.
  Fixture fx(/*chunks=*/3, /*cores=*/3);
  ASSERT_EQ(fx.graph.tasks.size(), 12u);
  const Scheduler scheduler(fx.graph, fx.platform);

  SchedOptions classicOpt = bnbOptions();
  classicOpt.bnbFrontierDepth = 0;
  classicOpt.parallelThreads = 1;
  const Schedule classic = scheduler.run(classicOpt);
  ASSERT_EQ(classic.policy, "branch_and_bound");

  for (const int threads : {2, 0}) {
    SchedOptions options = bnbOptions();
    options.bnbFrontierDepth = 2;
    options.parallelThreads = threads;
    expectSameSchedule(scheduler.run(options), classic,
                       "threads " + std::to_string(threads));
  }
}

TEST(bnb_determinism, HoldsWithInterferenceAwareSeedToo) {
  // The HEFT seed (and therefore the incumbent the search must beat)
  // changes with interference awareness; the determinism argument may not
  // depend on which seed is in play.
  Fixture fx;
  const Scheduler scheduler(fx.graph, fx.platform);

  SchedOptions classicOpt = bnbOptions();
  classicOpt.interferenceAware = true;
  classicOpt.bnbFrontierDepth = 0;
  classicOpt.parallelThreads = 1;
  const Schedule classic = scheduler.run(classicOpt);

  for (const int threads : {2, 0}) {
    SchedOptions options = classicOpt;
    options.bnbFrontierDepth = 2;
    options.parallelThreads = threads;
    expectSameSchedule(scheduler.run(options), classic,
                       "threads " + std::to_string(threads));
  }
}

TEST(bnb_determinism, NeverWorseThanHeftAtAnyDepth) {
  Fixture fx;
  const Scheduler scheduler(fx.graph, fx.platform);
  SchedOptions heftOpt;
  heftOpt.interferenceAware = false;
  const Cycles heft = scheduler.run(heftOpt).makespan;
  for (const int depth : {0, 2}) {
    SchedOptions options = bnbOptions();
    options.bnbFrontierDepth = depth;
    options.parallelThreads = 0;
    EXPECT_LE(scheduler.run(options).makespan, heft) << "depth " << depth;
  }
}

TEST(bnb_budget, PerSubtreeSharesSumExactlyToTheBudget) {
  const auto shares = bnbSplitNodeBudget(100, 7);
  ASSERT_EQ(shares.size(), 7u);
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), std::int64_t{0}),
            100);
  // Even split, remainder front-loaded onto the lowest subtree indices
  // (the subtrees the classic traversal would have reached first).
  EXPECT_EQ(shares.front(), 15);
  EXPECT_EQ(shares.back(), 14);
  EXPECT_TRUE(std::is_sorted(shares.rbegin(), shares.rend()));
}

TEST(bnb_budget, DegenerateSplitsStayAccountable) {
  EXPECT_TRUE(bnbSplitNodeBudget(10, 0).empty());
  const auto scarce = bnbSplitNodeBudget(3, 5);
  EXPECT_EQ(std::accumulate(scarce.begin(), scarce.end(), std::int64_t{0}),
            3);
  EXPECT_EQ(scarce.front(), 1);
  EXPECT_EQ(scarce.back(), 0);
  // Frontier generation overspending the whole budget leaves zero shares,
  // never negative ones.
  const auto overdrawn = bnbSplitNodeBudget(-4, 3);
  EXPECT_EQ(std::accumulate(overdrawn.begin(), overdrawn.end(),
                            std::int64_t{0}),
            0);
}

TEST(bnb_budget, ExhaustionIsAnnotatedAndFallsBackToTheSeed) {
  // A budget too small to expand anything: the search must hand back the
  // HEFT seed incumbent, flag the truncation in the policy label, and do
  // so identically for any thread count (no subtree explores at all).
  Fixture fx;
  const Scheduler scheduler(fx.graph, fx.platform);

  SchedOptions heftOpt;
  heftOpt.interferenceAware = false;
  const Schedule seed = scheduler.run(heftOpt);

  SchedOptions options = bnbOptions();
  options.bnbNodeBudget = 1;
  options.bnbFrontierDepth = 2;
  options.parallelThreads = 1;
  const Schedule truncated = scheduler.run(options);
  EXPECT_EQ(truncated.policy, "branch_and_bound(budget)");
  EXPECT_EQ(truncated.makespan, seed.makespan);
  EXPECT_TRUE(validateSchedule(truncated, fx.graph, fx.platform,
                               scheduler.timings())
                  .empty());

  options.parallelThreads = 0;
  expectSameSchedule(scheduler.run(options), truncated, "pooled truncation");
}

TEST(bnb_fallback, OversizedGraphsScheduleViaHeftInsteadOfThrowing) {
  // More tasks than the 32-bit done-mask can represent: even a permissive
  // bnbTaskLimit must fall back to HEFT (kBnbMaxTasks caps it), exactly
  // like a graph beyond bnbTaskLimit does — one rule for both caps.
  auto fn = makeWideLoopFn();
  const htg::TaskGraph graph =
      htg::expand(htg::buildHtg(*fn), htg::ExpandOptions{40});
  ASSERT_GT(graph.tasks.size(), static_cast<std::size_t>(kBnbMaxTasks));
  const adl::Platform platform = adl::makeRecoreXentiumBus(4);
  const Scheduler scheduler(graph, platform);

  SchedOptions options = bnbOptions();
  options.bnbTaskLimit = 1000;  // permissive: the mask width must still cap
  const Schedule schedule = scheduler.run(options);
  EXPECT_EQ(schedule.policy, "branch_and_bound(fallback=heft)");
  EXPECT_TRUE(validateSchedule(schedule, graph, platform,
                               scheduler.timings())
                  .empty());
}

}  // namespace
}  // namespace argo::sched
