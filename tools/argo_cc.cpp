// argo_cc — command-line driver for the ARGO tool-chain.
//
// Runs the full flow (Fig. 1) on one of the built-in use-case models and a
// platform that is either built in or loaded from a textual ADL file, then
// prints the requested reports. Exit code 0 iff the pipeline succeeded and
// (when --simulate is given) every simulated step stayed within the bound.
//
//   argo_cc --app polka --platform bus --cores 8 --report gantt,bottlenecks
//   argo_cc --app egpws --adl myplatform.adl --simulate 5 --report code:0
//
// Options:
//   --app NAME          egpws | weaa | polka            (default egpws)
//   --platform NAME     bus | bus-tdma | noc            (default bus)
//   --cores N           core count / mesh size           (default 8)
//   --adl FILE          load the platform from an ADL file (overrides
//                       --platform/--cores)
//   --policy NAME       heft | bnb | annealed | oblivious, or any name in
//                       the scheduling-policy registry (default heft)
//   --chunks N          fix the granularity (default: feedback explores)
//   --no-spm            disable scratchpad allocation
//   --no-transforms     disable the transformation passes
//   --simulate N        simulate N steps and check them against the bound
//   --emit-c DIR        emit the scheduled program as compilable C into DIR
//                       (argo_rt.h, program.h, tile<t>.c, main.c — see
//                       docs/CODEGEN.md; build with
//                       `cc -std=c11 -O1 -fno-strict-aliasing *.c -lm`,
//                       plus -pthread for --exec-mode threads)
//   --emit-steps N      steps of recorded inputs the emitted harness
//                       replays (default 3)
//   --exec-mode MODE    seq | threads — how the emitted main.c runs the
//                       dispatch tables: merged in-order replay, or one
//                       pthread per tile (default seq)
//   --runtime-asserts   emit per-slot checks of the scheduled start/finish
//                       cycles against a monotonic step-relative clock
//                       (violation exits 4; see docs/CODEGEN.md)
//   --cache-dir DIR     persist the toolchain stage cache on disk under
//                       DIR (support/disk_cache.h): a rerun with the same
//                       app/platform/options starts warm. Defaults to the
//                       ARGO_CACHE_DIR environment variable; unset/empty
//                       means no caching. Results are byte-identical with
//                       or without it (every stage is a pure function of
//                       its content-hash key); rejected (malformed)
//                       records are recomputed and reported on stderr.
//   --trace FILE        record a Chrome trace-event JSON execution trace
//                       to FILE (support/trace.h; Perfetto-loadable, or
//                       summarize with tools/trace_summary.py). Defaults
//                       to the ARGO_TRACE environment variable;
//                       unset/empty disables tracing. Reports are
//                       byte-identical with tracing on or off.
//   --report LIST       comma list: summary,gantt,mhp,bottlenecks,code:TILE
//                       (default summary)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "adl/parser.h"
#include "apps/registry.h"
#include "codegen/codegen.h"
#include "core/cache.h"
#include "core/metrics_report.h"
#include "core/report.h"
#include "core/toolchain.h"
#include "sim/simulator.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "support/trace.h"

namespace {

using namespace argo;

struct Options {
  std::string app = "egpws";
  std::string platform = "bus";
  std::string adlFile;
  std::string policy = "heft";
  int cores = 8;
  int chunks = 0;
  bool spm = true;
  bool transforms = true;
  int simulate = 0;
  std::string emitDir;
  int emitSteps = 3;
  codegen::ExecMode execMode = codegen::ExecMode::Sequential;
  bool runtimeAsserts = false;
  std::string cacheDir;
  std::string traceFile;
  std::vector<std::string> reports = {"summary"};
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--app egpws|weaa|polka] [--platform bus|bus-tdma|"
               "noc] [--cores N]\n"
               "          [--adl FILE] [--policy heft|bnb|annealed|oblivious]"
               " [--chunks N]\n"
               "          [--no-spm] [--no-transforms] [--simulate N]\n"
               "          [--emit-c DIR] [--emit-steps N]"
               " [--exec-mode seq|threads] [--runtime-asserts]\n"
               "          [--cache-dir DIR] [--trace FILE]"
               " [--report summary,gantt,mhp,bottlenecks,code:TILE]\n",
               argv0);
  std::exit(2);
}

Options parseArgs(int argc, char** argv) {
  Options options;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--app") options.app = value(i);
    else if (arg == "--platform") options.platform = value(i);
    else if (arg == "--adl") options.adlFile = value(i);
    else if (arg == "--policy") options.policy = value(i);
    else if (arg == "--cores") options.cores = std::stoi(value(i));
    else if (arg == "--chunks") options.chunks = std::stoi(value(i));
    else if (arg == "--no-spm") options.spm = false;
    else if (arg == "--no-transforms") options.transforms = false;
    else if (arg == "--simulate") options.simulate = std::stoi(value(i));
    else if (arg == "--emit-c") options.emitDir = value(i);
    else if (arg == "--emit-steps") options.emitSteps = std::stoi(value(i));
    else if (arg == "--exec-mode") {
      const std::string mode = value(i);
      if (mode == "seq") options.execMode = codegen::ExecMode::Sequential;
      else if (mode == "threads") options.execMode = codegen::ExecMode::Threads;
      else {
        std::fprintf(stderr, "unknown --exec-mode '%s' (seq|threads)\n",
                     mode.c_str());
        std::exit(2);
      }
    }
    else if (arg == "--runtime-asserts") options.runtimeAsserts = true;
    else if (arg == "--cache-dir") options.cacheDir = value(i);
    else if (arg == "--trace") options.traceFile = value(i);
    else if (arg == "--report") options.reports = support::split(value(i), ',');
    else usage(argv[0]);
  }
  if (options.cacheDir.empty()) {
    if (const char* env = std::getenv("ARGO_CACHE_DIR")) {
      options.cacheDir = env;
    }
  }
  if (options.traceFile.empty()) {
    if (const char* env = std::getenv("ARGO_TRACE")) {
      options.traceFile = env;
    }
  }
  return options;
}

adl::Platform makePlatform(const Options& options) {
  if (!options.adlFile.empty()) {
    std::ifstream in(options.adlFile);
    if (!in) {
      throw support::ToolchainError("cannot open ADL file '" +
                                    options.adlFile + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    return adl::parseAdl(text.str());
  }
  if (options.platform == "bus") {
    return adl::makeRecoreXentiumBus(options.cores);
  }
  if (options.platform == "bus-tdma") {
    return adl::makeRecoreXentiumBus(options.cores, adl::Arbitration::Tdma);
  }
  if (options.platform == "noc") {
    // Nearest mesh that holds the requested core count.
    int width = 1;
    while (width * width < options.cores) ++width;
    return adl::makeKitLeon3Inoc(width, (options.cores + width - 1) / width);
  }
  throw support::ToolchainError("unknown platform '" + options.platform + "'");
}

std::string parsePolicy(const std::string& name) {
  // Short CLI aliases for the built-ins; anything else is passed through
  // to the policy registry verbatim, so custom registered policies are
  // selectable without touching the driver. Unknown names fail inside
  // sched::policyOrThrow with the list of registered policies.
  if (name == "bnb") return "branch_and_bound";
  if (name == "oblivious") return "contention_oblivious";
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options options = parseArgs(argc, argv);
    if (!options.traceFile.empty()) support::TraceRecorder::global().enable();
    const adl::Platform platform = makePlatform(options);

    core::ToolchainOptions toolchainOptions;
    toolchainOptions.sched.policy = parsePolicy(options.policy);
    toolchainOptions.sched.interferenceAware =
        toolchainOptions.sched.policy != "contention_oblivious";
    toolchainOptions.spmAllocation = options.spm;
    toolchainOptions.runTransforms = options.transforms;
    if (options.chunks > 0) {
      toolchainOptions.chunkCandidates = {options.chunks};
    }
    std::shared_ptr<core::ToolchainCache> cache;
    if (!options.cacheDir.empty()) {
      cache = std::make_shared<core::ToolchainCache>();
      cache->attachDisk(options.cacheDir);
      toolchainOptions.cache = cache;
    }

    const core::Toolchain toolchain(platform, toolchainOptions);
    const core::ToolchainResult result =
        toolchain.run(apps::buildAppDiagram(options.app));

    // Disk rejects are determinism-relevant (damaged or version-skewed
    // records silently costing recomputes), so they are always surfaced
    // through the pinned shared warning (core/metrics_report.h).
    core::warnDiskRejects(
        "argo_cc", cache != nullptr
                       ? std::optional<core::ToolchainCacheStats>(cache->stats())
                       : std::nullopt);

    for (const std::string& report : options.reports) {
      if (report == "summary") {
        std::printf("%s\n", result.reportText().c_str());
      } else if (report == "gantt") {
        std::printf("%s\n", core::renderGantt(result).c_str());
      } else if (report == "mhp") {
        std::printf("%s\n", core::renderMhpMatrix(result).c_str());
      } else if (report == "bottlenecks") {
        std::printf("%s\n", core::renderBottlenecks(result).c_str());
      } else if (support::startsWith(report, "code:")) {
        const int tile = std::stoi(report.substr(5));
        std::printf("%s\n", par::emitCoreSource(result.program, tile).c_str());
      } else if (!report.empty()) {
        std::fprintf(stderr, "unknown report '%s'\n", report.c_str());
        return 2;
      }
    }

    if (!options.emitDir.empty()) {
      // Record the same deterministic per-step inputs --simulate uses, so
      // the emitted harness and a simulated run see identical data.
      codegen::InputTrace trace;
      for (int step = 0; step < options.emitSteps; ++step) {
        ir::Environment env = ir::makeZeroEnvironment(*result.fn);
        apps::setAppStepInputs(options.app, env,
                               static_cast<std::uint64_t>(step));
        trace.steps.push_back(std::move(env));
      }
      codegen::EmitOptions emitOptions;
      emitOptions.mode = options.execMode;
      emitOptions.runtimeAsserts = options.runtimeAsserts;
      const codegen::Emission emission =
          toolchain.emitC(result, trace, emitOptions);
      codegen::writeSources(options.emitDir, emission);
      std::printf("emitted %zu files (%zu C units) to %s [%s]\n",
                  emission.files.size(), emission.cUnits.size(),
                  options.emitDir.c_str(),
                  options.execMode == codegen::ExecMode::Threads
                      ? "exec-mode threads"
                      : "exec-mode seq");
    }

    int exitCode = 0;
    if (options.simulate > 0) {
      sim::Simulator simulator(result.program, platform);
      ir::Environment env = ir::makeZeroEnvironment(*result.fn);
      for (const auto& [name, value] : result.constants) env[name] = value;
      bool allSafe = true;
      for (int step = 0; step < options.simulate; ++step) {
        apps::setAppStepInputs(options.app, env,
                               static_cast<std::uint64_t>(step));
        const sim::StepResult observed = simulator.step(env);
        const bool safe = observed.makespan <= result.system.makespan;
        allSafe = allSafe && safe;
        std::printf("step %d: observed %lld / bound %lld cycles  %s\n", step,
                    static_cast<long long>(observed.makespan),
                    static_cast<long long>(result.system.makespan),
                    safe ? "ok" : "BOUND VIOLATED");
      }
      if (!allSafe) exitCode = 1;
    }
    if (!options.traceFile.empty() &&
        !support::TraceRecorder::global().writeFile(options.traceFile)) {
      std::fprintf(stderr, "argo_cc: cannot write trace '%s'\n",
                   options.traceFile.c_str());
      return 1;
    }
    return exitCode;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "argo_cc: %s\n", error.what());
    return 1;
  }
}
