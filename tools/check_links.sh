#!/usr/bin/env bash
# Checks that relative links in the repo's markdown docs resolve to real
# files. External (http/https/mailto) links and pure #anchor links are
# skipped; an optional #fragment on a relative link is stripped before the
# check.
#
# Usage: tools/check_links.sh [file.md ...]
#   With no arguments, checks the repo's top-level *.md plus docs/*.md
#   (README, ROADMAP, CHANGES, ARCHITECTURE, SCENARIOS, POLICY_AUTHORING,
#   and anything added later — new docs/ pages are covered automatically).
# Exit status: 0 when every relative link resolves, 1 otherwise.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
  for f in "$repo_root"/*.md "$repo_root"/docs/*.md; do
    [ -e "$f" ] && files+=("$f")
  done
fi

status=0
checked=0
for file in "${files[@]}"; do
  if [ ! -f "$file" ]; then
    echo "check_links: no such file: $file" >&2
    status=1
    continue
  fi
  dir="$(cd "$(dirname "$file")" && pwd)"
  # Markdown inline links: [text](target), one target per match.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"  # drop #fragment
    path="${path%% *}"    # drop an optional "title" after the path
    [ -z "$path" ] && continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ]; then
      echo "check_links: broken link in ${file#"$repo_root"/}: $target" >&2
      status=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$file" | sed -e 's/^](//' -e 's/)$//')
done

if [ "$status" -eq 0 ]; then
  echo "check_links: ${checked} relative links OK across ${#files[@]} files"
fi
exit "$status"
