#!/usr/bin/env python3
"""Diff two BENCH_eval JSON reports (tools/argo_eval) PR-over-PR.

Usage:
    bench_diff.py OLD.json NEW.json
    bench_diff.py --self-test

Prints a per-policy delta table — wins, mean tightness, mean bound
speedup, and (when both reports carry --timings) wall time — plus the
mean per-row bound delta over the rows the two reports share (matched by
(scenario, platform, policy)). Purely informational: exit 0 on success,
1 on malformed input, 2 on usage. CI runs this against the previous
run's BENCH_eval artifact to expose the bound/wall-time trajectory of
every PR (see .github/workflows/ci.yml and docs/SCENARIOS.md).
"""

import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"bench_diff: cannot read {path}: {err}")
    for key in ("rows", "summary", "policies"):
        if key not in report:
            raise SystemExit(f"bench_diff: {path} is not a BENCH_eval report "
                             f"(missing '{key}')")
    return report


def fmt_delta(old, new, percent=True):
    """'old -> new (+x%)' with a stable fixed format."""
    if old is None or new is None:
        return "n/a"
    if isinstance(old, float) or isinstance(new, float):
        text = f"{old:.4f} -> {new:.4f}"
    else:
        text = f"{old} -> {new}"
    if percent and old:
        text += f" ({100.0 * (new - old) / old:+.1f}%)"
    return text


def per_policy_summary(report):
    return {entry["policy"]: entry
            for entry in report["summary"].get("per_policy", [])}


def row_key(row):
    return (row.get("scenario"), row.get("platform"), row.get("policy"))


def diff(old, new, out=sys.stdout):
    old_sum = per_policy_summary(old)
    new_sum = per_policy_summary(new)
    policies = [p for p in new["policies"]]
    for p in old["policies"]:
        if p not in policies:
            policies.append(p)

    # Mean per-row bound/observed delta over the shared row set.
    old_rows = {row_key(r): r for r in old["rows"]}
    matched = 0
    bound_ratios = {}
    for row in new["rows"]:
        prev = old_rows.get(row_key(row))
        if prev is None or not prev.get("bound"):
            continue
        matched += 1
        bound_ratios.setdefault(row["policy"], []).append(
            (row["bound"] - prev["bound"]) / prev["bound"])

    print(f"BENCH_eval diff: {len(old['rows'])} old rows, "
          f"{len(new['rows'])} new rows, {matched} matched "
          f"(seed {old.get('seed')} -> {new.get('seed')})", file=out)
    # Cross-product header fields (PR 8+ schema): absent in older
    # reports, which implicitly ran modulo mode. Surface a mode change —
    # it redefines the row population, so a shrinking 'matched' count
    # above is then expected rather than a regression.
    if "sweep_mode" in old or "sweep_mode" in new:
        print(f"sweep_mode: {old.get('sweep_mode', 'modulo')} -> "
              f"{new.get('sweep_mode', 'modulo')}, platform_cases: "
              f"{old.get('platform_cases', 'n/a')} -> "
              f"{new.get('platform_cases', 'n/a')}", file=out)
    header = (f"{'policy':<22} {'wins':<16} {'mean_tightness':<28} "
              f"{'mean_bound_speedup':<28} {'mean_bound_delta':<16} wall_ms")
    print(header, file=out)
    print("-" * len(header), file=out)
    for policy in policies:
        o = old_sum.get(policy, {})
        n = new_sum.get(policy, {})
        ratios = bound_ratios.get(policy)
        bound_delta = (f"{100.0 * sum(ratios) / len(ratios):+.2f}%"
                       if ratios else "n/a")
        wall = fmt_delta(o.get("wall_ms"), n.get("wall_ms"))
        print(f"{policy:<22} "
              f"{fmt_delta(o.get('wins'), n.get('wins'), percent=False):<16} "
              f"{fmt_delta(o.get('mean_tightness'), n.get('mean_tightness')):<28} "
              f"{fmt_delta(o.get('mean_bound_speedup'), n.get('mean_bound_speedup')):<28} "
              f"{bound_delta:<16} {wall}", file=out)

    old_safe = old["summary"].get("all_sim_safe")
    new_safe = new["summary"].get("all_sim_safe")
    print(f"all_sim_safe: {old_safe} -> {new_safe}", file=out)
    total = fmt_delta(old["summary"].get("total_wall_ms"),
                      new["summary"].get("total_wall_ms"))
    if total != "n/a":
        print(f"total_wall_ms: {total}", file=out)
    # Stage-cache counters (PR 8+ schema, emitted only under --timings).
    # Purely informational: the hit/wait split is thread-timing-dependent,
    # so only the per-stage hit *rate* trajectory is worth reading.
    old_cache = old["summary"].get("cache_stats") or {}
    new_cache = new["summary"].get("cache_stats") or {}
    def hit_rate(stats):
        if not stats:
            return "n/a"
        lookups = (stats.get("hits", 0) + stats.get("misses", 0) +
                   stats.get("inflight_waits", 0))
        return f"{stats.get('hits', 0) / lookups:.4f}" if lookups else "n/a"

    def disk_line(stats):
        if not stats:
            return "n/a"
        return (f"hits={stats.get('hits', 0)} "
                f"rejects={stats.get('rejects', 0)} "
                f"stores={stats.get('stores', 0)}")

    for stage in sorted(set(old_cache) | set(new_cache)):
        if stage == "disk":
            # PR 9+ schema: the on-disk tier's counters ride along inside
            # cache_stats but have their own shape (no inflight_waits;
            # a nonzero reject count is the health signal worth reading).
            print(f"disk_cache: {disk_line(old_cache.get(stage))} -> "
                  f"{disk_line(new_cache.get(stage))}", file=out)
            continue
        print(f"cache_hit_rate[{stage}]: {hit_rate(old_cache.get(stage))} "
              f"-> {hit_rate(new_cache.get(stage))}", file=out)

    # Unified metrics block (PR 10+ schema, --timings only): the counter
    # registry snapshot (docs/OBSERVABILITY.md). Informational — many
    # counters are scheduling-dependent (steals, hit/wait splits), so
    # only deterministic sums are comparable run to run.
    old_metrics = old["summary"].get("metrics") or {}
    new_metrics = new["summary"].get("metrics") or {}
    for name in sorted(set(old_metrics) | set(new_metrics)):
        print(f"metrics[{name}]: "
              f"{fmt_delta(old_metrics.get(name), new_metrics.get(name), percent=False)}",
              file=out)


def _fixture(bound, tightness, wall):
    return {
        "bench": "argo_eval", "seed": 7,
        "policies": ["heft", "annealed"],
        "rows": [
            {"scenario": "scn000", "platform": "bus_rr_c2", "policy": "heft",
             "bound": bound, "tightness": tightness},
            {"scenario": "scn000", "platform": "bus_rr_c2",
             "policy": "annealed", "bound": bound + 50, "tightness": 0.5},
        ],
        "summary": {
            "per_policy": [
                {"policy": "heft", "wins": 1, "mean_tightness": tightness,
                 "mean_bound_speedup": 2.0, "wall_ms": wall},
                {"policy": "annealed", "wins": 0, "mean_tightness": 0.5,
                 "mean_bound_speedup": 1.8, "wall_ms": wall * 2},
            ],
            "all_sim_safe": True,
            "total_wall_ms": wall * 3,
        },
    }


def _cross_fixture(bound, tightness, wall):
    """A PR 8+ report: cross-product header plus cache counters."""
    report = _fixture(bound, tightness, wall)
    report["sweep_mode"] = "cross"
    report["platform_cases"] = 9
    report["summary"]["cache_stats"] = {
        "transforms": {"hits": 30, "misses": 10, "inflight_waits": 0},
        "schedules": {"hits": 0, "misses": 40, "inflight_waits": 0},
    }
    return report


def _disk_fixture(bound, tightness, wall):
    """A PR 9+ report: cache_stats additionally carries the disk tier."""
    report = _cross_fixture(bound, tightness, wall)
    report["summary"]["cache_stats"]["disk"] = {
        "hits": 40, "misses": 8, "rejects": 0, "stores": 8,
        "store_failures": 0,
    }
    return report


def _metrics_fixture(bound, tightness, wall):
    """A PR 10+ report: the unified `metrics` counter block rides along."""
    report = _disk_fixture(bound, tightness, wall)
    report["summary"]["metrics"] = {
        "pool.tasks": 64, "pool.steals": 3,
        "cache.transforms.hits": 30, "cache.transforms.misses": 10,
        "graph.nodes_run": 12,
    }
    return report


def self_test():
    import io
    out = io.StringIO()
    diff(_fixture(1000, 0.8, 10.0), _fixture(900, 0.85, 12.0), out=out)
    text = out.getvalue()
    for needle in ("heft", "annealed", "1 -> 1", "0.8000 -> 0.8500",
                   "-10.00%", "all_sim_safe: True -> True",
                   "total_wall_ms: 30.0000 -> 36.0000 (+20.0%)"):
        if needle not in text:
            raise SystemExit(
                f"bench_diff --self-test: missing {needle!r} in:\n{text}")
    # Legacy fields only when neither side carries the PR 8+ schema.
    for absent in ("sweep_mode", "cache_hit_rate"):
        if absent in text:
            raise SystemExit(
                f"bench_diff --self-test: unexpected {absent!r} in:\n{text}")

    # Mixed schemas: an old pre-cross report diffed against a new
    # cross-product one (the first CI run after the schema change) must
    # not crash and must surface the mode change and the cache counters.
    out = io.StringIO()
    diff(_fixture(1000, 0.8, 10.0), _cross_fixture(900, 0.85, 12.0), out=out)
    text = out.getvalue()
    for needle in ("sweep_mode: modulo -> cross",
                   "platform_cases: n/a -> 9",
                   "cache_hit_rate[transforms]: n/a -> 0.7500",
                   "cache_hit_rate[schedules]: n/a -> 0.0000"):
        if needle not in text:
            raise SystemExit(
                f"bench_diff --self-test: missing {needle!r} in:\n{text}")
    # And the reverse direction (comparing back across the schema change).
    out = io.StringIO()
    diff(_cross_fixture(1000, 0.8, 10.0), _fixture(900, 0.85, 12.0), out=out)
    if "sweep_mode: cross -> modulo" not in out.getvalue():
        raise SystemExit("bench_diff --self-test: reverse-direction "
                         f"sweep_mode line missing in:\n{out.getvalue()}")

    # PR 9+ schema: a disk-tier entry inside cache_stats must render its
    # own counter line (not a bogus hit-rate row) and must not break a
    # diff against an older report without one.
    out = io.StringIO()
    diff(_cross_fixture(1000, 0.8, 10.0), _disk_fixture(900, 0.85, 12.0),
         out=out)
    text = out.getvalue()
    for needle in ("disk_cache: n/a -> hits=40 rejects=0 stores=8",
                   "cache_hit_rate[transforms]"):
        if needle not in text:
            raise SystemExit(
                f"bench_diff --self-test: missing {needle!r} in:\n{text}")
    if "cache_hit_rate[disk]" in text:
        raise SystemExit("bench_diff --self-test: disk tier leaked into "
                         f"cache_hit_rate in:\n{text}")
    if "metrics[" in text:
        raise SystemExit("bench_diff --self-test: metrics lines rendered "
                         f"without a metrics block in:\n{text}")

    # PR 10+ schema: the unified metrics block renders per-counter delta
    # lines, tolerates the mixed case (older report without the block),
    # and counters missing on one side degrade to n/a.
    out = io.StringIO()
    diff(_disk_fixture(1000, 0.8, 10.0), _metrics_fixture(900, 0.85, 12.0),
         out=out)
    text = out.getvalue()
    for needle in ("metrics[pool.tasks]: n/a",
                   "metrics[cache.transforms.hits]: n/a",
                   "metrics[graph.nodes_run]: n/a"):
        if needle not in text:
            raise SystemExit(
                f"bench_diff --self-test: missing {needle!r} in:\n{text}")
    out = io.StringIO()
    diff(_metrics_fixture(1000, 0.8, 10.0), _metrics_fixture(900, 0.85, 12.0),
         out=out)
    if "metrics[pool.tasks]: 64 -> 64" not in out.getvalue():
        raise SystemExit("bench_diff --self-test: same-schema metrics delta "
                         f"missing in:\n{out.getvalue()}")
    print("bench_diff self-test ok")


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        self_test()
        return 0
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    diff(load(argv[1]), load(argv[2]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
