#!/usr/bin/env python3
"""Summarize / validate a Chrome trace-event JSON file (argo --trace).

Usage:
    trace_summary.py TRACE.json                    # human-readable summary
    trace_summary.py --validate [--require-category CAT]...
                     [--metrics EVAL.json] TRACE.json
    trace_summary.py --self-test

Summary mode prints the top spans by duration, per-category and
per-toolchain-stage totals, cache-outcome counts, and pool utilization
(busy span time / (pool threads x trace wall time)).

--validate checks the file is a well-formed trace (required fields,
numeric timestamps, and per-thread span nesting: spans on one (pid,tid)
must be properly nested, never partially overlapping), exits 1 on the
first structural problem. --require-category CAT additionally demands at
least one event of that category (repeatable). --metrics EVAL.json
cross-checks the cache spans' hit/miss/inflight_wait attribution against
the `metrics` block of an argo_eval --timings report recorded in the
same run — the two are produced by independent code paths, so agreement
is a real end-to-end check (see docs/OBSERVABILITY.md).

Exit 0 on success, 1 on a malformed or invalid trace / failed check,
2 on usage.
"""

import json
import sys

# Span timestamps are nanoseconds rendered as microseconds with three
# decimals (exact), but containment is checked in floats — allow a
# two-nanosecond slack so rounding can never produce a false overlap.
EPS_US = 0.002

CACHE_OUTCOMES = {"hit": "hits", "miss": "misses",
                  "inflight_wait": "inflight_waits"}


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"trace_summary: cannot read {what} {path}: {err}")


def events_of(trace):
    if not isinstance(trace, dict) or not isinstance(
            trace.get("traceEvents"), list):
        return None
    return trace["traceEvents"]


def validate(trace, require_categories=()):
    """Return a list of problem strings (empty = valid)."""
    events = events_of(trace)
    if events is None:
        return ["not a trace object (missing 'traceEvents' list)"]
    problems = []
    spans = {}  # (pid, tid) -> [(ts, dur, name)]
    seen_categories = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        for key, types in (("cat", str), ("name", str), ("pid", int),
                           ("tid", int)):
            if not isinstance(ev.get(key), types):
                problems.append(f"event {i}: missing/invalid {key!r}")
        if not isinstance(ev.get("ts"), (int, float)) or ev.get("ts", -1) < 0:
            problems.append(f"event {i}: missing/invalid 'ts'")
            continue
        if ph == "X":
            if (not isinstance(ev.get("dur"), (int, float))
                    or ev.get("dur", -1) < 0):
                problems.append(f"event {i}: complete event without 'dur'")
                continue
            key = (ev.get("pid"), ev.get("tid"))
            spans.setdefault(key, []).append(
                (ev["ts"], ev["dur"], ev.get("name")))
        seen_categories.add(ev.get("cat"))
    if problems:
        return problems

    # Per-thread nesting: sorted by (start, -duration), every span must
    # either start after the enclosing span ends or end inside it.
    for (pid, tid), items in sorted(spans.items()):
        stack = []  # end timestamps of currently open spans
        for ts, dur, name in sorted(items, key=lambda s: (s[0], -s[1])):
            while stack and ts >= stack[-1][0] - EPS_US:
                stack.pop()
            end = ts + dur
            if stack and end > stack[-1][0] + EPS_US:
                problems.append(
                    f"tid {tid}: span {name!r} [{ts}, {end}] overlaps "
                    f"enclosing span {stack[-1][1]!r} ending {stack[-1][0]}")
                break
            stack.append((end, name))
    for category in require_categories:
        if category not in seen_categories:
            problems.append(f"no event of required category {category!r}")
    return problems


def cache_outcome_counts(trace):
    """(stage, hits|misses|inflight_waits) -> span count, from cache spans."""
    counts = {}
    for ev in events_of(trace) or []:
        if ev.get("cat") != "cache" or ev.get("ph") != "X":
            continue
        outcome = CACHE_OUTCOMES.get((ev.get("args") or {}).get("cache"))
        if outcome is None:
            continue
        key = (ev.get("name"), outcome)
        counts[key] = counts.get(key, 0) + 1
    return counts


def cross_check_metrics(trace, eval_report):
    """Compare cache span attribution against an eval `metrics` block."""
    metrics = (eval_report.get("summary") or {}).get("metrics")
    if not isinstance(metrics, dict):
        return ["eval report has no summary.metrics block "
                "(recorded without --timings?)"]
    counts = cache_outcome_counts(trace)
    problems = []
    checked = 0
    for name, value in sorted(metrics.items()):
        parts = name.split(".")
        if len(parts) != 3 or parts[0] != "cache":
            continue
        checked += 1
        spans = counts.get((parts[1], parts[2]), 0)
        if spans != value:
            problems.append(f"metrics {name} = {value} but trace has "
                            f"{spans} matching cache span(s)")
    if checked == 0:
        problems.append("eval metrics block has no cache.* counters")
    return problems


def summarize(trace, out=sys.stdout, top=10):
    events = events_of(trace) or []
    spans = [ev for ev in events if ev.get("ph") == "X"]
    begin = min((ev["ts"] for ev in events), default=0.0)
    end = max((ev["ts"] + ev.get("dur", 0.0) for ev in events), default=0.0)
    wall_us = end - begin
    print(f"trace: {len(events)} events, {len(spans)} spans, "
          f"wall {wall_us / 1000.0:.3f} ms, "
          f"{len({ev.get('tid') for ev in events})} thread(s)", file=out)

    def total_table(title, totals):
        print(f"\n{title:<28} {'count':>7} {'total_ms':>10} {'max_ms':>9}",
              file=out)
        for name, (count, total, longest) in sorted(
                totals.items(), key=lambda kv: -kv[1][1]):
            print(f"{name:<28} {count:>7} {total / 1000.0:>10.3f} "
                  f"{longest / 1000.0:>9.3f}", file=out)

    by_category = {}
    by_stage = {}
    for ev in spans:
        for table, key in ((by_category, ev.get("cat")),
                           (by_stage, ev.get("name"))):
            if table is by_stage and ev.get("cat") != "toolchain":
                continue
            count, total, longest = table.get(key, (0, 0.0, 0.0))
            table[key] = (count + 1, total + ev["dur"],
                          max(longest, ev["dur"]))
    total_table("category", by_category)
    if by_stage:
        total_table("toolchain stage", by_stage)

    outcomes = cache_outcome_counts(trace)
    if outcomes:
        print("\ncache outcomes:", file=out)
        for (stage, outcome), count in sorted(outcomes.items()):
            print(f"  cache.{stage}.{outcome} = {count}", file=out)

    pool = [ev for ev in spans if ev.get("cat") == "pool"]
    if pool and wall_us > 0:
        tids = {ev.get("tid") for ev in pool}
        busy = sum(ev["dur"] for ev in pool)
        print(f"\npool utilization: {busy / (wall_us * len(tids)):.3f} "
              f"({len(tids)} worker(s), busy {busy / 1000.0:.3f} ms)",
              file=out)

    print(f"\ntop {min(top, len(spans))} spans by duration:", file=out)
    for ev in sorted(spans, key=lambda s: -s["dur"])[:top]:
        print(f"  {ev['dur'] / 1000.0:>9.3f} ms  tid {ev.get('tid'):>3}  "
              f"{ev.get('cat')}/{ev.get('name')}", file=out)


def _span(cat, name, tid, ts, dur, args=None):
    ev = {"ph": "X", "pid": 1, "tid": tid, "ts": float(ts),
          "dur": float(dur), "cat": cat, "name": name}
    if args:
        ev["args"] = args
    return ev


def _valid_fixture():
    return {"traceEvents": [
        _span("graph", "scenario/0", 0, 0.0, 100.0),
        _span("toolchain", "transforms", 0, 10.0, 20.0),
        _span("cache", "transforms", 0, 12.0, 5.0, {"cache": "miss"}),
        _span("toolchain", "code_level_wcet", 0, 40.0, 30.0),
        _span("cache", "seqwcet", 0, 41.0, 2.0, {"cache": "hit"}),
        _span("pool", "task", 1, 5.0, 50.0),
        _span("cache", "transforms", 1, 6.0, 4.0, {"cache": "hit"}),
        {"ph": "i", "pid": 1, "tid": 1, "ts": 8.0, "s": "t",
         "cat": "disk", "name": "reject"},
    ], "displayTimeUnit": "ms"}


def _metrics_fixture():
    return {"summary": {"metrics": {
        "cache.transforms.hits": 1, "cache.transforms.misses": 1,
        "cache.transforms.inflight_waits": 0,
        "cache.seqwcet.hits": 1, "cache.seqwcet.misses": 0,
        "cache.seqwcet.inflight_waits": 0,
        "pool.tasks": 1,
    }}}


def self_test():
    import io
    fixture = _valid_fixture()
    problems = validate(fixture, require_categories=("toolchain", "cache"))
    if problems:
        raise SystemExit(f"trace_summary --self-test: valid fixture "
                         f"rejected: {problems}")

    # Summary must surface the categories, cache outcomes and pool line.
    out = io.StringIO()
    summarize(fixture, out=out)
    text = out.getvalue()
    for needle in ("8 events, 7 spans", "toolchain", "transforms",
                   "cache.transforms.hits = 1", "cache.seqwcet.hits = 1",
                   "pool utilization:", "graph/scenario/0"):
        if needle not in text:
            raise SystemExit(
                f"trace_summary --self-test: missing {needle!r} in:\n{text}")

    # Partial overlap on one thread must fail validation; the same two
    # spans on different threads are fine.
    overlap = {"traceEvents": [_span("a", "x", 0, 0.0, 10.0),
                               _span("a", "y", 0, 5.0, 10.0)]}
    if not validate(overlap):
        raise SystemExit("trace_summary --self-test: overlapping spans "
                         "passed validation")
    threaded = {"traceEvents": [_span("a", "x", 0, 0.0, 10.0),
                                _span("a", "y", 1, 5.0, 10.0)]}
    if validate(threaded):
        raise SystemExit("trace_summary --self-test: cross-thread spans "
                         "flagged as overlapping")

    # Structural problems: missing dur, bad phase, not a trace at all.
    for broken in ({"traceEvents": [{"ph": "X", "pid": 1, "tid": 0,
                                     "ts": 0.0, "cat": "a", "name": "x"}]},
                   {"traceEvents": [{"ph": "Z"}]},
                   {"events": []},
                   []):
        if not validate(broken):
            raise SystemExit(f"trace_summary --self-test: malformed trace "
                             f"passed validation: {broken!r}")

    # Required-category miss.
    if not validate(fixture, require_categories=("sim",)):
        raise SystemExit("trace_summary --self-test: missing required "
                         "category not reported")

    # Metrics cross-check: agreement passes, a skewed counter fails, and
    # a report without the metrics block is rejected outright.
    if cross_check_metrics(fixture, _metrics_fixture()):
        raise SystemExit("trace_summary --self-test: matching metrics "
                         "flagged as mismatch")
    skewed = _metrics_fixture()
    skewed["summary"]["metrics"]["cache.transforms.hits"] = 7
    problems = cross_check_metrics(fixture, skewed)
    if not problems or "cache.transforms.hits" not in problems[0]:
        raise SystemExit(f"trace_summary --self-test: skewed metrics not "
                         f"caught: {problems}")
    if not cross_check_metrics(fixture, {"summary": {}}):
        raise SystemExit("trace_summary --self-test: absent metrics block "
                         "not reported")
    print("trace_summary self-test ok")


def main(argv):
    do_validate = False
    require = []
    metrics_path = None
    top = 10
    paths = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--self-test":
            self_test()
            return 0
        if arg == "--validate":
            do_validate = True
        elif arg == "--require-category":
            i += 1
            if i >= len(argv):
                break
            require.append(argv[i])
        elif arg == "--metrics":
            i += 1
            if i >= len(argv):
                break
            metrics_path = argv[i]
        elif arg == "--top":
            i += 1
            if i >= len(argv):
                break
            top = int(argv[i])
        else:
            paths.append(arg)
        i += 1
    if len(paths) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    trace = load_json(paths[0], "trace")
    if do_validate or require or metrics_path:
        problems = validate(trace, require_categories=require)
        if not problems and metrics_path:
            problems = cross_check_metrics(
                trace, load_json(metrics_path, "eval report"))
        if problems:
            for problem in problems:
                print(f"trace_summary: {paths[0]}: {problem}",
                      file=sys.stderr)
            return 1
        events = events_of(trace)
        print(f"trace OK: {len(events)} events"
              + (f", metrics cross-check OK" if metrics_path else ""))
        return 0
    summarize(trace, top=top)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
