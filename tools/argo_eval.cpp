// argo_eval — batch evaluation of the scheduling-policy registry over a
// generated scenario matrix (src/scenarios). Prints one machine-readable
// JSON report (per-scenario makespan bound, simulator-checked tightness,
// policy winner) to stdout or --out.
//
// Determinism: the default output is byte-identical for any --threads
// value (see docs/SCENARIOS.md); --timings adds wall-clock fields, which
// are the one run-to-run varying part, for perf-trajectory recording.
//
//   argo_eval --seed 7 --scenarios 50 --threads 0 --timings > BENCH_eval.json
//   argo_eval --seed 7 --scenarios 50 --threads 1 | cmp - <(argo_eval ... --threads 8)
//
// Options:
//   --seed N            base seed of the scenario family       (default 1)
//   --scenarios N       number of generated scenarios          (default 20)
//   --threads N         batch workers; 0 = hardware threads    (default 1)
//   --executor NAME     graph | barrier                  (default graph)
//                       graph = support::TaskGraph dependency-graph
//                       executor (stages overlap across scenarios);
//                       barrier = one flat parallelFor over fused units.
//                       The report is byte-identical either way — the A/B
//                       pair is the executor-differential oracle.
//   --sweep-mode NAME   modulo | cross                  (default modulo)
//                       modulo = scenario i on sweep case i % caseCount;
//                       cross = every scenario on every sweep case (the
//                       full design-space product; rows scenario-major).
//   --cache NAME        on | off                            (default on)
//                       on = memoize toolchain stages in a shared
//                       content-hash cache (core/cache.h); off = compute
//                       every unit from scratch. The report is
//                       byte-identical either way — the A/B pair is the
//                       cache-differential oracle. Cache counters appear
//                       in the JSON only together with --timings.
//   --cache-dir DIR     persist the stage cache on disk under DIR
//                       (support/disk_cache.h): a rerun in a fresh
//                       process starts warm, and the report stays
//                       byte-identical to --cache off. Defaults to the
//                       ARGO_CACHE_DIR environment variable; unset/empty
//                       means in-memory only. Ignored with --cache off.
//                       Disk hit/miss/reject/store counters join the
//                       cache_stats JSON under --timings; a nonzero
//                       reject count (malformed records recomputed —
//                       damage or version skew in DIR) is additionally
//                       reported on stderr unconditionally.
//   --policies a,b,..   registry names to compare   (default: all registered)
//                       (accepts the argo_cc aliases bnb / oblivious;
//                       unknown names are rejected up front with the
//                       registered set)
//   --shape NAME        layered_dag | stencil_chain   (default layered_dag)
//   --stencil-radius N  window half-width for stencil_chain    (default 1)
//   --sim-trials N      simulator probes per run; 0 = skip     (default 3)
//   --layers MIN:MAX    hidden-layer range                     (default 2:4)
//   --width MIN:MAX     nodes-per-layer range                  (default 1:3)
//   --array-len MIN:MAX array length range                     (default 8:48)
//   --ccr X             communication/computation knob         (default 1.0)
//   --spread X          WCET spread (>= 1)                     (default 4.0)
//   --cores a,b,..      platform-sweep core counts             (default 2,4,8)
//   --platforms a,b,..  subset of bus_rr,bus_tdma,noc          (default all)
//   --spm a,b,..        SPM bytes to sweep        (default: platform default)
//   --timings           include wall-clock fields in the JSON (adds the
//                       per-stage wall_ms fields, the cache_stats block,
//                       and the unified `metrics` counter block — see
//                       docs/OBSERVABILITY.md)
//   --trace FILE        record a Chrome trace-event JSON execution trace
//                       to FILE (support/trace.h): spans for pool tasks,
//                       graph nodes, toolchain stages with cache
//                       hit/miss attribution, disk cache I/O, per-unit
//                       eval and simulator batches. Load in Perfetto or
//                       summarize with tools/trace_summary.py. Defaults
//                       to the ARGO_TRACE environment variable;
//                       unset/empty disables tracing. The report bytes
//                       are identical with tracing on or off.
//   --out FILE          write the JSON to FILE instead of stdout
//
// Exit code: 0 iff the batch ran and every simulator probe stayed within
// its bound; 1 on a bound violation or a tool-chain error; 2 on usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/metrics_report.h"
#include "scenarios/eval.h"
#include "sched/policy.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "support/trace.h"

namespace {

using namespace argo;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--scenarios N] [--threads N] [--policies a,b]\n"
      "          [--executor graph|barrier] [--sweep-mode modulo|cross]\n"
      "          [--cache on|off] [--cache-dir DIR]\n"
      "          [--sim-trials N] [--layers MIN:MAX] [--width MIN:MAX]\n"
      "          [--array-len MIN:MAX] [--ccr X] [--spread X]\n"
      "          [--shape layered_dag|stencil_chain] [--stencil-radius N]\n"
      "          [--cores a,b] [--platforms bus_rr,bus_tdma,noc]\n"
      "          [--spm a,b] [--timings] [--trace FILE] [--out FILE]\n",
      argv0);
  std::exit(2);
}

void parseRange(const std::string& value, int& lo, int& hi, const char* argv0) {
  const std::size_t colon = value.find(':');
  if (colon == std::string::npos) usage(argv0);
  try {
    lo = std::stoi(value.substr(0, colon));
    hi = std::stoi(value.substr(colon + 1));
  } catch (...) {
    usage(argv0);
  }
}

std::vector<int> parseIntList(const std::string& value, const char* argv0) {
  std::vector<int> out;
  for (const std::string& item : support::split(value, ',')) {
    try {
      out.push_back(std::stoi(item));
    } catch (...) {
      usage(argv0);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  scenarios::EvalOptions options;
  bool timings = false;
  std::string outFile;
  std::string traceFile;

  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--seed") {
        options.generator.seed = std::stoull(value(i));
      } else if (arg == "--scenarios") {
        options.scenarioCount = std::stoi(value(i));
      } else if (arg == "--threads") {
        options.threads = std::stoi(value(i));
      } else if (arg == "--policies") {
        // Same UX as argo_cc --policy: short aliases for the built-ins,
        // everything else passed to the registry verbatim.
        options.policies.clear();
        for (const std::string& name : support::split(value(i), ',')) {
          if (name == "bnb") options.policies.push_back("branch_and_bound");
          else if (name == "oblivious")
            options.policies.push_back("contention_oblivious");
          else options.policies.push_back(name);
        }
      } else if (arg == "--executor") {
        const std::string name = value(i);
        if (name == "graph") {
          options.executor = scenarios::EvalExecutor::Graph;
        } else if (name == "barrier") {
          options.executor = scenarios::EvalExecutor::Barrier;
        } else {
          throw support::ToolchainError("unknown executor '" + name +
                                        "' (expected graph or barrier)");
        }
      } else if (arg == "--sweep-mode") {
        const std::string name = value(i);
        if (name == "modulo") {
          options.sweepMode = scenarios::SweepMode::Modulo;
        } else if (name == "cross") {
          options.sweepMode = scenarios::SweepMode::Cross;
        } else {
          throw support::ToolchainError("unknown sweep mode '" + name +
                                        "' (expected modulo or cross)");
        }
      } else if (arg == "--cache") {
        const std::string name = value(i);
        if (name == "on") {
          options.cacheEnabled = true;
        } else if (name == "off") {
          options.cacheEnabled = false;
        } else {
          throw support::ToolchainError("unknown cache setting '" + name +
                                        "' (expected on or off)");
        }
      } else if (arg == "--cache-dir") {
        options.cacheDir = value(i);
      } else if (arg == "--sim-trials") {
        options.simTrials = std::stoi(value(i));
      } else if (arg == "--layers") {
        parseRange(value(i), options.generator.minLayers,
                   options.generator.maxLayers, argv[0]);
      } else if (arg == "--width") {
        parseRange(value(i), options.generator.minWidth,
                   options.generator.maxWidth, argv[0]);
      } else if (arg == "--array-len") {
        parseRange(value(i), options.generator.minArrayLen,
                   options.generator.maxArrayLen, argv[0]);
      } else if (arg == "--ccr") {
        options.generator.ccr = std::stod(value(i));
      } else if (arg == "--spread") {
        options.generator.wcetSpread = std::stod(value(i));
      } else if (arg == "--shape") {
        options.generator.shape = scenarios::shapeFromName(value(i));
      } else if (arg == "--stencil-radius") {
        options.generator.stencilRadius = std::stoi(value(i));
      } else if (arg == "--cores") {
        options.sweep.coreCounts = parseIntList(value(i), argv[0]);
      } else if (arg == "--platforms") {
        options.sweep.busRoundRobin = false;
        options.sweep.busTdma = false;
        options.sweep.noc = false;
        for (const std::string& p : support::split(value(i), ',')) {
          if (p == "bus_rr") options.sweep.busRoundRobin = true;
          else if (p == "bus_tdma") options.sweep.busTdma = true;
          else if (p == "noc") options.sweep.noc = true;
          else usage(argv[0]);
        }
      } else if (arg == "--spm") {
        options.sweep.spmBytes.clear();
        for (int bytes : parseIntList(value(i), argv[0])) {
          options.sweep.spmBytes.push_back(bytes);
        }
      } else if (arg == "--timings") {
        timings = true;
      } else if (arg == "--trace") {
        traceFile = value(i);
      } else if (arg == "--out") {
        outFile = value(i);
      } else {
        usage(argv[0]);
      }
    }
  } catch (const support::ToolchainError& error) {
    // Knob-level diagnostics (e.g. an unknown --shape) carry their own
    // message; surface it instead of the generic usage text.
    std::fprintf(stderr, "argo_eval: %s\n", error.what());
    return 2;
  } catch (const std::exception&) {
    usage(argv[0]);
  }

  // --cache-dir wins over the environment; both empty = no disk tier.
  if (options.cacheDir.empty()) {
    if (const char* env = std::getenv("ARGO_CACHE_DIR")) {
      options.cacheDir = env;
    }
  }
  // Same precedence for the trace destination.
  if (traceFile.empty()) {
    if (const char* env = std::getenv("ARGO_TRACE")) {
      traceFile = env;
    }
  }
  if (!traceFile.empty()) support::TraceRecorder::global().enable();

  try {
    // Reject unknown policy names up front — before any generation or
    // tool-chain work — with the registered-set diagnostic (the same UX
    // as argo_cc --policy).
    for (const std::string& policy : options.policies) {
      (void)sched::policyOrThrow(policy);
    }
    const scenarios::EvalReport report = scenarios::runEval(options);
    // The pinned disk-reject warning, shared with argo_cc (see
    // core/metrics_report.h for why it bypasses --timings).
    core::warnDiskRejects("argo_eval", report.cacheStats);
    const std::string json = report.toJson(timings);
    if (outFile.empty()) {
      std::printf("%s\n", json.c_str());
    } else {
      std::ofstream out(outFile);
      if (!out) {
        std::fprintf(stderr, "argo_eval: cannot write '%s'\n",
                     outFile.c_str());
        return 1;
      }
      out << json << "\n";
    }
    if (!traceFile.empty() &&
        !support::TraceRecorder::global().writeFile(traceFile)) {
      std::fprintf(stderr, "argo_eval: cannot write trace '%s'\n",
                   traceFile.c_str());
      return 1;
    }
    return report.allSimSafe ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "argo_eval: %s\n", error.what());
    return 1;
  }
}
