// WEAA — Wake Encounter Avoidance and Advisory system (aerospace use case).
//
// Paper Section IV-A: "WEAA provides guidance for tactical small-scale
// evasion from wake vortices ... WEAA predicts wake vortices, performs
// conflict detection and generates evasion trajectories."
//
// Model: the leader aircraft sheds a counter-rotating vortex pair that
// descends and decays (Hallock–Burnham core model with exponential
// circulation decay). The ownship trajectory is predicted over `horizon`
// time steps; at each step the induced tangential velocity of both
// vortices at the ownship position gives an upset-severity sample
// (parallelizable loop). Conflict detection thresholds the maximum
// severity. The advisory stage evaluates `candidates` lateral evasion
// offsets, each scored by its worst severity along the horizon (a second,
// doubly-nested parallelizable loop), and reports the per-candidate scores
// plus the best score.
#pragma once

#include <vector>

#include "model/diagram.h"

namespace argo::apps {

struct WeaaConfig {
  int horizon = 48;     ///< Prediction steps.
  int candidates = 8;   ///< Evasion maneuvers evaluated.
  double dt = 0.5;      ///< Seconds per step.
  double coreRadius = 4.0;    ///< Vortex core radius rc (m).
  double sinkRate = 1.5;      ///< Vortex descent speed (m/s).
  double decayTau = 30.0;     ///< Circulation decay constant (s).
  double vortexSpan = 50.0;   ///< Lateral separation of the pair (m).
  double severityThreshold = 6.0;  ///< Conflict threshold (m/s induced).
};

struct WeaaInputs {
  double ox = 0.0, oy = -30.0, oz = 0.0;   ///< Ownship position (m).
  double ovx = 70.0, ovy = 1.0;            ///< Ownship velocity (m/s).
  double lx = 60.0, ly = 0.0, lz = 8.0;    ///< Leader position (m).
  double lvx = 75.0, lvy = 0.0;            ///< Leader velocity (m/s).
  double gamma0 = 380.0;                   ///< Initial circulation (m^2/s).
};

struct WeaaOutputs {
  double maxSeverity = 0.0;
  double conflict = 0.0;  ///< 1.0 when maxSeverity exceeds the threshold.
  std::vector<double> scores;  ///< Per-candidate worst severity.
  double bestScore = 0.0;      ///< min over scores.
};

[[nodiscard]] model::Diagram buildWeaaDiagram(const WeaaConfig& config);

[[nodiscard]] WeaaOutputs weaaReference(const WeaaConfig& config,
                                        const WeaaInputs& inputs);

void setWeaaInputs(ir::Environment& env, const WeaaInputs& inputs);

/// Lateral offset (m) of evasion candidate m (1-based), shared by model
/// and reference.
[[nodiscard]] double weaaCandidateOffset(int m, const WeaaConfig& config);

}  // namespace argo::apps
