#include "apps/weaa.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "model/blocks.h"
#include "model/scilab.h"

namespace argo::apps {

double weaaCandidateOffset(int m, const WeaaConfig& config) {
  // Symmetric ladder of lateral offsets around the current track,
  // e.g. for 8 candidates: -70, -50, ..., +70 m.
  return (static_cast<double>(m) - (config.candidates + 1) / 2.0) * 20.0;
}

namespace {

/// Common severity formula as a Scilab expression fragment; `PY` is the
/// lateral position expression to evaluate against.
std::string severityBody(const WeaaConfig& config, const std::string& py,
                         const std::string& target) {
  std::ostringstream os;
  os << "  px = ox + ovx * t\n"
     << "  pz = oz\n"
     << "  wy1 = ly + lvy * t - " << config.vortexSpan / 2.0 << "\n"
     << "  wy2 = ly + lvy * t + " << config.vortexSpan / 2.0 << "\n"
     << "  wz = lz - " << config.sinkRate << " * t\n"
     << "  wx = lx + lvx * t\n"
     << "  circ = gamma0 * exp(-t / " << config.decayTau << ")\n"
     << "  axial = exp(-((px - wx) / 200.0)^2)\n"
     << "  dy = " << py << " - wy1\n"
     << "  dz = pz - wz\n"
     << "  r2 = dy*dy + dz*dz\n"
     << "  va = circ * sqrt(r2) / (2.0 * pi * (r2 + " << config.coreRadius
     << "^2))\n"
     << "  dy = " << py << " - wy2\n"
     << "  r2 = dy*dy + dz*dz\n"
     << "  vb = circ * sqrt(r2) / (2.0 * pi * (r2 + " << config.coreRadius
     << "^2))\n"
     << "  " << target << " = (va + vb) * axial\n";
  return os.str();
}

std::string severityScript(const WeaaConfig& config) {
  std::ostringstream os;
  os << "local t; local px; local pz; local wy1; local wy2; local wz\n"
     << "local wx; local circ; local axial; local dy; local dz; local r2\n"
     << "local va; local vb\n"
     << "for k = 1:" << config.horizon << "\n"
     << "  t = float(k) * " << config.dt << "\n"
     << severityBody(config, "(oy + ovy * t)", "sev(k)") << "end\n";
  return os.str();
}

std::string advisoryScript(const WeaaConfig& config) {
  std::ostringstream os;
  os << "local t; local px; local pz; local wy1; local wy2; local wz\n"
     << "local wx; local circ; local axial; local dy; local dz; local r2\n"
     << "local va; local vb; local off; local v\n"
     << "for m = 1:" << config.candidates << "\n"
     << "  off = (float(m) - " << (config.candidates + 1) / 2.0
     << ") * 20.0\n"
     << "  score(m) = 0.0\n"
     << "  for k = 1:" << config.horizon << "\n"
     << "    t = float(k) * " << config.dt << "\n"
     << severityBody(config, "(oy + off + ovy * t)", "v")
     << "    if v > score(m) then\n"
     << "      score(m) = v\n"
     << "    end\n"
     << "  end\n"
     << "end\n";
  return os.str();
}

constexpr const char* kConflictScript =
    "conflict = 0.0\n"
    "if maxsev > thresh then conflict = 1.0 end\n";

}  // namespace

model::Diagram buildWeaaDiagram(const WeaaConfig& config) {
  using namespace model;
  namespace sl = model::scilab;
  const ir::Type scalar = ir::Type::float64();
  const ir::Type sevType =
      ir::Type::array(ir::ScalarKind::Float64, {config.horizon});
  const ir::Type scoreType =
      ir::Type::array(ir::ScalarKind::Float64, {config.candidates});

  Diagram diagram("weaa");
  const char* inputNames[] = {"ox", "oy", "oz", "ovx", "ovy",
                              "lx", "ly", "lz", "lvx", "lvy",
                              "gamma0"};
  std::vector<BlockId> inputs;
  for (const char* name : inputNames) {
    inputs.push_back(diagram.add<InputBlock>(name, scalar));
  }

  std::vector<sl::PortSpec> stateports;
  for (const char* name : inputNames) {
    stateports.push_back(sl::PortSpec{name, scalar});
  }

  // Wake prediction + severity sampling along the predicted trajectory.
  const BlockId severity = diagram.add<ScilabBlock>(
      "severity", severityScript(config), stateports,
      std::vector<sl::PortSpec>{{"sev", sevType}});
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    diagram.connect(inputs[i], 0, severity, static_cast<int>(i));
  }

  const BlockId maxSev = diagram.add<ReduceBlock>("max_severity",
                                                  ReduceBlock::Op::Max);
  diagram.connect(severity, 0, maxSev, 0);

  // Conflict detection against the configured threshold.
  const BlockId threshold = diagram.add<ConstBlock>(
      "threshold", scalar, std::vector<double>{config.severityThreshold});
  const BlockId conflict = diagram.add<ScilabBlock>(
      "conflict_detect", kConflictScript,
      std::vector<sl::PortSpec>{{"maxsev", scalar}, {"thresh", scalar}},
      std::vector<sl::PortSpec>{{"conflict", scalar}});
  diagram.connect(maxSev, 0, conflict, 0);
  diagram.connect(threshold, 0, conflict, 1);

  // Evasion advisory: score every candidate lateral offset.
  const BlockId advisory = diagram.add<ScilabBlock>(
      "advisory", advisoryScript(config), stateports,
      std::vector<sl::PortSpec>{{"score", scoreType}});
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    diagram.connect(inputs[i], 0, advisory, static_cast<int>(i));
  }

  const BlockId bestScore =
      diagram.add<ReduceBlock>("best_score", ReduceBlock::Op::Min);
  diagram.connect(advisory, 0, bestScore, 0);

  const BlockId outMax = diagram.add<OutputBlock>("max_severity_out");
  diagram.connect(maxSev, 0, outMax, 0);
  const BlockId outConflict = diagram.add<OutputBlock>("conflict_out");
  diagram.connect(conflict, 0, outConflict, 0);
  const BlockId outScores = diagram.add<OutputBlock>("scores_out");
  diagram.connect(advisory, 0, outScores, 0);
  const BlockId outBest = diagram.add<OutputBlock>("best_score_out");
  diagram.connect(bestScore, 0, outBest, 0);
  return diagram;
}

namespace {

double severityAt(const WeaaConfig& config, const WeaaInputs& in, double t,
                  double lateralOffset) {
  const double px = in.ox + in.ovx * t;
  const double py = in.oy + lateralOffset + in.ovy * t;
  const double pz = in.oz;
  const double wy1 = in.ly + in.lvy * t - config.vortexSpan / 2.0;
  const double wy2 = in.ly + in.lvy * t + config.vortexSpan / 2.0;
  const double wz = in.lz - config.sinkRate * t;
  const double wx = in.lx + in.lvx * t;
  const double circ = in.gamma0 * std::exp(-t / config.decayTau);
  const double ax = (px - wx) / 200.0;
  const double axial = std::exp(-(ax * ax));
  const double rc2 = config.coreRadius * config.coreRadius;
  const double pi = 3.14159265358979323846;
  auto tangential = [&](double wy) {
    const double dy = py - wy;
    const double dz = pz - wz;
    const double r2 = dy * dy + dz * dz;
    return circ * std::sqrt(r2) / (2.0 * pi * (r2 + rc2));
  };
  return (tangential(wy1) + tangential(wy2)) * axial;
}

}  // namespace

WeaaOutputs weaaReference(const WeaaConfig& config, const WeaaInputs& inputs) {
  WeaaOutputs out;
  out.maxSeverity = -1e300;
  for (int k = 1; k <= config.horizon; ++k) {
    const double t = static_cast<double>(k) * config.dt;
    out.maxSeverity = std::max(out.maxSeverity,
                               severityAt(config, inputs, t, 0.0));
  }
  out.conflict = out.maxSeverity > config.severityThreshold ? 1.0 : 0.0;
  out.scores.resize(static_cast<std::size_t>(config.candidates));
  out.bestScore = 1e300;
  for (int m = 1; m <= config.candidates; ++m) {
    double worst = 0.0;
    for (int k = 1; k <= config.horizon; ++k) {
      const double t = static_cast<double>(k) * config.dt;
      worst = std::max(worst,
                       severityAt(config, inputs, t,
                                  weaaCandidateOffset(m, config)));
    }
    out.scores[static_cast<std::size_t>(m - 1)] = worst;
    out.bestScore = std::min(out.bestScore, worst);
  }
  return out;
}

void setWeaaInputs(ir::Environment& env, const WeaaInputs& in) {
  env["ox"] = ir::Value::scalarFloat(in.ox);
  env["oy"] = ir::Value::scalarFloat(in.oy);
  env["oz"] = ir::Value::scalarFloat(in.oz);
  env["ovx"] = ir::Value::scalarFloat(in.ovx);
  env["ovy"] = ir::Value::scalarFloat(in.ovy);
  env["lx"] = ir::Value::scalarFloat(in.lx);
  env["ly"] = ir::Value::scalarFloat(in.ly);
  env["lz"] = ir::Value::scalarFloat(in.lz);
  env["lvx"] = ir::Value::scalarFloat(in.lvx);
  env["lvy"] = ir::Value::scalarFloat(in.lvy);
  env["gamma0"] = ir::Value::scalarFloat(in.gamma0);
}

}  // namespace argo::apps
