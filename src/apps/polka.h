// POLKA — polarization-camera glass-stress inspection (industrial use case).
//
// Paper Section IV-B: "POLKA uses a novel sensor that measures the
// polarization of light to detect residual stress in glass containers."
//
// Model: the sensor delivers a mosaic image whose 2x2 super-pixels carry
// four polarizer orientations (0deg, 45deg, 135deg, 90deg). The pipeline:
//   1. demosaic into four quarter-resolution intensity planes,
//   2. per-pixel Stokes-parameter computation and degree of linear
//      polarization, DoLP = sqrt(S1^2 + S2^2) / S0,
//   3. 3x3 smoothing convolution on the DoLP map,
//   4. threshold into a stress map, defect pixel count and maximum DoLP.
// Residual stress rotates polarization (photoelasticity), so high DoLP
// marks stressed glass. Every image-plane stage is a parallelizable loop
// nest — the in-line inspection workload the paper motivates.
#pragma once

#include <cstdint>
#include <vector>

#include "model/diagram.h"

namespace argo::apps {

struct PolkaConfig {
  int mosaicH = 32;  ///< Sensor rows (even).
  int mosaicW = 32;  ///< Sensor columns (even).
  double dolpThreshold = 0.35;
  [[nodiscard]] int planeH() const noexcept { return mosaicH / 2; }
  [[nodiscard]] int planeW() const noexcept { return mosaicW / 2; }
};

struct PolkaOutputs {
  double defectCount = 0.0;
  double maxDolp = 0.0;
};

/// Deterministic synthetic mosaic frame: unpolarized background plus one
/// elliptical stressed region with elevated, rotated polarization.
[[nodiscard]] std::vector<double> makePolkaFrame(const PolkaConfig& config,
                                                 std::uint64_t seed);

[[nodiscard]] model::Diagram buildPolkaDiagram(const PolkaConfig& config);

[[nodiscard]] PolkaOutputs polkaReference(const PolkaConfig& config,
                                          const std::vector<double>& mosaic);

/// Writes a mosaic frame into a compiled-model environment.
void setPolkaInputs(ir::Environment& env, const PolkaConfig& config,
                    const std::vector<double>& mosaic);

/// The 3x3 smoothing kernel shared by model and reference.
[[nodiscard]] const std::vector<double>& polkaKernel();

}  // namespace argo::apps
