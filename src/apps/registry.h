// Name-keyed access to the built-in avionics use cases.
//
// The argo_cc CLI and the codegen differential tests both need "app name
// -> diagram" and "app name -> per-step inputs"; keeping the recipes here
// (instead of one copy per driver) guarantees the differential suite
// exercises exactly the trace the CLI emits.
#pragma once

#include <cstdint>
#include <string>

#include "ir/evaluator.h"
#include "model/diagram.h"

namespace argo::apps {

/// Builds the diagram of the named built-in app ("egpws", "weaa",
/// "polka"), each with its default config. Throws support::ToolchainError
/// for unknown names.
[[nodiscard]] model::Diagram buildAppDiagram(const std::string& app);

/// Sets every model input of the named app for step `seed`: a small
/// deterministic per-step variation (heading sweep for egpws, intruder
/// offset for weaa, a fresh synthetic frame for polka) — the recorded
/// trace argo_cc --simulate checks and --emit-c embeds. Throws for
/// unknown names.
void setAppStepInputs(const std::string& app, ir::Environment& env,
                      std::uint64_t seed);

}  // namespace argo::apps
