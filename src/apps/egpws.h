// EGPWS — Enhanced Ground Proximity Warning System (aerospace use case).
//
// Paper Section IV-A: "EGPWS provides alerts and warnings for obstacle and
// terrain along the flight path. EGPWS combines high resolution terrain
// databases, GPS and other sensors to provide feedback to pilots."
//
// Model: a synthetic terrain database (Const grid), aircraft state inputs,
// and a look-ahead predictor that samples the predicted flight path at
// `samples` points, bilinearly interpolating terrain elevation and
// computing per-sample clearance (a parallelizable loop), followed by a
// minimum reduction and alert classification. Vertical speed is smoothed
// by a small FIR, ground speed saturated to the sensor range.
//
// The hand-written reference implementation (egpwsReference) is the golden
// model the compiled diagram is tested against.
#pragma once

#include <cstdint>
#include <vector>

#include "model/diagram.h"

namespace argo::apps {

struct EgpwsConfig {
  int gridH = 32;       ///< Terrain rows.
  int gridW = 32;       ///< Terrain columns.
  int samples = 32;     ///< Look-ahead samples along the flight path.
  double dt = 0.5;      ///< Seconds between samples.
  double cellSize = 100.0;  ///< Terrain cell edge length (m).
  std::uint64_t terrainSeed = 42;
};

/// Aircraft state for one step (grid coordinates are 1-based, matching the
/// Scilab convention used in the model).
struct EgpwsInputs {
  double x = 8.0;        ///< Grid column position.
  double y = 8.0;        ///< Grid row position.
  double altitude = 900.0;   ///< m
  double groundSpeed = 120.0;  ///< m/s
  double verticalSpeed = -5.0; ///< m/s
  double heading = 0.6;  ///< rad
};

struct EgpwsOutputs {
  double minClearance = 0.0;  ///< m above terrain, worst sample.
  double alert = 0.0;         ///< 0 none, 1 caution, 2 warning.
};

/// Deterministic synthetic terrain (row-major gridH x gridW elevations, m).
[[nodiscard]] std::vector<double> makeTerrain(const EgpwsConfig& config);

/// Builds the EGPWS dataflow diagram.
[[nodiscard]] model::Diagram buildEgpwsDiagram(const EgpwsConfig& config);

/// Golden single-step reference (zero-initialized filter state).
[[nodiscard]] EgpwsOutputs egpwsReference(const EgpwsConfig& config,
                                          const std::vector<double>& terrain,
                                          const EgpwsInputs& inputs);

/// Writes the aircraft state into a compiled-model environment.
void setEgpwsInputs(ir::Environment& env, const EgpwsInputs& inputs);

/// Smoothing filter taps shared by model and reference.
[[nodiscard]] const std::vector<double>& egpwsFirTaps();

}  // namespace argo::apps
