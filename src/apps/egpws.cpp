#include "apps/egpws.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "model/blocks.h"
#include "model/scilab.h"
#include "support/rng.h"

namespace argo::apps {

const std::vector<double>& egpwsFirTaps() {
  static const std::vector<double> taps = {0.5, 0.3, 0.2};
  return taps;
}

std::vector<double> makeTerrain(const EgpwsConfig& config) {
  // Smooth rolling hills plus a ridge: sum of sinusoids with a
  // deterministic per-cell perturbation (reproducible across model and
  // reference).
  support::Rng rng(config.terrainSeed);
  std::vector<double> terrain(
      static_cast<std::size_t>(config.gridH * config.gridW));
  for (int r = 0; r < config.gridH; ++r) {
    for (int c = 0; c < config.gridW; ++c) {
      const double fr = static_cast<double>(r) / config.gridH;
      const double fc = static_cast<double>(c) / config.gridW;
      double elevation = 300.0 + 250.0 * std::sin(3.1 * fr) *
                                     std::cos(2.3 * fc + 0.7) +
                         180.0 * std::sin(7.9 * fc);
      // Ridge running diagonally.
      const double ridge = 1.0 - std::abs(fr - fc);
      elevation += 320.0 * std::max(0.0, ridge - 0.8) * 5.0;
      elevation += 40.0 * rng.uniformDouble();
      terrain[static_cast<std::size_t>(r * config.gridW + c)] =
          std::max(0.0, elevation);
    }
  }
  return terrain;
}

namespace {

std::string lookaheadScript(const EgpwsConfig& config) {
  std::ostringstream os;
  const int h = config.gridH;
  const int w = config.gridW;
  os << "local t; local px; local py; local palt\n"
     << "local ix; local iy; local fx; local fy\n"
     << "local e00; local e01; local e10; local e11; local elev\n"
     << "for i = 1:" << config.samples << "\n"
     << "  t = float(i) * " << config.dt << "\n"
     << "  px = x + gs * t * cos(heading) / " << config.cellSize << "\n"
     << "  py = y + gs * t * sin(heading) / " << config.cellSize << "\n"
     << "  palt = alt + vs * t\n"
     << "  px = min(max(px, 1.0), " << w - 1 << ".0 - 0.001)\n"
     << "  py = min(max(py, 1.0), " << h - 1 << ".0 - 0.001)\n"
     << "  ix = int(floor(px))\n"
     << "  iy = int(floor(py))\n"
     << "  fx = px - float(ix)\n"
     << "  fy = py - float(iy)\n"
     << "  e00 = terrain(iy, ix)\n"
     << "  e01 = terrain(iy, ix + 1)\n"
     << "  e10 = terrain(iy + 1, ix)\n"
     << "  e11 = terrain(iy + 1, ix + 1)\n"
     << "  elev = e00*(1.0-fx)*(1.0-fy) + e01*fx*(1.0-fy)"
     << " + e10*(1.0-fx)*fy + e11*fx*fy\n"
     << "  clr(i) = palt - elev\n"
     << "end\n";
  return os.str();
}

constexpr const char* kAlertScript =
    "alert = 0.0\n"
    "if minclr < 500.0 then alert = 1.0 end\n"
    "if minclr < 200.0 then alert = 2.0 end\n";

}  // namespace

model::Diagram buildEgpwsDiagram(const EgpwsConfig& config) {
  using namespace model;
  namespace sl = model::scilab;
  const ir::Type scalar = ir::Type::float64();
  const ir::Type terrainType =
      ir::Type::array(ir::ScalarKind::Float64, {config.gridH, config.gridW});
  const ir::Type clrType =
      ir::Type::array(ir::ScalarKind::Float64, {config.samples});

  Diagram diagram("egpws");
  const BlockId x = diagram.add<InputBlock>("x", scalar);
  const BlockId y = diagram.add<InputBlock>("y", scalar);
  const BlockId alt = diagram.add<InputBlock>("alt", scalar);
  const BlockId gs = diagram.add<InputBlock>("gs", scalar);
  const BlockId vs = diagram.add<InputBlock>("vs", scalar);
  const BlockId heading = diagram.add<InputBlock>("heading", scalar);
  const BlockId terrain =
      diagram.add<ConstBlock>("terrain", terrainType, makeTerrain(config));

  // Sensor conditioning: saturate ground speed, FIR-smooth vertical speed.
  const BlockId gsSat = diagram.add<SaturateBlock>("gs_sat", 0.0, 350.0);
  diagram.connect(gs, gsSat);
  const BlockId vsFir = diagram.add<FirBlock>("vs_fir", egpwsFirTaps());
  diagram.connect(vs, vsFir);

  // Look-ahead clearance sampling (the parallel workhorse).
  const BlockId lookahead = diagram.add<ScilabBlock>(
      "lookahead", lookaheadScript(config),
      std::vector<sl::PortSpec>{{"terrain", terrainType},
                                {"x", scalar},
                                {"y", scalar},
                                {"alt", scalar},
                                {"gs", scalar},
                                {"vs", scalar},
                                {"heading", scalar}},
      std::vector<sl::PortSpec>{{"clr", clrType}});
  diagram.connect(terrain, 0, lookahead, 0);
  diagram.connect(x, 0, lookahead, 1);
  diagram.connect(y, 0, lookahead, 2);
  diagram.connect(alt, 0, lookahead, 3);
  diagram.connect(gsSat, 0, lookahead, 4);
  diagram.connect(vsFir, 0, lookahead, 5);
  diagram.connect(heading, 0, lookahead, 6);

  const BlockId minClr =
      diagram.add<ReduceBlock>("min_clearance", ReduceBlock::Op::Min);
  diagram.connect(lookahead, 0, minClr, 0);

  const BlockId alert = diagram.add<ScilabBlock>(
      "alert_logic", kAlertScript,
      std::vector<sl::PortSpec>{{"minclr", scalar}},
      std::vector<sl::PortSpec>{{"alert", scalar}});
  diagram.connect(minClr, 0, alert, 0);

  const BlockId outClr = diagram.add<OutputBlock>("min_clearance_out");
  diagram.connect(minClr, 0, outClr, 0);
  const BlockId outAlert = diagram.add<OutputBlock>("alert_out");
  diagram.connect(alert, 0, outAlert, 0);
  return diagram;
}

EgpwsOutputs egpwsReference(const EgpwsConfig& config,
                            const std::vector<double>& terrain,
                            const EgpwsInputs& inputs) {
  const int h = config.gridH;
  const int w = config.gridW;
  auto at = [&](int r, int c) {
    return terrain[static_cast<std::size_t>(r * w + c)];
  };
  const double gs = std::clamp(inputs.groundSpeed, 0.0, 350.0);
  // Zero-initialized FIR state: first step output is taps[0] * input.
  const double vs = egpwsFirTaps()[0] * inputs.verticalSpeed;

  double minClearance = 1e300;
  for (int i = 1; i <= config.samples; ++i) {
    const double t = static_cast<double>(i) * config.dt;
    double px = inputs.x + gs * t * std::cos(inputs.heading) / config.cellSize;
    double py = inputs.y + gs * t * std::sin(inputs.heading) / config.cellSize;
    const double palt = inputs.altitude + vs * t;
    px = std::min(std::max(px, 1.0), static_cast<double>(w - 1) - 0.001);
    py = std::min(std::max(py, 1.0), static_cast<double>(h - 1) - 0.001);
    const int ix = static_cast<int>(std::floor(px));
    const int iy = static_cast<int>(std::floor(py));
    const double fx = px - ix;
    const double fy = py - iy;
    // 1-based Scilab indices -> 0-based C++.
    const double e00 = at(iy - 1, ix - 1);
    const double e01 = at(iy - 1, ix);
    const double e10 = at(iy, ix - 1);
    const double e11 = at(iy, ix);
    const double elev = e00 * (1 - fx) * (1 - fy) + e01 * fx * (1 - fy) +
                        e10 * (1 - fx) * fy + e11 * fx * fy;
    minClearance = std::min(minClearance, palt - elev);
  }

  EgpwsOutputs out;
  out.minClearance = minClearance;
  out.alert = minClearance < 200.0 ? 2.0 : (minClearance < 500.0 ? 1.0 : 0.0);
  return out;
}

void setEgpwsInputs(ir::Environment& env, const EgpwsInputs& inputs) {
  env["x"] = ir::Value::scalarFloat(inputs.x);
  env["y"] = ir::Value::scalarFloat(inputs.y);
  env["alt"] = ir::Value::scalarFloat(inputs.altitude);
  env["gs"] = ir::Value::scalarFloat(inputs.groundSpeed);
  env["vs"] = ir::Value::scalarFloat(inputs.verticalSpeed);
  env["heading"] = ir::Value::scalarFloat(inputs.heading);
}

}  // namespace argo::apps
