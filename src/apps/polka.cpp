#include "apps/polka.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "model/blocks.h"
#include "model/scilab.h"
#include "support/rng.h"

namespace argo::apps {

const std::vector<double>& polkaKernel() {
  static const std::vector<double> kernel = {
      1.0 / 16, 2.0 / 16, 1.0 / 16,
      2.0 / 16, 4.0 / 16, 2.0 / 16,
      1.0 / 16, 2.0 / 16, 1.0 / 16};
  return kernel;
}

std::vector<double> makePolkaFrame(const PolkaConfig& config,
                                   std::uint64_t seed) {
  support::Rng rng(seed);
  const int h = config.mosaicH;
  const int w = config.mosaicW;
  std::vector<double> frame(static_cast<std::size_t>(h * w));
  // Stressed ellipse parameters (in plane coordinates).
  const double cy = config.planeH() * 0.55;
  const double cx = config.planeW() * 0.45;
  const double ry = config.planeH() * 0.22;
  const double rx = config.planeW() * 0.30;
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      const double py = r / 2;
      const double px = c / 2;
      const double dy = (py - cy) / ry;
      const double dx = (px - cx) / rx;
      const bool stressed = dy * dy + dx * dx < 1.0;
      const double intensity = 0.55 + 0.05 * rng.uniformDouble();
      // Polarization state: background nearly unpolarized, stressed glass
      // strongly polarized at 30 degrees.
      const double dolp = stressed ? 0.6 : 0.05;
      const double angle = stressed ? 0.5236 : 0.1;
      // Malus: I(theta) = I/2 * (1 + dolp * cos(2*(theta - angle))).
      const double theta[2][2] = {{0.0, 0.7853981633974483},
                                  {2.356194490192345, 1.5707963267948966}};
      const double t = theta[r % 2][c % 2];
      frame[static_cast<std::size_t>(r * w + c)] =
          intensity * 0.5 * (1.0 + dolp * std::cos(2.0 * (t - angle)));
    }
  }
  return frame;
}

namespace {

std::string demosaicScript(const PolkaConfig& config) {
  std::ostringstream os;
  os << "for r = 1:" << config.planeH() << "\n"
     << "  for c = 1:" << config.planeW() << "\n"
     << "    i0(r,c) = img(2*r-1, 2*c-1)\n"
     << "    i45(r,c) = img(2*r-1, 2*c)\n"
     << "    i135(r,c) = img(2*r, 2*c-1)\n"
     << "    i90(r,c) = img(2*r, 2*c)\n"
     << "  end\n"
     << "end\n";
  return os.str();
}

std::string stokesScript(const PolkaConfig& config) {
  // Expression form keeps the outer loop free of cross-iteration scalars,
  // so the task extractor can chunk it.
  std::ostringstream os;
  os << "for r = 1:" << config.planeH() << "\n"
     << "  for c = 1:" << config.planeW() << "\n"
     << "    dolp(r,c) = sqrt((i0(r,c) - i90(r,c))*(i0(r,c) - i90(r,c))"
     << " + (i45(r,c) - i135(r,c))*(i45(r,c) - i135(r,c)))"
     << " / max((i0(r,c) + i45(r,c) + i90(r,c) + i135(r,c)) / 2.0, 0.001)\n"
     << "  end\n"
     << "end\n";
  return os.str();
}

std::string thresholdScript(const PolkaConfig& config) {
  std::ostringstream os;
  os << "for r = 1:" << config.planeH() << "\n"
     << "  for c = 1:" << config.planeW() << "\n"
     << "    if smooth(r,c) > " << config.dolpThreshold << " then\n"
     << "      bin(r,c) = 1.0\n"
     << "    else\n"
     << "      bin(r,c) = 0.0\n"
     << "    end\n"
     << "  end\n"
     << "end\n";
  return os.str();
}

}  // namespace

model::Diagram buildPolkaDiagram(const PolkaConfig& config) {
  using namespace model;
  namespace sl = model::scilab;
  const ir::Type mosaicType = ir::Type::array(
      ir::ScalarKind::Float64, {config.mosaicH, config.mosaicW});
  const ir::Type planeType = ir::Type::array(
      ir::ScalarKind::Float64, {config.planeH(), config.planeW()});

  Diagram diagram("polka");
  const BlockId img = diagram.add<InputBlock>("img", mosaicType);

  const BlockId demosaic = diagram.add<ScilabBlock>(
      "demosaic", demosaicScript(config),
      std::vector<sl::PortSpec>{{"img", mosaicType}},
      std::vector<sl::PortSpec>{{"i0", planeType},
                                {"i45", planeType},
                                {"i135", planeType},
                                {"i90", planeType}});
  diagram.connect(img, 0, demosaic, 0);

  const BlockId stokes = diagram.add<ScilabBlock>(
      "stokes", stokesScript(config),
      std::vector<sl::PortSpec>{{"i0", planeType},
                                {"i45", planeType},
                                {"i135", planeType},
                                {"i90", planeType}},
      std::vector<sl::PortSpec>{{"dolp", planeType}});
  diagram.connect(demosaic, 0, stokes, 0);
  diagram.connect(demosaic, 1, stokes, 1);
  diagram.connect(demosaic, 2, stokes, 2);
  diagram.connect(demosaic, 3, stokes, 3);

  const BlockId smooth =
      diagram.add<Conv2dBlock>("smooth", 3, 3, polkaKernel());
  diagram.connect(stokes, 0, smooth, 0);

  const BlockId threshold = diagram.add<ScilabBlock>(
      "threshold", thresholdScript(config),
      std::vector<sl::PortSpec>{{"smooth", planeType}},
      std::vector<sl::PortSpec>{{"bin", planeType}});
  diagram.connect(smooth, 0, threshold, 0);

  const BlockId defectCount =
      diagram.add<ReduceBlock>("defect_count", ReduceBlock::Op::Sum);
  diagram.connect(threshold, 0, defectCount, 0);
  const BlockId maxDolp =
      diagram.add<ReduceBlock>("max_dolp", ReduceBlock::Op::Max);
  diagram.connect(smooth, 0, maxDolp, 0);

  const BlockId outCount = diagram.add<OutputBlock>("defect_count_out");
  diagram.connect(defectCount, 0, outCount, 0);
  const BlockId outMax = diagram.add<OutputBlock>("max_dolp_out");
  diagram.connect(maxDolp, 0, outMax, 0);
  return diagram;
}

PolkaOutputs polkaReference(const PolkaConfig& config,
                            const std::vector<double>& mosaic) {
  const int ph = config.planeH();
  const int pw = config.planeW();
  const int w = config.mosaicW;
  auto mosaicAt = [&](int r, int c) {
    return mosaic[static_cast<std::size_t>(r * w + c)];
  };
  std::vector<double> i0(static_cast<std::size_t>(ph * pw));
  std::vector<double> i45(i0.size());
  std::vector<double> i135(i0.size());
  std::vector<double> i90(i0.size());
  for (int r = 0; r < ph; ++r) {
    for (int c = 0; c < pw; ++c) {
      const std::size_t k = static_cast<std::size_t>(r * pw + c);
      i0[k] = mosaicAt(2 * r, 2 * c);
      i45[k] = mosaicAt(2 * r, 2 * c + 1);
      i135[k] = mosaicAt(2 * r + 1, 2 * c);
      i90[k] = mosaicAt(2 * r + 1, 2 * c + 1);
    }
  }
  std::vector<double> dolp(i0.size());
  for (std::size_t k = 0; k < dolp.size(); ++k) {
    const double s0 = (i0[k] + i45[k] + i90[k] + i135[k]) / 2.0;
    const double s1 = i0[k] - i90[k];
    const double s2 = i45[k] - i135[k];
    dolp[k] = std::sqrt(s1 * s1 + s2 * s2) / std::max(s0, 0.001);
  }
  // 3x3 "same" convolution, zero padding.
  std::vector<double> smooth(dolp.size(), 0.0);
  const std::vector<double>& kernel = polkaKernel();
  for (int r = 0; r < ph; ++r) {
    for (int c = 0; c < pw; ++c) {
      double acc = 0.0;
      for (int kr = 0; kr < 3; ++kr) {
        for (int kc = 0; kc < 3; ++kc) {
          const int sr = r + kr - 1;
          const int sc = c + kc - 1;
          if (sr < 0 || sr >= ph || sc < 0 || sc >= pw) continue;
          acc += kernel[static_cast<std::size_t>(kr * 3 + kc)] *
                 dolp[static_cast<std::size_t>(sr * pw + sc)];
        }
      }
      smooth[static_cast<std::size_t>(r * pw + c)] = acc;
    }
  }
  PolkaOutputs out;
  out.maxDolp = -1e300;
  for (double v : smooth) {
    out.maxDolp = std::max(out.maxDolp, v);
    if (v > config.dolpThreshold) out.defectCount += 1.0;
  }
  return out;
}

void setPolkaInputs(ir::Environment& env, const PolkaConfig& config,
                    const std::vector<double>& mosaic) {
  env["img"] = ir::Value::floats(
      ir::Type::array(ir::ScalarKind::Float64,
                      {config.mosaicH, config.mosaicW}),
      mosaic);
}

}  // namespace argo::apps
