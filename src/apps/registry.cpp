#include "apps/registry.h"

#include "apps/egpws.h"
#include "apps/polka.h"
#include "apps/weaa.h"
#include "support/diagnostics.h"

namespace argo::apps {

model::Diagram buildAppDiagram(const std::string& app) {
  if (app == "egpws") return buildEgpwsDiagram(EgpwsConfig{});
  if (app == "weaa") return buildWeaaDiagram(WeaaConfig{});
  if (app == "polka") return buildPolkaDiagram(PolkaConfig{});
  throw support::ToolchainError("unknown app '" + app + "'");
}

void setAppStepInputs(const std::string& app, ir::Environment& env,
                      std::uint64_t seed) {
  if (app == "egpws") {
    EgpwsInputs in;
    in.heading = 0.4 + 0.1 * static_cast<double>(seed % 7);
    setEgpwsInputs(env, in);
  } else if (app == "weaa") {
    WeaaInputs in;
    in.oy = -40.0 + 10.0 * static_cast<double>(seed % 9);
    setWeaaInputs(env, in);
  } else if (app == "polka") {
    setPolkaInputs(env, PolkaConfig{}, makePolkaFrame(PolkaConfig{}, seed));
  } else {
    throw support::ToolchainError("unknown app '" + app + "'");
  }
}

}  // namespace argo::apps
