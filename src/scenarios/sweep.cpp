#include "scenarios/sweep.h"

#include <utility>

#include "support/diagnostics.h"

namespace argo::scenarios {

namespace {

using support::ToolchainError;

/// Smallest mesh (width, height) holding at least `cores` tiles, widest
/// dimension first — the same rounding argo_cc applies to --platform noc.
std::pair<int, int> meshFor(int cores) {
  int width = 1;
  while (width * width < cores) ++width;
  const int height = (cores + width - 1) / width;
  return {width, height};
}

}  // namespace

std::vector<PlatformCase> buildPlatformSweep(const SweepOptions& options) {
  if (!options.busRoundRobin && !options.busTdma && !options.noc) {
    throw ToolchainError("platform sweep: no interconnect enabled");
  }
  if (options.coreCounts.empty()) {
    throw ToolchainError("platform sweep: no core counts given");
  }
  for (int cores : options.coreCounts) {
    if (cores <= 0) {
      throw ToolchainError("platform sweep: core count must be positive");
    }
  }
  for (std::int64_t bytes : options.spmBytes) {
    if (bytes <= 0) {
      throw ToolchainError("platform sweep: SPM size must be positive");
    }
  }

  std::vector<PlatformCase> cases;
  const std::vector<std::int64_t> spmSweep =
      options.spmBytes.empty() ? std::vector<std::int64_t>{0}  // 0 = default
                               : options.spmBytes;
  for (int cores : options.coreCounts) {
    // Interconnects in fixed order: bus_rr (0), bus_tdma (1), noc (2).
    for (int which = 0; which < 3; ++which) {
      const bool enabled = which == 0   ? options.busRoundRobin
                           : which == 1 ? options.busTdma
                                        : options.noc;
      if (!enabled) continue;
      for (std::int64_t spm : spmSweep) {
        adl::Platform platform =
            which == 0 ? adl::makeRecoreXentiumBus(cores)
            : which == 1
                ? adl::makeRecoreXentiumBus(cores, adl::Arbitration::Tdma)
                : [&] {
                    const auto [w, h] = meshFor(cores);
                    return adl::makeKitLeon3Inoc(w, h);
                  }();
        if (spm > 0) platform = platform.withSpmBytes(spm);
        const char* tag =
            which == 0 ? "bus_rr" : which == 1 ? "bus_tdma" : "noc";
        std::string name =
            std::string(tag) + "_c" + std::to_string(cores) +
            (spm > 0 ? "_spm" + std::to_string(spm) : std::string());
        cases.push_back(PlatformCase{std::move(name), std::move(platform)});
      }
    }
  }
  return cases;
}

}  // namespace argo::scenarios
