// Platform sweeps: the hardware axis of the scenario matrix.
//
// The generator (scenarios/generator.h) varies the workload; this builder
// varies the platform the same way the paper's evaluation does — Recore
// Xentium tiles on a shared bus (round-robin or TDMA) against KIT Leon3
// tiles on an iNoC-style mesh, at several tile counts and scratchpad
// sizes. Every case is a full adl::Platform, so scheduling, system-level
// WCET analysis and the simulator all price it consistently.
//
// The case list is a pure function of the options: cases are emitted in a
// fixed nested order (core count, then interconnect, then SPM size) with
// stable names, so batch reports keyed by case name are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adl/platform.h"

namespace argo::scenarios {

/// Knobs of the platform sweep. The sweep is the cross product of the
/// enabled interconnects, the core counts, and the SPM sizes.
struct SweepOptions {
  /// Tile counts to sweep (count, default {2, 4, 8}). For NoC cases the
  /// smallest mesh with at least this many tiles is used, so the actual
  /// tile count may round up (e.g. 8 -> 3x3; the case name keeps the
  /// requested count).
  std::vector<int> coreCounts = {2, 4, 8};
  /// Include Recore-like bus platforms with round-robin arbitration
  /// (default true).
  bool busRoundRobin = true;
  /// Include Recore-like bus platforms with TDMA arbitration (default
  /// true).
  bool busTdma = true;
  /// Include KIT-like Leon3 mesh-NoC platforms (default true).
  bool noc = true;
  /// Per-tile scratchpad sizes to sweep (bytes; empty, the default, keeps
  /// each platform's built-in SPM size).
  std::vector<std::int64_t> spmBytes;
};

/// One platform of the sweep.
struct PlatformCase {
  /// Stable case name, e.g. "bus_rr_c4", "bus_tdma_c8_spm4096", "noc_c8".
  std::string name;
  adl::Platform platform;
};

/// Builds the sweep described by `options`. Throws support::ToolchainError
/// when the options describe an empty sweep (no interconnect enabled, no
/// core counts) or contain a non-positive core count or SPM size.
[[nodiscard]] std::vector<PlatformCase> buildPlatformSweep(
    const SweepOptions& options);

}  // namespace argo::scenarios
