#include "scenarios/eval.h"

#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <optional>
#include <utility>

#include "core/metrics_report.h"
#include "sched/policy.h"
#include "sim/simulator.h"
#include "support/diagnostics.h"
#include "support/graph.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/trace.h"

namespace argo::scenarios {

namespace {

using support::ToolchainError;

/// Fills every Input-role variable of `env` with uniform values in
/// [-1, 1), drawn from a stream seeded by (scenario seed, trial). Input
/// order follows the declaration order, so the stream is reproducible.
void setRandomInputs(const ir::Function& fn, ir::Environment& env,
                     std::uint64_t seed) {
  support::Rng rng(seed);
  for (const ir::VarDecl& decl : fn.decls()) {
    if (decl.role != ir::VarRole::Input) continue;
    ir::Value& value = env[decl.name];
    for (std::int64_t i = 0; i < value.size(); ++i) {
      value.setFloat(i, rng.uniformDouble() * 2.0 - 1.0);
    }
  }
}

/// Tool-chain stage of one (scenario, policy) unit. The finished
/// ToolchainResult is parked in `keep` for the simulator stage (a separate
/// node on the graph executor), which consumes and releases it.
PolicyOutcome runToolchainStage(
    const Scenario& scenario, const adl::Platform& platform,
    const std::string& policy, const EvalOptions& options,
    const std::shared_ptr<core::ToolchainCache>& cache,
    std::optional<core::ToolchainResult>& keep) {
  // Per-unit span; the name is only materialized when tracing is on, so
  // the disabled path stays allocation-free. The nested "toolchain" and
  // "cache" spans carry the stage-level breakdown.
  support::TraceSpan span(
      "eval", support::TraceRecorder::enabled()
                  ? "unit/" + scenario.name + "/" + policy
                  : std::string());
  const auto begin = std::chrono::steady_clock::now();

  core::ToolchainOptions toolchainOptions = options.toolchain;
  toolchainOptions.sched.policy = policy;
  toolchainOptions.sched.interferenceAware = policy != "contention_oblivious";
  // The batch owns the pool; everything inside a unit stays inline.
  toolchainOptions.explorationThreads = 1;
  toolchainOptions.sched.parallelThreads = 1;
  toolchainOptions.cache = cache;

  const core::Toolchain toolchain(platform, toolchainOptions);
  keep = toolchain.run(scenario.model);
  const core::ToolchainResult& result = *keep;

  PolicyOutcome outcome;
  outcome.policy = policy;
  outcome.scheduleLabel = result.schedule.policy;
  outcome.tasks = static_cast<int>(result.graph->tasks.size());
  outcome.tilesUsed = result.schedule.tilesUsed;
  outcome.chosenChunks = result.chosenChunks;
  outcome.sequentialWcet = result.sequentialWcet;
  outcome.bound = result.system.makespan;

  const auto end = std::chrono::steady_clock::now();
  outcome.wallMs =
      std::chrono::duration<double, std::milli>(end - begin).count();
  return outcome;
}

/// Simulator stage of one unit: probes the bound of the parked toolchain
/// result with seeded random inputs, then releases the result. Both
/// executors run the identical stage code, so the outcomes (and hence the
/// rendered report) match byte for byte.
void runSimStage(const Scenario& scenario, const adl::Platform& platform,
                 const EvalOptions& options,
                 std::optional<core::ToolchainResult>& keep,
                 PolicyOutcome& outcome) {
  const auto begin = std::chrono::steady_clock::now();
  const core::ToolchainResult& result = *keep;

  if (options.simTrials > 0) {
    // One span per simulator trial batch (all trials of one unit).
    support::TraceSpan span(
        "sim", support::TraceRecorder::enabled()
                   ? scenario.name + "/" + outcome.policy
                   : std::string());
    if (span.active()) span.arg("trials", std::to_string(options.simTrials));
    const sim::Simulator simulator(result.program, platform);
    ir::Environment base = ir::makeZeroEnvironment(*result.fn);
    for (const auto& [name, value] : result.constants) base[name] = value;
    for (int trial = 0; trial < options.simTrials; ++trial) {
      ir::Environment env = base;
      setRandomInputs(*result.fn, env,
                      scenario.seed + static_cast<std::uint64_t>(trial));
      const Cycles makespan = simulator.step(env).makespan;
      if (makespan > outcome.observed) outcome.observed = makespan;
      outcome.simSafe = outcome.simSafe && makespan <= outcome.bound;
    }
  }

  keep.reset();  // the unit's heavyweight state dies with its last stage
  const auto end = std::chrono::steady_clock::now();
  outcome.wallMs +=
      std::chrono::duration<double, std::milli>(end - begin).count();
}

/// One fused (scenario, policy) unit of the barrier executor: both stages
/// back to back on the same worker.
PolicyOutcome runUnit(const Scenario& scenario, const adl::Platform& platform,
                      const std::string& policy, const EvalOptions& options,
                      const std::shared_ptr<core::ToolchainCache>& cache) {
  std::optional<core::ToolchainResult> keep;
  PolicyOutcome outcome =
      runToolchainStage(scenario, platform, policy, options, cache, keep);
  runSimStage(scenario, platform, options, keep, outcome);
  return outcome;
}

/// One (scenario, sweep case) cell of the evaluation grid. Modulo mode
/// pairs scenario s with moduloSweepCase(s, C); Cross mode enumerates the
/// full product scenario-major. Everything downstream — both executors
/// and the report assembly — walks this one list, so the pairing rule has
/// exactly one definition.
struct EvalCell {
  std::size_t scenario = 0;
  std::size_t sweepCase = 0;
};

std::vector<EvalCell> buildEvalCells(std::size_t scenarioCount,
                                     std::size_t sweepCases, SweepMode mode) {
  std::vector<EvalCell> cells;
  if (mode == SweepMode::Modulo) {
    cells.reserve(scenarioCount);
    for (std::size_t s = 0; s < scenarioCount; ++s) {
      cells.push_back(EvalCell{s, moduloSweepCase(s, sweepCases)});
    }
  } else {
    cells.reserve(scenarioCount * sweepCases);
    for (std::size_t s = 0; s < scenarioCount; ++s) {
      for (std::size_t c = 0; c < sweepCases; ++c) {
        cells.push_back(EvalCell{s, c});
      }
    }
  }
  return cells;
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list measure;
  va_copy(measure, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, measure);
  va_end(measure);
  if (needed > 0) {
    const std::size_t at = out.size();
    out.resize(at + static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data() + at, static_cast<std::size_t>(needed) + 1, fmt,
                   args);
    out.resize(at + static_cast<std::size_t>(needed));
  }
  va_end(args);
}

/// Minimal JSON string escaping (names are generated, but a custom policy
/// name could contain anything).
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

const char* sweepModeName(SweepMode mode) noexcept {
  return mode == SweepMode::Modulo ? "modulo" : "cross";
}

core::ToolchainOptions defaultEvalToolchainOptions() {
  core::ToolchainOptions options;
  options.chunkCandidates = {1, 2, 4};
  options.sched.saIterations = 1200;
  // The exact search dominates batch wall time with the stock 2M-node
  // budget; 100k nodes still finds the optimum on most generated graphs
  // and exhaustion is deterministic (labelled "(budget)").
  options.sched.bnbNodeBudget = 100'000;
  options.explorationThreads = 1;
  return options;
}

EvalReport runEval(const EvalOptions& options) {
  if (options.scenarioCount <= 0) {
    throw ToolchainError("runEval: scenarioCount must be positive");
  }
  if (options.simTrials < 0) {
    throw ToolchainError("runEval: simTrials must be >= 0");
  }

  EvalReport report;
  report.seed = options.generator.seed;
  report.policies = options.policies.empty() ? sched::registeredPolicyNames()
                                             : options.policies;
  // Fail on unknown names before spending any tool-chain time.
  for (const std::string& policy : report.policies) {
    (void)sched::policyOrThrow(policy);
  }

  const std::size_t scenarioCount =
      static_cast<std::size_t>(options.scenarioCount);
  const std::size_t policyCount = report.policies.size();

  // The sweep is built up front (it is cheap and every mode needs its
  // size to lay out the grid); the cell list is the one definition of the
  // scenario/platform pairing for executors and assembly alike.
  const std::vector<PlatformCase> sweep = buildPlatformSweep(options.sweep);
  const std::vector<EvalCell> cells =
      buildEvalCells(scenarioCount, sweep.size(), options.sweepMode);
  const std::size_t units = cells.size() * policyCount;

  report.sweepMode = options.sweepMode;
  report.scenarioCount = scenarioCount;
  report.platformCases = sweep.size();

  // One stage cache shared by the whole batch (or by many batches, when
  // the caller passed one in). Stage values are pure functions of their
  // keyed inputs, so sharing never changes the report bytes — only how
  // often work is recomputed.
  std::shared_ptr<core::ToolchainCache> cache;
  if (options.cacheEnabled) {
    cache = options.cache != nullptr ? options.cache
                                     : std::make_shared<core::ToolchainCache>();
    if (!options.cacheDir.empty() && cache->disk() == nullptr) {
      cache->attachDisk(options.cacheDir);
    }
  }

  // Every stage writes its own slot; the assembly below reads them
  // strictly in unit order. Which executor filled them is invisible to the
  // report — that is the executor-differential guarantee.
  std::vector<PolicyOutcome> slots(units);
  std::vector<Scenario> scenarioSlots(scenarioCount);

  if (options.executor == EvalExecutor::Barrier) {
    // Flat pooled phase over fused units. Units regenerate their scenario
    // locally — generation is cheap and keeps the units free of shared
    // mutable state; the sweep, cells, and options are read-only.
    support::parallelFor(units, options.threads, [&](std::size_t unit) {
      const EvalCell& cell = cells[unit / policyCount];
      const std::string& policy = report.policies[unit % policyCount];
      const Scenario scenario =
          generateScenario(options.generator, static_cast<int>(cell.scenario));
      slots[unit] = runUnit(scenario, sweep[cell.sweepCase].platform, policy,
                            options, cache);
    });
    for (std::size_t s = 0; s < scenarioCount; ++s) {
      // Metadata for the assembly (cheap) — the outcomes are in slots.
      scenarioSlots[s] = generateScenario(options.generator,
                                          static_cast<int>(s));
    }
  } else {
    // Dependency-graph execution (support/graph.h): each scenario's
    // generation is a shared upstream node; each unit is a
    // toolchain-stage node feeding a simulator-stage node. Scenario A's
    // simulation overlaps scenario B's toolchain stage — there is no
    // batch-wide rendezvous until the sinks. With the cache enabled,
    // every cell also gets a prefix node (Toolchain::warmSharedStages)
    // that its per-policy toolchain nodes fan out from, so the shared
    // stage prefix is computed once per cell instead of per policy.
    std::vector<std::optional<core::ToolchainResult>> parked(units);
    support::TaskGraph graph;
    std::vector<support::TaskGraph::NodeId> scenarioNodes(scenarioCount);
    for (std::size_t s = 0; s < scenarioCount; ++s) {
      scenarioNodes[s] =
          graph.addNode("scenario/" + std::to_string(s), [&, s] {
            scenarioSlots[s] =
                generateScenario(options.generator, static_cast<int>(s));
          });
    }
    for (std::size_t cellIndex = 0; cellIndex < cells.size(); ++cellIndex) {
      const EvalCell& cell = cells[cellIndex];
      const std::string cellTag =
          std::to_string(cell.scenario) + "/" + sweep[cell.sweepCase].name;
      support::TaskGraph::NodeId prefixNode{};
      if (cache != nullptr) {
        prefixNode = graph.addNode("prefix/" + cellTag, [&, cellIndex] {
          const EvalCell& c = cells[cellIndex];
          core::ToolchainOptions warm = options.toolchain;
          warm.explorationThreads = 1;
          warm.sched.parallelThreads = 1;
          warm.cache = cache;
          core::Toolchain(sweep[c.sweepCase].platform, warm)
              .warmSharedStages(scenarioSlots[c.scenario].model);
        });
        graph.addEdge(scenarioNodes[cell.scenario], prefixNode);
      }
      for (std::size_t p = 0; p < policyCount; ++p) {
        const std::size_t unit = cellIndex * policyCount + p;
        const std::string& policy = report.policies[p];
        const auto toolchainNode = graph.addNode(
            "toolchain/" + cellTag + "/" + policy, [&, cellIndex, unit, p] {
              const EvalCell& c = cells[cellIndex];
              slots[unit] = runToolchainStage(
                  scenarioSlots[c.scenario], sweep[c.sweepCase].platform,
                  report.policies[p], options, cache, parked[unit]);
            });
        graph.addEdge(scenarioNodes[cell.scenario], toolchainNode);
        if (cache != nullptr) graph.addEdge(prefixNode, toolchainNode);
        const auto simNode = graph.addNode(
            "sim/" + cellTag + "/" + policy, [&, cellIndex, unit] {
              const EvalCell& c = cells[cellIndex];
              runSimStage(scenarioSlots[c.scenario],
                          sweep[c.sweepCase].platform, options, parked[unit],
                          slots[unit]);
            });
        graph.addEdge(toolchainNode, simNode);
      }
    }
    graph.run(options.threads);
  }

  // Ladder-order assembly: strictly in unit order, strict < for the
  // winner, so the report is identical however the units were executed.
  report.scenarios.reserve(cells.size());
  for (std::size_t cellIndex = 0; cellIndex < cells.size(); ++cellIndex) {
    const EvalCell& cell = cells[cellIndex];
    const Scenario& scenario = scenarioSlots[cell.scenario];
    const PlatformCase& platformCase = sweep[cell.sweepCase];
    ScenarioResult row;
    row.scenario = scenario.name;
    row.seed = scenario.seed;
    row.layers = scenario.layers;
    row.nodes = scenario.nodes;
    row.arrayLen = scenario.arrayLen;
    row.platformCase = platformCase.name;
    row.cores = platformCase.platform.coreCount();
    Cycles bestBound = 0;
    for (std::size_t p = 0; p < policyCount; ++p) {
      PolicyOutcome outcome = std::move(slots[cellIndex * policyCount + p]);
      report.allSimSafe = report.allSimSafe && outcome.simSafe;
      if (row.winner.empty() || outcome.bound < bestBound) {
        row.winner = outcome.policy;
        bestBound = outcome.bound;
      }
      row.outcomes.push_back(std::move(outcome));
    }
    report.scenarios.push_back(std::move(row));
  }
  if (cache != nullptr) report.cacheStats = cache->stats();
  return report;
}

std::string EvalReport::toJson(bool includeTimings) const {
  std::string out;
  out.reserve(4096);
  appendf(out, "{\"bench\":\"argo_eval\",\"seed\":%" PRIu64
               ",\"scenario_count\":%zu,\"sweep_mode\":\"%s\","
               "\"platform_cases\":%zu,\"policies\":[",
          seed, scenarioCount, sweepModeName(sweepMode), platformCases);
  for (std::size_t p = 0; p < policies.size(); ++p) {
    appendf(out, "%s\"%s\"", p == 0 ? "" : ",",
            jsonEscape(policies[p]).c_str());
  }
  out += "],\"rows\":[";

  struct Aggregate {
    int wins = 0;
    int rows = 0;
    double tightnessSum = 0.0;
    double speedupSum = 0.0;
    double wallMsSum = 0.0;
  };
  std::map<std::string, Aggregate> aggregates;
  double totalWallMs = 0.0;

  bool firstRow = true;
  for (const ScenarioResult& row : scenarios) {
    for (const PolicyOutcome& o : row.outcomes) {
      appendf(out, "%s{\"scenario\":\"%s\",\"seed\":%" PRIu64
                   ",\"platform\":\"%s\",\"cores\":%d,\"layers\":%d,"
                   "\"nodes\":%d,\"array_len\":%d",
              firstRow ? "" : ",", jsonEscape(row.scenario).c_str(), row.seed,
              jsonEscape(row.platformCase).c_str(), row.cores, row.layers,
              row.nodes, row.arrayLen);
      firstRow = false;
      appendf(out, ",\"policy\":\"%s\",\"schedule\":\"%s\",\"tasks\":%d,"
                   "\"tiles_used\":%d,\"chunks\":%d",
              jsonEscape(o.policy).c_str(),
              jsonEscape(o.scheduleLabel).c_str(), o.tasks, o.tilesUsed,
              o.chosenChunks);
      appendf(out, ",\"sequential_wcet\":%lld,\"bound\":%lld,"
                   "\"observed\":%lld,\"sim_safe\":%s,\"tightness\":%.6f,"
                   "\"bound_speedup\":%.6f,\"winner\":%s",
              static_cast<long long>(o.sequentialWcet),
              static_cast<long long>(o.bound),
              static_cast<long long>(o.observed), o.simSafe ? "true" : "false",
              o.tightness(), o.boundSpeedup(),
              o.policy == row.winner ? "true" : "false");
      if (includeTimings) appendf(out, ",\"wall_ms\":%.3f", o.wallMs);
      out += "}";

      Aggregate& agg = aggregates[o.policy];
      agg.rows += 1;
      agg.wins += o.policy == row.winner ? 1 : 0;
      agg.tightnessSum += o.tightness();
      agg.speedupSum += o.boundSpeedup();
      agg.wallMsSum += o.wallMs;
      totalWallMs += o.wallMs;
    }
  }

  out += "],\"summary\":{\"per_policy\":[";
  // Emit in request order (aggregates is keyed by name; request order is
  // the stable, documented order).
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const Aggregate& agg = aggregates[policies[p]];
    appendf(out, "%s{\"policy\":\"%s\",\"wins\":%d,\"mean_tightness\":%.6f,"
                 "\"mean_bound_speedup\":%.6f",
            p == 0 ? "" : ",", jsonEscape(policies[p]).c_str(), agg.wins,
            agg.rows > 0 ? agg.tightnessSum / agg.rows : 0.0,
            agg.rows > 0 ? agg.speedupSum / agg.rows : 0.0);
    if (includeTimings) appendf(out, ",\"wall_ms\":%.3f", agg.wallMsSum);
    out += "}";
  }
  appendf(out, "],\"all_sim_safe\":%s", allSimSafe ? "true" : "false");
  if (includeTimings && cacheStats.has_value()) {
    // Raw stage-cache counters. The hit/wait split depends on thread
    // timing, which is why this block shares the wall-clock opt-in gate.
    const auto stage = [&](const char* name,
                           const support::StageCacheStats& s) {
      appendf(out, "\"%s\":{\"hits\":%llu,\"misses\":%llu,"
                   "\"inflight_waits\":%llu}",
              name, static_cast<unsigned long long>(s.hits),
              static_cast<unsigned long long>(s.misses),
              static_cast<unsigned long long>(s.inflightWaits));
    };
    out += ",\"cache_stats\":{";
    stage("transforms", cacheStats->transforms);
    out += ",";
    stage("sequential_wcet", cacheStats->sequentialWcet);
    out += ",";
    stage("expansion", cacheStats->expansion);
    out += ",";
    stage("timings", cacheStats->timings);
    out += ",";
    stage("schedules", cacheStats->schedules);
    if (cacheStats->disk.has_value()) {
      // Disk-tier counters, present only when --cache-dir was given. The
      // reject count is also printed on stderr unconditionally (it is
      // determinism-relevant); this block is the full picture.
      const support::DiskCacheStats& d = *cacheStats->disk;
      appendf(out, ",\"disk\":{\"hits\":%llu,\"misses\":%llu,"
                   "\"rejects\":%llu,\"stores\":%llu,"
                   "\"store_failures\":%llu}",
              static_cast<unsigned long long>(d.hits),
              static_cast<unsigned long long>(d.misses),
              static_cast<unsigned long long>(d.rejects),
              static_cast<unsigned long long>(d.stores),
              static_cast<unsigned long long>(d.storeFailures));
    }
    out += "}";
  }
  if (includeTimings) {
    // The unified metrics namespace (docs/OBSERVABILITY.md): the process
    // registry snapshot plus the cache/disk counters above re-spelled
    // under the kDiskStage* names. Same opt-in gate as every other
    // wall-clock-style field; cache_stats stays for schema continuity.
    core::appendMetricsJson(out, cacheStats);
    appendf(out, ",\"total_wall_ms\":%.3f", totalWallMs);
  }
  out += "}}";
  return out;
}

}  // namespace argo::scenarios
