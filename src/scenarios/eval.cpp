#include "scenarios/eval.h"

#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <optional>
#include <utility>

#include "sched/policy.h"
#include "sim/simulator.h"
#include "support/diagnostics.h"
#include "support/graph.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace argo::scenarios {

namespace {

using support::ToolchainError;

/// Fills every Input-role variable of `env` with uniform values in
/// [-1, 1), drawn from a stream seeded by (scenario seed, trial). Input
/// order follows the declaration order, so the stream is reproducible.
void setRandomInputs(const ir::Function& fn, ir::Environment& env,
                     std::uint64_t seed) {
  support::Rng rng(seed);
  for (const ir::VarDecl& decl : fn.decls()) {
    if (decl.role != ir::VarRole::Input) continue;
    ir::Value& value = env[decl.name];
    for (std::int64_t i = 0; i < value.size(); ++i) {
      value.setFloat(i, rng.uniformDouble() * 2.0 - 1.0);
    }
  }
}

/// Tool-chain stage of one (scenario, policy) unit. The finished
/// ToolchainResult is parked in `keep` for the simulator stage (a separate
/// node on the graph executor), which consumes and releases it.
PolicyOutcome runToolchainStage(const Scenario& scenario,
                                const adl::Platform& platform,
                                const std::string& policy,
                                const EvalOptions& options,
                                std::optional<core::ToolchainResult>& keep) {
  const auto begin = std::chrono::steady_clock::now();

  core::ToolchainOptions toolchainOptions = options.toolchain;
  toolchainOptions.sched.policy = policy;
  toolchainOptions.sched.interferenceAware = policy != "contention_oblivious";
  // The batch owns the pool; everything inside a unit stays inline.
  toolchainOptions.explorationThreads = 1;
  toolchainOptions.sched.parallelThreads = 1;

  const core::Toolchain toolchain(platform, toolchainOptions);
  keep = toolchain.run(scenario.model);
  const core::ToolchainResult& result = *keep;

  PolicyOutcome outcome;
  outcome.policy = policy;
  outcome.scheduleLabel = result.schedule.policy;
  outcome.tasks = static_cast<int>(result.graph->tasks.size());
  outcome.tilesUsed = result.schedule.tilesUsed;
  outcome.chosenChunks = result.chosenChunks;
  outcome.sequentialWcet = result.sequentialWcet;
  outcome.bound = result.system.makespan;

  const auto end = std::chrono::steady_clock::now();
  outcome.wallMs =
      std::chrono::duration<double, std::milli>(end - begin).count();
  return outcome;
}

/// Simulator stage of one unit: probes the bound of the parked toolchain
/// result with seeded random inputs, then releases the result. Both
/// executors run the identical stage code, so the outcomes (and hence the
/// rendered report) match byte for byte.
void runSimStage(const Scenario& scenario, const adl::Platform& platform,
                 const EvalOptions& options,
                 std::optional<core::ToolchainResult>& keep,
                 PolicyOutcome& outcome) {
  const auto begin = std::chrono::steady_clock::now();
  const core::ToolchainResult& result = *keep;

  if (options.simTrials > 0) {
    const sim::Simulator simulator(result.program, platform);
    ir::Environment base = ir::makeZeroEnvironment(*result.fn);
    for (const auto& [name, value] : result.constants) base[name] = value;
    for (int trial = 0; trial < options.simTrials; ++trial) {
      ir::Environment env = base;
      setRandomInputs(*result.fn, env,
                      scenario.seed + static_cast<std::uint64_t>(trial));
      const Cycles makespan = simulator.step(env).makespan;
      if (makespan > outcome.observed) outcome.observed = makespan;
      outcome.simSafe = outcome.simSafe && makespan <= outcome.bound;
    }
  }

  keep.reset();  // the unit's heavyweight state dies with its last stage
  const auto end = std::chrono::steady_clock::now();
  outcome.wallMs +=
      std::chrono::duration<double, std::milli>(end - begin).count();
}

/// One fused (scenario, policy) unit of the barrier executor: both stages
/// back to back on the same worker.
PolicyOutcome runUnit(const Scenario& scenario, const adl::Platform& platform,
                      const std::string& policy, const EvalOptions& options) {
  std::optional<core::ToolchainResult> keep;
  PolicyOutcome outcome =
      runToolchainStage(scenario, platform, policy, options, keep);
  runSimStage(scenario, platform, options, keep, outcome);
  return outcome;
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list measure;
  va_copy(measure, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, measure);
  va_end(measure);
  if (needed > 0) {
    const std::size_t at = out.size();
    out.resize(at + static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data() + at, static_cast<std::size_t>(needed) + 1, fmt,
                   args);
    out.resize(at + static_cast<std::size_t>(needed));
  }
  va_end(args);
}

/// Minimal JSON string escaping (names are generated, but a custom policy
/// name could contain anything).
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

core::ToolchainOptions defaultEvalToolchainOptions() {
  core::ToolchainOptions options;
  options.chunkCandidates = {1, 2, 4};
  options.sched.saIterations = 1200;
  // The exact search dominates batch wall time with the stock 2M-node
  // budget; 100k nodes still finds the optimum on most generated graphs
  // and exhaustion is deterministic (labelled "(budget)").
  options.sched.bnbNodeBudget = 100'000;
  options.explorationThreads = 1;
  return options;
}

EvalReport runEval(const EvalOptions& options) {
  if (options.scenarioCount <= 0) {
    throw ToolchainError("runEval: scenarioCount must be positive");
  }
  if (options.simTrials < 0) {
    throw ToolchainError("runEval: simTrials must be >= 0");
  }

  EvalReport report;
  report.seed = options.generator.seed;
  report.policies = options.policies.empty() ? sched::registeredPolicyNames()
                                             : options.policies;
  // Fail on unknown names before spending any tool-chain time.
  for (const std::string& policy : report.policies) {
    (void)sched::policyOrThrow(policy);
  }

  const std::size_t scenarioCount =
      static_cast<std::size_t>(options.scenarioCount);
  const std::size_t policyCount = report.policies.size();
  const std::size_t units = scenarioCount * policyCount;

  // Every stage writes its own slot; the assembly below reads them
  // strictly in unit order. Which executor filled them is invisible to the
  // report — that is the executor-differential guarantee.
  std::vector<PolicyOutcome> slots(units);
  std::vector<Scenario> scenarioSlots(scenarioCount);
  std::vector<PlatformCase> sweep;

  if (options.executor == EvalExecutor::Barrier) {
    // Flat pooled phase over fused units. Units regenerate their scenario
    // locally — generation is cheap and keeps the units free of shared
    // mutable state; the sweep and options are read-only.
    sweep = buildPlatformSweep(options.sweep);
    support::parallelFor(units, options.threads, [&](std::size_t unit) {
      const int scenarioIndex = static_cast<int>(unit / policyCount);
      const std::string& policy = report.policies[unit % policyCount];
      const Scenario scenario =
          generateScenario(options.generator, scenarioIndex);
      const PlatformCase& platformCase =
          sweep[static_cast<std::size_t>(scenarioIndex) % sweep.size()];
      slots[unit] = runUnit(scenario, platformCase.platform, policy, options);
    });
    for (std::size_t s = 0; s < scenarioCount; ++s) {
      // Metadata for the assembly (cheap) — the outcomes are in slots.
      scenarioSlots[s] = generateScenario(options.generator,
                                          static_cast<int>(s));
    }
  } else {
    // Dependency-graph execution (support/graph.h): the platform-sweep
    // build and each scenario's generation are shared upstream nodes, and
    // each unit is a toolchain-stage node feeding a simulator-stage node.
    // Scenario A's simulation overlaps scenario B's toolchain stage —
    // there is no batch-wide rendezvous until the sinks.
    std::vector<std::optional<core::ToolchainResult>> parked(units);
    support::TaskGraph graph;
    const auto sweepNode = graph.addNode(
        "platform_sweep", [&] { sweep = buildPlatformSweep(options.sweep); });
    std::vector<support::TaskGraph::NodeId> scenarioNodes(scenarioCount);
    for (std::size_t s = 0; s < scenarioCount; ++s) {
      scenarioNodes[s] =
          graph.addNode("scenario/" + std::to_string(s), [&, s] {
            scenarioSlots[s] =
                generateScenario(options.generator, static_cast<int>(s));
          });
    }
    for (std::size_t s = 0; s < scenarioCount; ++s) {
      for (std::size_t p = 0; p < policyCount; ++p) {
        const std::size_t unit = s * policyCount + p;
        const std::string& policy = report.policies[p];
        const auto toolchainNode = graph.addNode(
            "toolchain/" + std::to_string(s) + "/" + policy, [&, s, unit] {
              const PlatformCase& platformCase = sweep[s % sweep.size()];
              slots[unit] = runToolchainStage(
                  scenarioSlots[s], platformCase.platform,
                  report.policies[unit % policyCount], options, parked[unit]);
            });
        graph.addEdge(sweepNode, toolchainNode);
        graph.addEdge(scenarioNodes[s], toolchainNode);
        const auto simNode = graph.addNode(
            "sim/" + std::to_string(s) + "/" + policy, [&, s, unit] {
              const PlatformCase& platformCase = sweep[s % sweep.size()];
              runSimStage(scenarioSlots[s], platformCase.platform, options,
                          parked[unit], slots[unit]);
            });
        graph.addEdge(toolchainNode, simNode);
      }
    }
    graph.run(options.threads);
  }

  // Ladder-order assembly: strictly in unit order, strict < for the
  // winner, so the report is identical however the units were executed.
  report.scenarios.reserve(scenarioCount);
  for (int s = 0; s < options.scenarioCount; ++s) {
    const Scenario& scenario = scenarioSlots[static_cast<std::size_t>(s)];
    const PlatformCase& platformCase =
        sweep[static_cast<std::size_t>(s) % sweep.size()];
    ScenarioResult row;
    row.scenario = scenario.name;
    row.seed = scenario.seed;
    row.layers = scenario.layers;
    row.nodes = scenario.nodes;
    row.arrayLen = scenario.arrayLen;
    row.platformCase = platformCase.name;
    row.cores = platformCase.platform.coreCount();
    Cycles bestBound = 0;
    for (std::size_t p = 0; p < policyCount; ++p) {
      PolicyOutcome outcome =
          std::move(slots[static_cast<std::size_t>(s) * policyCount + p]);
      report.allSimSafe = report.allSimSafe && outcome.simSafe;
      if (row.winner.empty() || outcome.bound < bestBound) {
        row.winner = outcome.policy;
        bestBound = outcome.bound;
      }
      row.outcomes.push_back(std::move(outcome));
    }
    report.scenarios.push_back(std::move(row));
  }
  return report;
}

std::string EvalReport::toJson(bool includeTimings) const {
  std::string out;
  out.reserve(4096);
  appendf(out, "{\"bench\":\"argo_eval\",\"seed\":%" PRIu64
               ",\"scenario_count\":%zu,\"policies\":[",
          seed, scenarios.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    appendf(out, "%s\"%s\"", p == 0 ? "" : ",",
            jsonEscape(policies[p]).c_str());
  }
  out += "],\"rows\":[";

  struct Aggregate {
    int wins = 0;
    int rows = 0;
    double tightnessSum = 0.0;
    double speedupSum = 0.0;
    double wallMsSum = 0.0;
  };
  std::map<std::string, Aggregate> aggregates;
  double totalWallMs = 0.0;

  bool firstRow = true;
  for (const ScenarioResult& row : scenarios) {
    for (const PolicyOutcome& o : row.outcomes) {
      appendf(out, "%s{\"scenario\":\"%s\",\"seed\":%" PRIu64
                   ",\"platform\":\"%s\",\"cores\":%d,\"layers\":%d,"
                   "\"nodes\":%d,\"array_len\":%d",
              firstRow ? "" : ",", jsonEscape(row.scenario).c_str(), row.seed,
              jsonEscape(row.platformCase).c_str(), row.cores, row.layers,
              row.nodes, row.arrayLen);
      firstRow = false;
      appendf(out, ",\"policy\":\"%s\",\"schedule\":\"%s\",\"tasks\":%d,"
                   "\"tiles_used\":%d,\"chunks\":%d",
              jsonEscape(o.policy).c_str(),
              jsonEscape(o.scheduleLabel).c_str(), o.tasks, o.tilesUsed,
              o.chosenChunks);
      appendf(out, ",\"sequential_wcet\":%lld,\"bound\":%lld,"
                   "\"observed\":%lld,\"sim_safe\":%s,\"tightness\":%.6f,"
                   "\"bound_speedup\":%.6f,\"winner\":%s",
              static_cast<long long>(o.sequentialWcet),
              static_cast<long long>(o.bound),
              static_cast<long long>(o.observed), o.simSafe ? "true" : "false",
              o.tightness(), o.boundSpeedup(),
              o.policy == row.winner ? "true" : "false");
      if (includeTimings) appendf(out, ",\"wall_ms\":%.3f", o.wallMs);
      out += "}";

      Aggregate& agg = aggregates[o.policy];
      agg.rows += 1;
      agg.wins += o.policy == row.winner ? 1 : 0;
      agg.tightnessSum += o.tightness();
      agg.speedupSum += o.boundSpeedup();
      agg.wallMsSum += o.wallMs;
      totalWallMs += o.wallMs;
    }
  }

  out += "],\"summary\":{\"per_policy\":[";
  // Emit in request order (aggregates is keyed by name; request order is
  // the stable, documented order).
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const Aggregate& agg = aggregates[policies[p]];
    appendf(out, "%s{\"policy\":\"%s\",\"wins\":%d,\"mean_tightness\":%.6f,"
                 "\"mean_bound_speedup\":%.6f",
            p == 0 ? "" : ",", jsonEscape(policies[p]).c_str(), agg.wins,
            agg.rows > 0 ? agg.tightnessSum / agg.rows : 0.0,
            agg.rows > 0 ? agg.speedupSum / agg.rows : 0.0);
    if (includeTimings) appendf(out, ",\"wall_ms\":%.3f", agg.wallMsSum);
    out += "}";
  }
  appendf(out, "],\"all_sim_safe\":%s", allSimSafe ? "true" : "false");
  if (includeTimings) appendf(out, ",\"total_wall_ms\":%.3f", totalWallMs);
  out += "}}";
  return out;
}

}  // namespace argo::scenarios
