// Batch policy evaluation over a generated scenario matrix.
//
// runEval() crosses the workload generator (scenarios/generator.h) with a
// platform sweep (scenarios/sweep.h) and runs *every requested scheduling
// policy* on every scenario through the full tool-chain — cross-layer
// feedback exploration, system-level WCET bound, and a simulator check
// that the observed makespan stays within the bound. This is the standing
// source of the repo's perf trajectory: tools/argo_eval drives it from the
// CLI and CI uploads its JSON report per PR.
//
// Parallelism and determinism: by default the batch runs on the
// support::TaskGraph dependency-graph executor (support/graph.h). The
// platform-sweep build and each scenario's generation are shared upstream
// nodes; every (scenario, policy) unit then runs as a toolchain-stage node
// followed by a simulator-stage node, with edges only on those true data
// dependences — so independent chains overlap instead of rendezvousing at
// a batch-wide barrier. Every stage writes into its own slot and the
// report is assembled strictly in unit order afterwards, so the report is
// bit-identical for any thread count (the ladder-order rule of
// docs/ARCHITECTURE.md) *and* byte-identical to the retained
// EvalExecutor::Barrier path (one flat parallelFor over fused units),
// which serves as the built-in differential oracle (tests/eval_test.cpp,
// bench_parallel_eval). toJson() uses fixed formatting; byte-identical
// values make byte-identical documents, which CI checks by diffing a
// --threads 1 run against a --threads 8 run and a --executor barrier run
// against the graph default.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/toolchain.h"
#include "scenarios/generator.h"
#include "scenarios/sweep.h"

namespace argo::scenarios {

using adl::Cycles;

/// Tool-chain configuration trimmed for batch runs: a short granularity
/// ladder ({1, 2, 4}), fewer annealing iterations (1200) and a 100k
/// branch-and-bound node budget keep a 50-scenario matrix in CI-friendly
/// time; everything else is the Toolchain default. The returned value is
/// the EvalOptions::toolchain default — override fields freely.
[[nodiscard]] core::ToolchainOptions defaultEvalToolchainOptions();

/// Which execution engine drives the batch. Both produce byte-identical
/// reports for any thread count; they differ only in how the independent
/// work overlaps (and hence in wall time).
enum class EvalExecutor {
  /// One flat support::parallelFor over fused (scenario x policy) units:
  /// each unit regenerates its scenario and runs toolchain + simulator
  /// back to back, and the whole batch rendezvouses once at the end. The
  /// pre-TaskGraph implementation, retained as the differential oracle
  /// for the graph path.
  Barrier,
  /// support::TaskGraph (the default): shared platform-sweep and
  /// per-scenario generation nodes feed per-unit toolchain-stage and
  /// simulator-stage nodes, so scenario A's simulation can run while
  /// scenario B is still in its toolchain stage.
  Graph,
};

/// Configuration of one batch run.
struct EvalOptions {
  /// Workload axis (the generator's seed is the batch seed).
  GeneratorOptions generator;
  /// Platform axis. Scenario i runs on sweep case i % caseCount, so every
  /// case is exercised without crossing the whole matrix.
  SweepOptions sweep;
  /// Number of generated scenarios (count, default 20).
  int scenarioCount = 20;
  /// Registry names of the policies to compare (default: empty = every
  /// registered policy, in sorted registry order).
  std::vector<std::string> policies;
  /// Worker threads for the batch itself, support::parallelFor convention
  /// (0 = hardware threads, 1 = sequential; default 1). The report is
  /// bit-identical for any value.
  int threads = 1;
  /// Execution engine (default Graph; Barrier is the differential
  /// oracle). The report is byte-identical either way.
  EvalExecutor executor = EvalExecutor::Graph;
  /// Simulator probes per (scenario, policy) run, each from an
  /// independently seeded random input (count, default 3; 0 skips the
  /// simulator check entirely — observed/tightness read as 0).
  int simTrials = 3;
  /// Base tool-chain configuration for every unit. The batch overrides,
  /// per unit: the policy under test, interferenceAware (off for
  /// "contention_oblivious", mirroring argo_cc), and both thread knobs to
  /// 1 (the batch owns the pool; pools do not nest).
  core::ToolchainOptions toolchain = defaultEvalToolchainOptions();
};

/// Result of one (scenario, policy) unit.
struct PolicyOutcome {
  std::string policy;         ///< Requested registry name.
  std::string scheduleLabel;  ///< Schedule::policy — reveals fallbacks.
  int tasks = 0;              ///< Task count of the chosen candidate.
  int tilesUsed = 0;
  int chosenChunks = 0;       ///< Granularity the feedback loop picked.
  Cycles sequentialWcet = 0;  ///< Single-core reference bound.
  Cycles bound = 0;           ///< System-level WCET (the guarantee).
  Cycles observed = 0;        ///< Worst simulated makespan (0 if skipped).
  bool simSafe = true;        ///< observed <= bound for every trial.
  double wallMs = 0.0;        ///< Unit wall time (excluded from the JSON
                              ///< unless includeTimings — it is the one
                              ///< thread-count-dependent field).

  /// observed / bound in [0, 1]: how tight the guarantee is (0 when the
  /// simulator check was skipped).
  [[nodiscard]] double tightness() const {
    return bound == 0 ? 0.0
                      : static_cast<double>(observed) /
                            static_cast<double>(bound);
  }
  /// sequentialWcet / bound: the guaranteed speedup of the parallel bound
  /// over the single-core bound.
  [[nodiscard]] double boundSpeedup() const {
    return bound == 0 ? 0.0
                      : static_cast<double>(sequentialWcet) /
                            static_cast<double>(bound);
  }
};

/// All policies' outcomes on one scenario.
struct ScenarioResult {
  std::string scenario;
  std::uint64_t seed = 0;
  int layers = 0;
  int nodes = 0;
  int arrayLen = 0;
  std::string platformCase;  ///< Sweep case name the scenario ran on.
  int cores = 0;             ///< Tile count of that case.
  /// One outcome per requested policy, in request order.
  std::vector<PolicyOutcome> outcomes;
  /// Policy with the smallest bound (strict <, first in request order
  /// wins ties) — the per-scenario "policy winner" of the report.
  std::string winner;
};

/// The whole batch.
struct EvalReport {
  std::uint64_t seed = 0;
  std::vector<std::string> policies;  ///< Resolved request order.
  std::vector<ScenarioResult> scenarios;
  bool allSimSafe = true;

  /// Renders the machine-readable report: one JSON document in the
  /// bench/common.h --json house style ({"bench":..., "rows":[...],
  /// "summary":...}), one row per (scenario, policy) unit plus per-policy
  /// aggregates. Deterministic: fixed field order and fixed float
  /// formatting; byte-identical across thread counts. Wall-clock fields
  /// appear only when `includeTimings` (they vary run to run).
  [[nodiscard]] std::string toJson(bool includeTimings = false) const;
};

/// Runs the batch. Throws support::ToolchainError on an unknown policy
/// name (listing the registered ones) or invalid generator/sweep options.
[[nodiscard]] EvalReport runEval(const EvalOptions& options);

}  // namespace argo::scenarios
