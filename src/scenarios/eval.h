// Batch policy evaluation over a generated scenario matrix.
//
// runEval() crosses the workload generator (scenarios/generator.h) with a
// platform sweep (scenarios/sweep.h) and runs *every requested scheduling
// policy* on every scenario through the full tool-chain — cross-layer
// feedback exploration, system-level WCET bound, and a simulator check
// that the observed makespan stays within the bound. This is the standing
// source of the repo's perf trajectory: tools/argo_eval drives it from the
// CLI and CI uploads its JSON report per PR.
//
// Parallelism and determinism: by default the batch runs on the
// support::TaskGraph dependency-graph executor (support/graph.h). Each
// scenario's generation is a shared upstream node; every (cell, policy)
// unit then runs as a toolchain-stage node followed by a simulator-stage
// node, with edges only on those true data dependences — so independent
// chains overlap instead of rendezvousing at a batch-wide barrier. With
// the stage cache enabled (the default), each (scenario, platform) cell
// additionally gets a prefix node that warms the policy-independent
// stages once, fanning out to the per-policy toolchain nodes. Every stage
// writes into its own slot and the report is assembled strictly in unit
// order afterwards, so the report is bit-identical for any thread count
// (the ladder-order rule of docs/ARCHITECTURE.md) *and* byte-identical to
// the retained EvalExecutor::Barrier path (one flat parallelFor over
// fused units) and to a `--cache off` run — the two built-in differential
// oracles (tests/eval_test.cpp, bench_parallel_eval). toJson() uses fixed
// formatting; byte-identical values make byte-identical documents, which
// CI checks by diffing --threads 1 vs --threads 8 runs, --executor
// barrier vs the graph default, and --cache off vs the cached default.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cache.h"
#include "core/toolchain.h"
#include "scenarios/generator.h"
#include "scenarios/sweep.h"

namespace argo::scenarios {

using adl::Cycles;

/// Tool-chain configuration trimmed for batch runs: a short granularity
/// ladder ({1, 2, 4}), fewer annealing iterations (1200) and a 100k
/// branch-and-bound node budget keep a 50-scenario matrix in CI-friendly
/// time; everything else is the Toolchain default. The returned value is
/// the EvalOptions::toolchain default — override fields freely.
[[nodiscard]] core::ToolchainOptions defaultEvalToolchainOptions();

/// Which execution engine drives the batch. Both produce byte-identical
/// reports for any thread count; they differ only in how the independent
/// work overlaps (and hence in wall time).
enum class EvalExecutor {
  /// One flat support::parallelFor over fused (scenario x policy) units:
  /// each unit regenerates its scenario and runs toolchain + simulator
  /// back to back, and the whole batch rendezvouses once at the end. The
  /// pre-TaskGraph implementation, retained as the differential oracle
  /// for the graph path.
  Barrier,
  /// support::TaskGraph (the default): shared platform-sweep and
  /// per-scenario generation nodes feed per-unit toolchain-stage and
  /// simulator-stage nodes, so scenario A's simulation can run while
  /// scenario B is still in its toolchain stage.
  Graph,
};

/// How scenarios are paired with platform sweep cases.
enum class SweepMode {
  /// Scenario i runs on sweep case i % caseCount (the default): every
  /// case is exercised without crossing the whole matrix.
  Modulo,
  /// Every scenario runs on every sweep case — the paper-style full
  /// design-space cross product. Rows are ordered scenario-major, sweep
  /// case next, policy innermost; cells sharing a scenario reuse the
  /// stage prefix through the cache.
  Cross,
};

/// Canonical lower-case name ("modulo" / "cross") — the JSON field value
/// and the `--sweep-mode` CLI spelling.
[[nodiscard]] const char* sweepModeName(SweepMode mode) noexcept;

/// The sweep-case index scenario `scenarioIndex` is paired with in
/// SweepMode::Modulo — the one definition of the documented
/// `i % caseCount` rule. Both executors and the report assembly go
/// through the cell list derived from this helper.
[[nodiscard]] inline std::size_t moduloSweepCase(std::size_t scenarioIndex,
                                                 std::size_t sweepCases) {
  return scenarioIndex % sweepCases;
}

/// Configuration of one batch run.
struct EvalOptions {
  /// Workload axis (the generator's seed is the batch seed).
  GeneratorOptions generator;
  /// Platform axis; pairing with scenarios is selected by `sweepMode`.
  SweepOptions sweep;
  /// Scenario/platform pairing (default Modulo; Cross runs the full
  /// scenario x platform matrix).
  SweepMode sweepMode = SweepMode::Modulo;
  /// Number of generated scenarios (count, default 20).
  int scenarioCount = 20;
  /// Registry names of the policies to compare (default: empty = every
  /// registered policy, in sorted registry order).
  std::vector<std::string> policies;
  /// Worker threads for the batch itself, support::parallelFor convention
  /// (0 = hardware threads, 1 = sequential; default 1). The report is
  /// bit-identical for any value.
  int threads = 1;
  /// Execution engine (default Graph; Barrier is the differential
  /// oracle). The report is byte-identical either way.
  EvalExecutor executor = EvalExecutor::Graph;
  /// Simulator probes per (scenario, policy) run, each from an
  /// independently seeded random input (count, default 3; 0 skips the
  /// simulator check entirely — observed/tightness read as 0).
  int simTrials = 3;
  /// Base tool-chain configuration for every unit. The batch overrides,
  /// per unit: the policy under test, interferenceAware (off for
  /// "contention_oblivious", mirroring argo_cc), and both thread knobs to
  /// 1 (the batch owns the pool; pools do not nest).
  core::ToolchainOptions toolchain = defaultEvalToolchainOptions();
  /// Memoize toolchain stages in one core::ToolchainCache shared by every
  /// unit of the batch (default true). `false` runs every unit from
  /// scratch — the built-in differential oracle: the report is
  /// byte-identical either way (`argo_eval --cache off`, CI `cmp`).
  bool cacheEnabled = true;
  /// Optional externally owned cache reused across runEval calls — an
  /// incremental re-sweep (same scenarios, a platform point or policy
  /// added) then recomputes only what changed; this is the argod
  /// content-addressed service pattern. null = a fresh per-batch cache.
  /// Ignored when cacheEnabled is false.
  std::shared_ptr<core::ToolchainCache> cache;
  /// On-disk cache directory (`argo_eval --cache-dir` / ARGO_CACHE_DIR):
  /// when non-empty, the batch cache gets a support::DiskCache tier, so
  /// a rerun in a fresh process starts warm. Byte-identity is unchanged
  /// (the disk-tier differential oracle in tests/eval_test.cpp + CI).
  /// Ignored when cacheEnabled is false, or when the caller passed a
  /// `cache` that already has a disk tier attached.
  std::string cacheDir;
};

/// Result of one (scenario, policy) unit.
struct PolicyOutcome {
  std::string policy;         ///< Requested registry name.
  std::string scheduleLabel;  ///< Schedule::policy — reveals fallbacks.
  int tasks = 0;              ///< Task count of the chosen candidate.
  int tilesUsed = 0;
  int chosenChunks = 0;       ///< Granularity the feedback loop picked.
  Cycles sequentialWcet = 0;  ///< Single-core reference bound.
  Cycles bound = 0;           ///< System-level WCET (the guarantee).
  Cycles observed = 0;        ///< Worst simulated makespan (0 if skipped).
  bool simSafe = true;        ///< observed <= bound for every trial.
  double wallMs = 0.0;        ///< Unit wall time (excluded from the JSON
                              ///< unless includeTimings — it is the one
                              ///< thread-count-dependent field).

  /// observed / bound in [0, 1]: how tight the guarantee is (0 when the
  /// simulator check was skipped).
  [[nodiscard]] double tightness() const {
    return bound == 0 ? 0.0
                      : static_cast<double>(observed) /
                            static_cast<double>(bound);
  }
  /// sequentialWcet / bound: the guaranteed speedup of the parallel bound
  /// over the single-core bound.
  [[nodiscard]] double boundSpeedup() const {
    return bound == 0 ? 0.0
                      : static_cast<double>(sequentialWcet) /
                            static_cast<double>(bound);
  }
};

/// All policies' outcomes on one (scenario, platform case) cell — one
/// report row group. Modulo mode has one cell per scenario; Cross mode
/// has scenarios x sweep cases of them.
struct ScenarioResult {
  std::string scenario;
  std::uint64_t seed = 0;
  int layers = 0;
  int nodes = 0;
  int arrayLen = 0;
  std::string platformCase;  ///< Sweep case name the scenario ran on.
  int cores = 0;             ///< Tile count of that case.
  /// One outcome per requested policy, in request order.
  std::vector<PolicyOutcome> outcomes;
  /// Policy with the smallest bound (strict <, first in request order
  /// wins ties) — the per-scenario "policy winner" of the report.
  std::string winner;
};

/// The whole batch.
struct EvalReport {
  std::uint64_t seed = 0;
  SweepMode sweepMode = SweepMode::Modulo;
  std::size_t scenarioCount = 0;   ///< Distinct generated scenarios (S).
  std::size_t platformCases = 0;   ///< Sweep cases (C).
  std::vector<std::string> policies;  ///< Resolved request order.
  std::vector<ScenarioResult> scenarios;  ///< One entry per cell.
  bool allSimSafe = true;
  /// Cumulative stage-cache counters, set when caching was enabled (for
  /// an externally shared cache they cover its whole lifetime, not just
  /// this batch). Rendered only under includeTimings: the hit/wait split
  /// is thread-timing-dependent, so it must stay out of the canonical
  /// report.
  std::optional<core::ToolchainCacheStats> cacheStats;

  /// Renders the machine-readable report: one JSON document in the
  /// bench/common.h --json house style ({"bench":..., "rows":[...],
  /// "summary":...}), one row per (cell, policy) unit plus per-policy
  /// aggregates. Deterministic: fixed field order and fixed float
  /// formatting; byte-identical across thread counts, executors, and
  /// cache settings. Wall-clock and cache-counter fields appear only
  /// when `includeTimings` (they vary run to run).
  [[nodiscard]] std::string toJson(bool includeTimings = false) const;
};

/// Runs the batch. Throws support::ToolchainError on an unknown policy
/// name (listing the registered ones) or invalid generator/sweep options.
[[nodiscard]] EvalReport runEval(const EvalOptions& options);

}  // namespace argo::scenarios
