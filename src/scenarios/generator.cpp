#include "scenarios/generator.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "ir/builder.h"
#include "support/diagnostics.h"
#include "support/rng.h"

namespace argo::scenarios {

namespace {

using support::ToolchainError;

/// One upstream value a node may read: a declared array or scalar.
struct Upstream {
  std::string name;
  bool scalar = false;
};

void checkRange(bool ok, const char* what) {
  if (!ok) {
    throw ToolchainError(std::string("scenario generator: invalid ") + what);
  }
}

void checkOptions(const GeneratorOptions& o) {
  checkRange(o.minLayers >= 1 && o.maxLayers >= o.minLayers, "layer range");
  checkRange(o.minWidth >= 1 && o.maxWidth >= o.minWidth, "width range");
  checkRange(o.maxFanIn >= 1, "maxFanIn");
  checkRange(o.minArrayLen >= 1 && o.maxArrayLen >= o.minArrayLen,
             "array length range");
  checkRange(o.ccr > 0.0, "ccr (must be > 0)");
  checkRange(o.wcetSpread >= 1.0, "wcetSpread (must be >= 1)");
  checkRange(o.accumulatorFraction >= 0.0 && o.accumulatorFraction <= 1.0,
             "accumulatorFraction (must be in [0, 1])");
  checkRange(o.baseOpsPerElement >= 1, "baseOpsPerElement");
  checkRange(o.stencilRadius >= 0, "stencilRadius (must be >= 0)");
}

/// The element expression of an upstream inside a loop over `loopVar`.
ir::ExprPtr element(const Upstream& up, const std::string& loopVar) {
  if (up.scalar) return ir::var(up.name);
  return ir::ref(up.name, ir::exprVec(ir::var(loopVar)));
}

/// Multiplier coefficients stay in [0.6, 1.4) so chained products neither
/// explode nor vanish over deep graphs (the simulator evaluates for real).
double coeff(support::Rng& rng) { return 0.6 + 0.8 * rng.uniformDouble(); }

/// Builds the arithmetic chain of one node: starts from the first input's
/// element, folds every further input in with add(mul(...)), then pads
/// with alternating mul/add until at least `targetOps` priced operations
/// are reached. Fan-in structure wins over the target when they conflict.
ir::ExprPtr buildChain(const std::vector<Upstream>& inputs,
                       const std::string& loopVar, int targetOps,
                       support::Rng& rng) {
  ir::ExprPtr expr = element(inputs.front(), loopVar);
  int ops = 0;
  for (std::size_t k = 1; k < inputs.size(); ++k) {
    expr = ir::add(std::move(expr),
                   ir::mul(element(inputs[k], loopVar), ir::flt(coeff(rng))));
    ops += 2;
  }
  while (ops < targetOps) {
    if (ops % 2 == 0) {
      expr = ir::mul(std::move(expr), ir::flt(coeff(rng)));
    } else {
      expr = ir::add(std::move(expr),
                     ir::flt(rng.uniformDouble() - 0.5));
    }
    ++ops;
  }
  return expr;
}

/// The clamped window element prev[max(min(i + offset, len - 1), 0)].
/// Emitted with the IR's Min/Max operators, so the border handling is
/// analyzable (and exercises integer min/max end to end).
ir::ExprPtr windowElement(const std::string& prev, const std::string& loopVar,
                          int offset, int arrayLen) {
  if (offset == 0) return ir::ref(prev, ir::exprVec(ir::var(loopVar)));
  ir::ExprPtr idx;
  if (offset > 0) {
    idx = ir::bin(ir::BinOpKind::Min,
                  ir::add(ir::var(loopVar), ir::lit(offset)),
                  ir::lit(arrayLen - 1));
  } else {
    idx = ir::bin(ir::BinOpKind::Max,
                  ir::sub(ir::var(loopVar), ir::lit(-offset)), ir::lit(0));
  }
  return ir::ref(prev, ir::exprVec(std::move(idx)));
}

/// One stencil stage's element expression: the weighted radius-r window of
/// `prev`, padded with alternating mul/add until `targetOps` operations,
/// exactly like buildChain pads fan-in chains.
ir::ExprPtr buildWindow(const std::string& prev, const std::string& loopVar,
                        int radius, int arrayLen, int targetOps,
                        support::Rng& rng) {
  ir::ExprPtr expr = windowElement(prev, loopVar, 0, arrayLen);
  int ops = 0;
  for (int d = 1; d <= radius; ++d) {
    for (int sign : {-1, 1}) {
      expr = ir::add(std::move(expr),
                     ir::mul(windowElement(prev, loopVar, sign * d, arrayLen),
                             ir::flt(coeff(rng))));
      ops += 2;
    }
  }
  while (ops < targetOps) {
    if (ops % 2 == 0) {
      expr = ir::mul(std::move(expr), ir::flt(coeff(rng)));
    } else {
      expr = ir::add(std::move(expr), ir::flt(rng.uniformDouble() - 0.5));
    }
    ++ops;
  }
  return expr;
}

/// Shape::StencilChain body of generateScenario: `chains` independent
/// stencil pipelines, optionally reduction-terminated, folded into y.
void generateStencilChain(const GeneratorOptions& options, Scenario& scenario,
                          ir::Function& fn, support::Rng& rng) {
  const int layers = scenario.layers;
  const int arrayLen = scenario.arrayLen;
  const ir::Type arrayType =
      ir::Type::array(ir::ScalarKind::Float64, {arrayLen});
  const int chains =
      static_cast<int>(rng.uniformInt(options.minWidth, options.maxWidth));
  const double logSpread = std::log(options.wcetSpread);

  std::vector<Upstream> leaves;
  for (int c = 0; c < chains; ++c) {
    const std::string in = "u" + std::to_string(c);
    fn.declare(in, arrayType, ir::VarRole::Input);
    std::string prev = in;
    for (int l = 1; l <= layers; ++l) {
      const double workFactor = std::exp(rng.uniformDouble() * logSpread);
      const int targetOps = std::max(
          1, static_cast<int>(std::lround(
                 workFactor * options.baseOpsPerElement / options.ccr)));
      // snprintf instead of string concatenation: GCC 12's optimizer
      // trips a -Wrestrict false positive (PR105329) on the + chain here.
      char buf[48];
      std::snprintf(buf, sizeof(buf), "t%d_%d", l, c);
      const std::string out = buf;
      std::snprintf(buf, sizeof(buf), "i%d_%d", l, c);
      const std::string loopVar = buf;
      fn.declare(out, arrayType, ir::VarRole::Temp);
      auto body = ir::block();
      body->append(
          ir::assign(ir::ref(out, ir::exprVec(ir::var(loopVar))),
                     buildWindow(prev, loopVar, options.stencilRadius,
                                 arrayLen, targetOps, rng)));
      fn.body().append(ir::forLoop(loopVar, 0, arrayLen, std::move(body)));
      prev = out;
      scenario.nodes += 1;
    }
    // A chain ends in a scalar reduction with probability
    // accumulatorFraction (the non-expandable tail, like the layered
    // DAG's accumulator nodes); otherwise its last stage feeds the sink.
    if (rng.chance(options.accumulatorFraction)) {
      const std::string acc = "s" + std::to_string(c);
      const std::string loopVar = "ia_" + std::to_string(c);
      fn.declare(acc, ir::Type::float64(), ir::VarRole::Temp);
      fn.body().append(ir::assign(ir::ref(acc), ir::flt(0.0)));
      auto body = ir::block();
      body->append(ir::assign(
          ir::ref(acc),
          ir::add(ir::var(acc),
                  ir::mul(ir::ref(prev, ir::exprVec(ir::var(loopVar))),
                          ir::flt(coeff(rng))))));
      fn.body().append(ir::forLoop(loopVar, 0, arrayLen, std::move(body)));
      leaves.push_back(Upstream{acc, true});
      scenario.nodes += 1;
    } else {
      leaves.push_back(Upstream{prev, false});
    }
  }

  // Sink: one terminal combining every chain's tail.
  fn.declare("y", arrayType, ir::VarRole::Output);
  ir::ExprPtr combo = element(leaves.front(), "iy");
  for (std::size_t k = 1; k < leaves.size(); ++k) {
    combo = ir::add(std::move(combo), element(leaves[k], "iy"));
  }
  auto sink = ir::block();
  sink->append(
      ir::assign(ir::ref("y", ir::exprVec(ir::var("iy"))), std::move(combo)));
  fn.body().append(ir::forLoop("iy", 0, arrayLen, std::move(sink)));
  scenario.nodes += 1;
}

}  // namespace

const char* shapeName(Shape shape) noexcept {
  switch (shape) {
    case Shape::LayeredDag: return "layered_dag";
    case Shape::StencilChain: return "stencil_chain";
  }
  return "layered_dag";
}

Shape shapeFromName(const std::string& name) {
  if (name == "layered_dag") return Shape::LayeredDag;
  if (name == "stencil_chain") return Shape::StencilChain;
  throw ToolchainError("unknown generator shape '" + name +
                       "' (valid: layered_dag, stencil_chain)");
}

std::uint64_t scenarioSeed(std::uint64_t base, int index) noexcept {
  // One SplitMix64 step over golden-ratio-spaced inputs: adjacent indices
  // share no low-bit structure, and index 0 is not the base seed itself.
  support::Rng rng(base +
                   0x9E3779B97F4A7C15ull *
                       (static_cast<std::uint64_t>(index) + 1));
  return rng.next();
}

Scenario generateScenario(const GeneratorOptions& options, int index) {
  checkOptions(options);
  checkRange(index >= 0, "scenario index (must be >= 0)");

  Scenario scenario;
  char name[32];
  std::snprintf(name, sizeof(name), "scn%03d", index);
  scenario.name = name;
  scenario.seed = scenarioSeed(options.seed, index);
  support::Rng rng(scenario.seed);

  // Scenario-wide draws first, so knob changes that do not touch them
  // (e.g. ccr) keep the same graph shape for the same seed.
  const int layers =
      static_cast<int>(rng.uniformInt(options.minLayers, options.maxLayers));
  const int arrayLen = static_cast<int>(
      rng.uniformInt(options.minArrayLen, options.maxArrayLen));
  scenario.layers = layers;
  scenario.arrayLen = arrayLen;

  auto fn = std::make_unique<ir::Function>(scenario.name);

  if (options.shape == Shape::StencilChain) {
    generateStencilChain(options, scenario, *fn, rng);
    scenario.model.fn = std::move(fn);
    return scenario;
  }

  const ir::Type arrayType =
      ir::Type::array(ir::ScalarKind::Float64, {arrayLen});

  // Layer 0: the input arrays.
  const int inputCount =
      static_cast<int>(rng.uniformInt(options.minWidth, options.maxWidth));
  std::vector<std::vector<Upstream>> produced(1);
  for (int k = 0; k < inputCount; ++k) {
    const std::string in = "u" + std::to_string(k);
    fn->declare(in, arrayType, ir::VarRole::Input);
    produced[0].push_back(Upstream{in, false});
  }

  std::set<std::string> consumed;
  const double logSpread = std::log(options.wcetSpread);

  // Hidden layers, node by node in program order.
  for (int l = 1; l <= layers; ++l) {
    const int width =
        static_cast<int>(rng.uniformInt(options.minWidth, options.maxWidth));
    produced.emplace_back();
    for (int j = 0; j < width; ++j) {
      // Inputs: one from the previous layer (keeps the depth real), the
      // rest TGFF-style shortcuts from any earlier layer. A duplicate draw
      // is skipped rather than redrawn, so fan-in shrinks occasionally.
      std::vector<Upstream> inputs;
      const std::vector<Upstream>& prev = produced[static_cast<std::size_t>(l - 1)];
      inputs.push_back(prev[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(prev.size()) - 1))]);
      std::vector<Upstream> earlier;
      for (int e = 0; e < l; ++e) {
        earlier.insert(earlier.end(), produced[static_cast<std::size_t>(e)].begin(),
                       produced[static_cast<std::size_t>(e)].end());
      }
      const int fanIn = static_cast<int>(rng.uniformInt(
          1, std::min<std::int64_t>(options.maxFanIn,
                                    static_cast<std::int64_t>(earlier.size()))));
      for (int k = 1; k < fanIn; ++k) {
        const Upstream& pick = earlier[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(earlier.size()) - 1))];
        bool duplicate = false;
        for (const Upstream& have : inputs) duplicate |= have.name == pick.name;
        if (!duplicate) inputs.push_back(pick);
      }
      for (const Upstream& in : inputs) consumed.insert(in.name);

      // Per-node work: log-uniform spread, scaled down by the CCR knob.
      const double workFactor = std::exp(rng.uniformDouble() * logSpread);
      const int targetOps = std::max(
          1, static_cast<int>(std::lround(
                 workFactor * options.baseOpsPerElement / options.ccr)));
      const std::string loopVar =
          "i" + std::to_string(l) + "_" + std::to_string(j);
      const bool accumulator = rng.chance(options.accumulatorFraction);

      if (accumulator) {
        // Loop-carried scalar reduction: sequential by construction.
        const std::string out =
            "s" + std::to_string(l) + "_" + std::to_string(j);
        fn->declare(out, ir::Type::float64(), ir::VarRole::Temp);
        fn->body().append(ir::assign(ir::ref(out), ir::flt(0.0)));
        auto body = ir::block();
        body->append(ir::assign(
            ir::ref(out),
            ir::add(ir::var(out),
                    buildChain(inputs, loopVar, targetOps, rng))));
        fn->body().append(ir::forLoop(loopVar, 0, arrayLen, std::move(body)));
        produced.back().push_back(Upstream{out, true});
        scenario.nodes += 1;
      } else {
        // Element-wise parallel loop: expandable into chunks.
        const std::string out =
            "t" + std::to_string(l) + "_" + std::to_string(j);
        fn->declare(out, arrayType, ir::VarRole::Temp);
        auto body = ir::block();
        body->append(
            ir::assign(ir::ref(out, ir::exprVec(ir::var(loopVar))),
                       buildChain(inputs, loopVar, targetOps, rng)));
        fn->body().append(ir::forLoop(loopVar, 0, arrayLen, std::move(body)));
        produced.back().push_back(Upstream{out, false});
        scenario.nodes += 1;
      }
    }
  }

  // Sink: fold every value nothing else consumed into the output, so the
  // DAG has exactly one terminal and no dead nodes.
  fn->declare("y", arrayType, ir::VarRole::Output);
  std::vector<Upstream> leaves;
  for (const std::vector<Upstream>& layer : produced) {
    for (const Upstream& up : layer) {
      if (consumed.find(up.name) == consumed.end()) leaves.push_back(up);
    }
  }
  ir::ExprPtr combo = element(leaves.front(), "iy");
  for (std::size_t k = 1; k < leaves.size(); ++k) {
    combo = ir::add(std::move(combo), element(leaves[k], "iy"));
  }
  auto sink = ir::block();
  sink->append(
      ir::assign(ir::ref("y", ir::exprVec(ir::var("iy"))), std::move(combo)));
  fn->body().append(ir::forLoop("iy", 0, arrayLen, std::move(sink)));
  scenario.nodes += 1;

  scenario.model.fn = std::move(fn);
  return scenario;
}

std::vector<Scenario> generateScenarios(const GeneratorOptions& options,
                                        int count) {
  std::vector<Scenario> scenarios;
  scenarios.reserve(static_cast<std::size_t>(count > 0 ? count : 0));
  for (int i = 0; i < count; ++i) {
    scenarios.push_back(generateScenario(options, i));
  }
  return scenarios;
}

}  // namespace argo::scenarios
