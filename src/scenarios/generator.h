// Seeded random scenario generation: synthetic workloads for the batch
// evaluator (tools/argo_eval) and the policy benchmarks.
//
// The paper's claim is end-to-end — WCET-guaranteed parallel code across
// *many* applications — but the repo ships only three avionics models. This
// module mass-produces structurally diverse step functions the full
// tool-chain can digest: layer-by-layer hierarchical task graphs in the
// style of TGFF (random layered DAGs with fan-in/fan-out), realized
// directly as ARGO IR so extraction, scheduling, WCET analysis and
// simulation all run unmodified.
//
// Shape of a generated function:
//
//   inputs u0..uk ──> layer 1 nodes ──> ... ──> layer L nodes ──> sink y
//
// Every node is realized as top-level statements the HTG extractor sees
// directly:
//  * a *parallel* node — one element-wise for-loop writing its own array
//    from 1..maxFanIn upstream arrays/scalars through an arithmetic chain
//    (expandable by htg::expand, like the paper's fine-grain tasks), or
//  * an *accumulator* node — a loop-carried scalar reduction (sequential
//    by construction; exercises the non-expandable path). Accumulators
//    emit one extra top-level statement, the scalar init `s = 0`, which
//    becomes its own tiny HTG node unless mergeScalarChains folds it —
//    so Scenario::nodes counts *generator* nodes, not HTG nodes or
//    expanded tasks; or
//  * the *sink* — an element-wise loop combining every otherwise
//    unconsumed value into the output array, so the DAG has one terminal.
//
// A second shape, Shape::StencilChain, swaps the layered DAG for
// independent chains of 1-D stencil stages (radius-r clamped windows) —
// deep dependence chains with regular reads, the structure the paper's
// signal-processing kernels exhibit. See Shape below.
//
// Determinism: a scenario is a pure function of (options, index). All
// randomness comes from one support::Rng seeded with scenarioSeed(seed,
// index); no time, no global state. The same (options, index) produces the
// same IR on every platform, thread count and run — the golden-graph test
// in tests/scenarios_test.cpp pins this down byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/diagram.h"

namespace argo::scenarios {

/// Workload shapes the generator can produce.
enum class Shape : std::uint8_t {
  /// TGFF-style random layered DAG (the original shape; see the header
  /// comment above).
  LayeredDag,
  /// `width` independent chains of `layers` 1-D stencil stages: every
  /// stage reads a clamped radius-`stencilRadius` window of its
  /// predecessor array (min/max index clamping at the borders), and a
  /// chain may be terminated by a scalar reduction (accumulatorFraction).
  /// Long dependence chains with wide-but-regular reads — the sweep spot
  /// the layered DAG does not cover. maxFanIn is unused by this shape.
  StencilChain,
};

/// Stable CLI name of a shape ("layered_dag", "stencil_chain").
[[nodiscard]] const char* shapeName(Shape shape) noexcept;

/// Inverse of shapeName; throws support::ToolchainError listing the valid
/// names when `name` is unknown.
[[nodiscard]] Shape shapeFromName(const std::string& name);

/// Knobs of the random workload generator. All ranges are inclusive and
/// every draw is uniform unless stated otherwise.
struct GeneratorOptions {
  /// Base seed of the scenario family (unitless, default 1). Scenario
  /// `index` derives its own seed via scenarioSeed(seed, index).
  std::uint64_t seed = 1;
  /// Hidden DAG layers between the inputs and the sink (count, default
  /// 2..4). Depth of the generated hierarchy, excluding inputs and sink.
  int minLayers = 2;
  int maxLayers = 4;
  /// Nodes per hidden layer and number of input arrays (count, default
  /// 1..3). Controls the fan-out available to the scheduler.
  int minWidth = 1;
  int maxWidth = 3;
  /// Maximum upstream values one node reads (count, default 3). The first
  /// input always comes from the previous layer (keeps the depth real);
  /// the rest are drawn from all earlier layers (TGFF-style shortcuts).
  int maxFanIn = 3;
  /// Array length shared by every array of the scenario (elements, default
  /// 8..48). Also the trip count of every generated loop, and — times 8
  /// bytes — the payload of every array dependence edge.
  int minArrayLen = 8;
  int maxArrayLen = 48;
  /// Communication-to-computation ratio knob (dimensionless, default 1).
  /// Edge payloads are fixed by the array length, so CCR is steered from
  /// the compute side: every node's arithmetic chain runs
  /// baseOpsPerElement * workFactor / ccr operations per element. Raising
  /// ccr makes scenarios communication-bound, lowering it compute-bound.
  double ccr = 1.0;
  /// WCET spread between the lightest and heaviest node (ratio >= 1,
  /// default 4). Node work factors are drawn log-uniformly from
  /// [1, wcetSpread]; 1 makes all nodes equally heavy.
  double wcetSpread = 4.0;
  /// Probability that a hidden node is a sequential scalar accumulator
  /// instead of a parallel element-wise loop (fraction in [0, 1], default
  /// 0.25). Accumulators are non-expandable, so they bound the achievable
  /// parallelism the way the paper's sequential regions do.
  double accumulatorFraction = 0.25;
  /// Arithmetic operations per element at workFactor 1 and ccr 1 (count,
  /// default 4). The baseline the ccr / wcetSpread knobs scale.
  int baseOpsPerElement = 4;
  /// Workload shape (default LayeredDag). For StencilChain, `minLayers..
  /// maxLayers` is the stage count per chain and `minWidth..maxWidth` the
  /// number of independent chains.
  Shape shape = Shape::LayeredDag;
  /// Stencil window half-width for Shape::StencilChain (elements, default
  /// 1 — a 3-point stencil). 0 degenerates to point-wise copies; other
  /// shapes ignore it.
  int stencilRadius = 1;
};

/// One generated workload plus the metadata the eval report carries.
struct Scenario {
  std::string name;        ///< "scn<index>", stable across runs.
  std::uint64_t seed = 0;  ///< Derived seed actually used (scenarioSeed).
  int layers = 0;          ///< Hidden layers generated.
  int nodes = 0;           ///< Generated nodes incl. sink, excl. inputs.
  int arrayLen = 0;        ///< Elements per array (= loop trip count).
  /// The step function (plus an empty constant table), ready for
  /// core::Toolchain::run. Owns the ir::Function.
  model::CompiledModel model;
};

/// The derived seed of scenario `index` within the family `base`:
/// SplitMix64-mixed so neighbouring indices share no low-bit structure.
[[nodiscard]] std::uint64_t scenarioSeed(std::uint64_t base,
                                         int index) noexcept;

/// Generates scenario `index` of the family described by `options`.
/// Deterministic in (options, index); the returned function always passes
/// ir::validate. Throws support::ToolchainError on out-of-range knobs
/// (empty ranges, ccr <= 0, wcetSpread < 1).
[[nodiscard]] Scenario generateScenario(const GeneratorOptions& options,
                                        int index);

/// Generates scenarios 0..count-1. Equivalent to calling generateScenario
/// in a loop; provided for call-site brevity (the batch evaluator
/// regenerates per unit instead, to keep pooled units self-contained).
[[nodiscard]] std::vector<Scenario> generateScenarios(
    const GeneratorOptions& options, int count);

}  // namespace argo::scenarios
