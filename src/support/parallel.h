// Deterministic data parallelism for the tool-chain's hot phases.
//
// A thin layer over support::ThreadPool that every embarrassingly parallel
// phase (cross-layer feedback exploration, per-task timing analysis,
// annealing restarts, branch-and-bound subtrees, MHP rows, simulator
// trials) shares instead of hand-rolling its own pool handling. The
// contract, identical for the sequential and the pooled path:
//
//  * parallelFor(n, threads, fn) runs fn(i) for every i in [0, n). Every
//    index executes even if another index throws; when several indices
//    throw, the exception of the *lowest* failing index propagates. This
//    makes failure behaviour independent of the thread count and of the
//    execution interleaving.
//  * The layer never imposes an ordering on side effects. Callers that
//    need bit-identical results against a sequential run write into
//    per-index slots and reduce strictly in index order afterwards
//    ("ladder-order reduction"; see docs/ARCHITECTURE.md, "Determinism
//    contract"). The one sanctioned piece of shared mutable state between
//    tasks is a support::SharedIncumbent used for strictly-non-improving
//    pruning (see shared_incumbent.h for why that preserves determinism);
//    results themselves always go through slots.
//  * Pools do not nest: requesting a pooled run (resolved parallelism > 1)
//    from inside a parallelFor task — or from inside a TaskGraph node —
//    throws ToolchainError. Inner phases invoked from a pooled outer phase
//    must pass threads = 1, which runs inline and is always allowed
//    (core::Toolchain does exactly this for the scheduler it runs per
//    candidate).
//  * Each pooled call owns a transient ThreadPool (spawned on entry,
//    joined before return); the layer is shared, the pool is not. One
//    phase therefore owns the whole thread budget at a time, and nothing
//    outlives the call. Exactly two entry points may own it:
//    parallelFor for index-space phases and support::TaskGraph::run
//    (support/graph.h) for dependency-graph phases — both enforce the
//    same no-nesting rule through the shared task-scope flag below.
#pragma once

#include <cstddef>
#include <functional>

namespace argo::support {

/// Worker count a phase should use for `n` independent items given its
/// thread knob: `threads <= 0` means one per hardware thread, otherwise
/// `threads`; never more than `n` and never less than 1.
[[nodiscard]] unsigned effectiveParallelism(int threads, std::size_t n);

/// True while the calling thread is executing a parallelFor task (used to
/// reject nested pools; exposed for tests).
[[nodiscard]] bool inParallelTask() noexcept;

/// Runs `fn(i)` for every i in [0, n), blocking until all complete.
/// `threads` follows the effectiveParallelism() convention; a resolved
/// parallelism of 1 runs inline on the calling thread with the same
/// all-indices-execute / lowest-failing-index-wins failure contract as the
/// pooled path. Throws support::ToolchainError when a pooled run is
/// requested from inside another parallelFor task.
void parallelFor(std::size_t n, int threads,
                 const std::function<void(std::size_t)>& fn);

namespace detail {

/// RAII marker for "this thread is executing a pooled task body". Sets the
/// thread-local flag behind inParallelTask() on construction and restores
/// (not clears) the previous value on destruction, so inline nesting keeps
/// the guard armed. Internal to the two sanctioned pool owners —
/// parallelFor and support::TaskGraph::run; phase code must not use it to
/// smuggle extra pool owners past the no-nested-pools rule.
class ParallelTaskScope {
 public:
  ParallelTaskScope() noexcept;
  ~ParallelTaskScope();
  ParallelTaskScope(const ParallelTaskScope&) = delete;
  ParallelTaskScope& operator=(const ParallelTaskScope&) = delete;

 private:
  bool previous_;
};

}  // namespace detail

}  // namespace argo::support
