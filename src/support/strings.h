// Small string helpers shared across the tool-chain (lexers, printers).
//
// Pure functions over string_view/string only — no locale, no allocation
// surprises, no dependency on anything else in support/. The ADL parser
// and Scilab front end tokenize with split/trim/startsWith; report and
// bench code formats with join/formatCycles. All helpers are deterministic
// (ASCII-only semantics), which keeps every printed report byte-stable
// across platforms — the determinism tests compare reports verbatim.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace argo::support {

/// Splits `text` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// True if `text` starts with `prefix`.
[[nodiscard]] bool startsWith(std::string_view text,
                              std::string_view prefix) noexcept;

/// Joins items with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

/// Formats a cycle count with thousands separators for reports, e.g. 1_234_567.
[[nodiscard]] std::string formatCycles(long long cycles);

}  // namespace argo::support
