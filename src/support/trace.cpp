#include "support/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace argo::support {

namespace detail {
std::atomic<bool> traceEnabled{false};
}  // namespace detail

namespace {

std::uint64_t steadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

/// ts/dur in microseconds with 3 decimals: exact for nanosecond inputs.
void appendMicros(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::enable() {
  if (enabled()) return;
  originNs_.store(steadyNowNs(), std::memory_order_relaxed);
  detail::traceEnabled.store(true, std::memory_order_release);
}

void TraceRecorder::disable() {
  detail::traceEnabled.store(false, std::memory_order_release);
}

void TraceRecorder::reset() {
  disable();
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
  originNs_.store(0, std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::nowNs() const {
  const std::uint64_t origin = originNs_.load(std::memory_order_relaxed);
  if (origin == 0) return 0;
  const std::uint64_t now = steadyNowNs();
  return now > origin ? now - origin : 0;
}

TraceRecorder::ThreadBuffer& TraceRecorder::localBuffer() {
  // The cached pointer survives reset(): the epoch check notices the
  // registry was cleared and re-registers. A thread mid-append during a
  // reset keeps its orphaned buffer alive through the shared_ptr — its
  // stray events simply never reach an export.
  struct Cache {
    std::uint64_t epoch = 0;
    std::shared_ptr<ThreadBuffer> buffer;
  };
  thread_local Cache cache;
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (cache.epoch != epoch || !cache.buffer) {
    auto buffer = std::make_shared<ThreadBuffer>();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      buffer->tid = static_cast<int>(buffers_.size());
      buffers_.push_back(buffer);
    }
    cache.epoch = epoch;
    cache.buffer = std::move(buffer);
  }
  return *cache.buffer;
}

void TraceRecorder::recordComplete(const char* category, std::string name,
                                   std::uint64_t startNs, std::uint64_t durNs,
                                   std::vector<TraceArg> args) {
  if (!enabled()) return;
  ThreadBuffer& buffer = localBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(
      Event{'X', category, std::move(name), startNs, durNs, std::move(args)});
}

void TraceRecorder::recordInstant(const char* category, std::string name,
                                  std::vector<TraceArg> args) {
  if (!enabled()) return;
  ThreadBuffer& buffer = localBuffer();
  const std::uint64_t at = nowNs();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(
      Event{'i', category, std::move(name), at, 0, std::move(args)});
}

std::vector<TraceEventView> TraceRecorder::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEventView> out;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    for (const Event& e : buffer->events) {
      TraceEventView view;
      view.phase = e.phase;
      view.category = e.category;
      view.name = e.name;
      view.tid = buffer->tid;
      view.startNs = e.startNs;
      view.durNs = e.durNs;
      view.args = e.args;
      out.push_back(std::move(view));
    }
  }
  return out;
}

std::size_t TraceRecorder::eventCount() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::size_t count = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

std::string TraceRecorder::toJson() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::string out;
  out.reserve(4096);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    for (const Event& e : buffer->events) {
      out += first ? "{" : ",{";
      first = false;
      out += "\"ph\":\"";
      out += e.phase;
      out += "\",\"pid\":1,\"tid\":";
      out += std::to_string(buffer->tid);
      out += ",\"ts\":";
      appendMicros(out, e.startNs);
      if (e.phase == 'X') {
        out += ",\"dur\":";
        appendMicros(out, e.durNs);
      } else if (e.phase == 'i') {
        out += ",\"s\":\"t\"";  // thread-scoped instant
      }
      out += ",\"cat\":\"";
      out += jsonEscape(e.category);
      out += "\",\"name\":\"";
      out += jsonEscape(e.name);
      out += "\"";
      if (!e.args.empty()) {
        out += ",\"args\":{";
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          if (i != 0) out += ",";
          out += "\"";
          out += jsonEscape(e.args[i].key);
          out += "\":\"";
          out += jsonEscape(e.args[i].value);
          out += "\"";
        }
        out += "}";
      }
      out += "}";
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceRecorder::writeFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string json = toJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out << "\n";
  out.flush();
  return static_cast<bool>(out);
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceRecorder& recorder = TraceRecorder::global();
  const std::uint64_t end = recorder.nowNs();
  recorder.recordComplete(category_, std::move(name_), startNs_,
                          end > startNs_ ? end - startNs_ : 0,
                          std::move(args_));
}

void TraceSpan::begin(const char* category, std::string name) {
  active_ = true;
  category_ = category;
  name_ = std::move(name);
  startNs_ = TraceRecorder::global().nowNs();
}

}  // namespace argo::support
