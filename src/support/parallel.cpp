#include "support/parallel.h"

#include <exception>
#include <thread>

#include "support/diagnostics.h"
#include "support/thread_pool.h"

namespace argo::support {

namespace {

// Set while the current thread executes a pooled task body — a parallelFor
// index or a TaskGraph node — on a pool worker or on the calling thread
// when it helps / runs inline.
thread_local bool tlInParallelTask = false;

// Restores (not clears) the previous value: an inline parallelFor nested
// inside a pooled task must leave the task flag set for the rest of the
// enclosing task, or the no-nested-pools guard would be disabled.
using TaskScope = detail::ParallelTaskScope;

}  // namespace

namespace detail {

ParallelTaskScope::ParallelTaskScope() noexcept
    : previous_(tlInParallelTask) {
  tlInParallelTask = true;
}

ParallelTaskScope::~ParallelTaskScope() { tlInParallelTask = previous_; }

}  // namespace detail

unsigned effectiveParallelism(int threads, std::size_t n) {
  unsigned resolved = threads > 0 ? static_cast<unsigned>(threads)
                                  : std::thread::hardware_concurrency();
  if (resolved == 0) resolved = 1;
  if (n < resolved) resolved = static_cast<unsigned>(n);
  return resolved == 0 ? 1u : resolved;
}

bool inParallelTask() noexcept { return tlInParallelTask; }

void parallelFor(std::size_t n, int threads,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const unsigned resolved = effectiveParallelism(threads, n);

  if (resolved <= 1) {
    // Inline path. Matches the pool contract exactly: every index runs,
    // and (trivially, because indices run in order) the lowest failing
    // index's exception is the one rethrown.
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      TaskScope scope;
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  if (tlInParallelTask) {
    throw ToolchainError(
        "support::parallelFor: nested pooled use from a parallel task; "
        "inner phases must run with threads = 1");
  }

  // The calling thread participates in ThreadPool::parallelFor, so spawn
  // one fewer worker than the requested parallelism.
  ThreadPool pool(resolved - 1);
  pool.parallelFor(n, [&fn](std::size_t i) {
    TaskScope scope;
    fn(i);
  });
}

}  // namespace argo::support
