#include "support/rng.h"

namespace argo::support {

std::uint64_t Rng::next() noexcept {
  state_ += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::uniformDouble() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept { return uniformDouble() < p; }

}  // namespace argo::support
