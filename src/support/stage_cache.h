// Generic thread-safe single-flight memoization, keyed by StageKey.
//
// StageCache<V> maps a content-hash key to a once-computed value. The
// first caller of getOrCompute for a key runs the compute closure inline
// on its own thread; concurrent callers for the same key block on a
// condition variable until that one computation publishes (single-flight:
// a popular key is computed exactly once, never N times in parallel).
// Values are published as shared_ptr<const V>, so consumers can hold them
// beyond the cache's own lifetime and no caller can mutate a shared slot.
//
// Deadlock-freedom under the pooled phases (support/parallel.h,
// support/graph.h): the owning caller computes *inline* — it is by
// definition a running thread, never a queued task — so waiters always
// wait on a thread that is actively making progress. Compute closures
// must follow the same no-nested-pools rule as any other code running
// inside a pooled phase.
//
// Failure: if the compute closure throws, the error is published to the
// waiters of that in-flight computation (they rethrow it), and the slot
// is erased — a later lookup retries from scratch.
//
// The cache is unbounded and in-process: one batch or one resident
// service owns it and its lifetime bounds the memory. Eviction and the
// on-disk tier are the ROADMAP follow-up, not this layer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "support/hash.h"

namespace argo::support {

/// How one getOrCompute call was served. Mirrors the StageCacheStats
/// counters one-to-one; instruments (core::ToolchainCache's per-lookup
/// trace spans) use it to attribute a single lookup without re-deriving
/// it from counter deltas.
enum class StageCacheOutcome : std::uint8_t { Hit, Miss, InflightWait };

[[nodiscard]] constexpr const char* stageCacheOutcomeName(
    StageCacheOutcome outcome) noexcept {
  switch (outcome) {
    case StageCacheOutcome::Hit:
      return "hit";
    case StageCacheOutcome::Miss:
      return "miss";
    case StageCacheOutcome::InflightWait:
      return "inflight_wait";
  }
  return "unknown";
}

/// Lookup counters of one StageCache. hits + misses + inflightWaits is
/// the deterministic total lookup count, but the split between hits and
/// inflightWaits depends on thread timing — report the counters only in
/// wall-clock-style opt-in output, never in canonical reports.
struct StageCacheStats {
  std::uint64_t hits = 0;           ///< Found a completed value.
  std::uint64_t misses = 0;         ///< Computed the value itself.
  std::uint64_t inflightWaits = 0;  ///< Waited on another thread's compute.

  [[nodiscard]] std::uint64_t lookups() const noexcept {
    return hits + misses + inflightWaits;
  }
};

template <typename Value>
class StageCache {
 public:
  /// Returns the cached value for `key`, computing it via `compute()` if
  /// absent. Exactly one concurrent caller per key runs `compute`. When
  /// `outcome` is non-null it receives how this lookup was served (the
  /// same classification the stats counters accumulate).
  template <typename Compute>
  std::shared_ptr<const Value> getOrCompute(
      const StageKey& key, Compute&& compute,
      StageCacheOutcome* outcome = nullptr) {
    std::shared_ptr<Entry> entry;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto [it, inserted] = map_.try_emplace(key);
      if (inserted) {
        it->second = std::make_shared<Entry>();
        owner = true;
      }
      entry = it->second;
    }

    if (owner) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (outcome != nullptr) *outcome = StageCacheOutcome::Miss;
      std::shared_ptr<const Value> value;
      try {
        value = std::make_shared<const Value>(compute());
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(entry->m);
          entry->error = std::current_exception();
          entry->state = State::Failed;
        }
        entry->cv.notify_all();
        std::lock_guard<std::mutex> lock(mutex_);
        map_.erase(key);
        throw;
      }
      {
        std::lock_guard<std::mutex> lock(entry->m);
        entry->value = value;
        entry->state = State::Ready;
      }
      entry->cv.notify_all();
      return value;
    }

    std::unique_lock<std::mutex> lock(entry->m);
    if (entry->state == State::Ready) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (outcome != nullptr) *outcome = StageCacheOutcome::Hit;
      return entry->value;
    }
    inflightWaits_.fetch_add(1, std::memory_order_relaxed);
    if (outcome != nullptr) *outcome = StageCacheOutcome::InflightWait;
    entry->cv.wait(lock, [&] { return entry->state != State::Pending; });
    if (entry->state == State::Failed) {
      std::rethrow_exception(entry->error);
    }
    return entry->value;
  }

  /// Completed entries currently resident.
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

  /// Drops every slot. Values stay alive through the shared_ptrs already
  /// handed out; an in-flight computation completes into its (now
  /// unreachable) entry and its waiters still receive it.
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
  }

  [[nodiscard]] StageCacheStats stats() const noexcept {
    StageCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.inflightWaits = inflightWaits_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  enum class State : std::uint8_t { Pending, Ready, Failed };

  struct Entry {
    std::mutex m;
    std::condition_variable cv;
    State state = State::Pending;
    std::shared_ptr<const Value> value;
    std::exception_ptr error;
  };

  mutable std::mutex mutex_;
  std::unordered_map<StageKey, std::shared_ptr<Entry>, StageKeyHash> map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inflightWaits_{0};
};

}  // namespace argo::support
