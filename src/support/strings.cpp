#include "support/strings.h"

#include <cctype>

namespace argo::support {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool startsWith(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string formatCycles(long long cycles) {
  std::string raw = std::to_string(cycles);
  std::string out;
  const bool neg = !raw.empty() && raw.front() == '-';
  const std::size_t first = neg ? 1 : 0;
  for (std::size_t i = first; i < raw.size(); ++i) {
    if (i != first && (raw.size() - i) % 3 == 0) out += '_';
    out += raw[i];
  }
  return neg ? "-" + out : out;
}

}  // namespace argo::support
