// Deterministic dependency-graph job executor: the generalization of
// support::parallelFor from an index space to a DAG of named nodes.
//
// parallelFor models one phase of independent items with a barrier at the
// end; a pipeline of dependent stages run that way pays a full rendezvous
// after every stage even when item A's stage 3 is independent of item B's
// stage 1. TaskGraph removes those barriers: callers declare nodes with
// explicit edges on the *true* data dependences, and independent chains
// overlap freely — a node starts the moment its last predecessor finishes,
// on whichever pool worker is free.
//
// The contract mirrors parallelFor's determinism contract exactly (see
// docs/ARCHITECTURE.md, "Determinism contract" and "Task-graph executor"):
//
//  * Per-node output slots, ladder-order assembly. The executor never
//    imposes an ordering on side effects; node bodies write into their own
//    slots (captured by the node's closure) and the caller reduces the
//    slots strictly in node-id order after run() returns. Node ids are
//    assigned consecutively by addNode(), so "node-id order" is the same
//    ladder order parallelFor callers reduce in — the result is
//    bit-identical for any thread count and any completion interleaving.
//  * Failure determinism. A node that throws marks every transitive
//    successor as skipped (their bodies never run — their inputs are
//    missing); every node with no failed ancestor still executes, even
//    while unrelated nodes fail. When several nodes throw, the exception
//    of the *lowest* node id propagates from run() — the graph analogue of
//    parallelFor's lowest-failing-index rule. Which nodes run, which are
//    skipped, and which exception surfaces are all independent of the
//    thread count and the interleaving.
//  * Cycle rejection. run() validates the graph before executing anything
//    and throws ToolchainError naming the nodes involved in cyclic
//    dependences (in node-id order).
//  * No nested pools. run() with a resolved parallelism > 1 from inside a
//    parallelFor task or another TaskGraph node throws, exactly like
//    parallelFor; a resolved parallelism of 1 runs inline (deterministic
//    node-id topological order) and is always allowed. TaskGraph::run is
//    the second sanctioned owner of the thread budget next to parallelFor
//    (support/parallel.h); node bodies must run their inner phases with
//    threads = 1.
//
// Execution: run() seeds an indegree-countdown ready queue with the
// sources and drains it on a transient work-stealing ThreadPool (the
// calling thread participates); finishing a node atomically decrements
// each successor's pending count and enqueues those that hit zero.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace argo::support {

class TaskGraph {
 public:
  using NodeId = std::size_t;

  /// Adds a node and returns its id; ids are consecutive from 0 in
  /// insertion order (the ladder order of the determinism contract).
  /// `name` appears in diagnostics (cycle reports); it need not be unique.
  /// Throws ToolchainError when `fn` is empty.
  NodeId addNode(std::string name, std::function<void()> fn);

  /// Declares that `from` must complete before `to` starts. Duplicate
  /// edges are deduplicated; self-edges and unknown ids throw
  /// ToolchainError.
  void addEdge(NodeId from, NodeId to);

  [[nodiscard]] std::size_t nodeCount() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const std::string& nodeName(NodeId id) const;

  /// Executes every node whose ancestors all succeed, blocking until the
  /// whole graph has been executed or deterministically skipped. `threads`
  /// follows the effectiveParallelism() convention (0 = hardware threads,
  /// 1 = inline, clamped to the node count). May be called repeatedly —
  /// per-run state is rebuilt each time. Throws ToolchainError on a cyclic
  /// graph or a nested pooled run; otherwise rethrows the lowest failing
  /// node id's exception after the run drains.
  void run(int threads);

 private:
  struct Node {
    std::string name;
    std::function<void()> fn;
    std::vector<NodeId> successors;
    int indegree = 0;
  };

  /// Throws the pinned cycle diagnostic unless the graph is a DAG.
  void checkAcyclic() const;
  void runInline();
  void runPooled(unsigned resolved);

  std::vector<Node> nodes_;
};

}  // namespace argo::support
