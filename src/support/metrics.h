// Process-wide registry of named monotonic counters and peak gauges: the
// numeric half of the observability layer (docs/OBSERVABILITY.md; the
// span half is support/trace.h).
//
// MetricsRegistry::global() maps a dotted name ("pool.tasks",
// "graph.ready_wait_us") to a Counter or Gauge that lives for the whole
// process. counter()/gauge() get-or-create under a mutex and return a
// stable reference — instruments cache the reference once and then update
// it with a single relaxed atomic op, so the hot path never touches the
// registry lock. Counters only ever grow; gauges track a high watermark
// (noteMax) or a last-set value.
//
// Determinism: metrics are telemetry, strictly off the report path. They
// are rendered only inside the wall-clock opt-in `--timings` JSON (the
// `metrics` block) — never in canonical report bytes. Many counters are
// scheduling-dependent (steal counts, hit/wait splits); only sums the
// determinism contract already fixes (e.g. total cache lookups) are
// stable run to run.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace argo::support {

/// A monotonically increasing event count.
class MetricCounter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
};

/// A last-value / high-watermark gauge.
class MetricGauge {
 public:
  void set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if it is below (lock-free max).
  void noteMax(std::uint64_t v) noexcept {
    std::uint64_t seen = value_.load(std::memory_order_relaxed);
    while (seen < v && !value_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
};

/// One (name, value) pair of a registry snapshot.
struct MetricSample {
  std::string name;
  std::uint64_t value = 0;
  bool isGauge = false;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every instrument reports into.
  static MetricsRegistry& global();

  /// Get-or-create; the returned reference is valid for the registry's
  /// lifetime (entries are never erased — resetForTest only zeroes them).
  MetricCounter& counter(std::string_view name);
  MetricGauge& gauge(std::string_view name);

  /// Every registered metric, sorted by name.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Zeroes every value in place; names and references stay valid. Test
  /// isolation only — production code never resets.
  void resetForTest();

 private:
  mutable std::mutex mutex_;
  // Node-based maps: values never move, so returned references are stable.
  std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>, std::less<>> gauges_;
};

}  // namespace argo::support
