// Stable content hashing for the toolchain stage cache.
//
// StageKey is a 128-bit digest of a canonical byte serialization (IR
// printer text, platform-slice prints, option fields). Keys are compared
// for equality only — a cache hit means "the serialized inputs were
// byte-identical", and 128 bits make an accidental collision negligible
// over any realistic sweep size. The hash is FNV-1a style over two
// independently mixed 64-bit lanes: not cryptographic, but stable across
// platforms, processes, and compiler versions (no pointer values, no
// iteration-order dependence), which is what an on-disk cache will need.
//
// Hasher frames every typed feed with a tag byte, and strings with their
// length, so adjacent fields cannot alias ("ab"+"c" never hashes like
// "a"+"bc", and u64(1) never hashes like i64(1)).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace argo::support {

/// 128-bit content-hash key of one memoized stage computation.
struct StageKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const StageKey&, const StageKey&) = default;

  /// Fixed 32-hex-digit rendering (diagnostics and future on-disk file
  /// names).
  [[nodiscard]] std::string text() const;
};

/// Hash functor for unordered containers keyed by StageKey: the key is
/// already uniform, so one multiply-fold is enough.
struct StageKeyHash {
  [[nodiscard]] std::size_t operator()(const StageKey& k) const noexcept {
    return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9E3779B97F4A7C15ull));
  }
};

/// Incremental two-lane FNV-1a hasher. Feed typed fields, then take the
/// key. Every method returns *this so key derivations chain.
class Hasher {
 public:
  /// Raw bytes, unframed — callers that use this directly own their own
  /// framing; the typed feeds below are framed already.
  Hasher& bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      a_ = (a_ ^ p[i]) * kFnvPrime;
      b_ = (b_ ^ p[i]) * kMixPrime;
    }
    return *this;
  }

  /// Length-prefixed string.
  Hasher& str(std::string_view s) noexcept {
    tag('S');
    raw64(static_cast<std::uint64_t>(s.size()));
    return bytes(s.data(), s.size());
  }

  Hasher& u64(std::uint64_t v) noexcept {
    tag('U');
    raw64(v);
    return *this;
  }

  Hasher& i64(std::int64_t v) noexcept {
    tag('I');
    raw64(static_cast<std::uint64_t>(v));
    return *this;
  }

  Hasher& i32(std::int32_t v) noexcept {
    tag('W');
    raw64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
    return *this;
  }

  /// Bit pattern of the double: distinct representations hash apart,
  /// which at worst costs a spurious miss, never a wrong hit.
  Hasher& f64(double v) noexcept {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    tag('F');
    raw64(bits);
    return *this;
  }

  Hasher& boolean(bool v) noexcept {
    tag('B');
    const unsigned char byte = v ? 1 : 0;
    return bytes(&byte, 1);
  }

  /// Fold a previously derived key in (stage chaining: downstream keys
  /// embed their upstream stage's key).
  Hasher& key(const StageKey& k) noexcept {
    tag('K');
    raw64(k.hi);
    raw64(k.lo);
    return *this;
  }

  [[nodiscard]] StageKey finish() const noexcept { return StageKey{a_, b_}; }

 private:
  void tag(char t) noexcept {
    const unsigned char byte = static_cast<unsigned char>(t);
    bytes(&byte, 1);
  }

  /// Little-endian by construction — independent of host byte order.
  void raw64(std::uint64_t v) noexcept {
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<unsigned char>(v >> (8 * i));
    }
    bytes(buf, sizeof(buf));
  }

  static constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
  static constexpr std::uint64_t kFnvPrime = 1099511628211ull;
  /// Second lane: same byte stream, different offset and an odd mixing
  /// constant, so the lanes decorrelate.
  static constexpr std::uint64_t kMixOffset = 0x9AE16A3B2F90404Full;
  static constexpr std::uint64_t kMixPrime = 0x9E3779B97F4A7C15ull;

  std::uint64_t a_ = kFnvOffset;
  std::uint64_t b_ = kMixOffset;
};

}  // namespace argo::support
