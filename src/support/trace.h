// Execution tracing: process-wide span recorder with Chrome trace-event
// JSON export (the span half of the observability layer; the counter half
// is support/metrics.h — see docs/OBSERVABILITY.md for the taxonomy).
//
// TraceRecorder::global() owns one append-only buffer per recording
// thread. TraceSpan is the RAII instrument: construction stamps the start
// time, destruction records one complete event ("ph":"X") with the
// elapsed duration into the calling thread's buffer. The hot path is a
// single relaxed atomic load — when tracing is disabled every instrument
// is a no-op that costs one branch, so instrumented code is safe to leave
// in release builds (bench_parallel_eval's trace_overhead row measures
// exactly this).
//
// Buffers are per-thread and only the owning thread appends (under that
// buffer's own mutex, uncontended except against export), so recording
// needs no global synchronization and is TSan-clean. Export (toJson /
// writeFile) walks every buffer and emits Perfetto-loadable Chrome
// trace-event JSON: {"traceEvents":[{"ph":"X","pid":1,"tid":T,"ts":us,
// "dur":us,"cat":...,"name":...,"args":{...}}, ...]}.
//
// Determinism: traces are telemetry, strictly off the report path. A
// trace's timestamps and event interleaving vary run to run; canonical
// report bytes never depend on whether tracing is on (the CLIs' --trace
// ctest cases cmp exactly that).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace argo::support {

namespace detail {
/// The one hot-path flag; read via TraceRecorder::enabled().
extern std::atomic<bool> traceEnabled;
}  // namespace detail

/// One span/event annotation, rendered into the "args" object.
struct TraceArg {
  std::string key;
  std::string value;
};

/// One recorded event, as exposed to tests via TraceRecorder::snapshot().
struct TraceEventView {
  char phase = 'X';  ///< 'X' = complete span, 'i' = instant event.
  std::string category;
  std::string name;
  int tid = 0;
  std::uint64_t startNs = 0;  ///< Nanoseconds since enable().
  std::uint64_t durNs = 0;    ///< 0 for instant events.
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  static TraceRecorder& global();

  /// The hot-path check every instrument performs first.
  [[nodiscard]] static bool enabled() noexcept {
    return detail::traceEnabled.load(std::memory_order_relaxed);
  }

  /// Starts recording; the time origin is stamped here. Idempotent.
  void enable();
  /// Stops recording; already-buffered events are kept for export.
  void disable();
  /// disable() plus dropping every buffered event and thread id. Threads
  /// that still hold a buffer re-register on their next record. Test
  /// isolation and CLI re-arm only.
  void reset();

  /// Records one complete span into the calling thread's buffer. No-op
  /// when disabled (instruments should have checked enabled() already).
  void recordComplete(const char* category, std::string name,
                      std::uint64_t startNs, std::uint64_t durNs,
                      std::vector<TraceArg> args);
  /// Records an instant event ("ph":"i") at the current time.
  void recordInstant(const char* category, std::string name,
                     std::vector<TraceArg> args = {});

  /// Nanoseconds since enable(); 0 when never enabled.
  [[nodiscard]] std::uint64_t nowNs() const;

  /// Every buffered event, buffers in thread-id order, append order
  /// within a buffer. Safe against concurrent recording.
  [[nodiscard]] std::vector<TraceEventView> snapshot() const;
  [[nodiscard]] std::size_t eventCount() const;

  /// Chrome trace-event JSON of the whole buffer set (ts/dur in
  /// microseconds, exact to the nanosecond in 3 decimals).
  [[nodiscard]] std::string toJson() const;
  /// Writes toJson() to `path`; false on any I/O failure.
  [[nodiscard]] bool writeFile(const std::string& path) const;

 private:
  struct Event {
    char phase;
    const char* category;  ///< String literal owned by the instrument site.
    std::string name;
    std::uint64_t startNs;
    std::uint64_t durNs;
    std::vector<TraceArg> args;
  };
  struct ThreadBuffer {
    std::mutex mutex;  ///< Owner appends; export reads. Uncontended.
    int tid = 0;
    std::vector<Event> events;
  };

  /// The calling thread's buffer for the current epoch, registering it on
  /// first use (and re-registering after reset()).
  ThreadBuffer& localBuffer();

  mutable std::mutex mutex_;  ///< Guards buffers_ registration and export.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> originNs_{0};  ///< steady_clock ns at enable().
};

/// RAII span: records one "ph":"X" event over its own lifetime. When
/// tracing is disabled, construction is one relaxed load and everything
/// else is a no-op. Callers that build a dynamic name should guard the
/// construction with TraceRecorder::enabled() to keep the disabled path
/// allocation-free.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name) {
    if (TraceRecorder::enabled()) begin(category, name);
  }
  TraceSpan(const char* category, const std::string& name) {
    if (TraceRecorder::enabled()) begin(category, name);
  }
  TraceSpan(const char* category, std::string_view name) {
    if (TraceRecorder::enabled()) begin(category, std::string(name));
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Attaches a key/value annotation; no-op when the span is inactive.
  void arg(const char* key, std::string value) {
    if (active_) args_.push_back(TraceArg{key, std::move(value)});
  }
  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  void begin(const char* category, std::string name);

  bool active_ = false;
  const char* category_ = nullptr;
  std::string name_;
  std::uint64_t startNs_ = 0;
  std::vector<TraceArg> args_;
};

}  // namespace argo::support
