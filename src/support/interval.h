// Half-open integer intervals and interval overlap queries.
//
// Used by the system-level WCET analysis (task execution windows) and by
// the scheduler (core occupancy).
#pragma once

#include <cstdint>
#include <vector>

namespace argo::support {

/// Half-open interval [lo, hi) over a 64-bit time axis (cycles).
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  [[nodiscard]] bool empty() const noexcept { return hi <= lo; }
  [[nodiscard]] std::int64_t length() const noexcept {
    return empty() ? 0 : hi - lo;
  }
  [[nodiscard]] bool contains(std::int64_t t) const noexcept {
    return t >= lo && t < hi;
  }
  [[nodiscard]] bool overlaps(const Interval& other) const noexcept {
    return lo < other.hi && other.lo < hi;
  }
  /// Intersection; empty interval when disjoint.
  [[nodiscard]] Interval intersect(const Interval& other) const noexcept;

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// A set of disjoint, sorted intervals with union/overlap queries.
class IntervalSet {
 public:
  /// Inserts an interval, merging any intervals it touches or overlaps.
  void insert(Interval iv);

  /// Total covered length.
  [[nodiscard]] std::int64_t coveredLength() const noexcept;

  /// True if any member overlaps `iv`.
  [[nodiscard]] bool overlaps(const Interval& iv) const noexcept;

  /// Length of the intersection between the set and `iv`.
  [[nodiscard]] std::int64_t overlapLength(const Interval& iv) const noexcept;

  [[nodiscard]] const std::vector<Interval>& intervals() const noexcept {
    return items_;
  }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

 private:
  std::vector<Interval> items_;  // sorted by lo, pairwise disjoint
};

}  // namespace argo::support
