#include "support/diagnostics.h"

#include <sstream>

namespace argo::support {

void DiagnosticEngine::note(std::string message, std::string context) {
  diags_.push_back({Severity::Note, std::move(message), std::move(context)});
}

void DiagnosticEngine::warning(std::string message, std::string context) {
  diags_.push_back({Severity::Warning, std::move(message), std::move(context)});
}

void DiagnosticEngine::error(std::string message, std::string context) {
  diags_.push_back({Severity::Error, std::move(message), std::move(context)});
  ++errorCount_;
}

std::string DiagnosticEngine::str() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    switch (d.severity) {
      case Severity::Note: os << "note"; break;
      case Severity::Warning: os << "warning"; break;
      case Severity::Error: os << "error"; break;
    }
    if (!d.context.empty()) os << ": " << d.context;
    os << ": " << d.message << '\n';
  }
  return os.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  errorCount_ = 0;
}

}  // namespace argo::support
