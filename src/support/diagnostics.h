// Diagnostics: error reporting for the ARGO tool-chain.
//
// All front-end and analysis errors are funneled through a DiagnosticEngine
// so that library users can collect, inspect, and pretty-print them instead
// of having the library write to stderr. Fatal conditions (internal
// invariant violations) throw ToolchainError.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace argo::support {

/// Severity of a reported diagnostic.
enum class Severity { Note, Warning, Error };

/// A single diagnostic message with an optional source location.
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string message;
  /// Context string, e.g. "diagram 'egpws'" or "function 'step' line 12".
  std::string context;
};

/// Exception thrown on unrecoverable tool-chain errors (broken invariants,
/// malformed inputs that prevent any further processing).
class ToolchainError : public std::runtime_error {
 public:
  explicit ToolchainError(const std::string& what) : std::runtime_error(what) {}
};

/// Collects diagnostics produced by a tool-chain stage.
///
/// The engine is deliberately simple: stages append, callers query. It is
/// not thread-safe; each pipeline runs single-threaded by design (the
/// *generated* programs are parallel, the compiler is not).
class DiagnosticEngine {
 public:
  void note(std::string message, std::string context = {});
  void warning(std::string message, std::string context = {});
  void error(std::string message, std::string context = {});

  [[nodiscard]] bool hasErrors() const noexcept { return errorCount_ > 0; }
  [[nodiscard]] int errorCount() const noexcept { return errorCount_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const noexcept {
    return diags_;
  }

  /// Renders every diagnostic as "severity: context: message" lines.
  [[nodiscard]] std::string str() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  int errorCount_ = 0;
};

}  // namespace argo::support
