// A small work-stealing thread pool for the tool-chain's embarrassingly
// parallel phases (candidate exploration, batched analyses).
//
// Design:
//  * one deque per worker; submit() deals tasks round-robin, a worker pops
//    from the front of its own deque and steals from the back of others,
//  * the thread calling parallelFor() participates (steals too), so a
//    1-thread pool never deadlocks and nested helpers make progress,
//  * parallelFor() is deterministic about failures: if several indices
//    throw, the exception of the *lowest* index is rethrown, regardless of
//    execution interleaving.
//
// The pool itself never imposes an ordering on task side effects; callers
// that need bit-identical results against a sequential run (see
// core::Toolchain) must write into per-index slots and reduce in index
// order afterwards.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace argo::support {

class ThreadPool {
 public:
  /// `threads == 0` uses the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues `fn` and returns a future for its result. Tasks submitted
  /// from one thread in sequence run in FIFO order on a 1-thread pool.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs `fn(i)` for every i in [0, n), blocking until all complete. The
  /// calling thread helps execute tasks. If any index throws, the
  /// exception thrown by the lowest such index is rethrown after the whole
  /// batch has drained (no index is skipped because another failed).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  /// Pops from `self`'s queue front, else steals from another queue's
  /// back. Returns false when every queue is empty.
  bool tryRunOne(std::size_t self);
  void workerLoop(std::size_t index);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wakeMutex_;
  std::condition_variable wake_;
  std::size_t nextQueue_ = 0;  // round-robin submit cursor (under wakeMutex_)
  bool stopping_ = false;
};

}  // namespace argo::support
