#include "support/graph.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <queue>

#include "support/diagnostics.h"
#include "support/metrics.h"
#include "support/parallel.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace argo::support {

namespace {

MetricCounter& nodesRunCounter() {
  static MetricCounter& counter =
      MetricsRegistry::global().counter("graph.nodes_run");
  return counter;
}

MetricCounter& nodesSkippedCounter() {
  static MetricCounter& counter =
      MetricsRegistry::global().counter("graph.nodes_skipped");
  return counter;
}

MetricCounter& readyWaitCounter() {
  static MetricCounter& counter =
      MetricsRegistry::global().counter("graph.ready_wait_us");
  return counter;
}

}  // namespace

TaskGraph::NodeId TaskGraph::addNode(std::string name,
                                     std::function<void()> fn) {
  if (!fn) {
    throw ToolchainError("support::TaskGraph: node '" + name +
                         "' has no body");
  }
  nodes_.push_back(Node{std::move(name), std::move(fn), {}, 0});
  return nodes_.size() - 1;
}

void TaskGraph::addEdge(NodeId from, NodeId to) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw ToolchainError(
        "support::TaskGraph: edge references an unknown node id");
  }
  if (from == to) {
    throw ToolchainError("support::TaskGraph: self-edge on node '" +
                         nodes_[from].name + "'");
  }
  std::vector<NodeId>& successors = nodes_[from].successors;
  if (std::find(successors.begin(), successors.end(), to) !=
      successors.end()) {
    return;  // duplicate dependences are harmless; keep indegrees exact
  }
  successors.push_back(to);
  nodes_[to].indegree += 1;
}

const std::string& TaskGraph::nodeName(NodeId id) const {
  if (id >= nodes_.size()) {
    throw ToolchainError("support::TaskGraph: unknown node id");
  }
  return nodes_[id].name;
}

void TaskGraph::checkAcyclic() const {
  const std::size_t n = nodes_.size();
  std::vector<int> pending(n);
  std::vector<NodeId> stack;
  std::size_t released = 0;
  for (NodeId id = 0; id < n; ++id) {
    pending[id] = nodes_[id].indegree;
    if (pending[id] == 0) stack.push_back(id);
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    ++released;
    for (NodeId s : nodes_[id].successors) {
      if (--pending[s] == 0) stack.push_back(s);
    }
  }
  if (released == n) return;

  // Kahn's leftover (pending > 0) is the cycles plus everything only
  // reachable through them; peel nodes with no remaining successor inside
  // the leftover so the diagnostic names just the nodes on cyclic paths.
  std::vector<char> offending(n, 0);
  std::vector<int> liveSuccessors(n, 0);
  for (NodeId id = 0; id < n; ++id) offending[id] = pending[id] > 0;
  for (NodeId id = 0; id < n; ++id) {
    if (!offending[id]) continue;
    for (NodeId s : nodes_[id].successors) {
      if (offending[s]) liveSuccessors[id] += 1;
    }
  }
  stack.clear();
  for (NodeId id = 0; id < n; ++id) {
    if (offending[id] && liveSuccessors[id] == 0) stack.push_back(id);
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    offending[id] = 0;
    for (NodeId p = 0; p < n; ++p) {
      if (!offending[p]) continue;
      const std::vector<NodeId>& successors = nodes_[p].successors;
      if (std::find(successors.begin(), successors.end(), id) !=
              successors.end() &&
          --liveSuccessors[p] == 0) {
        stack.push_back(p);
      }
    }
  }

  std::string message =
      "support::TaskGraph::run: dependency cycle among nodes:";
  bool first = true;
  for (NodeId id = 0; id < n; ++id) {
    if (!offending[id]) continue;
    message += first ? " '" : ", '";
    message += nodes_[id].name;
    message += '\'';
    first = false;
  }
  throw ToolchainError(message);
}

void TaskGraph::run(int threads) {
  if (nodes_.empty()) return;
  checkAcyclic();
  const unsigned resolved = effectiveParallelism(threads, nodes_.size());
  if (resolved <= 1) {
    runInline();
    return;
  }
  if (inParallelTask()) {
    throw ToolchainError(
        "support::TaskGraph::run: nested pooled use from a parallel task; "
        "inner phases must run with threads = 1");
  }
  runPooled(resolved);
}

void TaskGraph::runInline() {
  // Deterministic reference order: topological, lowest ready node id
  // first. The pooled path is free to execute in any order — slot
  // discipline makes the outcomes identical — but a fixed inline order
  // keeps single-threaded runs exactly reproducible for debugging.
  const std::size_t n = nodes_.size();
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<NodeId>>
      ready;
  std::vector<int> pending(n);
  std::vector<char> poisoned(n, 0);
  for (NodeId id = 0; id < n; ++id) {
    pending[id] = nodes_[id].indegree;
    if (pending[id] == 0) ready.push(id);
  }

  std::exception_ptr error;
  NodeId errorId = n;
  while (!ready.empty()) {
    const NodeId id = ready.top();
    ready.pop();
    bool failed = false;
    if (!poisoned[id]) {
      nodesRunCounter().add();
      detail::ParallelTaskScope scope;
      TraceSpan span("graph", nodes_[id].name);
      try {
        nodes_[id].fn();
      } catch (...) {
        // Execution order is not id order (an edge may point from a high
        // id to a low one), so track the minimum failing id explicitly.
        if (id < errorId) {
          error = std::current_exception();
          errorId = id;
        }
        failed = true;
      }
    } else {
      nodesSkippedCounter().add();
    }
    for (NodeId s : nodes_[id].successors) {
      if (failed || poisoned[id]) poisoned[s] = 1;
      if (--pending[s] == 0) ready.push(s);
    }
  }
  if (error) std::rethrow_exception(error);
}

void TaskGraph::runPooled(unsigned resolved) {
  const std::size_t n = nodes_.size();

  struct RunState {
    std::mutex mutex;
    std::condition_variable wake;
    std::deque<TaskGraph::NodeId> ready;
    std::size_t finished = 0;  // executed or skipped
  };
  RunState state;
  // Countdown counters and poison marks live outside the mutex: finishing
  // a node decrements each successor's count with acq_rel, so the thread
  // that drops a count to zero has observed every predecessor's poison
  // store (and, transitively, its slot writes) before it publishes the
  // node to the ready queue.
  std::vector<std::atomic<int>> pending(n);
  std::vector<std::atomic<bool>> poisoned(n);
  std::vector<std::exception_ptr> errors(n);
  for (NodeId id = 0; id < n; ++id) {
    pending[id].store(nodes_[id].indegree, std::memory_order_relaxed);
    poisoned[id].store(false, std::memory_order_relaxed);
    if (nodes_[id].indegree == 0) state.ready.push_back(id);
  }

  // The drain loop every executor runs: pop a ready node, execute (or
  // skip) it, count down its successors, publish the newly ready ones.
  const auto drain = [&] {
    for (;;) {
      NodeId id;
      {
        std::unique_lock<std::mutex> lock(state.mutex);
        const auto readyOrDone = [&] {
          return !state.ready.empty() || state.finished == n;
        };
        if (!readyOrDone()) {
          // Ready-queue starvation, attributed: the time an executor
          // spends blocked here is the graph's critical-path debt.
          const auto waitBegin = std::chrono::steady_clock::now();
          state.wake.wait(lock, readyOrDone);
          readyWaitCounter().add(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - waitBegin)
                  .count()));
        }
        if (state.ready.empty()) return;  // all nodes accounted for
        id = state.ready.front();
        state.ready.pop_front();
      }

      const bool skip = poisoned[id].load(std::memory_order_relaxed);
      bool failed = false;
      if (!skip) {
        nodesRunCounter().add();
        detail::ParallelTaskScope scope;
        TraceSpan span("graph", nodes_[id].name);
        try {
          nodes_[id].fn();
        } catch (...) {
          errors[id] = std::current_exception();  // per-node slot
          failed = true;
        }
      } else {
        nodesSkippedCounter().add();
      }

      {
        std::lock_guard<std::mutex> lock(state.mutex);
        for (NodeId s : nodes_[id].successors) {
          if (failed || skip) {
            poisoned[s].store(true, std::memory_order_relaxed);
          }
          if (pending[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            state.ready.push_back(s);
          }
        }
        state.finished += 1;
      }
      // Wake sleepers for the newly ready nodes — and unconditionally on
      // every finish so the final node releases the waiting executors.
      state.wake.notify_all();
    }
  };

  // `resolved - 1` workers plus the helping caller give `resolved`
  // executors for `resolved` drain loops: the existing ThreadPool workers
  // are what drains the ready queue.
  ThreadPool pool(resolved - 1);
  pool.parallelFor(resolved, [&](std::size_t) { drain(); });

  for (NodeId id = 0; id < n; ++id) {
    if (errors[id]) std::rethrow_exception(errors[id]);
  }
}

}  // namespace argo::support
