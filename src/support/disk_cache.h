// Persistent on-disk tier for the content-hash stage cache.
//
// DiskCache maps (stage name, StageKey) to an opaque payload of bytes,
// stored one file per entry under a cache directory. The 128-bit keys are
// stable across processes, platforms and compiler versions (support/hash.h),
// so a directory populated by one process serves every later one: CLI
// re-invocations, whole CI runs, and the future argod service's warm
// starts. Layered under support::StageCache by core::ToolchainCache, the
// lookup order is memory -> disk -> compute, with the in-memory tier's
// single-flight guaranteeing that one process hits the disk (and the
// compute) at most once per key.
//
// Trust model — the hard part. A persisted entry is only usable if hostile
// on-disk state can never change a result byte. Every record is therefore
//   * versioned      — a format-version mismatch is a miss, not a parse;
//   * self-describing — the record embeds its stage name and full key, so
//                        a file renamed or copied between key slots can
//                        never serve the wrong value;
//   * length-framed  — the payload length is explicit and must match the
//                        file size exactly (truncation and trailing
//                        garbage are both detected);
//   * checksummed    — a 128-bit content hash over header + payload is
//                        verified before a single payload byte is
//                        interpreted.
// Any validation failure is counted in `rejects` and reported as a miss:
// the caller recomputes and (best effort) overwrites the bad record. A
// malformed cache directory can cost time, never correctness — loads
// degrade, they do not throw.
//
// Atomicity: records are published by writing to a process-unique `.tmp`
// file and then rename(2)-ing into place, so concurrent readers never see
// a partial record and concurrent writers (two evals sharing one
// directory) race only on which byte-identical record survives — stage
// values are pure functions of their keys, so last-rename-wins is
// harmless. Stale `.tmp` files from a crashed writer are inert: loads
// only ever open `.rec` paths. Eviction is deliberately out of scope:
// delete the directory (or any subset of it) at any time.
//
// ByteWriter/ByteReader are the shared payload codec: the same tagged,
// length-framed field discipline as support::Hasher (a tag byte per field,
// strings length-prefixed, integers little-endian), but written out
// instead of folded into a digest. Readers are bounds-checked and sticky:
// the first malformed field poisons the reader, every later read returns
// a default, and the caller checks ok() once at the end — so a truncated
// or bit-rotten payload can produce a rejected load, never a crash or a
// half-read value.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/hash.h"

namespace argo::support {

/// Bumped whenever the record framing or any stage payload encoding
/// changes shape. A version-skewed record is rejected on load, so caches
/// shared across builds (actions/cache, a long-lived argod directory)
/// degrade to recompute instead of misparsing. CI keys its cache restore
/// on this value (.github/workflows/ci.yml).
inline constexpr std::uint32_t kDiskCacheFormatVersion = 1;

/// Append-only encoder for record payloads. Fields are tagged and framed
/// exactly like support::Hasher feeds, so the encoded stream has the same
/// no-aliasing property the keys rely on.
class ByteWriter {
 public:
  ByteWriter& u64(std::uint64_t v) { tag('U'); raw64(v); return *this; }
  ByteWriter& i64(std::int64_t v) {
    tag('I');
    raw64(static_cast<std::uint64_t>(v));
    return *this;
  }
  ByteWriter& i32(std::int32_t v) {
    tag('W');
    raw64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
    return *this;
  }
  ByteWriter& f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    tag('F');
    raw64(bits);
    return *this;
  }
  ByteWriter& boolean(bool v) {
    tag('B');
    out_.push_back(v ? '\1' : '\0');
    return *this;
  }
  ByteWriter& str(std::string_view s) {
    tag('S');
    raw64(s.size());
    out_.append(s.data(), s.size());
    return *this;
  }
  ByteWriter& key(const StageKey& k) {
    tag('K');
    raw64(k.hi);
    raw64(k.lo);
    return *this;
  }

  [[nodiscard]] const std::string& bytes() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }

 private:
  void tag(char t) { out_.push_back(t); }
  /// Little-endian by construction — matches Hasher::raw64, so payloads
  /// are byte-identical across host endianness.
  void raw64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>(static_cast<unsigned char>(v >> (8 * i))));
    }
  }

  std::string out_;
};

/// Bounds-checked, sticky-failure decoder for ByteWriter streams. Every
/// read validates its tag and its length before touching a byte; the
/// first violation marks the reader failed and every subsequent read
/// returns a zero value. Consumers check ok() (and usually atEnd()) once
/// after reading the whole payload.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) noexcept : data_(data) {}

  [[nodiscard]] std::uint64_t u64() noexcept { return tagged64('U'); }
  [[nodiscard]] std::int64_t i64() noexcept {
    return static_cast<std::int64_t>(tagged64('I'));
  }
  [[nodiscard]] std::int32_t i32() noexcept {
    const std::int64_t wide = static_cast<std::int64_t>(tagged64('W'));
    if (wide < INT32_MIN || wide > INT32_MAX) {
      fail();
      return 0;
    }
    return static_cast<std::int32_t>(wide);
  }
  [[nodiscard]] double f64() noexcept {
    const std::uint64_t bits = tagged64('F');
    double v = 0.0;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  [[nodiscard]] bool boolean() noexcept {
    if (!expectTag('B') || at_ >= data_.size()) {
      fail();
      return false;
    }
    const char byte = data_[at_++];
    if (byte != '\0' && byte != '\1') {
      fail();
      return false;
    }
    return byte == '\1';
  }
  [[nodiscard]] std::string str() noexcept {
    if (!expectTag('S')) return {};
    const std::uint64_t n = raw64();
    if (failed_ || n > data_.size() - at_) {
      fail();
      return {};
    }
    std::string out(data_.substr(at_, static_cast<std::size_t>(n)));
    at_ += static_cast<std::size_t>(n);
    return out;
  }
  [[nodiscard]] StageKey stageKey() noexcept {
    StageKey k;
    if (!expectTag('K')) return k;
    k.hi = raw64();
    k.lo = raw64();
    if (failed_) return StageKey{};
    return k;
  }

  /// Guarded element count for a sequence about to be read: a corrupted
  /// count that cannot possibly fit in the remaining bytes (each element
  /// needs at least one tag byte) fails fast instead of driving a huge
  /// allocation.
  [[nodiscard]] std::size_t count() noexcept {
    const std::uint64_t n = u64();
    if (failed_ || n > data_.size() - at_) {
      fail();
      return 0;
    }
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  [[nodiscard]] bool atEnd() const noexcept {
    return !failed_ && at_ == data_.size();
  }

  /// Marks the stream failed from the consumer side — decoders call this
  /// when a structurally well-framed value is semantically invalid (e.g.
  /// an out-of-range enum), so the one ok() check covers both layers.
  void invalidate() noexcept { fail(); }

 private:
  void fail() noexcept { failed_ = true; }
  [[nodiscard]] bool expectTag(char t) noexcept {
    if (failed_ || at_ >= data_.size() || data_[at_] != t) {
      fail();
      return false;
    }
    ++at_;
    return true;
  }
  [[nodiscard]] std::uint64_t raw64() noexcept {
    if (failed_ || data_.size() - at_ < 8) {
      fail();
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[at_ + i]))
           << (8 * i);
    }
    at_ += 8;
    return v;
  }
  [[nodiscard]] std::uint64_t tagged64(char t) noexcept {
    if (!expectTag(t)) return 0;
    return raw64();
  }

  std::string_view data_;
  std::size_t at_ = 0;
  bool failed_ = false;
};

/// Lookup/publication counters of one DiskCache. `rejects` counts records
/// that existed but failed any validation step — framing, checksum,
/// version, key mismatch, or a payload its stage deserializer refused —
/// each of which degraded to a recompute. Unlike the in-memory hit/wait
/// split, `rejects` is determinism-relevant (a nonzero count means the
/// cache directory is damaged or version-skewed), so the CLIs surface it
/// on stderr unconditionally.
struct DiskCacheStats {
  std::uint64_t hits = 0;           ///< Valid record loaded.
  std::uint64_t misses = 0;         ///< No record on disk.
  std::uint64_t rejects = 0;        ///< Record present but invalid.
  std::uint64_t stores = 0;         ///< Records published.
  std::uint64_t storeFailures = 0;  ///< Best-effort writes that failed.
};

/// Content-addressed on-disk record store. Thread-safe: loads are
/// independent reads, stores publish atomically, counters are atomic.
/// All filesystem failures are absorbed into the stats — no method
/// throws on I/O problems.
class DiskCache {
 public:
  /// The directory is created lazily on first store; a missing or
  /// unreadable directory just makes every load a miss.
  explicit DiskCache(std::string dir);

  /// Returns the validated payload for (stage, key), or nullopt on
  /// miss/reject. Never throws; never returns a payload whose checksum
  /// did not verify.
  [[nodiscard]] std::optional<std::string> load(std::string_view stage,
                                                const StageKey& key);

  /// Publishes payload under (stage, key) via tmp-file + rename.
  /// Best-effort: failures only bump storeFailures.
  void store(std::string_view stage, const StageKey& key,
             std::string_view payload);

  /// Counted by core::ToolchainCache when a record passed the envelope
  /// validation but its stage payload failed to deserialize — the same
  /// "damaged cache" signal as a checksum mismatch, kept in one counter.
  void noteReject() noexcept {
    rejects_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& directory() const noexcept { return dir_; }
  [[nodiscard]] DiskCacheStats stats() const noexcept;

  /// The exact on-disk path of one record (tests inject faults through
  /// this; the layout is <dir>/<stage>/<32-hex-key>.rec).
  [[nodiscard]] std::string recordPath(std::string_view stage,
                                       const StageKey& key) const;

 private:
  std::string dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> rejects_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> storeFailures_{0};
};

}  // namespace argo::support
