#include "support/thread_pool.h"

#include <atomic>
#include <chrono>

#include "support/metrics.h"
#include "support/trace.h"

namespace argo::support {

namespace {

// Registry lookups once per process; the instruments themselves are one
// relaxed atomic op each (see support/metrics.h).
MetricCounter& poolTasksCounter() {
  static MetricCounter& counter =
      MetricsRegistry::global().counter("pool.tasks");
  return counter;
}

MetricCounter& poolStealsCounter() {
  static MetricCounter& counter =
      MetricsRegistry::global().counter("pool.steals");
  return counter;
}

MetricGauge& poolQueueDepthPeak() {
  static MetricGauge& gauge =
      MetricsRegistry::global().gauge("pool.queue_depth_peak");
  return gauge;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  queues_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wakeMutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(wakeMutex_);
    target = nextQueue_;
    nextQueue_ = (nextQueue_ + 1) % queues_.size();
  }
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
    depth = queues_[target]->tasks.size();
  }
  poolQueueDepthPeak().noteMax(depth);
  wake_.notify_all();
}

bool ThreadPool::tryRunOne(std::size_t self) {
  const std::size_t count = queues_.size();
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t q = (self + k) % count;
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(queues_[q]->mutex);
      if (queues_[q]->tasks.empty()) continue;
      if (q == self) {
        task = std::move(queues_[q]->tasks.front());
        queues_[q]->tasks.pop_front();
      } else {
        // Steal from the cold end of a victim's deque.
        task = std::move(queues_[q]->tasks.back());
        queues_[q]->tasks.pop_back();
      }
    }
    poolTasksCounter().add();
    // A pop from any queue but the executor's own counts as a steal; the
    // helping caller (self == count) has no queue, so all its pops do.
    if (q != self) poolStealsCounter().add();
    {
      TraceSpan span("pool", q == self ? "task" : "task(steal)");
      task();
    }
    return true;
  }
  return false;
}

void ThreadPool::workerLoop(std::size_t index) {
  for (;;) {
    if (tryRunOne(index)) continue;
    std::unique_lock<std::mutex> lock(wakeMutex_);
    if (stopping_) return;
    // Re-check under the lock: enqueue() signals after pushing, so a short
    // timed wait covers the push-before-sleep race without busy spinning.
    wake_.wait_for(lock, std::chrono::milliseconds(10));
  }
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  struct BatchState {
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable allDone;
    std::exception_ptr error;
    std::size_t errorIndex = 0;
  };
  auto state = std::make_shared<BatchState>();

  for (std::size_t i = 0; i < n; ++i) {
    enqueue([state, i, n, &fn] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error || i < state->errorIndex) {
          state->error = std::current_exception();
          state->errorIndex = i;
        }
      }
      if (state->done.fetch_add(1, std::memory_order_release) + 1 == n) {
        // Empty critical section: pairs with the caller's predicate check
        // under the same mutex, so the final wakeup cannot be lost.
        { std::lock_guard<std::mutex> lock(state->mutex); }
        state->allDone.notify_all();
      }
    });
  }

  // The caller works too (it is one of the batch's executors); once the
  // queues are drained it blocks until the in-flight tail finishes.
  // `fn` stays alive until done == n, so the reference capture above is
  // safe: every task runs before this function returns.
  for (;;) {
    if (state->done.load(std::memory_order_acquire) >= n) break;
    if (tryRunOne(queues_.size())) continue;
    std::unique_lock<std::mutex> lock(state->mutex);
    state->allDone.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) >= n;
    });
  }

  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace argo::support
