#include "support/hash.h"

#include <cstdio>

namespace argo::support {

std::string StageKey::text() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf);
}

}  // namespace argo::support
