#include "support/interval.h"

#include <algorithm>

namespace argo::support {

Interval Interval::intersect(const Interval& other) const noexcept {
  return Interval{std::max(lo, other.lo), std::min(hi, other.hi)};
}

void IntervalSet::insert(Interval iv) {
  if (iv.empty()) return;
  auto first = std::lower_bound(
      items_.begin(), items_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.hi < b.lo; });
  auto last = first;
  while (last != items_.end() && last->lo <= iv.hi) {
    iv.lo = std::min(iv.lo, last->lo);
    iv.hi = std::max(iv.hi, last->hi);
    ++last;
  }
  first = items_.erase(first, last);
  items_.insert(first, iv);
}

std::int64_t IntervalSet::coveredLength() const noexcept {
  std::int64_t total = 0;
  for (const Interval& iv : items_) total += iv.length();
  return total;
}

bool IntervalSet::overlaps(const Interval& iv) const noexcept {
  for (const Interval& item : items_) {
    if (item.overlaps(iv)) return true;
    if (item.lo >= iv.hi) break;
  }
  return false;
}

std::int64_t IntervalSet::overlapLength(const Interval& iv) const noexcept {
  std::int64_t total = 0;
  for (const Interval& item : items_) {
    total += item.intersect(iv).length();
    if (item.lo >= iv.hi) break;
  }
  return total;
}

}  // namespace argo::support
