#include "support/disk_cache.h"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <unistd.h>

#include "support/trace.h"

namespace argo::support {
namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'A', 'R', 'G', 'O', 'C', 'A', 'C', 'H'};

/// Envelope checksum over the header fields and the payload. Two-lane
/// FNV-1a via Hasher — the same 128-bit digest discipline as the keys,
/// strong enough to catch truncation and bit-rot (the threat model;
/// records are trusted-origin, not adversarial crypto inputs).
StageKey recordChecksum(std::string_view stage, const StageKey& key,
                        std::string_view payload) {
  Hasher h;
  h.str("disk-cache-record");
  h.u64(kDiskCacheFormatVersion);
  h.str(stage);
  h.key(key);
  h.str(payload);
  return h.finish();
}

/// Record image = fixed envelope around the payload:
///   magic(8) | u64 version | str stage | key | str payload | key checksum
/// using the same tagged framing as the payloads themselves, so one
/// reader validates everything.
std::string encodeRecord(std::string_view stage, const StageKey& key,
                         std::string_view payload) {
  std::string out(kMagic, sizeof(kMagic));
  ByteWriter w;
  w.u64(kDiskCacheFormatVersion);
  w.str(stage);
  w.key(key);
  w.str(payload);
  w.key(recordChecksum(stage, key, payload));
  out += w.bytes();
  return out;
}

/// Reads a whole file; nullopt on any I/O error. Size is not trusted —
/// the envelope validation decides whether the bytes mean anything.
std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return data;
}

}  // namespace

DiskCache::DiskCache(std::string dir) : dir_(std::move(dir)) {}

std::string DiskCache::recordPath(std::string_view stage,
                                  const StageKey& key) const {
  std::string path = dir_;
  path += '/';
  path.append(stage.data(), stage.size());
  path += '/';
  path += key.text();
  path += ".rec";
  return path;
}

std::optional<std::string> DiskCache::load(std::string_view stage,
                                           const StageKey& key) {
  TraceSpan span("disk", "load");
  if (span.active()) span.arg("stage", std::string(stage));
  std::optional<std::string> data;
  try {
    data = readFile(recordPath(stage, key));
  } catch (...) {
    data = std::nullopt;
  }
  if (!data) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    span.arg("disk", "miss");
    return std::nullopt;
  }

  // Validation ladder: size -> magic -> version -> stage -> key ->
  // payload frame -> checksum. Each rung rejects without touching
  // anything the later rungs would read.
  const auto reject = [&]() -> std::optional<std::string> {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    span.arg("disk", "reject");
    if (TraceRecorder::enabled()) {
      TraceRecorder::global().recordInstant(
          "disk", "reject", {TraceArg{"stage", std::string(stage)}});
    }
    return std::nullopt;
  };
  if (data->size() < sizeof(kMagic) ||
      data->compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return reject();
  }
  ByteReader r(std::string_view(*data).substr(sizeof(kMagic)));
  if (r.u64() != kDiskCacheFormatVersion) return reject();
  if (r.str() != stage) return reject();
  if (!(r.stageKey() == key)) return reject();
  std::string payload = r.str();
  const StageKey storedSum = r.stageKey();
  if (!r.atEnd()) return reject();
  if (!(storedSum == recordChecksum(stage, key, payload))) return reject();

  hits_.fetch_add(1, std::memory_order_relaxed);
  span.arg("disk", "hit");
  return payload;
}

void DiskCache::store(std::string_view stage, const StageKey& key,
                      std::string_view payload) {
  TraceSpan span("disk", "store");
  if (span.active()) span.arg("stage", std::string(stage));
  const auto failed = [&] {
    storeFailures_.fetch_add(1, std::memory_order_relaxed);
    span.arg("disk", "store_failure");
  };
  try {
    const std::string finalPath = recordPath(stage, key);
    std::error_code ec;
    fs::create_directories(fs::path(finalPath).parent_path(), ec);
    if (ec) {
      failed();
      return;
    }

    // Unique per (process, attempt): concurrent writers in any number
    // of processes and threads never collide on the tmp name, and the
    // rename below is atomic on POSIX — readers see the old record or
    // the new one, never a prefix.
    static std::atomic<std::uint64_t> tmpSerial{0};
    std::string tmpPath = finalPath;
    tmpPath += '.';
    tmpPath += std::to_string(static_cast<unsigned long long>(::getpid()));
    tmpPath += '.';
    tmpPath +=
        std::to_string(tmpSerial.fetch_add(1, std::memory_order_relaxed));
    tmpPath += ".tmp";

    {
      std::ofstream out(tmpPath, std::ios::binary | std::ios::trunc);
      if (!out) {
        failed();
        return;
      }
      const std::string record = encodeRecord(stage, key, payload);
      out.write(record.data(),
                static_cast<std::streamsize>(record.size()));
      out.flush();
      if (!out) {
        out.close();
        std::remove(tmpPath.c_str());
        failed();
        return;
      }
    }
    if (std::rename(tmpPath.c_str(), finalPath.c_str()) != 0) {
      std::remove(tmpPath.c_str());
      failed();
      return;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    failed();
  }
}

DiskCacheStats DiskCache::stats() const noexcept {
  DiskCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.rejects = rejects_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.storeFailures = storeFailures_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace argo::support
