// Atomic monotone-min incumbent bound for parallel branch-and-bound.
//
// This is the one sanctioned exception to the determinism layer's
// "per-index slots, no shared state" pattern (docs/ARCHITECTURE.md,
// "Determinism contract"): worker tasks running under support::parallelFor
// may share a SharedIncumbent, because the only thing it can do is shrink.
//
// Why sharing it is safe under the contract:
//
//  * The value is *monotone*: offer() only ever lowers it, so at any moment
//    every reader observes some value >= the final minimum. Which value a
//    reader observes is racy — that is the point — but every observable
//    value is a sound (conservative) upper bound on the optimum.
//  * Callers may use the observed value only to *prune provably
//    non-improving work* with a strict comparison (skip a subtree only
//    when its lower bound is strictly greater than the incumbent). Work
//    skipped that way cannot contain the optimum, nor anything tying it,
//    so the search result is independent of the race (the full proof lives
//    at the use site, src/sched/bnb.cpp).
//  * It must never carry results. Schedules, placements, tables all still
//    go through per-index slots + ladder-order reduction; the incumbent is
//    a bound, not an answer.
//
// Memory order is relaxed throughout: no data is published *through* the
// incumbent (results travel via the pool's per-index slots, which the pool
// join synchronizes), so only the monotone value itself matters.
#pragma once

#include <atomic>
#include <cstdint>

namespace argo::support {

class SharedIncumbent {
 public:
  explicit SharedIncumbent(std::int64_t initial) noexcept : value_(initial) {}

  SharedIncumbent(const SharedIncumbent&) = delete;
  SharedIncumbent& operator=(const SharedIncumbent&) = delete;

  /// Current bound. Racy but monotone: never larger than any previously
  /// observed value, never smaller than the final minimum.
  [[nodiscard]] std::int64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  /// Lowers the bound to `candidate` if it improves on the current value.
  /// Returns true when this call strictly lowered the bound.
  bool offer(std::int64_t candidate) noexcept {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (candidate < current) {
      if (value_.compare_exchange_weak(current, candidate,
                                       std::memory_order_relaxed)) {
        return true;
      }
      // compare_exchange_weak reloaded `current`; retry while improving.
    }
    return false;
  }

 private:
  std::atomic<std::int64_t> value_;
};

}  // namespace argo::support
