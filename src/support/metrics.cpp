#include "support/metrics.h"

namespace argo::support {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricCounter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<MetricCounter>())
             .first;
  }
  return *it->second;
}

MetricGauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<MetricGauge>())
             .first;
  }
  return *it->second;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(counters_.size() + gauges_.size());
  // Merge the two name-sorted maps so the snapshot is sorted overall.
  auto c = counters_.begin();
  auto g = gauges_.begin();
  while (c != counters_.end() || g != gauges_.end()) {
    const bool takeCounter =
        g == gauges_.end() ||
        (c != counters_.end() && c->first < g->first);
    if (takeCounter) {
      out.push_back(MetricSample{c->first, c->second->value(), false});
      ++c;
    } else {
      out.push_back(MetricSample{g->first, g->second->value(), true});
      ++g;
    }
  }
  return out;
}

void MetricsRegistry::resetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->value_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace argo::support
