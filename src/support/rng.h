// Deterministic random number generation for simulation and property tests.
//
// The simulator and the property-based test suites need reproducible random
// streams. SplitMix64 is small, fast, and has well-understood statistical
// quality; determinism across platforms matters more here than cryptographic
// strength.
#pragma once

#include <cstdint>

namespace argo::support {

/// SplitMix64 PRNG. Deterministic across platforms for a given seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept
      : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniformDouble() noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept;

 private:
  std::uint64_t state_;
};

}  // namespace argo::support
