#include "sched/scheduler.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace argo::sched {

using support::ToolchainError;

Scheduler::Scheduler(const htg::TaskGraph& graph, const adl::Platform& platform,
                     const SchedOptions& options)
    : graph_(graph),
      platform_(platform),
      timings_(computeTaskTimings(graph, platform, options.parallelThreads)),
      succ_(graph.successors()),
      pred_(graph.predecessors()) {}

Scheduler::Scheduler(const htg::TaskGraph& graph, const adl::Platform& platform,
                     std::vector<TaskTiming> timings)
    : graph_(graph),
      platform_(platform),
      timings_(std::move(timings)),
      succ_(graph.successors()),
      pred_(graph.predecessors()) {}

int Scheduler::effectiveCores(const SchedOptions& options) const {
  if (options.coreLimit <= 0) return platform_.coreCount();
  return std::min(options.coreLimit, platform_.coreCount());
}

Schedule Scheduler::run(const SchedOptions& options) const {
  if (graph_.tasks.empty()) {
    throw ToolchainError("scheduler: empty task graph");
  }
  const SchedContext ctx{graph_,  platform_, timings_,
                         succ_,   pred_,     effectiveCores(options)};
  return policyOrThrow(options.policy).run(ctx, options);
}

}  // namespace argo::sched
