#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "support/diagnostics.h"
#include "support/interval.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace argo::sched {

using support::ToolchainError;

const char* policyName(Policy policy) noexcept {
  switch (policy) {
    case Policy::Heft: return "heft";
    case Policy::BranchAndBound: return "branch_and_bound";
    case Policy::Annealed: return "annealed";
    case Policy::ContentionOblivious: return "contention_oblivious";
  }
  return "?";
}

Scheduler::Scheduler(const htg::TaskGraph& graph, const adl::Platform& platform,
                     int timingThreads)
    : graph_(graph),
      platform_(platform),
      timings_(computeTaskTimings(graph, platform, timingThreads)),
      succ_(graph.successors()),
      pred_(graph.predecessors()) {}

int Scheduler::effectiveCores(const SchedOptions& options) const {
  if (options.coreLimit <= 0) return platform_.coreCount();
  return std::min(options.coreLimit, platform_.coreCount());
}

namespace {

/// Dependence edge lookup: (from, to) -> edge.
struct EdgeIndex {
  explicit EdgeIndex(const htg::TaskGraph& graph) {
    for (const htg::Dep& d : graph.deps) {
      edges.emplace(key(d.from, d.to), &d);
    }
  }
  [[nodiscard]] const htg::Dep* find(int from, int to) const {
    auto it = edges.find(key(from, to));
    return it == edges.end() ? nullptr : it->second;
  }
  static std::uint64_t key(int from, int to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }
  std::map<std::uint64_t, const htg::Dep*> edges;
};

/// Upward ranks: rank(t) = avgWcet(t) + max over successors of
/// (avgComm(edge) + rank(succ)). Decreasing rank is a topological order.
std::vector<double> upwardRanks(const htg::TaskGraph& graph,
                                const std::vector<TaskTiming>& timings,
                                const adl::Platform& platform,
                                const std::vector<std::vector<int>>& succ) {
  const std::size_t n = graph.tasks.size();
  std::vector<double> avgW(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& w = timings[i].wcetByTile;
    avgW[i] = static_cast<double>(std::accumulate(w.begin(), w.end(),
                                                  Cycles{0})) /
              static_cast<double>(w.size());
  }
  EdgeIndex edges(graph);
  // Representative cross-tile pair for communication averaging.
  const int tileA = 0;
  const int tileB = platform.coreCount() - 1;
  std::vector<double> rank(n, -1.0);
  // Process in reverse topological order via DFS.
  std::vector<int> state(n, 0);
  std::vector<int> stack;
  for (int root = 0; root < static_cast<int>(n); ++root) {
    if (state[static_cast<std::size_t>(root)] != 0) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const int t = stack.back();
      if (state[static_cast<std::size_t>(t)] == 0) {
        state[static_cast<std::size_t>(t)] = 1;
        for (int s : succ[static_cast<std::size_t>(t)]) {
          if (state[static_cast<std::size_t>(s)] == 0) stack.push_back(s);
        }
        continue;
      }
      stack.pop_back();
      if (state[static_cast<std::size_t>(t)] == 2) continue;
      state[static_cast<std::size_t>(t)] = 2;
      double best = 0.0;
      for (int s : succ[static_cast<std::size_t>(t)]) {
        const htg::Dep* dep = edges.find(t, s);
        const double comm =
            dep == nullptr
                ? 0.0
                : static_cast<double>(commCost(platform, *dep, tileA, tileB)) /
                      2.0;
        best = std::max(best, comm + rank[static_cast<std::size_t>(s)]);
      }
      rank[static_cast<std::size_t>(t)] = avgW[t] + best;
    }
  }
  return rank;
}

std::vector<int> priorityOrder(const std::vector<double>& rank) {
  std::vector<int> order(rank.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (rank[static_cast<std::size_t>(a)] != rank[static_cast<std::size_t>(b)]) {
      return rank[static_cast<std::size_t>(a)] >
             rank[static_cast<std::size_t>(b)];
    }
    return a < b;  // deterministic tie-break
  });
  return order;
}

/// Shared state of the greedy list-scheduling placement loop.
class ListPlacer {
 public:
  ListPlacer(const htg::TaskGraph& graph, const adl::Platform& platform,
             const std::vector<TaskTiming>& timings,
             const std::vector<std::vector<int>>& pred, int cores,
             bool interferenceAware)
      : graph_(graph),
        platform_(platform),
        timings_(timings),
        pred_(pred),
        edges_(graph),
        cores_(cores),
        interferenceAware_(interferenceAware) {
    placements_.resize(graph.tasks.size());
    tileAvail_.assign(static_cast<std::size_t>(cores), 0);
    tileOrder_.resize(static_cast<std::size_t>(cores));
  }

  /// Earliest start of `task` on `tile` given already-placed predecessors.
  [[nodiscard]] Cycles earliestStart(int task, int tile) const {
    Cycles est = tileAvail_[static_cast<std::size_t>(tile)];
    for (int p : pred_[static_cast<std::size_t>(task)]) {
      const htg::Dep* dep = edges_.find(p, task);
      const Placement& pp = placements_[static_cast<std::size_t>(p)];
      const Cycles comm =
          dep == nullptr ? 0 : commCost(platform_, *dep, pp.tile, tile);
      est = std::max(est, pp.finish + comm);
    }
    return est;
  }

  [[nodiscard]] Cycles baseCost(int task, int tile) const {
    return timings_[static_cast<std::size_t>(task)]
        .wcetByTile[static_cast<std::size_t>(tile)];
  }

  /// Cost of `task` on `tile` starting at `start`, including the
  /// interference estimate when enabled.
  [[nodiscard]] Cycles placedCost(int task, int tile, Cycles start) const {
    const Cycles base = baseCost(task, tile);
    if (!interferenceAware_) return base;
    const std::int64_t accesses =
        timings_[static_cast<std::size_t>(task)].sharedAccesses;
    if (accesses == 0) return base;
    // Contenders: tiles whose currently-placed work overlaps the window
    // this task would occupy (including this task's tile itself).
    const support::Interval window{start, start + base};
    int contenders = 1;
    for (int t = 0; t < cores_; ++t) {
      if (t == tile) continue;
      for (int other : tileOrder_[static_cast<std::size_t>(t)]) {
        const Placement& op = placements_[static_cast<std::size_t>(other)];
        if (window.overlaps(support::Interval{op.start, op.finish})) {
          ++contenders;
          break;
        }
      }
    }
    const Cycles extra = platform_.sharedAccessWorstCase(tile, contenders) -
                         platform_.sharedAccessBase(tile);
    return base + accesses * extra;
  }

  void place(int task, int tile, Cycles start, Cycles cost) {
    Placement p;
    p.task = task;
    p.tile = tile;
    p.start = start;
    p.finish = start + cost;
    placements_[static_cast<std::size_t>(task)] = p;
    tileAvail_[static_cast<std::size_t>(tile)] = p.finish;
    tileOrder_[static_cast<std::size_t>(tile)].push_back(task);
  }

  [[nodiscard]] Schedule finish(std::string policy) const {
    Schedule s;
    s.placements = placements_;
    s.tileOrder.assign(
        static_cast<std::size_t>(platform_.coreCount()), {});
    for (int t = 0; t < cores_; ++t) {
      s.tileOrder[static_cast<std::size_t>(t)] =
          tileOrder_[static_cast<std::size_t>(t)];
    }
    for (const Placement& p : placements_) {
      s.makespan = std::max(s.makespan, p.finish);
    }
    for (const auto& order : s.tileOrder) {
      if (!order.empty()) ++s.tilesUsed;
    }
    s.policy = std::move(policy);
    return s;
  }

  [[nodiscard]] int cores() const noexcept { return cores_; }

 private:
  const htg::TaskGraph& graph_;
  const adl::Platform& platform_;
  const std::vector<TaskTiming>& timings_;
  const std::vector<std::vector<int>>& pred_;
  EdgeIndex edges_;
  int cores_;
  bool interferenceAware_;
  std::vector<Placement> placements_;
  std::vector<Cycles> tileAvail_;
  std::vector<std::vector<int>> tileOrder_;
};

}  // namespace

Schedule Scheduler::runHeft(const SchedOptions& options,
                            bool interferenceAware) const {
  const int cores = effectiveCores(options);
  const std::vector<double> rank =
      upwardRanks(graph_, timings_, platform_, succ_);
  ListPlacer placer(graph_, platform_, timings_, pred_, cores,
                    interferenceAware);
  for (int task : priorityOrder(rank)) {
    int bestTile = 0;
    Cycles bestStart = 0;
    Cycles bestCost = 0;
    Cycles bestEft = std::numeric_limits<Cycles>::max();
    for (int t = 0; t < cores; ++t) {
      const Cycles est = placer.earliestStart(task, t);
      const Cycles cost = placer.placedCost(task, t, est);
      const Cycles eft = est + cost;
      if (eft < bestEft) {
        bestEft = eft;
        bestTile = t;
        bestStart = est;
        bestCost = cost;
      }
    }
    placer.place(task, bestTile, bestStart, bestCost);
  }
  return placer.finish(interferenceAware ? "heft" : "contention_oblivious");
}

Schedule Scheduler::scheduleWithAssignment(const std::vector<int>& tileOf,
                                           const SchedOptions& options) const {
  const int cores = effectiveCores(options);
  const std::vector<double> rank =
      upwardRanks(graph_, timings_, platform_, succ_);
  ListPlacer placer(graph_, platform_, timings_, pred_, cores,
                    options.interferenceAware);
  for (int task : priorityOrder(rank)) {
    const int tile = tileOf[static_cast<std::size_t>(task)];
    const Cycles est = placer.earliestStart(task, tile);
    const Cycles cost = placer.placedCost(task, tile, est);
    placer.place(task, tile, est, cost);
  }
  return placer.finish("annealed");
}

Schedule Scheduler::runAnnealed(const SchedOptions& options) const {
  Schedule seed = runHeft(options, options.interferenceAware);
  const int cores = effectiveCores(options);
  const std::size_t n = graph_.tasks.size();
  std::vector<int> seedAssignment(n);
  for (std::size_t i = 0; i < n; ++i) {
    seedAssignment[i] = seed.placements[i].tile;
  }

  // One independent annealing chain. Chain state is entirely local (the
  // Scheduler is only read), so chains run concurrently; chain r's random
  // stream is fixed by `options.seed + r` alone, which keeps every chain's
  // outcome reproducible regardless of thread count or interleaving.
  struct ChainResult {
    Cycles makespan = 0;
    std::vector<int> assignment;
  };
  const auto runChain = [&](std::uint64_t chainSeed) {
    ChainResult out;
    out.makespan = seed.makespan;
    out.assignment = seedAssignment;
    std::vector<int> assignment = seedAssignment;
    Cycles current = seed.makespan;

    support::Rng rng(chainSeed);
    double temperature =
        options.saInitialTemp * static_cast<double>(seed.makespan);
    const double cooling =
        std::pow(0.01, 1.0 / std::max(1, options.saIterations));

    for (int iter = 0; iter < options.saIterations; ++iter) {
      const std::size_t task =
          static_cast<std::size_t>(rng.uniformInt(0, static_cast<int>(n) - 1));
      const int oldTile = assignment[task];
      const int newTile = static_cast<int>(rng.uniformInt(0, cores - 1));
      if (newTile == oldTile) continue;
      assignment[task] = newTile;
      const Schedule candidate = scheduleWithAssignment(assignment, options);
      const double delta = static_cast<double>(candidate.makespan) -
                           static_cast<double>(current);
      const bool accept =
          delta <= 0.0 ||
          rng.uniformDouble() < std::exp(-delta / std::max(1.0, temperature));
      if (accept) {
        current = candidate.makespan;
        if (candidate.makespan < out.makespan) {
          out.makespan = candidate.makespan;
          out.assignment = assignment;
        }
      } else {
        assignment[task] = oldTile;
      }
      temperature *= cooling;
    }
    return out;
  };

  // Restarts write into per-chain slots; the reduction below walks them in
  // ladder order (strict `<`, lowest chain wins ties), so the selected
  // assignment is bit-identical to running the chains one after another.
  const std::size_t restarts =
      static_cast<std::size_t>(std::max(1, options.saRestarts));
  std::vector<ChainResult> chains(restarts);
  support::parallelFor(restarts, options.parallelThreads, [&](std::size_t r) {
    chains[r] = runChain(options.seed + r);
  });

  Cycles bestMakespan = seed.makespan;
  const std::vector<int>* best = &seedAssignment;
  for (const ChainResult& chain : chains) {
    if (chain.makespan < bestMakespan) {
      bestMakespan = chain.makespan;
      best = &chain.assignment;
    }
  }

  Schedule result = scheduleWithAssignment(*best, options);
  // Annealing never returns something worse than its seed.
  if (result.makespan > seed.makespan) {
    seed.policy = "annealed";
    return seed;
  }
  result.policy = "annealed";
  return result;
}

namespace {

/// Remaining critical path per task (min-WCET weights, no communication):
/// an admissible lower bound for branch-and-bound pruning.
std::vector<Cycles> remainingCriticalPath(
    const htg::TaskGraph& graph, const std::vector<TaskTiming>& timings,
    const std::vector<std::vector<int>>& succ) {
  const std::size_t n = graph.tasks.size();
  std::vector<Cycles> minW(n);
  for (std::size_t i = 0; i < n; ++i) {
    minW[i] = *std::min_element(timings[i].wcetByTile.begin(),
                                timings[i].wcetByTile.end());
  }
  std::vector<Cycles> cp(n, -1);
  // Reverse topological accumulation (iterate until stable; graphs are
  // small when BnB is enabled).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      Cycles tail = 0;
      bool ready = true;
      for (int s : succ[i]) {
        if (cp[static_cast<std::size_t>(s)] < 0) {
          ready = false;
          break;
        }
        tail = std::max(tail, cp[static_cast<std::size_t>(s)]);
      }
      if (!ready) continue;
      const Cycles value = minW[i] + tail;
      if (value != cp[i]) {
        cp[i] = value;
        changed = true;
      }
    }
  }
  return cp;
}

}  // namespace

Schedule Scheduler::runBnB(const SchedOptions& options) const {
  const std::size_t n = graph_.tasks.size();
  if (static_cast<int>(n) > options.bnbTaskLimit) {
    // Exact search is hopeless at this size; fall back to the heuristic
    // (documented behaviour, mirrored in the ARGO "exact + heuristics"
    // combination).
    Schedule fallback = runHeft(options, options.interferenceAware);
    fallback.policy = "branch_and_bound(fallback=heft)";
    return fallback;
  }
  const int cores = effectiveCores(options);
  EdgeIndex edges(graph_);
  const std::vector<Cycles> cp =
      remainingCriticalPath(graph_, timings_, succ_);

  // Seed incumbent with HEFT.
  Schedule incumbent = runHeft(options, options.interferenceAware);
  Cycles bestMakespan = incumbent.makespan;

  struct Frame {
    std::vector<Placement> placements;
    std::vector<Cycles> tileAvail;
    std::uint32_t done = 0;  // bitmask of scheduled tasks
    Cycles makespan = 0;
    Cycles workLeft = 0;
  };

  Cycles totalMinWork = 0;
  std::vector<Cycles> minW(n);
  for (std::size_t i = 0; i < n; ++i) {
    minW[i] = *std::min_element(timings_[i].wcetByTile.begin(),
                                timings_[i].wcetByTile.end());
    totalMinWork += minW[i];
  }

  Frame root;
  root.placements.resize(n);
  root.tileAvail.assign(static_cast<std::size_t>(cores), 0);
  root.workLeft = totalMinWork;

  std::vector<Frame> stack;
  stack.push_back(std::move(root));
  std::int64_t expanded = 0;
  bool budgetExhausted = false;

  while (!stack.empty()) {
    if (++expanded > options.bnbNodeBudget) {
      budgetExhausted = true;
      break;
    }
    Frame frame = std::move(stack.back());
    stack.pop_back();

    if (frame.done == (1u << n) - 1u) {
      if (frame.makespan < bestMakespan) {
        bestMakespan = frame.makespan;
        incumbent.placements = frame.placements;
        incumbent.makespan = frame.makespan;
      }
      continue;
    }

    // Lower bounds: critical path of any unscheduled task, and total
    // remaining work spread over all cores.
    Cycles lb = frame.makespan;
    for (std::size_t i = 0; i < n; ++i) {
      if ((frame.done & (1u << i)) == 0) lb = std::max(lb, cp[i]);
    }
    const Cycles minAvail =
        *std::min_element(frame.tileAvail.begin(), frame.tileAvail.end());
    lb = std::max(lb, minAvail + frame.workLeft / cores);
    if (lb >= bestMakespan) continue;

    for (std::size_t task = 0; task < n; ++task) {
      if ((frame.done & (1u << task)) != 0) continue;
      bool ready = true;
      for (int p : pred_[task]) {
        if ((frame.done & (1u << p)) == 0) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;

      Cycles prevAvail = -1;
      for (int tile = 0; tile < cores; ++tile) {
        // Symmetry breaking: identical idle tiles yield identical
        // subtrees; skip repeats (valid on homogeneous platforms; on
        // heterogeneous ones availabilities rarely tie, so the loss is
        // nil).
        if (frame.tileAvail[static_cast<std::size_t>(tile)] == prevAvail) {
          continue;
        }
        prevAvail = frame.tileAvail[static_cast<std::size_t>(tile)];

        Cycles est = frame.tileAvail[static_cast<std::size_t>(tile)];
        for (int p : pred_[task]) {
          const htg::Dep* dep = edges.find(p, static_cast<int>(task));
          const Placement& pp = frame.placements[static_cast<std::size_t>(p)];
          const Cycles comm =
              dep == nullptr ? 0 : commCost(platform_, *dep, pp.tile, tile);
          est = std::max(est, pp.finish + comm);
        }
        const Cycles cost =
            timings_[task].wcetByTile[static_cast<std::size_t>(tile)];
        Frame child = frame;
        Placement p;
        p.task = static_cast<int>(task);
        p.tile = tile;
        p.start = est;
        p.finish = est + cost;
        child.placements[task] = p;
        child.tileAvail[static_cast<std::size_t>(tile)] = p.finish;
        child.done |= (1u << task);
        child.makespan = std::max(child.makespan, p.finish);
        child.workLeft -= minW[task];
        if (child.makespan < bestMakespan) stack.push_back(std::move(child));
      }
    }
  }

  // Rebuild tile order / usage from placements.
  Schedule result;
  result.placements = incumbent.placements;
  result.makespan = bestMakespan;
  result.tileOrder.assign(static_cast<std::size_t>(platform_.coreCount()), {});
  std::vector<int> byStart(n);
  std::iota(byStart.begin(), byStart.end(), 0);
  std::sort(byStart.begin(), byStart.end(), [&](int a, int b) {
    return result.placements[static_cast<std::size_t>(a)].start <
           result.placements[static_cast<std::size_t>(b)].start;
  });
  for (int t : byStart) {
    result.tileOrder[static_cast<std::size_t>(
                         result.placements[static_cast<std::size_t>(t)].tile)]
        .push_back(t);
  }
  for (const auto& order : result.tileOrder) {
    if (!order.empty()) ++result.tilesUsed;
  }
  result.policy = budgetExhausted ? "branch_and_bound(budget)"
                                  : "branch_and_bound";
  return result;
}

Schedule Scheduler::run(const SchedOptions& options) const {
  if (graph_.tasks.empty()) {
    throw ToolchainError("scheduler: empty task graph");
  }
  if (graph_.tasks.size() > 31) {
    // Bitmask-based exact search is limited to 31 tasks; other policies
    // have no such limit.
    if (options.policy == Policy::BranchAndBound &&
        static_cast<int>(graph_.tasks.size()) <= options.bnbTaskLimit) {
      throw ToolchainError("branch-and-bound limited to 31 tasks");
    }
  }
  switch (options.policy) {
    case Policy::Heft:
      return runHeft(options, options.interferenceAware);
    case Policy::ContentionOblivious:
      return runHeft(options, /*interferenceAware=*/false);
    case Policy::BranchAndBound:
      return runBnB(options);
    case Policy::Annealed:
      return runAnnealed(options);
  }
  throw ToolchainError("unknown scheduling policy");
}

}  // namespace argo::sched
