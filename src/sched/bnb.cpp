#include "sched/bnb.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "sched/list_placement.h"
#include "sched/policy.h"
#include "support/parallel.h"
#include "support/shared_incumbent.h"

namespace argo::sched {

namespace {

// ---------------------------------------------------------------------------
// Why the pooled search is bit-identical to the classic sequential DFS
// ---------------------------------------------------------------------------
//
// The classic search is a single depth-first stack: children are generated
// in (task ascending, tile ascending) order and pushed, so subtrees are
// explored newest-first; a node is pruned when its admissible lower bound
// `lb` reaches the best complete makespan seen so far (strict improvements
// only), which starts at the HEFT seed. Its result is the *first complete
// schedule, in that traversal order, attaining the search-space optimum*
// (or the seed incumbent when nothing beats it).
//
// The split search partitions the same tree at a frontier depth d: every
// surviving node with d placed tasks becomes the root of an independent
// subtree search. Three choices make the combined result identical to the
// classic traversal, for every depth and thread count:
//
//  1. *Ladder order equals classic visit order.* The frontier is generated
//     level by level, children appended in (task, tile) ascending order,
//     which lists the depth-d nodes in ascending lexicographic order of
//     their construction paths; the classic stack visits them in exactly
//     the reverse order (descending, newest-first). Reversing the list and
//     reducing the per-subtree results in ladder order (strict `<`, first
//     optimum wins) therefore selects the same subtree whose first-in-DFS
//     attainer the classic search would have kept. Frontier generation
//     prunes only against the fixed seed bound; nodes the classic search
//     would additionally prune with its evolving bound have subtree minima
//     no smaller than some earlier-in-ladder subtree's result, so the
//     ladder never selects them either.
//
//  2. *Subtree results depend only on local, deterministic state.* Each
//     subtree records a schedule only when it strictly improves on its own
//     `localBest`, which starts at the seed makespan. An induction over
//     the DFS shows the subtree's final record is the first (in DFS order)
//     complete schedule attaining the subtree minimum m_i, *independent of
//     the initial bound* as long as that bound exceeds m_i: on the path to
//     that first attainer every lower bound is <= m_i < localBest (no
//     earlier attainer exists to lower localBest to m_i), so no
//     deterministic prune can cut it.
//
//  3. *The shared incumbent prunes strictly.* Subtrees additionally skip a
//     node when `lb > shared.get()`. Every value the SharedIncumbent ever
//     holds is the makespan of some complete schedule, hence >= the global
//     optimum; the bound is monotone non-increasing, and which value a
//     reader sees is the only racy quantity. A node skipped this way has
//     every completion >= lb > shared >= optimum — strictly worse than the
//     optimum, so it can contain neither the optimum nor anything tying
//     it. In particular the path to the first attainer of any subtree with
//     m_i == optimum has lb <= optimum <= shared and is never skipped:
//     every such subtree still reports its deterministic record, and the
//     ladder picks the same one regardless of interleaving. (A non-strict
//     `lb >= shared` would skip *tying* completions and make the recorded
//     placements depend on the race — this strictness is load-bearing.)
//
// Budget is the one caveat: per-subtree budgets are fixed up front (they
// sum to bnbNodeBudget minus the frontier nodes, see bnbSplitNodeBudget),
// so total work is bounded identically, but *which* nodes fit inside an
// exhausted budget depends on how much the racy bound pruned. A search
// that exhausts any budget reports policy "branch_and_bound(budget)" and
// guarantees validity and seed-quality, not cross-thread-count
// bit-identity. The determinism suite (tests/bnb_test.cpp) pins both
// behaviours.
// ---------------------------------------------------------------------------

/// Immutable per-search facts shared by frontier generation and every
/// subtree.
struct SearchContext {
  const SchedContext& ctx;
  detail::EdgeIndex edges;
  std::vector<Cycles> cp;    ///< remaining critical path per task
  std::vector<Cycles> minW;  ///< min WCET over tiles per task
  std::size_t n = 0;
  std::uint32_t allDone = 0;
};

/// One node of the search tree: a partial append-only schedule.
struct Frame {
  std::vector<Placement> placements;
  std::vector<Cycles> tileAvail;
  std::uint32_t done = 0;  ///< bitmask of scheduled tasks
  Cycles makespan = 0;
  Cycles workLeft = 0;
};

/// Remaining critical path per task (min-WCET weights, no communication):
/// an admissible lower bound for pruning.
std::vector<Cycles> remainingCriticalPath(const SchedContext& ctx) {
  const std::size_t n = ctx.graph.tasks.size();
  std::vector<Cycles> minW(n);
  for (std::size_t i = 0; i < n; ++i) {
    minW[i] = *std::min_element(ctx.timings[i].wcetByTile.begin(),
                                ctx.timings[i].wcetByTile.end());
  }
  std::vector<Cycles> cp(n, -1);
  // Reverse topological accumulation (iterate until stable; graphs are
  // small when BnB is enabled).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      Cycles tail = 0;
      bool ready = true;
      for (int s : ctx.succ[i]) {
        if (cp[static_cast<std::size_t>(s)] < 0) {
          ready = false;
          break;
        }
        tail = std::max(tail, cp[static_cast<std::size_t>(s)]);
      }
      if (!ready) continue;
      const Cycles value = minW[i] + tail;
      if (value != cp[i]) {
        cp[i] = value;
        changed = true;
      }
    }
  }
  return cp;
}

/// Admissible lower bound on any completion of `frame`: critical path of
/// any unscheduled task, and total remaining work spread over all cores.
Cycles lowerBound(const SearchContext& sc, const Frame& frame) {
  Cycles lb = frame.makespan;
  for (std::size_t i = 0; i < sc.n; ++i) {
    if ((frame.done & (1u << i)) == 0) lb = std::max(lb, sc.cp[i]);
  }
  const Cycles minAvail =
      *std::min_element(frame.tileAvail.begin(), frame.tileAvail.end());
  lb = std::max(lb, minAvail + frame.workLeft / sc.ctx.cores);
  return lb;
}

/// Generates the children of `frame` in (task ascending, tile ascending)
/// order — the one order every part of the search shares — and hands each
/// child whose makespan stays strictly below `pushBound` to `push`.
template <typename Push>
void expandChildren(const SearchContext& sc, const Frame& frame,
                    Cycles pushBound, Push&& push) {
  for (std::size_t task = 0; task < sc.n; ++task) {
    if ((frame.done & (1u << task)) != 0) continue;
    bool ready = true;
    for (int p : sc.ctx.pred[task]) {
      if ((frame.done & (1u << p)) == 0) {
        ready = false;
        break;
      }
    }
    if (!ready) continue;

    Cycles prevAvail = -1;
    Cycles prevEst = -1;
    Cycles prevCost = -1;
    for (int tile = 0; tile < sc.ctx.cores; ++tile) {
      const Cycles avail = frame.tileAvail[static_cast<std::size_t>(tile)];
      Cycles est = avail;
      for (int p : sc.ctx.pred[task]) {
        const htg::Dep* dep = sc.edges.find(p, static_cast<int>(task));
        const Placement& pp = frame.placements[static_cast<std::size_t>(p)];
        const Cycles comm =
            dep == nullptr ? 0
                           : commCost(sc.ctx.platform, *dep, pp.tile, tile);
        est = std::max(est, pp.finish + comm);
      }
      const Cycles cost =
          sc.ctx.timings[task].wcetByTile[static_cast<std::size_t>(tile)];
      // Symmetry breaking: a tile this frame cannot tell apart from the
      // previous one — same availability, same earliest start (which folds
      // in cross-tile communication from every placed predecessor), same
      // WCET — yields an identical placement, so skip the repeat. The one
      // asymmetry this cannot see is *future* communication (a NoC mesh
      // position matters to tasks not yet placed), so on
      // topology-asymmetric platforms the search is exact only up to this
      // tile symmetry; on bus platforms (uniform transfer costs) it is
      // exact outright.
      if (avail == prevAvail && est == prevEst && cost == prevCost) {
        continue;
      }
      prevAvail = avail;
      prevEst = est;
      prevCost = cost;

      Frame child = frame;
      Placement p;
      p.task = static_cast<int>(task);
      p.tile = tile;
      p.start = est;
      p.finish = est + cost;
      child.placements[task] = p;
      child.tileAvail[static_cast<std::size_t>(tile)] = p.finish;
      child.done |= (1u << task);
      child.makespan = std::max(child.makespan, p.finish);
      child.workLeft -= sc.minW[task];
      if (child.makespan < pushBound) push(std::move(child));
    }
  }
}

/// What one subtree reports back for the ladder-order reduction. Only
/// strict improvements over the seed are recorded, so `placements` is
/// empty when the subtree found nothing better.
struct SubtreeResult {
  Cycles makespan = std::numeric_limits<Cycles>::max();
  std::vector<Placement> placements;
  std::int64_t expanded = 0;
  bool exhausted = false;
  [[nodiscard]] bool improved() const noexcept { return !placements.empty(); }
};

/// Classic DFS over one subtree. With `root` = the whole tree and `budget`
/// = the full node budget this *is* the classic sequential search; the
/// shared incumbent then only ever holds this searcher's own bound, so the
/// `lb > shared` check is subsumed by `lb >= localBest`.
SubtreeResult searchSubtree(const SearchContext& sc, Frame root,
                            Cycles seedBound, std::int64_t budget,
                            support::SharedIncumbent& shared) {
  SubtreeResult out;
  Cycles localBest = seedBound;
  std::vector<Frame> stack;
  stack.push_back(std::move(root));
  while (!stack.empty()) {
    if (++out.expanded > budget) {
      out.exhausted = true;
      break;
    }
    Frame frame = std::move(stack.back());
    stack.pop_back();

    if (frame.done == sc.allDone) {
      if (frame.makespan < localBest) {
        localBest = frame.makespan;
        out.makespan = frame.makespan;
        out.placements = std::move(frame.placements);
        shared.offer(out.makespan);
      }
      continue;
    }

    const Cycles lb = lowerBound(sc, frame);
    if (lb >= localBest) continue;  // deterministic, local knowledge only
    // Racy monotone bound; STRICT comparison (see proof above).
    if (lb > shared.get()) continue;
    expandChildren(sc, frame, localBest,
                   [&](Frame child) { stack.push_back(std::move(child)); });
  }
  return out;
}

/// Depth-`depth` frontier in ascending lexicographic (generation) order,
/// plus the number of nodes expanded to build it (counted against the
/// shared budget). Generation prunes only against the fixed seed bound,
/// which keeps the frontier a function of (graph, options) alone.
struct FrontierResult {
  std::vector<Frame> nodes;
  std::int64_t expanded = 0;
};

/// Deepening stops early once a level reaches this many nodes: deeper
/// frontiers stop paying off long before this, and the cap bounds the
/// transient memory of the next expansion. Depends only on sizes, so the
/// frontier stays deterministic.
constexpr std::size_t kMaxFrontierNodes = 1024;

FrontierResult generateFrontier(const SearchContext& sc, Frame root,
                                Cycles seedBound, int depth) {
  FrontierResult out;
  out.nodes.push_back(std::move(root));
  for (int level = 0; level < depth && !out.nodes.empty(); ++level) {
    if (out.nodes.size() >= kMaxFrontierNodes) break;
    std::vector<Frame> next;
    for (Frame& frame : out.nodes) {
      ++out.expanded;
      const Cycles lb = lowerBound(sc, frame);
      if (lb >= seedBound) continue;
      expandChildren(sc, frame, seedBound,
                     [&](Frame child) { next.push_back(std::move(child)); });
    }
    out.nodes = std::move(next);
  }
  return out;
}

class BnbPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "branch_and_bound";
  }

  [[nodiscard]] Schedule run(const SchedContext& ctx,
                             const SchedOptions& options) const override {
    const std::size_t n = ctx.graph.tasks.size();
    if (!bnbExactSearchFeasible(n, options)) {
      // Exact search is hopeless (bnbTaskLimit) or unrepresentable
      // (kBnbMaxTasks) at this size; fall back to the heuristic — the ARGO
      // "exact + heuristics" combination. One consistent rule for both
      // caps: oversized graphs are scheduled, never rejected.
      return detail::listSchedule(ctx, options.interferenceAware,
                                  "branch_and_bound(fallback=heft)");
    }

    SearchContext sc{ctx, detail::EdgeIndex(ctx.graph),
                     remainingCriticalPath(ctx), {}, n,
                     n >= 32 ? ~0u : (1u << n) - 1u};
    Cycles totalMinWork = 0;
    sc.minW.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      sc.minW[i] = *std::min_element(ctx.timings[i].wcetByTile.begin(),
                                     ctx.timings[i].wcetByTile.end());
      totalMinWork += sc.minW[i];
    }

    // Seed incumbent with HEFT: the search only has to *improve* on it.
    const Schedule seed =
        detail::listSchedule(ctx, options.interferenceAware, "heft");

    Frame root;
    root.placements.resize(n);
    root.tileAvail.assign(static_cast<std::size_t>(ctx.cores), 0);
    root.workLeft = totalMinWork;

    const int depth =
        std::clamp(options.bnbFrontierDepth, 0, static_cast<int>(n));
    FrontierResult frontier =
        generateFrontier(sc, std::move(root), seed.makespan, depth);
    // Ladder order = classic visit order: the stack explores newest-first,
    // i.e. descending generation order (see proof, point 1).
    std::reverse(frontier.nodes.begin(), frontier.nodes.end());

    const std::vector<std::int64_t> budgets = bnbSplitNodeBudget(
        options.bnbNodeBudget - frontier.expanded, frontier.nodes.size());

    support::SharedIncumbent shared(seed.makespan);
    std::vector<SubtreeResult> results(frontier.nodes.size());
    support::parallelFor(
        frontier.nodes.size(), options.parallelThreads, [&](std::size_t i) {
          results[i] = searchSubtree(sc, std::move(frontier.nodes[i]),
                                     seed.makespan, budgets[i], shared);
        });

    // Ladder-order reduction over the per-subtree bests: strict `<`, first
    // optimum wins, starting from the seed incumbent.
    Cycles bestMakespan = seed.makespan;
    const std::vector<Placement>* bestPlacements = &seed.placements;
    bool budgetExhausted = false;
    for (const SubtreeResult& r : results) {
      budgetExhausted = budgetExhausted || r.exhausted;
      if (r.improved() && r.makespan < bestMakespan) {
        bestMakespan = r.makespan;
        bestPlacements = &r.placements;
      }
    }

    // Rebuild tile order / usage from the winning placements.
    Schedule result;
    result.placements = *bestPlacements;
    result.makespan = bestMakespan;
    result.tileOrder.assign(
        static_cast<std::size_t>(ctx.platform.coreCount()), {});
    std::vector<int> byStart(n);
    std::iota(byStart.begin(), byStart.end(), 0);
    std::sort(byStart.begin(), byStart.end(), [&](int a, int b) {
      return result.placements[static_cast<std::size_t>(a)].start <
             result.placements[static_cast<std::size_t>(b)].start;
    });
    for (int t : byStart) {
      result
          .tileOrder[static_cast<std::size_t>(
              result.placements[static_cast<std::size_t>(t)].tile)]
          .push_back(t);
    }
    for (const auto& order : result.tileOrder) {
      if (!order.empty()) ++result.tilesUsed;
    }
    result.policy = budgetExhausted ? "branch_and_bound(budget)"
                                    : "branch_and_bound";
    return result;
  }
};

}  // namespace

std::vector<std::int64_t> bnbSplitNodeBudget(std::int64_t remaining,
                                             std::size_t subtrees) {
  if (subtrees == 0) return {};
  if (remaining < 0) remaining = 0;
  const std::int64_t count = static_cast<std::int64_t>(subtrees);
  const std::int64_t share = remaining / count;
  const std::int64_t extra = remaining % count;
  std::vector<std::int64_t> budgets(subtrees, share);
  for (std::int64_t i = 0; i < extra; ++i) {
    ++budgets[static_cast<std::size_t>(i)];
  }
  return budgets;
}

namespace detail {

std::unique_ptr<SchedulingPolicy> makeBnbPolicy() {
  return std::make_unique<BnbPolicy>();
}

}  // namespace detail

}  // namespace argo::sched
