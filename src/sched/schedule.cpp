#include "sched/schedule.h"

#include <algorithm>
#include <map>

#include "support/parallel.h"

namespace argo::sched {

std::vector<TaskTiming> computeTaskTimings(const htg::TaskGraph& graph,
                                           const adl::Platform& platform,
                                           int parallelThreads) {
  const ir::Function& fn = *graph.fn;
  // One TimingModel per tile, built once up front so the per-task loop
  // only reads them. Every task is analyzed on every tile (O(tasks x
  // tiles) schema walks — identical tiles are *not* deduplicated), which
  // is why this loop is worth pooling.
  std::vector<wcet::TimingModel> models;
  models.reserve(static_cast<std::size_t>(platform.coreCount()));
  for (int t = 0; t < platform.coreCount(); ++t) {
    models.push_back(wcet::TimingModel::forTile(platform, t));
  }

  std::vector<TaskTiming> timings(graph.tasks.size());
  support::parallelFor(graph.tasks.size(), parallelThreads, [&](std::size_t i) {
    const htg::Task& task = graph.tasks[i];
    TaskTiming timing;
    timing.wcetByTile.resize(static_cast<std::size_t>(platform.coreCount()));
    for (int t = 0; t < platform.coreCount(); ++t) {
      wcet::SchemaAnalyzer analyzer(fn, models[static_cast<std::size_t>(t)]);
      wcet::WcetResult result;
      for (const ir::StmtPtr& s : task.stmts) result += analyzer.analyzeStmt(*s);
      timing.wcetByTile[static_cast<std::size_t>(t)] = result.cycles;
      // Shared access counts are structural, identical on every tile; take
      // them from the first.
      if (t == 0) timing.sharedAccesses = result.accesses.sharedTotal();
    }
    timings[i] = std::move(timing);
  });
  return timings;
}

Cycles commCost(const adl::Platform& platform, const htg::Dep& dep,
                int fromTile, int toTile) {
  if (fromTile == toTile) return 0;
  return platform.transferWorstCase(dep.bytes, fromTile, toTile,
                                    /*contenders=*/1);
}

std::vector<std::string> validateSchedule(
    const Schedule& schedule, const htg::TaskGraph& graph,
    const adl::Platform& platform, const std::vector<TaskTiming>& timings) {
  std::vector<std::string> problems;
  const std::size_t n = graph.tasks.size();
  if (schedule.placements.size() != n) {
    problems.push_back("placement count mismatch");
    return problems;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Placement& p = schedule.placements[i];
    if (p.task != static_cast<int>(i)) {
      problems.push_back("placement " + std::to_string(i) + " misindexed");
    }
    if (p.tile < 0 || p.tile >= platform.coreCount()) {
      problems.push_back("task " + std::to_string(i) + " on invalid tile");
      continue;
    }
    const Cycles wcet =
        timings[i].wcetByTile[static_cast<std::size_t>(p.tile)];
    if (p.finish - p.start < wcet) {
      problems.push_back("task " + std::to_string(i) +
                         " shorter than its WCET");
    }
  }
  // Per-tile exclusivity.
  for (int t = 0; t < platform.coreCount(); ++t) {
    std::vector<const Placement*> onTile;
    for (const Placement& p : schedule.placements) {
      if (p.tile == t) onTile.push_back(&p);
    }
    std::sort(onTile.begin(), onTile.end(),
              [](const Placement* a, const Placement* b) {
                return a->start < b->start;
              });
    for (std::size_t k = 1; k < onTile.size(); ++k) {
      if (onTile[k]->start < onTile[k - 1]->finish) {
        problems.push_back("tasks " + std::to_string(onTile[k - 1]->task) +
                           " and " + std::to_string(onTile[k]->task) +
                           " overlap on tile " + std::to_string(t));
      }
    }
  }
  // Dependences.
  for (const htg::Dep& dep : graph.deps) {
    const Placement& from = schedule.placements[static_cast<std::size_t>(dep.from)];
    const Placement& to = schedule.placements[static_cast<std::size_t>(dep.to)];
    const Cycles comm = commCost(platform, dep, from.tile, to.tile);
    if (from.finish + comm > to.start) {
      problems.push_back("dependence " + std::to_string(dep.from) + "->" +
                         std::to_string(dep.to) + " violated");
    }
  }
  return problems;
}

}  // namespace argo::sched
