// The "annealed" policy: HEFT seed refined by simulated annealing over
// tile assignments (the paper's "advanced heuristic"). Runs
// SchedOptions::saRestarts independent chains, pooled through the shared
// support::parallelFor layer when parallelThreads != 1, with a
// deterministic ladder-order selection of the best chain.
#include <cmath>

#include "sched/list_placement.h"
#include "sched/policy.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace argo::sched {

namespace {

class AnnealedPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "annealed";
  }

  [[nodiscard]] Schedule run(const SchedContext& ctx,
                             const SchedOptions& options) const override {
    Schedule seed = detail::listSchedule(ctx, options.interferenceAware,
                                         std::string(name()));
    const std::size_t n = ctx.graph.tasks.size();
    std::vector<int> seedAssignment(n);
    for (std::size_t i = 0; i < n; ++i) {
      seedAssignment[i] = seed.placements[i].tile;
    }

    // One independent annealing chain. Chain state is entirely local (the
    // context is only read), so chains run concurrently; chain r's random
    // stream is fixed by `options.seed + r` alone, which keeps every
    // chain's outcome reproducible regardless of thread count or
    // interleaving.
    struct ChainResult {
      Cycles makespan = 0;
      std::vector<int> assignment;
    };
    const auto runChain = [&](std::uint64_t chainSeed) {
      ChainResult out;
      out.makespan = seed.makespan;
      out.assignment = seedAssignment;
      std::vector<int> assignment = seedAssignment;
      Cycles current = seed.makespan;

      support::Rng rng(chainSeed);
      double temperature =
          options.saInitialTemp * static_cast<double>(seed.makespan);
      const double cooling =
          std::pow(0.01, 1.0 / std::max(1, options.saIterations));

      for (int iter = 0; iter < options.saIterations; ++iter) {
        const std::size_t task = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(n) - 1));
        const int oldTile = assignment[task];
        const int newTile =
            static_cast<int>(rng.uniformInt(0, ctx.cores - 1));
        if (newTile == oldTile) continue;
        assignment[task] = newTile;
        const Schedule candidate = detail::scheduleWithAssignment(
            ctx, assignment, options.interferenceAware, std::string(name()));
        const double delta = static_cast<double>(candidate.makespan) -
                             static_cast<double>(current);
        const bool accept =
            delta <= 0.0 ||
            rng.uniformDouble() <
                std::exp(-delta / std::max(1.0, temperature));
        if (accept) {
          current = candidate.makespan;
          if (candidate.makespan < out.makespan) {
            out.makespan = candidate.makespan;
            out.assignment = assignment;
          }
        } else {
          assignment[task] = oldTile;
        }
        temperature *= cooling;
      }
      return out;
    };

    // Restarts write into per-chain slots; the reduction below walks them
    // in ladder order (strict `<`, lowest chain wins ties), so the
    // selected assignment is bit-identical to running the chains one after
    // another.
    const std::size_t restarts =
        static_cast<std::size_t>(std::max(1, options.saRestarts));
    std::vector<ChainResult> chains(restarts);
    support::parallelFor(restarts, options.parallelThreads,
                         [&](std::size_t r) {
                           chains[r] = runChain(options.seed + r);
                         });

    Cycles bestMakespan = seed.makespan;
    const std::vector<int>* best = &seedAssignment;
    for (const ChainResult& chain : chains) {
      if (chain.makespan < bestMakespan) {
        bestMakespan = chain.makespan;
        best = &chain.assignment;
      }
    }

    Schedule result = detail::scheduleWithAssignment(
        ctx, *best, options.interferenceAware, std::string(name()));
    // Annealing never returns something worse than its seed.
    if (result.makespan > seed.makespan) return seed;
    return result;
  }
};

}  // namespace

namespace detail {

std::unique_ptr<SchedulingPolicy> makeAnnealedPolicy() {
  return std::make_unique<AnnealedPolicy>();
}

}  // namespace detail

}  // namespace argo::sched
