// Pluggable scheduling-policy framework.
//
// Paper Section III-C explores "an approach using a combination of exact
// techniques and advanced heuristics" for the NP-hard mapping problem.
// Rather than hard-wiring that combination into one facade, every mapping
// strategy is a SchedulingPolicy registered under a stable name:
//
//  * "heft"                 — WCET-aware list scheduling (the workhorse).
//  * "branch_and_bound"     — exact makespan-optimal search for small
//                             graphs, optionally split across the thread
//                             pool (sched/bnb.h).
//  * "annealed"             — HEFT seed refined by simulated annealing.
//  * "contention_oblivious" — interference-blind HEFT baseline
//                             (the parMERASA-style comparison).
//
// Policies are looked up by name (SchedOptions::policy) and run against a
// SchedContext — the precomputed facts every policy needs. The registry is
// open: registerPolicy() accepts user-defined policies, which then become
// selectable through SchedOptions / ToolchainOptions / the argo_cc CLI
// without touching the dispatch code.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sched/options.h"
#include "sched/schedule.h"

namespace argo::sched {

/// Read-only facts shared by every policy invocation: the graph with its
/// dependence adjacency, the platform, the per-task timing tables, and the
/// effective core count (SchedOptions::coreLimit already applied). All
/// references outlive the run() call; policies must treat them as
/// immutable (several policy runs may share them concurrently).
struct SchedContext {
  const htg::TaskGraph& graph;
  const adl::Platform& platform;
  const std::vector<TaskTiming>& timings;
  const std::vector<std::vector<int>>& succ;
  const std::vector<std::vector<int>>& pred;
  /// Cores actually available to this run: min(coreLimit, coreCount).
  int cores = 0;
};

/// One mapping strategy. Implementations must be stateless (or immutable
/// after registration): a single instance serves concurrent runs, e.g. the
/// pooled feedback exploration scheduling several candidates at once.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// Stable registry name, also the default Schedule::policy label.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Computes a complete, valid schedule. Determinism contract: the result
  /// may depend only on `ctx` and `options` — never on thread count,
  /// wall-clock, or interleaving (docs/ARCHITECTURE.md).
  [[nodiscard]] virtual Schedule run(const SchedContext& ctx,
                                     const SchedOptions& options) const = 0;
};

/// Adds a policy to the global registry. Throws ToolchainError when the
/// name is already taken. Not safe to call concurrently with lookups from
/// running schedulers; register at startup.
void registerPolicy(std::unique_ptr<SchedulingPolicy> policy);

/// Name lookup; nullptr when unknown. The built-in policies are always
/// registered. The returned pointer stays valid for the process lifetime.
[[nodiscard]] const SchedulingPolicy* findPolicy(std::string_view name);

/// Like findPolicy, but throws a ToolchainError naming the unknown policy
/// and listing every registered name (the CLI surfaces this directly).
[[nodiscard]] const SchedulingPolicy& policyOrThrow(std::string_view name);

/// Sorted names of all registered policies.
[[nodiscard]] std::vector<std::string> registeredPolicyNames();

namespace detail {
// Built-in policy factories (one per translation unit under sched/).
std::unique_ptr<SchedulingPolicy> makeHeftPolicy();
std::unique_ptr<SchedulingPolicy> makeContentionObliviousPolicy();
std::unique_ptr<SchedulingPolicy> makeBnbPolicy();
std::unique_ptr<SchedulingPolicy> makeAnnealedPolicy();
}  // namespace detail

}  // namespace argo::sched
