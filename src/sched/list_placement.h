// Shared list-scheduling machinery (internal to sched/).
//
// Every built-in policy is, at its core, a strategy for ordering tasks and
// picking tiles on top of the same greedy placement mechanics: HEFT and
// the contention-oblivious baseline place by earliest finish time, the
// annealer re-places fixed tile assignments, and branch-and-bound reuses
// the edge index and seeds its incumbent with a HEFT schedule. This header
// is that common substrate; it is not part of the public sched/ API.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sched/policy.h"

namespace argo::sched::detail {

/// Dependence edge lookup: (from, to) -> edge.
struct EdgeIndex {
  explicit EdgeIndex(const htg::TaskGraph& graph) {
    for (const htg::Dep& d : graph.deps) {
      edges.emplace(key(d.from, d.to), &d);
    }
  }
  [[nodiscard]] const htg::Dep* find(int from, int to) const {
    auto it = edges.find(key(from, to));
    return it == edges.end() ? nullptr : it->second;
  }
  static std::uint64_t key(int from, int to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }
  std::map<std::uint64_t, const htg::Dep*> edges;
};

/// Upward ranks: rank(t) = avgWcet(t) + max over successors of
/// (avgComm(edge) + rank(succ)). Decreasing rank is a topological order.
[[nodiscard]] std::vector<double> upwardRanks(const SchedContext& ctx);

/// Task ids by decreasing rank; ties broken by lower task id.
[[nodiscard]] std::vector<int> priorityOrder(const std::vector<double>& rank);

/// Shared state of the greedy list-scheduling placement loop.
class ListPlacer {
 public:
  ListPlacer(const SchedContext& ctx, bool interferenceAware);

  /// Earliest start of `task` on `tile` given already-placed predecessors.
  [[nodiscard]] Cycles earliestStart(int task, int tile) const;

  [[nodiscard]] Cycles baseCost(int task, int tile) const {
    return ctx_.timings[static_cast<std::size_t>(task)]
        .wcetByTile[static_cast<std::size_t>(tile)];
  }

  /// Cost of `task` on `tile` starting at `start`, including the
  /// interference estimate when enabled.
  [[nodiscard]] Cycles placedCost(int task, int tile, Cycles start) const;

  void place(int task, int tile, Cycles start, Cycles cost);

  [[nodiscard]] Schedule finish(std::string policy) const;

  [[nodiscard]] int cores() const noexcept { return ctx_.cores; }

 private:
  const SchedContext& ctx_;
  EdgeIndex edges_;
  bool interferenceAware_;
  std::vector<Placement> placements_;
  std::vector<Cycles> tileAvail_;
  std::vector<std::vector<int>> tileOrder_;
};

/// Full HEFT pass: upward-rank priority, earliest-finish-time placement.
/// The heart of the "heft" policy, the seed of "annealed" and
/// "branch_and_bound", and (with interferenceAware = false) the
/// "contention_oblivious" baseline.
[[nodiscard]] Schedule listSchedule(const SchedContext& ctx,
                                    bool interferenceAware,
                                    std::string policyLabel);

/// List-schedules with a fixed task -> tile assignment (used by the
/// annealer's neighborhood evaluation).
[[nodiscard]] Schedule scheduleWithAssignment(const SchedContext& ctx,
                                              const std::vector<int>& tileOf,
                                              bool interferenceAware,
                                              std::string policyLabel);

}  // namespace argo::sched::detail
