// WCET-aware scheduling and mapping policies.
//
// Paper Section III-C: the mapping problem is NP-hard; ARGO explores "an
// approach using a combination of exact techniques and advanced
// heuristics". This module provides:
//
//  * Heft                — WCET-aware list scheduling (upward-rank priority,
//                          earliest-finish-time placement). The workhorse.
//  * BranchAndBound      — exact makespan-optimal search over append-only
//                          schedules for small graphs (the "exact
//                          technique"; exponential, guarded by limits).
//  * Annealed            — HEFT seed refined by simulated annealing over
//                          tile assignments (the "advanced heuristic");
//                          runs saRestarts independent chains, pooled when
//                          parallelThreads != 1, with a deterministic
//                          ladder-order selection of the best chain.
//  * ContentionOblivious — average-case-style baseline: identical HEFT
//                          machinery but blind to shared-resource
//                          interference (models the parMERASA-style
//                          manually parallelized comparison of Section
//                          III-C). Used by bench_interference.
//
// When `interferenceAware` is set, every task's cost during scheduling is
// inflated by a contention estimate — sharedAccesses x (worst-case access
// under k live contenders - uncontended access) — so the scheduler prefers
// placements that keep the number of simultaneous contenders low, the
// paper's central idea ("At any point in time, all shared resource
// contenders are known and their number is reduced during parallelization").
#pragma once

#include <cstdint>

#include "sched/schedule.h"

namespace argo::sched {

/// Scheduling policy selector.
enum class Policy : std::uint8_t {
  Heft,
  BranchAndBound,
  Annealed,
  ContentionOblivious,
};

[[nodiscard]] const char* policyName(Policy policy) noexcept;

struct SchedOptions {
  Policy policy = Policy::Heft;
  /// Include interference estimates in the scheduling objective.
  bool interferenceAware = true;
  /// Restrict scheduling to the first `coreLimit` tiles (<=0: all).
  int coreLimit = 0;
  /// Branch-and-bound: maximum tasks (falls back to HEFT beyond this) and
  /// search-node budget.
  int bnbTaskLimit = 14;
  std::int64_t bnbNodeBudget = 2'000'000;
  /// Simulated annealing parameters.
  int saIterations = 4000;
  double saInitialTemp = 0.20;  ///< Fraction of seed makespan.
  std::uint64_t seed = 1;
  /// Independent annealing chains, all starting from the HEFT seed.
  /// Chain r draws from its own Rng seeded with `seed + r`, so the set of
  /// chains is fixed by the options alone; the best chain is selected by a
  /// ladder-order reduction (strict `<`, lowest chain index wins ties),
  /// making the result identical however the chains are executed. 1 = the
  /// classic single chain.
  int saRestarts = 1;
  /// Worker threads for the scheduler's own parallel phases (annealing
  /// restarts). 0 = one per hardware thread, 1 = sequential; results are
  /// bit-identical either way. Must be 1 when the scheduler itself runs
  /// inside a pooled phase (core::Toolchain's feedback exploration does
  /// this), since pools do not nest.
  int parallelThreads = 1;
};

/// Facade over all policies.
class Scheduler {
 public:
  /// `timingThreads` parallelizes the per-task timing analysis done at
  /// construction (see computeTaskTimings); the default keeps it inline.
  Scheduler(const htg::TaskGraph& graph, const adl::Platform& platform,
            int timingThreads = 1);

  [[nodiscard]] Schedule run(const SchedOptions& options) const;

  [[nodiscard]] const std::vector<TaskTiming>& timings() const noexcept {
    return timings_;
  }

 private:
  [[nodiscard]] Schedule runHeft(const SchedOptions& options,
                                 bool interferenceAware) const;
  [[nodiscard]] Schedule runBnB(const SchedOptions& options) const;
  [[nodiscard]] Schedule runAnnealed(const SchedOptions& options) const;

  /// List-schedules with a fixed tile assignment (used by annealing).
  [[nodiscard]] Schedule scheduleWithAssignment(
      const std::vector<int>& tileOf, const SchedOptions& options) const;

  [[nodiscard]] int effectiveCores(const SchedOptions& options) const;

  const htg::TaskGraph& graph_;
  const adl::Platform& platform_;
  std::vector<TaskTiming> timings_;
  std::vector<std::vector<int>> succ_;
  std::vector<std::vector<int>> pred_;
};

}  // namespace argo::sched
