// WCET-aware scheduling and mapping: the Scheduler facade.
//
// Paper Section III-C: the mapping problem is NP-hard; ARGO explores "an
// approach using a combination of exact techniques and advanced
// heuristics". The strategies themselves are pluggable SchedulingPolicy
// objects selected by name (see sched/policy.h for the built-ins and the
// registry); this facade owns what every policy shares — the per-task
// timing tables (computed once, in parallel when allowed) and the graph's
// dependence adjacency — and dispatches run() through the registry.
#pragma once

#include "sched/options.h"
#include "sched/policy.h"
#include "sched/schedule.h"

namespace argo::sched {

/// Facade over the policy registry: precomputes the SchedContext facts for
/// one (graph, platform) pair, then runs any policy against them.
class Scheduler {
 public:
  /// The per-task timing analysis runs at construction and is pooled per
  /// `options.parallelThreads` (see computeTaskTimings) — the same knob
  /// that governs the policies' own parallel phases, so callers configure
  /// scheduling parallelism in exactly one place. The default keeps it
  /// inline.
  Scheduler(const htg::TaskGraph& graph, const adl::Platform& platform,
            const SchedOptions& options = {});

  /// Constructs with precomputed per-task timings instead of running the
  /// timing analysis. `timings` must be computeTaskTimings(graph,
  /// platform, ...) output for exactly this graph and platform — the
  /// stage cache (core/cache.h) uses this to feed a memoized timing
  /// vector into many schedule evaluations.
  Scheduler(const htg::TaskGraph& graph, const adl::Platform& platform,
            std::vector<TaskTiming> timings);

  /// Dispatches to the policy registered under `options.policy`. Throws
  /// ToolchainError for an empty graph or an unknown policy name (the
  /// error lists the registered names).
  [[nodiscard]] Schedule run(const SchedOptions& options) const;

  [[nodiscard]] const std::vector<TaskTiming>& timings() const noexcept {
    return timings_;
  }

 private:
  [[nodiscard]] int effectiveCores(const SchedOptions& options) const;

  const htg::TaskGraph& graph_;
  const adl::Platform& platform_;
  std::vector<TaskTiming> timings_;
  std::vector<std::vector<int>> succ_;
  std::vector<std::vector<int>> pred_;
};

}  // namespace argo::sched
