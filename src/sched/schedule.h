// Schedule representation and validation.
//
// Paper Section II-B: "The HTG obtained from the input program is then
// mapped on the target platform during a scheduling/mapping stage which
// computes an optimized schedule and mapping of tasks to processors."
//
// A Schedule is a static (offline) mapping: every task gets a tile, a start
// and a finish time, all in worst-case cycles. Times embed the uncontended
// WCET of each task plus worst-case communication; interference inflation
// is applied afterwards by the system-level analysis (src/syswcet).
#pragma once

#include <string>
#include <vector>

#include "adl/platform.h"
#include "htg/htg.h"
#include "wcet/analyzer.h"

namespace argo::sched {

using adl::Cycles;

/// Per-task timing facts used by every scheduling policy.
struct TaskTiming {
  /// Uncontended WCET per tile (indexed by tile; heterogeneous platforms
  /// make this a real table, not a constant).
  std::vector<Cycles> wcetByTile;
  /// Worst-case number of shared-memory accesses (tile independent).
  std::int64_t sharedAccesses = 0;

  /// Field-complete equality: the determinism tests/benches compare whole
  /// tables, and a defaulted == keeps them covering future fields.
  bool operator==(const TaskTiming&) const = default;
};

/// One scheduled task instance.
struct Placement {
  int task = -1;
  int tile = -1;
  Cycles start = 0;
  Cycles finish = 0;

  bool operator==(const Placement&) const = default;
};

/// A complete static schedule of a TaskGraph on a Platform.
struct Schedule {
  /// Placement per task id (same indexing as TaskGraph::tasks).
  std::vector<Placement> placements;
  /// Task ids per tile, in execution order.
  std::vector<std::vector<int>> tileOrder;
  /// Estimated makespan (max finish).
  Cycles makespan = 0;
  /// Number of tiles that received at least one task.
  int tilesUsed = 0;
  /// Human-readable name of the policy that produced this schedule.
  std::string policy;

  /// Field-complete equality (see TaskTiming::operator==).
  bool operator==(const Schedule&) const = default;
};

/// Computes TaskTiming for every task of `graph` on `platform` using the
/// code-level WCET analyzer (one TimingModel per distinct tile). Tasks are
/// independent, so with `parallelThreads != 1` they are analyzed on a
/// work-stealing pool through the shared support::parallelFor layer;
/// every task writes its own slot, so
/// the table is bit-identical to the sequential run. 0 = one thread per
/// hardware thread; pass 1 when calling from inside another pooled phase.
[[nodiscard]] std::vector<TaskTiming> computeTaskTimings(
    const htg::TaskGraph& graph, const adl::Platform& platform,
    int parallelThreads = 1);

/// Worst-case communication cycles for edge `dep` when producer runs on
/// `fromTile` and consumer on `toTile` (0 when co-located).
[[nodiscard]] Cycles commCost(const adl::Platform& platform,
                              const htg::Dep& dep, int fromTile, int toTile);

/// Structural validation of a schedule: every task placed exactly once on
/// a valid tile, no two tasks overlap on a tile, every dependence satisfied
/// (producer finish + cross-tile communication <= consumer start), and
/// per-task duration >= its uncontended WCET. Returns problems; empty means
/// valid.
[[nodiscard]] std::vector<std::string> validateSchedule(
    const Schedule& schedule, const htg::TaskGraph& graph,
    const adl::Platform& platform, const std::vector<TaskTiming>& timings);

}  // namespace argo::sched
