#include "sched/list_placement.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "support/interval.h"

namespace argo::sched::detail {

std::vector<double> upwardRanks(const SchedContext& ctx) {
  const htg::TaskGraph& graph = ctx.graph;
  const std::size_t n = graph.tasks.size();
  std::vector<double> avgW(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& w = ctx.timings[i].wcetByTile;
    avgW[i] = static_cast<double>(std::accumulate(w.begin(), w.end(),
                                                  Cycles{0})) /
              static_cast<double>(w.size());
  }
  EdgeIndex edges(graph);
  // Representative cross-tile pair for communication averaging.
  const int tileA = 0;
  const int tileB = ctx.platform.coreCount() - 1;
  std::vector<double> rank(n, -1.0);
  // Process in reverse topological order via DFS.
  std::vector<int> state(n, 0);
  std::vector<int> stack;
  for (int root = 0; root < static_cast<int>(n); ++root) {
    if (state[static_cast<std::size_t>(root)] != 0) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const int t = stack.back();
      if (state[static_cast<std::size_t>(t)] == 0) {
        state[static_cast<std::size_t>(t)] = 1;
        for (int s : ctx.succ[static_cast<std::size_t>(t)]) {
          if (state[static_cast<std::size_t>(s)] == 0) stack.push_back(s);
        }
        continue;
      }
      stack.pop_back();
      if (state[static_cast<std::size_t>(t)] == 2) continue;
      state[static_cast<std::size_t>(t)] = 2;
      double best = 0.0;
      for (int s : ctx.succ[static_cast<std::size_t>(t)]) {
        const htg::Dep* dep = edges.find(t, s);
        const double comm =
            dep == nullptr
                ? 0.0
                : static_cast<double>(
                      commCost(ctx.platform, *dep, tileA, tileB)) /
                      2.0;
        best = std::max(best, comm + rank[static_cast<std::size_t>(s)]);
      }
      rank[static_cast<std::size_t>(t)] =
          avgW[static_cast<std::size_t>(t)] + best;
    }
  }
  return rank;
}

std::vector<int> priorityOrder(const std::vector<double>& rank) {
  std::vector<int> order(rank.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (rank[static_cast<std::size_t>(a)] != rank[static_cast<std::size_t>(b)]) {
      return rank[static_cast<std::size_t>(a)] >
             rank[static_cast<std::size_t>(b)];
    }
    return a < b;  // deterministic tie-break
  });
  return order;
}

ListPlacer::ListPlacer(const SchedContext& ctx, bool interferenceAware)
    : ctx_(ctx), edges_(ctx.graph), interferenceAware_(interferenceAware) {
  placements_.resize(ctx.graph.tasks.size());
  tileAvail_.assign(static_cast<std::size_t>(ctx.cores), 0);
  tileOrder_.resize(static_cast<std::size_t>(ctx.cores));
}

Cycles ListPlacer::earliestStart(int task, int tile) const {
  Cycles est = tileAvail_[static_cast<std::size_t>(tile)];
  for (int p : ctx_.pred[static_cast<std::size_t>(task)]) {
    const htg::Dep* dep = edges_.find(p, task);
    const Placement& pp = placements_[static_cast<std::size_t>(p)];
    const Cycles comm =
        dep == nullptr ? 0 : commCost(ctx_.platform, *dep, pp.tile, tile);
    est = std::max(est, pp.finish + comm);
  }
  return est;
}

Cycles ListPlacer::placedCost(int task, int tile, Cycles start) const {
  const Cycles base = baseCost(task, tile);
  if (!interferenceAware_) return base;
  const std::int64_t accesses =
      ctx_.timings[static_cast<std::size_t>(task)].sharedAccesses;
  if (accesses == 0) return base;
  // Contenders: tiles whose currently-placed work overlaps the window
  // this task would occupy (including this task's tile itself).
  const support::Interval window{start, start + base};
  int contenders = 1;
  for (int t = 0; t < ctx_.cores; ++t) {
    if (t == tile) continue;
    for (int other : tileOrder_[static_cast<std::size_t>(t)]) {
      const Placement& op = placements_[static_cast<std::size_t>(other)];
      if (window.overlaps(support::Interval{op.start, op.finish})) {
        ++contenders;
        break;
      }
    }
  }
  const Cycles extra = ctx_.platform.sharedAccessWorstCase(tile, contenders) -
                       ctx_.platform.sharedAccessBase(tile);
  return base + accesses * extra;
}

void ListPlacer::place(int task, int tile, Cycles start, Cycles cost) {
  Placement p;
  p.task = task;
  p.tile = tile;
  p.start = start;
  p.finish = start + cost;
  placements_[static_cast<std::size_t>(task)] = p;
  tileAvail_[static_cast<std::size_t>(tile)] = p.finish;
  tileOrder_[static_cast<std::size_t>(tile)].push_back(task);
}

Schedule ListPlacer::finish(std::string policy) const {
  Schedule s;
  s.placements = placements_;
  s.tileOrder.assign(
      static_cast<std::size_t>(ctx_.platform.coreCount()), {});
  for (int t = 0; t < ctx_.cores; ++t) {
    s.tileOrder[static_cast<std::size_t>(t)] =
        tileOrder_[static_cast<std::size_t>(t)];
  }
  for (const Placement& p : placements_) {
    s.makespan = std::max(s.makespan, p.finish);
  }
  for (const auto& order : s.tileOrder) {
    if (!order.empty()) ++s.tilesUsed;
  }
  s.policy = std::move(policy);
  return s;
}

Schedule listSchedule(const SchedContext& ctx, bool interferenceAware,
                      std::string policyLabel) {
  const std::vector<double> rank = upwardRanks(ctx);
  ListPlacer placer(ctx, interferenceAware);
  for (int task : priorityOrder(rank)) {
    int bestTile = 0;
    Cycles bestStart = 0;
    Cycles bestCost = 0;
    Cycles bestEft = std::numeric_limits<Cycles>::max();
    for (int t = 0; t < ctx.cores; ++t) {
      const Cycles est = placer.earliestStart(task, t);
      const Cycles cost = placer.placedCost(task, t, est);
      const Cycles eft = est + cost;
      if (eft < bestEft) {
        bestEft = eft;
        bestTile = t;
        bestStart = est;
        bestCost = cost;
      }
    }
    placer.place(task, bestTile, bestStart, bestCost);
  }
  return placer.finish(std::move(policyLabel));
}

Schedule scheduleWithAssignment(const SchedContext& ctx,
                                const std::vector<int>& tileOf,
                                bool interferenceAware,
                                std::string policyLabel) {
  const std::vector<double> rank = upwardRanks(ctx);
  ListPlacer placer(ctx, interferenceAware);
  for (int task : priorityOrder(rank)) {
    const int tile = tileOf[static_cast<std::size_t>(task)];
    const Cycles est = placer.earliestStart(task, tile);
    const Cycles cost = placer.placedCost(task, tile, est);
    placer.place(task, tile, est, cost);
  }
  return placer.finish(std::move(policyLabel));
}

}  // namespace argo::sched::detail
