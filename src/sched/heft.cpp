// The "heft" and "contention_oblivious" policies.
//
// HEFT (Heterogeneous Earliest Finish Time) is the tool-chain's workhorse:
// WCET-aware list scheduling with upward-rank priorities and
// earliest-finish-time placement, optionally inflating every candidate
// placement by a shared-resource contention estimate (the paper's "all
// shared resource contenders are known and their number is reduced during
// parallelization", Section III-C).
//
// The contention-oblivious variant is the same machinery with the
// interference estimate forced off — the average-case-style baseline a
// manually parallelized flow (parMERASA-style, Section III-C) would
// produce. bench_interference measures the gap between the two.
#include "sched/list_placement.h"
#include "sched/policy.h"

namespace argo::sched {

namespace {

class HeftPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "heft";
  }
  [[nodiscard]] Schedule run(const SchedContext& ctx,
                             const SchedOptions& options) const override {
    return detail::listSchedule(ctx, options.interferenceAware,
                                std::string(name()));
  }
};

class ContentionObliviousPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "contention_oblivious";
  }
  [[nodiscard]] Schedule run(const SchedContext& ctx,
                             const SchedOptions& /*options*/) const override {
    return detail::listSchedule(ctx, /*interferenceAware=*/false,
                                std::string(name()));
  }
};

}  // namespace

namespace detail {

std::unique_ptr<SchedulingPolicy> makeHeftPolicy() {
  return std::make_unique<HeftPolicy>();
}

std::unique_ptr<SchedulingPolicy> makeContentionObliviousPolicy() {
  return std::make_unique<ContentionObliviousPolicy>();
}

}  // namespace detail

}  // namespace argo::sched
