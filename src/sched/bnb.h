// The "branch_and_bound" policy: exact makespan-optimal search (the
// paper's "exact technique", Section III-C), plus the public constants and
// accounting helpers other layers and the tests need.
//
// The search enumerates append-only schedules: repeatedly pick a ready
// (all predecessors placed) task and a tile, in (task ascending, tile
// ascending) order, pruning with an admissible lower bound against the
// best complete schedule seen so far. Tiles indistinguishable at placement
// time are deduplicated, so the search is makespan-optimal up to that tile
// symmetry — exact outright on uniform-interconnect (bus) platforms; see
// the symmetry-breaking comment in bnb.cpp for the NoC caveat.
// Scheduled-task sets are tracked in a
// 32-bit mask, which caps the representable graph at kBnbMaxTasks tasks;
// beyond min(kBnbMaxTasks, SchedOptions::bnbTaskLimit) the policy falls
// back to HEFT (label "branch_and_bound(fallback=heft)").
//
// When SchedOptions::bnbFrontierDepth > 0 the search splits at that depth
// into independent subtrees executed through support::parallelFor, pruned
// against a shared monotone incumbent (support::SharedIncumbent). The
// returned schedule is bit-identical to the classic monolithic DFS for
// every frontier depth and thread count as long as the node budget is not
// exhausted — the proof lives in bnb.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/options.h"

namespace argo::sched {

/// Widest task set the bitmask-based exact search can represent. One bit
/// per task in a 32-bit mask, with the all-done mask `(1u << n) - 1`
/// needing n <= 31. This constant is the single owner of that fact;
/// nothing outside sched/ may hard-code 31.
inline constexpr int kBnbMaxTasks = 31;

/// Task cap actually applied by the policy: the configured bnbTaskLimit,
/// never above what the bitmask can represent.
[[nodiscard]] constexpr int bnbEffectiveTaskLimit(
    const SchedOptions& options) noexcept {
  return options.bnbTaskLimit < kBnbMaxTasks ? options.bnbTaskLimit
                                             : kBnbMaxTasks;
}

/// True when the exact search runs for a graph of `tasks` tasks; false
/// when the policy would fall back to HEFT instead. Larger candidates are
/// still schedulable (by the fallback), so callers should not treat an
/// infeasible exact search as an infeasible candidate.
[[nodiscard]] constexpr bool bnbExactSearchFeasible(
    std::size_t tasks, const SchedOptions& options) noexcept {
  return tasks <= static_cast<std::size_t>(bnbEffectiveTaskLimit(options));
}

/// Deterministic split of the node budget that remains after frontier
/// generation over `subtrees` independent searches: even shares, with the
/// remainder going to the lowest subtree indices. The shares sum exactly
/// to max(remaining, 0), so total work stays bounded by
/// SchedOptions::bnbNodeBudget however the search is split. Exposed for
/// the budget-accounting tests.
[[nodiscard]] std::vector<std::int64_t> bnbSplitNodeBudget(
    std::int64_t remaining, std::size_t subtrees);

}  // namespace argo::sched
