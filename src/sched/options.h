// Options shared by every scheduling/mapping policy.
//
// The policy itself is selected by registry name (see sched/policy.h and
// docs/POLICY_AUTHORING.md), so the option set is the union of what the
// built-in policies consume; each policy reads the fields it documents and
// ignores the rest. Custom registered policies receive the same struct.
#pragma once

#include <cstdint>
#include <string>

namespace argo::sched {

struct SchedOptions {
  /// Registry name of the policy to run (sched/policy.h; default "heft").
  /// Built-ins: "heft", "branch_and_bound", "annealed",
  /// "contention_oblivious". Unknown names make Scheduler::run throw a
  /// ToolchainError that lists the registered names.
  std::string policy = "heft";
  /// Include interference estimates in the scheduling objective (default
  /// true; the "contention_oblivious" baseline is selected by name, but
  /// callers — argo_cc, argo_eval — also turn this off for it).
  bool interferenceAware = true;
  /// Restrict scheduling to the first `coreLimit` tiles (tiles, default
  /// 0; <= 0 means all tiles). The feedback loop uses 1 for its
  /// sequential-mapping fallback candidate.
  int coreLimit = 0;
  /// Branch-and-bound: maximum graph size the exact search accepts before
  /// falling back to HEFT (tasks, default 14; capped further by
  /// kBnbMaxTasks, the bitmask width — see sched/bnb.h).
  int bnbTaskLimit = 14;
  /// Branch-and-bound total search budget: frontier generation plus all
  /// subtrees (search nodes, default 2'000'000). Exhaustion is
  /// deterministic — the result is annotated "(budget)" and falls back to
  /// the HEFT seed when nothing better was explored.
  std::int64_t bnbNodeBudget = 2'000'000;
  /// Depth (number of placed tasks) at which the branch-and-bound search
  /// splits into independent subtrees that run through the shared
  /// support::parallelFor layer (placed tasks, default 2; 0 = classic
  /// monolithic DFS). The returned schedule is bit-identical for every
  /// depth and thread count as long as the node budget is not exhausted
  /// (proof in sched/bnb.cpp).
  int bnbFrontierDepth = 2;
  /// Simulated-annealing chain length (iterations per chain, default
  /// 4000).
  int saIterations = 4000;
  /// Simulated-annealing initial temperature, as a fraction of the HEFT
  /// seed makespan (dimensionless, default 0.20).
  double saInitialTemp = 0.20;
  /// Seed for every randomized policy; the only sanctioned randomness
  /// source under the determinism contract (unitless, default 1).
  std::uint64_t seed = 1;
  /// Independent annealing chains, all starting from the HEFT seed
  /// (chains, default 1 = the classic single chain). Chain r draws from
  /// its own Rng seeded with `seed + r`, so the set of chains is fixed by
  /// the options alone; the best chain is selected by a ladder-order
  /// reduction (strict `<`, lowest chain index wins ties), making the
  /// result identical however the chains are executed.
  int saRestarts = 1;
  /// Worker threads for every parallel phase the scheduler owns: the
  /// per-task timing analysis at Scheduler construction, annealing
  /// restarts, and branch-and-bound subtrees (threads, default 1 =
  /// sequential; 0 = one per hardware thread). Results are bit-identical
  /// either way. Must be 1 when the scheduler itself runs inside a pooled
  /// phase (core::Toolchain's feedback exploration and scenarios::runEval
  /// both do this), since pools do not nest.
  int parallelThreads = 1;
};

}  // namespace argo::sched
