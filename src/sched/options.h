// Options shared by every scheduling/mapping policy.
//
// The policy itself is selected by registry name (see sched/policy.h), so
// the option set is the union of what the built-in policies consume; each
// policy reads the fields it documents and ignores the rest. Custom
// registered policies receive the same struct.
#pragma once

#include <cstdint>
#include <string>

namespace argo::sched {

struct SchedOptions {
  /// Registry name of the policy to run (sched/policy.h). Built-ins:
  /// "heft", "branch_and_bound", "annealed", "contention_oblivious".
  /// Unknown names make Scheduler::run throw a ToolchainError that lists
  /// the registered names.
  std::string policy = "heft";
  /// Include interference estimates in the scheduling objective.
  bool interferenceAware = true;
  /// Restrict scheduling to the first `coreLimit` tiles (<=0: all).
  int coreLimit = 0;
  /// Branch-and-bound: maximum tasks before falling back to HEFT (capped
  /// further by kBnbMaxTasks, the bitmask width — see sched/bnb.h) and the
  /// total search-node budget (frontier generation plus all subtrees).
  int bnbTaskLimit = 14;
  std::int64_t bnbNodeBudget = 2'000'000;
  /// Depth (number of placed tasks) at which the branch-and-bound search
  /// splits into independent subtrees that run through the shared
  /// support::parallelFor layer. 0 = classic monolithic DFS. The returned
  /// schedule is bit-identical for every depth and thread count as long as
  /// the node budget is not exhausted (proof in sched/bnb.cpp).
  int bnbFrontierDepth = 2;
  /// Simulated annealing parameters.
  int saIterations = 4000;
  double saInitialTemp = 0.20;  ///< Fraction of seed makespan.
  std::uint64_t seed = 1;
  /// Independent annealing chains, all starting from the HEFT seed.
  /// Chain r draws from its own Rng seeded with `seed + r`, so the set of
  /// chains is fixed by the options alone; the best chain is selected by a
  /// ladder-order reduction (strict `<`, lowest chain index wins ties),
  /// making the result identical however the chains are executed. 1 = the
  /// classic single chain.
  int saRestarts = 1;
  /// Worker threads for every parallel phase the scheduler owns: the
  /// per-task timing analysis at Scheduler construction, annealing
  /// restarts, and branch-and-bound subtrees. 0 = one per hardware thread,
  /// 1 = sequential; results are bit-identical either way. Must be 1 when
  /// the scheduler itself runs inside a pooled phase (core::Toolchain's
  /// feedback exploration does this), since pools do not nest.
  int parallelThreads = 1;
};

}  // namespace argo::sched
