#include "sched/policy.h"

#include <map>
#include <mutex>
#include <utility>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace argo::sched {

using support::ToolchainError;

namespace {

struct Registry {
  std::mutex mutex;
  // Transparent comparator: lookups take string_view without allocating.
  std::map<std::string, std::unique_ptr<SchedulingPolicy>, std::less<>>
      policies;
};

/// The process-wide registry, seeded with the built-ins on first use
/// (function-local static: thread-safe initialization, no static-order
/// hazards between the policy translation units).
Registry& registry() {
  static Registry* instance = [] {
    auto* r = new Registry();
    for (auto factory : {detail::makeHeftPolicy,
                         detail::makeContentionObliviousPolicy,
                         detail::makeBnbPolicy, detail::makeAnnealedPolicy}) {
      std::unique_ptr<SchedulingPolicy> policy = factory();
      std::string name(policy->name());
      r->policies.emplace(std::move(name), std::move(policy));
    }
    return r;
  }();
  return *instance;
}

}  // namespace

void registerPolicy(std::unique_ptr<SchedulingPolicy> policy) {
  if (policy == nullptr) {
    throw ToolchainError("registerPolicy: null policy");
  }
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::string name(policy->name());
  if (name.empty()) {
    throw ToolchainError("registerPolicy: policy with empty name");
  }
  const auto [it, inserted] = r.policies.emplace(std::move(name),
                                                 std::move(policy));
  if (!inserted) {
    throw ToolchainError("registerPolicy: duplicate scheduling policy '" +
                         it->first + "'");
  }
}

const SchedulingPolicy* findPolicy(std::string_view name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.policies.find(name);
  return it == r.policies.end() ? nullptr : it->second.get();
}

const SchedulingPolicy& policyOrThrow(std::string_view name) {
  if (const SchedulingPolicy* policy = findPolicy(name)) return *policy;
  throw ToolchainError("unknown scheduling policy '" + std::string(name) +
                       "' (registered: " +
                       support::join(registeredPolicyNames(), ", ") + ")");
}

std::vector<std::string> registeredPolicyNames() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.policies.size());
  for (const auto& [name, policy] : r.policies) names.push_back(name);
  return names;  // std::map iteration: already sorted
}

}  // namespace argo::sched
