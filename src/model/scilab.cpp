#include "model/scilab.h"

#include <cctype>
#include <optional>
#include <set>

#include "ir/builder.h"
#include "ir/rewrite.h"
#include "support/diagnostics.h"

namespace argo::model::scilab {

using support::ToolchainError;

namespace {

// ------------------------------------------------------------------- Lexer

enum class Tok : std::uint8_t {
  Ident, Number, Assign, Plus, Minus, Star, Slash, Caret,
  Eq, Ne, Lt, Le, Gt, Ge, And, Or, Not,
  LParen, RParen, Comma, Colon, Separator,  // ';' or newline
  KwFor, KwIf, KwElse, KwEnd, KwThen, KwDo, KwLocal,
  Eof,
};

struct Token {
  Tok kind = Tok::Eof;
  std::string text;
  double number = 0.0;
  bool isFloatLiteral = false;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) { advance(); }

  [[nodiscard]] const Token& peek() const noexcept { return current_; }

  Token next() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    skipSpaceAndComments();
    current_ = Token{};
    current_.line = line_;
    if (pos_ >= src_.size()) {
      current_.kind = Tok::Eof;
      return;
    }
    const char c = src_[pos_];
    if (c == '\n') {
      ++pos_;
      ++line_;
      current_.kind = Tok::Separator;
      return;
    }
    if (c == ';') {
      ++pos_;
      current_.kind = Tok::Separator;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      lexIdent();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
      lexNumber();
      return;
    }
    lexOperator();
  }

  void skipSpaceAndComments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  void lexIdent() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) != 0 ||
            src_[pos_] == '_')) {
      ++pos_;
    }
    current_.text = src_.substr(start, pos_ - start);
    if (current_.text == "for") current_.kind = Tok::KwFor;
    else if (current_.text == "if") current_.kind = Tok::KwIf;
    else if (current_.text == "else") current_.kind = Tok::KwElse;
    else if (current_.text == "end") current_.kind = Tok::KwEnd;
    else if (current_.text == "then") current_.kind = Tok::KwThen;
    else if (current_.text == "do") current_.kind = Tok::KwDo;
    else if (current_.text == "local") current_.kind = Tok::KwLocal;
    else current_.kind = Tok::Ident;
  }

  void lexNumber() {
    const std::size_t start = pos_;
    bool isFloat = false;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '.') {
      isFloat = true;
      ++pos_;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < src_.size() && (src_[pos_] == 'e' || src_[pos_] == 'E')) {
      isFloat = true;
      ++pos_;
      if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_])) != 0) {
        ++pos_;
      }
    }
    current_.kind = Tok::Number;
    current_.text = src_.substr(start, pos_ - start);
    current_.number = std::stod(current_.text);
    current_.isFloatLiteral = isFloat;
  }

  void lexOperator() {
    auto two = [&](char a, char b) {
      return src_[pos_] == a && pos_ + 1 < src_.size() && src_[pos_ + 1] == b;
    };
    if (two('=', '=')) { current_.kind = Tok::Eq; pos_ += 2; return; }
    if (two('~', '=')) { current_.kind = Tok::Ne; pos_ += 2; return; }
    if (two('<', '=')) { current_.kind = Tok::Le; pos_ += 2; return; }
    if (two('>', '=')) { current_.kind = Tok::Ge; pos_ += 2; return; }
    switch (src_[pos_]) {
      case '=': current_.kind = Tok::Assign; break;
      case '+': current_.kind = Tok::Plus; break;
      case '-': current_.kind = Tok::Minus; break;
      case '*': current_.kind = Tok::Star; break;
      case '/': current_.kind = Tok::Slash; break;
      case '^': current_.kind = Tok::Caret; break;
      case '<': current_.kind = Tok::Lt; break;
      case '>': current_.kind = Tok::Gt; break;
      case '&': current_.kind = Tok::And; break;
      case '|': current_.kind = Tok::Or; break;
      case '~': current_.kind = Tok::Not; break;
      case '(': current_.kind = Tok::LParen; break;
      case ')': current_.kind = Tok::RParen; break;
      case ',': current_.kind = Tok::Comma; break;
      case ':': current_.kind = Tok::Colon; break;
      default:
        throw ToolchainError("scilab line " + std::to_string(line_) +
                             ": unexpected character '" +
                             std::string(1, src_[pos_]) + "'");
    }
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

// ------------------------------------------------------------------ Parser

/// One-argument intrinsics mapping to IR unary operators.
const std::map<std::string, ir::UnOpKind>& unaryIntrinsics() {
  static const std::map<std::string, ir::UnOpKind> table = {
      {"abs", ir::UnOpKind::Abs},     {"sqrt", ir::UnOpKind::Sqrt},
      {"exp", ir::UnOpKind::Exp},     {"log", ir::UnOpKind::Log},
      {"sin", ir::UnOpKind::Sin},     {"cos", ir::UnOpKind::Cos},
      {"tan", ir::UnOpKind::Tan},     {"atan", ir::UnOpKind::Atan},
      {"floor", ir::UnOpKind::Floor}, {"int", ir::UnOpKind::ToInt},
      {"float", ir::UnOpKind::ToFloat}};
  return table;
}

bool isMultiArgIntrinsic(const std::string& name) {
  static const std::set<std::string> table = {"atan2", "pow", "hypot", "fmod"};
  return table.contains(name);
}

class Parser {
 public:
  Parser(const std::string& source, const std::map<std::string, ir::Type>& ports)
      : lexer_(source), ports_(ports) {}

  ParsedScript run() {
    ParsedScript out;
    out.body = parseStmts(/*terminators=*/{Tok::Eof});
    expect(Tok::Eof);
    for (const auto& [name, decl] : locals_) out.locals.push_back(decl);
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw ToolchainError("scilab line " + std::to_string(lexer_.peek().line) +
                         ": " + message);
  }

  Token expect(Tok kind) {
    if (lexer_.peek().kind != kind) {
      fail("unexpected token '" + lexer_.peek().text + "'");
    }
    return lexer_.next();
  }

  bool accept(Tok kind) {
    if (lexer_.peek().kind == kind) {
      lexer_.next();
      return true;
    }
    return false;
  }

  void skipSeparators() {
    while (accept(Tok::Separator)) {
    }
  }

  std::unique_ptr<ir::Block> parseStmts(const std::set<Tok>& terminators) {
    auto block = ir::block();
    skipSeparators();
    while (!terminators.contains(lexer_.peek().kind)) {
      block->append(parseStmt());
      skipSeparators();
    }
    return block;
  }

  ir::StmtPtr parseStmt() {
    switch (lexer_.peek().kind) {
      case Tok::KwFor: return parseFor();
      case Tok::KwIf: return parseIf();
      case Tok::KwLocal: return parseLocal();
      case Tok::Ident: return parseAssign();
      default:
        fail("expected statement, got '" + lexer_.peek().text + "'");
    }
  }

  /// `local name`, `local name(d1)`, `local name(d1,d2)` — declares a
  /// zero-initialized f64 local. Emits no code.
  ir::StmtPtr parseLocal() {
    expect(Tok::KwLocal);
    const Token name = expect(Tok::Ident);
    std::vector<int> dims;
    if (accept(Tok::LParen)) {
      while (true) {
        const Token d = expect(Tok::Number);
        if (d.isFloatLiteral || d.number < 1) fail("array extent must be a positive integer");
        dims.push_back(static_cast<int>(d.number));
        if (!accept(Tok::Comma)) break;
      }
      expect(Tok::RParen);
    }
    declareLocal(name.text, dims.empty()
                                ? ir::Type::float64()
                                : ir::Type::array(ir::ScalarKind::Float64,
                                                  std::move(dims)));
    // `local` is purely declarative; return an empty block.
    return ir::block();
  }

  ir::StmtPtr parseAssign() {
    const Token name = expect(Tok::Ident);
    std::vector<ir::ExprPtr> indices;
    if (accept(Tok::LParen)) {
      while (true) {
        indices.push_back(adjustIndex(parseExpr()));
        if (!accept(Tok::Comma)) break;
      }
      expect(Tok::RParen);
    }
    expect(Tok::Assign);
    ir::ExprPtr rhs = parseExpr();
    if (!isKnown(name.text)) {
      if (!indices.empty()) {
        fail("indexed assignment to undeclared variable '" + name.text +
             "' (use 'local " + name.text + "(dims)')");
      }
      declareLocal(name.text, ir::Type::float64());
    }
    return ir::assign(ir::ref(name.text, std::move(indices)), std::move(rhs));
  }

  ir::StmtPtr parseFor() {
    expect(Tok::KwFor);
    const Token var = expect(Tok::Ident);
    expect(Tok::Assign);
    const std::int64_t lo = parseConstInt("loop lower bound");
    expect(Tok::Colon);
    const std::int64_t hi = parseConstInt("loop upper bound");
    accept(Tok::KwDo);
    loopVars_.insert(var.text);
    auto body = parseStmts({Tok::KwEnd});
    loopVars_.erase(var.text);
    expect(Tok::KwEnd);
    // Scilab ranges are inclusive; IR loops are half-open.
    return ir::forLoop(var.text, lo, hi + 1, std::move(body));
  }

  ir::StmtPtr parseIf() {
    expect(Tok::KwIf);
    ir::ExprPtr cond = parseExpr();
    accept(Tok::KwThen);
    auto thenBody = parseStmts({Tok::KwElse, Tok::KwEnd});
    auto elseBody = ir::block();
    if (accept(Tok::KwElse)) {
      elseBody = parseStmts({Tok::KwEnd});
    }
    expect(Tok::KwEnd);
    return ir::ifStmt(std::move(cond), std::move(thenBody),
                      std::move(elseBody));
  }

  /// Constant integer expression (loop bounds): literals with + - * /.
  std::int64_t parseConstInt(const std::string& what) {
    ir::ExprPtr expr = parseExpr();
    const std::optional<std::int64_t> value = constEval(*expr);
    if (!value.has_value()) fail(what + " must be a compile-time constant");
    return *value;
  }

  static std::optional<std::int64_t> constEval(const ir::Expr& expr) {
    if (const auto* i = ir::dynCast<ir::IntLit>(expr)) return i->value();
    if (const auto* b = ir::dynCast<ir::BinOp>(expr)) {
      const auto lhs = constEval(b->lhs());
      const auto rhs = constEval(b->rhs());
      if (!lhs || !rhs) return std::nullopt;
      switch (b->op()) {
        case ir::BinOpKind::Add: return *lhs + *rhs;
        case ir::BinOpKind::Sub: return *lhs - *rhs;
        case ir::BinOpKind::Mul: return *lhs * *rhs;
        case ir::BinOpKind::Div: return *rhs == 0 ? std::nullopt
                                                  : std::optional(*lhs / *rhs);
        default: return std::nullopt;
      }
    }
    if (const auto* u = ir::dynCast<ir::UnOp>(expr)) {
      if (u->op() == ir::UnOpKind::Neg) {
        const auto v = constEval(u->operand());
        if (v) return -*v;
      }
    }
    return std::nullopt;
  }

  // Precedence climbing: | < & < comparisons < +- < */ < ^ < unary.
  ir::ExprPtr parseExpr() { return parseOr(); }

  ir::ExprPtr parseOr() {
    ir::ExprPtr lhs = parseAnd();
    while (accept(Tok::Or)) {
      lhs = ir::bin(ir::BinOpKind::Or, std::move(lhs), parseAnd());
    }
    return lhs;
  }

  ir::ExprPtr parseAnd() {
    ir::ExprPtr lhs = parseComparison();
    while (accept(Tok::And)) {
      lhs = ir::bin(ir::BinOpKind::And, std::move(lhs), parseComparison());
    }
    return lhs;
  }

  ir::ExprPtr parseComparison() {
    ir::ExprPtr lhs = parseAdditive();
    while (true) {
      ir::BinOpKind op;
      switch (lexer_.peek().kind) {
        case Tok::Eq: op = ir::BinOpKind::Eq; break;
        case Tok::Ne: op = ir::BinOpKind::Ne; break;
        case Tok::Lt: op = ir::BinOpKind::Lt; break;
        case Tok::Le: op = ir::BinOpKind::Le; break;
        case Tok::Gt: op = ir::BinOpKind::Gt; break;
        case Tok::Ge: op = ir::BinOpKind::Ge; break;
        default: return lhs;
      }
      lexer_.next();
      lhs = ir::bin(op, std::move(lhs), parseAdditive());
    }
  }

  ir::ExprPtr parseAdditive() {
    ir::ExprPtr lhs = parseMultiplicative();
    while (true) {
      if (accept(Tok::Plus)) {
        lhs = ir::add(std::move(lhs), parseMultiplicative());
      } else if (accept(Tok::Minus)) {
        lhs = ir::sub(std::move(lhs), parseMultiplicative());
      } else {
        return lhs;
      }
    }
  }

  ir::ExprPtr parseMultiplicative() {
    ir::ExprPtr lhs = parseUnary();
    while (true) {
      if (accept(Tok::Star)) {
        lhs = ir::mul(std::move(lhs), parseUnary());
      } else if (accept(Tok::Slash)) {
        lhs = ir::div(std::move(lhs), parseUnary());
      } else {
        return lhs;
      }
    }
  }

  // Scilab precedence: '^' binds tighter than unary minus (-x^2 == -(x^2)),
  // and is right-associative with a possibly-signed exponent (2^-3).
  ir::ExprPtr parseUnary() {
    if (accept(Tok::Minus)) return ir::neg(parseUnary());
    if (accept(Tok::Not)) return ir::un(ir::UnOpKind::Not, parseUnary());
    return parsePower();
  }

  ir::ExprPtr parsePower() {
    ir::ExprPtr base = parsePrimary();
    if (accept(Tok::Caret)) {
      ir::ExprPtr exponent = parseUnary();  // right-associative, signed
      // x^2 is common enough to strength-reduce immediately.
      if (const auto* i = ir::dynCast<ir::IntLit>(*exponent);
          i != nullptr && i->value() == 2) {
        ir::ExprPtr copy = base->clone();
        return ir::mul(std::move(base), std::move(copy));
      }
      return ir::call("pow", ir::exprVec(std::move(base), std::move(exponent)));
    }
    return base;
  }

  ir::ExprPtr parsePrimary() {
    const Token& tok = lexer_.peek();
    if (tok.kind == Tok::Number) {
      const Token t = lexer_.next();
      if (t.isFloatLiteral) return ir::flt(t.number);
      return ir::lit(static_cast<std::int64_t>(t.number));
    }
    if (tok.kind == Tok::LParen) {
      lexer_.next();
      ir::ExprPtr inner = parseExpr();
      expect(Tok::RParen);
      return inner;
    }
    if (tok.kind == Tok::Ident) {
      const Token name = lexer_.next();
      if (name.text == "pi") return ir::flt(3.14159265358979323846);
      if (lexer_.peek().kind != Tok::LParen) {
        if (!isKnown(name.text) && !loopVars_.contains(name.text)) {
          fail("unknown variable '" + name.text + "'");
        }
        return ir::var(name.text);
      }
      // name(...) — intrinsic call or array index.
      lexer_.next();  // consume '('
      std::vector<ir::ExprPtr> args;
      while (true) {
        args.push_back(parseExpr());
        if (!accept(Tok::Comma)) break;
      }
      expect(Tok::RParen);
      if (const auto it = unaryIntrinsics().find(name.text);
          it != unaryIntrinsics().end()) {
        if (args.size() != 1) fail("'" + name.text + "' takes one argument");
        return ir::un(it->second, std::move(args[0]));
      }
      if (name.text == "min" || name.text == "max") {
        if (args.size() != 2) fail("'" + name.text + "' takes two arguments");
        return ir::bin(name.text == "min" ? ir::BinOpKind::Min
                                          : ir::BinOpKind::Max,
                       std::move(args[0]), std::move(args[1]));
      }
      if (name.text == "modulo") {
        if (args.size() != 2) fail("'modulo' takes two arguments");
        return ir::bin(ir::BinOpKind::Mod, std::move(args[0]),
                       std::move(args[1]));
      }
      if (isMultiArgIntrinsic(name.text)) {
        if (args.size() != 2) fail("'" + name.text + "' takes two arguments");
        return ir::call(name.text, std::move(args));
      }
      // Array indexing: Scilab is 1-based.
      if (!isKnown(name.text)) {
        fail("unknown array '" + name.text + "'");
      }
      for (ir::ExprPtr& idx : args) idx = adjustIndex(std::move(idx));
      return ir::ref(name.text, std::move(args));
    }
    fail("expected expression, got '" + tok.text + "'");
  }

  /// Converts a 1-based Scilab index expression to 0-based IR form,
  /// folding the common literal case.
  static ir::ExprPtr adjustIndex(ir::ExprPtr index) {
    if (const auto* i = ir::dynCast<ir::IntLit>(*index)) {
      return ir::lit(i->value() - 1);
    }
    return ir::sub(std::move(index), ir::lit(1));
  }

  bool isKnown(const std::string& name) const {
    return ports_.contains(name) || locals_.contains(name) ||
           loopVars_.contains(name);
  }

  void declareLocal(const std::string& name, ir::Type type) {
    if (ports_.contains(name)) fail("'" + name + "' is a port, not a local");
    if (locals_.contains(name)) fail("duplicate local '" + name + "'");
    locals_.emplace(name, ir::VarDecl{name, std::move(type), ir::VarRole::Temp,
                                      ir::Storage::Shared});
  }

  Lexer lexer_;
  const std::map<std::string, ir::Type>& ports_;
  std::map<std::string, ir::VarDecl> locals_;
  std::set<std::string> loopVars_;
};

}  // namespace

ParsedScript parseScript(const std::string& source,
                         const std::map<std::string, ir::Type>& ports) {
  Parser parser(source, ports);
  return parser.run();
}

}  // namespace argo::model::scilab

namespace argo::model {

using support::ToolchainError;

namespace {

std::map<std::string, ir::Type> makePortMap(
    const std::vector<scilab::PortSpec>& inputs,
    const std::vector<scilab::PortSpec>& outputs) {
  std::map<std::string, ir::Type> ports;
  for (const auto& p : inputs) {
    if (!ports.emplace(p.name, p.type).second) {
      throw ToolchainError("duplicate port name '" + p.name + "'");
    }
  }
  for (const auto& p : outputs) {
    if (!ports.emplace(p.name, p.type).second) {
      throw ToolchainError("duplicate port name '" + p.name + "'");
    }
  }
  return ports;
}

/// Collects every loop variable used in a statement tree.
void collectLoopVars(const ir::Stmt& stmt, std::set<std::string>& vars) {
  switch (stmt.kind()) {
    case ir::StmtKind::For: {
      const auto& loop = ir::cast<ir::For>(stmt);
      vars.insert(loop.var());
      for (const ir::StmtPtr& s : loop.body().stmts()) {
        collectLoopVars(*s, vars);
      }
      break;
    }
    case ir::StmtKind::If: {
      const auto& branch = ir::cast<ir::If>(stmt);
      for (const ir::StmtPtr& s : branch.thenBody().stmts()) {
        collectLoopVars(*s, vars);
      }
      for (const ir::StmtPtr& s : branch.elseBody().stmts()) {
        collectLoopVars(*s, vars);
      }
      break;
    }
    case ir::StmtKind::Block:
      for (const ir::StmtPtr& s : ir::cast<ir::Block>(stmt).stmts()) {
        collectLoopVars(*s, vars);
      }
      break;
    case ir::StmtKind::Assign:
      break;
  }
}

}  // namespace

ScilabBlock::ScilabBlock(std::string name, std::string source,
                         std::vector<scilab::PortSpec> inputs,
                         std::vector<scilab::PortSpec> outputs)
    : Block(std::move(name)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      script_(scilab::parseScript(source, makePortMap(inputs_, outputs_))) {}

std::vector<ir::Type> ScilabBlock::inferTypes(
    const std::vector<ir::Type>& inputs) const {
  if (inputs.size() != inputs_.size()) {
    throw ToolchainError("block '" + name() + "': expected " +
                         std::to_string(inputs_.size()) + " inputs");
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i] != inputs_[i].type) {
      throw ToolchainError("block '" + name() + "': input '" +
                           inputs_[i].name + "' expects " +
                           inputs_[i].type.str() + ", got " + inputs[i].str());
    }
  }
  std::vector<ir::Type> out;
  out.reserve(outputs_.size());
  for (const auto& p : outputs_) out.push_back(p.type);
  return out;
}

void ScilabBlock::emit(EmitContext& ctx) const {
  // Clone the parsed script and rename ports -> wire variables,
  // locals/loop variables -> fresh unique names.
  std::map<std::string, std::string> renames;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    renames[inputs_[i].name] = ctx.inputs.at(i);
  }
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    renames[outputs_[i].name] = ctx.outputs.at(i);
  }
  for (const ir::VarDecl& local : script_.locals) {
    const std::string fresh = ctx.uniqueName(name() + "_" + local.name);
    ctx.fn.declare(fresh, local.type, local.role, local.storage);
    renames[local.name] = fresh;
  }
  std::set<std::string> loopVars;
  for (const ir::StmtPtr& s : script_.body->stmts()) {
    collectLoopVars(*s, loopVars);
  }
  for (const std::string& lv : loopVars) {
    renames[lv] = ctx.uniqueName(lv);
  }
  auto body = script_.body->cloneBlock();
  for (const ir::StmtPtr& s : body->stmts()) ir::renameVars(*s, renames);
  for (ir::StmtPtr& s : body->stmts()) ctx.body.append(std::move(s));
}

}  // namespace argo::model
