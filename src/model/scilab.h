// Scilab-subset front end.
//
// The paper (Section II-A): "the behavior of all Xcos components used in
// ARGO is also described in the Scilab language". This module implements a
// WCET-analyzable Scilab subset and compiles it directly to the ARGO IR:
//
//   * assignments:        y = a*x + 1;   m(i,j) = u(i) * 2
//   * counted loops:      for i = 1:16 ... end        (constant bounds)
//   * conditionals:       if u > 0 then ... else ... end
//   * local declarations: local tmp; local buf(8); local img(16,16)
//   * math intrinsics:    sin cos tan atan exp log sqrt abs floor
//                         atan2 pow hypot fmod min max
//   * operators:          + - * / ^  == ~= < <= > >=  & | ~
//
// Scilab semantics preserved: 1-based indexing (converted to the IR's
// 0-based form), inclusive for-ranges, '~' for logical not, '~=' for not
// equal. Restrictions for analyzability: loop bounds must be compile-time
// constants, no while/break, no dynamic allocation — the same restrictions
// the real ARGO front end imposes on real-time code.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"
#include "model/block.h"

namespace argo::model::scilab {

/// A named, typed port of a ScilabBlock.
struct PortSpec {
  std::string name;
  ir::Type type;
};

/// Result of parsing a script: the statement tree plus the local variables
/// it declared (explicitly via `local` or implicitly by scalar assignment).
struct ParsedScript {
  std::unique_ptr<ir::Block> body;
  std::vector<ir::VarDecl> locals;
};

/// Parses `source` against the given port environment (name -> type).
/// Throws support::ToolchainError with a line number on syntax/type errors.
[[nodiscard]] ParsedScript parseScript(
    const std::string& source, const std::map<std::string, ir::Type>& ports);

}  // namespace argo::model::scilab

namespace argo::model {

/// A user-defined block whose behaviour is a Scilab-subset script.
///
/// The script reads input port names and assigns output port names; locals
/// are private per instantiation. The script is parsed at construction
/// (fail fast) and inlined into the diagram function at emission with all
/// names made unique.
class ScilabBlock final : public Block {
 public:
  ScilabBlock(std::string name, std::string source,
              std::vector<scilab::PortSpec> inputs,
              std::vector<scilab::PortSpec> outputs);

  [[nodiscard]] int inputCount() const override {
    return static_cast<int>(inputs_.size());
  }
  [[nodiscard]] int outputCount() const override {
    return static_cast<int>(outputs_.size());
  }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  std::vector<scilab::PortSpec> inputs_;
  std::vector<scilab::PortSpec> outputs_;
  scilab::ParsedScript script_;
};

}  // namespace argo::model
