// Dataflow block abstraction of the ARGO model front end.
//
// Applications are described as Xcos-style synchronous dataflow diagrams
// (paper Section II-A). Each block consumes typed input signals and produces
// typed output signals once per synchronous step. The diagram compiler
// (model/diagram.h) assigns one IR variable per wire and asks each block to
// emit the IR statements computing its outputs from its inputs.
//
// Stateful blocks (Delay, FIR, IIR) declare State variables and split their
// emission into the step body (use state) and an epilogue (update state),
// preserving synchronous semantics regardless of diagram evaluation order.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/builder.h"
#include "ir/function.h"

namespace argo::model {

/// Everything a block needs to emit its IR.
struct EmitContext {
  ir::Function& fn;
  /// Statements computing this step, appended in dataflow order.
  ir::Block& body;
  /// State-update statements executed after every block's body statements.
  ir::Block& epilogue;
  /// IR variable name carrying each input port's signal.
  std::vector<std::string> inputs;
  /// IR variable name carrying each output port's signal (already declared).
  std::vector<std::string> outputs;
  /// Produces a function-unique identifier derived from `hint` (for loop
  /// variables, temporaries and state variables).
  std::function<std::string(const std::string& hint)> uniqueName;
  /// Declares a block-owned constant (e.g. a filter kernel or lookup
  /// table): a read-only variable whose initial values are recorded in the
  /// compiled model's constant table. Returns the variable name.
  std::function<std::string(const std::string& hint, ir::Type type,
                            std::vector<double> values)>
      declareConst;
};

/// Base class of all diagram blocks.
class Block {
 public:
  explicit Block(std::string name) : name_(std::move(name)) {}
  virtual ~Block() = default;
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] virtual int inputCount() const = 0;
  [[nodiscard]] virtual int outputCount() const = 0;

  /// Computes output port types from input port types. Must throw
  /// support::ToolchainError (with the block name in the message) on
  /// type/shape mismatches.
  [[nodiscard]] virtual std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const = 0;

  /// Emits IR statements into ctx.body (and ctx.epilogue for state
  /// updates). Called once, in dataflow order.
  virtual void emit(EmitContext& ctx) const = 0;

  /// True for blocks whose outputs do not depend on the same-step inputs
  /// (Delay-like blocks). Such blocks legally break feedback cycles.
  [[nodiscard]] virtual bool breaksCycle() const { return false; }

 private:
  std::string name_;
};

/// Emits a loop nest iterating over every element of `type`, invoking
/// `makeBody` with the index expressions, and appends it to `out`.
/// For scalars, `makeBody` is invoked once with no indices.
void forEachElement(
    EmitContext& ctx, ir::Block& out, const ir::Type& type,
    const std::function<ir::StmtPtr(std::vector<ir::ExprPtr> idx)>& makeBody);

/// Clones an index expression vector.
[[nodiscard]] std::vector<ir::ExprPtr> cloneIndices(
    const std::vector<ir::ExprPtr>& idx);

}  // namespace argo::model
