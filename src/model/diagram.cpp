#include "model/diagram.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <set>

#include "model/blocks.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace argo::model {

using support::ToolchainError;

ir::Environment CompiledModel::makeEnvironment() const {
  ir::Environment env = ir::makeZeroEnvironment(*fn);
  for (const auto& [name, value] : constants) env[name] = value;
  return env;
}

BlockId Diagram::add(std::unique_ptr<Block> block) {
  blocks_.push_back(std::move(block));
  return BlockId{static_cast<int>(blocks_.size()) - 1};
}

void Diagram::connect(BlockId src, int srcPort, BlockId dst, int dstPort) {
  auto checkId = [&](BlockId id) {
    if (id.value < 0 || id.value >= blockCount()) {
      throw ToolchainError("diagram '" + name_ + "': invalid block id");
    }
  };
  checkId(src);
  checkId(dst);
  const Block& srcBlock = block(src);
  const Block& dstBlock = block(dst);
  if (srcPort < 0 || srcPort >= srcBlock.outputCount()) {
    throw ToolchainError("diagram '" + name_ + "': block '" + srcBlock.name() +
                         "' has no output port " + std::to_string(srcPort));
  }
  if (dstPort < 0 || dstPort >= dstBlock.inputCount()) {
    throw ToolchainError("diagram '" + name_ + "': block '" + dstBlock.name() +
                         "' has no input port " + std::to_string(dstPort));
  }
  for (const Wire& w : wires_) {
    if (w.dst == dst && w.dstPort == dstPort) {
      throw ToolchainError("diagram '" + name_ + "': input port " +
                           std::to_string(dstPort) + " of '" + dstBlock.name() +
                           "' already driven");
    }
  }
  wires_.push_back(Wire{src, srcPort, dst, dstPort});
}

namespace {

std::string sanitizeIdentifier(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front()))) {
    out = "v_" + out;
  }
  return out;
}

}  // namespace

CompiledModel Diagram::compile() const {
  const int n = blockCount();
  if (n == 0) throw ToolchainError("diagram '" + name_ + "' is empty");

  // ---- 1. Connectivity: each input port driven exactly once. ----
  // inputWire[block][port] = wire index
  std::vector<std::vector<int>> inputWire(static_cast<std::size_t>(n));
  for (int b = 0; b < n; ++b) {
    inputWire[static_cast<std::size_t>(b)].assign(
        static_cast<std::size_t>(blocks_[static_cast<std::size_t>(b)]
                                     ->inputCount()),
        -1);
  }
  for (std::size_t w = 0; w < wires_.size(); ++w) {
    const Wire& wire = wires_[w];
    inputWire[static_cast<std::size_t>(wire.dst.value)]
             [static_cast<std::size_t>(wire.dstPort)] = static_cast<int>(w);
  }
  for (int b = 0; b < n; ++b) {
    const Block& blk = *blocks_[static_cast<std::size_t>(b)];
    for (int p = 0; p < blk.inputCount(); ++p) {
      if (inputWire[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)] <
          0) {
        throw ToolchainError("diagram '" + name_ + "': input port " +
                             std::to_string(p) + " of '" + blk.name() +
                             "' is unconnected");
      }
    }
  }

  // ---- 2. Type inference to a fixpoint. ----
  std::vector<std::optional<std::vector<ir::Type>>> outTypes(
      static_cast<std::size_t>(n));
  // Cycle-breaking blocks with a declared type act as sources.
  for (int b = 0; b < n; ++b) {
    const Block& blk = *blocks_[static_cast<std::size_t>(b)];
    if (const auto* delay = dynamic_cast<const DelayBlock*>(&blk);
        delay != nullptr && delay->declaredType().has_value()) {
      outTypes[static_cast<std::size_t>(b)] = {*delay->declaredType()};
    }
  }
  auto inputTypesOf = [&](int b) -> std::optional<std::vector<ir::Type>> {
    const Block& blk = *blocks_[static_cast<std::size_t>(b)];
    std::vector<ir::Type> types;
    types.reserve(static_cast<std::size_t>(blk.inputCount()));
    for (int p = 0; p < blk.inputCount(); ++p) {
      const Wire& wire = wires_[static_cast<std::size_t>(
          inputWire[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)])];
      const auto& srcTypes = outTypes[static_cast<std::size_t>(wire.src.value)];
      if (!srcTypes.has_value()) return std::nullopt;
      types.push_back((*srcTypes)[static_cast<std::size_t>(wire.srcPort)]);
    }
    return types;
  };
  bool progress = true;
  std::vector<bool> typed(static_cast<std::size_t>(n), false);
  while (progress) {
    progress = false;
    for (int b = 0; b < n; ++b) {
      if (typed[static_cast<std::size_t>(b)]) continue;
      const auto inputs = inputTypesOf(b);
      if (!inputs.has_value()) continue;
      const Block& blk = *blocks_[static_cast<std::size_t>(b)];
      outTypes[static_cast<std::size_t>(b)] = blk.inferTypes(*inputs);
      typed[static_cast<std::size_t>(b)] = true;
      progress = true;
    }
  }
  for (int b = 0; b < n; ++b) {
    if (!typed[static_cast<std::size_t>(b)] &&
        !outTypes[static_cast<std::size_t>(b)].has_value()) {
      throw ToolchainError(
          "diagram '" + name_ + "': cannot type block '" +
          blocks_[static_cast<std::size_t>(b)]->name() +
          "' (feedback loop without a typed Delay?)");
    }
  }

  // ---- 3. Dataflow order (algebraic-loop detection). ----
  // Wires into cycle-breaking blocks do not constrain emission order.
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (const Wire& wire : wires_) {
    if (blocks_[static_cast<std::size_t>(wire.dst.value)]->breaksCycle()) {
      continue;
    }
    succ[static_cast<std::size_t>(wire.src.value)].push_back(wire.dst.value);
    ++indegree[static_cast<std::size_t>(wire.dst.value)];
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<int> ready;
  for (int b = 0; b < n; ++b) {
    if (indegree[static_cast<std::size_t>(b)] == 0) ready.push_back(b);
  }
  // Deterministic order: lowest id first.
  std::sort(ready.begin(), ready.end(), std::greater<int>());
  while (!ready.empty()) {
    const int b = ready.back();
    ready.pop_back();
    order.push_back(b);
    for (int s : succ[static_cast<std::size_t>(b)]) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) {
        ready.push_back(s);
        std::sort(ready.begin(), ready.end(), std::greater<int>());
      }
    }
  }
  if (static_cast<int>(order.size()) != n) {
    throw ToolchainError("diagram '" + name_ +
                         "': algebraic loop (cycle without a Delay block)");
  }

  // ---- 4. Emission. ----
  CompiledModel model;
  model.fn = std::make_unique<ir::Function>(sanitizeIdentifier(name_));
  ir::Function& fn = *model.fn;
  std::set<std::string> usedNames;
  auto uniqueName = [&](const std::string& hint) {
    std::string base = sanitizeIdentifier(hint);
    std::string candidate = base;
    int counter = 2;
    while (usedNames.contains(candidate)) {
      candidate = base + "_" + std::to_string(counter++);
    }
    usedNames.insert(candidate);
    return candidate;
  };

  ir::Block& body = fn.body();
  auto epilogue = ir::block();

  // Wire variables, assigned lazily per (block, outPort).
  std::vector<std::vector<std::string>> wireVar(static_cast<std::size_t>(n));
  for (int b = 0; b < n; ++b) {
    wireVar[static_cast<std::size_t>(b)].assign(
        static_cast<std::size_t>(
            blocks_[static_cast<std::size_t>(b)]->outputCount()),
        "");
  }

  EmitContext ctx{fn, body, *epilogue, {}, {}, uniqueName, {}};
  ctx.declareConst = [&](const std::string& hint, ir::Type type,
                         std::vector<double> values) {
    const std::string name = uniqueName(hint);
    fn.declare(name, type, ir::VarRole::Const);
    model.constants.emplace(name,
                            ir::Value::floats(type, std::move(values)));
    return name;
  };

  // Declare wire variables up-front so later blocks can resolve inputs.
  for (int b = 0; b < n; ++b) {
    const Block& blk = *blocks_[static_cast<std::size_t>(b)];
    const auto& types = *outTypes[static_cast<std::size_t>(b)];
    for (int p = 0; p < blk.outputCount(); ++p) {
      const ir::Type& type = types[static_cast<std::size_t>(p)];
      std::string varName;
      if (dynamic_cast<const InputBlock*>(&blk) != nullptr) {
        varName = uniqueName(blk.name());
        fn.declare(varName, type, ir::VarRole::Input);
      } else if (const auto* cst = dynamic_cast<const ConstBlock*>(&blk);
                 cst != nullptr && !type.isScalar()) {
        // Array constants alias read-only data; scalar constants are
        // computed per step (cheap, keeps expressions foldable).
        varName = ctx.declareConst(blk.name(), type, [&] {
          // The values live in the block; re-infer through emit would be
          // awkward, so reach into it directly.
          return cst->values();
        }());
      } else {
        varName = uniqueName(blk.name() +
                             (blk.outputCount() > 1 ? "_o" + std::to_string(p)
                                                    : ""));
        fn.declare(varName, type, ir::VarRole::Temp);
      }
      wireVar[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)] =
          varName;
    }
  }

  for (int b : order) {
    const Block& blk = *blocks_[static_cast<std::size_t>(b)];
    ctx.inputs.clear();
    ctx.outputs.clear();
    for (int p = 0; p < blk.inputCount(); ++p) {
      const Wire& wire = wires_[static_cast<std::size_t>(
          inputWire[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)])];
      ctx.inputs.push_back(
          wireVar[static_cast<std::size_t>(wire.src.value)]
                 [static_cast<std::size_t>(wire.srcPort)]);
    }
    if (dynamic_cast<const OutputBlock*>(&blk) != nullptr) {
      const std::string outName = uniqueName(blk.name());
      fn.declare(outName, fn.lookup(ctx.inputs[0]).type, ir::VarRole::Output);
      ctx.outputs.push_back(outName);
    } else {
      for (int p = 0; p < blk.outputCount(); ++p) {
        ctx.outputs.push_back(
            wireVar[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)]);
      }
    }
    const std::size_t bodyBefore = body.stmts().size();
    const std::size_t epiBefore = epilogue->stmts().size();
    blk.emit(ctx);
    for (std::size_t s = bodyBefore; s < body.stmts().size(); ++s) {
      if (body.stmts()[s]->label.empty()) body.stmts()[s]->label = blk.name();
    }
    for (std::size_t s = epiBefore; s < epilogue->stmts().size(); ++s) {
      if (epilogue->stmts()[s]->label.empty()) {
        epilogue->stmts()[s]->label = blk.name() + "_update";
      }
    }
  }

  // State updates execute after every block's step computation.
  for (ir::StmtPtr& s : epilogue->stmts()) body.append(std::move(s));

  const std::vector<std::string> problems = ir::validate(fn);
  if (!problems.empty()) {
    throw ToolchainError("diagram '" + name_ + "' compiled to invalid IR: " +
                         support::join(problems, "; "));
  }
  return model;
}

}  // namespace argo::model
