// Dataflow diagrams and their compilation to IR.
//
// A Diagram is a set of blocks plus wires. compile() performs:
//   1. connectivity checking (every input port driven exactly once),
//   2. type inference to a fixpoint (Delay blocks with a declared type act
//      as sources, making feedback loops well-typed),
//   3. algebraic-loop detection (cycles not broken by a Delay are errors),
//   4. IR emission in dataflow order, one variable per wire, with all block
//      state updates gathered in an epilogue to preserve synchronous
//      semantics,
// and yields a CompiledModel: the IR step function plus the constant table
// (initial values of Const-role variables such as filter kernels).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/evaluator.h"
#include "model/block.h"

namespace argo::model {

/// Handle to a block inside a diagram.
struct BlockId {
  int value = -1;
  friend bool operator==(const BlockId&, const BlockId&) = default;
};

/// The result of compiling a diagram.
struct CompiledModel {
  std::unique_ptr<ir::Function> fn;
  /// Initial values for VarRole::Const variables (lookup tables, kernels).
  ir::Environment constants;

  /// Convenience: environment pre-populated with the constant table and
  /// zero-valued inputs/states.
  [[nodiscard]] ir::Environment makeEnvironment() const;
};

/// A synchronous dataflow diagram.
class Diagram {
 public:
  explicit Diagram(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Adds a block; the diagram takes ownership.
  BlockId add(std::unique_ptr<Block> block);

  /// Convenience: construct and add.
  template <typename B, typename... Args>
  BlockId add(Args&&... args) {
    return add(std::make_unique<B>(std::forward<Args>(args)...));
  }

  /// Connects output port `srcPort` of `src` to input port `dstPort` of
  /// `dst`. Fan-out is allowed; each input port accepts exactly one wire.
  void connect(BlockId src, int srcPort, BlockId dst, int dstPort);

  /// Shorthand for single-output -> single-input connections.
  void connect(BlockId src, BlockId dst, int dstPort = 0) {
    connect(src, 0, dst, dstPort);
  }

  [[nodiscard]] int blockCount() const noexcept {
    return static_cast<int>(blocks_.size());
  }
  [[nodiscard]] const Block& block(BlockId id) const {
    return *blocks_.at(static_cast<std::size_t>(id.value));
  }

  /// Compiles the diagram to IR. Throws support::ToolchainError on
  /// malformed diagrams (unconnected ports, type errors, algebraic loops).
  [[nodiscard]] CompiledModel compile() const;

 private:
  struct Wire {
    BlockId src;
    int srcPort = 0;
    BlockId dst;
    int dstPort = 0;
  };

  std::string name_;
  std::vector<std::unique_ptr<Block>> blocks_;
  std::vector<Wire> wires_;
};

}  // namespace argo::model
