#include "model/block.h"

namespace argo::model {

namespace {

void emitLoopNest(EmitContext& ctx, ir::Block& out, const ir::Type& type,
                  std::size_t dim, std::vector<ir::ExprPtr>& indices,
                  std::vector<std::string>& loopVars,
                  const std::function<ir::StmtPtr(std::vector<ir::ExprPtr>)>&
                      makeBody) {
  if (dim == type.dims().size()) {
    out.append(makeBody(cloneIndices(indices)));
    return;
  }
  const std::string loopVar = ctx.uniqueName("i");
  loopVars.push_back(loopVar);
  auto body = ir::block();
  indices.push_back(ir::var(loopVar));
  emitLoopNest(ctx, *body, type, dim + 1, indices, loopVars, makeBody);
  indices.pop_back();
  out.append(ir::forLoop(loopVar, 0, type.dims()[dim], std::move(body)));
  loopVars.pop_back();
}

}  // namespace

void forEachElement(
    EmitContext& ctx, ir::Block& out, const ir::Type& type,
    const std::function<ir::StmtPtr(std::vector<ir::ExprPtr> idx)>& makeBody) {
  std::vector<ir::ExprPtr> indices;
  std::vector<std::string> loopVars;
  emitLoopNest(ctx, out, type, 0, indices, loopVars, makeBody);
}

std::vector<ir::ExprPtr> cloneIndices(const std::vector<ir::ExprPtr>& idx) {
  std::vector<ir::ExprPtr> out;
  out.reserve(idx.size());
  for (const ir::ExprPtr& e : idx) out.push_back(e->clone());
  return out;
}

}  // namespace argo::model
