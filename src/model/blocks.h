// The ARGO block library.
//
// A pragmatic subset of the Xcos palette, sufficient for the three use-case
// applications plus generic signal processing: sources/sinks, arithmetic,
// nonlinear, lookup, signal routing, filters (FIR/IIR), linear algebra and
// image processing blocks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "model/block.h"

namespace argo::model {

/// Diagram input: produces the signal of one function Input variable.
class InputBlock final : public Block {
 public:
  InputBlock(std::string name, ir::Type type)
      : Block(std::move(name)), type_(std::move(type)) {}
  [[nodiscard]] int inputCount() const override { return 0; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;
  [[nodiscard]] const ir::Type& type() const noexcept { return type_; }

 private:
  ir::Type type_;
};

/// Diagram output: copies its input signal into a function Output variable.
class OutputBlock final : public Block {
 public:
  explicit OutputBlock(std::string name) : Block(std::move(name)) {}
  [[nodiscard]] int inputCount() const override { return 1; }
  [[nodiscard]] int outputCount() const override { return 0; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;
};

/// Constant source (scalar or array).
class ConstBlock final : public Block {
 public:
  ConstBlock(std::string name, ir::Type type, std::vector<double> values);
  [[nodiscard]] int inputCount() const override { return 0; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  ir::Type type_;
  std::vector<double> values_;
};

/// y = gain * u, element-wise.
class GainBlock final : public Block {
 public:
  GainBlock(std::string name, double gain)
      : Block(std::move(name)), gain_(gain) {}
  [[nodiscard]] int inputCount() const override { return 1; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  double gain_;
};

/// y = sum_k sign_k * u_k, element-wise over identically-shaped inputs.
class SumBlock final : public Block {
 public:
  SumBlock(std::string name, std::vector<int> signs);
  [[nodiscard]] int inputCount() const override {
    return static_cast<int>(signs_.size());
  }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  std::vector<int> signs_;
};

/// y = prod_k u_k element-wise.
class ProductBlock final : public Block {
 public:
  ProductBlock(std::string name, int inputs)
      : Block(std::move(name)), inputs_(inputs) {}
  [[nodiscard]] int inputCount() const override { return inputs_; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  int inputs_;
};

/// Unit delay: y[n] = u[n-1]; initial value 0. Breaks feedback cycles.
///
/// When used inside a feedback loop, the signal type cannot be inferred
/// from the (not-yet-typed) input, so the type must be declared explicitly
/// with the two-argument constructor.
class DelayBlock final : public Block {
 public:
  explicit DelayBlock(std::string name) : Block(std::move(name)) {}
  DelayBlock(std::string name, ir::Type declaredType)
      : Block(std::move(name)), declaredType_(std::move(declaredType)) {}
  [[nodiscard]] int inputCount() const override { return 1; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] bool breaksCycle() const override { return true; }
  [[nodiscard]] const std::optional<ir::Type>& declaredType() const noexcept {
    return declaredType_;
  }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  std::optional<ir::Type> declaredType_;
};

/// y = clamp(u, lo, hi) element-wise.
class SaturateBlock final : public Block {
 public:
  SaturateBlock(std::string name, double lo, double hi)
      : Block(std::move(name)), lo_(lo), hi_(hi) {}
  [[nodiscard]] int inputCount() const override { return 1; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  double lo_;
  double hi_;
};

/// Element-wise unary math: kind in {Abs, Sqrt, Exp, Log, Sin, Cos, Atan}.
class MathBlock final : public Block {
 public:
  MathBlock(std::string name, ir::UnOpKind op)
      : Block(std::move(name)), op_(op) {}
  [[nodiscard]] int inputCount() const override { return 1; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  ir::UnOpKind op_;
};

/// y = atan2(u0, u1) element-wise.
class Atan2Block final : public Block {
 public:
  explicit Atan2Block(std::string name) : Block(std::move(name)) {}
  [[nodiscard]] int inputCount() const override { return 2; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;
};

/// y = (u0 OP u1) as 0/1 float, element-wise.
class RelationalBlock final : public Block {
 public:
  RelationalBlock(std::string name, ir::BinOpKind op)
      : Block(std::move(name)), op_(op) {}
  [[nodiscard]] int inputCount() const override { return 2; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  ir::BinOpKind op_;
};

/// y = u0 >= threshold ? u1 : u2, element-wise (Xcos SWITCH2 semantics).
class SwitchBlock final : public Block {
 public:
  SwitchBlock(std::string name, double threshold)
      : Block(std::move(name)), threshold_(threshold) {}
  [[nodiscard]] int inputCount() const override { return 3; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  double threshold_;
};

/// Reduction over all elements of the input: Sum, Min or Max -> scalar.
class ReduceBlock final : public Block {
 public:
  enum class Op { Sum, Min, Max };
  ReduceBlock(std::string name, Op op) : Block(std::move(name)), op_(op) {}
  [[nodiscard]] int inputCount() const override { return 1; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  Op op_;
};

/// FIR filter on a scalar stream: y = sum_k coeff[k] * u[n-k].
class FirBlock final : public Block {
 public:
  FirBlock(std::string name, std::vector<double> coeffs);
  [[nodiscard]] int inputCount() const override { return 1; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  std::vector<double> coeffs_;
};

/// Biquad IIR section on a scalar stream (direct form II transposed).
class BiquadBlock final : public Block {
 public:
  BiquadBlock(std::string name, double b0, double b1, double b2, double a1,
              double a2)
      : Block(std::move(name)), b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}
  [[nodiscard]] int inputCount() const override { return 1; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  double b0_, b1_, b2_, a1_, a2_;
};

/// y[m] = sum_k A[m][k] * u[k] with a constant matrix A (m x k).
class MatVecBlock final : public Block {
 public:
  MatVecBlock(std::string name, int rows, int cols, std::vector<double> matrix);
  [[nodiscard]] int inputCount() const override { return 1; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  int rows_;
  int cols_;
  std::vector<double> matrix_;
};

/// 2D convolution with a constant kernel, zero padding ("same" size).
class Conv2dBlock final : public Block {
 public:
  Conv2dBlock(std::string name, int kernelH, int kernelW,
              std::vector<double> kernel);
  [[nodiscard]] int inputCount() const override { return 1; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  int kernelH_;
  int kernelW_;
  std::vector<double> kernel_;
};

/// Uniform-grid 1D lookup table with linear interpolation and clamping.
/// Table value k corresponds to x0 + k*dx. O(1) per sample — WCET friendly.
class Lookup1dBlock final : public Block {
 public:
  Lookup1dBlock(std::string name, double x0, double dx,
                std::vector<double> table);
  [[nodiscard]] int inputCount() const override { return 1; }
  [[nodiscard]] int outputCount() const override { return 1; }
  [[nodiscard]] std::vector<ir::Type> inferTypes(
      const std::vector<ir::Type>& inputs) const override;
  void emit(EmitContext& ctx) const override;

 private:
  double x0_;
  double dx_;
  std::vector<double> table_;
};

}  // namespace argo::model
