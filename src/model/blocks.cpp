#include "model/blocks.h"

#include "support/diagnostics.h"

namespace argo::model {

using ir::ExprPtr;
using ir::Type;
using support::ToolchainError;

namespace {

[[noreturn]] void typeError(const Block& block, const std::string& message) {
  throw ToolchainError("block '" + block.name() + "': " + message);
}

void expectInputCount(const Block& block, const std::vector<Type>& inputs) {
  if (static_cast<int>(inputs.size()) != block.inputCount()) {
    typeError(block, "expected " + std::to_string(block.inputCount()) +
                         " inputs, got " + std::to_string(inputs.size()));
  }
}

void expectSameShape(const Block& block, const std::vector<Type>& inputs) {
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    if (inputs[i].dims() != inputs[0].dims()) {
      typeError(block, "input shapes differ: " + inputs[0].str() + " vs " +
                           inputs[i].str());
    }
  }
}

/// Reference to input port `port`, at element `idx` (cloned).
std::unique_ptr<ir::VarRef> inRef(const EmitContext& ctx, int port,
                                  const std::vector<ExprPtr>& idx) {
  return ir::ref(ctx.inputs.at(static_cast<std::size_t>(port)),
                 cloneIndices(idx));
}

std::unique_ptr<ir::VarRef> outRef(const EmitContext& ctx, int port,
                                   const std::vector<ExprPtr>& idx) {
  return ir::ref(ctx.outputs.at(static_cast<std::size_t>(port)),
                 cloneIndices(idx));
}

const Type& signalType(const EmitContext& ctx, int inputPort) {
  return ctx.fn.lookup(ctx.inputs.at(static_cast<std::size_t>(inputPort))).type;
}

}  // namespace

// ---------------------------------------------------------------- InputBlock

std::vector<Type> InputBlock::inferTypes(const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  return {type_};
}

void InputBlock::emit(EmitContext& ctx) const {
  // The diagram compiler aliases the output wire directly to the function
  // Input variable; nothing to compute.
  (void)ctx;
}

// --------------------------------------------------------------- OutputBlock

std::vector<Type> OutputBlock::inferTypes(
    const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  return {};
}

void OutputBlock::emit(EmitContext& ctx) const {
  // Copy the incoming wire into the function Output variable. ctx.outputs
  // holds the output variable name even though outputCount() == 0; the
  // compiler arranges this.
  const Type& type = signalType(ctx, 0);
  forEachElement(ctx, ctx.body, type, [&](std::vector<ExprPtr> idx) {
    return ir::assign(outRef(ctx, 0, idx), inRef(ctx, 0, idx));
  });
}

// ---------------------------------------------------------------- ConstBlock

ConstBlock::ConstBlock(std::string name, Type type, std::vector<double> values)
    : Block(std::move(name)), type_(std::move(type)), values_(std::move(values)) {
  if (static_cast<std::int64_t>(values_.size()) != type_.elementCount()) {
    throw ToolchainError("block '" + Block::name() + "': " +
                         std::to_string(values_.size()) + " values for type " +
                         type_.str());
  }
}

std::vector<Type> ConstBlock::inferTypes(const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  return {type_};
}

void ConstBlock::emit(EmitContext& ctx) const {
  if (type_.isScalar()) {
    ctx.body.append(ir::assign(outRef(ctx, 0, {}), ir::flt(values_[0])));
    return;
  }
  // Array constants become read-only data: the compiler aliases the output
  // wire to a Const variable whose initial values live in the model's
  // constant table; nothing to compute per step. (Re-initializing a table
  // every step would dominate the WCET for large tables.)
}

// ----------------------------------------------------------------- GainBlock

std::vector<Type> GainBlock::inferTypes(const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  return {inputs[0]};
}

void GainBlock::emit(EmitContext& ctx) const {
  const Type& type = signalType(ctx, 0);
  forEachElement(ctx, ctx.body, type, [&](std::vector<ExprPtr> idx) {
    return ir::assign(outRef(ctx, 0, idx),
                      ir::mul(ir::flt(gain_), inRef(ctx, 0, idx)));
  });
}

// ------------------------------------------------------------------ SumBlock

SumBlock::SumBlock(std::string name, std::vector<int> signs)
    : Block(std::move(name)), signs_(std::move(signs)) {
  if (signs_.size() < 2) {
    throw ToolchainError("block '" + Block::name() + "': needs >= 2 inputs");
  }
}

std::vector<Type> SumBlock::inferTypes(const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  expectSameShape(*this, inputs);
  return {inputs[0]};
}

void SumBlock::emit(EmitContext& ctx) const {
  const Type& type = signalType(ctx, 0);
  forEachElement(ctx, ctx.body, type, [&](std::vector<ExprPtr> idx) {
    ExprPtr acc;
    for (std::size_t k = 0; k < signs_.size(); ++k) {
      ExprPtr term = inRef(ctx, static_cast<int>(k), idx);
      if (signs_[k] < 0) term = ir::neg(std::move(term));
      acc = acc ? ir::add(std::move(acc), std::move(term)) : std::move(term);
    }
    return ir::assign(outRef(ctx, 0, idx), std::move(acc));
  });
}

// -------------------------------------------------------------- ProductBlock

std::vector<Type> ProductBlock::inferTypes(
    const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  expectSameShape(*this, inputs);
  return {inputs[0]};
}

void ProductBlock::emit(EmitContext& ctx) const {
  const Type& type = signalType(ctx, 0);
  forEachElement(ctx, ctx.body, type, [&](std::vector<ExprPtr> idx) {
    ExprPtr acc;
    for (int k = 0; k < inputs_; ++k) {
      ExprPtr term = inRef(ctx, k, idx);
      acc = acc ? ir::mul(std::move(acc), std::move(term)) : std::move(term);
    }
    return ir::assign(outRef(ctx, 0, idx), std::move(acc));
  });
}

// ---------------------------------------------------------------- DelayBlock

std::vector<Type> DelayBlock::inferTypes(const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  if (declaredType_.has_value() && inputs[0] != *declaredType_) {
    typeError(*this, "declared type " + declaredType_->str() +
                         " does not match input " + inputs[0].str());
  }
  return {inputs[0]};
}

void DelayBlock::emit(EmitContext& ctx) const {
  const Type& type = signalType(ctx, 0);
  const std::string state = ctx.uniqueName(name() + "_z");
  ctx.fn.declare(state, type, ir::VarRole::State);
  forEachElement(ctx, ctx.body, type, [&](std::vector<ExprPtr> idx) {
    return ir::assign(outRef(ctx, 0, idx), ir::ref(state, cloneIndices(idx)));
  });
  forEachElement(ctx, ctx.epilogue, type, [&](std::vector<ExprPtr> idx) {
    return ir::assign(ir::ref(state, cloneIndices(idx)), inRef(ctx, 0, idx));
  });
}

// ------------------------------------------------------------- SaturateBlock

std::vector<Type> SaturateBlock::inferTypes(
    const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  if (lo_ > hi_) typeError(*this, "lo > hi");
  return {inputs[0]};
}

void SaturateBlock::emit(EmitContext& ctx) const {
  const Type& type = signalType(ctx, 0);
  forEachElement(ctx, ctx.body, type, [&](std::vector<ExprPtr> idx) {
    ExprPtr clamped = ir::bin(
        ir::BinOpKind::Min, ir::flt(hi_),
        ir::bin(ir::BinOpKind::Max, ir::flt(lo_), inRef(ctx, 0, idx)));
    return ir::assign(outRef(ctx, 0, idx), std::move(clamped));
  });
}

// ----------------------------------------------------------------- MathBlock

std::vector<Type> MathBlock::inferTypes(const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  return {inputs[0]};
}

void MathBlock::emit(EmitContext& ctx) const {
  const Type& type = signalType(ctx, 0);
  forEachElement(ctx, ctx.body, type, [&](std::vector<ExprPtr> idx) {
    return ir::assign(outRef(ctx, 0, idx),
                      ir::un(op_, inRef(ctx, 0, idx)));
  });
}

// ---------------------------------------------------------------- Atan2Block

std::vector<Type> Atan2Block::inferTypes(const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  expectSameShape(*this, inputs);
  return {inputs[0]};
}

void Atan2Block::emit(EmitContext& ctx) const {
  const Type& type = signalType(ctx, 0);
  forEachElement(ctx, ctx.body, type, [&](std::vector<ExprPtr> idx) {
    std::vector<ExprPtr> args;
    args.push_back(inRef(ctx, 0, idx));
    args.push_back(inRef(ctx, 1, idx));
    return ir::assign(outRef(ctx, 0, idx), ir::call("atan2", std::move(args)));
  });
}

// ----------------------------------------------------------- RelationalBlock

std::vector<Type> RelationalBlock::inferTypes(
    const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  expectSameShape(*this, inputs);
  if (!ir::isComparison(op_)) typeError(*this, "operator is not relational");
  return {inputs[0]};
}

void RelationalBlock::emit(EmitContext& ctx) const {
  const Type& type = signalType(ctx, 0);
  forEachElement(ctx, ctx.body, type, [&](std::vector<ExprPtr> idx) {
    ExprPtr cmp = ir::bin(op_, inRef(ctx, 0, idx), inRef(ctx, 1, idx));
    return ir::assign(outRef(ctx, 0, idx),
                      ir::select(std::move(cmp), ir::flt(1.0), ir::flt(0.0)));
  });
}

// --------------------------------------------------------------- SwitchBlock

std::vector<Type> SwitchBlock::inferTypes(const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  if (inputs[1].dims() != inputs[2].dims()) {
    typeError(*this, "data inputs must have identical shapes");
  }
  if (!inputs[0].isScalar() && inputs[0].dims() != inputs[1].dims()) {
    typeError(*this, "control input must be scalar or match data shape");
  }
  return {inputs[1]};
}

void SwitchBlock::emit(EmitContext& ctx) const {
  const Type& dataType = signalType(ctx, 1);
  const bool scalarControl = signalType(ctx, 0).isScalar();
  forEachElement(ctx, ctx.body, dataType, [&](std::vector<ExprPtr> idx) {
    std::vector<ExprPtr> ctrlIdx =
        scalarControl ? std::vector<ExprPtr>{} : cloneIndices(idx);
    ExprPtr cond = ir::ge(ir::ref(ctx.inputs[0], std::move(ctrlIdx)),
                          ir::flt(threshold_));
    return ir::assign(
        outRef(ctx, 0, idx),
        ir::select(std::move(cond), inRef(ctx, 1, idx), inRef(ctx, 2, idx)));
  });
}

// --------------------------------------------------------------- ReduceBlock

std::vector<Type> ReduceBlock::inferTypes(const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  if (inputs[0].isScalar()) typeError(*this, "reduce needs an array input");
  return {Type::float64()};
}

void ReduceBlock::emit(EmitContext& ctx) const {
  const Type& type = signalType(ctx, 0);
  double init = 0.0;
  ir::BinOpKind op = ir::BinOpKind::Add;
  switch (op_) {
    case Op::Sum: init = 0.0; op = ir::BinOpKind::Add; break;
    case Op::Min: init = 1e300; op = ir::BinOpKind::Min; break;
    case Op::Max: init = -1e300; op = ir::BinOpKind::Max; break;
  }
  // Accumulate in a register-allocated local: the reduction loop is
  // inherently sequential, and a shared-memory read-modify-write per
  // element would dominate both the WCET and the interconnect load.
  const std::string acc = ctx.uniqueName(name() + "_acc");
  ctx.fn.declare(acc, Type::float64(), ir::VarRole::Temp, ir::Storage::Local);
  ctx.body.append(ir::assign(ir::ref(acc), ir::flt(init)));
  forEachElement(ctx, ctx.body, type, [&](std::vector<ExprPtr> idx) {
    return ir::assign(ir::ref(acc),
                      ir::bin(op, ir::var(acc), inRef(ctx, 0, idx)));
  });
  ctx.body.append(ir::assign(outRef(ctx, 0, {}), ir::var(acc)));
}

// ------------------------------------------------------------------ FirBlock

FirBlock::FirBlock(std::string name, std::vector<double> coeffs)
    : Block(std::move(name)), coeffs_(std::move(coeffs)) {
  if (coeffs_.empty()) {
    throw ToolchainError("block '" + Block::name() + "': empty coefficients");
  }
}

std::vector<Type> FirBlock::inferTypes(const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  if (!inputs[0].isScalar()) typeError(*this, "FIR input must be scalar");
  return {Type::float64()};
}

void FirBlock::emit(EmitContext& ctx) const {
  const int taps = static_cast<int>(coeffs_.size());
  if (taps == 1) {
    ctx.body.append(ir::assign(outRef(ctx, 0, {}),
                               ir::mul(ir::flt(coeffs_[0]), inRef(ctx, 0, {}))));
    return;
  }
  const std::string state = ctx.uniqueName(name() + "_z");
  ctx.fn.declare(state, Type::array(ir::ScalarKind::Float64, {taps - 1}),
                 ir::VarRole::State);
  // y = c0*u + sum_{k>=1} c[k] * z[k-1]
  ExprPtr acc = ir::mul(ir::flt(coeffs_[0]), inRef(ctx, 0, {}));
  for (int k = 1; k < taps; ++k) {
    acc = ir::add(std::move(acc),
                  ir::mul(ir::flt(coeffs_[static_cast<std::size_t>(k)]),
                          ir::ref(state, ir::exprVec(ir::lit(k - 1)))));
  }
  ctx.body.append(ir::assign(outRef(ctx, 0, {}), std::move(acc)));
  // Shift register update, oldest first (unrolled; taps are small constants).
  for (int k = taps - 2; k >= 1; --k) {
    ctx.epilogue.append(ir::assign(ir::ref(state, ir::exprVec(ir::lit(k))),
                                   ir::ref(state, ir::exprVec(ir::lit(k - 1)))));
  }
  ctx.epilogue.append(
      ir::assign(ir::ref(state, ir::exprVec(ir::lit(0))), inRef(ctx, 0, {})));
}

// --------------------------------------------------------------- BiquadBlock

std::vector<Type> BiquadBlock::inferTypes(const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  if (!inputs[0].isScalar()) typeError(*this, "biquad input must be scalar");
  return {Type::float64()};
}

void BiquadBlock::emit(EmitContext& ctx) const {
  // Direct form II transposed:
  //   y  = b0*u + s1
  //   s1' = b1*u - a1*y + s2
  //   s2' = b2*u - a2*y
  const std::string s1 = ctx.uniqueName(name() + "_s1");
  const std::string s2 = ctx.uniqueName(name() + "_s2");
  ctx.fn.declare(s1, Type::float64(), ir::VarRole::State);
  ctx.fn.declare(s2, Type::float64(), ir::VarRole::State);
  ctx.body.append(ir::assign(
      outRef(ctx, 0, {}),
      ir::add(ir::mul(ir::flt(b0_), inRef(ctx, 0, {})), ir::var(s1))));
  ctx.epilogue.append(ir::assign(
      ir::ref(s1),
      ir::add(ir::sub(ir::mul(ir::flt(b1_), inRef(ctx, 0, {})),
                      ir::mul(ir::flt(a1_), outRef(ctx, 0, {}))),
              ir::var(s2))));
  ctx.epilogue.append(ir::assign(
      ir::ref(s2), ir::sub(ir::mul(ir::flt(b2_), inRef(ctx, 0, {})),
                           ir::mul(ir::flt(a2_), outRef(ctx, 0, {})))));
}

// --------------------------------------------------------------- MatVecBlock

MatVecBlock::MatVecBlock(std::string name, int rows, int cols,
                         std::vector<double> matrix)
    : Block(std::move(name)), rows_(rows), cols_(cols),
      matrix_(std::move(matrix)) {
  if (static_cast<int>(matrix_.size()) != rows_ * cols_) {
    throw ToolchainError("block '" + Block::name() + "': matrix size mismatch");
  }
}

std::vector<Type> MatVecBlock::inferTypes(const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  const Type expected = Type::array(ir::ScalarKind::Float64, {cols_});
  if (inputs[0].dims() != expected.dims()) {
    typeError(*this, "expected input " + expected.str() + ", got " +
                         inputs[0].str());
  }
  return {Type::array(ir::ScalarKind::Float64, {rows_})};
}

void MatVecBlock::emit(EmitContext& ctx) const {
  const std::string mat = ctx.declareConst(
      name() + "_A", Type::array(ir::ScalarKind::Float64, {rows_, cols_}),
      matrix_);
  const std::string m = ctx.uniqueName("m");
  const std::string k = ctx.uniqueName("k");
  auto inner = ir::block();
  std::vector<ExprPtr> midx;
  midx.push_back(ir::var(m));
  inner->append(ir::assign(
      outRef(ctx, 0, midx),
      ir::add(outRef(ctx, 0, midx),
              ir::mul(ir::ref(mat, ir::exprVec(ir::var(m), ir::var(k))),
                      ir::ref(ctx.inputs[0], ir::exprVec(ir::var(k)))))));
  auto outer = ir::block();
  outer->append(ir::assign(outRef(ctx, 0, midx), ir::flt(0.0)));
  outer->append(ir::forLoop(k, 0, cols_, std::move(inner)));
  ctx.body.append(ir::forLoop(m, 0, rows_, std::move(outer)));
}

// --------------------------------------------------------------- Conv2dBlock

Conv2dBlock::Conv2dBlock(std::string name, int kernelH, int kernelW,
                         std::vector<double> kernel)
    : Block(std::move(name)), kernelH_(kernelH), kernelW_(kernelW),
      kernel_(std::move(kernel)) {
  if (static_cast<int>(kernel_.size()) != kernelH_ * kernelW_) {
    throw ToolchainError("block '" + Block::name() + "': kernel size mismatch");
  }
}

std::vector<Type> Conv2dBlock::inferTypes(const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  if (inputs[0].rank() != 2) typeError(*this, "conv2d input must be 2-D");
  return {inputs[0]};
}

void Conv2dBlock::emit(EmitContext& ctx) const {
  const Type& type = signalType(ctx, 0);
  const int height = type.dims()[0];
  const int width = type.dims()[1];
  const int ch = kernelH_ / 2;
  const int cw = kernelW_ / 2;
  const std::string kern = ctx.declareConst(
      name() + "_K", Type::array(ir::ScalarKind::Float64, {kernelH_, kernelW_}),
      kernel_);
  const std::string i = ctx.uniqueName("i");
  const std::string j = ctx.uniqueName("j");
  const std::string ki = ctx.uniqueName("ki");
  const std::string kj = ctx.uniqueName("kj");

  std::vector<ExprPtr> oidx;
  oidx.push_back(ir::var(i));
  oidx.push_back(ir::var(j));

  // Guarded accumulation (zero padding): skip out-of-image taps.
  auto srcRow = [&] { return ir::sub(ir::add(ir::var(i), ir::var(ki)), ir::lit(ch)); };
  auto srcCol = [&] { return ir::sub(ir::add(ir::var(j), ir::var(kj)), ir::lit(cw)); };
  ExprPtr inBounds = ir::bin(
      ir::BinOpKind::And,
      ir::bin(ir::BinOpKind::And, ir::ge(srcRow(), ir::lit(0)),
              ir::lt(srcRow(), ir::lit(height))),
      ir::bin(ir::BinOpKind::And, ir::ge(srcCol(), ir::lit(0)),
              ir::lt(srcCol(), ir::lit(width))));
  auto guarded = ir::block();
  guarded->append(ir::assign(
      outRef(ctx, 0, oidx),
      ir::add(outRef(ctx, 0, oidx),
              ir::mul(ir::ref(kern, ir::exprVec(ir::var(ki), ir::var(kj))),
                      ir::ref(ctx.inputs[0], ir::exprVec(srcRow(), srcCol()))))));
  auto kjBody = ir::block();
  kjBody->append(ir::ifStmt(std::move(inBounds), std::move(guarded)));
  auto kiBody = ir::block();
  kiBody->append(ir::forLoop(kj, 0, kernelW_, std::move(kjBody)));
  auto jBody = ir::block();
  jBody->append(ir::assign(outRef(ctx, 0, oidx), ir::flt(0.0)));
  jBody->append(ir::forLoop(ki, 0, kernelH_, std::move(kiBody)));
  auto iBody = ir::block();
  iBody->append(ir::forLoop(j, 0, width, std::move(jBody)));
  ctx.body.append(ir::forLoop(i, 0, height, std::move(iBody)));
}

// ------------------------------------------------------------- Lookup1dBlock

Lookup1dBlock::Lookup1dBlock(std::string name, double x0, double dx,
                             std::vector<double> table)
    : Block(std::move(name)), x0_(x0), dx_(dx), table_(std::move(table)) {
  if (table_.size() < 2) {
    throw ToolchainError("block '" + Block::name() + "': table needs >= 2 entries");
  }
  if (dx_ <= 0.0) {
    throw ToolchainError("block '" + Block::name() + "': dx must be positive");
  }
}

std::vector<Type> Lookup1dBlock::inferTypes(
    const std::vector<Type>& inputs) const {
  expectInputCount(*this, inputs);
  return {inputs[0]};
}

void Lookup1dBlock::emit(EmitContext& ctx) const {
  const Type& type = signalType(ctx, 0);
  const int n = static_cast<int>(table_.size());
  const std::string table = ctx.declareConst(
      name() + "_T", Type::array(ir::ScalarKind::Float64, {n}), table_);
  const std::string pos = ctx.uniqueName(name() + "_pos");
  const std::string cell = ctx.uniqueName(name() + "_cell");
  const std::string frac = ctx.uniqueName(name() + "_frac");
  ctx.fn.declare(pos, Type::float64(), ir::VarRole::Temp, ir::Storage::Local);
  ctx.fn.declare(cell, Type::int32(), ir::VarRole::Temp, ir::Storage::Local);
  ctx.fn.declare(frac, Type::float64(), ir::VarRole::Temp, ir::Storage::Local);

  forEachElement(ctx, ctx.body, type, [&](std::vector<ExprPtr> idx) {
    auto seq = ir::block();
    // pos = (u - x0) / dx, clamped to [0, n-1].
    seq->append(ir::assign(
        ir::ref(pos),
        ir::bin(ir::BinOpKind::Min, ir::flt(static_cast<double>(n - 1)),
                ir::bin(ir::BinOpKind::Max, ir::flt(0.0),
                        ir::div(ir::sub(inRef(ctx, 0, idx), ir::flt(x0_)),
                                ir::flt(dx_))))));
    // cell = min(int(floor(pos)), n-2); frac = pos - cell.
    seq->append(ir::assign(
        ir::ref(cell),
        ir::bin(ir::BinOpKind::Min, ir::lit(n - 2),
                ir::un(ir::UnOpKind::ToInt,
                       ir::un(ir::UnOpKind::Floor, ir::var(pos))))));
    seq->append(ir::assign(
        ir::ref(frac),
        ir::sub(ir::var(pos), ir::un(ir::UnOpKind::ToFloat, ir::var(cell)))));
    seq->append(ir::assign(
        outRef(ctx, 0, idx),
        ir::add(ir::mul(ir::ref(table, ir::exprVec(ir::var(cell))),
                        ir::sub(ir::flt(1.0), ir::var(frac))),
                ir::mul(ir::ref(table, ir::exprVec(ir::add(ir::var(cell),
                                                           ir::lit(1)))),
                        ir::var(frac)))));
    ir::StmtPtr out = std::move(seq);
    return out;
  });
}

}  // namespace argo::model
