// Hierarchical Task Graph (HTG) extraction.
//
// Paper Section II-B: "a task extraction stage is applied to the program,
// from which we obtain a Hierarchical Task Graph (HTG). In a HTG, loops are
// enclosed in an additional hierarchy level, resulting in a hierarchy of
// acyclic task graphs. Task dependencies embed information on the variables
// and the buffers that need to be communicated between tasks, while task
// nodes include additional information on possible shared resource
// accesses."
//
// Representation here:
//  * Htg       — one node per top-level statement region of the step
//                function. For-loops form their own hierarchy level; a loop
//                whose iterations carry no dependence (ir::isLoopParallel)
//                is marked expandable.
//  * Dep       — a dependence edge annotated with the conflicting variables
//                and the number of bytes that must be communicated.
//  * expand()  — instantiates the hierarchy into a flat, acyclic task set
//                for the scheduler: parallel loops are split into
//                `chunksPerLoop` iteration-range chunks (the paper's "very
//                fine grain task decomposition" knob), sequential regions
//                stay single tasks, and adjacent tiny tasks can be merged.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/dependence.h"
#include "ir/function.h"

namespace argo::htg {

/// One node of the HTG: a top-level statement of the step function.
struct HtgNode {
  int id = 0;
  std::string name;
  /// The statement this node executes (owned by the source function).
  const ir::Stmt* stmt = nullptr;
  /// Non-null when the statement is a For loop (one extra hierarchy level).
  const ir::For* loop = nullptr;
  /// True when the loop's iterations can execute concurrently.
  bool parallelizable = false;
  /// Name-level read/write sets.
  ir::VarUsage usage;
};

/// A dependence edge between HTG nodes (program order, name-level sets,
/// refined by the array dependence tests where applicable).
struct Dep {
  int from = 0;
  int to = 0;
  /// Variables written by `from` and read/written by `to`.
  std::set<std::string> vars;
  /// Worst-case bytes that must be visible to `to` (sum of conflicting
  /// variable footprints; the buffer sizes of paper Section II-B).
  std::int64_t bytes = 0;
};

/// The hierarchical task graph of one function.
class Htg {
 public:
  Htg(const ir::Function& fn, std::vector<HtgNode> nodes, std::vector<Dep> deps)
      : fn_(&fn), nodes_(std::move(nodes)), deps_(std::move(deps)) {}

  [[nodiscard]] const ir::Function& fn() const noexcept { return *fn_; }
  [[nodiscard]] const std::vector<HtgNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<Dep>& deps() const noexcept { return deps_; }
  [[nodiscard]] int parallelizableLoopCount() const noexcept;

 private:
  const ir::Function* fn_;
  std::vector<HtgNode> nodes_;
  std::vector<Dep> deps_;
};

/// Builds the HTG of `fn`: one node per top-level statement, dependence
/// edges from name-level read/write conflicts (kept transitively complete;
/// the scheduler relies on pairwise edges, not on transitive reduction).
[[nodiscard]] Htg buildHtg(const ir::Function& fn);

/// A schedulable task instantiated from the HTG.
struct Task {
  int id = 0;
  std::string name;
  /// Statements to execute, owned by the task (clones; loop chunks carry
  /// adjusted bounds).
  std::vector<ir::StmtPtr> stmts;
  /// Originating HTG node and chunk position (chunkCount == 1 for
  /// non-split nodes).
  int htgNode = 0;
  int chunkIndex = 0;
  int chunkCount = 1;
  ir::VarUsage usage;
};

/// Flat acyclic task graph handed to the scheduler.
struct TaskGraph {
  const ir::Function* fn = nullptr;
  std::vector<Task> tasks;
  std::vector<Dep> deps;  ///< Indices into `tasks`.

  [[nodiscard]] std::vector<std::vector<int>> successors() const;
  [[nodiscard]] std::vector<std::vector<int>> predecessors() const;
};

/// Expansion options.
struct ExpandOptions {
  /// Number of chunks each parallelizable loop is split into, clamped to
  /// the trip count (count, default 4). 1 disables loop-level parallelism;
  /// this is the paper's "very fine grain task decomposition" knob, and
  /// the axis the cross-layer feedback loop explores.
  int chunksPerLoop = 4;
  /// Merge runs of consecutive loop-free HTG nodes (scalar "glue" code)
  /// into one task each (default false; core::Toolchain turns it on).
  /// Consecutive program-order nodes can always be merged without
  /// creating cycles (no third node can sit between them), and fusing
  /// scalar glue removes synchronization overhead that would otherwise
  /// dominate tiny tasks.
  bool mergeScalarChains = false;
};

/// Instantiates the HTG into a flat task graph.
[[nodiscard]] TaskGraph expand(const Htg& htg, const ExpandOptions& options);

}  // namespace argo::htg
