#include "htg/htg.h"

#include <algorithm>
#include <set>
#include <utility>

#include "support/diagnostics.h"

namespace argo::htg {

using support::ToolchainError;

int Htg::parallelizableLoopCount() const noexcept {
  int count = 0;
  for (const HtgNode& node : nodes_) {
    if (node.parallelizable) ++count;
  }
  return count;
}

namespace {

/// Bytes of all variables in `vars` (0 for loop variables).
std::int64_t footprintBytes(const ir::Function& fn,
                            const std::set<std::string>& vars) {
  std::int64_t total = 0;
  for (const std::string& v : vars) {
    if (const ir::VarDecl* decl = fn.find(v)) total += decl->type.byteSize();
  }
  return total;
}

std::string nodeName(const ir::Stmt& stmt, int index) {
  if (!stmt.label.empty()) return stmt.label;
  switch (stmt.kind()) {
    case ir::StmtKind::For:
      return "loop_" + ir::cast<ir::For>(stmt).var() + "_" +
             std::to_string(index);
    case ir::StmtKind::If:
      return "cond_" + std::to_string(index);
    default:
      return "stmt_" + std::to_string(index);
  }
}

/// Dependence edge between two nodes: variables written by `a` and touched
/// by `b`, plus anti-dependences (read by a, written by b).
std::set<std::string> conflictVars(const ir::VarUsage& a,
                                   const ir::VarUsage& b) {
  std::set<std::string> vars;
  for (const std::string& w : a.writes) {
    if (b.reads.contains(w) || b.writes.contains(w)) vars.insert(w);
  }
  for (const std::string& r : a.reads) {
    if (b.writes.contains(r)) vars.insert(r);
  }
  return vars;
}

}  // namespace

Htg buildHtg(const ir::Function& fn) {
  std::vector<HtgNode> nodes;
  int id = 0;
  for (const ir::StmtPtr& stmt : fn.body().stmts()) {
    HtgNode node;
    node.id = id;
    node.stmt = stmt.get();
    node.name = nodeName(*stmt, id);
    node.usage = ir::collectUsage(*stmt);
    if (const auto* loop = ir::dynCast<ir::For>(*stmt)) {
      node.loop = loop;
      node.parallelizable = ir::isLoopParallel(*loop, fn);
    }
    nodes.push_back(std::move(node));
    ++id;
  }

  // Privatized scalars must not escape: a loop whose chunks each hold a
  // "last value" of a scalar temp cannot be split if any other node reads
  // that temp (sequential semantics would deliver the final iteration's
  // value; chunked execution would deliver an arbitrary chunk's).
  for (HtgNode& node : nodes) {
    if (!node.parallelizable) continue;
    for (const std::string& w : node.usage.writes) {
      const ir::VarDecl* decl = fn.find(w);
      if (decl == nullptr || !decl->type.isScalar()) continue;
      for (const HtgNode& other : nodes) {
        if (other.id != node.id && other.usage.reads.contains(w)) {
          node.parallelizable = false;
          break;
        }
      }
      if (!node.parallelizable) break;
    }
  }

  std::vector<Dep> deps;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      std::set<std::string> vars = conflictVars(nodes[i].usage, nodes[j].usage);
      if (vars.empty()) continue;
      Dep dep;
      dep.from = nodes[i].id;
      dep.to = nodes[j].id;
      dep.bytes = footprintBytes(fn, vars);
      dep.vars = std::move(vars);
      deps.push_back(std::move(dep));
    }
  }
  return Htg(fn, std::move(nodes), std::move(deps));
}

std::vector<std::vector<int>> TaskGraph::successors() const {
  std::vector<std::vector<int>> succ(tasks.size());
  for (const Dep& d : deps) {
    succ[static_cast<std::size_t>(d.from)].push_back(d.to);
  }
  return succ;
}

std::vector<std::vector<int>> TaskGraph::predecessors() const {
  std::vector<std::vector<int>> pred(tasks.size());
  for (const Dep& d : deps) {
    pred[static_cast<std::size_t>(d.to)].push_back(d.from);
  }
  return pred;
}

TaskGraph expand(const Htg& htg, const ExpandOptions& options) {
  if (options.chunksPerLoop < 1) {
    throw ToolchainError("expand: chunksPerLoop must be >= 1");
  }
  TaskGraph graph;
  graph.fn = &htg.fn();

  // taskOf[node] = task ids instantiated from that HTG node.
  std::vector<std::vector<int>> taskOf(htg.nodes().size());

  // Pre-compute the merge group of each node: consecutive loop-free nodes
  // share a group when mergeScalarChains is on; every other node is its
  // own group.
  std::vector<int> groupOf(htg.nodes().size());
  {
    int group = -1;
    bool previousMergeable = false;
    for (std::size_t k = 0; k < htg.nodes().size(); ++k) {
      const bool mergeable =
          options.mergeScalarChains && htg.nodes()[k].loop == nullptr;
      if (!(mergeable && previousMergeable)) ++group;
      groupOf[k] = group;
      previousMergeable = mergeable;
    }
  }
  int lastGroup = -1;

  for (const HtgNode& node : htg.nodes()) {
    const bool split =
        node.parallelizable && options.chunksPerLoop > 1 &&
        node.loop->tripCount() > 1;
    if (!split) {
      const int group = groupOf[static_cast<std::size_t>(node.id)];
      if (options.mergeScalarChains && node.loop == nullptr &&
          group == lastGroup && !graph.tasks.empty()) {
        // Append to the previous task of the same scalar chain.
        Task& previous = graph.tasks.back();
        previous.stmts.push_back(node.stmt->clone());
        previous.usage.merge(node.usage);
        taskOf[static_cast<std::size_t>(node.id)].push_back(previous.id);
        continue;
      }
      lastGroup = group;
      Task task;
      task.id = static_cast<int>(graph.tasks.size());
      task.name = node.name;
      task.stmts.push_back(node.stmt->clone());
      task.htgNode = node.id;
      task.usage = node.usage;
      taskOf[static_cast<std::size_t>(node.id)].push_back(task.id);
      graph.tasks.push_back(std::move(task));
      continue;
    }
    lastGroup = -1;
    // Split the parallel loop's iteration range into near-equal chunks.
    const ir::For& loop = *node.loop;
    const std::int64_t trip = loop.tripCount();
    const int chunks =
        static_cast<int>(std::min<std::int64_t>(options.chunksPerLoop, trip));
    std::int64_t chunkStart = loop.lower();
    for (int c = 0; c < chunks; ++c) {
      const std::int64_t iterations =
          trip / chunks + (c < trip % chunks ? 1 : 0);
      const std::int64_t chunkEnd = chunkStart + iterations * loop.step();
      ir::StmtPtr cloned = loop.clone();
      auto& clonedLoop = ir::cast<ir::For>(*cloned);
      clonedLoop.setBounds(chunkStart, std::min(chunkEnd, loop.upper()));
      chunkStart = chunkEnd;

      Task task;
      task.id = static_cast<int>(graph.tasks.size());
      task.name = node.name + "#" + std::to_string(c);
      task.stmts.push_back(std::move(cloned));
      task.htgNode = node.id;
      task.chunkIndex = c;
      task.chunkCount = chunks;
      task.usage = node.usage;
      taskOf[static_cast<std::size_t>(node.id)].push_back(task.id);
      graph.tasks.push_back(std::move(task));
    }
  }

  // Instantiate dependence edges between every chunk pair of dependent
  // nodes. Chunks of the same node are mutually independent by
  // construction (the loop was proven parallel). Buffer bytes are split
  // evenly across consuming chunks — each chunk needs only its slice of
  // the producer's output (documented approximation for non-rectangular
  // access patterns; safe for scheduling, which treats bytes as transfer
  // cost, not as a correctness property).
  std::set<std::pair<int, int>> seenEdges;
  for (const Dep& dep : htg.deps()) {
    const auto& producers = taskOf[static_cast<std::size_t>(dep.from)];
    const auto& consumers = taskOf[static_cast<std::size_t>(dep.to)];
    for (int p : producers) {
      for (int c : consumers) {
        // Merged chains collapse several HTG nodes into one task: skip
        // self-edges and duplicates.
        if (p == c || !seenEdges.emplace(p, c).second) continue;
        Dep edge;
        edge.from = p;
        edge.to = c;
        edge.vars = dep.vars;
        edge.bytes = std::max<std::int64_t>(
            1, dep.bytes / static_cast<std::int64_t>(
                               producers.size() * consumers.size()));
        graph.deps.push_back(std::move(edge));
      }
    }
  }
  return graph;
}

}  // namespace argo::htg
