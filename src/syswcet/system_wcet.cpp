#include "syswcet/system_wcet.h"

#include <algorithm>
#include <queue>

#include "support/diagnostics.h"
#include "support/interval.h"
#include "support/parallel.h"

namespace argo::syswcet {

using support::ToolchainError;

namespace {

/// Task-level happens-before edges: per-core program order plus
/// producer->consumer event edges (annotated with communicated bytes).
struct HbGraph {
  struct Edge {
    int to = 0;
    std::int64_t commBytes = 0;  // 0 for same-core program order
  };
  std::vector<std::vector<Edge>> succ;
  std::vector<std::vector<int>> pred;
};

HbGraph buildHb(const par::ParallelProgram& program) {
  const std::size_t n = program.graph->tasks.size();
  HbGraph hb;
  hb.succ.resize(n);
  hb.pred.resize(n);
  auto addEdge = [&](int from, int to, std::int64_t bytes) {
    hb.succ[static_cast<std::size_t>(from)].push_back({to, bytes});
    hb.pred[static_cast<std::size_t>(to)].push_back(from);
  };
  for (const par::CoreProgram& core : program.cores) {
    int prev = -1;
    for (const par::ParOp& op : core.ops) {
      if (op.kind != par::OpKind::Execute) continue;
      if (prev >= 0) addEdge(prev, op.task, 0);
      prev = op.task;
    }
  }
  for (const par::Event& e : program.events) {
    addEdge(e.producerTask, e.consumerTask, e.bytes);
  }
  return hb;
}

}  // namespace

std::vector<std::vector<bool>> mayHappenInParallel(
    const par::ParallelProgram& program, int parallelThreads) {
  const std::size_t n = program.graph->tasks.size();
  const HbGraph hb = buildHb(program);
  // reachable[i][j]: i happens-before j. Each source's traversal touches
  // only its own row, so the rows are pool-parallel with no reduction
  // needed (the matrix is the result, indexed by source).
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  support::parallelFor(n, parallelThreads, [&](std::size_t i) {
    std::queue<int> frontier;
    frontier.push(static_cast<int>(i));
    while (!frontier.empty()) {
      const int t = frontier.front();
      frontier.pop();
      for (const HbGraph::Edge& e : hb.succ[static_cast<std::size_t>(t)]) {
        if (!reach[i][static_cast<std::size_t>(e.to)]) {
          reach[i][static_cast<std::size_t>(e.to)] = true;
          frontier.push(e.to);
        }
      }
    }
  });
  std::vector<std::vector<bool>> mhp(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      mhp[i][j] = i != j && !reach[i][j] && !reach[j][i];
    }
  }
  return mhp;
}

SystemWcet analyzeSystem(const par::ParallelProgram& program,
                         const adl::Platform& platform,
                         const std::vector<sched::TaskTiming>& timings,
                         InterferenceMethod method, int parallelThreads) {
  const std::size_t n = program.graph->tasks.size();
  if (timings.size() != n) {
    throw ToolchainError("system WCET: timing table size mismatch");
  }
  const HbGraph hb = buildHb(program);

  // Sync overhead per task: one flag access per Wait/Signal it executes.
  std::vector<int> syncOps(n, 0);
  for (const par::CoreProgram& core : program.cores) {
    int pendingBefore = 0;
    for (const par::ParOp& op : core.ops) {
      switch (op.kind) {
        case par::OpKind::Wait:
          ++pendingBefore;
          break;
        case par::OpKind::Execute:
          syncOps[static_cast<std::size_t>(op.task)] += pendingBefore;
          pendingBefore = 0;
          break;
        case par::OpKind::Signal: {
          const int producer = program.event(op.event).producerTask;
          syncOps[static_cast<std::size_t>(producer)] += 1;
          break;
        }
      }
    }
  }

  std::vector<int> tileOf(n);
  for (std::size_t i = 0; i < n; ++i) {
    tileOf[i] = program.schedule.placements[i].tile;
  }

  SystemWcet result;
  result.tasks.assign(n, TaskBound{});

  std::vector<int> contenders(n, 1);
  if (method == InterferenceMethod::AllContenders) {
    contenders.assign(n, platform.coreCount());
  }

  // Topological order over HB (it is a DAG: per-core chains + schedule-
  // consistent event edges).
  std::vector<int> topo;
  {
    std::vector<int> indeg(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      indeg[i] = static_cast<int>(hb.pred[i].size());
    }
    std::vector<int> ready;
    for (std::size_t i = 0; i < n; ++i) {
      if (indeg[i] == 0) ready.push_back(static_cast<int>(i));
    }
    while (!ready.empty()) {
      const int t = ready.back();
      ready.pop_back();
      topo.push_back(t);
      for (const HbGraph::Edge& e : hb.succ[static_cast<std::size_t>(t)]) {
        if (--indeg[static_cast<std::size_t>(e.to)] == 0) ready.push_back(e.to);
      }
    }
    if (topo.size() != n) {
      throw ToolchainError("happens-before graph is cyclic (internal error)");
    }
  }

  // Contender counts from the MHP relation (structural, therefore sound
  // for any actual interleaving — window overlap would miss executions
  // that run earlier than their worst case): a task contends with every
  // distinct other tile hosting an MHP task that itself uses the
  // interconnect.
  if (method == InterferenceMethod::MhpRefined) {
    const std::vector<std::vector<bool>> mhp =
        mayHappenInParallel(program, parallelThreads);
    for (std::size_t i = 0; i < n; ++i) {
      if (timings[i].sharedAccesses == 0 && syncOps[i] == 0) continue;
      std::vector<bool> tileSeen(
          static_cast<std::size_t>(platform.coreCount()), false);
      int count = 1;
      for (std::size_t j = 0; j < n; ++j) {
        if (!mhp[i][j] || tileOf[j] == tileOf[i]) continue;
        if (tileSeen[static_cast<std::size_t>(tileOf[j])]) continue;
        const bool usesInterconnect =
            timings[j].sharedAccesses > 0 || syncOps[j] > 0;
        if (!usesInterconnect) continue;
        tileSeen[static_cast<std::size_t>(tileOf[j])] = true;
        ++count;
      }
      contenders[i] = count;
    }
  }

  // Durations under the (now fixed) contender counts.
  for (std::size_t i = 0; i < n; ++i) {
    const Cycles base =
        timings[i].wcetByTile[static_cast<std::size_t>(tileOf[i])];
    const Cycles extraPerAccess =
        platform.sharedAccessWorstCase(tileOf[i], contenders[i]) -
        platform.sharedAccessBase(tileOf[i]);
    // Sync flag accesses experience the same contention as data accesses.
    const Cycles interference =
        (timings[i].sharedAccesses + syncOps[i]) * extraPerAccess;
    const Cycles sync = static_cast<Cycles>(syncOps[i]) * program.syncOverhead;
    result.tasks[i].interference = interference;
    result.tasks[i].inflated = base + interference + sync;
    result.tasks[i].contenders = contenders[i];
  }

  // Worst-case windows by longest path over HB. Communication edges pay
  // the worst-case transfer cost under the producer's contender count.
  for (std::size_t i = 0; i < n; ++i) result.tasks[i].start = 0;
  for (int t : topo) {
    const std::size_t ti = static_cast<std::size_t>(t);
    result.tasks[ti].finish =
        result.tasks[ti].start + result.tasks[ti].inflated;
    for (const HbGraph::Edge& e : hb.succ[ti]) {
      Cycles arrival = result.tasks[ti].finish;
      if (e.commBytes > 0) {
        arrival += platform.transferWorstCase(
            e.commBytes, tileOf[ti],
            tileOf[static_cast<std::size_t>(e.to)], contenders[ti]);
      }
      auto& succStart = result.tasks[static_cast<std::size_t>(e.to)].start;
      succStart = std::max(succStart, arrival);
    }
  }

  result.fixpointIterations = 1;
  for (const TaskBound& t : result.tasks) {
    result.makespan = std::max(result.makespan, t.finish);
  }
  return result;
}

}  // namespace argo::syswcet
