// System-level WCET analysis.
//
// Paper Section II-D: "System-level WCET estimation builds on the parallel
// program representation to precisely identify resource conflicts. This is
// achieved through (i) a static analysis that determines as accurately as
// possible if several code snippets may happen in parallel and (ii) a cost
// model of the interference derived from the platform abstract models."
//
// Implementation:
//  * Happens-before (HB): program order per core + signal->wait edges,
//    closed transitively. Two tasks May-Happen-in-Parallel (MHP) iff
//    neither reaches the other.
//  * Interference fixpoint: every task's duration is its code-level WCET
//    plus sync overhead plus sharedAccesses x (worst-case access under its
//    contender count - uncontended access). Contender counts are derived
//    from worst-case execution windows (longest path over HB), which in
//    turn depend on durations — iterated monotonically to a fixpoint
//    (contender counts never decrease across iterations, so convergence is
//    bounded by the core count).
//  * Pessimistic baseline (InterferenceMethod::AllContenders): every access
//    pays for all cores being live, the assumption a WCET tool must make
//    for a manually parallelized program whose parallel structure it cannot
//    see (the parMERASA observation of Section III-C).
#pragma once

#include <vector>

#include "par/parallel_program.h"

namespace argo::syswcet {

using adl::Cycles;

/// How interference is accounted.
enum class InterferenceMethod : std::uint8_t {
  MhpRefined,     ///< Contenders from MHP windows (the ARGO approach).
  AllContenders,  ///< Every core contends always (pessimistic baseline).
};

/// Per-task outcome.
struct TaskBound {
  Cycles start = 0;      ///< Worst-case release time.
  Cycles finish = 0;     ///< Worst-case completion time.
  Cycles inflated = 0;   ///< Duration including interference and sync.
  Cycles interference = 0;  ///< Interference share of `inflated`.
  int contenders = 1;    ///< Contender count the access costs assumed.

  bool operator==(const TaskBound&) const = default;
};

/// Whole-system result.
struct SystemWcet {
  Cycles makespan = 0;
  std::vector<TaskBound> tasks;  ///< Indexed like TaskGraph::tasks.
  int fixpointIterations = 0;

  /// Field-complete equality: the determinism tests/benches compare whole
  /// results, and a defaulted == keeps them covering future fields.
  bool operator==(const SystemWcet&) const = default;
};

/// Computes the system-level WCET bound of an explicit parallel program.
/// `timings` are the code-level results from sched::computeTaskTimings.
/// `parallelThreads` parallelizes the MHP reachability rows on the shared
/// pool (support::parallelFor); the bound is bit-identical for any thread
/// count. 0 = one per hardware thread; keep the default 1 when calling
/// from inside another pooled phase (pools do not nest).
[[nodiscard]] SystemWcet analyzeSystem(
    const par::ParallelProgram& program, const adl::Platform& platform,
    const std::vector<sched::TaskTiming>& timings,
    InterferenceMethod method = InterferenceMethod::MhpRefined,
    int parallelThreads = 1);

/// MHP matrix: result[i][j] is true when tasks i and j are unordered by
/// happens-before (and i != j). Symmetric. Each task's reachable set is an
/// independent traversal, so rows are computed on a work-stealing pool
/// through the shared support::parallelFor layer when
/// `parallelThreads != 1` (same convention as analyzeSystem); the matrix
/// is identical for any thread count.
[[nodiscard]] std::vector<std::vector<bool>> mayHappenInParallel(
    const par::ParallelProgram& program, int parallelThreads = 1);

}  // namespace argo::syswcet
