#include "adl/platform.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "support/diagnostics.h"

namespace argo::adl {

using ir::OpClass;
using support::ToolchainError;

namespace {

std::array<int, ir::kOpClassCount> makeOpCycles(
    int intAlu, int intMul, int intDiv, int fAdd, int fMul, int fDiv,
    int mathFunc, int compare, int select, int branch, int loopStep) {
  std::array<int, ir::kOpClassCount> cycles{};
  cycles[static_cast<std::size_t>(OpClass::IntAlu)] = intAlu;
  cycles[static_cast<std::size_t>(OpClass::IntMul)] = intMul;
  cycles[static_cast<std::size_t>(OpClass::IntDiv)] = intDiv;
  cycles[static_cast<std::size_t>(OpClass::FloatAdd)] = fAdd;
  cycles[static_cast<std::size_t>(OpClass::FloatMul)] = fMul;
  cycles[static_cast<std::size_t>(OpClass::FloatDiv)] = fDiv;
  cycles[static_cast<std::size_t>(OpClass::MathFunc)] = mathFunc;
  cycles[static_cast<std::size_t>(OpClass::Compare)] = compare;
  cycles[static_cast<std::size_t>(OpClass::Select)] = select;
  cycles[static_cast<std::size_t>(OpClass::Branch)] = branch;
  cycles[static_cast<std::size_t>(OpClass::LoopStep)] = loopStep;
  return cycles;
}

}  // namespace

CoreModel CoreModel::xentiumDsp() {
  CoreModel core;
  core.name = "xentium";
  // VLIW DSP: single-cycle MACs, slow division, software transcendentals.
  core.opCycles = makeOpCycles(/*intAlu=*/1, /*intMul=*/2, /*intDiv=*/12,
                               /*fAdd=*/2, /*fMul=*/2, /*fDiv=*/16,
                               /*mathFunc=*/40, /*compare=*/1, /*select=*/1,
                               /*branch=*/2, /*loopStep=*/1);
  core.localAccessCycles = 1;
  core.spmAccessCycles = 1;  // tightly-coupled data memory
  core.spmBytes = 32 * 1024;
  return core;
}

CoreModel CoreModel::leon3() {
  CoreModel core;
  core.name = "leon3";
  // In-order RISC with FPU: slower multiply, microcoded transcendentals.
  core.opCycles = makeOpCycles(/*intAlu=*/1, /*intMul=*/4, /*intDiv=*/32,
                               /*fAdd=*/4, /*fMul=*/4, /*fDiv=*/24,
                               /*mathFunc=*/60, /*compare=*/1, /*select=*/2,
                               /*branch=*/3, /*loopStep=*/2);
  core.localAccessCycles = 1;
  core.spmAccessCycles = 2;
  core.spmBytes = 16 * 1024;
  return core;
}

CoreModel CoreModel::mathAccelerator() {
  CoreModel core = leon3();
  core.name = "math_accel";
  core.opCycles[static_cast<std::size_t>(OpClass::MathFunc)] = 8;
  core.opCycles[static_cast<std::size_t>(OpClass::FloatDiv)] = 6;
  core.opCycles[static_cast<std::size_t>(OpClass::FloatAdd)] = 2;
  core.opCycles[static_cast<std::size_t>(OpClass::FloatMul)] = 2;
  return core;
}

const char* arbitrationName(Arbitration a) noexcept {
  switch (a) {
    case Arbitration::RoundRobin: return "round_robin";
    case Arbitration::Tdma: return "tdma";
  }
  return "?";
}

Cycles BusModel::worstCaseAccessCycles(int contenders,
                                       int totalCores) const noexcept {
  contenders = std::clamp(contenders, 1, totalCores);
  switch (arbitration) {
    case Arbitration::RoundRobin:
      // The issuer can be delayed by one full access from every other live
      // contender before its grant (work-conserving round-robin).
      return static_cast<Cycles>(baseAccessCycles) +
             static_cast<Cycles>(contenders - 1) * baseAccessCycles;
    case Arbitration::Tdma:
      // Arrival just after the own slot closed: wait a full wheel
      // revolution, then pay the access. Independent of live contenders —
      // composable but never better than the full wheel.
      return static_cast<Cycles>(totalCores) * slotCycles + baseAccessCycles;
  }
  return baseAccessCycles;
}

Cycles BusModel::worstCaseTransferCycles(std::int64_t bytes, int contenders,
                                         int totalCores) const noexcept {
  if (bytes <= 0) return 0;
  const std::int64_t beats = (bytes + wordBytes - 1) / wordBytes;
  return beats * worstCaseAccessCycles(contenders, totalCores);
}

int NocModel::hopDistance(int tileA, int tileB) const noexcept {
  const int ax = tileA % meshWidth;
  const int ay = tileA / meshWidth;
  const int bx = tileB % meshWidth;
  const int by = tileB / meshWidth;
  return std::abs(ax - bx) + std::abs(ay - by);
}

Cycles NocModel::worstCaseAccessCycles(int tile, int contenders) const noexcept {
  const int hops = hopDistance(tile, memTile);
  // Request + response traverse the mesh; WRR QoS bounds blocking at each
  // hop to one flit slot per competing flow; the memory controller serves
  // competing requests round-robin.
  const Cycles route = static_cast<Cycles>(2 * hops) * (routerCycles + linkCycles);
  const Cycles hopBlocking =
      static_cast<Cycles>(2 * hops) * (contenders - 1) * linkCycles;
  const Cycles memService =
      static_cast<Cycles>(contenders) * memAccessCycles;
  return route + hopBlocking + memService;
}

Cycles NocModel::worstCaseTransferCycles(std::int64_t bytes, int from, int to,
                                         int contenders) const noexcept {
  if (bytes <= 0) return 0;
  const int hops = std::max(1, hopDistance(from, to));
  const std::int64_t flits = (bytes + flitBytes - 1) / flitBytes;
  // Wormhole pipeline: head pays full route, body flits stream at one per
  // link cycle; each flit may be blocked by (contenders-1) competing flits
  // per WRR round.
  const Cycles head = static_cast<Cycles>(hops) * (routerCycles + linkCycles);
  const Cycles stream = flits * static_cast<Cycles>(linkCycles) *
                        static_cast<Cycles>(contenders);
  return head + stream;
}

Platform::Platform(std::string name, std::vector<Tile> tiles, BusModel bus,
                   std::int64_t sharedMemBytes)
    : name_(std::move(name)),
      tiles_(std::move(tiles)),
      interconnect_(bus),
      sharedMemBytes_(sharedMemBytes) {
  if (tiles_.empty()) throw ToolchainError("platform needs at least one tile");
}

Platform::Platform(std::string name, std::vector<Tile> tiles, NocModel noc,
                   std::int64_t sharedMemBytes)
    : name_(std::move(name)),
      tiles_(std::move(tiles)),
      interconnect_(noc),
      sharedMemBytes_(sharedMemBytes) {
  if (tiles_.empty()) throw ToolchainError("platform needs at least one tile");
  if (static_cast<int>(tiles_.size()) > noc.meshWidth * noc.meshHeight) {
    throw ToolchainError("more tiles than mesh positions");
  }
}

Cycles Platform::sharedAccessWorstCase(int tile, int contenders) const noexcept {
  contenders = std::clamp(contenders, 1, coreCount());
  if (isBus()) {
    return bus().worstCaseAccessCycles(contenders, coreCount());
  }
  return noc().worstCaseAccessCycles(tile, contenders);
}

Cycles Platform::transferWorstCase(std::int64_t bytes, int fromTile, int toTile,
                                   int contenders) const noexcept {
  contenders = std::clamp(contenders, 1, coreCount());
  if (isBus()) {
    return bus().worstCaseTransferCycles(bytes, contenders, coreCount());
  }
  return noc().worstCaseTransferCycles(bytes, fromTile, toTile, contenders);
}

std::string Platform::canonicalText() const {
  std::string out;
  out.reserve(128 + tiles_.size() * 64);
  for (const Tile& tile : tiles_) {
    out += "tile " + std::to_string(tile.index) + " ops[";
    for (std::size_t i = 0; i < tile.core.opCycles.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(tile.core.opCycles[i]);
    }
    out += "] local=" + std::to_string(tile.core.localAccessCycles);
    out += " spm=" + std::to_string(tile.core.spmAccessCycles);
    out += " spmBytes=" + std::to_string(tile.core.spmBytes);
    out += '\n';
  }
  if (isBus()) {
    const BusModel& b = bus();
    out += std::string("bus arb=") + arbitrationName(b.arbitration);
    out += " base=" + std::to_string(b.baseAccessCycles);
    out += " slot=" + std::to_string(b.slotCycles);
    out += " word=" + std::to_string(b.wordBytes);
  } else {
    const NocModel& n = noc();
    out += "noc mesh=" + std::to_string(n.meshWidth) + "x" +
           std::to_string(n.meshHeight);
    out += " router=" + std::to_string(n.routerCycles);
    out += " link=" + std::to_string(n.linkCycles);
    out += " flit=" + std::to_string(n.flitBytes);
    out += " memAccess=" + std::to_string(n.memAccessCycles);
    out += " memTile=" + std::to_string(n.memTile);
  }
  out += "\nsharedMemBytes=" + std::to_string(sharedMemBytes_) + "\n";
  return out;
}

Platform Platform::withCoreCount(int n) const {
  if (n <= 0 || n > coreCount()) {
    throw ToolchainError("withCoreCount: invalid core count " +
                         std::to_string(n));
  }
  std::vector<Tile> tiles(tiles_.begin(), tiles_.begin() + n);
  if (isBus()) {
    return Platform(name_ + "_x" + std::to_string(n), std::move(tiles), bus(),
                    sharedMemBytes_);
  }
  return Platform(name_ + "_x" + std::to_string(n), std::move(tiles), noc(),
                  sharedMemBytes_);
}

Platform Platform::withSpmBytes(std::int64_t bytes) const {
  if (bytes <= 0) {
    throw ToolchainError("withSpmBytes: invalid scratchpad size " +
                         std::to_string(bytes));
  }
  std::vector<Tile> tiles = tiles_;
  for (Tile& tile : tiles) tile.core.spmBytes = bytes;
  const std::string name = name_ + "_spm" + std::to_string(bytes);
  if (isBus()) {
    return Platform(name, std::move(tiles), bus(), sharedMemBytes_);
  }
  return Platform(name, std::move(tiles), noc(), sharedMemBytes_);
}

Platform makeRecoreXentiumBus(int cores, Arbitration arb) {
  std::vector<Tile> tiles;
  tiles.reserve(static_cast<std::size_t>(cores));
  for (int i = 0; i < cores; ++i) {
    tiles.push_back(Tile{i, CoreModel::xentiumDsp()});
  }
  BusModel bus;
  bus.arbitration = arb;
  bus.baseAccessCycles = 10;
  bus.slotCycles = 12;
  bus.wordBytes = 4;
  return Platform("recore_xentium_bus", std::move(tiles), bus,
                  /*sharedMemBytes=*/8 * 1024 * 1024);
}

Platform makeKitLeon3Inoc(int width, int height, bool withAccelerator) {
  std::vector<Tile> tiles;
  const int count = width * height;
  tiles.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    tiles.push_back(Tile{i, CoreModel::leon3()});
  }
  if (withAccelerator && count > 1) {
    tiles.back().core = CoreModel::mathAccelerator();
  }
  NocModel noc;
  noc.meshWidth = width;
  noc.meshHeight = height;
  noc.routerCycles = 3;
  noc.linkCycles = 1;
  noc.flitBytes = 4;
  noc.memAccessCycles = 16;
  noc.memTile = 0;
  return Platform("kit_leon3_inoc", std::move(tiles), noc,
                  /*sharedMemBytes=*/16 * 1024 * 1024);
}

}  // namespace argo::adl
