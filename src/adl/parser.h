// Textual ADL format: parse and serialize Platform descriptions.
//
// The format is line-oriented; '#' starts a comment. Example:
//
//   platform demo
//   shared_memory 8388608
//   interconnect bus round_robin base_access 10 slot 12 word_bytes 4
//   core fast int_alu 1 int_mul 2 int_div 12 float_add 2 float_mul 2
//        float_div 16 math_func 40 ... local_access 1 spm_access 1
//        spm_bytes 32768          (single line in the actual format)
//   tile 0 fast
//   tile 1 fast
//
// For NoC platforms:
//
//   interconnect noc 4 4 router 3 link 1 flit_bytes 4 mem_access 16 mem_tile 0
//
// parseAdl throws support::ToolchainError with a line number on malformed
// input; toAdlText(parseAdl(text)) round-trips.
#pragma once

#include <string>
#include <string_view>

#include "adl/platform.h"

namespace argo::adl {

[[nodiscard]] Platform parseAdl(std::string_view text);

[[nodiscard]] std::string toAdlText(const Platform& platform);

}  // namespace argo::adl
