// ARGO Architecture Description Language (ADL): platform models.
//
// The paper (Section II-A) specifies hardware platforms "using a model-based
// approach thanks to the ARGO ADL", providing "all the information required
// by the tool-chain (processors, memory, interconnect, etc.) to calculate
// WCETs". This module is that model:
//
//  * CoreModel   — per-operation-class cycle costs, scratchpad parameters.
//                  Cores are time-predictable by construction (Section III-B:
//                  no caches, no dynamic branch prediction); every operation
//                  has a fixed cycle cost.
//  * BusModel    — shared bus with round-robin or TDMA arbitration, with
//                  closed-form worst-case access delays.
//  * NocModel    — 2D-mesh NoC with per-hop latency and weighted-round-robin
//                  QoS (the iNoC of ref [12]); bandwidth/latency guarantees
//                  expressed as closed-form worst cases.
//  * Platform    — tiles (possibly heterogeneous), one interconnect, shared
//                  memory; the query API used by scheduling, system-level
//                  WCET analysis, and the simulator.
//
// The worst-case formulas implement the "fully timing compositional"
// requirement of Section III-B: a core's contribution and the interference
// contribution combine additively.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "ir/cost.h"

namespace argo::adl {

using Cycles = std::int64_t;

/// A time-predictable processor core: fixed per-class operation costs plus
/// scratchpad and local (register/stack) access costs.
struct CoreModel {
  /// Human-readable core kind (default "generic"); reports only.
  std::string name = "generic";
  /// Cycle cost per ir::OpClass, indexed by static_cast<size_t>(OpClass)
  /// (cycles per operation, default all 0 — factories fill it in).
  std::array<int, ir::kOpClassCount> opCycles{};
  int localAccessCycles = 1;  ///< Register/stack access (cycles, default 1).
  int spmAccessCycles = 2;    ///< Core-private scratchpad access (cycles,
                              ///< default 2).
  std::int64_t spmBytes = 16 * 1024;  ///< Scratchpad capacity (bytes,
                                      ///< default 16 KiB).

  [[nodiscard]] int cyclesFor(ir::OpClass op) const noexcept {
    return opCycles[static_cast<std::size_t>(op)];
  }

  /// Recore Xentium-like VLIW DSP: cheap fixed-point, strong MAC.
  [[nodiscard]] static CoreModel xentiumDsp();
  /// Gaisler Leon3-like in-order RISC core.
  [[nodiscard]] static CoreModel leon3();
  /// Math accelerator tile: hardware transcendental units.
  [[nodiscard]] static CoreModel mathAccelerator();
};

/// Bus arbitration policies (Section III-B: predictable interconnect).
enum class Arbitration : std::uint8_t {
  RoundRobin,  ///< Work-conserving; worst case scales with live contenders.
  Tdma,        ///< Time-division; worst case independent of contenders.
};

[[nodiscard]] const char* arbitrationName(Arbitration a) noexcept;

/// A single shared bus to shared memory.
struct BusModel {
  /// Arbitration policy (default RoundRobin; Tdma trades average latency
  /// for contender-independent worst cases).
  Arbitration arbitration = Arbitration::RoundRobin;
  int baseAccessCycles = 10;  ///< Uncontended shared-memory access
                              ///< (cycles, default 10).
  int slotCycles = 12;        ///< TDMA slot length, must be
                              ///< >= baseAccessCycles (cycles, default 12).
  int wordBytes = 4;          ///< Payload moved per bus access (bytes,
                              ///< default 4).

  /// Worst-case cycles for ONE shared access issued by a core when at most
  /// `contenders` cores (including the issuer) may access the bus
  /// concurrently. `totalCores` is the number of bus masters (TDMA wheel
  /// size).
  [[nodiscard]] Cycles worstCaseAccessCycles(int contenders,
                                             int totalCores) const noexcept;

  /// Worst-case cycles to move `bytes` over the bus (DMA-style burst).
  [[nodiscard]] Cycles worstCaseTransferCycles(std::int64_t bytes,
                                               int contenders,
                                               int totalCores) const noexcept;
};

/// A 2D-mesh network-on-chip with weighted-round-robin QoS routers
/// (modelled on the invasive NoC, paper ref [12]).
struct NocModel {
  int meshWidth = 4;        ///< Mesh columns (tiles, default 4).
  int meshHeight = 4;       ///< Mesh rows (tiles, default 4).
  int routerCycles = 3;     ///< Per-hop router traversal (cycles, default 3).
  int linkCycles = 1;       ///< Per-flit per-hop link traversal (cycles,
                            ///< default 1).
  int flitBytes = 4;        ///< Payload per flit (bytes, default 4).
  int memAccessCycles = 16; ///< Service time at the memory controller
                            ///< (cycles, default 16).
  int memTile = 0;          ///< Tile index hosting the memory controller
                            ///< (index, default 0).

  /// XY-routing hop count between two tiles (tile = y*width + x).
  [[nodiscard]] int hopDistance(int tileA, int tileB) const noexcept;

  /// Worst-case cycles for one shared-memory access from `tile` with at
  /// most `contenders` concurrent requestors. The WRR QoS guarantee bounds
  /// per-hop blocking to one flit slot per competing flow.
  [[nodiscard]] Cycles worstCaseAccessCycles(int tile,
                                             int contenders) const noexcept;

  /// Worst-case cycles to move `bytes` from tile `from` to tile `to`
  /// (tile-to-tile DMA over the mesh).
  [[nodiscard]] Cycles worstCaseTransferCycles(std::int64_t bytes, int from,
                                               int to,
                                               int contenders) const noexcept;
};

/// One tile of the platform: a core plus its private scratchpad.
struct Tile {
  int index = 0;
  CoreModel core;
};

/// The complete platform description.
class Platform {
 public:
  Platform(std::string name, std::vector<Tile> tiles, BusModel bus,
           std::int64_t sharedMemBytes);
  Platform(std::string name, std::vector<Tile> tiles, NocModel noc,
           std::int64_t sharedMemBytes);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int coreCount() const noexcept {
    return static_cast<int>(tiles_.size());
  }
  [[nodiscard]] const Tile& tile(int index) const { return tiles_.at(index); }
  [[nodiscard]] const std::vector<Tile>& tiles() const noexcept {
    return tiles_;
  }
  [[nodiscard]] std::int64_t sharedMemBytes() const noexcept {
    return sharedMemBytes_;
  }

  [[nodiscard]] bool isBus() const noexcept {
    return std::holds_alternative<BusModel>(interconnect_);
  }
  [[nodiscard]] bool isNoc() const noexcept {
    return std::holds_alternative<NocModel>(interconnect_);
  }
  [[nodiscard]] const BusModel& bus() const {
    return std::get<BusModel>(interconnect_);
  }
  [[nodiscard]] const NocModel& noc() const {
    return std::get<NocModel>(interconnect_);
  }

  /// Worst-case cycles for one shared-memory access from `tile` when at
  /// most `contenders` cores (including the issuer) may be using the
  /// interconnect concurrently.
  [[nodiscard]] Cycles sharedAccessWorstCase(int tile,
                                             int contenders) const noexcept;

  /// Uncontended shared-memory access cost from `tile` (the code-level
  /// component; interference is added by the system-level analysis).
  [[nodiscard]] Cycles sharedAccessBase(int tile) const noexcept {
    return sharedAccessWorstCase(tile, 1);
  }

  /// Worst-case cycles to move a `bytes`-sized buffer between two tiles
  /// (or tile<->shared memory when one side is the memory tile).
  [[nodiscard]] Cycles transferWorstCase(std::int64_t bytes, int fromTile,
                                         int toTile,
                                         int contenders) const noexcept;

  /// Canonical serialization of the pricing model: every field the
  /// scheduling, WCET, simulation, and code-generation layers can observe
  /// — per-tile core cycle tables and scratchpad parameters, the
  /// interconnect with its parameters, shared-memory capacity. Display
  /// names (platform and core kind) are deliberately excluded: they are
  /// reports-only, so two platforms with equal canonicalText() price
  /// every program identically. The stage cache (core/cache.h) uses this
  /// as the platform half of its content-hash keys.
  [[nodiscard]] std::string canonicalText() const;

  /// Returns a new platform restricted to the first `n` tiles (used by the
  /// core-count sweeps in the benchmark harness).
  [[nodiscard]] Platform withCoreCount(int n) const;

  /// Returns a new platform with every tile's scratchpad capacity set to
  /// `bytes` (used by the SPM-size sweeps in scenarios/sweep.h). Cores,
  /// interconnect and shared memory are unchanged.
  [[nodiscard]] Platform withSpmBytes(std::int64_t bytes) const;

 private:
  std::string name_;
  std::vector<Tile> tiles_;
  std::variant<BusModel, NocModel> interconnect_;
  std::int64_t sharedMemBytes_ = 0;
};

/// Recore-like platform: `cores` Xentium DSP tiles on a shared bus.
[[nodiscard]] Platform makeRecoreXentiumBus(int cores,
                                            Arbitration arb =
                                                Arbitration::RoundRobin);

/// KIT-like platform: width x height Leon3 tiles on an iNoC-style mesh,
/// with the last tile replaced by a math-accelerator tile when
/// `withAccelerator`.
[[nodiscard]] Platform makeKitLeon3Inoc(int width, int height,
                                        bool withAccelerator = false);

}  // namespace argo::adl
