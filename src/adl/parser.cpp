#include "adl/parser.h"

#include <map>
#include <optional>
#include <sstream>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace argo::adl {

using support::ToolchainError;

namespace {

struct Line {
  int number = 0;
  std::vector<std::string> tokens;
};

std::vector<Line> tokenize(std::string_view text) {
  std::vector<Line> lines;
  int number = 0;
  for (const std::string& raw : support::split(text, '\n')) {
    ++number;
    std::string_view view = raw;
    if (const std::size_t hash = view.find('#'); hash != std::string_view::npos) {
      view = view.substr(0, hash);
    }
    view = support::trim(view);
    if (view.empty()) continue;
    Line line;
    line.number = number;
    std::istringstream is{std::string(view)};
    std::string token;
    while (is >> token) line.tokens.push_back(token);
    lines.push_back(std::move(line));
  }
  return lines;
}

[[noreturn]] void fail(const Line& line, const std::string& message) {
  throw ToolchainError("ADL line " + std::to_string(line.number) + ": " +
                       message);
}

std::int64_t parseInt(const Line& line, const std::string& token) {
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(token, &pos);
    if (pos != token.size()) fail(line, "trailing characters in '" + token + "'");
    return value;
  } catch (const std::logic_error&) {
    fail(line, "expected integer, got '" + token + "'");
  }
}

/// Reads "key value key value ..." pairs starting at tokens[first].
std::map<std::string, std::int64_t> parsePairs(const Line& line,
                                               std::size_t first) {
  std::map<std::string, std::int64_t> pairs;
  if ((line.tokens.size() - first) % 2 != 0) {
    fail(line, "expected key/value pairs");
  }
  for (std::size_t i = first; i + 1 < line.tokens.size(); i += 2) {
    pairs[line.tokens[i]] = parseInt(line, line.tokens[i + 1]);
  }
  return pairs;
}

std::int64_t require(const Line& line,
                     const std::map<std::string, std::int64_t>& pairs,
                     const std::string& key) {
  auto it = pairs.find(key);
  if (it == pairs.end()) fail(line, "missing key '" + key + "'");
  return it->second;
}

CoreModel parseCore(const Line& line) {
  if (line.tokens.size() < 2) fail(line, "core needs a name");
  CoreModel core;
  core.name = line.tokens[1];
  const auto pairs = parsePairs(line, 2);
  static constexpr const char* kOpKeys[ir::kOpClassCount] = {
      "int_alu",   "int_mul",   "int_div", "float_add", "float_mul",
      "float_div", "math_func", "compare", "select",    "branch",
      "loop_step"};
  for (int i = 0; i < ir::kOpClassCount; ++i) {
    core.opCycles[static_cast<std::size_t>(i)] =
        static_cast<int>(require(line, pairs, kOpKeys[i]));
  }
  core.localAccessCycles = static_cast<int>(require(line, pairs, "local_access"));
  core.spmAccessCycles = static_cast<int>(require(line, pairs, "spm_access"));
  core.spmBytes = require(line, pairs, "spm_bytes");
  return core;
}

}  // namespace

Platform parseAdl(std::string_view text) {
  const std::vector<Line> lines = tokenize(text);
  std::string platformName;
  std::int64_t sharedMemBytes = -1;
  std::optional<BusModel> bus;
  std::optional<NocModel> noc;
  std::map<std::string, CoreModel> cores;
  std::vector<std::pair<int, std::string>> tileSpecs;

  for (const Line& line : lines) {
    const std::string& head = line.tokens.front();
    if (head == "platform") {
      if (line.tokens.size() != 2) fail(line, "platform needs a name");
      platformName = line.tokens[1];
    } else if (head == "shared_memory") {
      if (line.tokens.size() != 2) fail(line, "shared_memory needs byte size");
      sharedMemBytes = parseInt(line, line.tokens[1]);
    } else if (head == "interconnect") {
      if (line.tokens.size() < 2) fail(line, "interconnect needs a kind");
      const std::string& kind = line.tokens[1];
      if (kind == "bus") {
        if (line.tokens.size() < 3) fail(line, "bus needs an arbitration");
        BusModel model;
        if (line.tokens[2] == "round_robin") {
          model.arbitration = Arbitration::RoundRobin;
        } else if (line.tokens[2] == "tdma") {
          model.arbitration = Arbitration::Tdma;
        } else {
          fail(line, "unknown arbitration '" + line.tokens[2] + "'");
        }
        const auto pairs = parsePairs(line, 3);
        model.baseAccessCycles =
            static_cast<int>(require(line, pairs, "base_access"));
        model.slotCycles = static_cast<int>(require(line, pairs, "slot"));
        model.wordBytes = static_cast<int>(require(line, pairs, "word_bytes"));
        bus = model;
      } else if (kind == "noc") {
        if (line.tokens.size() < 4) fail(line, "noc needs mesh dimensions");
        NocModel model;
        model.meshWidth = static_cast<int>(parseInt(line, line.tokens[2]));
        model.meshHeight = static_cast<int>(parseInt(line, line.tokens[3]));
        const auto pairs = parsePairs(line, 4);
        model.routerCycles = static_cast<int>(require(line, pairs, "router"));
        model.linkCycles = static_cast<int>(require(line, pairs, "link"));
        model.flitBytes = static_cast<int>(require(line, pairs, "flit_bytes"));
        model.memAccessCycles =
            static_cast<int>(require(line, pairs, "mem_access"));
        model.memTile = static_cast<int>(require(line, pairs, "mem_tile"));
        noc = model;
      } else {
        fail(line, "unknown interconnect kind '" + kind + "'");
      }
    } else if (head == "core") {
      CoreModel core = parseCore(line);
      cores[core.name] = core;
    } else if (head == "tile") {
      if (line.tokens.size() != 3) fail(line, "tile needs index and core name");
      tileSpecs.emplace_back(static_cast<int>(parseInt(line, line.tokens[1])),
                             line.tokens[2]);
    } else {
      fail(line, "unknown directive '" + head + "'");
    }
  }

  if (platformName.empty()) throw ToolchainError("ADL: missing 'platform'");
  if (sharedMemBytes < 0) throw ToolchainError("ADL: missing 'shared_memory'");
  if (!bus.has_value() && !noc.has_value()) {
    throw ToolchainError("ADL: missing 'interconnect'");
  }
  if (tileSpecs.empty()) throw ToolchainError("ADL: no tiles declared");

  std::vector<Tile> tiles;
  tiles.resize(tileSpecs.size());
  std::vector<bool> seen(tileSpecs.size(), false);
  for (const auto& [index, coreName] : tileSpecs) {
    if (index < 0 || index >= static_cast<int>(tiles.size())) {
      throw ToolchainError("ADL: tile index " + std::to_string(index) +
                           " out of range (tiles must be 0..n-1)");
    }
    if (seen[static_cast<std::size_t>(index)]) {
      throw ToolchainError("ADL: duplicate tile " + std::to_string(index));
    }
    seen[static_cast<std::size_t>(index)] = true;
    auto it = cores.find(coreName);
    if (it == cores.end()) {
      throw ToolchainError("ADL: tile " + std::to_string(index) +
                           " references unknown core '" + coreName + "'");
    }
    tiles[static_cast<std::size_t>(index)] = Tile{index, it->second};
  }

  if (bus.has_value()) {
    return Platform(platformName, std::move(tiles), *bus, sharedMemBytes);
  }
  return Platform(platformName, std::move(tiles), *noc, sharedMemBytes);
}

std::string toAdlText(const Platform& platform) {
  std::ostringstream os;
  os << "platform " << platform.name() << '\n';
  os << "shared_memory " << platform.sharedMemBytes() << '\n';
  if (platform.isBus()) {
    const BusModel& bus = platform.bus();
    os << "interconnect bus " << arbitrationName(bus.arbitration)
       << " base_access " << bus.baseAccessCycles << " slot " << bus.slotCycles
       << " word_bytes " << bus.wordBytes << '\n';
  } else {
    const NocModel& noc = platform.noc();
    os << "interconnect noc " << noc.meshWidth << ' ' << noc.meshHeight
       << " router " << noc.routerCycles << " link " << noc.linkCycles
       << " flit_bytes " << noc.flitBytes << " mem_access "
       << noc.memAccessCycles << " mem_tile " << noc.memTile << '\n';
  }
  // Emit each distinct core model once.
  std::map<std::string, const CoreModel*> cores;
  for (const Tile& tile : platform.tiles()) {
    cores.emplace(tile.core.name, &tile.core);
  }
  static constexpr const char* kOpKeys[ir::kOpClassCount] = {
      "int_alu",   "int_mul",   "int_div", "float_add", "float_mul",
      "float_div", "math_func", "compare", "select",    "branch",
      "loop_step"};
  for (const auto& [name, core] : cores) {
    os << "core " << name;
    for (int i = 0; i < ir::kOpClassCount; ++i) {
      os << ' ' << kOpKeys[i] << ' '
         << core->opCycles[static_cast<std::size_t>(i)];
    }
    os << " local_access " << core->localAccessCycles << " spm_access "
       << core->spmAccessCycles << " spm_bytes " << core->spmBytes << '\n';
  }
  for (const Tile& tile : platform.tiles()) {
    os << "tile " << tile.index << ' ' << tile.core.name << '\n';
  }
  return os.str();
}

}  // namespace argo::adl
