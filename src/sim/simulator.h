// Discrete-event multi-core timing simulator.
//
// Substitute for the paper's FPGA platforms (Xentium many-core, Leon3+iNoC;
// Section IV-C): executes an explicit parallel program under the same ADL
// timing parameters the WCET analysis uses, so the safety claim
// "observed execution time <= static bound" is checkable end-to-end.
//
// Execution model:
//  * Each core runs its ParOp list. Execute ops run the task's IR through
//    the reference interpreter on the shared environment, metering every
//    priced operation; the metered non-shared cost is spread evenly between
//    the task's shared accesses (documented approximation — the IR carries
//    no per-access timestamps).
//  * Shared accesses are arbitrated individually:
//      - round-robin bus: FCFS on the bus; each core has at most one
//        outstanding access, so waits are bounded by (live cores - 1)
//        accesses, within the analytical worst case;
//      - TDMA bus: accesses start at the issuing core's next slot;
//      - NoC: XY-route latency plus FCFS serialization at the memory
//        controller.
//  * Signal/Wait cost one arbitrated flag access each; consumer data is
//    available after the actual (uncontended) transfer time.
//  * Cores advance in global simulated-time order (the minimum-time
//    runnable core acts next), so values are computed respecting
//    happens-before.
#pragma once

#include <vector>

#include "adl/platform.h"
#include "ir/evaluator.h"
#include "par/parallel_program.h"

namespace argo::sim {

using adl::Cycles;

/// Per-task observation.
struct TaskTrace {
  Cycles start = 0;
  Cycles finish = 0;
  Cycles stall = 0;  ///< Cycles spent waiting for the interconnect.
  std::int64_t sharedAccesses = 0;
};

/// Result of simulating one synchronous step.
struct StepResult {
  Cycles makespan = 0;
  std::vector<TaskTrace> tasks;  ///< Indexed like TaskGraph::tasks.
  Cycles totalStall = 0;
  std::int64_t totalSharedAccesses = 0;
};

/// Simulates an explicit parallel program on its platform.
class Simulator {
 public:
  Simulator(const par::ParallelProgram& program, const adl::Platform& platform);

  /// Runs one synchronous step. `env` must contain the model inputs and
  /// constants; outputs and states are updated in place (so repeated calls
  /// simulate consecutive steps).
  [[nodiscard]] StepResult step(ir::Environment& env) const;

 private:
  const par::ParallelProgram& program_;
  const adl::Platform& platform_;
};

/// Prices a metered execution on a core: operation cycles plus local and
/// scratchpad access cycles. Shared accesses are excluded (they are
/// simulated individually).
[[nodiscard]] Cycles nonSharedCost(const ir::CountingMeter& meter,
                                   const adl::CoreModel& core);

}  // namespace argo::sim
