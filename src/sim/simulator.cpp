#include "sim/simulator.h"

#include <algorithm>
#include <limits>

#include "support/diagnostics.h"

namespace argo::sim {

using support::ToolchainError;

Cycles nonSharedCost(const ir::CountingMeter& meter,
                     const adl::CoreModel& core) {
  Cycles total = 0;
  for (int c = 0; c < ir::kOpClassCount; ++c) {
    const auto op = static_cast<ir::OpClass>(c);
    total += meter.ops()[op] * core.cyclesFor(op);
  }
  total += (meter.reads(ir::Storage::Local) + meter.writes(ir::Storage::Local)) *
           core.localAccessCycles;
  total += (meter.reads(ir::Storage::Scratchpad) +
            meter.writes(ir::Storage::Scratchpad)) *
           core.spmAccessCycles;
  return total;
}

namespace {

/// Interconnect arbitration state shared by all cores during one step.
class Arbiter {
 public:
  explicit Arbiter(const adl::Platform& platform) : platform_(platform) {}

  /// Simulates one shared-memory access issued by `tile` at time `ready`.
  /// Returns the completion time (updates internal state).
  Cycles access(int tile, Cycles ready) {
    if (platform_.isBus()) {
      const adl::BusModel& bus = platform_.bus();
      if (bus.arbitration == adl::Arbitration::Tdma) {
        // The core may only start in its own slot; the access must fit the
        // slot, so it starts at the next slot boundary it owns.
        const Cycles wheel =
            static_cast<Cycles>(platform_.coreCount()) * bus.slotCycles;
        const Cycles slotStart = static_cast<Cycles>(tile) * bus.slotCycles;
        Cycles cycleBase = (ready / wheel) * wheel + slotStart;
        if (cycleBase < ready) cycleBase += wheel;
        return cycleBase + bus.baseAccessCycles;
      }
      // Round-robin approximated as FCFS; every core has at most one
      // outstanding access, so waiting stays within the analytical bound.
      const Cycles grant = std::max(ready, busFree_);
      busFree_ = grant + bus.baseAccessCycles;
      return busFree_;
    }
    const adl::NocModel& noc = platform_.noc();
    const Cycles hop =
        static_cast<Cycles>(noc.hopDistance(tile, noc.memTile)) *
        (noc.routerCycles + noc.linkCycles);
    const Cycles arrival = ready + hop;
    const Cycles grant = std::max(arrival, memFree_);
    memFree_ = grant + noc.memAccessCycles;
    return memFree_ + hop;  // response routes back
  }

 private:
  const adl::Platform& platform_;
  Cycles busFree_ = 0;
  Cycles memFree_ = 0;
};

/// Per-core execution cursor.
struct CoreCursor {
  int tile = 0;
  std::size_t opIndex = 0;
  Cycles time = 0;
  bool done = false;

  // State of the Execute op in progress (split into access rounds).
  bool inTask = false;
  int task = -1;
  Cycles segment = 0;        // compute cycles between accesses
  Cycles finalSegment = 0;   // remainder after the last access
  std::int64_t accessesLeft = 0;
};

}  // namespace

Simulator::Simulator(const par::ParallelProgram& program,
                     const adl::Platform& platform)
    : program_(program), platform_(platform) {}

StepResult Simulator::step(ir::Environment& env) const {
  const std::size_t taskCount = program_.graph->tasks.size();
  StepResult result;
  result.tasks.assign(taskCount, TaskTrace{});

  Arbiter arbiter(platform_);
  std::vector<CoreCursor> cores(program_.cores.size());
  for (std::size_t c = 0; c < cores.size(); ++c) {
    cores[c].tile = program_.cores[c].tile;
    cores[c].done = program_.cores[c].ops.empty();
  }
  // Event availability time; min() when not yet signalled.
  std::vector<Cycles> eventAvail(program_.events.size(),
                                 std::numeric_limits<Cycles>::min());

  const ir::Evaluator evaluator(*program_.graph->fn);

  // Effective time at which a core can perform its next action, or nullopt
  // when blocked on an unsignalled event.
  auto effectiveTime = [&](const CoreCursor& core) -> std::optional<Cycles> {
    if (core.done) return std::nullopt;
    if (core.inTask) return core.time;
    const par::ParOp& op = program_.cores[static_cast<std::size_t>(
        &core - cores.data())].ops[core.opIndex];
    if (op.kind == par::OpKind::Wait) {
      const Cycles avail = eventAvail[static_cast<std::size_t>(op.event)];
      if (avail == std::numeric_limits<Cycles>::min()) return std::nullopt;
      return std::max(core.time, avail);
    }
    return core.time;
  };

  auto advance = [&](CoreCursor& core) {
    const par::CoreProgram& prog =
        program_.cores[static_cast<std::size_t>(&core - cores.data())];

    if (core.inTask) {
      // One access round: compute segment, then an arbitrated access.
      core.time += core.segment;
      const Cycles before = core.time;
      core.time = arbiter.access(core.tile, core.time);
      auto& trace = result.tasks[static_cast<std::size_t>(core.task)];
      trace.stall += std::max<Cycles>(
          0, (core.time - before) - platform_.sharedAccessBase(core.tile));
      trace.sharedAccesses += 1;
      result.totalSharedAccesses += 1;
      if (--core.accessesLeft == 0) {
        core.time += core.finalSegment;
        trace.finish = core.time;
        core.inTask = false;
        ++core.opIndex;
        core.done = core.opIndex >= prog.ops.size();
      }
      return;
    }

    const par::ParOp& op = prog.ops[core.opIndex];
    switch (op.kind) {
      case par::OpKind::Wait: {
        const Cycles avail = eventAvail[static_cast<std::size_t>(op.event)];
        core.time = std::max(core.time, avail);
        // Successful poll: one arbitrated flag access.
        core.time = arbiter.access(core.tile, core.time);
        ++core.opIndex;
        break;
      }
      case par::OpKind::Signal: {
        // Flag write, then the payload becomes visible after the actual
        // (uncontended) transfer latency.
        core.time = arbiter.access(core.tile, core.time);
        const par::Event& event = program_.event(op.event);
        const Cycles transfer = platform_.transferWorstCase(
            event.bytes, event.producerTile, event.consumerTile,
            /*contenders=*/1);
        eventAvail[static_cast<std::size_t>(op.event)] = core.time + transfer;
        ++core.opIndex;
        break;
      }
      case par::OpKind::Execute: {
        const htg::Task& task =
            program_.graph->tasks[static_cast<std::size_t>(op.task)];
        ir::CountingMeter meter;
        for (const ir::StmtPtr& s : task.stmts) {
          evaluator.runStmt(*s, env, &meter);
        }
        const Cycles compute =
            nonSharedCost(meter, platform_.tile(core.tile).core);
        const std::int64_t accesses = meter.reads(ir::Storage::Shared) +
                                      meter.writes(ir::Storage::Shared);
        auto& trace = result.tasks[static_cast<std::size_t>(op.task)];
        trace.start = core.time;
        if (accesses == 0) {
          core.time += compute;
          trace.finish = core.time;
          ++core.opIndex;
        } else {
          core.task = op.task;
          core.segment = compute / (accesses + 1);
          core.finalSegment =
              compute - core.segment * accesses;  // includes remainder
          core.accessesLeft = accesses;
          core.inTask = true;
        }
        break;
      }
    }
    core.done = !core.inTask && core.opIndex >= prog.ops.size();
  };

  while (true) {
    int next = -1;
    Cycles best = std::numeric_limits<Cycles>::max();
    bool anyPending = false;
    for (std::size_t c = 0; c < cores.size(); ++c) {
      if (cores[c].done) continue;
      anyPending = true;
      const auto t = effectiveTime(cores[c]);
      if (t.has_value() && *t < best) {
        best = *t;
        next = static_cast<int>(c);
      }
    }
    if (!anyPending) break;
    if (next < 0) {
      throw ToolchainError("simulator deadlock: all cores blocked on events");
    }
    advance(cores[static_cast<std::size_t>(next)]);
  }

  for (const CoreCursor& core : cores) {
    result.makespan = std::max(result.makespan, core.time);
  }
  for (const TaskTrace& t : result.tasks) result.totalStall += t.stall;
  return result;
}

}  // namespace argo::sim
