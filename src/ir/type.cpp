#include "ir/type.h"

namespace argo::ir {

const char* scalarKindName(ScalarKind kind) noexcept {
  switch (kind) {
    case ScalarKind::Bool: return "bool";
    case ScalarKind::Int32: return "i32";
    case ScalarKind::Float64: return "f64";
  }
  return "?";
}

std::int64_t Type::elementCount() const noexcept {
  std::int64_t count = 1;
  for (int d : dims_) count *= d;
  return count;
}

std::string Type::str() const {
  std::string out = scalarKindName(kind_);
  for (int d : dims_) {
    out += '[';
    out += std::to_string(d);
    out += ']';
  }
  return out;
}

}  // namespace argo::ir
