#include "ir/dependence.h"

#include <numeric>

namespace argo::ir {

namespace {

void collectExprReads(const Expr& expr, const std::set<std::string>& loopVars,
                      std::set<std::string>& reads) {
  switch (expr.kind()) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::BoolLit:
      break;
    case ExprKind::VarRef: {
      const auto& ref = cast<VarRef>(expr);
      if (!loopVars.contains(ref.name())) reads.insert(ref.name());
      for (const ExprPtr& idx : ref.indices()) {
        collectExprReads(*idx, loopVars, reads);
      }
      break;
    }
    case ExprKind::BinOp: {
      const auto& bin = cast<BinOp>(expr);
      collectExprReads(bin.lhs(), loopVars, reads);
      collectExprReads(bin.rhs(), loopVars, reads);
      break;
    }
    case ExprKind::UnOp:
      collectExprReads(cast<UnOp>(expr).operand(), loopVars, reads);
      break;
    case ExprKind::Call:
      for (const ExprPtr& a : cast<Call>(expr).args()) {
        collectExprReads(*a, loopVars, reads);
      }
      break;
    case ExprKind::Select: {
      const auto& sel = cast<Select>(expr);
      collectExprReads(sel.cond(), loopVars, reads);
      collectExprReads(sel.onTrue(), loopVars, reads);
      collectExprReads(sel.onFalse(), loopVars, reads);
      break;
    }
  }
}

void collectStmtUsage(const Stmt& stmt, std::set<std::string>& loopVars,
                      VarUsage& usage) {
  switch (stmt.kind()) {
    case StmtKind::Assign: {
      const auto& assign = cast<Assign>(stmt);
      collectExprReads(assign.rhs(), loopVars, usage.reads);
      for (const ExprPtr& idx : assign.lhs().indices()) {
        collectExprReads(*idx, loopVars, usage.reads);
      }
      usage.writes.insert(assign.lhs().name());
      break;
    }
    case StmtKind::For: {
      const auto& loop = cast<For>(stmt);
      const auto [it, inserted] = loopVars.insert(loop.var());
      for (const StmtPtr& s : loop.body().stmts()) {
        collectStmtUsage(*s, loopVars, usage);
      }
      if (inserted) loopVars.erase(it);
      break;
    }
    case StmtKind::If: {
      const auto& branch = cast<If>(stmt);
      collectExprReads(branch.cond(), loopVars, usage.reads);
      for (const StmtPtr& s : branch.thenBody().stmts()) {
        collectStmtUsage(*s, loopVars, usage);
      }
      for (const StmtPtr& s : branch.elseBody().stmts()) {
        collectStmtUsage(*s, loopVars, usage);
      }
      break;
    }
    case StmtKind::Block:
      for (const StmtPtr& s : cast<Block>(stmt).stmts()) {
        collectStmtUsage(*s, loopVars, usage);
      }
      break;
  }
}

}  // namespace

bool VarUsage::conflictsWith(const VarUsage& later) const {
  for (const std::string& w : writes) {
    if (later.reads.contains(w) || later.writes.contains(w)) return true;
  }
  for (const std::string& r : reads) {
    if (later.writes.contains(r)) return true;
  }
  return false;
}

void VarUsage::merge(const VarUsage& other) {
  reads.insert(other.reads.begin(), other.reads.end());
  writes.insert(other.writes.begin(), other.writes.end());
}

VarUsage collectUsage(const Stmt& stmt) {
  VarUsage usage;
  std::set<std::string> loopVars;
  collectStmtUsage(stmt, loopVars, usage);
  return usage;
}

VarUsage collectUsage(const Block& block) {
  VarUsage usage;
  std::set<std::string> loopVars;
  for (const StmtPtr& s : block.stmts()) {
    collectStmtUsage(*s, loopVars, usage);
  }
  return usage;
}

namespace {

class AccessCollector {
 public:
  explicit AccessCollector(std::map<std::string, int> loopVars)
      : loopVars_(std::move(loopVars)) {}

  void visitBlock(const Block& block) {
    for (const StmtPtr& s : block.stmts()) visitStmt(*s);
  }

  std::vector<ArrayAccess> take() { return std::move(accesses_); }

 private:
  void visitStmt(const Stmt& stmt) {
    switch (stmt.kind()) {
      case StmtKind::Assign: {
        const auto& assign = cast<Assign>(stmt);
        visitExpr(assign.rhs());
        for (const ExprPtr& idx : assign.lhs().indices()) visitExpr(*idx);
        record(assign.lhs(), /*isWrite=*/true);
        break;
      }
      case StmtKind::For: {
        const auto& loop = cast<For>(stmt);
        const int depth = static_cast<int>(loopVars_.size());
        loopVars_.emplace(loop.var(), depth);
        visitBlock(loop.body());
        loopVars_.erase(loop.var());
        break;
      }
      case StmtKind::If: {
        const auto& branch = cast<If>(stmt);
        visitExpr(branch.cond());
        visitBlock(branch.thenBody());
        visitBlock(branch.elseBody());
        break;
      }
      case StmtKind::Block:
        visitBlock(cast<Block>(stmt));
        break;
    }
  }

  void visitExpr(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::VarRef:
        record(cast<VarRef>(expr), /*isWrite=*/false);
        for (const ExprPtr& idx : cast<VarRef>(expr).indices()) {
          visitExpr(*idx);
        }
        break;
      case ExprKind::BinOp: {
        const auto& bin = cast<BinOp>(expr);
        visitExpr(bin.lhs());
        visitExpr(bin.rhs());
        break;
      }
      case ExprKind::UnOp:
        visitExpr(cast<UnOp>(expr).operand());
        break;
      case ExprKind::Call:
        for (const ExprPtr& a : cast<Call>(expr).args()) visitExpr(*a);
        break;
      case ExprKind::Select: {
        const auto& sel = cast<Select>(expr);
        visitExpr(sel.cond());
        visitExpr(sel.onTrue());
        visitExpr(sel.onFalse());
        break;
      }
      default:
        break;
    }
  }

  void record(const VarRef& ref, bool isWrite) {
    if (loopVars_.contains(ref.name()) && ref.indices().empty()) return;
    ArrayAccess access;
    access.array = ref.name();
    access.isWrite = isWrite;
    access.subscripts.reserve(ref.indices().size());
    for (const ExprPtr& idx : ref.indices()) {
      access.subscripts.push_back(analyzeAffine(*idx, loopVars_));
    }
    accesses_.push_back(std::move(access));
  }

  std::map<std::string, int> loopVars_;
  std::vector<ArrayAccess> accesses_;
};

}  // namespace

std::vector<ArrayAccess> collectArrayAccesses(
    const Block& block, const std::map<std::string, int>& loopVars) {
  AccessCollector collector(loopVars);
  collector.visitBlock(block);
  return collector.take();
}

namespace {

/// Per-dimension outcome of the subscript test.
enum class DimAnswer {
  ProvesNoCarried,  ///< This dimension rules out any loop-carried solution.
  Consistent,       ///< This dimension admits a carried solution / unknown.
};

DimAnswer testDimension(const AffineForm& a, const AffineForm& b,
                        const std::string& loopVar, std::int64_t tripCount) {
  if (!a.affine || !b.affine) return DimAnswer::Consistent;

  // Coefficients of variables other than loopVar must match in both
  // instances, otherwise the unknown difference prevents any proof.
  for (const auto& [var, coeff] : a.coeffs) {
    if (var != loopVar && b.coeff(var) != coeff) return DimAnswer::Consistent;
  }
  for (const auto& [var, coeff] : b.coeffs) {
    if (var != loopVar && a.coeff(var) != coeff) return DimAnswer::Consistent;
  }

  const std::int64_t ca = a.coeff(loopVar);
  const std::int64_t cb = b.coeff(loopVar);
  const std::int64_t diff = b.constant - a.constant;  // solve ca*i - cb*i' = diff

  if (ca == 0 && cb == 0) {
    // ZIV: subscripts never vary with the loop; equal iff diff == 0.
    return diff == 0 ? DimAnswer::Consistent : DimAnswer::ProvesNoCarried;
  }

  if (ca == cb) {
    // Strong SIV: c*(i - i') = diff; distance d = diff / c.
    const std::int64_t c = ca;
    if (diff % c != 0) return DimAnswer::ProvesNoCarried;
    const std::int64_t distance = diff / c;
    if (distance == 0) {
      // Conflicts only within the same iteration: not loop-carried.
      return DimAnswer::ProvesNoCarried;
    }
    if (distance >= tripCount || distance <= -tripCount) {
      return DimAnswer::ProvesNoCarried;
    }
    return DimAnswer::Consistent;
  }

  // General case: GCD test on ca*i - cb*i' = diff.
  const std::int64_t g = std::gcd(ca, cb);
  if (g != 0 && diff % g != 0) return DimAnswer::ProvesNoCarried;
  return DimAnswer::Consistent;
}

}  // namespace

DependenceAnswer testLoopCarried(const ArrayAccess& a, const ArrayAccess& b,
                                 const std::string& loopVar,
                                 std::int64_t tripCount) {
  if (a.array != b.array) return DependenceAnswer::Independent;
  if (!a.isWrite && !b.isWrite) return DependenceAnswer::Independent;
  if (a.subscripts.size() != b.subscripts.size()) {
    return DependenceAnswer::Dependent;  // malformed; stay safe
  }
  // A dependence requires every dimension to conflict simultaneously, so a
  // single dimension that rules out carried solutions proves independence.
  for (std::size_t d = 0; d < a.subscripts.size(); ++d) {
    if (testDimension(a.subscripts[d], b.subscripts[d], loopVar, tripCount) ==
        DimAnswer::ProvesNoCarried) {
      return DependenceAnswer::Independent;
    }
  }
  return DependenceAnswer::Dependent;
}

namespace {

/// Dataflow state of one scalar while scanning a region in program order.
enum class PrivState {
  Clean,  ///< Not touched, or only touched in sub-regions that themselves
          ///< write-before-read; no stale value can have been read.
  Kill,   ///< Definitely overwritten before any read in this region.
  Dirty,  ///< May read a value from a previous iteration.
};

PrivState scanBlock(const Block& body, const std::string& scalar);

PrivState scanStmt(const Stmt& stmt, const std::string& scalar) {
  switch (stmt.kind()) {
    case StmtKind::Assign: {
      const auto& assign = cast<Assign>(stmt);
      const VarUsage usage = collectUsage(stmt);
      if (usage.reads.contains(scalar)) return PrivState::Dirty;
      if (assign.lhs().name() == scalar && assign.lhs().indices().empty()) {
        return PrivState::Kill;
      }
      return PrivState::Clean;
    }
    case StmtKind::For: {
      const auto& loop = cast<For>(stmt);
      const VarUsage usage = collectUsage(stmt);
      if (!usage.reads.contains(scalar) && !usage.writes.contains(scalar)) {
        return PrivState::Clean;
      }
      // A loop whose every iteration writes the scalar before reading it
      // cannot observe a stale value; but since the trip count may be
      // zero from this analysis' perspective, it does not count as a
      // definite kill for the enclosing region.
      const PrivState inner = scanBlock(loop.body(), scalar);
      return inner == PrivState::Dirty ? PrivState::Dirty : PrivState::Clean;
    }
    case StmtKind::If: {
      const auto& branch = cast<If>(stmt);
      // A condition read observes the value from iteration start: stale.
      {
        std::set<std::string> condReads;
        std::set<std::string> noLoopVars;
        collectExprReads(branch.cond(), noLoopVars, condReads);
        if (condReads.contains(scalar)) return PrivState::Dirty;
      }
      const PrivState thenState = scanBlock(branch.thenBody(), scalar);
      const PrivState elseState = scanBlock(branch.elseBody(), scalar);
      if (thenState == PrivState::Dirty || elseState == PrivState::Dirty) {
        return PrivState::Dirty;
      }
      if (thenState == PrivState::Kill && elseState == PrivState::Kill) {
        return PrivState::Kill;
      }
      return PrivState::Clean;
    }
    case StmtKind::Block:
      return scanBlock(cast<Block>(stmt), scalar);
  }
  return PrivState::Dirty;
}

PrivState scanBlock(const Block& body, const std::string& scalar) {
  for (const StmtPtr& s : body.stmts()) {
    switch (scanStmt(*s, scalar)) {
      case PrivState::Kill: return PrivState::Kill;
      case PrivState::Dirty: return PrivState::Dirty;
      case PrivState::Clean: break;
    }
  }
  return PrivState::Clean;
}

}  // namespace

bool isScalarPrivatizable(const Block& body, const std::string& scalar) {
  // Privatizable iff no execution path can read a value the scalar held
  // when the iteration started: the scan must never go Dirty. (Kill and
  // Clean are both fine — Clean means every read was dominated by a write
  // inside its own sub-region.)
  return scanBlock(body, scalar) != PrivState::Dirty;
}

bool isLoopParallel(const For& loop, const Function& fn) {
  const std::int64_t trip = loop.tripCount();
  if (trip <= 1) return true;

  // Scalar writes: allowed only for provably-private temporaries.
  const VarUsage usage = collectUsage(loop.body());
  for (const std::string& w : usage.writes) {
    const VarDecl* decl = fn.find(w);
    if (decl == nullptr) continue;  // inner loop variable
    if (decl->type.isScalar()) {
      if (decl->role != VarRole::Temp) return false;
      if (!isScalarPrivatizable(loop.body(), w)) return false;
    }
  }

  // Array accesses: pairwise loop-carried tests on the loop variable.
  std::map<std::string, int> loopVars;
  loopVars.emplace(loop.var(), 0);
  const std::vector<ArrayAccess> accesses =
      collectArrayAccesses(loop.body(), loopVars);
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    if (accesses[i].subscripts.empty()) continue;  // scalars handled above
    for (std::size_t j = i; j < accesses.size(); ++j) {
      if (accesses[j].subscripts.empty()) continue;
      if (!accesses[i].isWrite && !accesses[j].isWrite) continue;
      if (accesses[i].array != accesses[j].array) continue;
      if (testLoopCarried(accesses[i], accesses[j], loop.var(), trip) ==
          DependenceAnswer::Dependent) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace argo::ir
