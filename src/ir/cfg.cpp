#include "ir/cfg.h"

#include "support/diagnostics.h"

namespace argo::ir {

using support::ToolchainError;

namespace {
CfgNode makeNode(CfgNodeKind kind) {
  CfgNode node;
  node.kind = kind;
  return node;
}
}  // namespace

int Cfg::addNode(CfgNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

void Cfg::addEdge(int from, int to) {
  nodes_[from].succs.push_back(to);
  nodes_[to].preds.push_back(from);
}

std::unique_ptr<Cfg> Cfg::build(const Block& block) {
  auto cfg = std::unique_ptr<Cfg>(new Cfg());
  cfg->entry_ = cfg->addNode(makeNode(CfgNodeKind::Entry));
  const int last = cfg->buildBlock(block, cfg->entry_);
  cfg->exit_ = cfg->addNode(makeNode(CfgNodeKind::Exit));
  cfg->addEdge(last, cfg->exit_);
  return cfg;
}

int Cfg::buildBlock(const Block& block, int pred) {
  int current = pred;
  int openBasic = -1;  // Basic node accumulating consecutive assignments

  auto flushBasic = [&] { openBasic = -1; };

  for (const StmtPtr& stmt : block.stmts()) {
    switch (stmt->kind()) {
      case StmtKind::Assign: {
        const auto* assign = &cast<Assign>(*stmt);
        if (openBasic < 0) {
          openBasic = addNode(makeNode(CfgNodeKind::Basic));
          addEdge(current, openBasic);
          current = openBasic;
        }
        nodes_[openBasic].assigns.push_back(assign);
        break;
      }
      case StmtKind::For: {
        flushBasic();
        const auto& loop = cast<For>(*stmt);
        CfgNode node = makeNode(CfgNodeKind::Loop);
        node.loop = &loop;
        node.body = Cfg::build(loop.body());
        const int id = addNode(std::move(node));
        addEdge(current, id);
        current = id;
        break;
      }
      case StmtKind::If: {
        flushBasic();
        const auto& branch = cast<If>(*stmt);
        CfgNode node = makeNode(CfgNodeKind::Branch);
        node.cond = &branch.cond();
        const int branchId = addNode(std::move(node));
        addEdge(current, branchId);
        const int thenExit = buildBlock(branch.thenBody(), branchId);
        const int elseExit = buildBlock(branch.elseBody(), branchId);
        const int joinId = addNode(makeNode(CfgNodeKind::Join));
        addEdge(thenExit, joinId);
        if (elseExit != branchId) {
          addEdge(elseExit, joinId);
        } else {
          addEdge(branchId, joinId);  // empty else arm
        }
        current = joinId;
        break;
      }
      case StmtKind::Block: {
        flushBasic();
        current = buildBlock(cast<Block>(*stmt), current);
        flushBasic();
        break;
      }
    }
    if (stmt->kind() != StmtKind::Assign) flushBasic();
  }
  return current;
}

std::vector<int> Cfg::topoOrder() const {
  const int n = static_cast<int>(nodes_.size());
  std::vector<int> indegree(n, 0);
  for (const CfgNode& node : nodes_) {
    for (int s : node.succs) ++indegree[s];
  }
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const int id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (int s : nodes_[id].succs) {
      if (--indegree[s] == 0) ready.push_back(s);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    throw ToolchainError("CFG level is not a DAG (internal error)");
  }
  return order;
}

std::size_t Cfg::totalNodeCount() const noexcept {
  std::size_t count = nodes_.size();
  for (const CfgNode& node : nodes_) {
    if (node.body) count += node.body->totalNodeCount();
  }
  return count;
}

}  // namespace argo::ir
