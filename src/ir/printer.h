// Pretty-printer: renders IR as C-like source for reports and debugging.
//
// The renderings are deterministic — a given tree always produces the same
// text — so printed IR is safe to diff in golden tests and to embed in the
// tool-chain report (core/report.h). The output is for humans: it is not
// parsed back, and round-tripping is explicitly a non-goal.
#pragma once

#include <string>

#include "ir/function.h"

namespace argo::ir {

[[nodiscard]] std::string toString(const Expr& expr);
[[nodiscard]] std::string toString(const Stmt& stmt, int indent = 0);
[[nodiscard]] std::string toString(const Function& fn);

}  // namespace argo::ir
