// Pretty-printer: renders IR as C-like source for reports and debugging.
#pragma once

#include <string>

#include "ir/function.h"

namespace argo::ir {

[[nodiscard]] std::string toString(const Expr& expr);
[[nodiscard]] std::string toString(const Stmt& stmt, int indent = 0);
[[nodiscard]] std::string toString(const Function& fn);

}  // namespace argo::ir
