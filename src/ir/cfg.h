// Hierarchical control flow graph.
//
// Because the ARGO IR is fully structured with statically bounded loops,
// its CFG is hierarchical: at every level the graph is a DAG, and each loop
// collapses into a single Loop node owning the CFG of its body. The
// code-level WCET analyzer runs an IPET-style longest-path computation per
// level (innermost first), which on this graph class is exact — the same
// result an ILP-based IPET would produce, without needing an LP solver.
#pragma once

#include <memory>
#include <vector>

#include "ir/function.h"

namespace argo::ir {

class Cfg;

/// Node kinds of the hierarchical CFG.
enum class CfgNodeKind : std::uint8_t {
  Entry,   ///< Unique source, no payload.
  Exit,    ///< Unique sink, no payload.
  Basic,   ///< Maximal run of consecutive assignments.
  Branch,  ///< Condition evaluation; two successors (then, else).
  Join,    ///< Re-convergence point after a Branch.
  Loop,    ///< A For loop; owns the CFG of its body.
};

/// One CFG node. Payload fields are valid according to `kind`.
struct CfgNode {
  CfgNodeKind kind = CfgNodeKind::Basic;
  /// Basic: the assignments executed, in order.
  std::vector<const Assign*> assigns;
  /// Branch: the branch condition.
  const Expr* cond = nullptr;
  /// Loop: the loop statement and its body CFG.
  const For* loop = nullptr;
  std::unique_ptr<Cfg> body;

  std::vector<int> succs;
  std::vector<int> preds;
};

/// A single-entry single-exit DAG of CfgNodes.
class Cfg {
 public:
  /// Builds the hierarchical CFG of a block.
  [[nodiscard]] static std::unique_ptr<Cfg> build(const Block& block);

  [[nodiscard]] const std::vector<CfgNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] int entry() const noexcept { return entry_; }
  [[nodiscard]] int exit() const noexcept { return exit_; }
  [[nodiscard]] const CfgNode& node(int id) const { return nodes_.at(id); }

  /// Topological order of node ids (the graph at one level is a DAG).
  [[nodiscard]] std::vector<int> topoOrder() const;

  /// Number of nodes including nested loop bodies.
  [[nodiscard]] std::size_t totalNodeCount() const noexcept;

 private:
  int addNode(CfgNode node);
  void addEdge(int from, int to);
  int buildBlock(const Block& block, int pred);

  std::vector<CfgNode> nodes_;
  int entry_ = -1;
  int exit_ = -1;
};

}  // namespace argo::ir
