// Affine subscript analysis.
//
// The dependence tests (ir/dependence.h) and the task extractor need to
// know when an array subscript is an affine function of the enclosing loop
// variables: sum(coeff_k * loopvar_k) + constant. Anything else is treated
// conservatively as "may touch any element".
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ir/expr.h"

namespace argo::ir {

/// An affine form over named loop variables, or "not affine".
struct AffineForm {
  bool affine = false;
  std::int64_t constant = 0;
  /// Loop variable name -> coefficient. Variables with coefficient 0 are
  /// not stored.
  std::map<std::string, std::int64_t> coeffs;

  [[nodiscard]] static AffineForm nonAffine() { return AffineForm{}; }
  [[nodiscard]] static AffineForm constantForm(std::int64_t c) {
    AffineForm f;
    f.affine = true;
    f.constant = c;
    return f;
  }

  /// Coefficient of `var` (0 when absent).
  [[nodiscard]] std::int64_t coeff(const std::string& var) const noexcept;

  /// True when the form is affine and depends on no loop variable.
  [[nodiscard]] bool isConstant() const noexcept {
    return affine && coeffs.empty();
  }

  [[nodiscard]] AffineForm operator+(const AffineForm& other) const;
  [[nodiscard]] AffineForm operator-(const AffineForm& other) const;
  [[nodiscard]] AffineForm scaled(std::int64_t factor) const;

  friend bool operator==(const AffineForm&, const AffineForm&) = default;
};

/// Analyzes `expr` as an affine form over the loop variables in `loopVars`.
/// References to variables not in `loopVars` make the form non-affine
/// (their value is unknown at compile time).
[[nodiscard]] AffineForm analyzeAffine(
    const Expr& expr, const std::map<std::string, int>& loopVars);

}  // namespace argo::ir
