// Dominator analysis on one level of the hierarchical CFG.
//
// Used by the analysis-validation layer: every Join node of a well-formed
// structured CFG must be dominated by its matching Branch, and the
// timing-schema decomposition is only exact when that single-entry
// single-exit (SESE) discipline holds. The dominator tree makes the
// property checkable (tests/ir_cfg_rewrite_test.cpp) and gives tooling a
// foothold for region-based reports in the cross-layer interface.
//
// Implementation: Cooper–Harvey–Kennedy iterative algorithm over the
// reverse-postorder of the (per-level, acyclic) CFG.
#pragma once

#include <vector>

#include "ir/cfg.h"

namespace argo::ir {

/// Immediate-dominator table for one CFG level.
class DominatorTree {
 public:
  /// Computes dominators of `cfg` (one level; nested loop bodies have
  /// their own trees).
  explicit DominatorTree(const Cfg& cfg);

  /// Immediate dominator of `node` (-1 for the entry node).
  [[nodiscard]] int idom(int node) const {
    return idom_.at(static_cast<std::size_t>(node));
  }

  /// True when `a` dominates `b` (reflexive: every node dominates itself).
  [[nodiscard]] bool dominates(int a, int b) const;

  /// Depth of a node in the dominator tree (entry = 0).
  [[nodiscard]] int depth(int node) const;

  [[nodiscard]] std::size_t size() const noexcept { return idom_.size(); }

 private:
  std::vector<int> idom_;
};

/// Structural sanity check used by tests and by PassManager-style debug
/// validation: every Join is dominated by a Branch, and every node is
/// dominated by the entry. Returns problem descriptions (empty = valid).
[[nodiscard]] std::vector<std::string> checkSeseDiscipline(const Cfg& cfg);

}  // namespace argo::ir
